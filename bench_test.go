package kronvalid

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index and
// EXPERIMENTS.md for recorded results). Run with:
//
//	go test -bench=. -benchmem
//
// Reported custom metrics:
//   triangles      exact τ of the product under benchmark
//   wedge_checks   intersection comparisons spent on factor ground truth
//   edges          product edge count

import (
	"context"
	"runtime"
	"testing"

	"kronvalid/internal/census"
	"kronvalid/internal/gen"
	"kronvalid/internal/kron"
	"kronvalid/internal/model"
	"kronvalid/internal/rng"
	"kronvalid/internal/sparse"
	"kronvalid/internal/stats"
	"kronvalid/internal/stream"
	"kronvalid/internal/triangle"
	"kronvalid/internal/truss"
)

// benchWebFactor caches the stand-in web factor across benchmarks.
var benchWebFactor = func() *Graph {
	return gen.WebGraph(1<<14, 3, 0.75, 2018)
}()

// BenchmarkTableIGroundTruth regenerates the §VI statistics table (E1):
// exact vertex/edge/triangle counts of A⊗A and A⊗B from the factors.
func BenchmarkTableIGroundTruth(b *testing.B) {
	a := benchWebFactor
	bb := a.WithAllLoops()
	var tAA, tAB int64
	for i := 0; i < b.N; i++ {
		pAA := kron.MustProduct(a, a)
		pAB := kron.MustProduct(a, bb)
		var err error
		tAA, err = kron.TriangleTotal(pAA)
		if err != nil {
			b.Fatal(err)
		}
		tAB, err = kron.TriangleTotal(pAB)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tAA), "triangles_AA")
	b.ReportMetric(float64(tAB), "triangles_AB")
}

// BenchmarkGroundTruthSpeed isolates the paper's §VI timing claim (E10):
// the full factor triangle pass plus formula application, with wedge
// checks reported (paper: 10.5 s and 7,734,429 wedge checks for a 2.38
// trillion-edge product).
func BenchmarkGroundTruthSpeed(b *testing.B) {
	a := benchWebFactor
	var wedges, tau int64
	for i := 0; i < b.N; i++ {
		res := triangle.Count(a)
		wedges = res.WedgeChecks
		p := kron.MustProduct(a, a)
		var err error
		tau, err = kron.TriangleTotal(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	p := kron.MustProduct(a, a)
	b.ReportMetric(float64(wedges), "wedge_checks")
	b.ReportMetric(float64(tau), "triangles")
	b.ReportMetric(float64(p.NumEdgesUndirected()), "edges")
}

// BenchmarkFig7Egonets regenerates the Fig. 7 experiment (E2): extract
// and verify nine egonets per product without materializing it.
func BenchmarkFig7Egonets(b *testing.B) {
	a := benchWebFactor
	statsA := kron.ComputeFactorStats(a)
	var picks []int32
	seen := map[int64]bool{}
	for v := 0; v < a.NumVertices() && len(picks) < 3; v++ {
		if a.Degree(int32(v)) == 3 {
			tv := statsA.T[v]
			if tv >= 1 && tv <= 3 && !seen[tv] {
				seen[tv] = true
				picks = append(picks, int32(v))
			}
		}
	}
	if len(picks) < 3 {
		b.Skip("factor lacks the three Fig. 7 vertices at this seed")
	}
	p := kron.MustProduct(a, a)
	tc, err := kron.VertexParticipation(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, vi := range picks {
			for _, vk := range picks {
				if _, err := kron.VerifyEgonet(p, tc, p.Vertex(vi, vk), 10000); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkEx1Cliques regenerates the Ex. 1 closed forms (E3).
func BenchmarkEx1Cliques(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, prod := range []*kron.Product{
			kron.MustProduct(gen.Clique(40), gen.Clique(50)),
			kron.MustProduct(gen.Clique(40), gen.CliqueWithLoops(50)),
			kron.MustProduct(gen.CliqueWithLoops(40), gen.CliqueWithLoops(50)),
		} {
			tc, err := kron.VertexParticipation(prod)
			if err != nil {
				b.Fatal(err)
			}
			_ = tc.At(0)
		}
	}
}

// BenchmarkEx2Truss regenerates Ex. 2 (E4): hub-cycle product histogram
// plus direct truss peeling.
func BenchmarkEx2Truss(b *testing.B) {
	a := gen.HubCycle(4)
	p := kron.MustProduct(a, a)
	var t3, t4 int
	for i := 0; i < b.N; i++ {
		c, err := p.Materialize(1000, 100000)
		if err != nil {
			b.Fatal(err)
		}
		d := truss.Decompose(c)
		t3, t4 = len(d.KTrussEdges(3)), len(d.KTrussEdges(4))
	}
	b.ReportMetric(float64(t3), "t3_edges")
	b.ReportMetric(float64(t4), "t4_edges")
}

// BenchmarkTrussKron regenerates the Thm. 3 experiment (E5): implicit
// truss ground truth for a product with a Δ≤1 factor.
func BenchmarkTrussKron(b *testing.B) {
	a := gen.ErdosRenyi(300, 0.1, 9)
	bb := gen.TriangleLimitedPA(2000, 10)
	p := kron.MustProduct(a, bb)
	b.ResetTimer()
	var maxK int
	for i := 0; i < b.N; i++ {
		pt, err := kron.TrussDecomposition(p)
		if err != nil {
			b.Fatal(err)
		}
		maxK = pt.MaxK()
	}
	b.ReportMetric(float64(maxK), "max_k")
	b.ReportMetric(float64(p.NumEdgesUndirected()), "edges")
}

// BenchmarkDirectedCensus regenerates the Thm. 4/5 experiment (E6): all
// 30 directed type statistics of a large directed product.
func BenchmarkDirectedCensus(b *testing.B) {
	base := gen.WebGraph(4000, 3, 0.7, 5)
	var arcs []Edge
	j := 0
	base.EachEdgeUndirected(func(u, v int32) bool {
		j++
		switch j % 4 {
		case 0:
			arcs = append(arcs, Edge{U: u, V: v}, Edge{U: v, V: u})
		case 1, 2:
			arcs = append(arcs, Edge{U: u, V: v})
		default:
			arcs = append(arcs, Edge{U: v, V: u})
		}
		return true
	})
	a := FromEdges(base.NumVertices(), arcs, false)
	bb := gen.Clique(16)
	p := kron.MustProduct(a, bb)
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		ds, err := kron.DirectedCensus(p)
		if err != nil {
			b.Fatal(err)
		}
		cycles, err = ds.Vertex[census.STp].Total()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cycles), "directed_3cycles")
}

// BenchmarkLabeledCensus regenerates the Thm. 6/7 experiment (E7).
func BenchmarkLabeledCensus(b *testing.B) {
	base := gen.WebGraph(4000, 3, 0.7, 6)
	labels := make([]int32, base.NumVertices())
	for v := range labels {
		labels[v] = int32(v % 3)
	}
	a := base.WithLabels(labels, 3)
	bb := gen.Clique(16)
	p := kron.MustProduct(a, bb)
	b.ResetTimer()
	var rainbow int64
	for i := 0; i < b.N; i++ {
		ls, err := kron.LabeledCensus(p)
		if err != nil {
			b.Fatal(err)
		}
		rainbow, err = ls.Vertex[census.LabelVertexType{Q1: 0, Q2: 1, Q3: 2}].Total()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rainbow), "rainbow_at_red")
}

// BenchmarkDegreeDistribution regenerates the §III.A analysis (E8):
// product degree histogram and tail statistics via Kronecker composition.
func BenchmarkDegreeDistribution(b *testing.B) {
	a := benchWebFactor
	bb := gen.WebGraph(1<<13, 3, 0.75, 2019)
	hA := stats.NewHistogram(a.Degrees())
	hB := stats.NewHistogram(bb.Degrees())
	b.ResetTimer()
	var maxDeg int64
	for i := 0; i < b.N; i++ {
		hC := stats.KronHistogram(hA, hB)
		maxDeg = hC.Max()
	}
	b.ReportMetric(float64(maxDeg), "max_degree")
}

// BenchmarkStochasticVsNonstochastic regenerates the Rem. 1 comparison
// (E9): the exact triangle count of the nonstochastic product vs an
// edge-independent (Chung-Lu) null with the identical degree sequence —
// the mechanism Rem. 1 blames for stochastic Kronecker triangle poverty.
func BenchmarkStochasticVsNonstochastic(b *testing.B) {
	a := gen.WebGraph(1<<8, 3, 0.75, 7)
	p := kron.MustProduct(a, a)
	tauC, err := kron.TriangleTotal(p)
	if err != nil {
		b.Fatal(err)
	}
	degs := p.DegreeVector()
	var tauNull int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := gen.ChungLu(degs, uint64(i+1))
		tauNull = triangle.Count(cl).Total
	}
	b.StopTimer()
	b.ReportMetric(float64(tauC), "nonstoch_triangles")
	b.ReportMetric(float64(tauNull), "independent_null_triangles")
	b.ReportMetric(float64(tauC)/float64(tauNull), "ratio")
}

// BenchmarkParityProperty covers E11: the τ(C) = 6 τ(A) τ(B) identity at
// benchmark scale.
func BenchmarkParityProperty(b *testing.B) {
	a := benchWebFactor
	sa := triangle.Count(a)
	p := kron.MustProduct(a, a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tau, err := kron.TriangleTotal(p)
		if err != nil {
			b.Fatal(err)
		}
		if tau != 6*sa.Total*sa.Total {
			b.Fatal("identity violated")
		}
	}
}

// BenchmarkStreamEdges compares edge-emission throughput on a ≥10^7-arc
// product across four paths: the pre-pipeline generator (the seed's
// nested-loop per-arc closure, reproduced inline as the true legacy
// baseline), today's EachArc (now an adapter over batches), the batched
// generator, and the parallel ordered pipeline. The batched generator
// writes into flat buffers instead of invoking a closure per arc; the
// parallel variant additionally fans communication-free shards across
// GOMAXPROCS while preserving canonical output order.
func BenchmarkStreamEdges(b *testing.B) {
	a := gen.WebGraph(1<<14, 3, 0.75, 8) // ~10^5 arcs
	bb := gen.Clique(16)                 // 240 arcs
	p := kron.MustProduct(a, bb)
	if p.NumArcs() < 10_000_000 {
		b.Fatalf("product too small for the throughput comparison: %d arcs", p.NumArcs())
	}
	arcsPerOp := func(b *testing.B) {
		b.SetBytes(p.NumArcs() * 16)
		b.ReportMetric(float64(p.NumArcs()), "arcs/op")
	}
	// The seed's EachArc loop, verbatim: per-arc closure call, no batching.
	legacyEachArc := func(fn func(u, v int64) bool) {
		nA := p.A.NumVertices()
		nB := int64(p.B.NumVertices())
		for i := 0; i < nA; i++ {
			nbA := p.A.Neighbors(int32(i))
			if len(nbA) == 0 {
				continue
			}
			for k := int64(0); k < nB; k++ {
				u := int64(i)*nB + k
				nbB := p.B.Neighbors(int32(k))
				if len(nbB) == 0 {
					continue
				}
				for _, j := range nbA {
					base := int64(j) * nB
					for _, l := range nbB {
						if !fn(u, base+int64(l)) {
							return
						}
					}
				}
			}
		}
	}
	b.Run("legacy-per-arc", func(b *testing.B) {
		arcsPerOp(b)
		var sink int64
		for i := 0; i < b.N; i++ {
			var count int64
			legacyEachArc(func(u, v int64) bool {
				count++
				return true
			})
			sink = count
		}
		_ = sink
	})
	b.Run("per-arc-adapter", func(b *testing.B) {
		arcsPerOp(b)
		var sink int64
		for i := 0; i < b.N; i++ {
			var count int64
			p.EachArc(func(u, v int64) bool {
				count++
				return true
			})
			sink = count
		}
		_ = sink
	})
	b.Run("batched", func(b *testing.B) {
		arcsPerOp(b)
		var sink int64
		for i := 0; i < b.N; i++ {
			var count int64
			p.EachArcBatch(0, func(batch []Arc) bool {
				count += int64(len(batch))
				return true
			})
			sink = count
		}
		_ = sink
	})
	b.Run("parallel", func(b *testing.B) {
		arcsPerOp(b)
		for i := 0; i < b.N; i++ {
			var count CountingSink
			if _, err := StreamEdges(p, StreamOptions{}, &count); err != nil {
				b.Fatal(err)
			}
			if count.N != p.NumArcs() {
				b.Fatalf("streamed %d arcs, want %d", count.N, p.NumArcs())
			}
		}
	})
}

// BenchmarkCSRBuild compares product-adjacency ingestion on the same
// ≥10^7-arc product as BenchmarkStreamEdges: the parallel two-pass CSR
// builder (count → prefix-sum → scatter over communication-free shards),
// the ordered one-pass CSR sink behind the parallel pipeline, and the
// ad-hoc map adjacency (map[int64][]int64 filled from the stream) that
// the analytics consumers used to rebuild per query. The map baseline is
// what the CSR subsystem replaces — same information, hash overhead and
// scattered allocations included.
func BenchmarkCSRBuild(b *testing.B) {
	a := gen.WebGraph(1<<14, 3, 0.75, 8)
	bb := gen.Clique(16)
	p := kron.MustProduct(a, bb)
	if p.NumArcs() < 10_000_000 {
		b.Fatalf("product too small for the ingestion comparison: %d arcs", p.NumArcs())
	}
	arcsPerOp := func(b *testing.B) {
		b.SetBytes(p.NumArcs() * 16)
		b.ReportMetric(float64(p.NumArcs()), "arcs/op")
	}
	b.Run("two-pass-parallel", func(b *testing.B) {
		arcsPerOp(b)
		for i := 0; i < b.N; i++ {
			g, err := BuildCSR(p, StreamOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if g.NumArcs() != p.NumArcs() {
				b.Fatalf("CSR has %d arcs, want %d", g.NumArcs(), p.NumArcs())
			}
		}
	})
	b.Run("ordered-sink", func(b *testing.B) {
		arcsPerOp(b)
		for i := 0; i < b.N; i++ {
			g, err := StreamToCSR(p, StreamOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if g.NumArcs() != p.NumArcs() {
				b.Fatalf("CSR has %d arcs, want %d", g.NumArcs(), p.NumArcs())
			}
		}
	})
	b.Run("map-baseline", func(b *testing.B) {
		arcsPerOp(b)
		for i := 0; i < b.N; i++ {
			adj := make(map[int64][]int64)
			p.EachArcBatch(0, func(batch []Arc) bool {
				for _, arc := range batch {
					adj[arc.U] = append(adj[arc.U], arc.V)
				}
				return true
			})
			if int64(len(adj)) > p.NumVertices() {
				b.Fatal("impossible adjacency")
			}
		}
	})
}

// BenchmarkCSRScan compares the consumer-side access pattern of the
// analytics engines (full adjacency sweeps plus membership probes) on
// the CSR representation versus the map adjacency it replaced.
func BenchmarkCSRScan(b *testing.B) {
	a := gen.WebGraph(1<<12, 3, 0.75, 8)
	bb := gen.Clique(16)
	p := kron.MustProduct(a, bb)
	g, err := BuildCSR(p, StreamOptions{})
	if err != nil {
		b.Fatal(err)
	}
	adj := make(map[int64][]int64, p.NumVertices())
	p.EachArcBatch(0, func(batch []Arc) bool {
		for _, arc := range batch {
			adj[arc.U] = append(adj[arc.U], arc.V)
		}
		return true
	})
	bytesPerOp := func(b *testing.B) { b.SetBytes(p.NumArcs() * 8) }
	b.Run("csr", func(b *testing.B) {
		bytesPerOp(b)
		var sink int64
		for i := 0; i < b.N; i++ {
			var sum int64
			for v := int64(0); v < g.NumVertices(); v++ {
				for _, w := range g.Neighbors(v) {
					sum += w
				}
			}
			sink = sum
		}
		_ = sink
	})
	b.Run("map", func(b *testing.B) {
		bytesPerOp(b)
		var sink int64
		for i := 0; i < b.N; i++ {
			var sum int64
			for v := int64(0); v < p.NumVertices(); v++ {
				for _, w := range adj[v] {
					sum += w
				}
			}
			sink = sum
		}
		_ = sink
	})
}

// BenchmarkEdgeStream measures the raw edge-generation throughput of the
// implicit product (the generator side of the paper's pipeline).
func BenchmarkEdgeStream(b *testing.B) {
	a := gen.WebGraph(1<<10, 3, 0.75, 8)
	bb := gen.HubCycle(6)
	p := kron.MustProduct(a, bb)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		var count int64
		p.EachArc(func(u, v int64) bool {
			count++
			return true
		})
		sink = count
	}
	b.StopTimer()
	b.ReportMetric(float64(sink)/b.Elapsed().Seconds()*float64(b.N)/float64(b.N), "arcs_total")
	b.SetBytes(sink * 16)
}

// BenchmarkShardedGeneration measures communication-free parallel
// generation throughput across GOMAXPROCS shards.
func BenchmarkShardedGeneration(b *testing.B) {
	a := gen.WebGraph(1<<10, 3, 0.75, 8)
	bb := gen.HubCycle(6)
	p := kron.MustProduct(a, bb)
	plan := NewGenPlan(p, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.GenerateParallel(func(w int, arcs []GenArc) {})
	}
	b.SetBytes(p.NumArcs() * 16)
}

// BenchmarkFactorTrianglePass measures the combinatorial triangle engine
// on the web factor (the dominant cost of ground-truth computation).
func BenchmarkFactorTrianglePass(b *testing.B) {
	a := benchWebFactor
	b.ResetTimer()
	var wedges int64
	for i := 0; i < b.N; i++ {
		wedges = triangle.Count(a).WedgeChecks
	}
	b.ReportMetric(float64(wedges), "wedge_checks")
}

// BenchmarkVertexStatLookup measures the O(1) per-vertex formula
// evaluation that makes trillion-vertex queries practical.
func BenchmarkVertexStatLookup(b *testing.B) {
	a := benchWebFactor
	p := kron.MustProduct(a, a.WithAllLoops())
	tc, err := kron.VertexParticipation(p)
	if err != nil {
		b.Fatal(err)
	}
	n := p.NumVertices()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += tc.At(int64(i) % n)
	}
	_ = sink
}

// BenchmarkEdgeStatLookup measures per-edge Δ_C queries.
func BenchmarkEdgeStatLookup(b *testing.B) {
	a := benchWebFactor
	p := kron.MustProduct(a, a)
	dc, err := kron.EdgeParticipation(p)
	if err != nil {
		b.Fatal(err)
	}
	// Gather some real edges to probe.
	var us, vs []int64
	p.EachArc(func(u, v int64) bool {
		us = append(us, u)
		vs = append(vs, v)
		return len(us) < 4096
	})
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		j := i & 4095
		sink += dc.At(us[j], vs[j])
	}
	_ = sink
}

// BenchmarkMaterializeSmall measures validation-scale materialization.
func BenchmarkMaterializeSmall(b *testing.B) {
	a := gen.WebGraph(60, 3, 0.7, 3)
	p := kron.MustProduct(a, gen.HubCycle(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Materialize(100000, 10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKroneckerPower measures ground-truth computation for the
// k-fold powers of [3]'s construction (k = 4: ~10^13 edges).
func BenchmarkKroneckerPower(b *testing.B) {
	f := gen.WebGraph(512, 3, 0.75, 31)
	var tau int64
	for i := 0; i < b.N; i++ {
		p, err := kron.KroneckerPower(f, 4)
		if err != nil {
			b.Fatal(err)
		}
		tau, err = kron.MultiTriangleTotal(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tau), "triangles")
}

// BenchmarkAblationTriangleOrdering quantifies the DESIGN.md choice of
// the degree-ordered forward algorithm over the unordered node iterator:
// same exact outputs, different wedge-check budgets.
func BenchmarkAblationTriangleOrdering(b *testing.B) {
	g := benchWebFactor
	b.Run("forward", func(b *testing.B) {
		var wedges int64
		for i := 0; i < b.N; i++ {
			wedges = triangle.Count(g).WedgeChecks
		}
		b.ReportMetric(float64(wedges), "wedge_checks")
	})
	b.Run("node-iterator", func(b *testing.B) {
		var wedges int64
		for i := 0; i < b.N; i++ {
			wedges = triangle.CountNodeIterator(g).WedgeChecks
		}
		b.ReportMetric(float64(wedges), "wedge_checks")
	})
}

// BenchmarkAblationTrussAlgorithm compares the bucket-queue peeling
// decomposition against the paper's literal recompute-Δ-each-phase
// algorithm (the test oracle).
func BenchmarkAblationTrussAlgorithm(b *testing.B) {
	g := gen.WebGraph(1200, 4, 0.8, 12)
	b.Run("bucket-peel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = truss.Decompose(g)
		}
	})
	b.Run("naive-recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = truss.NaiveDecompose(g)
		}
	})
}

// BenchmarkSampledValidation measures the cost of spot-validating a
// product far too large to materialize (the §VI workflow at scale).
func BenchmarkSampledValidation(b *testing.B) {
	a := benchWebFactor
	p := kron.MustProduct(a, a.WithAllLoops())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := ValidateSampled(p, 16, 16, 1<<20, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if !r.AllPassed() {
			b.Fatal("sampled validation failed")
		}
	}
	b.ReportMetric(float64(p.NumArcs()), "product_arcs")
}

// BenchmarkModelStream measures the model-agnostic generator layer on
// the acceptance workload (ER n=10^5, p=10^-3, ≈5·10^6 edges): the
// sharded streaming core versus the seed's O(n²) Bernoulli sweep
// (reproduced inline as the true legacy baseline), plus the streamed
// G(n,m), R-MAT and Chung–Lu cores at a comparable edge scale, and the
// cross-chunk-dependent cores — rgg2d/rgg3d (neighbor-cell
// recomputation), rhg (band/cell window regeneration) and ba (per-edge
// retracing) — at the acceptance parameters (n=10^5, r=0.005 / d=4 /
// d̄=8), plus the dependence-free lattices (grid2d/grid3d, ~2·10^5
// vertices at p=0.8). Throughput is bytes of emitted arcs (16 B/arc).
func BenchmarkModelStream(b *testing.B) {
	const erN, erP, erSeed = 100_000, 0.001, 42

	streamCount := func(b *testing.B, g ModelGenerator) {
		b.Helper()
		b.ReportAllocs()
		var arcs int64
		for i := 0; i < b.N; i++ {
			var count stream.CountSink
			if _, err := StreamModel(g, StreamOptions{}, &count); err != nil {
				b.Fatal(err)
			}
			arcs = count.N
		}
		b.SetBytes(arcs * 16)
		b.ReportMetric(float64(arcs), "arcs/op")
	}
	// The -parallel rows run the same workload through the unified
	// pipeline with GOMAXPROCS workers: on a multi-core runner they
	// demonstrate (and the bench gate protects) the communication-free
	// scaling claim. On a single core they would silently equal the
	// serial rows and mask scaling regressions, so they skip instead.
	workers := runtime.GOMAXPROCS(0)
	streamParallel := func(b *testing.B, g ModelGenerator) {
		b.Helper()
		if workers == 1 {
			b.Skip("GOMAXPROCS=1: parallel row would duplicate the serial row and mask scaling regressions")
		}
		b.ReportAllocs()
		ctx := context.Background()
		var arcs int64
		for i := 0; i < b.N; i++ {
			var count stream.CountSink
			if _, err := Stream(ctx, ModelSource(g, workers), &count, WithWorkers(workers)); err != nil {
				b.Fatal(err)
			}
			arcs = count.N
		}
		b.SetBytes(arcs * 16)
		b.ReportMetric(float64(arcs), "arcs/op")
	}

	b.Run("er-stream", func(b *testing.B) {
		g, err := model.NewErdosRenyi(erN, erP, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamCount(b, g)
	})
	b.Run("er-parallel", func(b *testing.B) {
		g, err := model.NewErdosRenyi(erN, erP, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamParallel(b, g)
	})
	// The seed implementation's core, verbatim: one Bernoulli draw per
	// vertex pair — n(n-1)/2 ≈ 5·10^9 draws regardless of how few edges
	// come out.
	b.Run("er-legacy-quadratic", func(b *testing.B) {
		if testing.Short() {
			b.Skip("quadratic baseline takes ~15s per op; skipped under -short (the bench gate)")
		}
		var arcs int64
		for i := 0; i < b.N; i++ {
			g := rng.New(erSeed)
			var count int64
			for u := 0; u < erN; u++ {
				for v := u + 1; v < erN; v++ {
					if g.Float64() < erP {
						count++
					}
				}
			}
			arcs = count
		}
		b.SetBytes(arcs * 16)
		b.ReportMetric(float64(arcs), "arcs/op")
	})
	b.Run("gnm-stream", func(b *testing.B) {
		g, err := model.NewGnm(erN, 5_000_000, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamCount(b, g)
	})
	b.Run("gnm-parallel", func(b *testing.B) {
		g, err := model.NewGnm(erN, 5_000_000, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamParallel(b, g)
	})
	b.Run("rmat-stream", func(b *testing.B) {
		g, err := model.NewRMAT(17, 5_000_000, 0.57, 0.19, 0.19, 0.05, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamCount(b, g)
	})
	b.Run("rmat-parallel", func(b *testing.B) {
		g, err := model.NewRMAT(17, 5_000_000, 0.57, 0.19, 0.19, 0.05, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamParallel(b, g)
	})
	b.Run("chunglu-stream", func(b *testing.B) {
		g, err := NewGenerator("chunglu:n=100000,dmax=1000,gamma=2.1,seed=42")
		if err != nil {
			b.Fatal(err)
		}
		streamCount(b, g)
	})
	b.Run("chunglu-parallel", func(b *testing.B) {
		g, err := NewGenerator("chunglu:n=100000,dmax=1000,gamma=2.1,seed=42")
		if err != nil {
			b.Fatal(err)
		}
		streamParallel(b, g)
	})
	b.Run("rgg2d-stream", func(b *testing.B) {
		g, err := model.NewRGG(100_000, 0.005, 2, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamCount(b, g)
	})
	b.Run("rgg2d-parallel", func(b *testing.B) {
		g, err := model.NewRGG(100_000, 0.005, 2, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamParallel(b, g)
	})
	b.Run("ba-stream", func(b *testing.B) {
		g, err := model.NewBarabasiAlbert(100_000, 4, 0, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamCount(b, g)
	})
	b.Run("ba-parallel", func(b *testing.B) {
		g, err := model.NewBarabasiAlbert(100_000, 4, 0, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamParallel(b, g)
	})
	b.Run("rgg3d-stream", func(b *testing.B) {
		g, err := model.NewRGG(100_000, 0.02, 3, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamCount(b, g)
	})
	b.Run("rgg3d-parallel", func(b *testing.B) {
		g, err := model.NewRGG(100_000, 0.02, 3, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamParallel(b, g)
	})
	b.Run("rhg-stream", func(b *testing.B) {
		g, err := model.NewRHG(100_000, 8, 2.9, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamCount(b, g)
	})
	b.Run("rhg-parallel", func(b *testing.B) {
		g, err := model.NewRHG(100_000, 8, 2.9, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamParallel(b, g)
	})
	b.Run("grid2d-stream", func(b *testing.B) {
		g, err := model.NewGrid(500, 400, 1, 0.8, true, 2, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamCount(b, g)
	})
	b.Run("grid2d-parallel", func(b *testing.B) {
		g, err := model.NewGrid(500, 400, 1, 0.8, true, 2, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamParallel(b, g)
	})
	b.Run("grid3d-stream", func(b *testing.B) {
		g, err := model.NewGrid(60, 60, 56, 0.8, true, 3, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamCount(b, g)
	})
	b.Run("grid3d-parallel", func(b *testing.B) {
		g, err := model.NewGrid(60, 60, 56, 0.8, true, 3, erSeed, 0)
		if err != nil {
			b.Fatal(err)
		}
		streamParallel(b, g)
	})
}

var _ = sparse.SumVec // keep import for metric helpers extended later
