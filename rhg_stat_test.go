package kronvalid

import (
	"math"
	"sort"
	"testing"
)

// rhgDegrees materializes an RHG instance and returns its degree
// sequence in non-increasing order (the shape HillEstimator wants).
func rhgDegrees(t *testing.T, n int64, deg, gamma float64, seed uint64) (*Graph, []int64) {
	t.Helper()
	g, err := RHG(n, deg, gamma, seed)
	if err != nil {
		t.Fatal(err)
	}
	degs := make([]int64, g.NumVertices())
	for v := range degs {
		degs[v] = int64(g.Degree(int32(v)))
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i] > degs[j] })
	return g, degs
}

// TestRHGDegreeExponent checks the model's defining statistic: the
// degree distribution of a random hyperbolic graph follows a power law
// with exponent γ = 2α + 1, so the Hill estimate over the upper tail
// must track the requested γ. Tolerances are calibrated: at n = 2·10^4
// and k = 500 the estimate lands within ~0.15 of the target across
// seeds, so ±0.35 has wide margin without accepting a mis-derived α
// (which shifts γ by ≥ 0.5 for any interesting parameter error).
func TestRHGDegreeExponent(t *testing.T) {
	for _, gamma := range []float64{2.5, 2.9} {
		_, degs := rhgDegrees(t, 20000, 10, gamma, 1)
		got := HillEstimator(degs, 500)
		if math.Abs(got-gamma) > 0.35 {
			t.Errorf("gamma=%v: Hill estimate %.3f deviates more than 0.35", gamma, got)
		}
	}
}

// TestRHGClusteringAboveNull checks the second defining statistic:
// hyperbolic geometry produces strong local clustering (metric
// triangle inequality → neighbors of a vertex are close to each
// other), while an edge-count-matched G(n, m) null has clustering
// ~d̄/n ≈ 0. Calibrated: the RHG mean local clustering sits near 0.78
// at these parameters and the null near 0.0006, so the 0.2 floor and
// the 20× separation are both order-of-magnitude-safe.
func TestRHGClusteringAboveNull(t *testing.T) {
	g, _ := rhgDegrees(t, 20000, 10, 2.7, 2)
	mean := func(x []float64) float64 {
		var s float64
		for _, v := range x {
			s += v
		}
		return s / float64(len(x))
	}
	rhgC := mean(LocalClusteringCoefficients(g))
	null := GNM(g.NumVertices(), int64(g.NumEdgesUndirected()), 2)
	nullC := mean(LocalClusteringCoefficients(null))
	if rhgC < 0.2 {
		t.Errorf("RHG mean local clustering %.4f below 0.2", rhgC)
	}
	if rhgC < 20*nullC {
		t.Errorf("RHG clustering %.4f not above 20× the G(n,m) null %.4f", rhgC, nullC)
	}
}
