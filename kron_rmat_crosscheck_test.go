package kronvalid

import (
	"fmt"
	"math"
	"math/bits"
	"testing"

	"kronvalid/internal/stream"
)

// kronPower materializes the k-fold Kronecker power of a small factor.
func kronPower(t *testing.T, f *Graph, k int) *Graph {
	t.Helper()
	p := f
	for i := 1; i < k; i++ {
		prod, err := NewProduct(p, f)
		if err != nil {
			t.Fatal(err)
		}
		p, err = prod.Materialize(1<<20, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestKroneckerViaRMATCrossCheck ties the deterministic Kronecker-power
// pipeline to the stochastic R-MAT model — the correspondence the paper
// builds R-MAT on. The 2-vertex initiator F with arcs (0,0), (0,1),
// (1,1) has k-fold power F^⊗k whose arcs are exactly the bit-dominance
// set {(u, v) : u &^ v == 0} (one initiator arc per bit position), 3^k
// arcs in all. An R-MAT spec with quadrant weights proportional to F —
// a = b = d = 1/3, c = 0 — draws every one of those arcs with equal
// probability 3^-k per edge sample, so the realized stream must
//
//  1. be supported exactly on the arcs of F^⊗k (minus self loops,
//     which the model drops), and
//  2. hit each popcount class of sources at its occupancy expectation:
//     a source u with popcount z dominates 2^(k-z) targets (one is the
//     loop), giving C(k, z)·(2^(k-z)-1) admissible non-loop arcs per
//     class, each present after m samples with probability
//     q = 1 - (1 - 3^-k)^m. Observed class counts must sit within 5σ
//     of the mean (occupancy indicators are negatively associated, so
//     the binomial σ bounds the true one).
func TestKroneckerViaRMATCrossCheck(t *testing.T) {
	const k = 9
	const m = 30000
	f := FromEdges(2, []Edge{{U: 0, V: 0}, {U: 0, V: 1}, {U: 1, V: 1}}, false)
	p := kronPower(t, f, k)

	n := int64(1) << k
	admissible := int64(1)
	for i := 0; i < k; i++ {
		admissible *= 3
	}
	if got := int64(p.NumVertices()); got != n {
		t.Fatalf("F^⊗%d has %d vertices, want %d", k, got, n)
	}
	if got := p.NumArcs(); got != admissible {
		t.Fatalf("F^⊗%d has %d arcs, want 3^%d = %d", k, got, k, admissible)
	}
	for u := int64(0); u < n; u++ {
		for _, v := range p.Neighbors(int32(u)) {
			if u&^int64(v) != 0 {
				t.Fatalf("power arc (%d, %d) violates bit dominance", u, v)
			}
		}
	}
	// Count equality + dominance of every arc ⇒ the arc set IS the
	// dominance set; in particular every vertex carries its self loop.

	spec := fmt.Sprintf("rmat:scale=%d,edges=%d,a=1,b=1,c=0,d=1,seed=19", k, m)
	g, err := NewGenerator(spec)
	if err != nil {
		t.Fatal(err)
	}
	classObs := make([]int64, k+1)
	var arcs int64
	_, err = StreamModel(g, StreamOptions{Workers: 4}, SinkFunc(func(batch []stream.Arc) error {
		for _, a := range batch {
			if a.U&^a.V != 0 {
				return fmt.Errorf("rmat arc (%d, %d) outside the Kronecker support", a.U, a.V)
			}
			if a.U == a.V {
				return fmt.Errorf("rmat emitted self loop %d", a.U)
			}
			if !p.HasEdge(int32(a.U), int32(a.V)) {
				return fmt.Errorf("rmat arc (%d, %d) missing from F^⊗%d", a.U, a.V, k)
			}
			classObs[bits.OnesCount64(uint64(a.U))]++
			arcs++
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if arcs == 0 {
		t.Fatal("empty rmat stream")
	}

	q := 1 - math.Pow(1-1/float64(admissible), m)
	for z := 0; z <= k; z++ {
		size := float64(binom(k, z)) * (math.Exp2(float64(k-z)) - 1)
		if size == 0 {
			if classObs[z] != 0 {
				t.Errorf("popcount class %d is empty yet observed %d arcs", z, classObs[z])
			}
			continue
		}
		mean := size * q
		sigma := math.Sqrt(size * q * (1 - q))
		if dev := math.Abs(float64(classObs[z]) - mean); dev > 5*sigma+1 {
			t.Errorf("popcount class %d: observed %d distinct arcs, expected %.1f ± %.1f (5σ)",
				z, classObs[z], mean, 5*sigma)
		}
	}
}

// binom returns C(n, r) for small n.
func binom(n, r int) int64 {
	c := int64(1)
	for i := 0; i < r; i++ {
		c = c * int64(n-i) / int64(i+1)
	}
	return c
}
