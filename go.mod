module kronvalid

go 1.24
