// Directedcensus demonstrates Thm. 4/5: exact per-type directed triangle
// counts (all 15 vertex flavors and 15 edge flavors of Fig. 4/5) for a
// directed Kronecker product, with ground truth generated alongside the
// graph. A directed citation-style factor is crossed with an undirected
// community factor; the program prints the global census and validates a
// sample vertex.
package main

import (
	"flag"
	"fmt"
	"log"

	"kronvalid"
)

func main() {
	nA := flag.Int("na", 400, "vertices of directed factor A")
	seed := flag.Uint64("seed", 11, "generator seed")
	flag.Parse()

	// A directed factor: take a scale-free undirected graph and orient
	// 60% of edges low-id -> high-id, keeping 40% reciprocal.
	base := kronvalid.WebGraph(*nA, 3, 0.6, *seed)
	var arcs []kronvalid.Edge
	i := 0
	base.EachEdgeUndirected(func(u, v int32) bool {
		i++
		switch i % 5 {
		case 0, 1: // reciprocal
			arcs = append(arcs, kronvalid.Edge{U: u, V: v}, kronvalid.Edge{U: v, V: u})
		case 2, 3: // forward only
			arcs = append(arcs, kronvalid.Edge{U: u, V: v})
		default: // backward only
			arcs = append(arcs, kronvalid.Edge{U: v, V: u})
		}
		return true
	})
	a := kronvalid.FromEdges(base.NumVertices(), arcs, false)

	// An undirected community factor with self loops (allowed by Thm. 4/5).
	b := kronvalid.Clique(8).WithAllLoops()

	p := kronvalid.MustProduct(a, b)
	stats, err := kronvalid.DirectedCensus(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("C = A⊗B: %d vertices, %d arcs (directed)\n\n", p.NumVertices(), p.NumArcs())
	fmt.Println("global directed triangle census of C (exact, from factors):")
	fmt.Printf("%-6s %20s      %-6s %20s\n", "vertex", "count", "edge", "count")
	vt := kronvalid.AllDirVertexTypes()
	et := kronvalid.AllDirEdgeTypes()
	for i := range vt {
		vTotal, err := stats.Vertex[vt[i]].Total()
		if err != nil {
			log.Fatal(err)
		}
		eTotal, err := stats.Edge[et[i]].Total()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %20d      %-6s %20d\n", vt[i], vTotal, et[i], eTotal)
	}

	// Validate one product vertex against a directly-censused egonet by
	// materializing a small slice: use the undirected participation sum.
	var grand int64
	for _, ty := range vt {
		total, err := stats.Vertex[ty].Total()
		if err != nil {
			log.Fatal(err)
		}
		grand += total
	}
	undirected, err := kronvalid.TriangleTotal(kronvalid.MustProduct(a.Undirected(), b))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconsistency: Σ_types Σ_v t^(τ)(v) = %d = 3·τ(C_u) = %d ✓=%v\n",
		grand, 3*undirected, grand == 3*undirected)
}
