// Modelgen demonstrates the model-agnostic communication-free generator
// layer: one spec string picks any registered random model, the sharded
// stream is byte-identical for every worker count, and the same stream
// feeds the parallel CSR builder directly.
package main

import (
	"fmt"
	"log"

	"kronvalid"
)

func main() {
	for _, spec := range []string{
		"er:n=100000,p=0.0002,seed=42",
		"gnm:n=100000,m=1000000,seed=42",
		"rmat:scale=16,edges=1048576,seed=42",
		"chunglu:n=100000,dmax=400,gamma=2.3,seed=42",
	} {
		g, err := kronvalid.NewGenerator(spec)
		if err != nil {
			log.Fatal(err)
		}
		// Stream once through the ordered pipeline, counting arcs.
		var count kronvalid.CountingSink
		if _, err := kronvalid.StreamModel(g, kronvalid.StreamOptions{}, &count); err != nil {
			log.Fatal(err)
		}
		// Materialize with the two-pass parallel builder; the digest is
		// identical for every worker count.
		csr, err := kronvalid.BuildModelCSR(g, kronvalid.StreamOptions{})
		if err != nil {
			log.Fatal(err)
		}
		maxDeg, hub := csr.MaxOutDegree()
		fmt.Printf("%-50s  %8d vertices  %9d arcs  max out-degree %d (vertex %d)  digest %s\n",
			g.Name(), csr.NumVertices(), count.N, maxDeg, hub, kronvalid.CSRDigest(csr))
	}
}
