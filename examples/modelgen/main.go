// Modelgen demonstrates the model-agnostic side of the unified Source
// pipeline: one spec string picks any registered random model, the same
// verbs that drive Kronecker products stream and materialize it, the
// sharded stream is byte-identical for every worker count, and the
// streamed Digest equals the digest of the materialized CSR.
package main

import (
	"context"
	"fmt"
	"log"

	"kronvalid"
)

func main() {
	ctx := context.Background()
	for _, spec := range []string{
		"er:n=100000,p=0.0002,seed=42",
		"gnm:n=100000,m=1000000,seed=42",
		"rmat:scale=16,edges=1048576,seed=42",
		"chunglu:n=100000,dmax=400,gamma=2.3,seed=42",
	} {
		g, err := kronvalid.NewGenerator(spec)
		if err != nil {
			log.Fatal(err)
		}
		src := kronvalid.ModelSource(g, 0)
		// Count streams once when the model only fixes the arc count in
		// expectation, and is free when the source knows it exactly.
		arcs, err := kronvalid.Count(ctx, src)
		if err != nil {
			log.Fatal(err)
		}
		// Materialize with the two-pass parallel builder (the ToCSR
		// default); the digest is identical for every worker count —
		// and identical to the streamed Digest of the same source.
		csr, err := kronvalid.ToCSR(ctx, src)
		if err != nil {
			log.Fatal(err)
		}
		streamed, err := kronvalid.Digest(ctx, src)
		if err != nil {
			log.Fatal(err)
		}
		if got := kronvalid.CSRDigest(csr); got != streamed {
			log.Fatalf("%s: streamed digest %s != CSR digest %s", src.Name(), streamed, got)
		}
		maxDeg, hub := csr.MaxOutDegree()
		fmt.Printf("%-50s  %8d vertices  %9d arcs  max out-degree %d (vertex %d)  digest %s\n",
			src.Name(), csr.NumVertices(), arcs, maxDeg, hub, streamed)
	}
}
