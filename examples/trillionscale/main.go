// Trillionscale reproduces the shape of the paper's §VI experiment: build
// a web-like factor A and its looped variant B = A + I, then print the
// statistics table for A, B, A⊗A and A⊗B — vertices, edges, and exact
// trillion-scale triangle counts computed from the factors in seconds.
//
// The paper used the 325k-vertex web-NotreDame graph (offline here; see
// DESIGN.md for the substitution) and reported hundred-trillion triangle
// counts for the products. Raise -n toward 3e5 to match that scale.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"kronvalid"
)

func row(name string, vertices, edges, triangles int64) {
	fmt.Printf("%-8s %14d %16d %20d\n", name, vertices, edges, triangles)
}

func main() {
	n := flag.Int("n", 1<<14, "factor vertices (paper: 325,729)")
	m := flag.Int("m", 3, "attachments per vertex (paper graph avg degree ~6.7)")
	pt := flag.Float64("pt", 0.75, "triad-closure probability")
	seed := flag.Uint64("seed", 2018, "generator seed")
	flag.Parse()

	start := time.Now()
	a := kronvalid.WebGraph(*n, *m, *pt, *seed)
	b := a.WithAllLoops() // B = A + I, the paper's §VI construction
	genTime := time.Since(start)

	start = time.Now()
	sa := kronvalid.CountTriangles(a)
	factorTime := time.Since(start)

	pAA := kronvalid.MustProduct(a, a)
	pAB := kronvalid.MustProduct(a, b)

	start = time.Now()
	tAA, err := kronvalid.TriangleTotal(pAA)
	if err != nil {
		log.Fatal(err)
	}
	tAB, err := kronvalid.TriangleTotal(pAB)
	if err != nil {
		log.Fatal(err)
	}
	formulaTime := time.Since(start)

	fmt.Printf("%-8s %14s %16s %20s\n", "Matrix", "Vertices", "Edges", "Triangles")
	row("A", int64(a.NumVertices()), a.NumEdgesUndirected(), sa.Total)
	row("B=A+I", int64(b.NumVertices()), b.NumEdgesUndirected(), sa.Total)
	row("A⊗A", pAA.NumVertices(), pAA.NumEdgesUndirected(), tAA)
	row("A⊗B", pAB.NumVertices(), pAB.NumEdgesUndirected(), tAB)

	fmt.Printf("\nfactor generation: %v\n", genTime)
	fmt.Printf("factor triangle pass: %v (%d wedge checks)\n", factorTime, sa.WedgeChecks)
	fmt.Printf("product ground truth via Kronecker formulas: %v\n", formulaTime)
	fmt.Printf("\nτ(A⊗A) = 6·τ(A)²: %v\n", tAA == 6*sa.Total*sa.Total)
	fmt.Printf("τ(A⊗B) ≥ τ(A⊗A) (self-loop boost): %v (%+d triangles)\n",
		tAB >= tAA, tAB-tAA)
}
