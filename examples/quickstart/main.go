// Quickstart: build a scale-free factor, form the implicit Kronecker
// product C = A ⊗ A, and read exact ground-truth triangle statistics of a
// graph six orders of magnitude larger than anything materialized here.
package main

import (
	"flag"
	"fmt"
	"log"

	"kronvalid"
)

func main() {
	n := flag.Int("n", 1<<12, "factor vertices")
	m := flag.Int("m", 4, "attachments per vertex")
	pt := flag.Float64("pt", 0.7, "triad-closure probability")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Parse()

	// 1. A modest scale-free factor with heavy clustering.
	a := kronvalid.WebGraph(*n, *m, *pt, *seed)
	sa := kronvalid.CountTriangles(a)
	fmt.Printf("factor A: %d vertices, %d edges, %d triangles (%d wedge checks)\n",
		a.NumVertices(), a.NumEdgesUndirected(), sa.Total, sa.WedgeChecks)

	// 2. The implicit product C = A ⊗ A. Nothing below materializes it.
	p := kronvalid.MustProduct(a, a)
	fmt.Printf("product C = A⊗A: %d vertices, %d undirected edges\n",
		p.NumVertices(), p.NumEdgesUndirected())

	// 3. Exact ground truth from the Kronecker formulas.
	total, err := kronvalid.TriangleTotal(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact τ(C) = %d  (= 6·τ(A)² = 6·%d²)\n", total, sa.Total)

	tc, err := kronvalid.VertexParticipation(p)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Query any vertex in O(1): here, the busiest one.
	maxDeg, argmax := p.MaxDegree()
	fmt.Printf("max degree %d at product vertex %d, which sits in %d triangles\n",
		maxDeg, argmax, tc.At(argmax))

	// 5. Spot-validate the formula with an egonet, exactly as the paper's
	// §VI experiment does: extract vertex 1's neighborhood from the
	// factors and count its triangles directly.
	ego, err := kronvalid.VerifyEgonet(p, tc, 1, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("egonet check at vertex 1: degree %d, %d local triangles — matches formula\n",
		ego.Degree, ego.LocalTriangles)

	// 6. Stream a few edges of the trillion-scale edge list.
	fmt.Println("first 5 arcs of C:")
	count := 0
	p.EachArc(func(u, v int64) bool {
		fmt.Printf("  %d -> %d\n", u, v)
		count++
		return count < 5
	})
}
