// Kroneckerpower demonstrates the k-fold construction the paper's
// companion extreme-scale generator uses: repeated Kronecker powers
// C = B ⊗ B ⊗ … ⊗ B of one small scale-free factor. Exact triangle
// ground truth follows τ(B^{⊗k}) = 6^{k-1}·τ(B)^k for loop-free B, and
// per-vertex statistics evaluate in O(k) at any of the Π n_i vertices.
package main

import (
	"flag"
	"fmt"
	"log"

	"kronvalid"
)

func main() {
	n := flag.Int("n", 512, "factor vertices")
	kMax := flag.Int("k", 4, "maximum Kronecker power")
	seed := flag.Uint64("seed", 31, "generator seed")
	flag.Parse()

	b := kronvalid.WebGraph(*n, 3, 0.75, *seed)
	tb := kronvalid.CountTriangles(b).Total
	fmt.Printf("factor B: %d vertices, %d edges, τ(B) = %d\n\n",
		b.NumVertices(), b.NumEdgesUndirected(), tb)

	fmt.Printf("%-4s %22s %22s %26s\n", "k", "vertices", "arcs", "triangles (exact)")
	for k := 1; k <= *kMax; k++ {
		p, err := kronvalid.KroneckerPower(b, k)
		if err != nil {
			fmt.Printf("%-4d stopped: %v\n", k, err)
			break
		}
		tau, err := kronvalid.MultiTriangleTotal(p)
		if err != nil {
			fmt.Printf("%-4d triangles overflow int64: %v\n", k, err)
			break
		}
		fmt.Printf("%-4d %22d %22d %26d\n", k, p.NumVertices(), p.NumArcs(), tau)
	}

	// Per-vertex ground truth at an arbitrary vertex of the largest power.
	p, err := kronvalid.KroneckerPower(b, *kMax)
	if err != nil {
		log.Fatal(err)
	}
	t, err := kronvalid.MultiVertexParticipation(p)
	if err != nil {
		log.Fatal(err)
	}
	v := p.NumVertices() / 3
	fmt.Printf("\nvertex %d of B^{⊗%d}: factors %v, degree %d, exact triangles %d\n",
		v, *kMax, p.FactorsOf(v), p.Degree(v), t.At(v))

	// Spot-validate the smallest nontrivial power explicitly.
	p2, err := kronvalid.KroneckerPower(b, 2)
	if err != nil {
		log.Fatal(err)
	}
	deltaAt, err := kronvalid.MultiEdgeDelta(p2)
	if err != nil {
		log.Fatal(err)
	}
	var eu, ev int64 = -1, -1
	p2.EachArc(func(u, v int64) bool { eu, ev = u, v; return false })
	fmt.Printf("first arc of B⊗B: (%d,%d) participates in %d triangles (exact)\n",
		eu, ev, deltaAt(eu, ev))
}
