// Labeledmotifs demonstrates Thm. 6/7: exact labeled-triangle (motif)
// statistics for a vertex-colored Kronecker product. A three-colored
// social-style factor (users / items / tags) is crossed with an unlabeled
// expander; every colored motif count at every vertex and edge of the
// large product is known exactly.
package main

import (
	"flag"
	"fmt"
	"log"

	"kronvalid"
)

var colorNames = []string{"red", "green", "blue"}

func main() {
	nA := flag.Int("na", 300, "vertices of labeled factor A")
	seed := flag.Uint64("seed", 23, "generator seed")
	flag.Parse()

	// Labeled factor: scale-free with colors assigned round-robin by id
	// (deterministic), three colors as in Fig. 6.
	base := kronvalid.WebGraph(*nA, 3, 0.65, *seed)
	labels := make([]int32, base.NumVertices())
	for v := range labels {
		labels[v] = int32(v % 3)
	}
	a := base.WithLabels(labels, 3)

	// Unlabeled expander-ish factor.
	b := kronvalid.ErdosRenyi(12, 0.5, *seed+1)

	p := kronvalid.MustProduct(a, b)
	stats, err := kronvalid.LabeledCensus(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("C = A⊗B: %d vertices, labels inherited from A (f_C(p) = f_A(i(p)))\n\n",
		p.NumVertices())

	fmt.Println("labeled triangle census at vertices (center | other two):")
	for q1 := int32(0); q1 < 3; q1++ {
		for q2 := int32(0); q2 < 3; q2++ {
			for q3 := q2; q3 < 3; q3++ {
				ty := kronvalid.LabelVertexType{Q1: q1, Q2: q2, Q3: q3}
				total, err := stats.Vertex[ty].Total()
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  center %-5s others {%s,%s}: %12d\n",
					colorNames[q1], colorNames[q2], colorNames[q3], total)
			}
		}
	}

	// Motif query: how many rainbow triangles (all three colors) touch
	// the first green product vertex?
	var greenVertex int64 = -1
	for v := int64(0); v < p.NumVertices(); v++ {
		if p.Label(v) == 1 {
			greenVertex = v
			break
		}
	}
	rainbow := stats.Vertex[kronvalid.LabelVertexType{Q1: 1, Q2: 0, Q3: 2}]
	fmt.Printf("\nrainbow triangles at product vertex %d (green): %d\n",
		greenVertex, rainbow.At(greenVertex))

	// Consistency: summing all labeled types recovers the unlabeled
	// participation total 3·τ(C).
	var grand int64
	for _, vs := range stats.Vertex {
		total, err := vs.Total()
		if err != nil {
			log.Fatal(err)
		}
		grand += total
	}
	tau, err := kronvalid.TriangleTotal(kronvalid.MustProduct(a.Unlabeled(), b))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Σ over all labeled types = %d = 3·τ(C) = %d ✓=%v\n", grand, 3*tau, grand == 3*tau)
}
