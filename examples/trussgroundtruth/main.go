// Trussgroundtruth demonstrates Thm. 3: generating a large graph whose
// complete truss decomposition is known in advance. Factor B comes from
// the paper's §III.D(b) preferential-attachment generator (every edge in
// at most one triangle); factor A is arbitrary. The trussness of every
// edge of C = A ⊗ B is then read off A's decomposition — and the program
// cross-checks a materialized instance against direct peeling.
package main

import (
	"flag"
	"fmt"
	"log"

	"kronvalid"
)

func main() {
	nA := flag.Int("na", 60, "vertices of dense factor A")
	pA := flag.Float64("pa", 0.25, "edge probability of A")
	nB := flag.Int("nb", 40, "vertices of Δ≤1 factor B")
	seed := flag.Uint64("seed", 7, "generator seed")
	verify := flag.Bool("verify", true, "materialize C and verify by direct peeling")
	flag.Parse()

	a := kronvalid.ErdosRenyi(*nA, *pA, *seed)
	b := kronvalid.TriangleLimitedPA(*nB, *seed+1)
	fmt.Printf("A: ER(%d, %.2f) with %d edges; max Δ_A = %d\n",
		*nA, *pA, a.NumEdgesUndirected(), kronvalid.MaxEdgeTriangles(a))
	fmt.Printf("B: §III.D(b) generator, %d vertices, %d edges; max Δ_B = %d (hypothesis of Thm. 3)\n",
		*nB, b.NumEdgesUndirected(), kronvalid.MaxEdgeTriangles(b))

	p := kronvalid.MustProduct(a, b)
	pt, err := kronvalid.ProductTrussDecomposition(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nC = A⊗B: %d vertices, %d edges, ground-truth truss known for every edge\n",
		p.NumVertices(), p.NumEdgesUndirected())
	fmt.Printf("max κ with non-empty κ-truss: %d\n", pt.MaxK())
	fmt.Println("κ-truss sizes from the Kronecker formula:")
	sizes := pt.TrussSizes()
	for k := 3; k <= pt.MaxK(); k++ {
		fmt.Printf("  |T^(%d)| = %d edges\n", k, sizes[k])
	}

	if !*verify {
		return
	}
	c, err := p.Materialize(200_000, 40_000_000)
	if err != nil {
		log.Fatalf("factors too large to verify explicitly: %v (rerun with -verify=false)", err)
	}
	direct := kronvalid.DecomposeTruss(c)
	mismatches := 0
	c.EachEdgeUndirected(func(u, v int32) bool {
		if pt.EdgeTruss(int64(u), int64(v)) != direct.EdgeTruss(u, v) {
			mismatches++
		}
		return true
	})
	fmt.Printf("\nverification against direct peeling of the %d-edge product: %d mismatches\n",
		c.NumEdgesUndirected(), mismatches)
	if mismatches > 0 {
		log.Fatal("Thm. 3 verification FAILED")
	}
	fmt.Println("Thm. 3 verified edge-by-edge ✓")
}
