package kronvalid

import (
	"bytes"
	"math"
	"testing"
)

func TestFacadeMultiProduct(t *testing.T) {
	b := WebGraph(128, 3, 0.7, 3)
	p, err := KroneckerPower(b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 3 {
		t.Errorf("K = %d", p.K())
	}
	tau, err := MultiTriangleTotal(p)
	if err != nil {
		t.Fatal(err)
	}
	tb := CountTriangles(b).Total
	if tau != 36*tb*tb*tb {
		t.Fatalf("τ(B^⊗3) = %d, want 36·%d³", tau, tb)
	}
	ts, err := MultiVertexParticipation(p)
	if err != nil {
		t.Fatal(err)
	}
	total, err := ts.Total()
	if err != nil {
		t.Fatal(err)
	}
	if total != 3*tau {
		t.Error("participation total != 3τ")
	}
	deltaAt, err := MultiEdgeDelta(p)
	if err != nil {
		t.Fatal(err)
	}
	var eu, ev int64 = -1, -1
	p.EachArc(func(u, v int64) bool { eu, ev = u, v; return false })
	if deltaAt(eu, ev) < 0 {
		t.Error("negative edge delta")
	}
	// Three-distinct-factor construction.
	mp, err := NewMultiProduct(Clique(3), Cycle(4), Path(5))
	if err != nil {
		t.Fatal(err)
	}
	if mp.NumVertices() != 60 {
		t.Errorf("NumVertices = %d", mp.NumVertices())
	}
}

func TestFacadeValidation(t *testing.T) {
	a := ErdosRenyi(10, 0.4, 1)
	b := TriangleLimitedPA(8, 2)
	p := MustProduct(a, b)
	r, err := ValidateFull(p, 10000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllPassed() {
		t.Fatalf("failures: %v", r.Failures())
	}
	big := MustProduct(WebGraph(2048, 3, 0.7, 5), WebGraph(2048, 3, 0.7, 6))
	rs, err := ValidateSampled(big, 8, 8, 1<<20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.AllPassed() {
		t.Fatalf("sampled failures: %v", rs.Failures())
	}
}

func TestFacadeBinaryIO(t *testing.T) {
	g := WebGraph(100, 3, 0.7, 9)
	var buf bytes.Buffer
	if err := WriteGraphBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraphBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("binary round trip failed")
	}
}

func TestFacadeClusteringAndWedges(t *testing.T) {
	a := WebGraph(200, 3, 0.7, 11)
	p := MustProduct(a, a)
	wedges, err := ProductWedgeCount(p)
	if err != nil {
		t.Fatal(err)
	}
	tau, err := TriangleTotal(p)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := ProductGlobalClustering(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cc-3*float64(tau)/float64(wedges)) > 1e-12 {
		t.Error("transitivity inconsistent with wedge count")
	}
	if cc <= 0 || cc >= 1 {
		t.Errorf("transitivity %v out of (0,1)", cc)
	}
}

func TestFacadeChungLuNull(t *testing.T) {
	a := WebGraph(300, 3, 0.75, 13)
	p := MustProduct(a, a)
	degs := p.DegreeVector()
	want := ExpectedTrianglesChungLu(degs)
	if want <= 0 {
		t.Fatal("expected triangles should be positive")
	}
	cl := ChungLu(degs, 17)
	got := CountTriangles(cl).Total
	if float64(got) < want/3 || float64(got) > want*3 {
		t.Errorf("sampled null τ = %d, analytic %.0f", got, want)
	}
	// The mechanism of Rem. 1: the nonstochastic product keeps more.
	tau, err := TriangleTotal(p)
	if err != nil {
		t.Fatal(err)
	}
	if tau <= got {
		t.Errorf("nonstochastic τ = %d should exceed independent null %d", tau, got)
	}
}

func TestFacadeTruss(t *testing.T) {
	g := HubCycle(4)
	p := MustProduct(g, g)
	// Thm. 3 must reject (Δ = 2 on hub edges), per Ex. 2.
	if _, err := ProductTrussDecomposition(p); err == nil {
		t.Fatal("expected Thm. 3 rejection")
	}
	ok := MustProduct(Clique(5), TriangleLimitedPA(10, 3))
	pt, err := ProductTrussDecomposition(ok)
	if err != nil {
		t.Fatal(err)
	}
	if pt.MaxK() != 5 {
		t.Errorf("MaxK = %d, want 5 (K_5 factor)", pt.MaxK())
	}
}

func TestFacadeCensusOfExplicitGraphs(t *testing.T) {
	dir := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, false)
	vc := DirectedVertexCensusOf(dir)
	var total int64
	for _, ty := range AllDirVertexTypes() {
		for v := int32(0); v < 3; v++ {
			total += vc.At(ty, v)
		}
	}
	if total != 3 {
		t.Errorf("3-cycle census total = %d, want 3", total)
	}
	ec := DirectedEdgeCensusOf(dir)
	var eTotal int64
	for _, ty := range AllDirEdgeTypes() {
		eTotal += ec.Delta[ty].Total()
	}
	if eTotal != 3 {
		t.Errorf("3-cycle edge census total = %d, want 3", eTotal)
	}
}

func TestFacadeDegrees(t *testing.T) {
	a := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}}, false)
	b := Clique(3)
	p := MustProduct(a, b)
	dOut := OutDegrees(p)
	dIn := InDegrees(p)
	var sumOut, sumIn int64
	for v := int64(0); v < p.NumVertices(); v++ {
		sumOut += dOut.At(v)
		sumIn += dIn.At(v)
	}
	if sumOut != sumIn || sumOut != p.NumArcs() {
		t.Errorf("degree sums %d/%d, want %d", sumOut, sumIn, p.NumArcs())
	}
	if !math.IsNaN(HillEstimator([]int64{1, 1}, 5)) {
		t.Error("HillEstimator should be NaN on tiny samples")
	}
}
