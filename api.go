package kronvalid

import (
	"context"
	"io"

	"kronvalid/internal/census"
	"kronvalid/internal/csr"
	"kronvalid/internal/distgen"
	"kronvalid/internal/gen"
	"kronvalid/internal/gio"
	"kronvalid/internal/graph"
	"kronvalid/internal/kron"
	"kronvalid/internal/model"
	"kronvalid/internal/serve"
	"kronvalid/internal/sparse"
	"kronvalid/internal/stats"
	"kronvalid/internal/stream"
	"kronvalid/internal/triangle"
	"kronvalid/internal/truss"
	"kronvalid/internal/verify"
)

// ---- graphs ----

// Graph is an explicit factor graph: compressed sorted adjacency with
// optional self loops, direction, and vertex labels. Factor graphs are
// small (they fit in memory); product graphs stay implicit in Product.
type Graph = graph.Graph

// Edge is a directed arc (or one orientation of an undirected edge).
type Edge = graph.Edge

// FromEdges builds a graph on n vertices from arcs, deduplicating; with
// symmetrize it returns the undirected closure.
func FromEdges(n int, edges []Edge, symmetrize bool) *Graph {
	return graph.FromEdges(n, edges, symmetrize)
}

// Matrix is a CSR sparse integer matrix, the language the paper's
// formulas are stated in. Statistics matrices (Δ_A, censuses) use it.
type Matrix = sparse.Matrix

// ---- generators ----

// Clique returns K_n (Ex. 1).
func Clique(n int) *Graph { return gen.Clique(n) }

// CliqueWithLoops returns J_n, the clique with all self loops (Ex. 1).
func CliqueWithLoops(n int) *Graph { return gen.CliqueWithLoops(n) }

// HubCycle returns the Ex. 2 family: a c-cycle plus a hub adjacent to
// every cycle vertex.
func HubCycle(c int) *Graph { return gen.HubCycle(c) }

// Path returns the n-vertex path.
func Path(n int) *Graph { return gen.Path(n) }

// Cycle returns the n-cycle.
func Cycle(n int) *Graph { return gen.Cycle(n) }

// Star returns the (n-1)-leaf star.
func Star(n int) *Graph { return gen.Star(n) }

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) *Graph { return gen.CompleteBipartite(a, b) }

// ErdosRenyi returns G(n, p), deterministic in seed.
func ErdosRenyi(n int, p float64, seed uint64) *Graph { return gen.ErdosRenyi(n, p, seed) }

// GNM returns G(n, m) — exactly m distinct edges — deterministic in seed.
func GNM(n int, m int64, seed uint64) *Graph { return gen.GNM(n, m, seed) }

// BarabasiAlbert returns an n-vertex preferential-attachment graph with
// up to m edges per arrival, built on the communication-free retracing
// core (model kind "ba") — the explicit-graph adapter of the streamed
// generator.
func BarabasiAlbert(n, m int, seed uint64) *Graph { return gen.BarabasiAlbert(n, m, seed) }

// RGG2D returns the random geometric graph on the unit square: n uniform
// points, an edge for every pair within Euclidean distance r. The
// explicit-graph adapter of the streamed cell-grid generator (model kind
// "rgg2d").
func RGG2D(n int64, r float64, seed uint64) (*Graph, error) { return gen.RGG2D(n, r, seed) }

// RGG3D is RGG2D on the unit cube (model kind "rgg3d").
func RGG3D(n int64, r float64, seed uint64) (*Graph, error) { return gen.RGG3D(n, r, seed) }

// RHG returns the random hyperbolic graph: n points in a hyperbolic
// disk whose radius is solved for target average degree deg, with
// radial density set by the power-law exponent gamma (> 2), and an
// edge for every pair within hyperbolic distance R. The explicit-graph
// adapter of the streamed band/cell generator (model kind "rhg").
func RHG(n int64, deg, gamma float64, seed uint64) (*Graph, error) {
	return gen.RHG(n, deg, gamma, seed)
}

// Grid2D returns the x×y lattice with each lattice edge kept
// independently with probability p; wrap adds the per-axis wraparound
// (torus) edges. The explicit-graph adapter of the streamed
// geometric-skip generator (model kind "grid2d").
func Grid2D(x, y int64, p float64, wrap bool, seed uint64) (*Graph, error) {
	return gen.Grid2D(x, y, p, wrap, seed)
}

// Grid3D is Grid2D for the x×y×z lattice (model kind "grid3d").
func Grid3D(x, y, z int64, p float64, wrap bool, seed uint64) (*Graph, error) {
	return gen.Grid3D(x, y, z, p, wrap, seed)
}

// WebGraph returns a scale-free graph with triad closure (probability pt
// per attachment): the offline stand-in for the paper's web-NotreDame
// factor.
func WebGraph(n, m int, pt float64, seed uint64) *Graph { return gen.WebGraph(n, m, pt, seed) }

// RMAT returns a stochastic-Kronecker (R-MAT) graph: the Rem. 1 baseline.
func RMAT(scale int, edges int64, a, b, c, d float64, seed uint64) *Graph {
	return gen.RMAT(scale, edges, a, b, c, d, seed)
}

// Graph500RMAT returns an R-MAT graph with Graph500 parameters.
func Graph500RMAT(scale int, seed uint64) *Graph { return gen.Graph500RMAT(scale, seed) }

// ChungLu samples the edge-independent null model with a prescribed
// expected degree sequence (the Rem. 1 stochastic baseline).
func ChungLu(degrees []int64, seed uint64) *Graph { return gen.ChungLu(degrees, seed) }

// ExpectedTrianglesChungLu returns the analytic expected triangle count
// of the edge-independent null with the given degrees.
func ExpectedTrianglesChungLu(degrees []int64) float64 {
	return gen.ExpectedTrianglesChungLu(degrees)
}

// TriangleLimitedPA returns the paper's §III.D(b) generator: a connected
// power-law graph in which every edge closes at most one triangle
// (the Thm. 3 hypothesis for factor B).
func TriangleLimitedPA(n int, seed uint64) *Graph { return gen.TriangleLimitedPA(n, seed) }

// ThinToDeltaOne is §III.D(a): deletes edges of an arbitrary undirected
// graph until Δ ≤ 1 everywhere, preserving connectivity via a protected
// spanning forest.
func ThinToDeltaOne(g *Graph, seed uint64) *Graph { return gen.ThinToDeltaOne(g, seed) }

// MaxEdgeTriangles reports the largest per-edge triangle count (the Δ ≤ 1
// checker).
func MaxEdgeTriangles(g *Graph) int64 { return gen.MaxEdgeTriangles(g) }

// ---- direct (explicit-graph) statistics ----

// TriangleResult is the exact triangle statistics of an explicit graph.
type TriangleResult = triangle.Result

// CountTriangles computes t_A, Δ_A, τ(A) and the wedge-check cost for an
// explicit undirected graph.
func CountTriangles(g *Graph) *TriangleResult { return triangle.Count(g) }

// LocalClusteringCoefficients returns per-vertex clustering coefficients.
func LocalClusteringCoefficients(g *Graph) []float64 {
	return triangle.LocalClusteringCoefficients(g)
}

// GlobalClusteringCoefficient returns the transitivity 3τ/#wedges.
func GlobalClusteringCoefficient(g *Graph) float64 {
	return triangle.GlobalClusteringCoefficient(g)
}

// TrussDecomposition is the truss decomposition of an explicit graph.
type TrussDecomposition = truss.Decomposition

// DecomposeTruss peels an explicit undirected graph into its κ-trusses.
func DecomposeTruss(g *Graph) *TrussDecomposition { return truss.Decompose(g) }

// ---- the Kronecker product and its ground-truth formulas ----

// Product is the implicit Kronecker product C = A ⊗ B.
type Product = kron.Product

// NewProduct validates factors and returns the implicit product.
func NewProduct(a, b *Graph) (*Product, error) { return kron.NewProduct(a, b) }

// MustProduct is NewProduct that panics on invalid factors.
func MustProduct(a, b *Graph) *Product { return kron.MustProduct(a, b) }

// VertexStat is a per-vertex product statistic in Kronecker-sum form,
// evaluated lazily: At(p) is O(#terms) regardless of product size.
type VertexStat = kron.KronVecSum

// EdgeStat is a per-edge product statistic in Kronecker-sum form.
type EdgeStat = kron.KronMatSum

// FactorStats bundles t, Δ, diag(B³) and B∘B² for one factor.
type FactorStats = kron.FactorTriangleStats

// ComputeFactorStats runs the triangle engine and sparse kernels on one
// factor; reuse the result across formulas.
func ComputeFactorStats(g *Graph) *FactorStats { return kron.ComputeFactorStats(g) }

// VertexParticipation returns the exact t_C for any undirected factors
// (all self-loop regimes; Thm. 1, Cor. 1 and the general expansion).
func VertexParticipation(p *Product) (*VertexStat, error) { return kron.VertexParticipation(p) }

// EdgeParticipation returns the exact Δ_C (Thm. 2, Cor. 2, general).
func EdgeParticipation(p *Product) (*EdgeStat, error) { return kron.EdgeParticipation(p) }

// TriangleTotal returns the exact τ(C) with overflow checking.
func TriangleTotal(p *Product) (int64, error) { return kron.TriangleTotal(p) }

// ProductWedgeCount returns the exact wedge count of C in O(n_A + n_B).
func ProductWedgeCount(p *Product) (int64, error) { return kron.WedgeCount(p) }

// ProductGlobalClustering returns the exact transitivity of C without
// materializing it.
func ProductGlobalClustering(p *Product) (float64, error) { return kron.GlobalClustering(p) }

// ProductLocalClustering returns an O(1)-per-query local clustering
// coefficient evaluator over all n_A·n_B product vertices.
func ProductLocalClustering(p *Product) (func(v int64) float64, error) {
	return kron.LocalClustering(p)
}

// OutDegrees returns d^out_C = d^out_A ⊗ d^out_B.
func OutDegrees(p *Product) *VertexStat { return kron.OutDegrees(p) }

// InDegrees returns d^in_C = d^in_A ⊗ d^in_B.
func InDegrees(p *Product) *VertexStat { return kron.InDegrees(p) }

// ---- k-fold products (the repeated-power construction of [3]) ----

// MultiProduct is the k-fold implicit product B_1 ⊗ … ⊗ B_k.
type MultiProduct = kron.MultiProduct

// NewMultiProduct validates factors and returns the k-fold product.
func NewMultiProduct(factors ...*Graph) (*MultiProduct, error) {
	return kron.NewMultiProduct(factors...)
}

// KroneckerPower returns B ⊗ B ⊗ … ⊗ B (k copies).
func KroneckerPower(b *Graph, k int) (*MultiProduct, error) { return kron.KroneckerPower(b, k) }

// MultiVertexStat is a per-vertex statistic of a k-fold product.
type MultiVertexStat = kron.MultiVecSum

// MultiVertexParticipation returns t_C for a k-fold product (all
// self-loop regimes).
func MultiVertexParticipation(p *MultiProduct) (*MultiVertexStat, error) {
	return kron.MultiVertexParticipation(p)
}

// MultiTriangleTotal returns exact τ of a k-fold product; loop-free
// factors give 6^{k-1}·Π τ(B_i).
func MultiTriangleTotal(p *MultiProduct) (int64, error) { return kron.MultiTriangleTotal(p) }

// MultiEdgeDelta returns a per-arc Δ_C evaluator for a k-fold product.
func MultiEdgeDelta(p *MultiProduct) (func(u, v int64) int64, error) {
	return kron.MultiEdgeDelta(p)
}

// ---- validation (the paper's §VI workflow as a library) ----

// ValidationReport collects named check outcomes.
type ValidationReport = verify.Report

// ValidateFull materializes C (within limits) and cross-checks every
// applicable formula against structure-oblivious recomputation.
func ValidateFull(p *Product, maxVertices, maxArcs int64) (*ValidationReport, error) {
	return verify.Full(p, maxVertices, maxArcs)
}

// ValidateSampled spot-checks an arbitrarily large product by egonet and
// per-edge recounts.
func ValidateSampled(p *Product, vertexSamples, edgeSamples int, maxDegree int64, seed uint64) (*ValidationReport, error) {
	return verify.Sampled(p, vertexSamples, edgeSamples, maxDegree, seed)
}

// ---- directed and labeled censuses of the product ----

// DirVertexType is one of the 15 directed triangle types at a vertex
// (Fig. 4).
type DirVertexType = census.VertexType

// DirEdgeType is one of the 15 directed triangle types at an edge
// (Fig. 5).
type DirEdgeType = census.EdgeType

// LabelVertexType identifies a labeled triangle at a vertex (Fig. 6).
type LabelVertexType = census.LabelVertexType

// LabelEdgeType identifies a labeled triangle at an edge (Fig. 6).
type LabelEdgeType = census.LabelEdgeType

// AllDirVertexTypes lists the canonical directed vertex types.
func AllDirVertexTypes() []DirVertexType { return census.AllVertexTypes() }

// AllDirEdgeTypes lists the canonical directed edge types.
func AllDirEdgeTypes() []DirEdgeType { return census.AllEdgeTypes() }

// DirectedStats is the Kronecker-derived directed census of the product.
type DirectedStats = kron.DirectedStats

// DirectedCensus computes all 30 directed type statistics of C = A ⊗ B
// (Thm. 4 and Thm. 5: A loop-free, B undirected).
func DirectedCensus(p *Product) (*DirectedStats, error) { return kron.DirectedCensus(p) }

// DirectedVertexCensusOf computes the 15 per-vertex type counts of an
// explicit directed graph.
func DirectedVertexCensusOf(g *Graph) *census.VertexCensus {
	return census.DirectedVertexCensus(g)
}

// DirectedEdgeCensusOf computes the 15 per-edge type count matrices of an
// explicit directed graph.
func DirectedEdgeCensusOf(g *Graph) *census.EdgeCensus {
	return census.DirectedEdgeCensus(g)
}

// LabeledStats is the Kronecker-derived labeled census of the product.
type LabeledStats = kron.LabeledStats

// LabeledCensus computes all labeled type statistics of C = A ⊗ B
// (Thm. 6 and Thm. 7: A labeled loop-free undirected, B unlabeled).
func LabeledCensus(p *Product) (*LabeledStats, error) { return kron.LabeledCensus(p) }

// ---- truss ground truth (Thm. 3) ----

// ProductTruss is the implicit truss decomposition of C under Δ_B ≤ 1.
type ProductTruss = kron.ProductTruss

// ProductTrussDecomposition validates Thm. 3's hypotheses and returns the
// implicit decomposition.
func ProductTrussDecomposition(p *Product) (*ProductTruss, error) {
	return kron.TrussDecomposition(p)
}

// ---- egonets (the §VI validation device) ----

// Egonet is an induced neighborhood subgraph of one product vertex.
type Egonet = kron.Egonet

// ExtractEgonet builds the egonet of product vertex v without
// materializing C.
func ExtractEgonet(p *Product, v int64, maxDegree int64) (*Egonet, error) {
	return kron.ExtractEgonet(p, v, maxDegree)
}

// VerifyEgonet extracts an egonet and checks its center triangle count
// against the formula value.
func VerifyEgonet(p *Product, t *VertexStat, v int64, maxDegree int64) (*Egonet, error) {
	return kron.VerifyEgonet(p, t, v, maxDegree)
}

// ---- distributed-style generation ----

// GenPlan is a deterministic communication-free partition of the product
// edge stream across workers. It implements the unified Source contract,
// so it plugs directly into Stream, ToCSR, and WriteShards (ProductSource
// is the Source-typed spelling of NewGenPlan).
type GenPlan = distgen.Plan

// GenArc is one directed product edge emitted by a GenPlan shard.
type GenArc = distgen.Arc

// NewGenPlan builds a plan for the given worker count (0 = GOMAXPROCS).
func NewGenPlan(p *Product, workers int) *GenPlan { return distgen.NewPlan(p, workers) }

// ---- batched edge streaming (the unified generation pipeline) ----

// Arc is one directed product edge of the batched pipeline (identical to
// GenArc).
type Arc = stream.Arc

// ArcSink consumes batches of product arcs; see the composable sinks
// below and NewEdgeListSink/NewBinaryArcSink for serializers.
type ArcSink = stream.Sink

// StreamOptions tunes the batched pipeline: worker count, batch size, and
// per-shard read-ahead. The zero value means GOMAXPROCS workers and
// 4096-arc batches.
//
// Deprecated: the unified verbs (Stream, ToCSR, WriteShards) take
// functional options — WithWorkers, WithBatchSize, WithReadAhead,
// WithProgress — instead, so new knobs never break signatures.
type StreamOptions = stream.Options

// CountingSink counts arcs; read N after streaming.
type CountingSink = stream.CountSink

// DedupCheckSink errors if the stream ever leaves strict canonical order
// (which also proves it is duplicate-free).
type DedupCheckSink = stream.DedupCheckSink

// DegreeHistogramSink accumulates the out-degree histogram of the
// stream's source vertices (complete after the stream flushes).
type DegreeHistogramSink = stream.DegreeHistogramSink

// MultiSink fans each batch out to several sinks, so one generation pass
// can write, count, and check simultaneously.
type MultiSink = stream.MultiSink

// SinkFunc adapts a function to an ArcSink with a no-op Flush.
type SinkFunc = stream.FuncSink

// NewEdgeListSink returns an ArcSink serializing arcs as "u\tv\n" lines
// via batched strconv encoding (no per-arc formatting).
func NewEdgeListSink(w io.Writer) ArcSink { return gio.NewArcTextWriter(w) }

// NewBinaryArcSink returns an ArcSink serializing arcs as little-endian
// (uint64, uint64) pairs, 16 bytes per arc.
func NewBinaryArcSink(w io.Writer) ArcSink { return gio.NewArcBinaryWriter(w) }

// ReadTextArcs parses an arc stream written by an edge-list sink back
// into arcs (comments and blank lines skipped).
func ReadTextArcs(r io.Reader) ([]Arc, error) { return gio.ReadArcsText(r) }

// ReadBinaryArcs parses an arc stream written by a binary arc sink. A
// trailing partial record is a truncation error, never a short list.
func ReadBinaryArcs(r io.Reader) ([]Arc, error) { return gio.ReadArcsBinary(r) }

// legacyOptions maps a legacy StreamOptions struct onto the functional
// options of the unified verbs, so every deprecated shim is exactly the
// new call it documents.
func legacyOptions(o StreamOptions) []Option {
	return []Option{
		WithWorkers(o.Workers),
		WithBatchSize(o.BatchSize),
		WithReadAhead(o.Buffer),
		WithProgress(o.Progress),
	}
}

// StreamEdges streams every arc of C = A ⊗ B into sink through the
// parallel batched pipeline. Byte stream and arc count are identical to
// Stream over ProductSource(p, opts.Workers).
//
// Deprecated: use Stream with a ProductSource.
func StreamEdges(p *Product, opts StreamOptions, sink ArcSink) (int64, error) {
	return Stream(context.Background(), ProductSource(p, opts.Workers), sink, legacyOptions(opts)...)
}

// ShardManifest describes a WriteSharded output directory: factor
// digests, partition, and per-shard arc counts.
type ShardManifest = distgen.Manifest

// WriteShardedOptions configures WriteSharded.
type WriteShardedOptions = distgen.WriteOptions

// WriteSharded writes the product's edge list into dir as one file per
// shard plus a manifest.json, generating shards in parallel. Identical
// output to WriteShards over ProductSource(p, workers).
//
// Deprecated: use WriteShards with a ProductSource.
func WriteSharded(dir string, p *Product, workers int, opts WriteShardedOptions) (*ShardManifest, error) {
	return WriteShards(context.Background(), dir, ProductSource(p, workers),
		WithBinary(opts.Binary), WithWorkers(opts.Workers),
		WithBatchSize(opts.BatchSize), WithProgress(opts.Progress))
}

// ReadShardManifest parses the manifest.json of a WriteSharded directory.
func ReadShardManifest(dir string) (*ShardManifest, error) { return distgen.ReadManifest(dir) }

// ---- model-agnostic random-model generation ----

// ModelGenerator is a registered random graph model expressed as a
// communication-free sharded arc stream in the two-phase
// Sample/Enumerate shape: raw randomness lives in cells any worker
// regenerates from (seed, cell) alone, and chunk enumeration may
// recompute foreign cells (rgg neighbor grids) or retrace per-edge
// hash chains (ba) instead of communicating, so the concatenated
// stream is byte-identical for every worker count — the same invariant
// the Kronecker pipeline has, extended to Erdős–Rényi, G(n, m), R-MAT,
// Chung–Lu, random geometric graphs (2D/3D), Barabási–Albert, random
// hyperbolic graphs and wraparound lattices (grid2d/grid3d). MODELS.md
// documents every registered kind's spec grammar and guarantees.
type ModelGenerator = model.Generator

// ModelPlan groups a model's randomness chunks into contiguous shards
// of near-equal expected work; the plan never touches a random draw. It
// implements the unified Source contract, so it plugs directly into
// Stream, ToCSR, and WriteShards (ModelSource is the Source-typed
// spelling of NewModelPlan).
type ModelPlan = model.Plan

// NewGenerator builds a model generator from a spec string, e.g.
// "er:n=100000,p=0.001,seed=42", "rgg2d:n=100000,r=0.005" or
// "ba:n=100000,d=4" (the KaGen-style "rgg2d(n=100000;r=0.005)" form is
// accepted as an alias). Every generator's Name() is a spec that
// reproduces its exact stream.
func NewGenerator(spec string) (ModelGenerator, error) { return model.New(spec) }

// ModelKinds lists the registered model kinds.
func ModelKinds() []string { return model.Kinds() }

// NewModelPlan builds a sharding plan for the given worker count
// (0 = GOMAXPROCS).
func NewModelPlan(g ModelGenerator, workers int) *ModelPlan { return model.NewPlan(g, workers) }

// StreamModel streams the model's canonical arcs into sink through the
// ordered parallel pipeline. Byte stream and arc count are identical to
// Stream over ModelSource(g, opts.Workers).
//
// Deprecated: use Stream with a ModelSource.
func StreamModel(g ModelGenerator, opts StreamOptions, sink ArcSink) (int64, error) {
	return Stream(context.Background(), ModelSource(g, opts.Workers), sink, legacyOptions(opts)...)
}

// StreamModelToCSR materializes the model's graph through the one-pass
// ordered CSR accumulator.
//
// Deprecated: use ToCSR with a ModelSource and WithTwoPass(false).
func StreamModelToCSR(g ModelGenerator, opts StreamOptions) (*CSRGraph, error) {
	return ToCSR(context.Background(), ModelSource(g, opts.Workers),
		append(legacyOptions(opts), WithTwoPass(false))...)
}

// BuildModelCSR materializes the model's graph with the two-pass
// parallel CSR builder (count → prefix → scatter over the replayable
// shards); digest-identical to StreamModelToCSR for every worker count.
//
// Deprecated: use ToCSR with a ModelSource (two-pass is the default).
func BuildModelCSR(g ModelGenerator, opts StreamOptions) (*CSRGraph, error) {
	return ToCSR(context.Background(), ModelSource(g, opts.Workers), legacyOptions(opts)...)
}

// WriteShardedModel writes the model's edge list into dir as one file
// per shard plus a manifest.json whose model field records the spec.
// Identical output to WriteShards over ModelSource(g, workers).
//
// Deprecated: use WriteShards with a ModelSource.
func WriteShardedModel(dir string, g ModelGenerator, workers int, opts WriteShardedOptions) (*ShardManifest, error) {
	return WriteShards(context.Background(), dir, ModelSource(g, workers),
		WithBinary(opts.Binary), WithWorkers(opts.Workers),
		WithBatchSize(opts.BatchSize), WithProgress(opts.Progress))
}

// ---- CSR ingestion (the consumption side of the pipeline) ----

// CSRGraph is a materialized product adjacency in compressed-sparse-row
// form over int64 product vertex ids: sorted, duplicate-free neighbor
// slices in one flat backing array. It supports O(log d) arc probes,
// O(1) degree reads, parallel transpose/in-degree construction, and
// streaming back out as canonical Arc batches.
type CSRGraph = csr.Graph

// CSRSink accumulates one canonical-order arc stream into a CSRGraph in
// a single pass (no sort — canonical order assembles by appending). Use
// it to ingest non-replayable streams such as files or pipes; for
// products themselves BuildCSR is faster.
type CSRSink = csr.Sink

// NewCSRSink returns a one-pass CSR accumulator for vertex ids in
// [0, numVertices); arcsHint pre-sizes the arc array (0 if unknown).
// After the stream flushes, call Graph() for the result.
func NewCSRSink(numVertices, arcsHint int64) *CSRSink { return csr.NewSink(numVertices, arcsHint) }

// BuildCSR materializes the adjacency of C = A ⊗ B as a CSRGraph using
// the parallel two-pass builder; identical to ToCSR over
// ProductSource(p, opts.Workers).
//
// Deprecated: use ToCSR with a ProductSource (two-pass is the default).
func BuildCSR(p *Product, opts StreamOptions) (*CSRGraph, error) {
	return ToCSR(context.Background(), ProductSource(p, opts.Workers), legacyOptions(opts)...)
}

// StreamToCSR materializes C = A ⊗ B by driving the ordered parallel
// pipeline into a one-pass CSR accumulator.
//
// Deprecated: use ToCSR with a ProductSource and WithTwoPass(false).
func StreamToCSR(p *Product, opts StreamOptions) (*CSRGraph, error) {
	return ToCSR(context.Background(), ProductSource(p, opts.Workers),
		append(legacyOptions(opts), WithTwoPass(false))...)
}

// WriteCSR serializes a CSRGraph in the one-block binary format
// (KRONCSR1): header, offsets, then the flat arc array.
func WriteCSR(w io.Writer, g *CSRGraph) error { return gio.WriteCSR(w, g) }

// ReadCSR deserializes a CSRGraph written by WriteCSR, rejecting
// truncated or structurally corrupt input.
func ReadCSR(r io.Reader) (*CSRGraph, error) { return gio.ReadCSR(r) }

// CSRDigest fingerprints a CSRGraph with the same FNV-1a scheme as
// GraphDigest over factor graphs, so the two agree on any unlabeled
// graph representable both ways. Digest equality across worker counts is
// the machine-checked determinism invariant of the ingestion pipeline.
func CSRDigest(g *CSRGraph) string { return gio.CSRDigest(g) }

// ---- I/O ----

// WriteEdgeList writes a graph's arcs as TSV.
func WriteEdgeList(w io.Writer, g *Graph) error { return gio.WriteEdgeList(w, g) }

// ReadEdgeList parses a TSV edge list on n vertices.
func ReadEdgeList(r io.Reader, n int, symmetrize bool) (*Graph, error) {
	return gio.ReadEdgeList(r, n, symmetrize)
}

// WriteGraphBinary serializes a factor graph compactly: the whole point
// of the Kronecker approach is that shipping factors (MBs) ships the
// product (up to ~10^18 edges).
func WriteGraphBinary(w io.Writer, g *Graph) error { return gio.WriteGraphBinary(w, g) }

// ReadGraphBinary deserializes a factor written by WriteGraphBinary.
func ReadGraphBinary(r io.Reader) (*Graph, error) { return gio.ReadGraphBinary(r) }

// GraphStats is a JSON-serializable summary row (the §VI table format).
type GraphStats = gio.GraphStats

// ---- distribution analysis (§III.A) ----

// Histogram is an integer-value histogram with Kronecker composition.
type Histogram = stats.Histogram

// NewHistogram builds a histogram from values.
func NewHistogram(values []int64) *Histogram { return stats.NewHistogram(values) }

// KronHistogram composes two histograms into the histogram of the
// Kronecker product of their samples — degree distributions of C without
// touching n_C values.
func KronHistogram(hu, hv *Histogram) *Histogram { return stats.KronHistogram(hu, hv) }

// MaxDegreeRatio returns ‖d‖∞/n (the quantity §III.A shows is squared by
// the product).
func MaxDegreeRatio(degrees []int64) float64 { return stats.MaxDegreeRatio(degrees) }

// HillEstimator estimates a heavy-tail exponent from the k largest
// observations.
func HillEstimator(values []int64, k int) float64 { return stats.HillEstimator(values, k) }

// ---- generation service (content-addressed cache + job server) ----

// GenService is the long-running generation service: an HTTP JSON API
// that validates model specs, schedules generation jobs on a bounded
// worker pool with per-job cancellation and queue-depth admission
// control, and serves results out of a content-addressed shard cache
// (deterministic generation makes a canonical spec string a complete
// address for its stream). Mount Handler() on an http.Server and Close
// on shutdown; cmd/genserve is the standalone binary.
type GenService = serve.Server

// GenServiceConfig tunes the generation service: cache directory and
// byte budget, worker-pool and queue sizes, and generation parallelism.
type GenServiceConfig = serve.Config

// GenJob is the JSON view of one service job (state, progress, cache
// provenance, result location).
type GenJob = serve.JobView

// NewGenService opens (or recovers) the shard cache under cfg.Dir and
// starts the service's worker pool.
func NewGenService(cfg GenServiceConfig) (*GenService, error) { return serve.NewServer(cfg) }

// GenCacheKey returns the content address of one canonical arc stream
// in one serialization format ("tsv" or "binary"): sha256 over the
// format and the generator's canonical Name(). Spec spellings that
// parse to the same generator share an address; formats do not.
func GenCacheKey(name, format string) string { return serve.CacheKey(name, format) }
