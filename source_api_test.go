package kronvalid

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// rggGenerator returns the model used to exercise the unified verbs over
// a model source with cross-chunk dependence (rgg regenerates neighbor
// cells), the hardest case for batching invariance.
func rggGenerator(t *testing.T) ModelGenerator {
	t.Helper()
	g, err := NewGenerator("rgg2d:n=5000,r=0.02,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestStreamByteIdentityAcrossBatchingAndWorkers pins the central
// invariant of the unified pipeline on pathological configurations:
// for one Kronecker product and one rgg2d model, the streamed bytes are
// identical for WithBatchSize ∈ {1, 7, 1<<20} × WithWorkers ∈ {1, 4, 8}
// — batching and scheduling never reorder the canonical stream.
func TestStreamByteIdentityAcrossBatchingAndWorkers(t *testing.T) {
	ctx := context.Background()
	sources := map[string]Source{
		"kron":  ProductSource(pipelineProduct(), 8),
		"rgg2d": ModelSource(rggGenerator(t), 8),
	}
	for name, src := range sources {
		var want []byte
		for _, batch := range []int{1, 7, 1 << 20} {
			for _, workers := range []int{1, 4, 8} {
				var got bytes.Buffer
				var check DedupCheckSink
				n, err := Stream(ctx, src, MultiSink{NewEdgeListSink(&got), &check},
					WithBatchSize(batch), WithWorkers(workers))
				if err != nil {
					t.Fatalf("%s batch=%d workers=%d: %v", name, batch, workers, err)
				}
				if n == 0 {
					t.Fatalf("%s batch=%d workers=%d: empty stream", name, batch, workers)
				}
				if want == nil {
					want = append([]byte(nil), got.Bytes()...)
				} else if !bytes.Equal(want, got.Bytes()) {
					t.Fatalf("%s: bytes differ at batch=%d workers=%d", name, batch, workers)
				}
			}
		}
	}
}

// TestUnifiedVerbsDigestIdenticalToLegacy is the acceptance pin of the
// API redesign: ToCSR — in both its two-pass and one-pass modes — must
// produce CSR digests identical to the legacy BuildCSR/StreamToCSR
// (kron) and BuildModelCSR/StreamModelToCSR (model) entry points for
// worker counts {1, 4, 8}.
func TestUnifiedVerbsDigestIdenticalToLegacy(t *testing.T) {
	ctx := context.Background()
	p := pipelineProduct()
	g := rggGenerator(t)
	for _, workers := range []int{1, 4, 8} {
		opts := StreamOptions{Workers: workers}

		legacyKron, err := BuildCSR(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		legacyKronOnePass, err := StreamToCSR(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		kronSrc := ProductSource(p, workers)
		newKron, err := ToCSR(ctx, kronSrc, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		newKronOnePass, err := ToCSR(ctx, kronSrc, WithWorkers(workers), WithTwoPass(false))
		if err != nil {
			t.Fatal(err)
		}
		want := CSRDigest(legacyKron)
		for which, got := range map[string]string{
			"legacy one-pass": CSRDigest(legacyKronOnePass),
			"ToCSR two-pass":  CSRDigest(newKron),
			"ToCSR one-pass":  CSRDigest(newKronOnePass),
		} {
			if got != want {
				t.Errorf("workers=%d kron %s digest %s != legacy BuildCSR %s", workers, which, got, want)
			}
		}

		legacyModel, err := BuildModelCSR(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		legacyModelOnePass, err := StreamModelToCSR(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		modelSrc := ModelSource(g, workers)
		newModel, err := ToCSR(ctx, modelSrc, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		newModelOnePass, err := ToCSR(ctx, modelSrc, WithWorkers(workers), WithTwoPass(false))
		if err != nil {
			t.Fatal(err)
		}
		wantM := CSRDigest(legacyModel)
		for which, got := range map[string]string{
			"legacy one-pass": CSRDigest(legacyModelOnePass),
			"ToCSR two-pass":  CSRDigest(newModel),
			"ToCSR one-pass":  CSRDigest(newModelOnePass),
		} {
			if got != wantM {
				t.Errorf("workers=%d model %s digest %s != legacy BuildModelCSR %s", workers, which, got, wantM)
			}
		}
	}
}

// TestWriteShardsMatchesLegacyAndStampsIdentity pins that WriteShards
// reproduces the legacy WriteSharded bytes exactly and additionally
// stamps the uniform Source identity and Extra annotations.
func TestWriteShardsMatchesLegacyAndStampsIdentity(t *testing.T) {
	ctx := context.Background()
	p := pipelineProduct()
	legacyDir, newDir := t.TempDir(), t.TempDir()
	lm, err := WriteSharded(legacyDir, p, 4, WriteShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	src := ProductSource(p, 4)
	nm, err := WriteShards(ctx, newDir, src,
		WithManifestExtra(map[string]string{"pr": "5"}))
	if err != nil {
		t.Fatal(err)
	}
	if nm.TotalArcs != lm.TotalArcs || len(nm.Shards) != len(lm.Shards) {
		t.Fatalf("manifests disagree: legacy %d arcs/%d shards, new %d/%d",
			lm.TotalArcs, len(lm.Shards), nm.TotalArcs, len(nm.Shards))
	}
	if nm.Source != src.Name() || nm.Model != "kron" || nm.FactorADigest == "" {
		t.Errorf("new manifest identity incomplete: %+v", nm)
	}
	if nm.Extra["pr"] != "5" {
		t.Errorf("manifest extra lost: %v", nm.Extra)
	}
	for _, s := range lm.Shards {
		lb, err := os.ReadFile(filepath.Join(legacyDir, s.File))
		if err != nil {
			t.Fatal(err)
		}
		nb, err := os.ReadFile(filepath.Join(newDir, s.File))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lb, nb) {
			t.Fatalf("shard %s differs between legacy and unified writers", s.File)
		}
	}
}

// TestCountAndDigestConveniences pins the two conveniences: Count equals
// the streamed count whether or not the source knows it ahead of
// generation, and Digest equals the digest of the materialized CSR.
func TestCountAndDigestConveniences(t *testing.T) {
	ctx := context.Background()
	p := pipelineProduct()
	kronSrc := ProductSource(p, 4)
	if n, err := Count(ctx, kronSrc); err != nil || n != p.NumArcs() {
		t.Fatalf("kron Count = %d, %v; want %d", n, err, p.NumArcs())
	}
	// er's arc count is only known by generating.
	er, err := NewGenerator("er:n=3000,p=0.004,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	erSrc := ModelSource(er, 4)
	if erSrc.TotalArcs() >= 0 {
		t.Fatal("er source claims an exact arc count; Count test needs an expectation-only model")
	}
	n, err := Count(ctx, erSrc)
	if err != nil {
		t.Fatal(err)
	}
	var count CountingSink
	if _, err := Stream(ctx, erSrc, &count); err != nil || count.N != n {
		t.Fatalf("Count = %d but stream delivered %d (err %v)", n, count.N, err)
	}
	for name, src := range map[string]Source{"kron": kronSrc, "er": erSrc} {
		cg, err := ToCSR(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Digest(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		if d != CSRDigest(cg) {
			t.Errorf("%s: Digest %s != CSRDigest %s", name, d, CSRDigest(cg))
		}
	}
}

// cancellingSink cancels its context partway through the stream.
type cancellingSink struct {
	cancel  context.CancelFunc
	after   int
	batches int
}

func (c *cancellingSink) Consume(batch []Arc) error {
	c.batches++
	if c.batches == c.after {
		c.cancel()
	}
	return nil
}
func (c *cancellingSink) Flush() error { return nil }

// waitGoroutines polls until the goroutine count is back to at most base
// or the deadline passes.
func waitGoroutines(base int) int {
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base || time.Now().After(deadline) {
			return n
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamCancellationSemantics is the public-API cancellation pin: a
// context cancelled mid-stream makes Stream return ctx.Err() within a
// bounded number of batches, leaking no goroutines, for both source
// families.
func TestStreamCancellationSemantics(t *testing.T) {
	big := MustProduct(WebGraph(3000, 3, 0.7, 9), HubCycle(6))
	for name, src := range map[string]Source{
		"kron":  ProductSource(big, 8),
		"rgg2d": ModelSource(rggGenerator(t), 8),
	} {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		sink := &cancellingSink{cancel: cancel, after: 2}
		n, err := Stream(ctx, src, sink, WithWorkers(4), WithBatchSize(64))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
		if sink.batches > sink.after+1 {
			t.Errorf("%s: sink saw %d batches after cancelling at %d — not bounded by one batch",
				name, sink.batches, sink.after)
		}
		total := src.TotalArcs()
		if total < 0 {
			total = int64(^uint64(0) >> 1)
		}
		if n >= total {
			t.Errorf("%s: cancelled stream still delivered all %d arcs", name, n)
		}
		if got := waitGoroutines(base); got > base {
			t.Errorf("%s: %d goroutines before, %d after — leak", name, base, got)
		}
		cancel()
	}
}

// TestToCSRCancellation pins that both CSR modes honor cancellation and
// never return a partial graph.
func TestToCSRCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := ProductSource(pipelineProduct(), 4)
	if g, err := ToCSR(ctx, src); g != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("two-pass: graph=%v err=%v", g != nil, err)
	}
	if g, err := ToCSR(ctx, src, WithTwoPass(false)); g != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("one-pass: graph=%v err=%v", g != nil, err)
	}
}

// TestWriteShardsCancellationLeavesNoManifest pins the public abort
// contract: a cancelled WriteShards returns ctx.Err() and leaves the
// output directory without a manifest.json.
func TestWriteShardsCancellationLeavesNoManifest(t *testing.T) {
	big := MustProduct(WebGraph(3000, 3, 0.7, 9), HubCycle(6))
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	_, err := WriteShards(ctx, dir, ProductSource(big, 8),
		WithBatchSize(64),
		WithProgress(func(arcs, shards int64) {
			calls++
			if calls == 2 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, serr := os.Stat(filepath.Join(dir, "manifest.json")); !os.IsNotExist(serr) {
		t.Fatalf("manifest exists after cancelled WriteShards (stat err: %v)", serr)
	}
	if _, rerr := ReadShardManifest(dir); rerr == nil {
		t.Fatal("ReadShardManifest succeeded on an aborted directory")
	}
}
