package kronvalid

import (
	"context"
	"testing"
)

// TestGoldenModelDigests pins the canonical byte stream of every model
// kind to a hard-coded digest. The stream contract says worker count,
// batching, and internal algorithm changes must never move a byte, so
// these values only change when a model's stream is *deliberately*
// re-pinned — any other mismatch is a silent format break that would
// invalidate every digest users have recorded.
//
// History: the rmat digest was re-pinned once, when sample-sort-dedup
// within a chunk was replaced by the in-order multinomial descent (same
// distribution, same per-chunk budgets, different realization). The
// chunglu digest was re-pinned once, when the bucketed per-candidate
// sweep was replaced by the blockwise core (same per-pair Bernoulli
// law, realized as binomial counts over constant-probability regions;
// the old core is retained as a distribution-equivalence oracle). Both
// followed the re-pin policy in DESIGN.md ("Digest re-pin policy").
func TestGoldenModelDigests(t *testing.T) {
	golden := map[string]string{
		"er:n=2000,p=0.004,seed=42":                    "514a7a0afaa5dd2a",
		"gnm:n=1500,m=9000,seed=11":                    "57161fc1a2f6748f",
		"rmat:scale=11,edges=16384,seed=13":            "75155a3008305e94",
		"chunglu:n=3000,dmax=60,gamma=2.4,seed=5":      "bf2940fc9febf01a",
		"rgg2d:n=2500,r=0.03,seed=9":                   "52b71b679d52318",
		"rgg3d:n=1200,r=0.09,seed=4":                   "441b2a8b566925a9",
		"ba:n=2000,d=3,seed=15":                        "a1da37efe7efb116",
		"rhg:n=1800,d=8,gamma=2.6,seed=21":             "dae0eef3181899bb",
		"grid2d:x=45,y=40,p=0.55,wrap=true,seed=22":    "9643aa456dd24c0d",
		"grid3d:x=11,y=10,z=9,p=0.5,wrap=true,seed=23": "cf0457c98460db27",
	}
	ctx := context.Background()
	for spec, want := range golden {
		g, err := NewGenerator(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		// Multiple workers on purpose: the digest must be identical no
		// matter how the chunk plan is executed.
		got, err := Digest(ctx, ModelSource(g, 4))
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if got != want {
			t.Errorf("%s: digest %q, want pinned %q — the canonical stream moved", spec, got, want)
		}
	}
}
