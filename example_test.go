package kronvalid_test

import (
	"context"
	"fmt"

	"kronvalid"
)

// ExampleTriangleTotal computes the exact triangle count of a product
// with ~4 billion times more triangles than either factor.
func ExampleTriangleTotal() {
	a := kronvalid.Clique(4) // τ(K4) = 4
	b := kronvalid.Clique(5) // τ(K5) = 10
	p := kronvalid.MustProduct(a, b)
	tau, _ := kronvalid.TriangleTotal(p)
	fmt.Println(tau) // 6·4·10
	// Output: 240
}

// ExampleVertexParticipation reads the per-vertex ground truth of Thm. 1.
func ExampleVertexParticipation() {
	a := kronvalid.Clique(4)
	b := kronvalid.Clique(5)
	p := kronvalid.MustProduct(a, b)
	t, _ := kronvalid.VertexParticipation(p)
	// Ex. 1(a): every vertex sits in ½(n+1-nA-nB)(n+4-2nA-2nB) triangles.
	fmt.Println(t.At(0), t.At(19))
	// Output: 36 36
}

// ExampleEdgeParticipation reads Δ_C at a specific product edge (Thm. 2).
func ExampleEdgeParticipation() {
	a := kronvalid.HubCycle(4) // Ex. 2's factor
	p := kronvalid.MustProduct(a, a)
	d, _ := kronvalid.EdgeParticipation(p)
	// A hub-hub edge of C participates in ΔA(hub)·ΔA(hub) = 2·2 triangles.
	hubArcA := int64(0*5 + 0) // vertex (hub, hub)
	otherEnd := int64(1*5 + 1)
	fmt.Println(d.At(hubArcA, otherEnd))
	// Output: 4
}

// ExampleProduct_EachArc streams the edge list of an implicit product.
func ExampleProduct_EachArc() {
	a := kronvalid.Path(2) // single edge 0-1
	p := kronvalid.MustProduct(a, a)
	p.EachArc(func(u, v int64) bool {
		fmt.Println(u, v)
		return true
	})
	// Output:
	// 0 3
	// 1 2
	// 2 1
	// 3 0
}

// ExampleKroneckerPower shows the k-fold ladder of exact counts.
func ExampleKroneckerPower() {
	b := kronvalid.Clique(3) // one triangle
	for k := 1; k <= 3; k++ {
		p, _ := kronvalid.KroneckerPower(b, k)
		tau, _ := kronvalid.MultiTriangleTotal(p)
		fmt.Println(k, tau) // 6^{k-1}
	}
	// Output:
	// 1 1
	// 2 6
	// 3 36
}

// ExampleProductTrussDecomposition builds a graph whose truss
// decomposition is known by construction (Thm. 3).
func ExampleProductTrussDecomposition() {
	a := kronvalid.Clique(5)                 // every edge trussness 5
	b := kronvalid.TriangleLimitedPA(20, 42) // Δ_B ≤ 1 by construction
	p := kronvalid.MustProduct(a, b)
	pt, _ := kronvalid.ProductTrussDecomposition(p)
	fmt.Println(pt.MaxK())
	// Output: 5
}

// ExampleExtractEgonet spot-validates a formula the paper's §VI way.
func ExampleExtractEgonet() {
	a := kronvalid.Clique(4)
	p := kronvalid.MustProduct(a, a)
	ego, _ := kronvalid.ExtractEgonet(p, 0, 1000)
	fmt.Println(ego.Degree, ego.LocalTriangles)
	// Output: 9 18
}

// ExampleNewGenerator drives a random hyperbolic graph through the
// unified verbs: one spec string, then Count/Digest/Stream over its
// Source — the count and digest are fixed by the spec, never by the
// worker count.
func ExampleNewGenerator() {
	ctx := context.Background()
	g, _ := kronvalid.NewGenerator("rhg:n=500,d=6,gamma=2.7,seed=1")

	arcs, _ := kronvalid.Count(ctx, kronvalid.ModelSource(g, 4))
	digest, _ := kronvalid.Digest(ctx, kronvalid.ModelSource(g, 4))

	var sink kronvalid.CountingSink
	kronvalid.Stream(ctx, kronvalid.ModelSource(g, 8), &sink,
		kronvalid.WithWorkers(8))

	fmt.Println(arcs, digest, sink.N == arcs)
	// Output: 1480 7e13ade19f1e147d true
}

// ExampleCount shows the exact-count fast path: G(n, m) declares its
// arc total, so Count returns without generating a single edge — and
// the streamed total agrees.
func ExampleCount() {
	ctx := context.Background()
	g, _ := kronvalid.NewGenerator("gnm:n=10000,m=60000,seed=7")
	arcs, _ := kronvalid.Count(ctx, kronvalid.ModelSource(g, 0))
	fmt.Println(arcs)
	// Output: 60000
}
