package kronvalid

// End-to-end integration properties: random factor pairs drawn from the
// full generator zoo, pushed through complete validation. This is the
// library eating its own dog food — every formula checked against
// structure-oblivious recomputation on every randomly drawn product.

import (
	"context"
	"testing"
	"testing/quick"

	"kronvalid/internal/rng"
)

// drawFactor picks a random small factor from the generator zoo.
func drawFactor(g *rng.Xoshiro256) *Graph {
	switch g.Intn(8) {
	case 0:
		return Clique(3 + g.Intn(4))
	case 1:
		return CliqueWithLoops(3 + g.Intn(3))
	case 2:
		return HubCycle(3 + g.Intn(3))
	case 3:
		return ErdosRenyi(5+g.Intn(8), 0.35, g.Uint64())
	case 4:
		return TriangleLimitedPA(5+g.Intn(8), g.Uint64())
	case 5:
		return WebGraph(8+g.Intn(8), 2, 0.6, g.Uint64())
	case 6:
		return Cycle(3 + g.Intn(5))
	default:
		return ErdosRenyi(5+g.Intn(6), 0.4, g.Uint64()).WithAllLoops()
	}
}

func TestQuickEndToEndValidation(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		a := drawFactor(g)
		b := drawFactor(g)
		p, err := NewProduct(a, b)
		if err != nil {
			return false
		}
		r, err := ValidateFull(p, 3000, 1_000_000)
		if err != nil {
			// Only acceptable failure: too large to materialize, which
			// cannot happen with these factor sizes.
			return false
		}
		if !r.AllPassed() {
			t.Logf("seed %d: failures %v", seed, r.Failures())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuickLabeledEndToEnd(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		base := ErdosRenyi(5+g.Intn(6), 0.4, g.Uint64())
		labels := make([]int32, base.NumVertices())
		for i := range labels {
			labels[i] = int32(g.Intn(3))
		}
		a := base.WithLabels(labels, 3)
		b := drawFactor(g)
		if !b.IsSymmetric() {
			return true
		}
		p, err := NewProduct(a, b)
		if err != nil {
			return false
		}
		r, err := ValidateFull(p, 3000, 1_000_000)
		if err != nil {
			return false
		}
		return r.AllPassed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestQuickDirectedEndToEnd(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		// Random directed factor with mixed reciprocity, loop-free.
		n := 5 + g.Intn(7)
		var arcs []Edge
		for i := 0; i < n*3; i++ {
			u, v := int32(g.Intn(n)), int32(g.Intn(n))
			if u == v {
				continue
			}
			arcs = append(arcs, Edge{U: u, V: v})
			if g.Bool() {
				arcs = append(arcs, Edge{U: v, V: u})
			}
		}
		a := FromEdges(n, arcs, false)
		b := drawFactor(g)
		if !b.IsSymmetric() {
			return true
		}
		p, err := NewProduct(a, b)
		if err != nil {
			return false
		}
		r, err := ValidateFull(p, 3000, 1_000_000)
		if err != nil {
			return false
		}
		return r.AllPassed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickShardingConsistency draws random products and asserts the
// unified Source pipeline is self-consistent: per-shard sizes sum to the
// product's arc count, Count and Stream agree, and the streamed Digest
// equals the digest of the materialized CSR for a random shard count.
func TestQuickShardingConsistency(t *testing.T) {
	ctx := context.Background()
	f := func(seed uint64, workersRaw uint8) bool {
		g := rng.New(seed)
		a := drawFactor(g)
		b := drawFactor(g)
		p, err := NewProduct(a, b)
		if err != nil {
			return false
		}
		shards := 1 + int(workersRaw)%12
		src := ProductSource(p, shards)
		var sharded int64
		for w := 0; w < src.Shards(); w++ {
			sharded += src.ShardSize(w)
		}
		if sharded != p.NumArcs() {
			return false
		}
		n, err := Count(ctx, src)
		if err != nil || n != p.NumArcs() {
			return false
		}
		var count CountingSink
		if _, err := Stream(ctx, src, &count); err != nil || count.N != n {
			return false
		}
		cg, err := ToCSR(ctx, src)
		if err != nil {
			return false
		}
		d, err := Digest(ctx, src)
		if err != nil {
			return false
		}
		return d == CSRDigest(cg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
