package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: kronvalid
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkStreamEdges/batched-8         	      39	  28431364 ns/op	13274.45 MB/s	  23588640 arcs/op	     112 B/op	       3 allocs/op
BenchmarkStreamEdges/parallel-8        	      10	 120000000 ns/op	 3000.00 MB/s
BenchmarkCSRBuild/two-pass-parallel-8  	       3	 420000000 ns/op	  898.68 MB/s	  23588640 arcs/op
BenchmarkVertexStatLookup-8            	96359066	        12.47 ns/op
PASS
ok  	kronvalid	10.2s
`

func TestParseBench(t *testing.T) {
	got, env, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(got), got)
	}
	b, ok := got["BenchmarkStreamEdges/batched"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if b.NsPerOp != 28431364 || b.MBPerS != 13274.45 {
		t.Fatalf("batched = %+v", b)
	}
	if b.AllocsPerOp != 3 {
		t.Fatalf("batched allocs/op = %v, want 3", b.AllocsPerOp)
	}
	if l := got["BenchmarkVertexStatLookup"]; l.NsPerOp != 12.47 || l.MBPerS != 0 {
		t.Fatalf("lookup = %+v", l)
	}
	if a := got["BenchmarkVertexStatLookup"].AllocsPerOp; a != -1 {
		t.Fatalf("unmeasured allocs/op = %v, want -1 sentinel", a)
	}
	if env.GOOS != "linux" || env.GOARCH != "amd64" {
		t.Fatalf("env platform = %+v", env)
	}
	if !strings.Contains(env.CPU, "Xeon") {
		t.Fatalf("env cpu = %q", env.CPU)
	}
	if env.GoMaxProcs != 8 {
		t.Fatalf("env gomaxprocs = %d, want 8 (from the -8 suffix)", env.GoMaxProcs)
	}
}

func TestParseBenchKeepsBestOfRepeats(t *testing.T) {
	in := `BenchmarkX-8   10   200 ns/op
BenchmarkX-8   10   100 ns/op
BenchmarkX-8   10   300 ns/op
`
	got, _, err := ParseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"].NsPerOp != 100 {
		t.Fatalf("want best of repeats, got %+v", got["BenchmarkX"])
	}
}

func TestRatioPrefersThroughput(t *testing.T) {
	old := Result{NsPerOp: 100, MBPerS: 50}
	cur := Result{NsPerOp: 300, MBPerS: 60} // MB/s says faster, ns/op slower
	if r := Ratio(old, cur); r != 1.2 {
		t.Fatalf("ratio = %v, want 1.2 (MB/s preferred)", r)
	}
	if r := Ratio(Result{NsPerOp: 100}, Result{NsPerOp: 50}); r != 2 {
		t.Fatalf("ns/op ratio = %v, want 2", r)
	}
}

func TestComparePassesWithinThreshold(t *testing.T) {
	base := map[string]Result{"BenchmarkA": {NsPerOp: 100, MBPerS: 100}}
	cur := map[string]Result{"BenchmarkA": {NsPerOp: 120, MBPerS: 85}}
	report, failed := Compare(base, cur, 0.20, 0.20, nil)
	if failed {
		t.Fatalf("15%% regression failed a 20%% gate:\n%s", report)
	}
}

func TestCompareFailsBeyondThreshold(t *testing.T) {
	base := map[string]Result{"BenchmarkA": {NsPerOp: 100, MBPerS: 100}}
	cur := map[string]Result{"BenchmarkA": {NsPerOp: 200, MBPerS: 50}}
	report, failed := Compare(base, cur, 0.20, 0.20, nil)
	if !failed {
		t.Fatalf("50%% regression passed a 20%% gate:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Fatalf("report does not flag the failure:\n%s", report)
	}
}

func TestCompareFailsOnMissingBenchmark(t *testing.T) {
	base := map[string]Result{"BenchmarkA": {NsPerOp: 100}, "BenchmarkB": {NsPerOp: 100}}
	cur := map[string]Result{"BenchmarkA": {NsPerOp: 100}}
	if _, failed := Compare(base, cur, 0.20, 0.20, nil); !failed {
		t.Fatal("missing benchmark passed the gate")
	}
}

func TestCompareFilter(t *testing.T) {
	base := map[string]Result{
		"BenchmarkGated":   {NsPerOp: 100},
		"BenchmarkIgnored": {NsPerOp: 100},
	}
	cur := map[string]Result{"BenchmarkGated": {NsPerOp: 90}}
	if report, failed := Compare(base, cur, 0.20, 0.20, regexp.MustCompile("Gated")); failed {
		t.Fatalf("filtered compare failed:\n%s", report)
	}
	if _, failed := Compare(base, cur, 0.20, 0.20, regexp.MustCompile("NothingMatches")); !failed {
		t.Fatal("empty gate set must fail, not silently pass")
	}
}

func TestCompareMarkdown(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA": {NsPerOp: 100, MBPerS: 100, AllocsPerOp: 120},
		"BenchmarkB": {NsPerOp: 100, MBPerS: 100},
		"BenchmarkC": {NsPerOp: 100, MBPerS: 100},
	}
	cur := map[string]Result{
		"BenchmarkA": {NsPerOp: 80, MBPerS: 130, AllocsPerOp: 90},
		"BenchmarkB": {NsPerOp: 300, MBPerS: 30, AllocsPerOp: -1},
		// BenchmarkC missing from the current run.
	}
	report, failed := CompareMarkdown(base, cur, 0.20, 0.20, nil)
	if !failed {
		t.Fatalf("70%% regression + missing row passed the md gate:\n%s", report)
	}
	lines := strings.Split(strings.TrimRight(report, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want header + separator + 3 rows, got %d lines:\n%s", len(lines), report)
	}
	if !strings.HasPrefix(lines[0], "| benchmark |") || !strings.HasPrefix(lines[1], "|---") {
		t.Fatalf("missing markdown table header:\n%s", report)
	}
	if !strings.Contains(lines[2], "120 → 90") || !strings.Contains(lines[2], "1.30x") || !strings.Contains(lines[2], "| ok |") {
		t.Fatalf("improvement row wrong:\n%s", lines[2])
	}
	if !strings.Contains(lines[3], "FAIL") || !strings.Contains(lines[3], "| - |") {
		t.Fatalf("regression row must FAIL with unmeasured allocs dashed:\n%s", lines[3])
	}
	if !strings.Contains(lines[4], "missing from bench output") {
		t.Fatalf("missing-benchmark row wrong:\n%s", lines[4])
	}

	// The md renderer must gate exactly like the text one.
	_, textFailed := Compare(base, cur, 0.20, 0.20, nil)
	if textFailed != failed {
		t.Fatal("markdown and text gates disagree")
	}
	if _, failed := CompareMarkdown(base, cur, 0.20, 0.20, regexp.MustCompile("NothingMatches")); !failed {
		t.Fatal("empty md gate set must fail, not silently pass")
	}
}

func TestCompareGatesAllocRegressions(t *testing.T) {
	base := map[string]Result{"BenchmarkA": {NsPerOp: 100, MBPerS: 100, AllocsPerOp: 100}}

	// Throughput fine, allocs up 10%: inside the 20% alloc gate.
	cur := map[string]Result{"BenchmarkA": {NsPerOp: 100, MBPerS: 100, AllocsPerOp: 110}}
	if report, failed := Compare(base, cur, 0.20, 0.20, nil); failed {
		t.Fatalf("10%% alloc increase failed a 20%% gate:\n%s", report)
	}

	// Throughput fine, allocs up 50%: the alloc gate must catch it.
	cur = map[string]Result{"BenchmarkA": {NsPerOp: 100, MBPerS: 100, AllocsPerOp: 150}}
	report, failed := Compare(base, cur, 0.20, 0.20, nil)
	if !failed {
		t.Fatalf("50%% alloc increase passed the gate:\n%s", report)
	}
	if !strings.Contains(report, "allocs/op") {
		t.Fatalf("report does not name the alloc failure:\n%s", report)
	}

	// Current side unmeasured (-1): alloc gate must not fire.
	cur = map[string]Result{"BenchmarkA": {NsPerOp: 100, MBPerS: 100, AllocsPerOp: -1}}
	if report, failed := Compare(base, cur, 0.20, 0.20, nil); failed {
		t.Fatalf("unmeasured current allocs failed the gate:\n%s", report)
	}

	// Baseline unmeasured (0, e.g. pre-field baseline): gate must not fire.
	base = map[string]Result{"BenchmarkA": {NsPerOp: 100, MBPerS: 100}}
	cur = map[string]Result{"BenchmarkA": {NsPerOp: 100, MBPerS: 100, AllocsPerOp: 9999}}
	if report, failed := Compare(base, cur, 0.20, 0.20, nil); failed {
		t.Fatalf("alloc gate fired against an unmeasured baseline:\n%s", report)
	}
}
