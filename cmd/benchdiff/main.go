// Benchdiff gates benchmark regressions in CI: it parses `go test
// -bench` output, compares throughput against a committed JSON baseline,
// and exits nonzero when any gated benchmark regressed beyond the
// allowed fraction.
//
// Usage:
//
//	go test -run '^$' -bench 'StreamEdges|CSRBuild' ./... | tee bench.txt
//	benchdiff -baseline BENCH_baseline.json bench.txt            # gate
//	benchdiff -baseline BENCH_baseline.json -update bench.txt    # refresh
//
// Comparison uses MB/s when both sides report it (higher is better) and
// falls back to ns/op (lower is better). Benchmarks present in the
// baseline but missing from the new output fail the gate — a silently
// skipped benchmark must not read as a pass; restrict the gate with
// -filter instead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	NsPerOp float64 `json:"ns_per_op"`
	MBPerS  float64 `json:"mb_per_s,omitempty"`
}

// Baseline is the committed reference file.
type Baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON file")
	update := flag.Bool("update", false, "rewrite the baseline from the bench output instead of gating")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum allowed fractional throughput regression")
	filter := flag.String("filter", "", "regexp restricting which baseline benchmarks are gated (default: all)")
	note := flag.String("note", "", "note stored in the baseline on -update")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	results, err := ParseBench(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines found in input")
	}

	if *update {
		b := Baseline{Note: *note, Benchmarks: results}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(results), *baselinePath)
		return
	}

	f, err := os.Open(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var base Baseline
	if err := json.NewDecoder(f).Decode(&base); err != nil {
		log.Fatalf("parsing %s: %v", *baselinePath, err)
	}
	var re *regexp.Regexp
	if *filter != "" {
		re, err = regexp.Compile(*filter)
		if err != nil {
			log.Fatal(err)
		}
	}
	report, failed := Compare(base.Benchmarks, results, *maxRegress, re)
	fmt.Print(report)
	if failed {
		os.Exit(1)
	}
}

// benchLine matches `BenchmarkName[-procs]   N   <value> <unit> ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+\d+\s+(.*)$`)

// ParseBench extracts per-benchmark ns/op and MB/s from `go test -bench`
// output. The trailing GOMAXPROCS suffix (-8) is stripped so results
// compare across machines; if a benchmark appears several times (e.g.
// -count > 1) the best throughput wins, damping scheduler noise.
func ParseBench(r io.Reader) (map[string]Result, error) {
	out := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := stripProcs(m[1])
		res, ok := out[name]
		cur := Result{}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad value %q for %s", fields[i], name)
			}
			switch fields[i+1] {
			case "ns/op":
				cur.NsPerOp = v
			case "MB/s":
				cur.MBPerS = v
			}
		}
		if cur.NsPerOp == 0 {
			continue // not a timing line
		}
		if !ok || better(cur, res) {
			out[name] = cur
		}
	}
	return out, sc.Err()
}

// better reports whether a beats b on throughput.
func better(a, b Result) bool {
	if a.MBPerS > 0 && b.MBPerS > 0 {
		return a.MBPerS > b.MBPerS
	}
	return a.NsPerOp < b.NsPerOp
}

// stripProcs removes the trailing -<GOMAXPROCS> suffix go test appends.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Ratio returns new/old throughput (>1 is faster) using MB/s when both
// sides have it, else inverse ns/op.
func Ratio(old, new Result) float64 {
	if old.MBPerS > 0 && new.MBPerS > 0 {
		return new.MBPerS / old.MBPerS
	}
	if new.NsPerOp == 0 {
		return 0
	}
	return old.NsPerOp / new.NsPerOp
}

// Compare gates new results against the baseline, returning a
// human-readable report and whether the gate failed.
func Compare(base, results map[string]Result, maxRegress float64, filter *regexp.Regexp) (string, bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		if filter == nil || filter.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var sb strings.Builder
	failed := false
	if len(names) == 0 {
		sb.WriteString("benchdiff: no baseline benchmarks match the filter\n")
		return sb.String(), true
	}
	fmt.Fprintf(&sb, "%-55s %14s %14s %8s\n", "benchmark", "baseline", "current", "ratio")
	for _, name := range names {
		old := base[name]
		cur, ok := results[name]
		if !ok {
			fmt.Fprintf(&sb, "%-55s %14s %14s %8s  FAIL (missing from bench output)\n",
				name, format(old), "-", "-")
			failed = true
			continue
		}
		ratio := Ratio(old, cur)
		verdict := "ok"
		if ratio < 1-maxRegress {
			verdict = fmt.Sprintf("FAIL (>%.0f%% regression)", maxRegress*100)
			failed = true
		}
		fmt.Fprintf(&sb, "%-55s %14s %14s %7.2fx  %s\n", name, format(old), format(cur), ratio, verdict)
	}
	return sb.String(), failed
}

// format renders a result compactly, preferring throughput.
func format(r Result) string {
	if r.MBPerS > 0 {
		return fmt.Sprintf("%.1f MB/s", r.MBPerS)
	}
	return fmt.Sprintf("%.0f ns/op", r.NsPerOp)
}
