// Benchdiff gates benchmark regressions in CI: it parses `go test
// -bench` output, compares throughput against a committed JSON baseline,
// and exits nonzero when any gated benchmark regressed beyond the
// allowed fraction.
//
// Usage:
//
//	go test -run '^$' -bench 'StreamEdges|CSRBuild' -benchmem ./... | tee bench.txt
//	benchdiff -baseline BENCH_baseline.json bench.txt            # gate
//	benchdiff -baseline BENCH_baseline.json -update bench.txt    # refresh
//
// Comparison uses MB/s when both sides report it (higher is better) and
// falls back to ns/op (lower is better). When both sides carry an
// allocs/op figure (run the benchmarks with -benchmem), allocation
// regressions past -max-alloc-regress fail the gate too, locking in
// scratch-reuse wins alongside throughput. Benchmarks present in the
// baseline but missing from the new output fail the gate — a silently
// skipped benchmark must not read as a pass; restrict the gate with
// -filter instead.
//
// On -update the baseline records the bench environment (goos/goarch,
// CPU model and GOMAXPROCS from the bench headers, CPU count from the
// running machine) so a baseline measured on different hardware is
// visible in review rather than a silent gate shift.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement. AllocsPerOp is -1 when the bench
// output carried no -benchmem columns, so a genuine 0 allocs/op row is
// distinguishable from an unmeasured one.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Env records where a baseline was measured.
type Env struct {
	GOOS       string `json:"goos,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
	CPU        string `json:"cpu,omitempty"`
	NumCPU     int    `json:"num_cpu,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
}

// Baseline is the committed reference file.
type Baseline struct {
	Note       string            `json:"note,omitempty"`
	Env        *Env              `json:"env,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON file")
	update := flag.Bool("update", false, "rewrite the baseline from the bench output instead of gating")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum allowed fractional throughput regression")
	maxAllocRegress := flag.Float64("max-alloc-regress", 0.20, "maximum allowed fractional allocs/op increase (gated only when both sides measured allocs)")
	filter := flag.String("filter", "", "regexp restricting which baseline benchmarks are gated (default: all)")
	note := flag.String("note", "", "note stored in the baseline on -update")
	format := flag.String("format", "text", "report format: text (aligned columns) or md (GitHub markdown table)")
	flag.Parse()
	if *format != "text" && *format != "md" {
		log.Fatalf("unknown -format %q (want text or md)", *format)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	results, env, err := ParseBench(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines found in input")
	}

	if *update {
		env.NumCPU = runtime.NumCPU()
		for name, r := range results {
			if r.AllocsPerOp < 0 {
				r.AllocsPerOp = 0 // unmeasured: keep the field out of the JSON
				results[name] = r
			}
		}
		b := Baseline{Note: *note, Env: env, Benchmarks: results}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(results), *baselinePath)
		return
	}

	f, err := os.Open(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var base Baseline
	if err := json.NewDecoder(f).Decode(&base); err != nil {
		log.Fatalf("parsing %s: %v", *baselinePath, err)
	}
	var re *regexp.Regexp
	if *filter != "" {
		re, err = regexp.Compile(*filter)
		if err != nil {
			log.Fatal(err)
		}
	}
	var report string
	var failed bool
	if *format == "md" {
		report, failed = CompareMarkdown(base.Benchmarks, results, *maxRegress, *maxAllocRegress, re)
	} else {
		report, failed = Compare(base.Benchmarks, results, *maxRegress, *maxAllocRegress, re)
	}
	fmt.Print(report)
	if failed {
		os.Exit(1)
	}
}

// benchLine matches `BenchmarkName[-procs]   N   <value> <unit> ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+\d+\s+(.*)$`)

// ParseBench extracts per-benchmark ns/op, MB/s and allocs/op from
// `go test -bench` output, plus the run environment from the header
// lines (goos/goarch/cpu) and the GOMAXPROCS name suffix. The suffix
// (-8) is stripped from names so results compare across machines; if a
// benchmark appears several times (e.g. -count > 1) the best throughput
// wins, damping scheduler noise.
func ParseBench(r io.Reader) (map[string]Result, *Env, error) {
	out := map[string]Result{}
	env := &Env{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if v, ok := strings.CutPrefix(line, "goos: "); ok {
			env.GOOS = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "goarch: "); ok {
			env.GOARCH = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			env.CPU = v
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name, procs := stripProcs(m[1])
		if procs > 0 {
			env.GoMaxProcs = procs
		}
		res, ok := out[name]
		cur := Result{AllocsPerOp: -1}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("benchdiff: bad value %q for %s", fields[i], name)
			}
			switch fields[i+1] {
			case "ns/op":
				cur.NsPerOp = v
			case "MB/s":
				cur.MBPerS = v
			case "allocs/op":
				cur.AllocsPerOp = v
			}
		}
		if cur.NsPerOp == 0 {
			continue // not a timing line
		}
		if !ok || better(cur, res) {
			out[name] = cur
		}
	}
	return out, env, sc.Err()
}

// better reports whether a beats b on throughput.
func better(a, b Result) bool {
	if a.MBPerS > 0 && b.MBPerS > 0 {
		return a.MBPerS > b.MBPerS
	}
	return a.NsPerOp < b.NsPerOp
}

// stripProcs removes the trailing -<GOMAXPROCS> suffix go test appends,
// returning the bare name and the suffix value (0 when absent).
func stripProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 0
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return name, 0
	}
	return name[:i], procs
}

// Ratio returns new/old throughput (>1 is faster) using MB/s when both
// sides have it, else inverse ns/op.
func Ratio(old, new Result) float64 {
	if old.MBPerS > 0 && new.MBPerS > 0 {
		return new.MBPerS / old.MBPerS
	}
	if new.NsPerOp == 0 {
		return 0
	}
	return old.NsPerOp / new.NsPerOp
}

// measuredAllocs reports whether r carries an allocs/op figure. In
// freshly parsed results an unmeasured row is -1; in baselines written
// before the field existed (or marshalled from a 0-alloc row, which
// omitempty drops) it decodes as 0 — treat only strictly positive
// values as measured there, so old baselines never gate allocations.
func measuredAllocs(r Result) bool { return r.AllocsPerOp > 0 }

// row is one gated benchmark's comparison outcome, shared by the text
// and markdown renderers so both formats gate identically.
type row struct {
	name    string
	old     Result
	cur     Result
	present bool
	ratio   float64
	verdict string
	failed  bool
}

// compareRows computes the gate outcome per baseline benchmark, in name
// order. Throughput always gates; allocs/op gates only where both sides
// measured it. The second return is the overall failure flag; a nil
// slice with failed=true means nothing matched the filter.
func compareRows(base, results map[string]Result, maxRegress, maxAllocRegress float64, filter *regexp.Regexp) ([]row, bool) {
	names := make([]string, 0, len(base))
	for name := range base {
		if filter == nil || filter.MatchString(name) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, true
	}
	sort.Strings(names)
	rows := make([]row, 0, len(names))
	failed := false
	for _, name := range names {
		old := base[name]
		cur, ok := results[name]
		r := row{name: name, old: old, cur: cur, present: ok, verdict: "ok"}
		if !ok {
			r.verdict = "FAIL (missing from bench output)"
			r.failed = true
		} else {
			r.ratio = Ratio(old, cur)
			if r.ratio < 1-maxRegress {
				r.verdict = fmt.Sprintf("FAIL (>%.0f%% regression)", maxRegress*100)
				r.failed = true
			} else if measuredAllocs(old) && cur.AllocsPerOp >= 0 &&
				cur.AllocsPerOp > old.AllocsPerOp*(1+maxAllocRegress) {
				r.verdict = fmt.Sprintf("FAIL (allocs/op %.0f -> %.0f, >%.0f%% increase)",
					old.AllocsPerOp, cur.AllocsPerOp, maxAllocRegress*100)
				r.failed = true
			}
		}
		failed = failed || r.failed
		rows = append(rows, r)
	}
	return rows, failed
}

// Compare gates new results against the baseline, returning a
// human-readable report and whether the gate failed.
func Compare(base, results map[string]Result, maxRegress, maxAllocRegress float64, filter *regexp.Regexp) (string, bool) {
	rows, failed := compareRows(base, results, maxRegress, maxAllocRegress, filter)
	var sb strings.Builder
	if rows == nil {
		sb.WriteString("benchdiff: no baseline benchmarks match the filter\n")
		return sb.String(), true
	}
	fmt.Fprintf(&sb, "%-55s %14s %14s %8s\n", "benchmark", "baseline", "current", "ratio")
	for _, r := range rows {
		if !r.present {
			fmt.Fprintf(&sb, "%-55s %14s %14s %8s  FAIL (missing from bench output)\n",
				r.name, format(r.old), "-", "-")
			continue
		}
		fmt.Fprintf(&sb, "%-55s %14s %14s %7.2fx  %s\n", r.name, format(r.old), format(r.cur), r.ratio, r.verdict)
	}
	return sb.String(), failed
}

// CompareMarkdown is Compare rendered as a GitHub markdown table —
// baseline/current throughput with the ratio, and allocs/op with its
// delta where both sides measured it — for pasting into PR descriptions
// or uploading as a CI artifact.
func CompareMarkdown(base, results map[string]Result, maxRegress, maxAllocRegress float64, filter *regexp.Regexp) (string, bool) {
	rows, failed := compareRows(base, results, maxRegress, maxAllocRegress, filter)
	var sb strings.Builder
	if rows == nil {
		sb.WriteString("benchdiff: no baseline benchmarks match the filter\n")
		return sb.String(), true
	}
	sb.WriteString("| benchmark | baseline | current | ratio | allocs/op | verdict |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---|\n")
	for _, r := range rows {
		if !r.present {
			fmt.Fprintf(&sb, "| %s | %s | - | - | - | %s |\n", r.name, format(r.old), r.verdict)
			continue
		}
		allocs := "-"
		if measuredAllocs(r.old) && r.cur.AllocsPerOp >= 0 {
			allocs = fmt.Sprintf("%.0f → %.0f", r.old.AllocsPerOp, r.cur.AllocsPerOp)
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %.2fx | %s | %s |\n",
			r.name, format(r.old), format(r.cur), r.ratio, allocs, r.verdict)
	}
	return sb.String(), failed
}

// format renders a result compactly, preferring throughput.
func format(r Result) string {
	if r.MBPerS > 0 {
		return fmt.Sprintf("%.1f MB/s", r.MBPerS)
	}
	return fmt.Sprintf("%.0f ns/op", r.NsPerOp)
}
