package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"kronvalid/internal/census"
	"kronvalid/internal/gen"
	"kronvalid/internal/graph"
	"kronvalid/internal/kron"
	"kronvalid/internal/sparse"
	"kronvalid/internal/stats"
	"kronvalid/internal/triangle"
	"kronvalid/internal/truss"
)

// expTable1 reproduces the §VI statistics table with the offline
// web-graph stand-in (E1) and the sublinear-ground-truth timing claim
// (E10).
func expTable1(n int, seed uint64) {
	start := time.Now()
	a := gen.WebGraph(n, 3, 0.75, seed)
	b := a.WithAllLoops()
	genDur := time.Since(start)

	start = time.Now()
	sa := triangle.Count(a)
	countDur := time.Since(start)

	pAA := kron.MustProduct(a, a)
	pAB := kron.MustProduct(a, b)
	start = time.Now()
	tAA, err := kron.TriangleTotal(pAA)
	if err != nil {
		log.Fatal(err)
	}
	tAB, err := kron.TriangleTotal(pAB)
	if err != nil {
		log.Fatal(err)
	}
	formulaDur := time.Since(start)

	fmt.Println("§VI statistics table (web-NotreDame replaced by WebGraph stand-in; see DESIGN.md):")
	fmt.Printf("%-8s %14s %16s %20s\n", "Matrix", "Vertices", "Edges", "Triangles")
	fmt.Printf("%-8s %14d %16d %20d\n", "A", int64(a.NumVertices()), a.NumEdgesUndirected(), sa.Total)
	fmt.Printf("%-8s %14d %16d %20d\n", "B=A+I", int64(b.NumVertices()), b.NumEdgesUndirected(), sa.Total)
	fmt.Printf("%-8s %14d %16d %20d\n", "A⊗A", pAA.NumVertices(), pAA.NumEdgesUndirected(), tAA)
	fmt.Printf("%-8s %14d %16d %20d\n", "A⊗B", pAB.NumVertices(), pAB.NumEdgesUndirected(), tAB)
	fmt.Printf("\nτ(A⊗A) = 6·τ(A)²: %v;  self-loop boost τ(A⊗B)/τ(A⊗A) = %.3f\n",
		tAA == 6*sa.Total*sa.Total, float64(tAB)/float64(tAA))
	fmt.Printf("timing: generation %v, factor triangle pass %v (%d wedge checks), product formulas %v\n",
		genDur, countDur, sa.WedgeChecks, formulaDur)
	fmt.Printf("paper analog: 2.38T/2.73T-edge products, 111.4T/141.0T triangles, 10.5 s, 7,734,429 wedge checks\n")
}

// expFig7 reproduces the Fig. 7 egonet experiment (E2): three degree-3
// vertices of A with 1, 2, 3 triangles yield nine product vertices in
// A⊗A (degree 9) and A⊗B (degree 12) whose triangle counts follow
// Thm. 1 and Cor. 1.
func expFig7(n int, seed uint64) {
	a := gen.WebGraph(n, 3, 0.75, seed)
	statsA := kron.ComputeFactorStats(a)
	picks := map[int64]int32{}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Degree(int32(v)) == 3 {
			tv := statsA.T[v]
			if _, ok := picks[tv]; !ok && tv >= 1 && tv <= 3 {
				picks[tv] = int32(v)
			}
		}
	}
	for _, want := range []int64{1, 2, 3} {
		if _, ok := picks[want]; !ok {
			log.Fatalf("factor lacks a degree-3 vertex with %d triangles; change -seed", want)
		}
	}
	fmt.Printf("selected factor vertices (degree 3): t=1 -> %d, t=2 -> %d, t=3 -> %d\n\n",
		picks[1], picks[2], picks[3])

	b := a.WithAllLoops()
	statsB := kron.ComputeFactorStats(b)
	for _, prod := range []struct {
		name string
		p    *kron.Product
	}{
		{"A⊗A", kron.MustProduct(a, a)},
		{"A⊗B", kron.MustProduct(a, b)},
	} {
		tc, err := kron.VertexParticipation(prod.p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s egonets (paper Fig. 7 %s panel):\n", prod.name, map[string]string{"A⊗A": "top", "A⊗B": "bottom"}[prod.name])
		for _, ta := range []int64{1, 2, 3} {
			for _, tb := range []int64{1, 2, 3} {
				v := prod.p.Vertex(picks[ta], picks[tb])
				ego, err := kron.VerifyEgonet(prod.p, tc, v, 10000)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  p=%-12d deg=%-3d t_p=%-4d (egonet recount: %d ✓)\n",
					v, ego.Degree, tc.At(v), ego.LocalTriangles)
			}
		}
		_ = statsB
		fmt.Println()
	}
}

// expEx1 prints the Ex. 1(a)-(c) clique closed forms next to the formula
// outputs (E3).
func expEx1(_ int, _ uint64) {
	nA, nB := int64(4), int64(5)
	type rowT struct {
		name                      string
		p                         *kron.Product
		wantDeg, wantVtx, wantEdg int64
	}
	n := nA * nB
	rows := []rowT{
		{"K4⊗K5", kron.MustProduct(gen.Clique(int(nA)), gen.Clique(int(nB))),
			n + 1 - nA - nB, (n + 1 - nA - nB) * (n + 4 - 2*nA - 2*nB) / 2, n + 4 - 2*nA - 2*nB},
		{"K4⊗J5", kron.MustProduct(gen.Clique(int(nA)), gen.CliqueWithLoops(int(nB))),
			(nA - 1) * nB, (n - nB) * (n - 2*nB) / 2, n - 2*nB},
		{"J4⊗J5", kron.MustProduct(gen.CliqueWithLoops(int(nA)), gen.CliqueWithLoops(int(nB))),
			n - 1, (n - 1) * (n - 2) / 2, n - 2},
	}
	fmt.Printf("%-8s %10s %10s %12s %12s %12s %12s\n",
		"Product", "deg", "deg(fml)", "t/vertex", "t(fml)", "Δ/edge", "Δ(fml)")
	for _, r := range rows {
		tc, err := kron.VertexParticipation(r.p)
		if err != nil {
			log.Fatal(err)
		}
		dc, err := kron.EdgeParticipation(r.p)
		if err != nil {
			log.Fatal(err)
		}
		// Find a representative non-loop edge.
		var eu, ev int64 = -1, -1
		r.p.EachArc(func(u, v int64) bool {
			if u != v {
				eu, ev = u, v
				return false
			}
			return true
		})
		fmt.Printf("%-8s %10d %10d %12d %12d %12d %12d\n",
			r.name, r.wantDeg, r.p.Degree(0), r.wantVtx, tc.At(0), r.wantEdg, dc.At(eu, ev))
	}
	fmt.Println("\n(paper's Ex. 1(b) degree line prints nA·nB - nA; the realized clique degree is (nA-1)·nB — validated against explicit products)")
}

// expEx2 reproduces Ex. 2 (E4): the hub-cycle product's edge histogram
// and truss structure, which no plain Kronecker formula captures.
func expEx2(_ int, _ uint64) {
	a := gen.HubCycle(4)
	p := kron.MustProduct(a, a)
	tau, err := kron.TriangleTotal(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A: 4-cycle + hub (5 vertices, 8 edges, 4 triangles)\n")
	fmt.Printf("C = A⊗A: %d vertices, %d edges, %d triangles (paper: 25, 128, 96)\n",
		p.NumVertices(), p.NumEdgesUndirected(), tau)

	dc, err := kron.EdgeParticipation(p)
	if err != nil {
		log.Fatal(err)
	}
	hist := map[int64]int64{}
	dc.Materialize().Each(func(r, c int, v int64) bool {
		if r < c {
			hist[v]++
		}
		return true
	})
	keys := make([]int64, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	fmt.Println("edge participation histogram (paper: 32 edges @1, 64 @2, 32 @4):")
	for _, k := range keys {
		fmt.Printf("  Δ=%d: %d edges\n", k, hist[k])
	}

	c, err := p.Materialize(1000, 100000)
	if err != nil {
		log.Fatal(err)
	}
	d := truss.Decompose(c)
	fmt.Println("truss decomposition by direct peeling (paper: 128 in 3-truss, 80 in 4-truss, 0 in 5-truss):")
	for k := 3; k <= 5; k++ {
		fmt.Printf("  |T^(%d)| = %d\n", k, len(d.KTrussEdges(k)))
	}
	if _, err := kron.TrussDecomposition(p); err != nil {
		fmt.Printf("Thm. 3 correctly refuses this product: %v\n", err)
	}
}

// expThm3 generates a product with fully known truss decomposition and
// verifies it against direct peeling (E5).
func expThm3(_ int, seed uint64) {
	a := gen.ErdosRenyi(50, 0.25, seed)
	b := gen.TriangleLimitedPA(40, seed+1)
	fmt.Printf("A: ER(50, 0.25), max Δ_A = %d; B: §III.D(b) generator, max Δ_B = %d\n",
		gen.MaxEdgeTriangles(a), gen.MaxEdgeTriangles(b))
	p := kron.MustProduct(a, b)
	pt, err := kron.TrussDecomposition(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C: %d vertices, %d edges; ground-truth trussness for every edge, MaxK = %d\n",
		p.NumVertices(), p.NumEdgesUndirected(), pt.MaxK())
	sizes := pt.TrussSizes()
	for k := 3; k <= pt.MaxK(); k++ {
		fmt.Printf("  |T^(%d)| = %d\n", k, sizes[k])
	}
	c, err := p.Materialize(10000, 4_000_000)
	if err != nil {
		log.Fatal(err)
	}
	direct := truss.Decompose(c)
	mismatch := 0
	c.EachEdgeUndirected(func(u, v int32) bool {
		if pt.EdgeTruss(int64(u), int64(v)) != direct.EdgeTruss(u, v) {
			mismatch++
		}
		return true
	})
	fmt.Printf("verified against direct peeling of %d edges: %d mismatches\n",
		c.NumEdgesUndirected(), mismatch)
}

// expCensus reproduces the directed and labeled census theorems on a
// validation-scale product (E6, E7).
func expCensus(_ int, seed uint64) {
	// Directed factor with mixed reciprocity.
	base := gen.WebGraph(30, 3, 0.6, seed)
	var arcs []graph.Edge
	i := 0
	base.EachEdgeUndirected(func(u, v int32) bool {
		i++
		switch i % 4 {
		case 0:
			arcs = append(arcs, graph.Edge{U: u, V: v}, graph.Edge{U: v, V: u})
		case 1, 2:
			arcs = append(arcs, graph.Edge{U: u, V: v})
		default:
			arcs = append(arcs, graph.Edge{U: v, V: u})
		}
		return true
	})
	a := graph.FromEdges(base.NumVertices(), arcs, false)
	b := gen.Clique(5).WithAllLoops()
	p := kron.MustProduct(a, b)
	ds, err := kron.DirectedCensus(p)
	if err != nil {
		log.Fatal(err)
	}
	c, err := p.Materialize(10000, 4_000_000)
	if err != nil {
		log.Fatal(err)
	}
	directV := census.DirectedVertexCensus(c)
	directE := census.DirectedEdgeCensus(c)
	fmt.Println("directed census of C (Thm. 4/5), Kronecker vs direct:")
	fmt.Printf("%-6s %14s %14s %8s      %-6s %14s %8s\n",
		"vtype", "kron", "direct", "match", "etype", "kron", "match")
	vts := census.AllVertexTypes()
	ets := census.AllEdgeTypes()
	for idx := range vts {
		kv := ds.Vertex[vts[idx]].Vector()
		dv := directV.Counts[vts[idx]]
		vTotal := sparse.SumVec(kv)
		ke := ds.Edge[ets[idx]].Materialize()
		eMatch := ke.Equal(directE.Delta[ets[idx]])
		fmt.Printf("%-6s %14d %14d %8v      %-6s %14d %8v\n",
			vts[idx], vTotal, sparse.SumVec(dv), sparse.EqualVec(kv, dv),
			ets[idx], ke.Total(), eMatch)
	}

	// Labeled: 3 colors on an undirected factor.
	labels := make([]int32, base.NumVertices())
	for v := range labels {
		labels[v] = int32(v % 3)
	}
	la := base.WithLabels(labels, 3)
	lp := kron.MustProduct(la, gen.Clique(5))
	ls, err := kron.LabeledCensus(lp)
	if err != nil {
		log.Fatal(err)
	}
	lc, err := lp.Materialize(10000, 4_000_000)
	if err != nil {
		log.Fatal(err)
	}
	directLV := census.LabeledVertexCensus(lc)
	allMatch := true
	var grand int64
	for ty, vec := range ls.Vertex {
		got := vec.Vector()
		if !sparse.EqualVec(got, directLV[ty]) {
			allMatch = false
		}
		grand += sparse.SumVec(got)
	}
	fmt.Printf("\nlabeled census (Thm. 6): %d types, all matching direct: %v; Σ counts = %d\n",
		len(ls.Vertex), allMatch, grand)
}

// expDegrees reproduces the §III.A degree-distribution analysis (E8).
func expDegrees(n int, seed uint64) {
	a := gen.WebGraph(n, 3, 0.75, seed)
	b := gen.WebGraph(n/2, 3, 0.75, seed+1)
	hA := stats.NewHistogram(a.Degrees())
	hB := stats.NewHistogram(b.Degrees())
	hC := stats.KronHistogram(hA, hB)
	p := kron.MustProduct(a, b)

	fmt.Printf("degree distributions (loop-free factors: d_C = d_A ⊗ d_B):\n")
	fmt.Printf("  A: n=%d, max deg %d, ratio %.3e, Hill tail %.2f\n",
		a.NumVertices(), hA.Max(), stats.MaxDegreeRatio(a.Degrees()),
		stats.HillEstimator(a.Degrees(), a.NumVertices()/50))
	fmt.Printf("  B: n=%d, max deg %d, ratio %.3e, Hill tail %.2f\n",
		b.NumVertices(), hB.Max(), stats.MaxDegreeRatio(b.Degrees()),
		stats.HillEstimator(b.Degrees(), b.NumVertices()/50))
	maxC, _ := p.MaxDegree()
	ratioC := float64(maxC) / float64(p.NumVertices())
	fmt.Printf("  C: n=%d, max deg %d, ratio %.3e\n", p.NumVertices(), maxC, ratioC)
	fmt.Printf("  ratio product (‖dA‖∞/nA)(‖dB‖∞/nB) = %.3e — squaring effect of §III.A: %v\n",
		stats.MaxDegreeRatio(a.Degrees())*stats.MaxDegreeRatio(b.Degrees()),
		ratioC == stats.MaxDegreeRatio(a.Degrees())*stats.MaxDegreeRatio(b.Degrees()) ||
			abs(ratioC-stats.MaxDegreeRatio(a.Degrees())*stats.MaxDegreeRatio(b.Degrees())) < 1e-15)
	xs, ps := hC.CCDF()
	fmt.Println("  CCDF of d_C (log-spaced sample):")
	for i := 0; i < len(xs); i += maxInt(1, len(xs)/12) {
		fmt.Printf("    P(d >= %6d) = %.3e\n", xs[i], ps[i])
	}
}

// expRem1 reproduces the mechanism of Rem. 1 (E9): models with
// *independent edges* — the stochastic Kronecker family — close far
// fewer triangles than the nonstochastic product with the very same
// degree sequence, and self loops in a factor tune the nonstochastic
// counts further up (Rem. 3).
func expRem1(n int, seed uint64) {
	a := gen.WebGraph(n/32, 3, 0.75, seed)
	pAA := kron.MustProduct(a, a)
	pAB := kron.MustProduct(a, a.WithAllLoops())
	tauAA, err := kron.TriangleTotal(pAA)
	if err != nil {
		log.Fatal(err)
	}
	tauAB, err := kron.TriangleTotal(pAB)
	if err != nil {
		log.Fatal(err)
	}

	// Edge-independent null with the identical degree sequence
	// (Chung-Lu): analytic expectation plus one sampled instance.
	degs := pAA.DegreeVector()
	expected := gen.ExpectedTrianglesChungLu(degs)
	cl := gen.ChungLu(degs, seed+3)
	tauCL := triangle.Count(cl).Total

	fmt.Println("Rem. 1: independent-edge (stochastic) models vs nonstochastic products")
	fmt.Printf("  %-44s %12s %14s\n", "model", "edges", "triangles")
	fmt.Printf("  %-44s %12d %14d\n", "nonstochastic A⊗A (exact)",
		pAA.NumEdgesUndirected(), tauAA)
	fmt.Printf("  %-44s %12d %14d\n", "nonstochastic A⊗(A+I), self-loop boost (exact)",
		pAB.NumEdgesUndirected(), tauAB)
	fmt.Printf("  %-44s %12s %14.0f\n", "independent edges, same degrees (analytic E)",
		"same", expected)
	fmt.Printf("  %-44s %12d %14d\n", "independent edges, same degrees (sampled)",
		cl.NumEdgesUndirected(), tauCL)
	fmt.Printf("\n  nonstochastic keeps %.1fx the null's triangles; with self loops %.1fx\n",
		float64(tauAA)/float64(tauCL), float64(tauAB)/float64(tauCL))
	fmt.Println("  (local counts are tunable by adding triangles/self-loops to factors — Rem. 1)")
}

// expPower exercises the repeated-power construction of [3] (the
// generator the paper's framework plugs into): τ(B^{⊗k}) =
// 6^{k-1}·τ(B)^k for a loop-free factor, with per-vertex ground truth at
// any of the Π n_i vertices.
func expPower(n int, seed uint64) {
	b := gen.WebGraph(n/32, 3, 0.75, seed)
	tb := triangle.Count(b).Total
	fmt.Printf("factor B: %d vertices, %d edges, τ(B) = %d\n", b.NumVertices(), b.NumEdgesUndirected(), tb)
	fmt.Printf("%-3s %20s %20s %24s %10s\n", "k", "vertices", "arcs", "triangles (exact)", "6^{k-1}τ^k")
	for k := 1; k <= 4; k++ {
		p, err := kron.KroneckerPower(b, k)
		if err != nil {
			fmt.Printf("%-3d overflow: %v\n", k, err)
			return
		}
		tau, err := kron.MultiTriangleTotal(p)
		if err != nil {
			fmt.Printf("%-3d triangles exceed int64: %v\n", k, err)
			return
		}
		want := int64(1)
		for i := 0; i < k; i++ {
			want *= tb
		}
		for i := 0; i < k-1; i++ {
			want *= 6
		}
		fmt.Printf("%-3d %20d %20d %24d %10v\n", k, p.NumVertices(), p.NumArcs(), tau, tau == want)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
