// Paperrepro regenerates every table and figure of the paper's
// evaluation, printing paper-style output. Experiments (see DESIGN.md §5
// for the index):
//
//	table1   §VI statistics table (A, B=A+I, A⊗A, A⊗B) + timing      [E1,E10]
//	fig7     nine egonets of two products, degrees + triangle counts [E2]
//	ex1      Ex. 1(a)-(c) clique closed forms                        [E3]
//	ex2      Ex. 2 hub-cycle edge histogram and truss structure      [E4]
//	thm3     truss ground-truth generation with Δ_B ≤ 1              [E5]
//	census   directed (Thm. 4/5) and labeled (Thm. 6/7) censuses     [E6,E7]
//	degrees  §III.A degree distributions and max-ratio squaring      [E8]
//	rem1     stochastic Kronecker (R-MAT) vs nonstochastic triangles [E9]
//	power    k-fold Kronecker powers ([3]'s construction)            [extension]
//	all      everything above
//
// Usage: paperrepro -exp table1 -n 32768
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperrepro: ")
	exp := flag.String("exp", "all", "experiment id (table1 fig7 ex1 ex2 thm3 census degrees rem1 all)")
	n := flag.Int("n", 1<<14, "web-factor vertices for the large experiments")
	seed := flag.Uint64("seed", 2018, "generator seed")
	flag.Parse()

	run := map[string]func(int, uint64){
		"table1":  expTable1,
		"fig7":    expFig7,
		"ex1":     expEx1,
		"ex2":     expEx2,
		"thm3":    expThm3,
		"census":  expCensus,
		"degrees": expDegrees,
		"rem1":    expRem1,
		"power":   expPower,
	}
	order := []string{"table1", "fig7", "ex1", "ex2", "thm3", "census", "degrees", "rem1", "power"}
	if *exp == "all" {
		for _, id := range order {
			fmt.Printf("================ %s ================\n", id)
			run[id](*n, *seed)
			fmt.Println()
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		log.Printf("unknown experiment %q; available: %v all", *exp, order)
		os.Exit(2)
	}
	f(*n, *seed)
}
