// Kronstats prints exact ground-truth statistics of a Kronecker product
// C = A ⊗ B, computed from the factors via the paper's formulas — without
// generating C.
//
// Usage:
//
//	kronstats -a 'web:n=4096,m=4,seed=42' -b 'web:n=4096,m=4,seed=42+loops'
//	kronstats -a ... -b ... -vertex 12345        # stats of one vertex
//	kronstats -a ... -b ... -json                # machine-readable summary
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"kronvalid/internal/distgen"
	"kronvalid/internal/gio"
	"kronvalid/internal/graph"
	"kronvalid/internal/kron"
	"kronvalid/internal/spec"
	"kronvalid/internal/stream"
	"kronvalid/internal/triangle"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("kronstats: ")
	aSpec := flag.String("a", "", "left factor specification (required)")
	bSpec := flag.String("b", "", "right factor specification (required unless -power > 0)")
	power := flag.Int("power", 0, "compute the k-th Kronecker power of -a instead of a binary product")
	vertex := flag.Int64("vertex", -1, "also print per-vertex stats for this product vertex")
	jsonOut := flag.Bool("json", false, "emit a JSON summary record")
	useCSR := flag.Bool("csr", false, "also build the product's CSR adjacency and cross-check it against the formulas")
	maxArcs := flag.Int64("maxarcs", 1<<28, "refuse to build the CSR beyond this arc count (-csr)")
	flag.Parse()

	if *power > 0 {
		if *aSpec == "" {
			log.Fatal("-power needs -a")
		}
		runPower(*aSpec, *power)
		return
	}
	if *aSpec == "" || *bSpec == "" {
		log.Fatal("both -a and -b are required")
	}
	a, err := spec.Parse(*aSpec)
	if err != nil {
		log.Fatal(err)
	}
	b, err := spec.Parse(*bSpec)
	if err != nil {
		log.Fatal(err)
	}
	p, err := kron.NewProduct(a, b)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	ta := triangle.Count(a)
	tb := triangle.Count(b)
	tc, err := kron.VertexParticipation(p)
	if err != nil {
		log.Fatal(err)
	}
	total, err := tc.Total()
	if err != nil {
		log.Fatal(err)
	}
	if total%3 != 0 {
		log.Fatal("internal error: participation total not divisible by 3")
	}
	tau := total / 3
	maxDeg, argmax := p.MaxDegree()
	elapsed := time.Since(start)

	if *jsonOut {
		if err := gio.WriteStats(os.Stdout, gio.GraphStats{
			Name:      fmt.Sprintf("(%s) ⊗ (%s)", *aSpec, *bSpec),
			Vertices:  p.NumVertices(),
			Edges:     p.NumArcs(),
			Loops:     p.NumLoops(),
			Triangles: tau,
			MaxDegree: maxDeg,
		}); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("factor A: %d vertices, %d arcs, %d loops, τ=%d (%d wedge checks)\n",
			a.NumVertices(), a.NumArcs(), a.NumLoops(), ta.Total, ta.WedgeChecks)
		fmt.Printf("factor B: %d vertices, %d arcs, %d loops, τ=%d (%d wedge checks)\n",
			b.NumVertices(), b.NumArcs(), b.NumLoops(), tb.Total, tb.WedgeChecks)
		fmt.Printf("product C = A⊗B:\n")
		fmt.Printf("  vertices   %d\n", p.NumVertices())
		fmt.Printf("  arcs       %d\n", p.NumArcs())
		fmt.Printf("  loops      %d\n", p.NumLoops())
		fmt.Printf("  triangles  %d (exact)\n", tau)
		fmt.Printf("  max degree %d (at vertex %d)\n", maxDeg, argmax)
		fmt.Printf("  ground truth computed in %v\n", elapsed)
	}

	if *vertex >= 0 {
		if *vertex >= p.NumVertices() {
			log.Fatalf("vertex %d out of range [0,%d)", *vertex, p.NumVertices())
		}
		i, k := p.Factors(*vertex)
		fmt.Printf("vertex %d = (A:%d, B:%d): degree %d, triangles %d\n",
			*vertex, i, k, p.Degree(*vertex), tc.At(*vertex))
	}

	if *useCSR {
		runCSR(p, *maxArcs, *jsonOut)
	}
}

// runCSR materializes the product adjacency through the parallel
// two-pass CSR builder and cross-checks every measured quantity against
// its Kronecker closed form — the paper's validation story applied to
// the ingestion subsystem itself.
func runCSR(p *kron.Product, maxArcs int64, jsonOut bool) {
	if p.NumArcs() > maxArcs {
		log.Fatalf("-csr: product has %d arcs, above -maxarcs %d", p.NumArcs(), maxArcs)
	}
	start := time.Now()
	g, err := distgen.NewPlan(p, 0).BuildCSR(stream.Options{})
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)

	if g.NumArcs() != p.NumArcs() {
		log.Fatalf("-csr: CSR has %d arcs, formula says %d", g.NumArcs(), p.NumArcs())
	}
	maxOut, atOut := g.MaxOutDegree()
	if want := maxRaw(p.A) * maxRaw(p.B); maxOut != want {
		log.Fatalf("-csr: measured max out-degree %d, formula says %d", maxOut, want)
	}
	start = time.Now()
	tr := g.Transpose()
	transposeTime := time.Since(start)
	maxIn, atIn := tr.MaxOutDegree()
	if want := maxRawIn(p.A) * maxRawIn(p.B); maxIn != want {
		log.Fatalf("-csr: measured max in-degree %d, formula says %d", maxIn, want)
	}

	// With -json the stats record owns stdout; keep it parseable by
	// sending the human-readable CSR block to stderr.
	out := os.Stdout
	if jsonOut {
		out = os.Stderr
	}
	arcsPerSec := float64(g.NumArcs()) / buildTime.Seconds()
	fmt.Fprintf(out, "CSR adjacency (two-pass parallel build):\n")
	fmt.Fprintf(out, "  built in       %v (%.1f M arcs/s)\n", buildTime, arcsPerSec/1e6)
	fmt.Fprintf(out, "  arcs           %d (matches formula)\n", g.NumArcs())
	fmt.Fprintf(out, "  max out-degree %d at vertex %d (matches formula)\n", maxOut, atOut)
	fmt.Fprintf(out, "  max in-degree  %d at vertex %d (matches formula, transpose in %v)\n",
		maxIn, atIn, transposeTime)
	fmt.Fprintf(out, "  digest         %s\n", gio.CSRDigest(g))
}

// maxRaw returns the largest raw out-degree of a factor.
func maxRaw(g *graph.Graph) int64 {
	var best int64
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegreeRaw(int32(v)); d > best {
			best = d
		}
	}
	return best
}

// maxRawIn returns the largest raw in-degree of a factor.
func maxRawIn(g *graph.Graph) int64 {
	in := make([]int64, g.NumVertices())
	g.EachArc(func(_, v int32) bool { in[v]++; return true })
	var best int64
	for _, d := range in {
		if d > best {
			best = d
		}
	}
	return best
}

// runPower prints the statistics ladder for B, B⊗B, …, B^{⊗k}.
func runPower(aSpec string, k int) {
	b, err := spec.Parse(aSpec)
	if err != nil {
		log.Fatal(err)
	}
	tb := triangle.Count(b)
	fmt.Printf("factor: %d vertices, %d arcs, τ = %d\n", b.NumVertices(), b.NumArcs(), tb.Total)
	fmt.Printf("%-3s %20s %20s %24s\n", "k", "vertices", "arcs", "triangles (exact)")
	for j := 1; j <= k; j++ {
		p, err := kron.KroneckerPower(b, j)
		if err != nil {
			log.Fatalf("power %d: %v", j, err)
		}
		tau, err := kron.MultiTriangleTotal(p)
		if err != nil {
			log.Fatalf("power %d: %v", j, err)
		}
		fmt.Printf("%-3d %20d %20d %24d\n", j, p.NumVertices(), p.NumArcs(), tau)
	}
}
