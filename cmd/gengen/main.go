// Gengen streams or shards the edge list of any registered random graph
// model (Erdős–Rényi, G(n,m), R-MAT, Chung–Lu, random geometric 2D/3D,
// Barabási–Albert, random hyperbolic, 2D/3D lattices with optional
// wraparound) through the unified Source pipeline: randomness lives
// in cells derived from (seed, cell id) — pair-range chunks, geometric
// grid cells, or per-edge hash positions — so output is bitwise
// identical for any worker count, even for the models with cross-chunk
// dependence (rgg regenerates neighbor cells, ba retraces per-edge
// dependency chains). The model-agnostic counterpart of krongen.
// Interrupting a long generation (SIGINT/SIGTERM) cancels it cleanly:
// sharded output directories are left without a manifest.json, the
// marker readers require.
//
// Usage:
//
//	gengen -model 'er:n=100000,p=0.001,seed=42' > edges.tsv
//	gengen -model 'rmat:scale=16,seed=7' -shards 8 -out dir/       # shard files + manifest.json
//	gengen -model 'gnm:n=100000,m=1000000' -shards 8 -out dir/ -binary
//	gengen -model 'rgg2d:n=100000,r=0.005' -shards 8 -out dir/     # spatial, cell-grid sharded
//	gengen -model 'rhg:n=100000,d=8,gamma=2.9' -shards 8 -out dir/ # hyperbolic, band/cell sharded
//	gengen -model 'grid2d:x=1000,y=1000,wrap=true' > torus.tsv     # full lattice, exact counts
//	gengen -model 'ba(n=100000;d=4)' -shards 8 -out dir/           # KaGen-style spec alias
//	gengen -model 'chunglu:n=100000,dmax=300' -csr graph.csr       # two-pass parallel CSR build
//	gengen -model 'er:n=100000,p=0.001' -count                     # sizes only
//	gengen -model 'er:n=100000,p=0.001' -digest                    # stream digest only
//	gengen -kinds                                                  # list registered models (sorted)
//
// Spec grammar: kind:key=value,key=value,… (or kind(key=value;…)).
// Every model takes seed (default 1) and chunks (the enumeration
// granularity, default 64; part of the stream identity for er/gnm/
// rmat/chunglu/grid2d/grid3d, grouping-only for rgg2d/rgg3d/ba/rhg).
// See MODELS.md and the package documentation of internal/model for
// per-model parameters and sharding schemes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"kronvalid"
	"kronvalid/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gengen: ")
	modelSpec := flag.String("model", "", "model specification (required; see -kinds)")
	shards := flag.Int("shards", 1, "number of workers / shard files")
	outDir := flag.String("out", "", "output directory for shard files (default: stdout stream)")
	useBinary := flag.Bool("binary", false, "write 16-byte binary arcs instead of TSV (needs -out)")
	csrPath := flag.String("csr", "", "build CSR with the two-pass parallel builder and write it here (KRONCSR1)")
	countOnly := flag.Bool("count", false, "print sizes and exit without generating")
	digestOnly := flag.Bool("digest", false, "print the canonical stream digest and exit")
	progress := flag.Bool("progress", false, "report generation progress on stderr")
	listKinds := flag.Bool("kinds", false, "list registered model kinds and exit")
	prof := cliutil.ProfileFlags()
	flag.Parse()

	// ModelKinds is sorted, so new kinds surface deterministically in
	// help text, error messages and CI logs; sort again so no future
	// registry change can silently reorder them.
	kinds := kronvalid.ModelKinds()
	sort.Strings(kinds)
	if *listKinds {
		fmt.Println(strings.Join(kinds, "\n"))
		return
	}
	if *modelSpec == "" {
		log.Fatal("-model is required (one of: " + strings.Join(kinds, ", ") + ")")
	}
	g, err := kronvalid.NewGenerator(*modelSpec)
	if err != nil {
		log.Fatal(err)
	}
	src := kronvalid.ModelSource(g, *shards)

	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	var opts []kronvalid.Option
	progressDone := func() {}
	if *progress {
		report, done := cliutil.ProgressReporter(os.Stderr, src.TotalArcs())
		progressDone = done
		opts = append(opts, kronvalid.WithProgress(report))
	}

	if *countOnly {
		fmt.Printf("model\t%s\n", src.Name())
		fmt.Printf("vertices\t%d\n", src.NumVertices())
		if arcs := src.TotalArcs(); arcs >= 0 {
			fmt.Printf("arcs\t%d\n", arcs)
		} else {
			fmt.Printf("arcs\tunknown until generated\n")
		}
		for w := 0; w < src.Shards(); w++ {
			lo, hi := src.VertexRange(w)
			if n := src.ShardSize(w); n >= 0 {
				fmt.Printf("shard-%d\tvertices [%d,%d)\t%d arcs\n", w, lo, hi, n)
			} else {
				fmt.Printf("shard-%d\tvertices [%d,%d)\n", w, lo, hi)
			}
		}
		return
	}

	if *digestOnly {
		d, err := kronvalid.Digest(ctx, src, opts...)
		progressDone()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\t%s\n", d, src.Name())
		return
	}

	if *csrPath != "" {
		cg, err := kronvalid.ToCSR(ctx, src, opts...)
		progressDone()
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*csrPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := kronvalid.WriteCSR(f, cg); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gengen: wrote CSR (%d vertices, %d arcs, digest %s) to %s\n",
			cg.NumVertices(), cg.NumArcs(), kronvalid.CSRDigest(cg), *csrPath)
		return
	}

	if *outDir == "" {
		// Stream to stdout through the parallel pipeline: shards generate
		// concurrently, bytes come out in canonical order.
		if *useBinary {
			log.Fatal("-binary needs -out DIR")
		}
		sink := kronvalid.NewEdgeListSink(os.Stdout)
		_, err := kronvalid.Stream(ctx, src, sink, opts...)
		progressDone()
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	m, err := kronvalid.WriteShards(ctx, *outDir, src, append(opts, kronvalid.WithBinary(*useBinary))...)
	progressDone()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gengen: wrote %d arcs in %d shards (%s) of %s to %s\n",
		m.TotalArcs, m.Workers, m.Format, m.Model, *outDir)
}
