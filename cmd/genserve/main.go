// Genserve runs the generation service: an HTTP JSON API that accepts
// model spec strings, schedules generation jobs on a bounded worker
// pool, and serves results out of a content-addressed shard cache.
// Because generation is deterministic — a canonical spec string fully
// reproduces every byte of the stream — repeated requests for the same
// generator are answered from cache without regenerating, concurrent
// identical requests share one job (singleflight), and the cache can be
// evicted freely: any entry is recomputable on demand.
//
// Usage:
//
//	genserve -addr :8080 -cache /var/cache/genserve -cache-bytes 4g
//
// API (JSON unless noted):
//
//	POST /v1/jobs                {"spec": "rmat:scale=20,seed=7", "format": "binary"}
//	GET  /v1/jobs/{id}           ?wait=2s long-polls until terminal
//	POST /v1/jobs/{id}/cancel
//	GET  /v1/jobs/{id}/result    the canonical concatenated arc stream
//	GET  /v1/jobs/{id}/manifest
//	GET  /v1/count?spec=…        closed-form / cached / exact arc counts
//	GET  /v1/digest?spec=…       canonical stream digest (cache-accelerated)
//	GET  /v1/models  /v1/cache  /v1/jobs
//	GET  /metrics                Prometheus text format
//	GET  /healthz
//
// Admission control returns 429 once the queued backlog reaches -queue;
// cancelled or failed jobs leave no cache entry (the abort contract:
// no manifest, no entry). SIGINT/SIGTERM drains cleanly: the listener
// stops, in-flight jobs are cancelled, and their staging directories
// are removed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"kronvalid/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genserve: ")
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache", "", "cache directory (required)")
	cacheBytes := flag.String("cache-bytes", "0", "cache byte budget, e.g. 512m, 4g (0 = unlimited)")
	workers := flag.Int("workers", 2, "jobs generating concurrently")
	genWorkers := flag.Int("gen-workers", 0, "generation threads per job (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "queued-job cap; submissions beyond it get 429")
	shards := flag.Int("shards", 0, "shard files per cache entry (0 = GOMAXPROCS; layout only)")
	flag.Parse()

	if *cacheDir == "" {
		log.Fatal("-cache is required")
	}
	budget, err := parseBytes(*cacheBytes)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.NewServer(serve.Config{
		Dir:          *cacheDir,
		CacheBytes:   budget,
		Workers:      *workers,
		GenWorkers:   *genWorkers,
		QueueDepth:   *queue,
		ShardsPerJob: *shards,
	})
	if err != nil {
		log.Fatal(err)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s (cache %s, budget %s)", *addr, *cacheDir, *cacheBytes)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%v: shutting down", s)
	case err := <-errc:
		srv.Close()
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	srv.Close() // cancels in-flight jobs, removes their staging dirs
}

// parseBytes parses a byte count with an optional k/m/g/t suffix.
func parseBytes(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	case strings.HasSuffix(s, "t"):
		mult, s = 1<<40, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("byte size %q is not a non-negative integer with optional k/m/g/t suffix", s)
	}
	return n * mult, nil
}
