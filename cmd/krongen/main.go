// Krongen streams or shards the edge list of a Kronecker product graph
// C = A ⊗ B built from two factor specifications, using the batched
// parallel pipeline (output is bitwise identical for any worker count).
//
// Usage:
//
//	krongen -a 'web:n=4096,m=4,seed=42' -b 'clique:n=5' > edges.tsv
//	krongen -a ... -b ... -shards 16 -out dir/      # shard files + manifest.json
//	krongen -a ... -b ... -shards 16 -out dir/ -binary
//	krongen -a ... -b ... -count                    # sizes only
//
// See package internal/spec for the factor specification grammar.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"kronvalid"
	"kronvalid/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("krongen: ")
	aSpec := flag.String("a", "", "left factor specification (required)")
	bSpec := flag.String("b", "", "right factor specification (required)")
	shards := flag.Int("shards", 1, "number of shards")
	outDir := flag.String("out", "", "output directory for shard files (default: stdout stream)")
	useBinary := flag.Bool("binary", false, "write 16-byte binary arcs instead of TSV (needs -out)")
	countOnly := flag.Bool("count", false, "print sizes and exit without generating")
	flag.Parse()

	if *aSpec == "" || *bSpec == "" {
		log.Fatal("both -a and -b are required")
	}
	a, err := spec.Parse(*aSpec)
	if err != nil {
		log.Fatal(err)
	}
	b, err := spec.Parse(*bSpec)
	if err != nil {
		log.Fatal(err)
	}
	p, err := kronvalid.NewProduct(a, b)
	if err != nil {
		log.Fatal(err)
	}

	if *countOnly {
		plan := kronvalid.NewGenPlan(p, *shards)
		fmt.Printf("vertices\t%d\n", p.NumVertices())
		fmt.Printf("arcs\t%d\n", p.NumArcs())
		for w := 0; w < plan.Workers(); w++ {
			fmt.Printf("shard-%d\t%d\n", w, plan.ShardSize(w))
		}
		return
	}

	if *outDir == "" {
		// Stream to stdout through the parallel pipeline: shards generate
		// concurrently, bytes come out in canonical serial order.
		if *useBinary {
			log.Fatal("-binary needs -out DIR")
		}
		sink := kronvalid.NewEdgeListSink(os.Stdout)
		if _, err := kronvalid.StreamEdges(p, kronvalid.StreamOptions{Workers: *shards}, sink); err != nil {
			log.Fatal(err)
		}
		return
	}

	m, err := kronvalid.WriteSharded(*outDir, p, *shards,
		kronvalid.WriteShardedOptions{Binary: *useBinary})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "krongen: wrote %d arcs in %d shards (%s) to %s\n",
		m.TotalArcs, m.Workers, m.Format, *outDir)
}
