// Krongen streams or shards the edge list of a Kronecker product graph
// C = A ⊗ B built from two factor specifications.
//
// Usage:
//
//	krongen -a 'web:n=4096,m=4,seed=42' -b 'clique:n=5' > edges.tsv
//	krongen -a ... -b ... -shards 16 -out dir/      # one file per shard
//	krongen -a ... -b ... -count                    # sizes only
//
// See package internal/spec for the factor specification grammar.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"kronvalid/internal/distgen"
	"kronvalid/internal/kron"
	"kronvalid/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("krongen: ")
	aSpec := flag.String("a", "", "left factor specification (required)")
	bSpec := flag.String("b", "", "right factor specification (required)")
	shards := flag.Int("shards", 1, "number of shards")
	outDir := flag.String("out", "", "output directory for shard files (default: stdout, single shard)")
	countOnly := flag.Bool("count", false, "print sizes and exit without generating")
	flag.Parse()

	if *aSpec == "" || *bSpec == "" {
		log.Fatal("both -a and -b are required")
	}
	a, err := spec.Parse(*aSpec)
	if err != nil {
		log.Fatal(err)
	}
	b, err := spec.Parse(*bSpec)
	if err != nil {
		log.Fatal(err)
	}
	p, err := kron.NewProduct(a, b)
	if err != nil {
		log.Fatal(err)
	}
	plan := distgen.NewPlan(p, *shards)

	if *countOnly {
		fmt.Printf("vertices\t%d\n", p.NumVertices())
		fmt.Printf("arcs\t%d\n", p.NumArcs())
		for w := 0; w < plan.Workers(); w++ {
			fmt.Printf("shard-%d\t%d\n", w, plan.ShardSize(w))
		}
		return
	}

	if *outDir == "" {
		if plan.Workers() != 1 {
			log.Fatal("multiple shards need -out DIR")
		}
		if _, err := plan.WriteShard(0, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	var total int64
	for w := 0; w < plan.Workers(); w++ {
		path := filepath.Join(*outDir, fmt.Sprintf("shard-%03d.tsv", w))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		n, err := plan.WriteShard(w, f)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		total += n
	}
	fmt.Fprintf(os.Stderr, "krongen: wrote %d arcs in %d shards to %s\n", total, plan.Workers(), *outDir)
}
