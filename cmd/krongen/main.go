// Krongen streams or shards the edge list of a Kronecker product graph
// C = A ⊗ B built from two factor specifications, using the unified
// Source pipeline (output is bitwise identical for any worker count).
// Interrupting a long generation (SIGINT/SIGTERM) cancels it cleanly:
// sharded output directories are left without a manifest.json, the
// marker readers require.
//
// Usage:
//
//	krongen -a 'web:n=4096,m=4,seed=42' -b 'clique:n=5' > edges.tsv
//	krongen -a ... -b ... -shards 16 -out dir/      # shard files + manifest.json
//	krongen -a ... -b ... -shards 16 -out dir/ -binary
//	krongen -a ... -b ... -count                    # sizes only
//	krongen -a ... -b ... -digest                   # stream digest only
//	krongen -a ... -b ... -shards 16 -out dir/ -progress
//
// See package internal/spec for the factor specification grammar.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"kronvalid"
	"kronvalid/internal/cliutil"
	"kronvalid/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("krongen: ")
	aSpec := flag.String("a", "", "left factor specification (required)")
	bSpec := flag.String("b", "", "right factor specification (required)")
	shards := flag.Int("shards", 1, "number of shards")
	outDir := flag.String("out", "", "output directory for shard files (default: stdout stream)")
	useBinary := flag.Bool("binary", false, "write 16-byte binary arcs instead of TSV (needs -out)")
	countOnly := flag.Bool("count", false, "print sizes and exit without generating")
	digestOnly := flag.Bool("digest", false, "print the canonical stream digest and exit")
	progress := flag.Bool("progress", false, "report generation progress on stderr")
	prof := cliutil.ProfileFlags()
	flag.Parse()

	if *aSpec == "" || *bSpec == "" {
		log.Fatal("both -a and -b are required")
	}
	a, err := spec.Parse(*aSpec)
	if err != nil {
		log.Fatal(err)
	}
	b, err := spec.Parse(*bSpec)
	if err != nil {
		log.Fatal(err)
	}
	p, err := kronvalid.NewProduct(a, b)
	if err != nil {
		log.Fatal(err)
	}
	src := kronvalid.ProductSource(p, *shards)

	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	var opts []kronvalid.Option
	progressDone := func() {}
	if *progress {
		report, done := cliutil.ProgressReporter(os.Stderr, src.TotalArcs())
		progressDone = done
		opts = append(opts, kronvalid.WithProgress(report))
	}

	if *countOnly {
		fmt.Printf("source\t%s\n", src.Name())
		fmt.Printf("vertices\t%d\n", p.NumVertices())
		fmt.Printf("arcs\t%d\n", p.NumArcs())
		for w := 0; w < src.Shards(); w++ {
			fmt.Printf("shard-%d\t%d\n", w, src.ShardSize(w))
		}
		return
	}

	if *digestOnly {
		d, err := kronvalid.Digest(ctx, src, opts...)
		progressDone()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\t%s\n", d, src.Name())
		return
	}

	if *outDir == "" {
		// Stream to stdout through the parallel pipeline: shards generate
		// concurrently, bytes come out in canonical serial order.
		if *useBinary {
			log.Fatal("-binary needs -out DIR")
		}
		sink := kronvalid.NewEdgeListSink(os.Stdout)
		_, err := kronvalid.Stream(ctx, src, sink, opts...)
		progressDone()
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	m, err := kronvalid.WriteShards(ctx, *outDir, src, append(opts, kronvalid.WithBinary(*useBinary))...)
	progressDone()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "krongen: wrote %d arcs in %d shards (%s) to %s\n",
		m.TotalArcs, m.Workers, m.Format, *outDir)
}
