// Validate cross-checks every paper formula for a Kronecker product
// against structure-oblivious computation. In full mode (default) the
// product is materialized and every statistic recomputed directly; in
// sampled mode (-sample) arbitrary-scale products are spot-checked by
// egonet extraction and per-edge recounts. Exit status is nonzero on any
// mismatch.
//
// Usage:
//
//	validate -a 'er:n=20,p=0.3,seed=1' -b 'pa1:n=12,seed=2'
//	validate -a 'web:n=65536,m=3,seed=1' -b 'web:n=65536,m=3,seed=2' -sample
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"kronvalid/internal/kron"
	"kronvalid/internal/spec"
	"kronvalid/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("validate: ")
	aSpec := flag.String("a", "er:n=12,p=0.4,seed=1", "left factor specification")
	bSpec := flag.String("b", "pa1:n=10,seed=2", "right factor specification")
	maxVerts := flag.Int64("max-vertices", 4000, "materialization vertex limit (full mode)")
	maxArcs := flag.Int64("max-arcs", 4_000_000, "materialization arc limit (full mode)")
	sample := flag.Bool("sample", false, "sampled validation (for products too large to materialize)")
	vertexSamples := flag.Int("vertex-samples", 64, "egonet spot checks in sampled mode")
	edgeSamples := flag.Int("edge-samples", 64, "edge spot checks in sampled mode")
	maxDegree := flag.Int64("max-degree", 1<<20, "degree cap for sampled expansion")
	seed := flag.Uint64("seed", 1, "sampling seed")
	flag.Parse()

	a, err := spec.Parse(*aSpec)
	if err != nil {
		log.Fatal(err)
	}
	b, err := spec.Parse(*bSpec)
	if err != nil {
		log.Fatal(err)
	}
	p, err := kron.NewProduct(a, b)
	if err != nil {
		log.Fatal(err)
	}

	mode := "full"
	var report *verify.Report
	if *sample {
		mode = "sampled"
		report, err = verify.Sampled(p, *vertexSamples, *edgeSamples, *maxDegree, *seed)
	} else {
		report, err = verify.Full(p, *maxVerts, *maxArcs)
	}
	if err != nil {
		log.Fatalf("%v (hint: use -sample for large products)", err)
	}

	fmt.Printf("validating C = (%s) ⊗ (%s): %d vertices, %d arcs [%s mode]\n\n",
		*aSpec, *bSpec, p.NumVertices(), p.NumArcs(), mode)
	for _, c := range report.Checks {
		switch {
		case !c.Ran:
			fmt.Printf("  %-46s skipped: %s\n", c.Name, c.Skipped)
		case c.Passed:
			fmt.Printf("  %-46s ok\n", c.Name)
		default:
			fmt.Printf("  %-46s FAIL\n", c.Name)
		}
	}
	if !report.AllPassed() {
		fmt.Printf("\nFAILED: %v\n", report.Failures())
		os.Exit(1)
	}
	fmt.Println("\nall formulas validated ✓")
}
