// Genload load-tests a running genserve instance with a configurable
// mix of hot requests (one fixed spec, cache-resident after the first
// miss), cold requests (a spec template stamped with unique seeds, so
// every one is a fresh generation), and cancel requests (a cold job
// cancelled mid-generation, exercising the abort contract under load).
//
// It reports served-arc throughput separately for hot and cold traffic:
// hot rate is Σ downloaded arcs / Σ hot request wall time, cold rate is
// Σ generated arcs / Σ cold request wall time (submit to terminal
// state). The ratio between them is the service's case: a cache hit
// replays bytes instead of regenerating, so hot throughput should beat
// cold by a wide margin. -min-hot-ratio turns that into an exit code
// for CI.
//
// Usage:
//
//	genload -url http://localhost:8080 \
//	        -hot 'rmat:scale=16,edges=4194304,seed=7' \
//	        -cold 'rmat:scale=14,edges=1048576' \
//	        -clients 8 -duration 10s -cold-frac 0.2 -cancel-frac 0.1 \
//	        -min-hot-ratio 5
//
// The -cold template must use the colon spec form and omit seed; each
// cold request appends a unique ",seed=N".
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type jobView struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached"`
	Error  string `json:"error"`
}

// class accumulates one traffic class's results.
type class struct {
	requests atomic.Int64
	errors   atomic.Int64
	arcs     atomic.Int64
	bytes    atomic.Int64
	nanos    atomic.Int64 // summed request wall time
}

func (c *class) rate() float64 {
	ns := c.nanos.Load()
	if ns == 0 {
		return 0
	}
	return float64(c.arcs.Load()) / (float64(ns) / float64(time.Second))
}

type report struct {
	Duration        float64 `json:"duration_sec"`
	Clients         int     `json:"clients"`
	HotRequests     int64   `json:"hot_requests"`
	HotHits         int64   `json:"hot_hits"`
	HotArcs         int64   `json:"hot_arcs"`
	HotBytes        int64   `json:"hot_bytes"`
	HotArcsPerSec   float64 `json:"hot_arcs_per_sec"`
	ColdRequests    int64   `json:"cold_requests"`
	ColdArcs        int64   `json:"cold_arcs"`
	ColdArcsPerSec  float64 `json:"cold_arcs_per_sec"`
	Cancels         int64   `json:"cancels"`
	CancelsLanded   int64   `json:"cancels_landed"`
	Rejected        int64   `json:"rejected_429"`
	Errors          int64   `json:"errors"`
	HotColdRatio    float64 `json:"hot_cold_ratio"`
	ServerHitRatio  float64 `json:"server_hit_ratio"`
	ServerEvictions int64   `json:"server_evictions"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("genload: ")
	url := flag.String("url", "http://localhost:8080", "genserve base URL")
	hot := flag.String("hot", "rmat:scale=14,edges=1048576,seed=7", "hot spec (cache-resident after first miss)")
	cold := flag.String("cold", "rmat:scale=12,edges=262144", "cold spec template; unique ,seed=N appended per request")
	format := flag.String("format", "binary", "result format: binary or tsv")
	clients := flag.Int("clients", 4, "concurrent client goroutines")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	coldFrac := flag.Float64("cold-frac", 0.2, "fraction of requests that are cold generations")
	cancelFrac := flag.Float64("cancel-frac", 0.1, "fraction of requests that cancel a cold job mid-generation")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	minHotRatio := flag.Float64("min-hot-ratio", 0, "exit nonzero unless hot rate ≥ this multiple of cold rate")
	flag.Parse()
	if strings.Contains(*cold, "seed=") {
		log.Fatal("-cold template must omit seed; genload appends unique seeds")
	}

	var hotC, coldC class
	var hotHits, cancels, cancelsLanded, rejected atomic.Int64
	var seedCounter atomic.Int64
	seedCounter.Store(time.Now().UnixNano() % 1_000_000_000)
	client := &http.Client{Timeout: 5 * time.Minute}

	// Prime the hot spec so the measured window is pure hit traffic.
	if _, _, _, err := runJob(client, *url, *hot, *format, true); err != nil {
		log.Fatalf("priming hot spec: %v", err)
	}

	stop := time.Now().Add(*duration)
	var wg sync.WaitGroup
	wg.Add(*clients)
	for i := 0; i < *clients; i++ {
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			for time.Now().Before(stop) {
				r := rng.Float64()
				switch {
				case r < *cancelFrac:
					cancels.Add(1)
					spec := fmt.Sprintf("%s,seed=%d", *cold, seedCounter.Add(1))
					if landed, err := cancelJob(client, *url, spec, *format); err == nil && landed {
						cancelsLanded.Add(1)
					}
				case r < *cancelFrac+*coldFrac:
					start := time.Now()
					arcs, _, _, err := runJob(client, *url,
						fmt.Sprintf("%s,seed=%d", *cold, seedCounter.Add(1)), *format, false)
					record(&coldC, arcs, 0, time.Since(start), err, &rejected)
				default:
					start := time.Now()
					arcs, nbytes, cached, err := runJob(client, *url, *hot, *format, true)
					record(&hotC, arcs, nbytes, time.Since(start), err, &rejected)
					if err == nil && cached {
						hotHits.Add(1)
					}
				}
			}
		}(i)
	}
	wg.Wait()

	rep := report{
		Duration:       duration.Seconds(),
		Clients:        *clients,
		HotRequests:    hotC.requests.Load(),
		HotHits:        hotHits.Load(),
		HotArcs:        hotC.arcs.Load(),
		HotBytes:       hotC.bytes.Load(),
		HotArcsPerSec:  hotC.rate(),
		ColdRequests:   coldC.requests.Load(),
		ColdArcs:       coldC.arcs.Load(),
		ColdArcsPerSec: coldC.rate(),
		Cancels:        cancels.Load(),
		CancelsLanded:  cancelsLanded.Load(),
		Rejected:       rejected.Load(),
		Errors:         hotC.errors.Load() + coldC.errors.Load(),
	}
	if rep.ColdArcsPerSec > 0 {
		rep.HotColdRatio = rep.HotArcsPerSec / rep.ColdArcsPerSec
	}
	rep.ServerHitRatio, rep.ServerEvictions = scrapeServer(client, *url)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Printf("hot:   %d requests (%d hits), %.3g arcs/s (%.1f MB/s)\n",
			rep.HotRequests, rep.HotHits, rep.HotArcsPerSec,
			float64(rep.HotBytes)/rep.Duration/(1<<20))
		fmt.Printf("cold:  %d requests, %.3g arcs/s\n", rep.ColdRequests, rep.ColdArcsPerSec)
		fmt.Printf("mixed: %d cancels (%d landed mid-job), %d rejected (429), %d errors\n",
			rep.Cancels, rep.CancelsLanded, rep.Rejected, rep.Errors)
		fmt.Printf("ratio: hot/cold = %.1fx, server hit ratio %.3f, evictions %d\n",
			rep.HotColdRatio, rep.ServerHitRatio, rep.ServerEvictions)
	}
	if *minHotRatio > 0 {
		if rep.ColdArcsPerSec == 0 {
			log.Fatal("no cold throughput measured; cannot check -min-hot-ratio")
		}
		if rep.HotColdRatio < *minHotRatio {
			log.Fatalf("hot/cold ratio %.2f below required %.2f", rep.HotColdRatio, *minHotRatio)
		}
	}
}

var errRejected = errors.New("rejected")

func record(c *class, arcs, nbytes int64, elapsed time.Duration, err error, rejected *atomic.Int64) {
	if errors.Is(err, errRejected) {
		rejected.Add(1)
		return
	}
	c.requests.Add(1)
	if err != nil {
		c.errors.Add(1)
		return
	}
	c.arcs.Add(arcs)
	c.bytes.Add(nbytes)
	c.nanos.Add(int64(elapsed))
}

// submit POSTs a job, returning the view; a 429 maps to errRejected.
func submit(client *http.Client, base, spec, format string) (jobView, error) {
	body, _ := json.Marshal(map[string]string{"spec": spec, "format": format})
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return jobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		return jobView{}, errRejected
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		return jobView{}, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, b)
	}
	var v jobView
	return v, json.NewDecoder(resp.Body).Decode(&v)
}

// runJob submits spec, waits for completion, and (when download is set)
// streams the result, returning (arcs, downloadedBytes, cacheHit).
func runJob(client *http.Client, base, spec, format string, download bool) (int64, int64, bool, error) {
	v, err := submit(client, base, spec, format)
	if err != nil {
		return 0, 0, false, err
	}
	for v.State != "done" {
		switch v.State {
		case "failed", "cancelled":
			return 0, 0, false, fmt.Errorf("job %s %s: %s", v.ID, v.State, v.Error)
		}
		if v, err = poll(client, base, v.ID, "5s"); err != nil {
			return 0, 0, false, err
		}
	}
	if !download {
		return arcsOf(client, base, v.ID)
	}
	resp, err := client.Get(base + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		return 0, 0, v.Cached, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, 0, v.Cached, fmt.Errorf("result: HTTP %d", resp.StatusCode)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	arcs, _ := strconv.ParseInt(resp.Header.Get("X-Genserve-Arcs"), 10, 64)
	return arcs, n, v.Cached, err
}

// arcsOf reads the job's arc count from its terminal view.
func arcsOf(client *http.Client, base, id string) (int64, int64, bool, error) {
	resp, err := client.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return 0, 0, false, err
	}
	defer resp.Body.Close()
	var v struct {
		ArcsDone int64 `json:"arcs_done"`
		Cached   bool  `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return 0, 0, false, err
	}
	return v.ArcsDone, 0, v.Cached, nil
}

func poll(client *http.Client, base, id, wait string) (jobView, error) {
	resp, err := client.Get(base + "/v1/jobs/" + id + "?wait=" + wait)
	if err != nil {
		return jobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return jobView{}, fmt.Errorf("status: HTTP %d: %s", resp.StatusCode, b)
	}
	var v jobView
	return v, json.NewDecoder(resp.Body).Decode(&v)
}

// cancelJob submits a cold job and cancels it as soon as it is seen
// running; landed reports whether the cancel caught the job before a
// terminal state.
func cancelJob(client *http.Client, base, spec, format string) (bool, error) {
	v, err := submit(client, base, spec, format)
	if err != nil {
		return false, err
	}
	for i := 0; i < 100 && v.State == "queued"; i++ {
		time.Sleep(2 * time.Millisecond)
		if v, err = poll(client, base, v.ID, ""); err != nil {
			return false, err
		}
	}
	resp, err := client.Post(base+"/v1/jobs/"+v.ID+"/cancel", "application/json", nil)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var out jobView
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return false, err
	}
	if out.State == "cancelled" {
		return true, nil
	}
	out, err = poll(client, base, v.ID, "30s")
	return err == nil && out.State == "cancelled", err
}

// scrapeServer pulls hit ratio and evictions from /v1/cache.
func scrapeServer(client *http.Client, base string) (float64, int64) {
	resp, err := client.Get(base + "/v1/cache")
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	var v struct {
		HitRatio  float64 `json:"hit_ratio"`
		Evictions int64   `json:"evictions"`
	}
	if json.NewDecoder(resp.Body).Decode(&v) != nil {
		return 0, 0
	}
	return v.HitRatio, v.Evictions
}
