// Apicheck renders the exported API surface of the root kronvalid
// package — every exported const, var, type, function, and method
// signature, comments stripped — as a deterministic sorted text listing,
// and (with -check) diffs it against the committed golden API.txt.
//
// The golden file turns accidental breakage into a CI failure: removing
// an exported symbol or changing a signature changes the listing, so the
// change only lands if API.txt is regenerated in the same commit — an
// explicit, reviewable act. Regenerate with:
//
//	go run ./cmd/apicheck > API.txt
//
// Check (what CI runs) with:
//
//	go run ./cmd/apicheck -check API.txt
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"log"
	"os"
	"sort"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("apicheck: ")
	dir := flag.String("dir", ".", "package directory to inspect")
	check := flag.String("check", "", "golden file to compare against (empty = print listing)")
	flag.Parse()

	listing, err := apiListing(*dir)
	if err != nil {
		log.Fatal(err)
	}
	if *check == "" {
		fmt.Print(listing)
		return
	}
	golden, err := os.ReadFile(*check)
	if err != nil {
		log.Fatal(err)
	}
	if string(golden) == listing {
		fmt.Printf("apicheck: API surface matches %s (%d entries)\n", *check, strings.Count(listing, "\n"))
		return
	}
	fmt.Fprintf(os.Stderr, "apicheck: exported API surface differs from %s.\n", *check)
	fmt.Fprint(os.Stderr, diffLines(string(golden), listing))
	fmt.Fprintln(os.Stderr, "\nIf the change is intentional, regenerate the golden with:")
	fmt.Fprintln(os.Stderr, "\tgo run ./cmd/apicheck > API.txt")
	os.Exit(1)
}

// apiListing parses the package's non-test files and renders one sorted
// entry per exported declaration.
func apiListing(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return "", err
	}
	var entries []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				entries = append(entries, declEntries(fset, decl)...)
			}
		}
	}
	sort.Strings(entries)
	return strings.Join(entries, "\n") + "\n", nil
}

// declEntries renders the exported parts of one top-level declaration.
func declEntries(fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || (d.Recv != nil && !exportedRecv(d.Recv)) {
			return nil
		}
		sig := *d
		sig.Body = nil
		sig.Doc = nil
		return []string{render(fset, &sig)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				c := *s
				c.Doc, c.Comment = nil, nil
				stripComments(&c)
				out = append(out, "type "+render(fset, &c))
			case *ast.ValueSpec:
				var names []*ast.Ident
				for _, n := range s.Names {
					if n.IsExported() {
						names = append(names, n)
					}
				}
				if len(names) == 0 {
					continue
				}
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				c := *s
				c.Doc, c.Comment = nil, nil
				c.Names = names
				out = append(out, kw+" "+render(fset, &c))
			}
		}
		return out
	}
	return nil
}

// exportedRecv reports whether a method receiver's base type is exported.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// stripComments nils every doc comment nested inside a type spec (struct
// fields, interface methods), so comment edits never churn the golden.
func stripComments(n ast.Node) {
	ast.Inspect(n, func(node ast.Node) bool {
		if f, ok := node.(*ast.Field); ok {
			f.Doc, f.Comment = nil, nil
		}
		return true
	})
}

// render formats a node with go/format and collapses it to one line per
// entry (inner newlines become "; " separators so multi-line types stay
// a single sortable entry).
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	if err := format.Node(&buf, fset, node); err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	for i, l := range lines {
		lines[i] = strings.TrimSpace(l)
	}
	return strings.Join(lines, " ")
}

// diffLines renders a minimal line diff: lines only in want prefixed
// with "-" (removed from the golden), lines only in got with "+".
func diffLines(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "-%s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+%s\n", l)
		}
	}
	return b.String()
}
