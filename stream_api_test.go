package kronvalid

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// serialEdgeBytes renders the legacy per-arc EachArc stream the way the
// old fmt-based writer did — the reference byte stream every pipeline
// configuration must reproduce.
func serialEdgeBytes(p *Product) []byte {
	var buf bytes.Buffer
	p.EachArc(func(u, v int64) bool {
		fmt.Fprintf(&buf, "%d\t%d\n", u, v)
		return true
	})
	return buf.Bytes()
}

func pipelineProduct() *Product {
	a := WebGraph(120, 3, 0.7, 9)
	b := HubCycle(6)
	return MustProduct(a, b)
}

func TestStreamEdgesBytewiseStableAcrossWorkerCounts(t *testing.T) {
	p := pipelineProduct()
	want := serialEdgeBytes(p)
	for _, workers := range []int{1, 2, 3, 8} {
		var got bytes.Buffer
		var count CountingSink
		var check DedupCheckSink
		n, err := StreamEdges(p, StreamOptions{Workers: workers, BatchSize: 512},
			MultiSink{NewEdgeListSink(&got), &count, &check})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != p.NumArcs() || count.N != n {
			t.Fatalf("workers=%d: streamed %d arcs (counted %d), want %d", workers, n, count.N, p.NumArcs())
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("workers=%d: stream bytes differ from legacy EachArc order", workers)
		}
	}
}

func TestWriteShardedReproducesSerialStream(t *testing.T) {
	p := pipelineProduct()
	want := serialEdgeBytes(p)
	for _, workers := range []int{1, 2, 3, 8} {
		dir := t.TempDir()
		m, err := WriteSharded(dir, p, workers, WriteShardedOptions{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		back, err := ReadShardManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		if back.TotalArcs != p.NumArcs() || len(back.Shards) != m.Workers {
			t.Fatalf("workers=%d: manifest mismatch %+v", workers, back)
		}
		var concat []byte
		var sum int64
		for _, s := range back.Shards {
			data, err := os.ReadFile(filepath.Join(dir, s.File))
			if err != nil {
				t.Fatal(err)
			}
			concat = append(concat, data...)
			sum += s.Arcs
		}
		if sum != p.NumArcs() {
			t.Fatalf("workers=%d: shard counts sum to %d, want %d", workers, sum, p.NumArcs())
		}
		if !bytes.Equal(concat, want) {
			t.Fatalf("workers=%d: concatenated shards differ from legacy EachArc order", workers)
		}
	}
}

func TestDegreeHistogramSinkMatchesProductDegrees(t *testing.T) {
	a := WebGraph(40, 3, 0.6, 4)
	p := MustProduct(a, HubCycle(5))
	var h DegreeHistogramSink
	if _, err := StreamEdges(p, StreamOptions{Workers: 4, BatchSize: 128}, &h); err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{}
	for v := int64(0); v < p.NumVertices(); v++ {
		if d := p.OutDegreeRaw(v); d > 0 {
			want[d]++
		}
	}
	if len(h.Counts) != len(want) {
		t.Fatalf("histogram has %d degrees, want %d", len(h.Counts), len(want))
	}
	for d, c := range want {
		if h.Counts[d] != c {
			t.Fatalf("degree %d: %d vertices, want %d", d, h.Counts[d], c)
		}
	}
}
