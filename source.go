package kronvalid

// The unified Source pipeline API: one verb set — Stream, ToCSR,
// WriteShards, Count, Digest — over every communication-free sharded
// generator, Kronecker products and random models alike. Each verb takes
// a context (long generations are cancellable mid-shard) and functional
// options (new knobs never break signatures). The legacy per-generator
// entry points in api.go are thin deprecated shims over these verbs.

import (
	"context"

	"kronvalid/internal/csr"
	"kronvalid/internal/distgen"
	"kronvalid/internal/gio"
	"kronvalid/internal/model"
	"kronvalid/internal/stream"
)

// Source is the unified abstraction the whole pipeline is verbed over: a
// fixed number of communication-free, replayable shards, each emitting
// its arcs in canonical (strictly increasing lexicographic) order over a
// disjoint, non-decreasing source-vertex range, so that concatenating
// shards 0..Shards()-1 reproduces the canonical stream byte-for-byte for
// every shard and worker count. Name() is a stable identity that fully
// reproduces the stream (it is recorded in shard manifests).
//
// ProductSource and ModelSource build Sources from the two built-in
// generator families; any external generator that satisfies the contract
// plugs into the same verbs.
type Source = stream.Source

// ProductSource partitions the Kronecker product C = A ⊗ B into at most
// `shards` communication-free shards (0 = GOMAXPROCS) by A-row blocks
// and returns it as a pipeline Source. The shard count fixes the
// partition granularity only — the concatenated stream is identical for
// every value.
func ProductSource(p *Product, shards int) Source { return distgen.NewPlan(p, shards) }

// ModelSource groups a random model's randomness chunks into at most
// `shards` contiguous runs (0 = GOMAXPROCS) and returns it as a pipeline
// Source. Grouping never touches a random draw: the concatenated stream
// is identical for every shard count.
func ModelSource(g ModelGenerator, shards int) Source { return model.NewPlan(g, shards) }

// Option tunes a pipeline verb. The zero configuration (no options)
// means: GOMAXPROCS workers, 4096-arc batches, 4 batches of read-ahead,
// two-pass CSR construction, TSV shard files, no progress reporting.
type Option func(*config)

type config struct {
	stream  stream.Options
	onePass bool
	binary  bool
	extra   map[string]string
}

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// WithWorkers bounds how many shards generate (or write) concurrently;
// 0 or omitted means GOMAXPROCS. It never affects the output bytes —
// that is the pipeline's central invariant.
func WithWorkers(n int) Option { return func(c *config) { c.stream.Workers = n } }

// WithBatchSize sets the arcs-per-batch of the pipeline (0 = 4096).
// Batch size affects only scheduling granularity, never the stream.
func WithBatchSize(n int) Option { return func(c *config) { c.stream.BatchSize = n } }

// WithReadAhead sets how many batches each in-flight shard may queue
// ahead of the ordered consumer (0 = 4).
func WithReadAhead(n int) Option { return func(c *config) { c.stream.Buffer = n } }

// WithTwoPass selects ToCSR's construction scheme: true (the default)
// regenerates each shard twice through the parallel count → prefix →
// scatter builder; false streams once through the ordered one-pass
// accumulator (serial consumption, but a single generation pass). The
// resulting graphs are identical either way.
func WithTwoPass(enabled bool) Option { return func(c *config) { c.onePass = !enabled } }

// WithProgress installs a progress callback invoked with the cumulative
// number of arcs processed and shards completed. It is called once per
// batch from the pipeline's consuming goroutine(s) — calls are
// serialized, but for parallel verbs (WriteShards, two-pass ToCSR) they
// may come from different goroutines over time. Keep it cheap.
func WithProgress(fn func(arcs, shards int64)) Option {
	return func(c *config) { c.stream.Progress = fn }
}

// WithBinary makes WriteShards emit 16-byte little-endian binary arcs
// instead of TSV lines.
func WithBinary(enabled bool) Option { return func(c *config) { c.binary = enabled } }

// WithManifestExtra merges annotation key/values into the manifest
// WriteShards emits (provenance, experiment tags). Keys are recorded
// verbatim; readers ignore unknown keys.
func WithManifestExtra(extra map[string]string) Option {
	return func(c *config) {
		if c.extra == nil {
			c.extra = make(map[string]string, len(extra))
		}
		for k, v := range extra {
			c.extra[k] = v
		}
	}
}

// Stream drives every shard of src through the ordered parallel pipeline
// into sink: shards generate concurrently (bounded by WithWorkers), the
// sink observes the canonical stream — byte-identical for every worker
// count and batch size. Returns the number of arcs delivered.
//
// Cancelling ctx stops the stream within one batch and returns ctx.Err();
// no goroutine outlives the call, and the sink's Flush still runs exactly
// once so partial output is consistently finalized.
func Stream(ctx context.Context, src Source, sink ArcSink, opts ...Option) (int64, error) {
	c := buildConfig(opts)
	return stream.RunFactoryContext(ctx, src.Shards(), genFactoryOf(src), sink, c.stream)
}

// genFactoryOf returns src's per-worker generator factory when it
// offers one (spatial models reuse dependency-cell caches across the
// shards one worker executes) and a trivial shared-ShardGen factory
// otherwise. Worker state never changes the stream's bytes, only the
// cost of producing them.
func genFactoryOf(src Source) stream.GenFactory {
	if fs, ok := src.(stream.FactorySource); ok {
		return fs.ShardGenFactory()
	}
	return func() stream.ShardGen { return src.EachShardBatch }
}

// ToCSR materializes src's graph as CSR adjacency. By default it runs
// the two-pass parallel builder (count → prefix → scatter over the
// replayable shards, race-free by shard-owned row ranges);
// WithTwoPass(false) selects the single-generation-pass ordered
// accumulator instead. Both produce identical graphs for every worker
// count. Cancelling ctx aborts within one batch per shard and returns
// ctx.Err().
func ToCSR(ctx context.Context, src Source, opts ...Option) (*CSRGraph, error) {
	c := buildConfig(opts)
	if c.onePass {
		sink := csr.NewSink(src.NumVertices(), src.TotalArcs())
		if _, err := stream.RunFactoryContext(ctx, src.Shards(), genFactoryOf(src), sink, c.stream); err != nil {
			return nil, err
		}
		return sink.Graph()
	}
	return csr.BuildContext(ctx, csrSourceOf(src), c.stream)
}

// csrSourceOf adapts a pipeline Source to the two-pass builder's
// contract — the Source guarantees (disjoint shard-owned vertex ranges,
// canonical order, replayability) are exactly what the builder needs.
func csrSourceOf(src Source) csr.Source {
	return csr.Source{
		NumVertices: src.NumVertices(),
		NumArcs:     src.TotalArcs(),
		Shards:      src.Shards(),
		VertexRange: src.VertexRange,
		Generate:    src.EachShardBatch,
	}
}

// WriteShards writes src's edge list into dir as one file per shard plus
// a manifest.json recording the source's Name(), per-shard arc counts,
// and any WithManifestExtra annotations, generating shards in parallel.
// Output is bitwise reproducible, and concatenating the shard files in
// index order reproduces the canonical stream.
//
// The manifest is the directory's commit record, written last and only
// on full success: a sink write failure (reported with the failing
// shard's index in the error) or a context cancellation leaves the
// directory without a manifest.json, so partial output can never be
// mistaken for a complete stream.
func WriteShards(ctx context.Context, dir string, src Source, opts ...Option) (*ShardManifest, error) {
	c := buildConfig(opts)
	base := manifestBase(src)
	base.Extra = c.extra
	return distgen.WriteShardedSourceContext(ctx, dir, src, base, distgen.WriteOptions{
		Binary:    c.binary,
		Workers:   c.stream.Workers,
		BatchSize: c.stream.BatchSize,
		Progress:  c.stream.Progress,
	})
}

// manifestBase keeps the legacy manifest identity fields populated for
// the built-in source families: kron plans stamp "kron" plus the factor
// digests, model plans their spec string. Every source — including
// external ones — additionally gets the uniform Source = Name() field.
func manifestBase(src Source) distgen.Manifest {
	switch s := src.(type) {
	case *distgen.Plan:
		return distgen.Manifest{
			Model:         "kron",
			FactorADigest: GraphDigest(s.Product().A),
			FactorBDigest: GraphDigest(s.Product().B),
		}
	case *model.Plan:
		return distgen.Manifest{Model: s.Generator().Name()}
	default:
		return distgen.Manifest{Model: src.Name()}
	}
}

// Count returns src's exact arc count: immediately when the source knows
// it ahead of generation (Kronecker products, G(n,m)), otherwise by
// streaming the source through a counting sink under the given options.
func Count(ctx context.Context, src Source, opts ...Option) (int64, error) {
	if n := src.TotalArcs(); n >= 0 {
		return n, nil
	}
	var sink CountingSink
	return Stream(ctx, src, &sink, opts...)
}

// Digest fingerprints src's canonical stream with the CSRDigest scheme
// without materializing anything: Digest(ctx, src) equals
// CSRDigest(ToCSR(ctx, src)) for every source, which makes it the cheap
// machine-checked identity for cross-worker-count and cross-version
// determinism checks. Sources that do not know their arc count ahead of
// generation are streamed twice (count, then hash) — replayability makes
// the two passes identical by contract.
func Digest(ctx context.Context, src Source, opts ...Option) (string, error) {
	arcs, err := Count(ctx, src, opts...)
	if err != nil {
		return "", err
	}
	sink := gio.NewArcDigestSink(src.NumVertices(), arcs)
	if _, err := Stream(ctx, src, sink, opts...); err != nil {
		return "", err
	}
	return sink.Digest()
}

// GraphDigest fingerprints a factor graph with the pipeline's FNV-1a
// scheme — the digest recorded for kron factors in shard manifests and
// the Name() identity of product sources.
func GraphDigest(g *Graph) string { return gio.GraphDigest(g) }
