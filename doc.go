// Package kronvalid generates extreme-scale non-stochastic Kronecker
// product graphs together with exact, per-vertex and per-edge ground-truth
// triangle statistics, reproducing "On Large-Scale Graph Generation with
// Validation of Diverse Triangle Statistics at Edges and Vertices"
// (Sanders, Pearce, La Fond, Kepner; 2018, arXiv:1803.09021).
//
// # The idea
//
// Given two modest factor graphs with adjacency matrices A and B, the
// Kronecker product C = A ⊗ B has |E_A|·|E_B| edges but is completely
// described by the factors: a trillion-edge benchmark graph fits in a few
// megabytes and can be streamed, sharded, or queried edge-by-edge. The
// paper's contribution — and this library's core — is that many expensive
// triangle statistics of C have exact closed forms over the factors:
//
//	t_C = 2·t_A ⊗ t_B                  triangle participation per vertex (Thm. 1)
//	Δ_C = Δ_A ⊗ Δ_B                    triangle participation per edge   (Thm. 2)
//	τ(C) = 6·τ(A)·τ(B)                 total triangles
//
// with generalizations for self loops (Cor. 1/2 and the §III expansions),
// for all 15 directed triangle types (Thm. 4/5), for vertex-labeled
// triangle types (Thm. 6/7), and for the truss decomposition under a
// Δ_B ≤ 1 factor (Thm. 3). A graph-analytics implementation can therefore
// be validated at scales where recomputing the answer is impossible.
//
// # Quick start
//
//	a := kronvalid.WebGraph(1<<15, 4, 0.7, 42)       // scale-free factor
//	p := kronvalid.MustProduct(a, a)                  // implicit C = A ⊗ A, ~10^9 vertices
//	t, _ := kronvalid.VertexParticipation(p)          // exact t_C, lazily evaluated
//	total, _ := kronvalid.TriangleTotal(p)            // exact τ(C)
//
//	// Stream the edges through the batched parallel pipeline (output is
//	// bytewise identical for any worker count):
//	var n kronvalid.CountingSink
//	kronvalid.StreamEdges(p, kronvalid.StreamOptions{}, &n)
//
//	// Or shard them to disk with a reproducibility manifest:
//	kronvalid.WriteSharded("out/", p, 16, kronvalid.WriteShardedOptions{})
//
//	// Or materialize a validation-scale product as CSR adjacency via the
//	// parallel two-pass builder (digest-identical for any worker count):
//	small := kronvalid.MustProduct(kronvalid.WebGraph(1<<12, 3, 0.7, 42), kronvalid.Clique(16))
//	g, _ := kronvalid.BuildCSR(small, kronvalid.StreamOptions{})
//
//	// The same communication-free sharding carries the classical random
//	// models (Erdős–Rényi, G(n,m), R-MAT, Chung–Lu): one spec string,
//	// byte-identical shards for every worker count, CSR-ready streams.
//	er, _ := kronvalid.NewGenerator("er:n=100000,p=0.001,seed=42")
//	kronvalid.StreamModel(er, kronvalid.StreamOptions{}, &n)
//	cg, _ := kronvalid.BuildModelCSR(er, kronvalid.StreamOptions{})
//	_ = cg
//
// See README.md for a package map, the examples directory for runnable
// programs, and DESIGN.md / EXPERIMENTS.md for the paper-reproduction
// index and recorded results.
package kronvalid
