// Package kronvalid generates extreme-scale non-stochastic Kronecker
// product graphs together with exact, per-vertex and per-edge ground-truth
// triangle statistics, reproducing "On Large-Scale Graph Generation with
// Validation of Diverse Triangle Statistics at Edges and Vertices"
// (Sanders, Pearce, La Fond, Kepner; 2018, arXiv:1803.09021).
//
// # The idea
//
// Given two modest factor graphs with adjacency matrices A and B, the
// Kronecker product C = A ⊗ B has |E_A|·|E_B| edges but is completely
// described by the factors: a trillion-edge benchmark graph fits in a few
// megabytes and can be streamed, sharded, or queried edge-by-edge. The
// paper's contribution — and this library's core — is that many expensive
// triangle statistics of C have exact closed forms over the factors:
//
//	t_C = 2·t_A ⊗ t_B                  triangle participation per vertex (Thm. 1)
//	Δ_C = Δ_A ⊗ Δ_B                    triangle participation per edge   (Thm. 2)
//	τ(C) = 6·τ(A)·τ(B)                 total triangles
//
// with generalizations for self loops (Cor. 1/2 and the §III expansions),
// for all 15 directed triangle types (Thm. 4/5), for vertex-labeled
// triangle types (Thm. 6/7), and for the truss decomposition under a
// Δ_B ≤ 1 factor (Thm. 3). A graph-analytics implementation can therefore
// be validated at scales where recomputing the answer is impossible.
//
// # Quick start
//
//	a := kronvalid.WebGraph(1<<15, 4, 0.7, 42)       // scale-free factor
//	p := kronvalid.MustProduct(a, a)                  // implicit C = A ⊗ A, ~10^9 vertices
//	t, _ := kronvalid.VertexParticipation(p)          // exact t_C, lazily evaluated
//	total, _ := kronvalid.TriangleTotal(p)            // exact τ(C)
//
// # The unified Source pipeline
//
// Every generator — Kronecker products and the classical random models
// (Erdős–Rényi, G(n,m), R-MAT, Chung–Lu, random geometric 2D/3D,
// Barabási–Albert, random hyperbolic, 2D/3D lattices with optional
// wraparound; see MODELS.md) — is one Source: a set of communication-free,
// replayable shards whose concatenation is the canonical edge stream,
// byte-identical for every worker count. One verb set drives any Source,
// with a context for cancellation and functional options for tuning:
//
//	ctx := context.Background()
//	src := kronvalid.ProductSource(p, 16)             // or: kronvalid.ModelSource(g, 16)
//
//	// Stream the edges through the ordered parallel pipeline:
//	var n kronvalid.CountingSink
//	kronvalid.Stream(ctx, src, &n)
//
//	// Shard them to disk with a reproducibility manifest recording the
//	// source's identity (Name()); aborts leave no manifest behind:
//	kronvalid.WriteShards(ctx, "out/", src, kronvalid.WithBinary(true))
//
//	// Materialize CSR adjacency — two-pass parallel builder by default,
//	// one-pass ordered accumulation via WithTwoPass(false), identical
//	// results either way:
//	g, _ := kronvalid.ToCSR(ctx, src, kronvalid.WithWorkers(8))
//
//	// Count and fingerprint without materializing anything; the digest
//	// equals CSRDigest of the materialized graph:
//	arcs, _ := kronvalid.Count(ctx, src)
//	d, _ := kronvalid.Digest(ctx, src)
//	_, _, _ = g, arcs, d
//
//	// Random models come from spec strings; the same verbs apply.
//	er, _ := kronvalid.NewGenerator("er:n=100000,p=0.001,seed=42")
//	kronvalid.Stream(ctx, kronvalid.ModelSource(er, 0), &n,
//		kronvalid.WithProgress(func(arcs, shards int64) { /* report */ }))
//
// Long generations are cancellable mid-shard: cancelling the context
// stops the pipeline within one batch, joins every worker, and returns
// ctx.Err(). The legacy verb pairs (StreamEdges/StreamModel,
// BuildCSR/BuildModelCSR, StreamToCSR/StreamModelToCSR,
// WriteSharded/WriteShardedModel) remain as deprecated digest-identical
// shims over these verbs; see DESIGN.md §3 for the migration table.
//
// See README.md for a package map, the examples directory for runnable
// programs, and DESIGN.md / EXPERIMENTS.md for the paper-reproduction
// index and recorded results.
package kronvalid
