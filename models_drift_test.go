package kronvalid

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestModelReferenceCoversRegistry is the registry/doc drift gate (run
// as a named CI job): every kind returned by ModelKinds must have a
// "## `kind`" section in MODELS.md and a BenchmarkModelStream/
// <kind>-stream row in BENCH_baseline.json. Registering a model
// without documenting and benchmarking it fails the build, so the
// model reference can never silently fall behind the registry.
func TestModelReferenceCoversRegistry(t *testing.T) {
	doc, err := os.ReadFile("MODELS.md")
	if err != nil {
		t.Fatalf("MODELS.md unreadable: %v", err)
	}
	raw, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatalf("BENCH_baseline.json unreadable: %v", err)
	}
	var baseline struct {
		Benchmarks map[string]json.RawMessage `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("BENCH_baseline.json: %v", err)
	}
	kinds := ModelKinds()
	if len(kinds) == 0 {
		t.Fatal("no registered model kinds — the gate is vacuous")
	}
	for _, kind := range kinds {
		if heading := fmt.Sprintf("## `%s`", kind); !strings.Contains(string(doc), heading) {
			t.Errorf("MODELS.md has no %q section for registered kind %q", heading, kind)
		}
		if row := fmt.Sprintf("BenchmarkModelStream/%s-stream", kind); baseline.Benchmarks[row] == nil {
			t.Errorf("BENCH_baseline.json has no %q row for registered kind %q", row, kind)
		}
	}
	// The reference must not document ghosts either: every "## `x`"
	// heading has to name a registered kind.
	registered := map[string]bool{}
	for _, k := range kinds {
		registered[k] = true
	}
	for _, line := range strings.Split(string(doc), "\n") {
		if !strings.HasPrefix(line, "## `") {
			continue
		}
		name := strings.TrimSuffix(strings.TrimPrefix(line, "## `"), "`")
		if !registered[name] {
			t.Errorf("MODELS.md documents %q, which is not a registered kind", name)
		}
	}
}
