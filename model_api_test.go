package kronvalid

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestModelKindsRegistered(t *testing.T) {
	kinds := ModelKinds()
	want := map[string]bool{
		"er": false, "gnm": false, "rmat": false, "chunglu": false,
		"rgg2d": false, "rgg3d": false, "ba": false, "rhg": false,
		"grid2d": false, "grid3d": false,
	}
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("model kind %q not registered (have %v)", k, kinds)
		}
	}
}

// TestStreamModelDeterministicAcrossWorkerCounts is the acceptance
// invariant at the public surface: for every model kind, the serialized
// stream is byte-identical across P ∈ {1, 2, 4, 8} and feeds the
// one-pass CSR sink directly.
func TestStreamModelDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, spec := range []string{
		"er:n=3000,p=0.003,seed=42",
		"gnm:n=2000,m=12000,seed=6",
		"rmat:scale=11,edges=20000,seed=3",
		"chunglu:n=2500,dmax=50,seed=8",
		"rgg2d:n=2500,r=0.03,seed=12",
		"rgg3d:n=1000,r=0.1,seed=13",
		"ba:n=2500,d=4,seed=14",
		"rhg:n=2000,d=8,gamma=2.8,seed=15",
		"grid2d:x=50,y=40,p=0.6,wrap=true,seed=16",
		"grid3d:x=12,y=10,z=8,p=0.5,wrap=true,seed=17",
	} {
		g, err := NewGenerator(spec)
		if err != nil {
			t.Fatalf("NewGenerator(%q): %v", spec, err)
		}
		var want []byte
		for _, p := range []int{1, 2, 4, 8} {
			var buf bytes.Buffer
			n, err := StreamModel(g, StreamOptions{Workers: p}, NewBinaryArcSink(&buf))
			if err != nil {
				t.Fatalf("%s P=%d: %v", spec, p, err)
			}
			if n == 0 {
				t.Fatalf("%s: empty stream", spec)
			}
			if want == nil {
				want = buf.Bytes()
			} else if !bytes.Equal(want, buf.Bytes()) {
				t.Errorf("%s: stream bytes differ at P=%d", spec, p)
			}
		}
		// Exact-count models must match their declared total.
		if exact := g.NumArcs(); exact >= 0 && int64(len(want))/16 != exact {
			t.Errorf("%s: stream has %d arcs, model declares %d", spec, len(want)/16, exact)
		}
	}
}

// TestModelCSRPathsDigestIdentical checks the two materialization paths
// agree for every model and worker count — the ingestion counterpart of
// stream byte-identity.
func TestModelCSRPathsDigestIdentical(t *testing.T) {
	g, err := NewGenerator("rmat:scale=10,edges=16384,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	base, err := StreamModelToCSR(g, StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := CSRDigest(base)
	for _, p := range []int{1, 4, 8} {
		one, err := StreamModelToCSR(g, StreamOptions{Workers: p})
		if err != nil {
			t.Fatal(err)
		}
		two, err := BuildModelCSR(g, StreamOptions{Workers: p})
		if err != nil {
			t.Fatal(err)
		}
		if d := CSRDigest(one); d != want {
			t.Errorf("P=%d: one-pass digest %s != %s", p, d, want)
		}
		if d := CSRDigest(two); d != want {
			t.Errorf("P=%d: two-pass digest %s != %s", p, d, want)
		}
	}
}

// TestWriteShardedModelRoundTrip writes a sharded model directory and
// checks manifest identity, per-shard counts, and that the concatenated
// shard files reproduce the canonical stream bytes.
func TestWriteShardedModelRoundTrip(t *testing.T) {
	g, err := NewGenerator("gnm:n=1200,m=9000,seed=77")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m, err := WriteShardedModel(dir, g, 4, WriteShardedOptions{Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Model != g.Name() {
		t.Errorf("manifest model %q != generator name %q", m.Model, g.Name())
	}
	if m.TotalArcs != 9000 {
		t.Errorf("manifest total arcs = %d, want 9000", m.TotalArcs)
	}
	back, err := ReadShardManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Model != m.Model || back.TotalArcs != m.TotalArcs {
		t.Error("re-read manifest differs")
	}
	var cat bytes.Buffer
	for _, s := range m.Shards {
		b, err := os.ReadFile(filepath.Join(dir, s.File))
		if err != nil {
			t.Fatal(err)
		}
		cat.Write(b)
	}
	var want bytes.Buffer
	if _, err := StreamModel(g, StreamOptions{Workers: 1}, NewBinaryArcSink(&want)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cat.Bytes(), want.Bytes()) {
		t.Error("concatenated shard files differ from the canonical stream")
	}
	// The regenerated spec must reproduce the same stream.
	g2, err := NewGenerator(back.Model)
	if err != nil {
		t.Fatalf("NewGenerator(manifest model): %v", err)
	}
	var again bytes.Buffer
	if _, err := StreamModel(g2, StreamOptions{Workers: 3}, NewBinaryArcSink(&again)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), want.Bytes()) {
		t.Error("manifest spec did not reproduce the stream")
	}
}

func TestGNMPublicAPI(t *testing.T) {
	g := GNM(150, 900, 5)
	if g.NumEdgesUndirected() != 900 {
		t.Fatalf("GNM edges = %d, want 900", g.NumEdgesUndirected())
	}
}

func TestRGGPublicAPI(t *testing.T) {
	g, err := RGG2D(800, 0.06, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsSymmetric() || g.HasAnyLoop() || g.NumEdgesUndirected() == 0 {
		t.Fatal("RGG2D graph malformed or empty")
	}
	g3, err := RGG3D(500, 0.15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !g3.IsSymmetric() || g3.NumEdgesUndirected() == 0 {
		t.Fatal("RGG3D graph malformed or empty")
	}
	if _, err := RGG2D(100, -1, 1); err == nil {
		t.Error("negative radius accepted")
	}
	// The KaGen-style spec alias reaches the same generator.
	mg, err := NewGenerator("rgg2d(n=800;r=0.06;seed=3)")
	if err != nil {
		t.Fatal(err)
	}
	if mg.Name() != "rgg2d:n=800,r=0.06,seed=3,chunks=64" {
		t.Errorf("alias spec resolved to %q", mg.Name())
	}
}

func TestRHGPublicAPI(t *testing.T) {
	g, err := RHG(600, 8, 2.6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsSymmetric() || g.HasAnyLoop() || g.NumEdgesUndirected() == 0 {
		t.Fatal("RHG graph malformed or empty")
	}
	if _, err := RHG(600, 8, 2, 4); err == nil {
		t.Error("gamma = 2 accepted")
	}
	// The KaGen-style spec alias reaches the same generator.
	mg, err := NewGenerator("rhg(n=600;d=8;gamma=2.6;seed=4)")
	if err != nil {
		t.Fatal(err)
	}
	if mg.Name() != "rhg:n=600,d=8,gamma=2.6,seed=4,chunks=64" {
		t.Errorf("alias spec resolved to %q", mg.Name())
	}
}

func TestGridPublicAPI(t *testing.T) {
	g, err := Grid2D(9, 7, 1, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Full 9×7 torus: every vertex has degree 4, so 2·63 edges.
	if got := g.NumEdgesUndirected(); got != 126 {
		t.Fatalf("Grid2D torus edges = %d, want 126", got)
	}
	g3, err := Grid3D(4, 4, 4, 1, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Full 4³ torus: degree 6 everywhere, 3·64 edges.
	if got := g3.NumEdgesUndirected(); got != 192 {
		t.Fatalf("Grid3D torus edges = %d, want 192", got)
	}
	if _, err := Grid2D(0, 5, 1, false, 1); err == nil {
		t.Error("zero extent accepted")
	}
}
