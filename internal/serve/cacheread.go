package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"kronvalid/internal/gio"
	"kronvalid/internal/stream"
)

// digestEntry derives a cache entry's arc digest by re-reading its
// committed shard bytes — IO-bound, no generation. The shard files in
// index order are the canonical stream, which is exactly what the
// digest sink fingerprints.
func digestEntry(ctx context.Context, e *Entry) (string, error) {
	sink := gio.NewArcDigestSink(e.vertices, e.arcs)
	if err := streamEntry(ctx, e, sink); err != nil {
		return "", err
	}
	if err := sink.Flush(); err != nil {
		return "", err
	}
	return sink.Digest()
}

// streamEntry replays a committed entry's canonical arc stream from its
// shard files into sink (without the final Flush, which stays with the
// caller). Binary shards decode in fixed-size batches; TSV shards parse
// through the shared reader.
func streamEntry(ctx context.Context, e *Entry, sink stream.Sink) error {
	for _, path := range e.ShardPaths() {
		if err := ctx.Err(); err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		if e.format == "binary" {
			err = streamBinaryArcs(ctx, f, sink)
		} else {
			var arcs []stream.Arc
			arcs, err = gio.ReadArcsText(f)
			if err == nil {
				err = sink.Consume(arcs)
			}
		}
		f.Close()
		if err != nil {
			return fmt.Errorf("serve: %s: %w", path, err)
		}
	}
	return nil
}

// streamBinaryArcs decodes 16-byte little-endian arc records in
// batches. A trailing partial record is a truncation error — a cached
// file that fails this was torn outside the store's invariants.
func streamBinaryArcs(ctx context.Context, r io.Reader, sink stream.Sink) error {
	br := bufio.NewReaderSize(r, 1<<16)
	buf := make([]byte, 16*stream.DefaultBatchSize)
	batch := make([]stream.Arc, 0, stream.DefaultBatchSize)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := io.ReadFull(br, buf)
		if err == io.EOF {
			return nil
		}
		if err == io.ErrUnexpectedEOF && n%16 != 0 {
			return fmt.Errorf("truncated binary arc stream: %d trailing bytes", n%16)
		}
		if err != nil && err != io.ErrUnexpectedEOF {
			return err
		}
		batch = batch[:0]
		for off := 0; off+16 <= n; off += 16 {
			batch = append(batch, stream.Arc{
				U: int64(binary.LittleEndian.Uint64(buf[off:])),
				V: int64(binary.LittleEndian.Uint64(buf[off+8:])),
			})
		}
		if cerr := sink.Consume(batch); cerr != nil {
			return cerr
		}
		if err == io.ErrUnexpectedEOF {
			return nil
		}
	}
}
