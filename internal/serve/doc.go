// Package serve is the long-running generation service built on the
// paper's central property: any shard of any registered graph is
// recomputable from (seed, chunk id) alone, so a generator's canonical
// spec string — the stable Name() every pipeline Source carries — is a
// complete content address for its canonical arc stream. The service
// turns that address into a system:
//
//   - Store is a content-addressed shard cache keyed by
//     sha256(format, Name()). Each entry is a WriteShards output
//     directory (shard files plus manifest.json) committed by atomic
//     rename-into-place; the manifest is written last inside the
//     staging directory and the rename publishes it as one unit, so a
//     partially generated job is never visible under the cache root.
//     Entries are evicted least-recently-used against a byte budget,
//     manifest removed first so a torn eviction degrades to the same
//     "no manifest = no entry" state the abort contract guarantees.
//
//   - Manager schedules generation jobs on a bounded worker pool with
//     per-job context cancellation, queue-depth admission control, and
//     singleflight deduplication: concurrent submissions of the same
//     content address attach to one job. Job progress (arcs emitted,
//     shards done) is published through atomics because the HTTP
//     status handler reads it while the generation pipeline's
//     Progress callback writes it.
//
//   - Server exposes the JSON/HTTP API: submit, status (with optional
//     long-poll), cancel, result download (the canonical concatenated
//     stream served straight from cached shard files), manifest,
//     Count and Digest fast paths, cache introspection, Prometheus
//     text /metrics, and /healthz.
//
// The package deliberately imports only internal packages (model,
// distgen, stream, gio) and not the public kronvalid root, so the root
// package can re-export the service without an import cycle.
package serve
