package serve

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics is the service's counter set, exposed in Prometheus text
// format by the /metrics endpoint. All fields are atomics: they are
// bumped from request handlers and worker goroutines concurrently.
type Metrics struct {
	Submits       atomic.Int64 // valid submissions (hits + dedups + misses)
	BadSpecs      atomic.Int64 // submissions rejected by spec validation
	Hits          atomic.Int64 // submissions answered from the shard cache
	Dedups        atomic.Int64 // submissions attached to an in-flight job
	Misses        atomic.Int64 // submissions that enqueued a new job
	Rejected      atomic.Int64 // submissions rejected by admission control
	JobsDone      atomic.Int64
	JobsFailed    atomic.Int64
	JobsCancelled atomic.Int64
	Running       atomic.Int64 // gauge: jobs generating right now
	ArcsGenerated atomic.Int64 // arcs committed into the cache
	ArcsServed    atomic.Int64 // arcs streamed out of result downloads
	BytesServed   atomic.Int64 // bytes streamed out of result downloads
	Downloads     atomic.Int64 // completed result downloads
}

// HitRatio returns hits / (hits + misses), counting dedup attaches as
// hits: they were served without a new generation.
func (m *Metrics) HitRatio() float64 {
	h := m.Hits.Load() + m.Dedups.Load()
	total := h + m.Misses.Load()
	if total == 0 {
		return 0
	}
	return float64(h) / float64(total)
}

// WritePrometheus renders the counters plus the store and queue gauges
// in Prometheus text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer, store *Store, queueDepth int) {
	entries, bytes, maxBytes, evictions := store.Stats()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("genserve_submits_total", "Valid job submissions.", m.Submits.Load())
	counter("genserve_bad_spec_total", "Submissions rejected by spec validation.", m.BadSpecs.Load())
	counter("genserve_cache_hits_total", "Submissions answered from the shard cache.", m.Hits.Load())
	counter("genserve_dedup_total", "Submissions attached to an in-flight identical job.", m.Dedups.Load())
	counter("genserve_cache_misses_total", "Submissions that enqueued a new generation job.", m.Misses.Load())
	counter("genserve_rejected_total", "Submissions rejected by queue admission control.", m.Rejected.Load())
	counter("genserve_jobs_done_total", "Jobs completed successfully.", m.JobsDone.Load())
	counter("genserve_jobs_failed_total", "Jobs that failed.", m.JobsFailed.Load())
	counter("genserve_jobs_cancelled_total", "Jobs cancelled.", m.JobsCancelled.Load())
	counter("genserve_arcs_generated_total", "Arcs generated and committed into the cache.", m.ArcsGenerated.Load())
	counter("genserve_arcs_served_total", "Arcs streamed out of result downloads.", m.ArcsServed.Load())
	counter("genserve_bytes_served_total", "Bytes streamed out of result downloads.", m.BytesServed.Load())
	counter("genserve_downloads_total", "Completed result downloads.", m.Downloads.Load())
	counter("genserve_evictions_total", "Cache entries evicted by the byte budget.", evictions)
	gauge("genserve_jobs_running", "Jobs generating right now.", m.Running.Load())
	gauge("genserve_queue_depth", "Queued jobs awaiting a worker.", int64(queueDepth))
	gauge("genserve_cache_entries", "Committed cache entries.", int64(entries))
	gauge("genserve_cache_bytes", "Resident cache bytes.", bytes)
	gauge("genserve_cache_max_bytes", "Cache byte budget (0 = unlimited).", maxBytes)
}
