package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"kronvalid/internal/distgen"
)

// CacheKey is the content address of one canonical arc stream in one
// serialization format: sha256 over (format, Name()). Name() is sound as
// an address because generation is deterministic — a spec string fully
// reproduces every byte of every shard — and canonical: model.New
// round-trips a spec through its parsed parameters, so syntactic
// variants of one generator ("ba(n=10;d=4)" vs the normalized
// "ba:n=10,d=4,seed=1,chunks=64") collapse to one key. The format is
// part of the address because the cached bytes differ (TSV vs binary),
// not the stream they encode.
func CacheKey(name, format string) string {
	h := sha256.New()
	h.Write([]byte(format))
	h.Write([]byte{0})
	h.Write([]byte(name))
	return hex.EncodeToString(h.Sum(nil))
}

// digestSidecar is the file inside a committed entry that memoizes the
// stream's arc digest (the CSRDigest-scheme fingerprint) once some
// request has paid to derive it. It is advisory: absence only means the
// digest endpoint recomputes from the cached bytes.
const digestSidecar = "arcdigest"

// Entry is one committed cache object: a complete sharded generation
// directory. All fields are immutable after commit except the memoized
// digest and the pin/eviction bookkeeping, which the owning Store
// serializes.
type Entry struct {
	key      string
	dir      string
	name     string // canonical spec
	format   string // "tsv" or "binary"
	bytes    int64  // total size of manifest + shard files
	arcs     int64
	vertices int64
	files    []string // shard file names in index order

	digest string // memoized arc digest, "" until derived

	elem *list.Element
	pins int
}

// Key returns the entry's content address.
func (e *Entry) Key() string { return e.key }

// Name returns the canonical spec the entry was generated from.
func (e *Entry) Name() string { return e.name }

// Format returns "tsv" or "binary".
func (e *Entry) Format() string { return e.format }

// Bytes returns the entry's total on-disk size.
func (e *Entry) Bytes() int64 { return e.bytes }

// Arcs returns the entry's total arc count.
func (e *Entry) Arcs() int64 { return e.arcs }

// Vertices returns the entry's vertex-id space.
func (e *Entry) Vertices() int64 { return e.vertices }

// ShardPaths returns the absolute paths of the entry's shard files in
// index order; concatenating them reproduces the canonical stream.
func (e *Entry) ShardPaths() []string {
	paths := make([]string, len(e.files))
	for i, f := range e.files {
		paths[i] = filepath.Join(e.dir, f)
	}
	return paths
}

// ManifestPath returns the absolute path of the entry's manifest.json.
func (e *Entry) ManifestPath() string { return filepath.Join(e.dir, distgen.ManifestName) }

// EntryInfo is the introspection view of one cache entry.
type EntryInfo struct {
	Key    string `json:"key"`
	Spec   string `json:"spec"`
	Format string `json:"format"`
	Bytes  int64  `json:"bytes"`
	Arcs   int64  `json:"arcs"`
	Digest string `json:"digest,omitempty"`
	Pinned bool   `json:"pinned,omitempty"`
}

// Store is the content-addressed shard cache. Committed entries live
// under root/objects/<key[:2]>/<key>/; in-progress jobs stage under
// root/tmp/ and become visible only through Commit's atomic rename.
// Entries are evicted least-recently-used once total bytes exceed the
// budget, except entries pinned by in-flight downloads.
type Store struct {
	root     string
	maxBytes int64 // <= 0 means unlimited

	mu        sync.Mutex
	entries   map[string]*Entry
	lru       *list.List // front = least recently used
	bytes     int64
	evictions int64
}

// NewStore opens (or creates) a cache rooted at dir with the given byte
// budget (0 = unlimited). Existing committed entries are recovered by
// re-reading their manifests — a directory without a valid manifest is,
// by the abort contract, garbage from an interrupted run and is removed,
// as is everything under the staging area.
func NewStore(dir string, maxBytes int64) (*Store, error) {
	s := &Store{
		root:     dir,
		maxBytes: maxBytes,
		entries:  make(map[string]*Entry),
		lru:      list.New(),
	}
	for _, sub := range []string{s.objectsRoot(), s.tmpRoot()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
	}
	if err := os.RemoveAll(s.tmpRoot()); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(s.tmpRoot(), 0o755); err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) objectsRoot() string { return filepath.Join(s.root, "objects") }
func (s *Store) tmpRoot() string     { return filepath.Join(s.root, "tmp") }

func (s *Store) entryDir(key string) string {
	return filepath.Join(s.objectsRoot(), key[:2], key)
}

// TempDir creates a fresh staging directory for one job. The caller
// must either Commit it or remove it; NewStore also sweeps the staging
// area on startup, so a crashed job leaks nothing across restarts.
func (s *Store) TempDir(id string) (string, error) {
	dir := filepath.Join(s.tmpRoot(), id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return dir, nil
}

// recover scans the object tree, validating each entry through its
// manifest and removing anything invalid. Recovered entries enter the
// LRU in modification-time order — the closest persisted approximation
// of last use.
func (s *Store) recover() error {
	type found struct {
		e   *Entry
		mod int64
	}
	var all []found
	prefixes, err := os.ReadDir(s.objectsRoot())
	if err != nil {
		return err
	}
	for _, p := range prefixes {
		if !p.IsDir() {
			continue
		}
		dirs, err := os.ReadDir(filepath.Join(s.objectsRoot(), p.Name()))
		if err != nil {
			return err
		}
		for _, d := range dirs {
			dir := filepath.Join(s.objectsRoot(), p.Name(), d.Name())
			e, mod, rerr := s.readEntry(d.Name(), dir)
			if rerr != nil {
				// Abort contract: no valid manifest means the directory is
				// not a committed entry. Remove it rather than serve it.
				if err := os.RemoveAll(dir); err != nil {
					return err
				}
				continue
			}
			all = append(all, found{e, mod})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mod < all[j].mod })
	for _, f := range all {
		f.e.elem = s.lru.PushBack(f.e)
		s.entries[f.e.key] = f.e
		s.bytes += f.e.bytes
	}
	return nil
}

// readEntry validates one committed directory and rebuilds its Entry.
func (s *Store) readEntry(key, dir string) (*Entry, int64, error) {
	m, err := distgen.ReadManifest(dir)
	if err != nil {
		return nil, 0, err
	}
	e := &Entry{
		key:      key,
		dir:      dir,
		name:     m.Source,
		format:   m.Format,
		arcs:     m.TotalArcs,
		vertices: m.Vertices,
	}
	var mod int64
	for _, sh := range m.Shards {
		fi, err := os.Stat(filepath.Join(dir, sh.File))
		if err != nil {
			return nil, 0, err
		}
		e.bytes += fi.Size()
		e.files = append(e.files, sh.File)
		if t := fi.ModTime().UnixNano(); t > mod {
			mod = t
		}
	}
	if fi, err := os.Stat(filepath.Join(dir, distgen.ManifestName)); err == nil {
		e.bytes += fi.Size()
		if t := fi.ModTime().UnixNano(); t > mod {
			mod = t
		}
	}
	if b, err := os.ReadFile(filepath.Join(dir, digestSidecar)); err == nil {
		e.digest = strings.TrimSpace(string(b))
	}
	return e, mod, nil
}

// Acquire looks up and pins the entry for key, bumping it to
// most-recently-used. A pinned entry is exempt from eviction until
// every pin is released, so its files survive for the duration of a
// download. The caller must Release exactly once.
func (s *Store) Acquire(key string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToBack(e.elem)
	e.pins++
	return e, true
}

// Contains reports whether key is committed, bumping it to
// most-recently-used when it is (a cache hit is a use).
func (s *Store) Contains(key string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if ok {
		s.lru.MoveToBack(e.elem)
	}
	return e, ok
}

// Release unpins an entry acquired with Acquire. Pins defer eviction
// rather than exempting the entry: the last release re-runs the
// eviction sweep, so a budget held open by an in-flight download is
// restored as soon as the download ends.
func (s *Store) Release(e *Entry) {
	s.mu.Lock()
	e.pins--
	var evict []string
	if e.pins == 0 {
		evict = s.collectEvictionsLocked()
	}
	s.mu.Unlock()
	for _, dir := range evict {
		removeEntryDir(dir)
	}
}

// Commit publishes a completed staging directory (manifest already
// written last by WriteShards) as the entry for key: the directory is
// renamed into its content-addressed location in one atomic step, so
// readers observe either no entry or the complete one, never a partial
// state. If key was committed concurrently (the singleflight layer makes
// that unreachable, but the store does not depend on it) the staged copy
// is discarded and the existing entry returned. Commit then evicts
// least-recently-used unpinned entries until the byte budget holds.
func (s *Store) Commit(key, staged string) (*Entry, error) {
	e, _, err := s.readEntry(key, staged)
	if err != nil {
		os.RemoveAll(staged)
		return nil, fmt.Errorf("serve: commit %s: staged directory invalid: %w", key[:12], err)
	}
	final := s.entryDir(key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		os.RemoveAll(staged)
		return nil, err
	}

	s.mu.Lock()
	if old, ok := s.entries[key]; ok {
		s.lru.MoveToBack(old.elem)
		s.mu.Unlock()
		os.RemoveAll(staged)
		return old, nil
	}
	s.mu.Unlock()

	// The rename happens outside the lock (it may hit a slow disk); the
	// key is not in the map, and only the committing job writes this
	// address, so nothing can race the destination.
	if err := os.Rename(staged, final); err != nil {
		os.RemoveAll(staged)
		return nil, err
	}
	e.dir = final

	s.mu.Lock()
	e.elem = s.lru.PushBack(e)
	s.entries[key] = e
	s.bytes += e.bytes
	evict := s.collectEvictionsLocked()
	s.mu.Unlock()
	for _, dir := range evict {
		removeEntryDir(dir)
	}
	return e, nil
}

// collectEvictionsLocked unlinks over-budget LRU entries from the index
// and returns the directories whose files the caller must remove (file
// removal happens outside the lock). Pinned entries are skipped — they
// stay indexed, so an in-flight download keeps its files and a
// concurrent identical submission still hits the cache instead of
// regenerating into the same content-addressed directory — and the
// final Release re-runs this sweep to settle the budget.
func (s *Store) collectEvictionsLocked() []string {
	if s.maxBytes <= 0 {
		return nil
	}
	var dirs []string
	for elem := s.lru.Front(); elem != nil && s.bytes > s.maxBytes; {
		e := elem.Value.(*Entry)
		elem = elem.Next()
		if e.pins > 0 {
			continue
		}
		s.lru.Remove(e.elem)
		delete(s.entries, e.key)
		s.bytes -= e.bytes
		s.evictions++
		dirs = append(dirs, e.dir)
	}
	return dirs
}

// removeEntryDir removes a committed entry's files, manifest first: if
// the removal is torn (crash, IO error), what remains is a directory
// without a manifest — exactly the state recovery and the abort contract
// already treat as "no entry".
func removeEntryDir(dir string) {
	os.Remove(filepath.Join(dir, distgen.ManifestName))
	os.RemoveAll(dir)
}

// SetDigest memoizes the entry's arc digest in memory and in its
// sidecar file (written via temp+rename so a torn write is never a
// corrupt sidecar).
func (s *Store) SetDigest(e *Entry, digest string) {
	s.mu.Lock()
	e.digest = digest
	s.mu.Unlock()
	tmp := filepath.Join(e.dir, digestSidecar+".tmp")
	if err := os.WriteFile(tmp, []byte(digest+"\n"), 0o644); err == nil {
		os.Rename(tmp, filepath.Join(e.dir, digestSidecar))
	}
}

// Digest returns the entry's memoized arc digest, if derived.
func (s *Store) Digest(e *Entry) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return e.digest
}

// Stats returns the store's entry count, resident bytes, budget, and
// lifetime eviction count.
func (s *Store) Stats() (entries int, bytes, maxBytes, evictions int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries), s.bytes, s.maxBytes, s.evictions
}

// Entries lists the committed entries from least to most recently used.
func (s *Store) Entries() []EntryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	infos := make([]EntryInfo, 0, s.lru.Len())
	for elem := s.lru.Front(); elem != nil; elem = elem.Next() {
		e := elem.Value.(*Entry)
		infos = append(infos, EntryInfo{
			Key: e.key, Spec: e.name, Format: e.format,
			Bytes: e.bytes, Arcs: e.arcs, Digest: e.digest, Pinned: e.pins > 0,
		})
	}
	return infos
}

// dirSize sums the regular files under dir (used by tests to audit the
// accounting the store keeps incrementally).
func dirSize(dir string) (int64, error) {
	var total int64
	err := filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.Type().IsRegular() {
			fi, err := d.Info()
			if err != nil {
				return err
			}
			total += fi.Size()
		}
		return nil
	})
	return total, err
}
