package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kronvalid/internal/distgen"
	"kronvalid/internal/gio"
	"kronvalid/internal/model"
	"kronvalid/internal/stream"
)

// State is a job's lifecycle position. Transitions are monotone:
// queued → running → {done, failed, cancelled}, with queued → cancelled
// for jobs cancelled before a worker claims them and a synthetic
// immediate done for cache hits.
type State int32

const (
	StateQueued State = iota
	StateRunning
	StateDone
	StateFailed
	StateCancelled
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is admission control: the queued backlog is at its
	// configured cap (HTTP 429).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrClosed reports a submission to a shutting-down manager (503).
	ErrClosed = errors.New("serve: manager closed")
	// ErrNotFound reports an unknown job id (404).
	ErrNotFound = errors.New("serve: no such job")
	// ErrEvicted reports a done job whose cached result was evicted
	// before download (410; resubmitting regenerates it).
	ErrEvicted = errors.New("serve: result evicted from cache")
	// ErrNotDone reports a result download for an unfinished job (409).
	ErrNotDone = errors.New("serve: job has not completed")
)

// Config tunes the generation service.
type Config struct {
	// Dir is the cache root (required).
	Dir string
	// CacheBytes is the shard-store byte budget (0 = unlimited).
	CacheBytes int64
	// Workers is the number of jobs generating concurrently (0 = 2).
	Workers int
	// GenWorkers bounds each job's internal generation parallelism
	// (0 = GOMAXPROCS).
	GenWorkers int
	// QueueDepth caps the queued (not yet running) backlog; submissions
	// beyond it are rejected with ErrQueueFull (0 = 64).
	QueueDepth int
	// ShardsPerJob is the number of shard files each cache entry is
	// written as (0 = GOMAXPROCS). It is a file-layout knob only: the
	// concatenated stream — what result downloads serve and digests
	// fingerprint — is byte-identical for every value, which is why it
	// is not part of the content address.
	ShardsPerJob int
	// BatchSize is the pipeline batch size for generation jobs
	// (0 = stream default). Small values tighten cancellation latency;
	// tests use them to make mid-job cancels land deterministically.
	BatchSize int
	// JobHistory bounds how many finished jobs stay queryable (0 = 4096).
	JobHistory int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.ShardsPerJob <= 0 {
		c.ShardsPerJob = runtime.GOMAXPROCS(0)
	}
	if c.JobHistory <= 0 {
		c.JobHistory = 4096
	}
	return c
}

// Job is one generation request. Identity fields are immutable after
// creation; progress counters are atomics because the generation
// pipeline's Progress callback writes them while status handlers read
// them concurrently; the remaining mutable fields are guarded by mu.
type Job struct {
	id     string
	key    string
	spec   string // canonical Name()
	format string
	cached bool // resolved as a cache hit at submission

	src       *model.Plan
	vertices  int64
	totalArcs int64 // -1 when only known in expectation
	shards    int

	state      atomic.Int32
	arcs       atomic.Int64
	shardsDone atomic.Int64

	mu       sync.Mutex
	errMsg   string
	bytes    int64
	created  time.Time
	started  time.Time
	finished time.Time

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// State returns the job's current lifecycle state.
func (j *Job) State() State { return State(j.state.Load()) }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// ID returns the job id.
func (j *Job) ID() string { return j.id }

// Key returns the job's content address.
func (j *Job) Key() string { return j.key }

// JobView is the JSON representation of a job.
type JobView struct {
	ID         string  `json:"id"`
	Spec       string  `json:"spec"`
	Format     string  `json:"format"`
	Key        string  `json:"key"`
	State      string  `json:"state"`
	Cached     bool    `json:"cached"`
	Deduped    bool    `json:"deduped,omitempty"`
	Vertices   int64   `json:"vertices"`
	TotalArcs  int64   `json:"total_arcs"` // -1 when only known in expectation
	ArcsDone   int64   `json:"arcs_done"`
	Shards     int     `json:"shards"`
	ShardsDone int64   `json:"shards_done"`
	Bytes      int64   `json:"bytes,omitempty"`
	Error      string  `json:"error,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Result     string  `json:"result,omitempty"`
}

// view snapshots the job for the HTTP layer. deduped marks views
// returned from a submission that attached to an in-flight job.
func (j *Job) view(deduped bool) JobView {
	st := j.State()
	j.mu.Lock()
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	v := JobView{
		ID: j.id, Spec: j.spec, Format: j.format, Key: j.key,
		State: st.String(), Cached: j.cached, Deduped: deduped,
		Vertices: j.vertices, TotalArcs: j.totalArcs,
		ArcsDone: j.arcs.Load(), Shards: j.shards, ShardsDone: j.shardsDone.Load(),
		Bytes: j.bytes, Error: j.errMsg,
		ElapsedMS: float64(end.Sub(j.created)) / float64(time.Millisecond),
	}
	j.mu.Unlock()
	if st == StateDone {
		v.Result = "/v1/jobs/" + j.id + "/result"
	}
	return v
}

// Manager owns the store, the job table, and the worker pool.
type Manager struct {
	cfg   Config
	store *Store
	met   *Metrics

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string        // submission order, for listing and history pruning
	active map[string]*Job // queued/running job per content address (singleflight)
	closed bool

	queue chan *Job

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	nextID atomic.Int64

	digestMu sync.Mutex
	digests  map[string]digestInfo // memo for streams not (or not yet) cached
}

type digestInfo struct {
	digest string
	arcs   int64
}

// NewManager opens the store and starts the worker pool.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("serve: Config.Dir is required")
	}
	store, err := NewStore(cfg.Dir, cfg.CacheBytes)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		store:      store,
		met:        &Metrics{},
		jobs:       make(map[string]*Job),
		active:     make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		digests:    make(map[string]digestInfo),
	}
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m, nil
}

// Store returns the manager's shard cache.
func (m *Manager) Store() *Store { return m.store }

// Metrics returns the manager's counters.
func (m *Manager) Metrics() *Metrics { return m.met }

// Close stops admission, cancels every in-flight job, and joins the
// workers. Idempotent.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()
	m.baseCancel()
	m.wg.Wait()
	return nil
}

// resolve validates a spec through the params grammar (via the model
// registry) and binds it to a plan and content address.
func (m *Manager) resolve(spec, format string) (*model.Plan, string, string, error) {
	switch format {
	case "":
		format = "binary"
	case "tsv", "binary":
	default:
		return nil, "", "", fmt.Errorf("serve: format %q is not \"tsv\" or \"binary\"", format)
	}
	g, err := model.New(spec)
	if err != nil {
		return nil, "", "", err
	}
	pl := model.NewPlan(g, m.cfg.ShardsPerJob)
	return pl, format, CacheKey(pl.Name(), format), nil
}

// Submit validates spec, then resolves it against the cache and the
// in-flight job table: a committed entry yields an immediately-done job
// (cached=true), an in-flight job for the same content address is
// returned as-is (singleflight; deduped=true in the view), and
// otherwise a new job is admitted — or rejected with ErrQueueFull when
// the queued backlog is at its cap.
func (m *Manager) Submit(spec, format string) (JobView, error) {
	pl, format, key, err := m.resolve(spec, format)
	if err != nil {
		m.met.BadSpecs.Add(1)
		return JobView{}, err
	}
	m.met.Submits.Add(1)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobView{}, ErrClosed
	}
	if e, ok := m.store.Contains(key); ok {
		j := m.newJobLocked(pl, format, key)
		j.cached = true
		j.state.Store(int32(StateDone))
		j.bytes = e.bytes
		j.arcs.Store(e.arcs)
		j.shardsDone.Store(int64(len(e.files)))
		j.finished = j.created
		close(j.done)
		m.mu.Unlock()
		m.met.Hits.Add(1)
		return j.view(false), nil
	}
	if j, ok := m.active[key]; ok {
		m.mu.Unlock()
		m.met.Dedups.Add(1)
		return j.view(true), nil
	}
	if len(m.queue) == cap(m.queue) {
		m.mu.Unlock()
		m.met.Rejected.Add(1)
		return JobView{}, ErrQueueFull
	}
	j := m.newJobLocked(pl, format, key)
	m.active[key] = j
	// The capacity check above ran under mu and every sender holds mu,
	// so this send cannot block.
	m.queue <- j
	m.mu.Unlock()
	m.met.Misses.Add(1)
	return j.view(false), nil
}

// newJobLocked allocates and registers a job; the caller holds m.mu.
func (m *Manager) newJobLocked(pl *model.Plan, format, key string) *Job {
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		id:        fmt.Sprintf("j-%06d", m.nextID.Add(1)),
		key:       key,
		spec:      pl.Name(),
		format:    format,
		src:       pl,
		vertices:  pl.NumVertices(),
		totalArcs: pl.TotalArcs(),
		shards:    pl.Shards(),
		created:   time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.pruneHistoryLocked()
	return j
}

// pruneHistoryLocked drops the oldest finished jobs beyond the history
// cap; in-flight jobs are never dropped.
func (m *Manager) pruneHistoryLocked() {
	excess := len(m.order) - m.cfg.JobHistory
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if excess > 0 && j != nil && j.State() >= StateDone {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Job returns the job for id.
func (m *Manager) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Jobs lists up to limit jobs, most recent first (0 = all retained).
func (m *Manager) Jobs(limit int) []JobView {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		if j, ok := m.jobs[ids[i]]; ok {
			jobs = append(jobs, j)
			if limit > 0 && len(jobs) == limit {
				break
			}
		}
	}
	m.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view(false)
	}
	return views
}

// Cancel requests cancellation of a job. Queued jobs finalize
// immediately; running jobs abort within one pipeline batch, and their
// staging directory is removed (the abort contract: no manifest, no
// cache entry). Cancelling a finished job is a no-op.
func (m *Manager) Cancel(id string) (JobView, error) {
	j, err := m.Job(id)
	if err != nil {
		return JobView{}, err
	}
	j.cancel()
	// If no worker has claimed the job yet, finalize it here; the CAS
	// loser (this call or the claiming worker) defers to the winner.
	if j.state.CompareAndSwap(int32(StateQueued), int32(StateCancelled)) {
		m.finalize(j, StateCancelled, context.Canceled)
	}
	return j.view(false), nil
}

// worker claims queued jobs until the queue closes on shutdown.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		if !j.state.CompareAndSwap(int32(StateQueued), int32(StateRunning)) {
			continue // cancelled while queued; Cancel finalized it
		}
		m.run(j)
	}
}

// run executes one generation job: stage with WriteShards (manifest
// last), then commit the staged directory into the content-addressed
// store. Any error — including cancellation — removes the staging
// directory, so a failed or cancelled job leaves no cache entry.
func (m *Manager) run(j *Job) {
	j.mu.Lock()
	j.started = time.Now()
	j.mu.Unlock()
	m.met.Running.Add(1)
	defer m.met.Running.Add(-1)

	staged, err := m.store.TempDir(j.id)
	if err != nil {
		m.finalizeState(j, StateFailed, err)
		return
	}
	_, err = distgen.WriteShardedSourceContext(j.ctx, staged, j.src,
		distgen.Manifest{Model: j.spec}, distgen.WriteOptions{
			Binary:    j.format == "binary",
			Workers:   m.cfg.GenWorkers,
			BatchSize: m.cfg.BatchSize,
			// The callback publishes through atomics: the per-shard driver
			// serializes its calls, but status handlers read concurrently.
			Progress: func(arcs, shardsDone int64) {
				j.arcs.Store(arcs)
				j.shardsDone.Store(shardsDone)
			},
		})
	if err != nil {
		os.RemoveAll(staged)
		if j.ctx.Err() != nil {
			m.finalizeState(j, StateCancelled, j.ctx.Err())
		} else {
			m.finalizeState(j, StateFailed, err)
		}
		return
	}
	e, err := m.store.Commit(j.key, staged)
	if err != nil {
		m.finalizeState(j, StateFailed, err)
		return
	}
	j.mu.Lock()
	j.bytes = e.bytes
	j.mu.Unlock()
	m.met.ArcsGenerated.Add(e.arcs)
	m.finalizeState(j, StateDone, nil)
}

// finalizeState moves a running job to its terminal state and finalizes.
func (m *Manager) finalizeState(j *Job, st State, err error) {
	j.state.Store(int32(st))
	m.finalize(j, st, err)
}

// finalize records the terminal bookkeeping shared by worker and
// queued-cancel paths: timestamps, error text, metrics, singleflight
// table removal, and the done broadcast.
func (m *Manager) finalize(j *Job, st State, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	if err != nil && st != StateDone {
		j.errMsg = err.Error()
	}
	j.mu.Unlock()
	switch st {
	case StateDone:
		m.met.JobsDone.Add(1)
	case StateFailed:
		m.met.JobsFailed.Add(1)
	case StateCancelled:
		m.met.JobsCancelled.Add(1)
	}
	m.mu.Lock()
	if m.active[j.key] == j {
		delete(m.active, j.key)
	}
	m.mu.Unlock()
	j.cancel() // release the context's resources on every path
	close(j.done)
}

// QueueDepth returns the current queued backlog.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// ---- Count and Digest fast paths ----

// CountInfo is the JSON response of the count endpoint.
type CountInfo struct {
	Spec     string `json:"spec"`
	Vertices int64  `json:"vertices"`
	Arcs     int64  `json:"arcs"` // -1 when unknown without generating
	Exact    bool   `json:"exact"`
	Shards   int    `json:"shards"`
	// Source says where the count came from: "closed-form" (the model
	// fixes it), "cache" (a committed entry's manifest), "generated"
	// (streamed through a counting sink), or "expectation" (unknown
	// without generating and exact counting was not requested).
	Source string `json:"source"`
}

// Count resolves a spec's size: the model's closed form when it has
// one, the cached manifest when the stream is committed, a streamed
// counting pass when exact is set, and otherwise -1.
func (m *Manager) Count(ctx context.Context, spec string, exact bool) (CountInfo, error) {
	pl, _, key, err := m.resolve(spec, "")
	if err != nil {
		return CountInfo{}, err
	}
	info := CountInfo{
		Spec:     pl.Name(),
		Vertices: pl.NumVertices(),
		Arcs:     pl.TotalArcs(),
		Shards:   pl.Shards(),
		Exact:    true,
		Source:   "closed-form",
	}
	if info.Arcs >= 0 {
		return info, nil
	}
	if e, ok := m.store.Contains(key); ok {
		info.Arcs = e.arcs
		info.Source = "cache"
		return info, nil
	}
	if !exact {
		info.Exact = false
		info.Source = "expectation"
		return info, nil
	}
	var sink stream.CountSink
	if _, err := stream.RunFactoryContext(ctx, pl.Shards(), pl.ShardGenFactory(), &sink,
		stream.Options{Workers: m.cfg.GenWorkers, BatchSize: m.cfg.BatchSize}); err != nil {
		return CountInfo{}, err
	}
	info.Arcs = sink.N
	info.Source = "generated"
	return info, nil
}

// DigestInfo is the JSON response of the digest endpoint.
type DigestInfo struct {
	Spec   string `json:"spec"`
	Digest string `json:"digest"`
	Arcs   int64  `json:"arcs"`
	// Source says what the digest was derived from: "memo" (previously
	// derived), "cache" (re-read from committed shard bytes — no
	// generation), or "generated" (streamed from the generator).
	Source string `json:"source"`
}

// Digest fingerprints a spec's canonical stream with the pipeline's
// CSRDigest scheme. Fast paths in order: a memoized digest, a committed
// cache entry (the digest is derived by re-reading the shard bytes —
// IO-bound, no generation), and only then a full generation stream. The
// derived digest is memoized on the entry (sidecar file) or in memory.
func (m *Manager) Digest(ctx context.Context, spec string) (DigestInfo, error) {
	pl, _, _, err := m.resolve(spec, "")
	if err != nil {
		return DigestInfo{}, err
	}
	name := pl.Name()
	m.digestMu.Lock()
	memo, ok := m.digests[name]
	m.digestMu.Unlock()
	if ok {
		return DigestInfo{Spec: name, Digest: memo.digest, Arcs: memo.arcs, Source: "memo"}, nil
	}
	// The arc digest is format-independent (it fingerprints the decoded
	// stream), so either format's entry can supply it.
	for _, format := range []string{"binary", "tsv"} {
		e, ok := m.store.Acquire(CacheKey(name, format))
		if !ok {
			continue
		}
		if d := m.store.Digest(e); d != "" {
			m.store.Release(e)
			m.memoizeDigest(name, d, e.arcs)
			return DigestInfo{Spec: name, Digest: d, Arcs: e.arcs, Source: "memo"}, nil
		}
		d, err := digestEntry(ctx, e)
		if err != nil {
			m.store.Release(e)
			return DigestInfo{}, err
		}
		m.store.SetDigest(e, d)
		arcs := e.arcs
		m.store.Release(e)
		m.memoizeDigest(name, d, arcs)
		return DigestInfo{Spec: name, Digest: d, Arcs: arcs, Source: "cache"}, nil
	}
	arcs := pl.TotalArcs()
	opts := stream.Options{Workers: m.cfg.GenWorkers, BatchSize: m.cfg.BatchSize}
	if arcs < 0 {
		var sink stream.CountSink
		if _, err := stream.RunFactoryContext(ctx, pl.Shards(), pl.ShardGenFactory(), &sink, opts); err != nil {
			return DigestInfo{}, err
		}
		arcs = sink.N
	}
	sink := gio.NewArcDigestSink(pl.NumVertices(), arcs)
	if _, err := stream.RunFactoryContext(ctx, pl.Shards(), pl.ShardGenFactory(), sink, opts); err != nil {
		return DigestInfo{}, err
	}
	d, err := sink.Digest()
	if err != nil {
		return DigestInfo{}, err
	}
	m.memoizeDigest(name, d, arcs)
	return DigestInfo{Spec: name, Digest: d, Arcs: arcs, Source: "generated"}, nil
}

func (m *Manager) memoizeDigest(name, digest string, arcs int64) {
	m.digestMu.Lock()
	m.digests[name] = digestInfo{digest, arcs}
	m.digestMu.Unlock()
}
