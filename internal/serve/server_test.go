package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"kronvalid/internal/distgen"
	"kronvalid/internal/gio"
	"kronvalid/internal/model"
	"kronvalid/internal/stream"
)

// newTestService starts a Server on an httptest listener. The returned
// base URL has no trailing slash.
func newTestService(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts.URL
}

func decodeJSON(t *testing.T, r io.Reader, v any) {
	t.Helper()
	if err := json.NewDecoder(r).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// submit POSTs a job and returns (view, HTTP status).
func submit(t *testing.T, base, spec, format string) (JobView, int) {
	t.Helper()
	body, _ := json.Marshal(submitRequest{Spec: spec, Format: format})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		return JobView{}, resp.StatusCode
	}
	var v JobView
	decodeJSON(t, resp.Body, &v)
	return v, resp.StatusCode
}

// jobStatus GETs a job view, long-polling up to wait when nonzero.
func jobStatus(t *testing.T, base, id string, wait time.Duration) JobView {
	t.Helper()
	url := base + "/v1/jobs/" + id
	if wait > 0 {
		url += "?wait=" + wait.String()
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %s: HTTP %d: %s", id, resp.StatusCode, b)
	}
	var v JobView
	decodeJSON(t, resp.Body, &v)
	return v
}

// waitDone long-polls until the job is terminal and fails the test if
// it does not land in want.
func waitDone(t *testing.T, base, id string, want State) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := jobStatus(t, base, id, 2*time.Second)
		switch v.State {
		case StateDone.String(), StateFailed.String(), StateCancelled.String():
			if v.State != want.String() {
				t.Fatalf("job %s finished %s (error %q), want %s", id, v.State, v.Error, want)
			}
			return v
		}
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobView{}
}

// download GETs a job's result body.
func download(t *testing.T, base, id string) ([]byte, *http.Response) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b, resp
}

// referenceBytes runs the library pipeline directly — no service — and
// returns the concatenated canonical stream for spec. The shard count
// deliberately differs from the service's ShardsPerJob: the content-
// address argument says the concatenation is identical for any layout.
func referenceBytes(t *testing.T, spec, format string, shards int) ([]byte, *distgen.Manifest) {
	t.Helper()
	g, err := model.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	pl := model.NewPlan(g, shards)
	dir := t.TempDir()
	man, err := distgen.WriteShardedSource(dir, pl, distgen.Manifest{Model: pl.Name()},
		distgen.WriteOptions{Binary: format == "binary"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, sh := range man.Shards {
		b, err := os.ReadFile(filepath.Join(dir, sh.File))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	return buf.Bytes(), man
}

// TestServeCacheCorrectness is the E2E satellite: submit a spec, check
// the served bytes are identical to a direct WriteShards run, submit
// the same spec again (spelled differently) and check it is answered
// from the cache with the same bytes.
func TestServeCacheCorrectness(t *testing.T) {
	for _, format := range []string{"binary", "tsv"} {
		t.Run(format, func(t *testing.T) {
			s, base := newTestService(t, Config{ShardsPerJob: 4})
			const spec = "rmat:scale=10,edges=16384,seed=7"
			want, man := referenceBytes(t, spec, format, 3) // 3 shards ≠ service's 4

			v, code := submit(t, base, spec, format)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Fatalf("submit: HTTP %d", code)
			}
			if v.Cached {
				t.Fatal("first submission claims a cache hit")
			}
			done := waitDone(t, base, v.ID, StateDone)
			// R-MAT dedupes repeated edges, so the realized arc count is
			// below the requested 16384 — compare against the direct run.
			if done.ArcsDone != man.TotalArcs {
				t.Errorf("arcs_done = %d, want %d", done.ArcsDone, man.TotalArcs)
			}
			got, resp := download(t, base, v.ID)
			if !bytes.Equal(got, want) {
				t.Fatalf("served bytes differ from direct WriteShards: %d vs %d bytes", len(got), len(want))
			}
			if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(len(want)) {
				t.Errorf("Content-Length = %s, want %d", cl, len(want))
			}
			if k := resp.Header.Get("X-Genserve-Key"); k != v.Key {
				t.Errorf("X-Genserve-Key = %s, want %s", k, v.Key)
			}

			// Same generator, different spelling: seed=7 is explicit above,
			// parameter order swapped here. Must be a hit.
			v2, code := submit(t, base, "rmat:seed=7,edges=16384,scale=10", format)
			if code != http.StatusOK {
				t.Fatalf("resubmit: HTTP %d, want 200 for a cache hit", code)
			}
			if !v2.Cached || v2.State != StateDone.String() {
				t.Fatalf("resubmit not served from cache: %+v", v2)
			}
			if v2.Key != v.Key {
				t.Errorf("respelled spec got key %s, want %s", v2.Key, v.Key)
			}
			got2, _ := download(t, base, v2.ID)
			if !bytes.Equal(got2, want) {
				t.Fatal("cache-hit bytes differ from direct WriteShards")
			}

			met := s.Manager().Metrics()
			if h, m := met.Hits.Load(), met.Misses.Load(); h != 1 || m != 1 {
				t.Errorf("hits=%d misses=%d, want 1/1", h, m)
			}
		})
	}
}

// slowConfig makes generation slow and cancellation latency tight:
// one worker thread inside the job and a small pipeline batch.
func slowConfig(dir string) Config {
	return Config{Dir: dir, GenWorkers: 1, BatchSize: 256, ShardsPerJob: 4}
}

// slowSpec is big enough (~5M arcs, 80 MB binary) that a single-thread
// generation takes long enough for the test to act mid-job.
func slowSpec(seed int) string {
	return fmt.Sprintf("gnm:n=200000,m=5000000,seed=%d", seed)
}

// TestServeCancelLeavesNoCacheEntry cancels a job mid-generation and
// checks the abort contract end to end: terminal state cancelled, no
// cache entry, no staging leftovers, and a resubmission is a miss.
func TestServeCancelLeavesNoCacheEntry(t *testing.T) {
	s, base := newTestService(t, slowConfig(""))
	v, code := submit(t, base, slowSpec(1), "binary")
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	// Wait until the job is demonstrably mid-generation.
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := jobStatus(t, base, v.ID, 0)
		if st.State == StateRunning.String() && st.ArcsDone > 0 {
			break
		}
		if st.State == StateDone.String() {
			t.Fatal("job finished before the test could cancel it; slowSpec is not slow enough")
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Post(base+"/v1/jobs/"+v.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitDone(t, base, v.ID, StateCancelled)

	store := s.Manager().Store()
	if n, _, _, _ := store.Stats(); n != 0 {
		t.Errorf("cancelled job left %d cache entries", n)
	}
	tmp, err := os.ReadDir(store.tmpRoot())
	if err != nil {
		t.Fatal(err)
	}
	if len(tmp) != 0 {
		t.Errorf("cancelled job left %d staging directories", len(tmp))
	}
	r, rresp := download(t, base, v.ID)
	if rresp.StatusCode != http.StatusConflict {
		t.Errorf("result of cancelled job: HTTP %d (%s), want 409", rresp.StatusCode, r)
	}
	v2, _ := submit(t, base, slowSpec(1), "binary")
	if v2.Cached {
		t.Error("resubmission after cancel was served from cache")
	}
	if met := s.Manager().Metrics(); met.JobsCancelled.Load() != 1 {
		t.Errorf("jobs_cancelled = %d, want 1", met.JobsCancelled.Load())
	}
}

// TestServeQueuedCancel cancels a job before any worker claims it.
func TestServeQueuedCancel(t *testing.T) {
	cfg := slowConfig("")
	cfg.Workers = 1
	cfg.QueueDepth = 4
	s, base := newTestService(t, cfg)
	_ = s
	a, _ := submit(t, base, slowSpec(10), "binary")
	// Wait for the worker to claim a so b stays queued.
	deadline := time.Now().Add(20 * time.Second)
	for jobStatus(t, base, a.ID, 0).State == StateQueued.String() {
		if time.Now().After(deadline) {
			t.Fatal("first job never claimed")
		}
		time.Sleep(time.Millisecond)
	}
	b, _ := submit(t, base, slowSpec(11), "binary")
	if st := jobStatus(t, base, b.ID, 0).State; st != StateQueued.String() {
		t.Fatalf("second job state %s, want queued", st)
	}
	resp, err := http.Post(base+"/v1/jobs/"+b.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var bv JobView
	decodeJSON(t, resp.Body, &bv)
	resp.Body.Close()
	if bv.State != StateCancelled.String() {
		t.Errorf("queued cancel returned state %s, want cancelled immediately", bv.State)
	}
	// Cancel a too so the test does not wait out the full generation.
	http.Post(base+"/v1/jobs/"+a.ID+"/cancel", "application/json", nil)
	waitDone(t, base, a.ID, StateCancelled)
}

// TestServeAdmissionControl fills the queue and checks the 429 path.
func TestServeAdmissionControl(t *testing.T) {
	cfg := slowConfig("")
	cfg.Workers = 1
	cfg.QueueDepth = 1
	s, base := newTestService(t, cfg)
	a, _ := submit(t, base, slowSpec(20), "binary")
	deadline := time.Now().Add(20 * time.Second)
	for jobStatus(t, base, a.ID, 0).State == StateQueued.String() {
		if time.Now().After(deadline) {
			t.Fatal("first job never claimed")
		}
		time.Sleep(time.Millisecond)
	}
	if _, code := submit(t, base, slowSpec(21), "binary"); code != http.StatusAccepted {
		t.Fatalf("queued submit: HTTP %d", code)
	}
	if _, code := submit(t, base, slowSpec(22), "binary"); code != http.StatusTooManyRequests {
		t.Fatalf("over-cap submit: HTTP %d, want 429", code)
	}
	if met := s.Manager().Metrics(); met.Rejected.Load() != 1 {
		t.Errorf("rejected = %d, want 1", met.Rejected.Load())
	}
}

// TestServeSingleflightDedup submits one spec from many goroutines and
// checks exactly one generation happened; everyone else attached.
func TestServeSingleflightDedup(t *testing.T) {
	s, base := newTestService(t, slowConfig(""))
	const n = 8
	spec := slowSpec(30)
	views := make([]JobView, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			v, code := submit(t, base, spec, "binary")
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("submit %d: HTTP %d", i, code)
				return
			}
			views[i] = v
		}(i)
	}
	wg.Wait()
	ids := map[string]bool{}
	for _, v := range views {
		ids[v.ID] = true
	}
	met := s.Manager().Metrics()
	if met.Misses.Load() != 1 {
		t.Fatalf("misses = %d, want exactly 1 (singleflight)", met.Misses.Load())
	}
	if got := met.Hits.Load() + met.Dedups.Load(); got != n-1 {
		t.Errorf("hits+dedups = %d, want %d", got, n-1)
	}
	waitDone(t, base, views[0].ID, StateDone)
	if n, _, _, _ := s.Manager().Store().Stats(); n != 1 {
		t.Errorf("store has %d entries, want 1", n)
	}
}

// TestServeEvictionUnderLoad runs distinct specs through a store whose
// budget holds ~2 entries and checks eviction keeps the budget, evicted
// results answer 410, and a resubmission regenerates.
func TestServeEvictionUnderLoad(t *testing.T) {
	// gnm:n=2000,m=6000 binary ≈ 96 KB + manifest.
	cfg := Config{CacheBytes: 220 << 10, ShardsPerJob: 2}
	s, base := newTestService(t, cfg)
	specAt := func(i int) string { return fmt.Sprintf("gnm:n=2000,m=6000,seed=%d", 100+i) }
	var first JobView
	for i := 0; i < 6; i++ {
		v, code := submit(t, base, specAt(i), "binary")
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, code)
		}
		waitDone(t, base, v.ID, StateDone)
		if i == 0 {
			first = v
		}
	}
	entries, bytes_, maxBytes, evictions := s.Manager().Store().Stats()
	if bytes_ > maxBytes {
		t.Errorf("resident %d bytes over the %d budget", bytes_, maxBytes)
	}
	if evictions == 0 {
		t.Error("six entries through a two-entry budget evicted nothing")
	}
	if entries > 2 {
		t.Errorf("store holds %d entries, budget fits 2", entries)
	}
	if body, resp := download(t, base, first.ID); resp.StatusCode != http.StatusGone {
		t.Errorf("evicted result: HTTP %d (%s), want 410", resp.StatusCode, body)
	}
	v, _ := submit(t, base, specAt(0), "binary")
	if v.Cached {
		t.Error("evicted spec resubmission claims a cache hit")
	}
	waitDone(t, base, v.ID, StateDone)
	ref, _ := referenceBytes(t, specAt(0), "binary", 3)
	if got, _ := download(t, base, v.ID); !bytes.Equal(got, ref) {
		t.Error("regenerated bytes differ from direct WriteShards")
	}
}

// TestServeCountDigest exercises the fast-path endpoints against
// directly computed ground truth, including the cache-derived digest
// after a restart onto the same directory.
func TestServeCountDigest(t *testing.T) {
	dir := t.TempDir()
	_, base := newTestService(t, Config{Dir: dir, ShardsPerJob: 2})

	getJSON := func(path string, v any) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			decodeJSON(t, resp.Body, v)
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return resp.StatusCode
	}

	const spec = "gnm:n=4000,m=12000,seed=5"
	var ci CountInfo
	if code := getJSON("/v1/count?spec="+spec, &ci); code != http.StatusOK {
		t.Fatalf("count: HTTP %d", code)
	}
	if ci.Arcs != 12000 || !ci.Exact || ci.Source != "closed-form" {
		t.Errorf("gnm count = %+v, want 12000 exact closed-form", ci)
	}

	var er CountInfo
	if code := getJSON("/v1/count?spec=er:n=3000,p=0.001,seed=4", &er); code != http.StatusOK {
		t.Fatalf("er count: HTTP %d", code)
	}
	if er.Exact || er.Source != "expectation" || er.Arcs != -1 {
		t.Errorf("er count = %+v, want inexact expectation -1", er)
	}
	var erx CountInfo
	if code := getJSON("/v1/count?spec=er:n=3000,p=0.001,seed=4&exact=true", &erx); code != http.StatusOK {
		t.Fatalf("er exact count: HTTP %d", code)
	}
	if !erx.Exact || erx.Source != "generated" || erx.Arcs < 0 {
		t.Errorf("er exact count = %+v, want generated exact", erx)
	}

	// Ground-truth digest through the library pipeline.
	g, err := model.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	pl := model.NewPlan(g, 3)
	sink := gio.NewArcDigestSink(pl.NumVertices(), 12000)
	if _, err := stream.RunFactoryContext(context.Background(), pl.Shards(), pl.ShardGenFactory(), sink, stream.Options{}); err != nil {
		t.Fatal(err)
	}
	want, err := sink.Digest()
	if err != nil {
		t.Fatal(err)
	}

	var di DigestInfo
	if code := getJSON("/v1/digest?spec="+spec, &di); code != http.StatusOK {
		t.Fatalf("digest: HTTP %d", code)
	}
	if di.Digest != want || di.Source != "generated" {
		t.Errorf("digest = %+v, want %s generated", di, want)
	}
	var di2 DigestInfo
	getJSON("/v1/digest?spec="+spec, &di2)
	if di2.Digest != want || di2.Source != "memo" {
		t.Errorf("second digest = %+v, want %s memo", di2, want)
	}

	// Commit the stream, restart the service on the same directory, and
	// check the digest is now derived from cached bytes, not generation.
	v, _ := submit(t, base, spec, "binary")
	waitDone(t, base, v.ID, StateDone)

	_, base2 := newTestService(t, Config{Dir: dir, ShardsPerJob: 2})
	var di3 DigestInfo
	if code := getJSON2(t, base2, "/v1/digest?spec="+spec, &di3); code != http.StatusOK {
		t.Fatalf("restarted digest: HTTP %d", code)
	}
	if di3.Digest != want || di3.Source != "cache" {
		t.Errorf("restarted digest = %+v, want %s from cache", di3, want)
	}
	// The restarted service also answers the spec itself from the
	// recovered entry.
	v2, code := submit(t, base2, spec, "binary")
	if code != http.StatusOK || !v2.Cached {
		t.Errorf("restarted submit: HTTP %d cached=%v, want 200 cached", code, v2.Cached)
	}
}

func getJSON2(t *testing.T, base, path string, v any) int {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		decodeJSON(t, resp.Body, v)
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// TestServeHTTPErrors pins the error-code mapping.
func TestServeHTTPErrors(t *testing.T) {
	s, base := newTestService(t, Config{})
	if _, code := submit(t, base, "nosuchmodel:n=10", "binary"); code != http.StatusBadRequest {
		t.Errorf("unknown model: HTTP %d, want 400", code)
	}
	if _, code := submit(t, base, "rmat:scale=10", "parquet"); code != http.StatusBadRequest {
		t.Errorf("unknown format: HTTP %d, want 400", code)
	}
	if met := s.Manager().Metrics(); met.BadSpecs.Load() != 2 {
		t.Errorf("bad_specs = %d, want 2", met.BadSpecs.Load())
	}
	resp, err := http.Get(base + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(base + "/v1/count")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("count without spec: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestServeMetricsHealthz smoke-checks the observability endpoints.
func TestServeMetricsHealthz(t *testing.T) {
	_, base := newTestService(t, Config{ShardsPerJob: 2})
	v, _ := submit(t, base, "gnm:n=2000,m=6000,seed=1", "binary")
	waitDone(t, base, v.ID, StateDone)
	download(t, base, v.ID)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"genserve_submits_total 1",
		"genserve_cache_misses_total 1",
		"genserve_jobs_done_total 1",
		"genserve_downloads_total 1",
		"genserve_cache_entries 1",
	} {
		if !strings.Contains(string(body), metric) {
			t.Errorf("/metrics missing %q", metric)
		}
	}
	var hz struct {
		Status string `json:"status"`
	}
	if code := getJSON2(t, base, "/healthz", &hz); code != http.StatusOK || hz.Status != "ok" {
		t.Errorf("healthz: HTTP %d status %q", code, hz.Status)
	}
	var cache struct {
		Count   int         `json:"count"`
		Entries []EntryInfo `json:"entries"`
	}
	if code := getJSON2(t, base, "/v1/cache", &cache); code != http.StatusOK || cache.Count != 1 || len(cache.Entries) != 1 {
		t.Errorf("cache view: HTTP %d %+v", code, cache)
	}
}

// TestServeConcurrentChaos is the race-detector suite: concurrent
// submits (hot and cold), cancels, status polls, downloads, and metric
// scrapes against a store small enough to evict constantly. It asserts
// invariants, not outcomes: every response is a known code, and a done
// job's download is either complete or 410 — never torn.
func TestServeConcurrentChaos(t *testing.T) {
	cfg := Config{
		CacheBytes:   220 << 10,
		Workers:      3,
		GenWorkers:   2,
		QueueDepth:   64,
		ShardsPerJob: 2,
		BatchSize:    512,
	}
	s, base := newTestService(t, cfg)
	specs := make([]string, 6)
	for i := range specs {
		specs[i] = fmt.Sprintf("gnm:n=2000,m=6000,seed=%d", 500+i)
	}
	refBytes, _ := referenceBytes(t, specs[0], "binary", 2)
	wantLen := len(refBytes)

	const goroutines = 6
	const iters = 25
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for gi := 0; gi < goroutines; gi++ {
		go func(gi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(gi) + 1))
			for it := 0; it < iters; it++ {
				spec := specs[rng.Intn(len(specs))]
				v, code := submit(t, base, spec, "binary")
				switch code {
				case http.StatusOK, http.StatusAccepted:
				case http.StatusTooManyRequests:
					continue
				default:
					t.Errorf("chaos submit: HTTP %d", code)
					continue
				}
				switch rng.Intn(3) {
				case 0: // cancel, possibly mid-job
					resp, err := http.Post(base+"/v1/jobs/"+v.ID+"/cancel", "application/json", nil)
					if err == nil {
						resp.Body.Close()
					}
				case 1: // poll status while running (atomic progress reads)
					jobStatus(t, base, v.ID, 0)
				case 2: // wait and download
					final := jobStatus(t, base, v.ID, 5*time.Second)
					if final.State != StateDone.String() {
						continue
					}
					body, resp := download(t, base, v.ID)
					switch resp.StatusCode {
					case http.StatusOK:
						if len(body) != wantLen {
							t.Errorf("chaos download: %d bytes, want %d", len(body), wantLen)
						}
					case http.StatusGone, http.StatusConflict:
					default:
						t.Errorf("chaos download: HTTP %d", resp.StatusCode)
					}
				}
				if it%10 == 0 {
					http.Get(base + "/metrics")
				}
			}
		}(gi)
	}
	wg.Wait()
	// Invariant: budget holds after the dust settles.
	if _, bytes_, maxBytes, _ := s.Manager().Store().Stats(); bytes_ > maxBytes {
		t.Errorf("resident %d bytes over the %d budget", bytes_, maxBytes)
	}
}

// TestManagerCloseCancelsInFlight checks shutdown: Close returns, the
// in-flight job lands cancelled, and later submits get ErrClosed.
func TestManagerCloseCancelsInFlight(t *testing.T) {
	cfg := slowConfig(t.TempDir())
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Submit(slowSpec(40), "binary")
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.Job(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Let it start so Close exercises mid-job cancellation.
	deadline := time.Now().Add(20 * time.Second)
	for j.State() == StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never claimed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if st := j.State(); st != StateCancelled && st != StateDone {
		t.Errorf("job state after Close = %s", st)
	}
	if _, err := m.Submit("gnm:n=100,m=200,seed=1", "binary"); err != ErrClosed {
		t.Errorf("submit after Close: %v, want ErrClosed", err)
	}
	if n, _, _, _ := m.Store().Stats(); j.State() == StateCancelled && n != 0 {
		t.Errorf("cancelled-on-close job left %d cache entries", n)
	}
}
