package serve

import (
	"os"
	"path/filepath"
	"testing"

	"kronvalid/internal/distgen"
	"kronvalid/internal/model"
)

// TestCacheKeyNormalizesSpec pins the content-address argument's
// syntactic half: spec variants that parse to the same generator
// collapse to the same key, because the key hashes the round-tripped
// canonical Name(), not the user's spelling.
func TestCacheKeyNormalizesSpec(t *testing.T) {
	variants := []string{
		"ba:n=1000,d=4",
		"ba(n=1000;d=4)",
		"ba:d=4,n=1000",
		"ba:n=1000,d=4,seed=1",
	}
	want := ""
	for _, spec := range variants {
		g, err := model.New(spec)
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		key := CacheKey(g.Name(), "binary")
		if want == "" {
			want = key
		} else if key != want {
			t.Errorf("spec %q: key %s, want %s (Name %q)", spec, key, want, g.Name())
		}
	}
	g, err := model.New("ba:n=1000,d=4,seed=2")
	if err != nil {
		t.Fatal(err)
	}
	if CacheKey(g.Name(), "binary") == want {
		t.Error("different seed produced the same content address")
	}
	if CacheKey(g.Name(), "tsv") == CacheKey(g.Name(), "binary") {
		t.Error("different formats produced the same content address")
	}
}

// stageEntry writes one complete sharded directory into the store's
// staging area and commits it, returning the entry.
func stageEntry(t *testing.T, s *Store, spec string, shards int, binary bool) *Entry {
	t.Helper()
	g, err := model.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	pl := model.NewPlan(g, shards)
	format := "tsv"
	if binary {
		format = "binary"
	}
	key := CacheKey(pl.Name(), format)
	staged, err := s.TempDir("stage-" + key[:12])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := distgen.WriteShardedSource(staged, pl, distgen.Manifest{Model: pl.Name()},
		distgen.WriteOptions{Binary: binary}); err != nil {
		t.Fatal(err)
	}
	e, err := s.Commit(key, staged)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestStoreCommitAcquireRelease(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e := stageEntry(t, s, "gnm:n=2000,m=6000,seed=3", 3, true)
	if e.Arcs() != 6000 {
		t.Fatalf("entry arcs = %d, want 6000", e.Arcs())
	}
	got, err := dirSize(s.objectsRoot())
	if err != nil {
		t.Fatal(err)
	}
	if got != e.Bytes() {
		t.Errorf("entry accounts %d bytes, directory holds %d", e.Bytes(), got)
	}
	a, ok := s.Acquire(e.Key())
	if !ok {
		t.Fatal("Acquire missed a committed key")
	}
	if a != e {
		t.Fatal("Acquire returned a different entry")
	}
	for _, p := range a.ShardPaths() {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("shard path %s: %v", p, err)
		}
	}
	s.Release(a)
	if _, ok := s.Acquire("no-such-key"); ok {
		t.Error("Acquire hit an uncommitted key")
	}
}

func TestStoreEvictionLRUSkipsPinned(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a := stageEntry(t, s, "gnm:n=2000,m=6000,seed=1", 2, true)
	b := stageEntry(t, s, "gnm:n=2000,m=6000,seed=2", 2, true)
	// Pin a (also bumps it over b in the LRU) and shrink the budget so
	// the next commit must evict: b — the LRU unpinned entry — goes, a
	// survives because it is pinned and c because it is newest.
	pinned, ok := s.Acquire(a.Key())
	if !ok {
		t.Fatal("Acquire(a) missed")
	}
	s.mu.Lock()
	s.maxBytes = s.bytes + 1000 // room for nothing extra
	s.mu.Unlock()
	c := stageEntry(t, s, "gnm:n=2000,m=6000,seed=3", 2, true)
	if _, ok := s.Contains(b.Key()); ok {
		t.Error("LRU entry b survived an over-budget commit")
	}
	if _, ok := s.Contains(a.Key()); !ok {
		t.Error("pinned entry a was evicted")
	}
	if _, ok := s.Contains(c.Key()); !ok {
		t.Error("fresh entry c was evicted")
	}
	if _, err := os.Stat(filepath.Join(b.dir, distgen.ManifestName)); !os.IsNotExist(err) {
		t.Errorf("evicted entry b still has a manifest: err=%v", err)
	}
	_, _, _, evictions := s.Stats()
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	s.Release(pinned)
}

// TestStorePinDefersEviction pins an entry, drives the store far over
// budget, and checks the pin defers — not exempts — eviction: the entry
// stays indexed and intact while pinned (so an in-flight download never
// tears and a concurrent identical submission still hits), and the last
// release re-runs the sweep and settles the budget.
func TestStorePinDefersEviction(t *testing.T) {
	s, err := NewStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a := stageEntry(t, s, "gnm:n=2000,m=6000,seed=1", 2, true)
	pinned, _ := s.Acquire(a.Key())
	s.mu.Lock()
	s.maxBytes = 1 // everything is over budget
	s.mu.Unlock()
	b := stageEntry(t, s, "gnm:n=2000,m=6000,seed=2", 2, true)
	// b was evicted immediately (unpinned, over budget); a is pinned:
	// still indexed, files intact.
	if _, ok := s.Contains(b.Key()); ok {
		t.Error("unpinned entry b survived")
	}
	if _, ok := s.Contains(a.Key()); !ok {
		t.Error("pinned entry a fell out of the index")
	}
	for _, p := range pinned.ShardPaths() {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("pinned entry lost file %s: %v", p, err)
		}
	}
	s.Release(pinned)
	if _, ok := s.Contains(a.Key()); ok {
		t.Error("release did not re-run the eviction sweep")
	}
	if _, err := os.Stat(pinned.dir); !os.IsNotExist(err) {
		t.Errorf("evicted-on-release entry still on disk: err=%v", err)
	}
	if _, bytes, _, _ := s.Stats(); bytes != 0 {
		t.Errorf("resident bytes = %d after releasing everything over budget", bytes)
	}
}

// TestStoreRecovery reopens a cache directory and checks committed
// entries come back, while manifest-less directories (the abort
// contract's signature of a torn run) and staging leftovers are swept.
func TestStoreRecovery(t *testing.T) {
	root := t.TempDir()
	s, err := NewStore(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := stageEntry(t, s, "gnm:n=2000,m=6000,seed=9", 2, true)
	s.SetDigest(e, "feedc0de")

	// Simulate a torn eviction/abort: an object directory without a
	// manifest, plus a staging leftover from a crashed job.
	garbage := filepath.Join(s.objectsRoot(), "zz", "deadbeef")
	if err := os.MkdirAll(garbage, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(garbage, "shard-000.bin"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	leftover := filepath.Join(root, "tmp", "j-000042")
	if err := os.MkdirAll(leftover, 0o755); err != nil {
		t.Fatal(err)
	}

	r, err := NewStore(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := r.Contains(e.Key())
	if !ok {
		t.Fatal("recovery lost the committed entry")
	}
	if got.Arcs() != e.Arcs() || got.Bytes() != e.Bytes() || got.Name() != e.Name() {
		t.Errorf("recovered entry differs: arcs %d/%d bytes %d/%d name %q/%q",
			got.Arcs(), e.Arcs(), got.Bytes(), e.Bytes(), got.Name(), e.Name())
	}
	if d := r.Digest(got); d != "feedc0de" {
		t.Errorf("recovered digest sidecar = %q, want feedc0de", d)
	}
	if _, err := os.Stat(garbage); !os.IsNotExist(err) {
		t.Errorf("manifest-less garbage survived recovery: err=%v", err)
	}
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Errorf("staging leftover survived recovery: err=%v", err)
	}
}
