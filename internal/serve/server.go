package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"kronvalid/internal/model"
)

// Server is the HTTP face of the generation service. Create one with
// NewServer, mount Handler() on any mux or http.Server, and Close it on
// shutdown (Close also closes the Manager and its worker pool).
//
// The API is JSON over HTTP:
//
//	POST /v1/jobs                {"spec": "...", "format": "tsv"|"binary"}
//	GET  /v1/jobs                ?limit=N
//	GET  /v1/jobs/{id}           ?wait=2s  (long-poll until terminal or timeout)
//	POST /v1/jobs/{id}/cancel
//	GET  /v1/jobs/{id}/result    canonical concatenated stream from cache
//	GET  /v1/jobs/{id}/manifest  the entry's manifest.json
//	GET  /v1/count               ?spec=...&exact=true
//	GET  /v1/digest              ?spec=...
//	GET  /v1/models              registered model kinds
//	GET  /v1/cache               entries + stats
//	GET  /metrics                Prometheus text format
//	GET  /healthz
type Server struct {
	m       *Manager
	mux     *http.ServeMux
	started time.Time
}

// NewServer builds the service: opens the store, starts the worker
// pool, and wires the routes.
func NewServer(cfg Config) (*Server, error) {
	m, err := NewManager(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{m: m, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/manifest", s.handleManifest)
	s.mux.HandleFunc("GET /v1/count", s.handleCount)
	s.mux.HandleFunc("GET /v1/digest", s.handleDigest)
	s.mux.HandleFunc("GET /v1/models", s.handleModels)
	s.mux.HandleFunc("GET /v1/cache", s.handleCache)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager returns the underlying job manager.
func (s *Server) Manager() *Manager { return s.m }

// Close shuts the service down: admission stops, in-flight jobs are
// cancelled, workers are joined.
func (s *Server) Close() error { return s.m.Close() }

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpStatus maps service errors onto status codes.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrEvicted):
		return http.StatusGone
	case errors.Is(err, ErrNotDone):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, httpStatus(err), errorBody{Error: err.Error()})
}

type submitRequest struct {
	Spec   string `json:"spec"`
	Format string `json:"format,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("serve: request body: %w", err))
		return
	}
	if req.Spec == "" {
		writeError(w, errors.New("serve: \"spec\" is required"))
		return
	}
	v, err := s.m.Submit(req.Spec, req.Format)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusAccepted
	if v.State == StateDone.String() {
		status = http.StatusOK
	}
	writeJSON(w, status, v)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, fmt.Errorf("serve: limit %q is not a non-negative integer", q))
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.m.Jobs(limit)})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, err := s.m.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if q := r.URL.Query().Get("wait"); q != "" {
		d, perr := time.ParseDuration(q)
		if perr != nil {
			writeError(w, fmt.Errorf("serve: wait %q: %w", q, perr))
			return
		}
		// Long-poll: return at terminal state, timeout, or client gone —
		// whichever is first. The job itself is unaffected.
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-j.Done():
		case <-t.C:
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, j.view(false))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	v, err := s.m.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleResult streams the job's canonical concatenated arc stream
// straight from the cached shard files. The entry is pinned for the
// duration of the copy, so a concurrent eviction can never truncate a
// download mid-stream.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.m.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if j.State() != StateDone {
		writeError(w, fmt.Errorf("%w: job %s is %s", ErrNotDone, j.id, j.State()))
		return
	}
	e, ok := s.m.store.Acquire(j.key)
	if !ok {
		writeError(w, fmt.Errorf("%w: resubmit %q to regenerate", ErrEvicted, j.spec))
		return
	}
	defer s.m.store.Release(e)

	if e.format == "binary" {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "text/tab-separated-values")
	}
	w.Header().Set("Content-Length", strconv.FormatInt(e.bytes-manifestBytes(e), 10))
	w.Header().Set("X-Genserve-Key", e.key)
	w.Header().Set("X-Genserve-Spec", e.name)
	w.Header().Set("X-Genserve-Arcs", strconv.FormatInt(e.arcs, 10))
	var sent int64
	for _, path := range e.ShardPaths() {
		f, err := os.Open(path)
		if err != nil {
			// Headers are gone; the short body (Content-Length mismatch)
			// surfaces the failure to the client.
			return
		}
		n, err := io.Copy(w, f)
		f.Close()
		sent += n
		if err != nil {
			return
		}
	}
	s.m.met.Downloads.Add(1)
	s.m.met.ArcsServed.Add(e.arcs)
	s.m.met.BytesServed.Add(sent)
}

// manifestBytes returns the size of the entry's manifest file — entry
// bytes minus this is the payload length of a result download.
func manifestBytes(e *Entry) int64 {
	fi, err := os.Stat(e.ManifestPath())
	if err != nil {
		return 0
	}
	return fi.Size()
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	j, err := s.m.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if j.State() != StateDone {
		writeError(w, fmt.Errorf("%w: job %s is %s", ErrNotDone, j.id, j.State()))
		return
	}
	e, ok := s.m.store.Acquire(j.key)
	if !ok {
		writeError(w, fmt.Errorf("%w: resubmit %q to regenerate", ErrEvicted, j.spec))
		return
	}
	defer s.m.store.Release(e)
	w.Header().Set("Content-Type", "application/json")
	f, err := os.Open(e.ManifestPath())
	if err != nil {
		writeError(w, err)
		return
	}
	defer f.Close()
	io.Copy(w, f)
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	spec := r.URL.Query().Get("spec")
	if spec == "" {
		writeError(w, errors.New("serve: \"spec\" query parameter is required"))
		return
	}
	exact := r.URL.Query().Get("exact") == "true"
	info, err := s.m.Count(r.Context(), spec, exact)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	spec := r.URL.Query().Get("spec")
	if spec == "" {
		writeError(w, errors.New("serve: \"spec\" query parameter is required"))
		return
	}
	info, err := s.m.Digest(r.Context(), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	kinds := model.Kinds()
	sort.Strings(kinds)
	writeJSON(w, http.StatusOK, map[string]any{"models": kinds})
}

func (s *Server) handleCache(w http.ResponseWriter, _ *http.Request) {
	entries, bytes, maxBytes, evictions := s.m.store.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"entries":   s.m.store.Entries(),
		"count":     entries,
		"bytes":     bytes,
		"max_bytes": maxBytes,
		"evictions": evictions,
		"hit_ratio": s.m.met.HitRatio(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.m.met.WritePrometheus(w, s.m.store, s.m.QueueDepth())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"uptime_sec": time.Since(s.started).Seconds(),
	})
}
