package verify

import (
	"strings"
	"testing"

	"kronvalid/internal/gen"
	"kronvalid/internal/graph"
	"kronvalid/internal/kron"
	"kronvalid/internal/rng"
)

func randomUndirected(g *rng.Xoshiro256, n int, avgDeg float64, loopProb float64) *graph.Graph {
	var edges []graph.Edge
	target := int(avgDeg * float64(n) / 2)
	for i := 0; i < target; i++ {
		u, v := int32(g.Intn(n)), int32(g.Intn(n))
		if u != v {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	gr := graph.FromEdges(n, edges, true)
	if loopProb > 0 {
		all := gr.Arcs()
		for v := 0; v < n; v++ {
			if g.Float64() < loopProb {
				all = append(all, graph.Edge{U: int32(v), V: int32(v)})
			}
		}
		gr = graph.FromEdges(n, all, false)
	}
	return gr
}

func TestFullReportAllPass(t *testing.T) {
	g := rng.New(81)
	a := randomUndirected(g, 10, 4, 0)
	b := gen.TriangleLimitedPA(9, 3)
	p := kron.MustProduct(a, b)
	r, err := Full(p, 10000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllPassed() {
		t.Fatalf("failures: %v", r.Failures())
	}
	// Truss must have actually run (hypotheses hold).
	found := false
	for _, c := range r.Checks {
		if strings.Contains(c.Name, "Thm. 3") && c.Ran {
			found = true
		}
	}
	if !found {
		t.Error("Thm. 3 check did not run despite valid hypotheses")
	}
}

func TestFullWithLoopsAndLabels(t *testing.T) {
	g := rng.New(82)
	base := randomUndirected(g, 9, 4, 0)
	labels := make([]int32, base.NumVertices())
	for i := range labels {
		labels[i] = int32(i % 3)
	}
	a := base.WithLabels(labels, 3)
	b := randomUndirected(g, 8, 3, 0.5)
	p := kron.MustProduct(a, b)
	r, err := Full(p, 10000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllPassed() {
		t.Fatalf("failures: %v", r.Failures())
	}
	ranLabeled := false
	for _, c := range r.Checks {
		if strings.Contains(c.Name, "Thm. 6") && c.Ran && c.Passed {
			ranLabeled = true
		}
	}
	if !ranLabeled {
		t.Error("labeled census check did not run")
	}
}

func TestFullDirectedProduct(t *testing.T) {
	a := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 1, V: 0}}, false)
	b := gen.Clique(4)
	p := kron.MustProduct(a, b)
	r, err := Full(p, 10000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllPassed() {
		t.Fatalf("failures: %v", r.Failures())
	}
}

func TestFullTooLarge(t *testing.T) {
	a := gen.Clique(100)
	p := kron.MustProduct(a, a)
	if _, err := Full(p, 10, 10); err == nil {
		t.Fatal("expected materialization refusal")
	}
}

func TestSampledLargeProduct(t *testing.T) {
	// A product far too large to materialize: 2^40-ish arcs.
	a := gen.WebGraph(1<<12, 3, 0.7, 4)
	p := kron.MustProduct(a, a.WithAllLoops())
	r, err := Sampled(p, 30, 30, 1<<20, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllPassed() {
		t.Fatalf("failures: %v", r.Failures())
	}
}

func TestSampledRejectsDirected(t *testing.T) {
	a := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, false)
	p := kron.MustProduct(a, gen.Clique(3))
	if _, err := Sampled(p, 5, 5, 100, 1); err == nil {
		t.Fatal("expected error for directed product")
	}
}

func TestStreamCountMatchesFormula(t *testing.T) {
	// The structure-oblivious counter applied to the product's own edge
	// stream must reproduce the formula totals.
	a := gen.WebGraph(60, 3, 0.7, 5)
	b := gen.HubCycle(4)
	p := kron.MustProduct(a, b)
	res, err := StreamCount(p.NumVertices(), func(emit func(u, v int64) bool) {
		p.EachArc(emit)
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := kron.TriangleTotal(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != want {
		t.Fatalf("oblivious count %d != formula %d", res.Total, want)
	}
	tc, err := kron.VertexParticipation(p)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < p.NumVertices(); v++ {
		if res.PerVertex[v] != tc.At(v) {
			t.Fatalf("per-vertex mismatch at %d", v)
		}
	}
}

func TestStreamCountErrors(t *testing.T) {
	if _, err := StreamCount(1<<40, func(func(u, v int64) bool) {}); err == nil {
		t.Error("expected refusal of huge vertex count")
	}
	if _, err := StreamCount(2, func(emit func(u, v int64) bool) {
		emit(0, 5)
	}); err == nil {
		t.Error("expected out-of-range arc error")
	}
}

func TestStreamCountDetectsCorruption(t *testing.T) {
	// Drop one arc pair from the stream: totals must diverge from the
	// formula — the whole point of ground-truth validation.
	a := gen.Clique(5)
	p := kron.MustProduct(a, a)
	want, err := kron.TriangleTotal(p)
	if err != nil {
		t.Fatal(err)
	}
	// Find one undirected edge and drop both of its orientations.
	var du, dv int64 = -1, -1
	p.EachArc(func(u, v int64) bool {
		if u < v {
			du, dv = u, v
			return false
		}
		return true
	})
	res, err := StreamCount(p.NumVertices(), func(emit func(u, v int64) bool) {
		p.EachArc(func(u, v int64) bool {
			if (u == du && v == dv) || (u == dv && v == du) {
				return true
			}
			return emit(u, v)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total == want {
		t.Fatal("corrupted stream went undetected")
	}
}

func TestReportAccessors(t *testing.T) {
	r := &Report{}
	r.add("a", true)
	r.add("b", false)
	r.skip("c", "why")
	if r.AllPassed() {
		t.Error("AllPassed with a failure")
	}
	f := r.Failures()
	if len(f) != 1 || f[0] != "b" {
		t.Errorf("Failures = %v", f)
	}
}
