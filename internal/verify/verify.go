// Package verify cross-checks the Kronecker ground-truth formulas against
// structure-oblivious computation — the workflow the paper proposes for
// validating graph-analytics implementations. Two regimes:
//
//   - Full: materialize C explicitly (validation scale), recompute every
//     statistic with the direct engines (which never look at the Kronecker
//     structure), and compare entry-by-entry.
//   - Sampled: for products too large to materialize, spot-check vertices
//     by egonet extraction and edges by local wedge counting; cost is
//     O(samples · d²) independent of |E_C|.
package verify

import (
	"fmt"

	"kronvalid/internal/census"
	"kronvalid/internal/graph"
	"kronvalid/internal/kron"
	"kronvalid/internal/rng"
	"kronvalid/internal/sparse"
	"kronvalid/internal/triangle"
	"kronvalid/internal/truss"
)

// Check is one named validation outcome.
type Check struct {
	Name    string
	Ran     bool
	Passed  bool
	Skipped string // reason, when Ran is false
}

// Report collects the outcomes of a validation run.
type Report struct {
	Checks []Check
}

func (r *Report) add(name string, passed bool) {
	r.Checks = append(r.Checks, Check{Name: name, Ran: true, Passed: passed})
}

func (r *Report) skip(name, reason string) {
	r.Checks = append(r.Checks, Check{Name: name, Skipped: reason})
}

// AllPassed reports whether every executed check passed.
func (r *Report) AllPassed() bool {
	for _, c := range r.Checks {
		if c.Ran && !c.Passed {
			return false
		}
	}
	return true
}

// Failures lists the names of failed checks.
func (r *Report) Failures() []string {
	var out []string
	for _, c := range r.Checks {
		if c.Ran && !c.Passed {
			out = append(out, c.Name)
		}
	}
	return out
}

// Full materializes C (subject to the limits) and validates every
// applicable formula against direct computation.
func Full(p *kron.Product, maxVertices, maxArcs int64) (*Report, error) {
	c, err := p.Materialize(maxVertices, maxArcs)
	if err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	r := &Report{}

	// Degrees (always applicable).
	degOK := true
	for v := int64(0); v < p.NumVertices(); v++ {
		if p.Degree(v) != c.Degree(int32(v)) {
			degOK = false
			break
		}
	}
	r.add("degree formula", degOK)

	if p.IsSymmetric() {
		direct := triangle.Count(c)
		tc, err := kron.VertexParticipation(p)
		if err != nil {
			return nil, err
		}
		r.add("vertex participation", sparse.EqualVec(tc.Vector(), direct.PerVertex))

		dc, err := kron.EdgeParticipation(p)
		if err != nil {
			return nil, err
		}
		r.add("edge participation", dc.Materialize().Equal(direct.EdgeDelta))

		tau, err := kron.TriangleTotal(p)
		if err != nil {
			return nil, err
		}
		r.add("triangle total", tau == direct.Total)

		wedges, err := kron.WedgeCount(p)
		if err != nil {
			return nil, err
		}
		cl := c.WithoutLoops()
		var directWedges int64
		for v := 0; v < cl.NumVertices(); v++ {
			d := cl.OutDegreeRaw(int32(v))
			directWedges += d * (d - 1) / 2
		}
		r.add("wedge count", wedges == directWedges)

		if pt, err := kron.TrussDecomposition(p); err == nil {
			directT := truss.Decompose(c)
			trussOK := true
			c.EachEdgeUndirected(func(u, v int32) bool {
				if pt.EdgeTruss(int64(u), int64(v)) != directT.EdgeTruss(u, v) {
					trussOK = false
					return false
				}
				return true
			})
			r.add("truss decomposition (Thm. 3)", trussOK)
		} else {
			r.skip("truss decomposition (Thm. 3)", err.Error())
		}
	} else {
		r.skip("undirected statistics", "product is directed")
	}

	if ds, err := kron.DirectedCensus(p); err == nil {
		directV := census.DirectedVertexCensus(c)
		vOK := true
		for _, ty := range census.AllVertexTypes() {
			if !sparse.EqualVec(ds.Vertex[ty].Vector(), directV.Counts[ty]) {
				vOK = false
				break
			}
		}
		r.add("directed vertex census (Thm. 4)", vOK)
		directE := census.DirectedEdgeCensus(c)
		eOK := true
		for _, ty := range census.AllEdgeTypes() {
			if !ds.Edge[ty].Materialize().Equal(directE.Delta[ty]) {
				eOK = false
				break
			}
		}
		r.add("directed edge census (Thm. 5)", eOK)
	} else {
		r.skip("directed census (Thm. 4/5)", err.Error())
	}

	if p.A.IsLabeled() {
		if ls, err := kron.LabeledCensus(p); err == nil {
			directV := census.LabeledVertexCensus(c)
			vOK := true
			for ty, vec := range ls.Vertex {
				if !sparse.EqualVec(vec.Vector(), directV[ty]) {
					vOK = false
					break
				}
			}
			r.add("labeled vertex census (Thm. 6)", vOK)
			directE := census.LabeledEdgeCensus(c)
			eOK := true
			for ty, mat := range ls.Edge {
				if !mat.Materialize().Equal(directE[ty]) {
					eOK = false
					break
				}
			}
			r.add("labeled edge census (Thm. 7)", eOK)
		} else {
			r.skip("labeled census (Thm. 6/7)", err.Error())
		}
	}
	return r, nil
}

// Sampled validates a product too large to materialize by spot checks:
// vertexSamples egonet verifications and edgeSamples per-edge wedge
// recounts, at uniformly random positions (deterministic in seed). Only
// vertices whose degree is at most maxDegree are egonet-expanded; heavier
// samples are replaced by degree-only checks.
func Sampled(p *kron.Product, vertexSamples, edgeSamples int, maxDegree int64, seed uint64) (*Report, error) {
	if !p.IsSymmetric() {
		return nil, fmt.Errorf("verify: Sampled requires an undirected product")
	}
	r := &Report{}
	g := rng.New(seed)
	tc, err := kron.VertexParticipation(p)
	if err != nil {
		return nil, err
	}
	dc, err := kron.EdgeParticipation(p)
	if err != nil {
		return nil, err
	}
	n := p.NumVertices()

	vOK := true
	expanded := 0
	for s := 0; s < vertexSamples; s++ {
		v := g.Int64n(n)
		if p.OutDegreeRaw(v) > maxDegree {
			continue // degree formula is checked implicitly by Egonet elsewhere
		}
		expanded++
		if _, err := kron.VerifyEgonet(p, tc, v, maxDegree); err != nil {
			vOK = false
			break
		}
	}
	r.add(fmt.Sprintf("egonet spot checks (%d expanded)", expanded), vOK)

	// Edge checks: walk to a random neighbor of a random vertex and
	// recount Δ locally as |N(u) ∩ N(v)| via factor probes.
	eOK := true
	checked := 0
	for s := 0; s < edgeSamples; s++ {
		u := g.Int64n(n)
		du := p.OutDegreeRaw(u)
		if du == 0 || du > maxDegree {
			continue
		}
		nb := p.Neighbors(u)
		v := nb[g.Intn(len(nb))]
		if v == u || p.OutDegreeRaw(v) > maxDegree {
			continue
		}
		checked++
		// Δ_C(u,v) equals the number of common neighbors w ∉ {u, v}:
		// self loops never contribute to triangles.
		var common int64
		for _, w := range nb {
			if w != u && w != v && p.HasEdge(v, w) {
				common++
			}
		}
		if dc.At(u, v) != common {
			eOK = false
			break
		}
	}
	r.add(fmt.Sprintf("edge Δ spot checks (%d checked)", checked), eOK)
	return r, nil
}

// StreamCount is the structure-oblivious baseline: it consumes an
// arbitrary arc stream (as a callback-driven source), builds an explicit
// graph, and counts triangles with the direct engine. It never sees the
// factors — exactly the position of an implementation under test. Vertex
// ids must fit in [0, n).
func StreamCount(n int64, stream func(emit func(u, v int64) bool)) (*triangle.Result, error) {
	if n > (1<<31 - 1) {
		return nil, fmt.Errorf("verify: %d vertices exceed explicit limit", n)
	}
	var edges []graph.Edge
	var bad error
	stream(func(u, v int64) bool {
		if u < 0 || u >= n || v < 0 || v >= n {
			bad = fmt.Errorf("verify: arc (%d,%d) out of range", u, v)
			return false
		}
		edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
		return true
	})
	if bad != nil {
		return nil, bad
	}
	g := graph.FromEdges(int(n), edges, false)
	if !g.IsSymmetric() {
		// Oblivious counters treat the input as undirected; take the
		// symmetric closure like standard benchmark harnesses do.
		g = g.Undirected()
	}
	return triangle.Count(g), nil
}
