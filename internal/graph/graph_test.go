package graph

import (
	"testing"

	"kronvalid/internal/rng"
	"kronvalid/internal/sparse"
)

// triangleGraph is the 3-cycle (a single undirected triangle).
func triangleGraph() *Graph {
	return FromEdges(3, []Edge{{0, 1}, {1, 2}, {0, 2}}, true)
}

func TestFromEdgesBasics(t *testing.T) {
	g := triangleGraph()
	if g.NumVertices() != 3 || g.NumArcs() != 6 {
		t.Fatalf("triangle: n=%d arcs=%d", g.NumVertices(), g.NumArcs())
	}
	if !g.IsSymmetric() {
		t.Fatal("triangle not symmetric")
	}
	if g.NumEdgesUndirected() != 3 {
		t.Fatalf("triangle edges = %d", g.NumEdgesUndirected())
	}
	for v := int32(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 0) {
		t.Error("HasEdge wrong")
	}
}

func TestFromEdgesDeduplicates(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1}, {0, 1}, {1, 0}}, false)
	if g.NumArcs() != 2 {
		t.Fatalf("arcs = %d, want 2", g.NumArcs())
	}
}

func TestFromEdgesOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromEdges(2, []Edge{{0, 2}}, false)
}

func TestSelfLoopHandling(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 0}, {0, 1}}, true)
	if g.NumLoops() != 1 || !g.LoopAt(0) || g.LoopAt(1) {
		t.Fatal("loop bookkeeping wrong")
	}
	if g.Degree(0) != 1 { // paper's degree excludes the loop
		t.Errorf("Degree(0) = %d, want 1", g.Degree(0))
	}
	if g.OutDegreeRaw(0) != 2 {
		t.Errorf("OutDegreeRaw(0) = %d, want 2", g.OutDegreeRaw(0))
	}
	if g.NumEdgesUndirected() != 2 { // loop + one edge
		t.Errorf("edges = %d, want 2", g.NumEdgesUndirected())
	}
	if !g.HasAnyLoop() {
		t.Error("HasAnyLoop false")
	}
}

func TestWithoutWithLoops(t *testing.T) {
	g := triangleGraph()
	gl := g.WithAllLoops()
	if gl.NumLoops() != 3 {
		t.Fatalf("WithAllLoops loops = %d", gl.NumLoops())
	}
	if !gl.IsSymmetric() {
		t.Fatal("WithAllLoops broke symmetry")
	}
	back := gl.WithoutLoops()
	if !back.Equal(g) {
		t.Fatal("WithoutLoops(WithAllLoops(g)) != g")
	}
	// Idempotence: adding loops twice is the same as once.
	if !gl.WithAllLoops().Equal(gl) {
		t.Fatal("WithAllLoops not idempotent")
	}
	// Degrees unchanged by loop insertion (paper's degree excludes loops).
	if !sparse.EqualVec(g.Degrees(), gl.Degrees()) {
		t.Fatal("Degrees changed by adding loops")
	}
}

func TestSparseRoundTrip(t *testing.T) {
	g := rng.New(41)
	for trial := 0; trial < 20; trial++ {
		n := 1 + g.Intn(30)
		var edges []Edge
		for i := 0; i < n*2; i++ {
			edges = append(edges, Edge{int32(g.Intn(n)), int32(g.Intn(n))})
		}
		gr := FromEdges(n, edges, trial%2 == 0)
		back := FromSparse(gr.ToSparse())
		if !gr.Equal(back) {
			t.Fatal("sparse round trip failed")
		}
	}
}

func TestTranspose(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1}, {1, 2}, {3, 0}, {2, 2}}, false)
	gt := g.Transpose()
	if !gt.HasEdge(1, 0) || !gt.HasEdge(2, 1) || !gt.HasEdge(0, 3) || !gt.HasEdge(2, 2) {
		t.Fatal("Transpose edges wrong")
	}
	if gt.NumArcs() != g.NumArcs() {
		t.Fatal("Transpose changed arc count")
	}
	if !g.Transpose().Transpose().Equal(g) {
		t.Fatal("double transpose != original")
	}
	// Matches sparse transpose.
	if !gt.ToSparse().Equal(g.ToSparse().T()) {
		t.Fatal("Transpose disagrees with sparse T")
	}
}

func TestReciprocalDirectedDecomposition(t *testing.T) {
	// 0<->1 reciprocal, 1->2 directed, 2->0 directed, loop at 3.
	g := FromEdges(4, []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 0}, {3, 3}}, false)
	ar := g.ReciprocalPart()
	ad := g.DirectedPart()
	if !ar.HasEdge(0, 1) || !ar.HasEdge(1, 0) || !ar.HasEdge(3, 3) {
		t.Error("reciprocal part wrong")
	}
	if ar.NumArcs() != 3 {
		t.Errorf("reciprocal arcs = %d, want 3", ar.NumArcs())
	}
	if !ad.HasEdge(1, 2) || !ad.HasEdge(2, 0) || ad.NumArcs() != 2 {
		t.Error("directed part wrong")
	}
	// A = A_r + A_d as matrices.
	sum := ar.ToSparse().Add(ad.ToSparse())
	if !sum.Equal(g.ToSparse()) {
		t.Error("A_r + A_d != A")
	}
	// A_r is symmetric; A_d has no reciprocal pair.
	if !ar.IsSymmetric() {
		t.Error("A_r not symmetric")
	}
	if !ad.ReciprocalPart().ToSparse().IsZero() {
		t.Error("A_d contains reciprocal arcs")
	}
	// Matches the matrix definition A_r = A^t ∘ A.
	m := g.ToSparse()
	if !ar.ToSparse().Equal(m.T().Hadamard(m)) {
		t.Error("A_r != A^t ∘ A")
	}
}

func TestUndirected(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}}, false)
	u := g.Undirected()
	if !u.IsSymmetric() || u.NumArcs() != 4 {
		t.Fatalf("Undirected wrong: %v", u)
	}
	// A_u = A + A_d^t (Def. 9).
	m := g.ToSparse()
	au := m.Add(g.DirectedPart().ToSparse().T())
	if !u.ToSparse().Equal(au) {
		t.Error("A_u != A + A_d^t")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}}, true)
	sub, ids := g.InducedSubgraph([]int32{0, 1, 2})
	if sub.NumVertices() != 3 {
		t.Fatalf("sub n = %d", sub.NumVertices())
	}
	if len(ids) != 3 || ids[0] != 0 {
		t.Fatalf("ids = %v", ids)
	}
	// Triangle 0-1-2 should survive intact.
	if sub.NumEdgesUndirected() != 3 {
		t.Errorf("sub edges = %d, want 3", sub.NumEdgesUndirected())
	}
}

func TestInducedSubgraphDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	triangleGraph().InducedSubgraph([]int32{0, 0})
}

func TestConnectedComponents(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 1}, {1, 2}, {3, 4}}, true)
	comp, n := g.ConnectedComponents()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Error("3,4 should share a separate component")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Error("5 should be isolated in its own component")
	}
}

func TestConnectedComponentsDirectedTreatedUndirected(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {2, 1}}, false)
	_, n := g.ConnectedComponents()
	if n != 1 {
		t.Fatalf("weak components = %d, want 1", n)
	}
}

func TestLabels(t *testing.T) {
	g := triangleGraph().WithLabels([]int32{0, 1, 2}, 3)
	if !g.IsLabeled() || g.NumLabels() != 3 {
		t.Fatal("labeling lost")
	}
	if g.Label(1) != 1 {
		t.Errorf("Label(1) = %d", g.Label(1))
	}
	counts := g.LabelCounts()
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 {
		t.Errorf("LabelCounts = %v", counts)
	}
	// Filters are orthogonal diagonal projections summing to I.
	sum := g.LabelFilter(0).Add(g.LabelFilter(1)).Add(g.LabelFilter(2))
	if !sum.Equal(sparse.Identity(3)) {
		t.Error("sum of label filters != I")
	}
	if g.LabelFilter(0).Mul(g.LabelFilter(1)).NNZ() != 0 {
		t.Error("filters not orthogonal")
	}
	// Labels survive transforms.
	if !g.WithAllLoops().IsLabeled() || !g.Transpose().IsLabeled() {
		t.Error("labels dropped by transform")
	}
	if g.Unlabeled().IsLabeled() {
		t.Error("Unlabeled kept labels")
	}
}

func TestWithLabelsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad label")
		}
	}()
	triangleGraph().WithLabels([]int32{0, 1, 5}, 3)
}

func TestEachEdgeUndirected(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}, {2, 2}}, true)
	var got []Edge
	g.EachEdgeUndirected(func(u, v int32) bool {
		got = append(got, Edge{u, v})
		return true
	})
	want := []Edge{{0, 1}, {1, 2}, {2, 2}}
	if len(got) != len(want) {
		t.Fatalf("edges = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edges = %v, want %v", got, want)
		}
	}
}

func TestWithLoopAt(t *testing.T) {
	g := triangleGraph()
	gl := g.WithLoopAt(1)
	if !gl.LoopAt(1) || gl.NumLoops() != 1 {
		t.Fatal("loop not added")
	}
	if gl.Degree(1) != g.Degree(1) {
		t.Error("loop changed paper-degree")
	}
	if !gl.IsSymmetric() {
		t.Error("loop broke symmetry")
	}
	// Idempotent.
	if !gl.WithLoopAt(1).Equal(gl) {
		t.Error("WithLoopAt not idempotent")
	}
	// Labels preserved.
	lab := g.WithLabels([]int32{0, 1, 2}, 3).WithLoopAt(0)
	if !lab.IsLabeled() || lab.Label(2) != 2 {
		t.Error("labels lost")
	}
}
