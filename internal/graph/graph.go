// Package graph provides the in-memory graph representation used for the
// Kronecker *factors*: compressed adjacency with sorted neighbor lists,
// supporting directed and undirected graphs, self loops, and vertex
// labels. Product graphs (C = A ⊗ B) are never represented with this
// package — they stay implicit in package kron — so vertex ids here fit
// int32 while product ids are int64.
//
// Conventions:
//   - Adjacency is directed at the representation level: Neighbors(u)
//     are the out-neighbors of u. An undirected graph stores both (u,v)
//     and (v,u); IsSymmetric reports whether that invariant holds.
//   - A self loop is a single arc (v, v).
//   - Degree(v) follows the paper's d_A = (A - I∘A)·1: out-degree
//     excluding the self loop. LoopAt reports the loop separately.
package graph

import (
	"fmt"
	"sort"

	"kronvalid/internal/sparse"
)

// Graph is an immutable compressed sparse adjacency structure. Build one
// with a Builder, FromEdges, FromSparse, or a generator in package gen.
type Graph struct {
	n       int
	offsets []int64 // len n+1
	nbrs    []int32 // sorted within each vertex's slice, no duplicates
	labels  []int32 // nil if unlabeled; else len n, values in [0, numLabels)
	nLabels int
}

// Edge is a directed arc (or one direction of an undirected edge).
type Edge struct {
	U, V int32
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumArcs returns the number of stored directed arcs (nnz of the
// adjacency matrix). For a symmetric graph each non-loop edge contributes
// two arcs; a self loop contributes one.
func (g *Graph) NumArcs() int64 { return int64(len(g.nbrs)) }

// NumLoops returns the number of self loops.
func (g *Graph) NumLoops() int64 {
	var loops int64
	for v := 0; v < g.n; v++ {
		if g.LoopAt(int32(v)) {
			loops++
		}
	}
	return loops
}

// NumEdgesUndirected returns the number of undirected edges, counting each
// symmetric pair once and each self loop once. It panics if the graph is
// not symmetric.
func (g *Graph) NumEdgesUndirected() int64 {
	if !g.IsSymmetric() {
		panic("graph: NumEdgesUndirected on a non-symmetric graph")
	}
	loops := g.NumLoops()
	return (g.NumArcs()-loops)/2 + loops
}

// Neighbors returns the sorted out-neighbors of v. The slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.nbrs[g.offsets[v]:g.offsets[v+1]]
}

// ArcOffset returns the index into the flattened arc array at which v's
// neighbor slice begins. Together with EachArc's ordering this lets
// callers maintain per-arc side arrays aligned with adjacency storage.
func (g *Graph) ArcOffset(v int32) int64 { return g.offsets[v] }

// OutDegreeRaw returns the raw out-degree of v including a self loop.
func (g *Graph) OutDegreeRaw(v int32) int64 {
	return g.offsets[v+1] - g.offsets[v]
}

// Degree returns the paper's degree d_A(v): out-degree excluding the self
// loop.
func (g *Graph) Degree(v int32) int64 {
	d := g.OutDegreeRaw(v)
	if g.LoopAt(v) {
		d--
	}
	return d
}

// Degrees returns the degree vector d_A = (A - I∘A)·1.
func (g *Graph) Degrees() []int64 {
	d := make([]int64, g.n)
	for v := 0; v < g.n; v++ {
		d[v] = g.Degree(int32(v))
	}
	return d
}

// HasEdge reports whether arc (u, v) exists, by binary search.
func (g *Graph) HasEdge(u, v int32) bool {
	return g.ArcIndex(u, v) >= 0
}

// ArcIndex returns the index of arc (u, v) in the flattened arc array
// (the position EachArc visits it at), or -1 if the arc does not exist.
// It lets per-arc side arrays (supports, census counts) be plain slices
// aligned with adjacency storage instead of maps.
func (g *Graph) ArcIndex(u, v int32) int64 {
	nb := g.Neighbors(u)
	k := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	if k < len(nb) && nb[k] == v {
		return g.offsets[u] + int64(k)
	}
	return -1
}

// LoopAt reports whether v has a self loop.
func (g *Graph) LoopAt(v int32) bool { return g.HasEdge(v, v) }

// HasAnyLoop reports whether any vertex has a self loop.
func (g *Graph) HasAnyLoop() bool {
	for v := 0; v < g.n; v++ {
		if g.LoopAt(int32(v)) {
			return true
		}
	}
	return false
}

// IsSymmetric reports whether every arc (u,v) has a reverse arc (v,u),
// i.e. the graph is undirected.
func (g *Graph) IsSymmetric() bool {
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if !g.HasEdge(v, int32(u)) {
				return false
			}
		}
	}
	return true
}

// EachArc calls fn for every stored arc (u, v) in sorted order, stopping
// early if fn returns false.
func (g *Graph) EachArc(fn func(u, v int32) bool) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if !fn(int32(u), v) {
				return
			}
		}
	}
}

// EachEdgeUndirected calls fn once per undirected edge with u <= v.
// It panics if the graph is not symmetric.
func (g *Graph) EachEdgeUndirected(fn func(u, v int32) bool) {
	if !g.IsSymmetric() {
		panic("graph: EachEdgeUndirected on a non-symmetric graph")
	}
	g.EachArc(func(u, v int32) bool {
		if u <= v {
			return fn(u, v)
		}
		return true
	})
}

// Arcs returns all arcs as a slice.
func (g *Graph) Arcs() []Edge {
	out := make([]Edge, 0, g.NumArcs())
	g.EachArc(func(u, v int32) bool {
		out = append(out, Edge{u, v})
		return true
	})
	return out
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	out := &Graph{
		n:       g.n,
		offsets: append([]int64(nil), g.offsets...),
		nbrs:    append([]int32(nil), g.nbrs...),
		nLabels: g.nLabels,
	}
	if g.labels != nil {
		out.labels = append([]int32(nil), g.labels...)
	}
	return out
}

// Equal reports whether two graphs have identical vertex counts,
// adjacency, and labels.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || len(g.nbrs) != len(h.nbrs) || g.nLabels != h.nLabels {
		return false
	}
	for i := range g.offsets {
		if g.offsets[i] != h.offsets[i] {
			return false
		}
	}
	for i := range g.nbrs {
		if g.nbrs[i] != h.nbrs[i] {
			return false
		}
	}
	if (g.labels == nil) != (h.labels == nil) {
		return false
	}
	for i := range g.labels {
		if g.labels[i] != h.labels[i] {
			return false
		}
	}
	return true
}

// String summarizes the graph.
func (g *Graph) String() string {
	kind := "directed"
	if g.IsSymmetric() {
		kind = "undirected"
	}
	return fmt.Sprintf("graph.Graph{%s, n=%d, arcs=%d, loops=%d, labels=%d}",
		kind, g.n, g.NumArcs(), g.NumLoops(), g.nLabels)
}

// FromEdges builds a graph on n vertices from directed arcs, removing
// duplicates. If symmetrize is true each arc is mirrored, yielding an
// undirected graph.
func FromEdges(n int, edges []Edge, symmetrize bool) *Graph {
	for _, e := range edges {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", e.U, e.V, n))
		}
	}
	all := append([]Edge(nil), edges...)
	if symmetrize {
		for _, e := range edges {
			if e.U != e.V {
				all = append(all, Edge{e.V, e.U})
			}
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].U != all[b].U {
			return all[a].U < all[b].U
		}
		return all[a].V < all[b].V
	})
	offsets := make([]int64, n+1)
	nbrs := make([]int32, 0, len(all))
	var prev Edge = Edge{-1, -1}
	for _, e := range all {
		if e == prev {
			continue
		}
		prev = e
		nbrs = append(nbrs, e.V)
		offsets[e.U+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	return &Graph{n: n, offsets: offsets, nbrs: nbrs}
}

// FromCSR builds a graph directly from compressed-sparse-row arrays,
// taking ownership of both slices: offsets has len n+1 with
// offsets[0] == 0 and ends at len(nbrs); every row of nbrs must be
// strictly increasing in [0, n). This is the O(n + m) ingestion path for
// adjacency that is already in canonical order (for example the batched
// product edge stream), where FromEdges' sort and dedup would be wasted
// work. It panics on malformed input — callers hold the invariant.
func FromCSR(offsets []int64, nbrs []int32) *Graph {
	if len(offsets) == 0 || offsets[0] != 0 {
		panic("graph: FromCSR offsets must start at 0")
	}
	n := len(offsets) - 1
	if offsets[n] != int64(len(nbrs)) {
		panic("graph: FromCSR offsets do not cover the arc array")
	}
	for v := 0; v < n; v++ {
		if offsets[v] > offsets[v+1] {
			panic("graph: FromCSR offsets not monotone")
		}
		row := nbrs[offsets[v]:offsets[v+1]]
		for i, w := range row {
			if w < 0 || int(w) >= n || (i > 0 && row[i-1] >= w) {
				panic(fmt.Sprintf("graph: FromCSR row %d not strictly increasing in [0,%d)", v, n))
			}
		}
	}
	return &Graph{n: n, offsets: offsets, nbrs: nbrs}
}

// FromSparse converts a square 0/1 sparse matrix to a Graph. Values must
// be exactly 1 (use Binarize first otherwise).
func FromSparse(m *sparse.Matrix) *Graph {
	if !m.IsSquare() {
		panic("graph: FromSparse needs a square matrix")
	}
	if !m.IsBinary() {
		panic("graph: FromSparse needs a 0/1 matrix")
	}
	n := m.Rows()
	offsets := make([]int64, n+1)
	nbrs := make([]int32, 0, m.NNZ())
	for r := 0; r < n; r++ {
		cols, _ := m.Row(r)
		nbrs = append(nbrs, cols...)
		offsets[r+1] = int64(len(nbrs))
	}
	return &Graph{n: n, offsets: offsets, nbrs: nbrs}
}

// ToSparse converts the adjacency to a 0/1 sparse matrix.
func (g *Graph) ToSparse() *sparse.Matrix {
	rowPtr := append([]int64(nil), g.offsets...)
	colIdx := append([]int32(nil), g.nbrs...)
	val := make([]int64, len(colIdx))
	for i := range val {
		val[i] = 1
	}
	return sparse.NewCSR(g.n, g.n, rowPtr, colIdx, val)
}
