package graph

import (
	"fmt"

	"kronvalid/internal/sparse"
)

// IsLabeled reports whether the graph carries vertex labels.
func (g *Graph) IsLabeled() bool { return g.labels != nil }

// NumLabels returns the size of the label set |L| (0 if unlabeled).
func (g *Graph) NumLabels() int { return g.nLabels }

// Label returns the label (color) of v. Panics if unlabeled.
func (g *Graph) Label(v int32) int32 {
	if g.labels == nil {
		panic("graph: Label on unlabeled graph")
	}
	return g.labels[v]
}

// Labels returns a copy of the label vector, or nil if unlabeled.
func (g *Graph) Labels() []int32 {
	if g.labels == nil {
		return nil
	}
	return append([]int32(nil), g.labels...)
}

// WithLabels returns a copy of g carrying the given labels. labels must
// have length NumVertices with values in [0, numLabels).
func (g *Graph) WithLabels(labels []int32, numLabels int) *Graph {
	if len(labels) != g.n {
		panic(fmt.Sprintf("graph: WithLabels length %d, want %d", len(labels), g.n))
	}
	for v, l := range labels {
		if l < 0 || int(l) >= numLabels {
			panic(fmt.Sprintf("graph: label %d at vertex %d out of range [0,%d)", l, v, numLabels))
		}
	}
	out := g.Clone()
	out.labels = append([]int32(nil), labels...)
	out.nLabels = numLabels
	return out
}

// Unlabeled returns a copy of g with labels stripped.
func (g *Graph) Unlabeled() *Graph {
	out := g.Clone()
	out.labels = nil
	out.nLabels = 0
	return out
}

// LabelFilter returns the paper's projection Π_{A,q} (Def. 12): the
// diagonal 0/1 matrix selecting vertices with label q.
func (g *Graph) LabelFilter(q int32) *sparse.Matrix {
	if g.labels == nil {
		panic("graph: LabelFilter on unlabeled graph")
	}
	d := make([]int64, g.n)
	for v, l := range g.labels {
		if l == q {
			d[v] = 1
		}
	}
	return sparse.DiagMatrix(d)
}

// LabelCounts returns how many vertices carry each label.
func (g *Graph) LabelCounts() []int64 {
	counts := make([]int64, g.nLabels)
	for _, l := range g.labels {
		counts[l]++
	}
	return counts
}
