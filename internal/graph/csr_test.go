package graph

import "testing"

func TestFromCSRMatchesFromEdges(t *testing.T) {
	edges := []Edge{{U: 0, V: 1}, {U: 0, V: 3}, {U: 2, V: 0}, {U: 2, V: 2}, {U: 3, V: 1}}
	want := FromEdges(4, edges, false)
	got := FromCSR([]int64{0, 2, 2, 4, 5}, []int32{1, 3, 0, 2, 1})
	if !got.Equal(want) {
		t.Fatalf("FromCSR = %v, want %v", got, want)
	}
}

func TestFromCSRPanicsOnMalformed(t *testing.T) {
	cases := []struct {
		name    string
		offsets []int64
		nbrs    []int32
	}{
		{"short offsets", []int64{0, 1}, []int32{0, 1}},
		{"nonzero start", []int64{1, 2}, []int32{0, 0}},
		{"non-monotone", []int64{0, 2, 1}, []int32{0, 1}},
		{"unsorted row", []int64{0, 2}, []int32{1, 0}},
		{"duplicate", []int64{0, 2}, []int32{0, 0}},
		{"out of range", []int64{0, 1}, []int32{5}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: FromCSR did not panic", c.name)
				}
			}()
			FromCSR(c.offsets, c.nbrs)
		}()
	}
}

func TestArcIndex(t *testing.T) {
	g := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 0, V: 3}, {U: 2, V: 0}, {U: 3, V: 1}}, false)
	wantIdx := map[[2]int32]int64{{0, 1}: 0, {0, 3}: 1, {2, 0}: 2, {3, 1}: 3}
	idx := int64(0)
	g.EachArc(func(u, v int32) bool {
		if got := g.ArcIndex(u, v); got != idx || got != wantIdx[[2]int32{u, v}] {
			t.Fatalf("ArcIndex(%d,%d) = %d, want %d", u, v, got, idx)
		}
		idx++
		return true
	})
	if g.ArcIndex(1, 0) != -1 || g.ArcIndex(0, 2) != -1 {
		t.Fatal("ArcIndex of a missing arc should be -1")
	}
}
