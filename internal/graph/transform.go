package graph

// Transpose returns the graph with every arc reversed.
func (g *Graph) Transpose() *Graph {
	offsets := make([]int64, g.n+1)
	for _, v := range g.nbrs {
		offsets[v+1]++
	}
	for v := 0; v < g.n; v++ {
		offsets[v+1] += offsets[v]
	}
	nbrs := make([]int32, len(g.nbrs))
	next := append([]int64(nil), offsets...)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			nbrs[next[v]] = int32(u)
			next[v]++
		}
	}
	out := &Graph{n: g.n, offsets: offsets, nbrs: nbrs, nLabels: g.nLabels}
	if g.labels != nil {
		out.labels = append([]int32(nil), g.labels...)
	}
	return out
}

// WithoutLoops returns a copy with all self loops removed
// (the paper's A - I∘A).
func (g *Graph) WithoutLoops() *Graph {
	offsets := make([]int64, g.n+1)
	nbrs := make([]int32, 0, len(g.nbrs))
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if v != int32(u) {
				nbrs = append(nbrs, v)
			}
		}
		offsets[u+1] = int64(len(nbrs))
	}
	out := &Graph{n: g.n, offsets: offsets, nbrs: nbrs, nLabels: g.nLabels}
	if g.labels != nil {
		out.labels = append([]int32(nil), g.labels...)
	}
	return out
}

// WithAllLoops returns a copy with a self loop added at every vertex
// (the paper's B = A + I construction from Section VI).
func (g *Graph) WithAllLoops() *Graph {
	offsets := make([]int64, g.n+1)
	nbrs := make([]int32, 0, len(g.nbrs)+g.n)
	for u := 0; u < g.n; u++ {
		inserted := false
		for _, v := range g.Neighbors(int32(u)) {
			if !inserted && v >= int32(u) {
				if v != int32(u) {
					nbrs = append(nbrs, int32(u))
				}
				inserted = true
			}
			nbrs = append(nbrs, v)
		}
		if !inserted {
			nbrs = append(nbrs, int32(u))
		}
		offsets[u+1] = int64(len(nbrs))
	}
	out := &Graph{n: g.n, offsets: offsets, nbrs: nbrs, nLabels: g.nLabels}
	if g.labels != nil {
		out.labels = append([]int32(nil), g.labels...)
	}
	return out
}

// WithLoopAt returns a copy with a self loop added at vertex v (a no-op
// if one exists). This is the unit step of the paper's Rem. 1 tuning
// knob: a loop at factor-B vertex k boosts the triangle counts of every
// product vertex in block k by Cor. 1's diag(B³) increment.
func (g *Graph) WithLoopAt(v int32) *Graph {
	if g.LoopAt(v) {
		return g.Clone()
	}
	all := append(g.Arcs(), Edge{U: v, V: v})
	out := FromEdges(g.n, all, false)
	out.nLabels = g.nLabels
	if g.labels != nil {
		out.labels = append([]int32(nil), g.labels...)
	}
	return out
}

// Undirected returns the undirected version A_u = A + A_d^t (Def. 9): the
// symmetric closure of the graph.
func (g *Graph) Undirected() *Graph {
	edges := g.Arcs()
	out := FromEdges(g.n, edges, true)
	out.nLabels = g.nLabels
	if g.labels != nil {
		out.labels = append([]int32(nil), g.labels...)
	}
	return out
}

// ReciprocalPart returns A_r = A^t ∘ A: arcs (u,v) whose reverse also
// exists (Def. 9). Self loops are their own reverse and are retained.
func (g *Graph) ReciprocalPart() *Graph {
	offsets := make([]int64, g.n+1)
	nbrs := make([]int32, 0, len(g.nbrs))
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if g.HasEdge(v, int32(u)) {
				nbrs = append(nbrs, v)
			}
		}
		offsets[u+1] = int64(len(nbrs))
	}
	out := &Graph{n: g.n, offsets: offsets, nbrs: nbrs, nLabels: g.nLabels}
	if g.labels != nil {
		out.labels = append([]int32(nil), g.labels...)
	}
	return out
}

// DirectedPart returns A_d = A - A_r: arcs with no reverse (Def. 9).
func (g *Graph) DirectedPart() *Graph {
	offsets := make([]int64, g.n+1)
	nbrs := make([]int32, 0, len(g.nbrs))
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if !g.HasEdge(v, int32(u)) {
				nbrs = append(nbrs, v)
			}
		}
		offsets[u+1] = int64(len(nbrs))
	}
	out := &Graph{n: g.n, offsets: offsets, nbrs: nbrs, nLabels: g.nLabels}
	if g.labels != nil {
		out.labels = append([]int32(nil), g.labels...)
	}
	return out
}

// InducedSubgraph returns the subgraph induced by the given vertices,
// renumbered 0..len(vs)-1 in the given order, plus the mapping back to
// original ids. Duplicate vertices in vs are rejected.
func (g *Graph) InducedSubgraph(vs []int32) (*Graph, []int32) {
	idx := make(map[int32]int32, len(vs))
	for i, v := range vs {
		if _, dup := idx[v]; dup {
			panic("graph: InducedSubgraph with duplicate vertex")
		}
		idx[v] = int32(i)
	}
	var edges []Edge
	for _, u := range vs {
		for _, v := range g.Neighbors(u) {
			if j, ok := idx[v]; ok {
				edges = append(edges, Edge{idx[u], j})
			}
		}
	}
	sub := FromEdges(len(vs), edges, false)
	if g.labels != nil {
		sub.nLabels = g.nLabels
		sub.labels = make([]int32, len(vs))
		for i, v := range vs {
			sub.labels[i] = g.labels[v]
		}
	}
	return sub, append([]int32(nil), vs...)
}

// ConnectedComponents returns a component id per vertex (treating arcs as
// undirected) and the number of components.
func (g *Graph) ConnectedComponents() ([]int32, int) {
	comp := make([]int32, g.n)
	for i := range comp {
		comp[i] = -1
	}
	u := g
	if !g.IsSymmetric() {
		u = g.Undirected()
	}
	var stack []int32
	next := int32(0)
	for s := 0; s < u.n; s++ {
		if comp[s] != -1 {
			continue
		}
		stack = append(stack[:0], int32(s))
		comp[s] = next
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range u.Neighbors(v) {
				if comp[w] == -1 {
					comp[w] = next
					stack = append(stack, w)
				}
			}
		}
		next++
	}
	return comp, int(next)
}
