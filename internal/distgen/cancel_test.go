package distgen

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kronvalid/internal/model"
)

// TestWriteShardedErrorCarriesShardIndex pins that a shard file that
// cannot be created surfaces the failing shard's index in the returned
// error: a pre-existing directory squats on shard 2's file name, so
// os.Create fails for exactly that shard.
func TestWriteShardedErrorCarriesShardIndex(t *testing.T) {
	g, err := model.New("er:n=400,p=0.03,seed=9,chunks=8")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	squat := filepath.Join(dir, ShardFileName(2, false))
	if err := os.MkdirAll(squat, 0o755); err != nil {
		t.Fatal(err)
	}
	_, werr := WriteShardedSource(dir, model.NewPlan(g, 4), Manifest{Model: g.Name()}, WriteOptions{})
	if werr == nil {
		t.Fatal("write over a squatted shard path succeeded")
	}
	if !strings.Contains(werr.Error(), "shard 2") {
		t.Fatalf("error %q does not name the failing shard", werr)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); !os.IsNotExist(err) {
		t.Fatalf("manifest exists after failed write (stat err: %v)", err)
	}
}

// TestWriteShardedCancelLeavesNoManifest cancels a sharded write
// mid-stream: the call must return ctx.Err() and the directory must not
// contain a manifest.json — the commit marker readers require — so the
// partial output cannot be mistaken for a complete stream.
func TestWriteShardedCancelLeavesNoManifest(t *testing.T) {
	g, err := model.New("er:n=3000,p=0.02,seed=7,chunks=16")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var calls int64
	_, werr := WriteShardedSourceContext(ctx, dir, model.NewPlan(g, 4), Manifest{Model: g.Name()},
		WriteOptions{BatchSize: 64, Progress: func(arcs, shards int64) {
			calls++
			if calls == 3 {
				cancel()
			}
		}})
	if !errors.Is(werr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", werr)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); !os.IsNotExist(err) {
		t.Fatalf("manifest exists after cancelled write (stat err: %v)", err)
	}
	// A rerun into the same directory must recover: full manifest, full
	// stream, stale bytes overwritten.
	m, err := WriteShardedSource(dir, model.NewPlan(g, 4), Manifest{Model: g.Name()}, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalArcs <= 0 {
		t.Fatalf("recovery run wrote %d arcs", m.TotalArcs)
	}
}

// TestManifestCarriesSourceAndExtra pins the uniform Source identity and
// the Extra annotation round trip through the manifest.
func TestManifestCarriesSourceAndExtra(t *testing.T) {
	g, err := model.New("er:n=200,p=0.05,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pl := model.NewPlan(g, 2)
	m, err := WriteShardedSource(dir, pl,
		Manifest{Model: g.Name(), Extra: map[string]string{"experiment": "e1"}}, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Source != g.Name() {
		t.Errorf("manifest source = %q, want %q", m.Source, g.Name())
	}
	back, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Source != g.Name() || back.Extra["experiment"] != "e1" {
		t.Errorf("re-read manifest lost source/extra: %+v", back)
	}
}

// TestKronPlanSourceContract pins the kron plan's Source-side methods:
// a stable digest-bearing Name and vertex ranges that tile the product's
// id space in order.
func TestKronPlanSourceContract(t *testing.T) {
	pl, p := plan(t, 3)
	if pl.Name() == "" || !strings.HasPrefix(pl.Name(), "kron(a=") {
		t.Errorf("kron plan name = %q", pl.Name())
	}
	var prev int64
	for w := 0; w < pl.Shards(); w++ {
		lo, hi := pl.VertexRange(w)
		if lo != prev || hi < lo {
			t.Fatalf("shard %d vertex range [%d,%d) does not continue from %d", w, lo, hi, prev)
		}
		prev = hi
	}
	if prev != p.NumVertices() {
		t.Fatalf("vertex ranges end at %d, product has %d vertices", prev, p.NumVertices())
	}
}
