package distgen

import (
	"kronvalid/internal/csr"
	"kronvalid/internal/stream"
)

// CSRSource adapts the plan to the two-pass CSR builder's contract. The
// A-row-block partition already guarantees what the builder needs: shard
// w emits exactly the product arcs whose source vertex lies in
// [loA·n_B, hiA·n_B), ranges are disjoint across shards, and any shard
// can be regenerated at any time — so both builder passes replay the
// same bytes and never contend on a row.
func (pl *Plan) CSRSource() csr.Source {
	return csr.Source{
		NumVertices: pl.p.NumVertices(),
		NumArcs:     pl.TotalArcs(),
		Shards:      pl.workers,
		VertexRange: pl.VertexRange,
		Generate:    pl.EachShardBatch,
	}
}

// BuildCSR materializes the product adjacency as a CSR graph with the
// parallel two-pass builder (count → prefix-sum → scatter), regenerating
// each shard twice from the factors instead of ever buffering an edge
// list. The result is identical for every worker count.
func (pl *Plan) BuildCSR(opts stream.Options) (*csr.Graph, error) {
	return csr.Build(pl.CSRSource(), opts)
}
