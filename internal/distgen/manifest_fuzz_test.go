package distgen

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzDecodeManifest feeds arbitrary bytes to the shard-manifest reader:
// it must parse-and-validate or reject, never panic, and any accepted
// manifest must survive an encode → decode round trip unchanged —
// matching the fuzz smoke pattern of the gio arc readers.
func FuzzDecodeManifest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"format":"tsv","vertices":10,"total_arcs":0,"workers":0}`))
	f.Add([]byte(`{"format":"binary","model":"er:n=10,p=0.5,seed=1,chunks=4","vertices":10,"total_arcs":3,"workers":1,"shards":[{"index":0,"file":"shard-000.bin","arcs":3}]}`))
	f.Add([]byte(`{"format":"tsv","vertices":10,"total_arcs":5,"workers":2,"shards":[{"index":0,"file":"a","arcs":2},{"index":1,"file":"b","arcs":2}]}`))
	f.Add([]byte(`{"format":"tsv","vertices":-1,"total_arcs":0,"workers":0}`))
	f.Add([]byte(`{"format":"tsv","vertices":1,"total_arcs":1,"workers":1,"shards":[{"index":0,"file":"../x","arcs":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("DecodeManifest accepted a manifest Validate rejects: %v", verr)
		}
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-encoding accepted manifest: %v", err)
		}
		back, err := DecodeManifest(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Format != m.Format || back.Model != m.Model ||
			back.FactorADigest != m.FactorADigest || back.FactorBDigest != m.FactorBDigest ||
			back.Vertices != m.Vertices || back.TotalArcs != m.TotalArcs ||
			back.Workers != m.Workers || len(back.Shards) != len(m.Shards) {
			t.Fatal("round trip changed manifest fields")
		}
		for i := range m.Shards {
			if back.Shards[i] != m.Shards[i] {
				t.Fatalf("round trip changed shard %d", i)
			}
		}
	})
}

func TestManifestValidateRejects(t *testing.T) {
	valid := func() *Manifest {
		return &Manifest{
			Format:    "tsv",
			Model:     "kron",
			Vertices:  10,
			TotalArcs: 5,
			Workers:   2,
			Shards: []ShardInfo{
				{Index: 0, File: "shard-000.tsv", Arcs: 2},
				{Index: 1, File: "shard-001.tsv", Arcs: 3},
			},
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	cases := map[string]func(*Manifest){
		"bad format":        func(m *Manifest) { m.Format = "xml" },
		"negative vertices": func(m *Manifest) { m.Vertices = -1 },
		"negative total":    func(m *Manifest) { m.TotalArcs = -1 },
		"workers mismatch":  func(m *Manifest) { m.Workers = 3 },
		"index gap":         func(m *Manifest) { m.Shards[1].Index = 2 },
		"negative arcs":     func(m *Manifest) { m.Shards[0].Arcs = -1 },
		"empty file":        func(m *Manifest) { m.Shards[0].File = "" },
		"path escape":       func(m *Manifest) { m.Shards[0].File = "../../etc/passwd" },
		"sum mismatch":      func(m *Manifest) { m.TotalArcs = 99 },
	}
	for name, mutate := range cases {
		m := valid()
		mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted", name)
		}
	}
}

func TestDecodeManifestRejectsCorrupt(t *testing.T) {
	for _, in := range []string{
		``,
		`garbage`,
		`{"format":"tsv","vertices":5,"total_arcs":2,"workers":1,"shards":[{"index":0,"file":"s","arcs":1}]}`, // sum != total
		`{"format":"","vertices":5,"total_arcs":0,"workers":0}`,
	} {
		if _, err := DecodeManifest(strings.NewReader(in)); err == nil {
			t.Errorf("corrupt manifest accepted: %q", in)
		}
	}
}
