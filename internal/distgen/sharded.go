package distgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"kronvalid/internal/gio"
	"kronvalid/internal/stream"
)

// ManifestName is the filename of the shard manifest inside an output
// directory.
const ManifestName = "manifest.json"

// ShardInfo records one shard file of a sharded generation run.
type ShardInfo struct {
	Index int    `json:"index"`
	File  string `json:"file"`
	Arcs  int64  `json:"arcs"`
}

// Manifest describes a sharded edge-list directory: which factors the
// product was generated from (by structural digest), how it was
// partitioned, and exactly what each shard file contains. Because
// generation is deterministic, the manifest plus the factors fully
// reproduce every byte of every shard — and concatenating the shard files
// in index order reproduces the serial EachArc stream for any worker
// count.
type Manifest struct {
	Format        string      `json:"format"` // "tsv" or "binary"
	FactorADigest string      `json:"factor_a_digest"`
	FactorBDigest string      `json:"factor_b_digest"`
	Vertices      int64       `json:"vertices"`
	TotalArcs     int64       `json:"total_arcs"`
	Workers       int         `json:"workers"`
	Shards        []ShardInfo `json:"shards"`
}

// WriteOptions configures WriteSharded.
type WriteOptions struct {
	// Binary selects the 16-byte little-endian arc format instead of TSV.
	Binary bool
	// Workers bounds how many shard files are written concurrently
	// (0 = GOMAXPROCS). It does not affect the partition, which is fixed
	// by the Plan.
	Workers int
	// BatchSize is the arcs-per-batch of the pipeline (0 = default).
	BatchSize int
}

// closableSink pairs a stream sink with the file it writes so the driver
// closes the file after the final flush.
type closableSink struct {
	stream.Sink
	f *os.File
}

func (c closableSink) Close() error { return c.f.Close() }

// ShardFileName returns the canonical shard file name for index w.
func ShardFileName(w int, binary bool) string {
	if binary {
		return fmt.Sprintf("shard-%03d.bin", w)
	}
	return fmt.Sprintf("shard-%03d.tsv", w)
}

// WriteSharded writes every shard of the plan into dir (one file per
// shard, written in parallel) plus a manifest.json, and returns the
// manifest. Output is bitwise reproducible: the partition and each
// shard's byte stream depend only on the factors and the plan's worker
// count, never on scheduling.
func WriteSharded(dir string, pl *Plan, opts WriteOptions) (*Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Invalidate any previous run's manifest before touching shard files:
	// if this run fails partway, a reader must find no manifest rather
	// than a stale one describing bytes we may have overwritten.
	if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	counts, err := stream.RunPerShard(pl.workers, pl.EachShardBatch,
		func(w int) (stream.Sink, error) {
			f, ferr := os.Create(filepath.Join(dir, ShardFileName(w, opts.Binary)))
			if ferr != nil {
				return nil, ferr
			}
			var s stream.Sink
			if opts.Binary {
				s = gio.NewArcBinaryWriter(f)
			} else {
				s = gio.NewArcTextWriter(f)
			}
			return closableSink{Sink: s, f: f}, nil
		},
		stream.Options{Workers: opts.Workers, BatchSize: opts.BatchSize})
	if err != nil {
		return nil, err
	}
	m := &Manifest{
		Format:        "tsv",
		FactorADigest: gio.GraphDigest(pl.p.A),
		FactorBDigest: gio.GraphDigest(pl.p.B),
		Vertices:      pl.p.NumVertices(),
		TotalArcs:     pl.TotalArcs(),
		Workers:       pl.workers,
	}
	if opts.Binary {
		m.Format = "binary"
	}
	for w, n := range counts {
		if n != pl.ShardSize(w) {
			return nil, fmt.Errorf("distgen: shard %d wrote %d arcs, plan says %d", w, n, pl.ShardSize(w))
		}
		m.Shards = append(m.Shards, ShardInfo{Index: w, File: ShardFileName(w, opts.Binary), Arcs: n})
	}
	// Remove canonical shard files left over from an earlier run with a
	// different worker count or format, so `cat shard-*` over the
	// directory always reproduces exactly this manifest's stream.
	stale, err := filepath.Glob(filepath.Join(dir, "shard-*"))
	if err != nil {
		return nil, err
	}
	for _, path := range stale {
		name := filepath.Base(path)
		live := false
		for _, s := range m.Shards {
			if name == s.File {
				live = true
				break
			}
		}
		if !live {
			if err := os.Remove(path); err != nil {
				return nil, err
			}
		}
	}
	f, err := os.Create(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadManifest parses the manifest.json inside a sharded output directory.
func ReadManifest(dir string) (*Manifest, error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeManifest(f)
}

// DecodeManifest parses a manifest from a reader.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
