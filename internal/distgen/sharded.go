package distgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"kronvalid/internal/gio"
	"kronvalid/internal/stream"
)

// ManifestName is the filename of the shard manifest inside an output
// directory.
const ManifestName = "manifest.json"

// ShardInfo records one shard file of a sharded generation run.
type ShardInfo struct {
	Index int    `json:"index"`
	File  string `json:"file"`
	Arcs  int64  `json:"arcs"`
}

// Manifest describes a sharded edge-list directory: which generator
// produced it (a Kronecker product identified by factor digests, or any
// registered random model identified by its spec string), how it was
// partitioned, and exactly what each shard file contains. Because
// generation is deterministic, the manifest plus the generator identity
// fully reproduce every byte of every shard — and concatenating the
// shard files in index order reproduces the serial stream for any
// worker count.
type Manifest struct {
	Format string `json:"format"` // "tsv" or "binary"
	// Model identifies the generator: "kron" for Kronecker products
	// (with the factor digests below), else a model spec string such as
	// "er:n=100000,p=0.001,seed=42,chunks=64". Empty in manifests
	// written before the model-agnostic layer, which were always kron.
	Model string `json:"model,omitempty"`
	// Source is the stream.Source Name() of the generator that wrote the
	// directory — the uniform identity every source carries (kron plans
	// spell their factor digests, model plans their spec string). Empty
	// in manifests written before the unified Source API.
	Source        string      `json:"source,omitempty"`
	FactorADigest string      `json:"factor_a_digest,omitempty"`
	FactorBDigest string      `json:"factor_b_digest,omitempty"`
	Vertices      int64       `json:"vertices"`
	TotalArcs     int64       `json:"total_arcs"`
	Workers       int         `json:"workers"`
	Shards        []ShardInfo `json:"shards"`
	// Extra carries caller-supplied annotation key/values (provenance,
	// experiment tags); the writer records them verbatim and readers
	// ignore unknown keys.
	Extra map[string]string `json:"extra,omitempty"`
}

// Validate checks the structural invariants every writer-produced
// manifest satisfies: a known format, sane counts, shard entries indexed
// 0..len-1 in order with non-negative arc counts summing to the total.
// Readers reject manifests that fail it — a corrupt manifest must never
// silently describe the wrong stream.
func (m *Manifest) Validate() error {
	if m.Format != "tsv" && m.Format != "binary" {
		return fmt.Errorf("distgen: manifest format %q is not \"tsv\" or \"binary\"", m.Format)
	}
	if m.Vertices < 0 {
		return fmt.Errorf("distgen: manifest vertex count %d negative", m.Vertices)
	}
	if m.TotalArcs < 0 {
		return fmt.Errorf("distgen: manifest total arc count %d negative", m.TotalArcs)
	}
	if m.Workers != len(m.Shards) {
		return fmt.Errorf("distgen: manifest workers = %d but %d shard entries", m.Workers, len(m.Shards))
	}
	var sum int64
	for i, s := range m.Shards {
		if s.Index != i {
			return fmt.Errorf("distgen: shard entry %d has index %d", i, s.Index)
		}
		if s.Arcs < 0 {
			return fmt.Errorf("distgen: shard %d arc count %d negative", i, s.Arcs)
		}
		if s.File == "" {
			return fmt.Errorf("distgen: shard %d has no file name", i)
		}
		if filepath.Base(s.File) != s.File || s.File == "." || s.File == ".." {
			return fmt.Errorf("distgen: shard %d file %q is not a plain file name", i, s.File)
		}
		sum += s.Arcs
	}
	if sum != m.TotalArcs {
		return fmt.Errorf("distgen: shard arc counts sum to %d, manifest says %d", sum, m.TotalArcs)
	}
	return nil
}

// StreamSource is the writer-side contract of any communication-free
// sharded generator — now the unified stream.Source interface shared by
// the whole pipeline. Both the Kronecker Plan and the model-layer plans
// satisfy it, which is what makes WriteShardedSource generator-agnostic.
type StreamSource = stream.Source

// WriteOptions configures WriteSharded.
type WriteOptions struct {
	// Binary selects the 16-byte little-endian arc format instead of TSV.
	Binary bool
	// Workers bounds how many shard files are written concurrently
	// (0 = GOMAXPROCS). It does not affect the partition, which is fixed
	// by the source.
	Workers int
	// BatchSize is the arcs-per-batch of the pipeline (0 = default).
	BatchSize int
	// Progress, when non-nil, receives cumulative (arcs written, shards
	// completed) updates; calls are serialized across shard writers.
	Progress func(arcs, shardsDone int64)
}

// closableSink pairs a stream sink with the file it writes so the driver
// closes the file after the final flush.
type closableSink struct {
	stream.Sink
	f *os.File
}

func (c closableSink) Close() error { return c.f.Close() }

// shardSink annotates every error a shard's writer sink produces with
// the failing shard's index, so an I/O failure in one of many
// concurrently written files is attributable from the returned error
// alone.
type shardSink struct {
	inner closableSink
	w     int
}

func (s shardSink) wrap(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("distgen: shard %d: %w", s.w, err)
}

func (s shardSink) Consume(batch []stream.Arc) error { return s.wrap(s.inner.Consume(batch)) }
func (s shardSink) Flush() error                     { return s.wrap(s.inner.Flush()) }
func (s shardSink) Close() error                     { return s.wrap(s.inner.Close()) }

// ShardFileName returns the canonical shard file name for index w.
func ShardFileName(w int, binary bool) string {
	if binary {
		return fmt.Sprintf("shard-%03d.bin", w)
	}
	return fmt.Sprintf("shard-%03d.tsv", w)
}

// WriteSharded writes every shard of the Kronecker plan into dir plus a
// manifest.json identifying the factors by digest. See
// WriteShardedSource for the generator-agnostic path this wraps.
func WriteSharded(dir string, pl *Plan, opts WriteOptions) (*Manifest, error) {
	return WriteShardedSource(dir, pl, Manifest{
		Model:         "kron",
		FactorADigest: gio.GraphDigest(pl.p.A),
		FactorBDigest: gio.GraphDigest(pl.p.B),
	}, opts)
}

// WriteShardedSource writes every shard of the source with a background
// context. See WriteShardedSourceContext.
func WriteShardedSource(dir string, src StreamSource, base Manifest, opts WriteOptions) (*Manifest, error) {
	return WriteShardedSourceContext(context.Background(), dir, src, base, opts)
}

// WriteShardedSourceContext writes every shard of the source into dir
// (one file per shard, written in parallel) plus a manifest.json
// carrying the identity fields of base (Model, factor digests, Extra)
// and the source's Name(), and returns the completed manifest. Output is
// bitwise reproducible: the partition and each shard's byte stream
// depend only on the source, never on scheduling — and concatenating the
// shard files in index order reproduces the source's serial stream.
//
// The manifest is the directory's commit record, written last and only
// on full success: on any error — a sink write failure (reported with
// the failing shard's index) or a context cancellation — the directory
// is left without a manifest.json, so readers can never mistake partial
// shard files for a complete stream.
func WriteShardedSourceContext(ctx context.Context, dir string, src StreamSource, base Manifest, opts WriteOptions) (*Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Invalidate any previous run's manifest before touching shard files:
	// if this run fails partway, a reader must find no manifest rather
	// than a stale one describing bytes we may have overwritten.
	if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	shards := src.Shards()
	counts, err := stream.RunPerShardContext(ctx, shards, src.EachShardBatch,
		func(w int) (stream.Sink, error) {
			f, ferr := os.Create(filepath.Join(dir, ShardFileName(w, opts.Binary)))
			if ferr != nil {
				return nil, fmt.Errorf("distgen: shard %d: %w", w, ferr)
			}
			var s stream.Sink
			if opts.Binary {
				s = gio.NewArcBinaryWriter(f)
			} else {
				s = gio.NewArcTextWriter(f)
			}
			return shardSink{inner: closableSink{Sink: s, f: f}, w: w}, nil
		},
		stream.Options{Workers: opts.Workers, BatchSize: opts.BatchSize, Progress: opts.Progress})
	if err != nil {
		return nil, err
	}
	m := &base
	m.Source = src.Name()
	m.Format = "tsv"
	if opts.Binary {
		m.Format = "binary"
	}
	m.Vertices = src.NumVertices()
	m.Workers = shards
	m.Shards = nil
	var total int64
	for w, n := range counts {
		if want := src.ShardSize(w); want >= 0 && n != want {
			return nil, fmt.Errorf("distgen: shard %d wrote %d arcs, source says %d", w, n, want)
		}
		m.Shards = append(m.Shards, ShardInfo{Index: w, File: ShardFileName(w, opts.Binary), Arcs: n})
		total += n
	}
	if want := src.TotalArcs(); want >= 0 && total != want {
		return nil, fmt.Errorf("distgen: wrote %d arcs in total, source says %d", total, want)
	}
	m.TotalArcs = total
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// Remove canonical shard files left over from an earlier run with a
	// different worker count or format, so `cat shard-*` over the
	// directory always reproduces exactly this manifest's stream.
	stale, err := filepath.Glob(filepath.Join(dir, "shard-*"))
	if err != nil {
		return nil, err
	}
	for _, path := range stale {
		name := filepath.Base(path)
		live := false
		for _, s := range m.Shards {
			if name == s.File {
				live = true
				break
			}
		}
		if !live {
			if err := os.Remove(path); err != nil {
				return nil, err
			}
		}
	}
	f, err := os.Create(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadManifest parses and validates the manifest.json inside a sharded
// output directory.
func ReadManifest(dir string) (*Manifest, error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeManifest(f)
}

// DecodeManifest parses a manifest from a reader, rejecting manifests
// that fail Validate.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
