// Package distgen reproduces the "essentially communication-free"
// distributed generation scheme the paper builds on ([3], Kepner et al.):
// the edge list of C = A ⊗ B is partitioned deterministically across P
// workers, each of which generates its shard purely from the (small,
// replicated) factors — no coordination, no communication, and bitwise
// reproducible output for any P.
//
// The partition is by A-arc blocks: the |arcs(A)| arcs of A are split
// into P contiguous ranges, and worker w emits, for every A-arc (i, j) in
// its range and every B-arc (k, l), the product arc (i·n_B + k,
// j·n_B + l). Shard sizes are balanced to within one A-arc block
// (|arcs(B)| product arcs).
package distgen

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"kronvalid/internal/graph"
	"kronvalid/internal/kron"
	"kronvalid/internal/par"
)

// Arc is one directed product edge.
type Arc struct {
	U, V int64
}

// Plan describes the deterministic partition of the product edge list.
type Plan struct {
	p       *kron.Product
	arcsA   []graph.Edge // all arcs of A in canonical order
	arcsB   []graph.Edge
	nB      int64
	workers int
	aRanges [][2]int64 // per-worker [lo, hi) over arcsA
}

// NewPlan builds a generation plan for the given worker count (0 means
// GOMAXPROCS).
func NewPlan(p *kron.Product, workers int) *Plan {
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	arcsA := p.A.Arcs()
	arcsB := p.B.Arcs()
	ranges := par.Chunks(int64(len(arcsA)), int64(workers))
	return &Plan{
		p:       p,
		arcsA:   arcsA,
		arcsB:   arcsB,
		nB:      int64(p.B.NumVertices()),
		workers: len(ranges),
		aRanges: ranges,
	}
}

// Workers returns the number of non-empty shards.
func (pl *Plan) Workers() int { return pl.workers }

// ShardSize returns the exact number of product arcs worker w will emit.
func (pl *Plan) ShardSize(w int) int64 {
	r := pl.aRanges[w]
	return (r[1] - r[0]) * int64(len(pl.arcsB))
}

// TotalArcs returns the total number of product arcs across all shards.
func (pl *Plan) TotalArcs() int64 {
	return int64(len(pl.arcsA)) * int64(len(pl.arcsB))
}

// EachShardArc streams worker w's shard deterministically, stopping early
// if fn returns false. Any worker can regenerate any shard at any time —
// this is the communication-free property.
func (pl *Plan) EachShardArc(w int, fn func(a Arc) bool) {
	r := pl.aRanges[w]
	for ai := r[0]; ai < r[1]; ai++ {
		ea := pl.arcsA[ai]
		uBase := int64(ea.U) * pl.nB
		vBase := int64(ea.V) * pl.nB
		for _, eb := range pl.arcsB {
			if !fn(Arc{uBase + int64(eb.U), vBase + int64(eb.V)}) {
				return
			}
		}
	}
}

// GenerateParallel runs all shards concurrently, invoking sink(w, arcs)
// once per worker with the worker's complete shard. sink must be safe for
// concurrent calls with distinct w.
func (pl *Plan) GenerateParallel(sink func(w int, arcs []Arc)) {
	par.MapWorkers(pl.workers, func(w, _ int) {
		arcs := make([]Arc, 0, pl.ShardSize(w))
		pl.EachShardArc(w, func(a Arc) bool {
			arcs = append(arcs, a)
			return true
		})
		sink(w, arcs)
	})
}

// WriteShard writes worker w's shard as "u\tv\n" lines.
func (pl *Plan) WriteShard(w int, out io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(out, 1<<16)
	var count int64
	var err error
	pl.EachShardArc(w, func(a Arc) bool {
		if _, werr := fmt.Fprintf(bw, "%d\t%d\n", a.U, a.V); werr != nil {
			err = werr
			return false
		}
		count++
		return true
	})
	if err != nil {
		return count, err
	}
	return count, bw.Flush()
}

// WriteShardBinary writes worker w's shard as little-endian (uint64,
// uint64) arc pairs — 16 bytes per arc, the format large-scale harnesses
// ingest. Returns the number of arcs written.
func (pl *Plan) WriteShardBinary(w int, out io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(out, 1<<16)
	var buf [16]byte
	var count int64
	var err error
	pl.EachShardArc(w, func(a Arc) bool {
		putUint64LE(buf[0:8], uint64(a.U))
		putUint64LE(buf[8:16], uint64(a.V))
		if _, werr := bw.Write(buf[:]); werr != nil {
			err = werr
			return false
		}
		count++
		return true
	})
	if err != nil {
		return count, err
	}
	return count, bw.Flush()
}

// ReadArcsBinary parses arcs written by WriteShardBinary.
func ReadArcsBinary(r io.Reader) ([]Arc, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var out []Arc
	var buf [16]byte
	for {
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, Arc{int64(getUint64LE(buf[0:8])), int64(getUint64LE(buf[8:16]))})
	}
}

func putUint64LE(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint64LE(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// CollectAll regenerates every shard (in parallel), concatenates them and
// returns the full product edge list sorted canonically — used to verify
// that sharded generation reproduces the serial stream exactly.
func (pl *Plan) CollectAll() []Arc {
	shards := make([][]Arc, pl.workers)
	pl.GenerateParallel(func(w int, arcs []Arc) {
		shards[w] = arcs
	})
	var all []Arc
	for _, s := range shards {
		all = append(all, s...)
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].U != all[b].U {
			return all[a].U < all[b].U
		}
		return all[a].V < all[b].V
	})
	return all
}
