package distgen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"kronvalid/internal/model"
)

// catShards concatenates a directory's shard files in manifest order.
func catShards(t *testing.T, dir string, m *Manifest) []byte {
	t.Helper()
	var all bytes.Buffer
	for _, s := range m.Shards {
		b, err := os.ReadFile(filepath.Join(dir, s.File))
		if err != nil {
			t.Fatal(err)
		}
		all.Write(b)
	}
	return all.Bytes()
}

// TestWriteShardedSourceModel drives the generalized writer with a
// model-layer plan: the manifest must identify the model, per-shard
// counts must sum to the stream, and the concatenated bytes must be
// identical for every shard count — the same invariant the Kronecker
// path has always had, now generator-agnostic.
func TestWriteShardedSourceModel(t *testing.T) {
	g, err := model.New("er:n=400,p=0.03,seed=9,chunks=11")
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, shards := range []int{1, 3, 8} {
		dir := t.TempDir()
		pl := model.NewPlan(g, shards)
		m, err := WriteShardedSource(dir, pl, Manifest{Model: g.Name()}, WriteOptions{Binary: true})
		if err != nil {
			t.Fatal(err)
		}
		if m.Model != g.Name() {
			t.Errorf("manifest model = %q, want %q", m.Model, g.Name())
		}
		if m.Workers != pl.Shards() || len(m.Shards) != pl.Shards() {
			t.Errorf("manifest has %d shards, plan has %d", len(m.Shards), pl.Shards())
		}
		back, err := ReadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		if back.Model != g.Name() || back.TotalArcs != m.TotalArcs {
			t.Error("re-read manifest differs")
		}
		got := catShards(t, dir, m)
		if int64(len(got)) != 16*m.TotalArcs {
			t.Fatalf("shard bytes = %d, manifest declares %d arcs", len(got), m.TotalArcs)
		}
		if want == nil {
			want = got
		} else if !bytes.Equal(want, got) {
			t.Errorf("shards=%d: concatenated bytes differ from shards=1", shards)
		}
	}
}

// TestWriteShardedSourceExactCounts checks that a source with exact
// per-shard sizes (G(n,m)) is verified against what was actually
// written.
func TestWriteShardedSourceExactCounts(t *testing.T) {
	g, err := model.New("gnm:n=300,m=2000,seed=4")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	pl := model.NewPlan(g, 4)
	m, err := WriteShardedSource(dir, pl, Manifest{Model: g.Name()}, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalArcs != 2000 {
		t.Fatalf("manifest total = %d, want 2000", m.TotalArcs)
	}
	for w, s := range m.Shards {
		if want := pl.ShardSize(w); want != s.Arcs {
			t.Errorf("shard %d: manifest %d arcs, plan says %d", w, s.Arcs, want)
		}
	}
}

// TestKronManifestCarriesModel pins that the Kronecker wrapper now
// stamps its manifests with model "kron" while keeping factor digests.
func TestKronManifestCarriesModel(t *testing.T) {
	pl, _ := plan(t, 3)
	dir := t.TempDir()
	m, err := WriteSharded(dir, pl, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Model != "kron" {
		t.Errorf("kron manifest model = %q", m.Model)
	}
	if m.FactorADigest == "" || m.FactorBDigest == "" {
		t.Error("kron manifest lost factor digests")
	}
}
