package distgen

import (
	"bytes"
	"sort"
	"testing"

	"kronvalid/internal/gen"
	"kronvalid/internal/kron"
)

func plan(t *testing.T, workers int) (*Plan, *kron.Product) {
	t.Helper()
	a := gen.WebGraph(40, 3, 0.6, 3)
	b := gen.HubCycle(5)
	p := kron.MustProduct(a, b)
	return NewPlan(p, workers), p
}

func TestShardSizesSumToTotal(t *testing.T) {
	for _, w := range []int{1, 2, 3, 7, 16} {
		pl, p := plan(t, w)
		var sum int64
		for i := 0; i < pl.Workers(); i++ {
			sum += pl.ShardSize(i)
		}
		if sum != pl.TotalArcs() || sum != p.NumArcs() {
			t.Fatalf("workers=%d: shard sizes sum %d, total %d, product %d",
				w, sum, pl.TotalArcs(), p.NumArcs())
		}
	}
}

func TestShardsReproduceSerialStream(t *testing.T) {
	for _, w := range []int{1, 2, 5, 13} {
		pl, p := plan(t, w)
		all := pl.CollectAll()
		var serial []Arc
		p.EachArc(func(u, v int64) bool {
			serial = append(serial, Arc{u, v})
			return true
		})
		sort.Slice(serial, func(a, b int) bool {
			if serial[a].U != serial[b].U {
				return serial[a].U < serial[b].U
			}
			return serial[a].V < serial[b].V
		})
		if len(all) != len(serial) {
			t.Fatalf("workers=%d: %d arcs vs serial %d", w, len(all), len(serial))
		}
		for i := range all {
			if all[i] != serial[i] {
				t.Fatalf("workers=%d: arc %d differs: %v vs %v", w, i, all[i], serial[i])
			}
		}
	}
}

func TestShardsDisjoint(t *testing.T) {
	pl, _ := plan(t, 4)
	seen := map[Arc]int{}
	for w := 0; w < pl.Workers(); w++ {
		pl.EachShardArc(w, func(a Arc) bool {
			if prev, dup := seen[a]; dup {
				t.Fatalf("arc %v in shards %d and %d", a, prev, w)
			}
			seen[a] = w
			return true
		})
	}
}

func TestShardDeterminism(t *testing.T) {
	pl, _ := plan(t, 3)
	for w := 0; w < pl.Workers(); w++ {
		var a, b bytes.Buffer
		if _, err := pl.WriteShard(w, &a); err != nil {
			t.Fatal(err)
		}
		if _, err := pl.WriteShard(w, &b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("shard %d not reproducible", w)
		}
	}
}

func TestPartitionIndependentOfWorkerCount(t *testing.T) {
	// The union of arcs must be identical for every worker count.
	pl2, _ := plan(t, 2)
	pl9, _ := plan(t, 9)
	a2 := pl2.CollectAll()
	a9 := pl9.CollectAll()
	if len(a2) != len(a9) {
		t.Fatalf("arc counts differ: %d vs %d", len(a2), len(a9))
	}
	for i := range a2 {
		if a2[i] != a9[i] {
			t.Fatalf("arc %d differs across worker counts", i)
		}
	}
}

func TestWriteShardFormat(t *testing.T) {
	pl, _ := plan(t, 2)
	var buf bytes.Buffer
	n, err := pl.WriteShard(0, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(buf.Bytes(), []byte("\n"))
	if int64(lines) != n || n != pl.ShardSize(0) {
		t.Fatalf("wrote %d lines, reported %d, shard size %d", lines, n, pl.ShardSize(0))
	}
}

func TestEarlyStop(t *testing.T) {
	pl, _ := plan(t, 1)
	count := 0
	pl.EachShardArc(0, func(a Arc) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d arcs", count)
	}
}

func TestBinaryShardRoundTrip(t *testing.T) {
	pl, _ := plan(t, 3)
	for w := 0; w < pl.Workers(); w++ {
		var buf bytes.Buffer
		n, err := pl.WriteShardBinary(w, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if int64(buf.Len()) != n*16 {
			t.Fatalf("shard %d: %d bytes for %d arcs", w, buf.Len(), n)
		}
		arcs, err := ReadArcsBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(arcs)) != n {
			t.Fatalf("shard %d: read %d arcs, wrote %d", w, len(arcs), n)
		}
		i := 0
		pl.EachShardArc(w, func(a Arc) bool {
			if arcs[i] != a {
				t.Fatalf("shard %d arc %d: %v vs %v", w, i, arcs[i], a)
			}
			i++
			return true
		})
	}
}

func TestReadArcsBinaryTruncated(t *testing.T) {
	pl, _ := plan(t, 1)
	var buf bytes.Buffer
	if _, err := pl.WriteShardBinary(0, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-5] // cut mid-record
	if _, err := ReadArcsBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated binary stream accepted")
	}
}
