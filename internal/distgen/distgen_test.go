package distgen

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"kronvalid/internal/gen"
	"kronvalid/internal/gio"
	"kronvalid/internal/kron"
	"kronvalid/internal/stream"
)

func plan(t *testing.T, workers int) (*Plan, *kron.Product) {
	t.Helper()
	a := gen.WebGraph(40, 3, 0.6, 3)
	b := gen.HubCycle(5)
	p := kron.MustProduct(a, b)
	return NewPlan(p, workers), p
}

func TestShardSizesSumToTotal(t *testing.T) {
	for _, w := range []int{1, 2, 3, 7, 16} {
		pl, p := plan(t, w)
		var sum int64
		for i := 0; i < pl.Workers(); i++ {
			sum += pl.ShardSize(i)
		}
		if sum != pl.TotalArcs() || sum != p.NumArcs() {
			t.Fatalf("workers=%d: shard sizes sum %d, total %d, product %d",
				w, sum, pl.TotalArcs(), p.NumArcs())
		}
	}
}

func TestShardsReproduceSerialStream(t *testing.T) {
	for _, w := range []int{1, 2, 5, 13} {
		pl, p := plan(t, w)
		all := pl.CollectAll()
		var serial []Arc
		p.EachArc(func(u, v int64) bool {
			serial = append(serial, Arc{U: u, V: v})
			return true
		})
		sort.Slice(serial, func(a, b int) bool {
			if serial[a].U != serial[b].U {
				return serial[a].U < serial[b].U
			}
			return serial[a].V < serial[b].V
		})
		if len(all) != len(serial) {
			t.Fatalf("workers=%d: %d arcs vs serial %d", w, len(all), len(serial))
		}
		for i := range all {
			if all[i] != serial[i] {
				t.Fatalf("workers=%d: arc %d differs: %v vs %v", w, i, all[i], serial[i])
			}
		}
	}
}

func TestShardsDisjoint(t *testing.T) {
	pl, _ := plan(t, 4)
	seen := map[Arc]int{}
	for w := 0; w < pl.Workers(); w++ {
		pl.EachShardArc(w, func(a Arc) bool {
			if prev, dup := seen[a]; dup {
				t.Fatalf("arc %v in shards %d and %d", a, prev, w)
			}
			seen[a] = w
			return true
		})
	}
}

func TestShardDeterminism(t *testing.T) {
	pl, _ := plan(t, 3)
	for w := 0; w < pl.Workers(); w++ {
		var a, b bytes.Buffer
		if _, err := pl.WriteShard(w, &a); err != nil {
			t.Fatal(err)
		}
		if _, err := pl.WriteShard(w, &b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("shard %d not reproducible", w)
		}
	}
}

func TestPartitionIndependentOfWorkerCount(t *testing.T) {
	// The union of arcs must be identical for every worker count.
	pl2, _ := plan(t, 2)
	pl9, _ := plan(t, 9)
	a2 := pl2.CollectAll()
	a9 := pl9.CollectAll()
	if len(a2) != len(a9) {
		t.Fatalf("arc counts differ: %d vs %d", len(a2), len(a9))
	}
	for i := range a2 {
		if a2[i] != a9[i] {
			t.Fatalf("arc %d differs across worker counts", i)
		}
	}
}

func TestWriteShardFormat(t *testing.T) {
	pl, _ := plan(t, 2)
	var buf bytes.Buffer
	n, err := pl.WriteShard(0, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(buf.Bytes(), []byte("\n"))
	if int64(lines) != n || n != pl.ShardSize(0) {
		t.Fatalf("wrote %d lines, reported %d, shard size %d", lines, n, pl.ShardSize(0))
	}
}

func TestEarlyStop(t *testing.T) {
	pl, _ := plan(t, 1)
	count := 0
	pl.EachShardArc(0, func(a Arc) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d arcs", count)
	}
}

func TestBinaryShardRoundTrip(t *testing.T) {
	pl, _ := plan(t, 3)
	for w := 0; w < pl.Workers(); w++ {
		var buf bytes.Buffer
		n, err := pl.WriteShardBinary(w, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if int64(buf.Len()) != n*16 {
			t.Fatalf("shard %d: %d bytes for %d arcs", w, buf.Len(), n)
		}
		arcs, err := ReadArcsBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(arcs)) != n {
			t.Fatalf("shard %d: read %d arcs, wrote %d", w, len(arcs), n)
		}
		i := 0
		pl.EachShardArc(w, func(a Arc) bool {
			if arcs[i] != a {
				t.Fatalf("shard %d arc %d: %v vs %v", w, i, arcs[i], a)
			}
			i++
			return true
		})
	}
}

func TestReadArcsBinaryTruncated(t *testing.T) {
	pl, _ := plan(t, 1)
	var buf bytes.Buffer
	if _, err := pl.WriteShardBinary(0, &buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-5] // cut mid-record
	if _, err := ReadArcsBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated binary stream accepted")
	}
}

// TestShardConcatenationBytewiseDeterministic is the pipeline's central
// guarantee: the concatenated shard output is bytewise identical for every
// worker count and equal to the serial EachArc stream (same arcs, same
// order, same bytes).
func TestShardConcatenationBytewiseDeterministic(t *testing.T) {
	a := gen.WebGraph(60, 3, 0.6, 7)
	b := gen.HubCycle(5)
	p := kron.MustProduct(a, b)

	var serial bytes.Buffer
	p.EachArc(func(u, v int64) bool {
		fmt.Fprintf(&serial, "%d\t%d\n", u, v)
		return true
	})

	for _, workers := range []int{1, 2, 3, 8} {
		pl := NewPlan(p, workers)
		var got bytes.Buffer
		var total int64
		for w := 0; w < pl.Workers(); w++ {
			n, err := pl.WriteShard(w, &got)
			if err != nil {
				t.Fatal(err)
			}
			total += n
		}
		if total != p.NumArcs() {
			t.Fatalf("workers=%d: wrote %d arcs, want %d", workers, total, p.NumArcs())
		}
		if !bytes.Equal(got.Bytes(), serial.Bytes()) {
			t.Fatalf("workers=%d: concatenated shards differ from serial EachArc stream", workers)
		}
	}
}

// TestShardConcatenationMatchesEachArcOrderUnsorted checks arc-level order
// (not just bytes): concatenating EachShardArc streams yields exactly the
// EachArc sequence without any sorting.
func TestShardConcatenationMatchesEachArcOrderUnsorted(t *testing.T) {
	a := gen.WebGraph(50, 3, 0.55, 11)
	b := gen.HubCycle(4)
	p := kron.MustProduct(a, b)
	var serial []Arc
	p.EachArc(func(u, v int64) bool {
		serial = append(serial, Arc{U: u, V: v})
		return true
	})
	for _, workers := range []int{1, 2, 3, 8} {
		pl := NewPlan(p, workers)
		var got []Arc
		for w := 0; w < pl.Workers(); w++ {
			pl.EachShardArc(w, func(a Arc) bool {
				got = append(got, a)
				return true
			})
		}
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d arcs vs %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: arc %d is %v, serial has %v", workers, i, got[i], serial[i])
			}
		}
	}
}

// TestStreamToMatchesSerial runs the parallel ordered pipeline into an
// in-memory text sink and compares bytes against the serial stream.
func TestStreamToMatchesSerial(t *testing.T) {
	a := gen.WebGraph(80, 3, 0.6, 13)
	b := gen.HubCycle(6)
	p := kron.MustProduct(a, b)
	var serial bytes.Buffer
	if _, err := NewPlan(p, 1).WriteShard(0, &serial); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		pl := NewPlan(p, workers)
		var got bytes.Buffer
		n, err := pl.StreamTo(gio.NewArcTextWriter(&got), stream.Options{Workers: workers, BatchSize: 512})
		if err != nil {
			t.Fatal(err)
		}
		if n != p.NumArcs() {
			t.Fatalf("workers=%d: streamed %d arcs, want %d", workers, n, p.NumArcs())
		}
		if !bytes.Equal(got.Bytes(), serial.Bytes()) {
			t.Fatalf("workers=%d: parallel stream differs from serial bytes", workers)
		}
	}
}

// TestWriteShardedManifestRoundTrip writes a sharded directory (text and
// binary) and verifies files, counts, manifest, and that concatenated
// shard files reproduce the serial stream.
func TestWriteShardedManifestRoundTrip(t *testing.T) {
	a := gen.WebGraph(40, 3, 0.6, 3)
	b := gen.HubCycle(5)
	p := kron.MustProduct(a, b)
	var serial bytes.Buffer
	if _, err := NewPlan(p, 1).WriteShard(0, &serial); err != nil {
		t.Fatal(err)
	}
	for _, bin := range []bool{false, true} {
		dir := t.TempDir()
		pl := NewPlan(p, 3)
		m, err := WriteSharded(dir, pl, WriteOptions{Binary: bin})
		if err != nil {
			t.Fatal(err)
		}
		back, err := ReadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		if back.TotalArcs != p.NumArcs() || back.Workers != pl.Workers() || len(back.Shards) != pl.Workers() {
			t.Fatalf("manifest mismatch: %+v", back)
		}
		if back.FactorADigest != gio.GraphDigest(p.A) || back.FactorBDigest != gio.GraphDigest(p.B) {
			t.Fatal("manifest factor digests differ")
		}
		if back.FactorADigest == back.FactorBDigest {
			t.Fatal("distinct factors share a digest")
		}
		var concat []byte
		for _, s := range m.Shards {
			data, err := os.ReadFile(filepath.Join(dir, s.File))
			if err != nil {
				t.Fatal(err)
			}
			concat = append(concat, data...)
		}
		if bin {
			arcs, err := ReadArcsBinary(bytes.NewReader(concat))
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(arcs)) != p.NumArcs() {
				t.Fatalf("binary round trip: %d arcs, want %d", len(arcs), p.NumArcs())
			}
			i := 0
			ok := true
			p.EachArc(func(u, v int64) bool {
				ok = arcs[i] == Arc{U: u, V: v}
				i++
				return ok
			})
			if !ok {
				t.Fatal("binary shards out of order")
			}
		} else if !bytes.Equal(concat, serial.Bytes()) {
			t.Fatal("concatenated text shards differ from serial stream")
		}
	}
}

// TestPlanHeavyRowImbalance exercises boundary rounding when one A row
// holds most arcs (a star's hub): ranges must stay disjoint, cover all
// arcs, and never be empty.
func TestPlanHeavyRowImbalance(t *testing.T) {
	a := gen.Star(50) // hub row carries 49 of 98 arcs
	b := gen.HubCycle(4)
	p := kron.MustProduct(a, b)
	for _, workers := range []int{1, 2, 3, 8, 16} {
		pl := NewPlan(p, workers)
		var sum int64
		prevHi := int32(0)
		for w := 0; w < pl.Workers(); w++ {
			lo, hi := pl.RowRange(w)
			if lo < prevHi || hi <= lo {
				t.Fatalf("workers=%d: bad range [%d,%d) after %d", workers, lo, hi, prevHi)
			}
			if pl.ShardSize(w) == 0 {
				t.Fatalf("workers=%d: empty shard %d", workers, w)
			}
			prevHi = hi
			sum += pl.ShardSize(w)
		}
		if sum != p.NumArcs() {
			t.Fatalf("workers=%d: shards cover %d arcs, want %d", workers, sum, p.NumArcs())
		}
	}
}

// TestWriteShardedRemovesStaleShards reruns into the same directory with a
// smaller worker count and a different format: files from the earlier run
// must not survive, so shard globs always match the manifest.
func TestWriteShardedRemovesStaleShards(t *testing.T) {
	a := gen.WebGraph(40, 3, 0.6, 3)
	p := kron.MustProduct(a, gen.HubCycle(5))
	dir := t.TempDir()
	if _, err := WriteSharded(dir, NewPlan(p, 4), WriteOptions{Binary: true}); err != nil {
		t.Fatal(err)
	}
	m, err := WriteSharded(dir, NewPlan(p, 2), WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := filepath.Glob(filepath.Join(dir, "shard-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(m.Shards) {
		t.Fatalf("%d shard files on disk, manifest lists %d: %v", len(got), len(m.Shards), got)
	}
	for _, path := range got {
		if filepath.Ext(path) != ".tsv" {
			t.Fatalf("stale file survived: %s", path)
		}
	}
}
