// Package spec parses compact factor-graph specifications used by the
// command-line tools, e.g.
//
//	web:n=4096,m=4,pt=0.7,seed=42      scale-free with triad closure
//	clique:n=5                          K_5
//	jclique:n=5                         J_5 (clique + all self loops)
//	hubcycle:c=4                        Ex. 2 graph
//	cycle:n=9 | path:n=9 | star:n=9
//	er:n=200,p=0.1,seed=1               Erdős–Rényi
//	ba:n=1000,m=3,seed=1                Barabási–Albert
//	pa1:n=500,seed=1                    §III.D(b) Δ≤1 generator
//	rmat:scale=10,edges=16384,seed=1    R-MAT (defaults to Graph500 parameters)
//	file:path=edges.tsv,n=100           TSV edge list (symmetrized)
//
// A trailing "+loops" adds a self loop at every vertex (B = A + I).
package spec

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"kronvalid/internal/gen"
	"kronvalid/internal/gio"
	"kronvalid/internal/graph"
)

type params map[string]string

func (p params) int(key string, def int) (int, error) {
	s, ok := p[key]
	if !ok {
		if def < 0 {
			return 0, fmt.Errorf("spec: missing required parameter %q", key)
		}
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("spec: parameter %q: %v", key, err)
	}
	return v, nil
}

func (p params) int64(key string, def int64) (int64, error) {
	s, ok := p[key]
	if !ok {
		if def < 0 {
			return 0, fmt.Errorf("spec: missing required parameter %q", key)
		}
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("spec: parameter %q: %v", key, err)
	}
	return v, nil
}

func (p params) float(key string, def float64) (float64, error) {
	s, ok := p[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("spec: parameter %q: %v", key, err)
	}
	return v, nil
}

func (p params) seed() (uint64, error) {
	s, ok := p["seed"]
	if !ok {
		return 1, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("spec: parameter \"seed\": %v", err)
	}
	return v, nil
}

// Parse builds a factor graph from a specification string.
func Parse(s string) (*graph.Graph, error) {
	addLoops := false
	if strings.HasSuffix(s, "+loops") {
		addLoops = true
		s = strings.TrimSuffix(s, "+loops")
	}
	kind, rest, _ := strings.Cut(s, ":")
	p := params{}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("spec: malformed parameter %q", kv)
			}
			p[k] = v
		}
	}
	g, err := build(kind, p)
	if err != nil {
		return nil, err
	}
	if addLoops {
		g = g.WithAllLoops()
	}
	return g, nil
}

func build(kind string, p params) (*graph.Graph, error) {
	seed, err := p.seed()
	if err != nil {
		return nil, err
	}
	switch kind {
	case "clique":
		n, err := p.int("n", -1)
		if err != nil {
			return nil, err
		}
		return gen.Clique(n), nil
	case "jclique":
		n, err := p.int("n", -1)
		if err != nil {
			return nil, err
		}
		return gen.CliqueWithLoops(n), nil
	case "hubcycle":
		c, err := p.int("c", 4)
		if err != nil {
			return nil, err
		}
		return gen.HubCycle(c), nil
	case "cycle":
		n, err := p.int("n", -1)
		if err != nil {
			return nil, err
		}
		return gen.Cycle(n), nil
	case "path":
		n, err := p.int("n", -1)
		if err != nil {
			return nil, err
		}
		return gen.Path(n), nil
	case "star":
		n, err := p.int("n", -1)
		if err != nil {
			return nil, err
		}
		return gen.Star(n), nil
	case "er":
		n, err := p.int("n", -1)
		if err != nil {
			return nil, err
		}
		prob, err := p.float("p", 0.1)
		if err != nil {
			return nil, err
		}
		return gen.ErdosRenyi(n, prob, seed), nil
	case "ba":
		n, err := p.int("n", -1)
		if err != nil {
			return nil, err
		}
		m, err := p.int("m", 3)
		if err != nil {
			return nil, err
		}
		return gen.BarabasiAlbert(n, m, seed), nil
	case "web":
		n, err := p.int("n", -1)
		if err != nil {
			return nil, err
		}
		m, err := p.int("m", 3)
		if err != nil {
			return nil, err
		}
		pt, err := p.float("pt", 0.7)
		if err != nil {
			return nil, err
		}
		return gen.WebGraph(n, m, pt, seed), nil
	case "pa1":
		n, err := p.int("n", -1)
		if err != nil {
			return nil, err
		}
		return gen.TriangleLimitedPA(n, seed), nil
	case "rmat":
		scale, err := p.int("scale", -1)
		if err != nil {
			return nil, err
		}
		edges, err := p.int64("edges", 16<<uint(scale))
		if err != nil {
			return nil, err
		}
		a, err := p.float("a", 0.57)
		if err != nil {
			return nil, err
		}
		b, err := p.float("b", 0.19)
		if err != nil {
			return nil, err
		}
		c, err := p.float("c", 0.19)
		if err != nil {
			return nil, err
		}
		d, err := p.float("d", 0.05)
		if err != nil {
			return nil, err
		}
		return gen.RMAT(scale, edges, a, b, c, d, seed), nil
	case "file":
		path, ok := p["path"]
		if !ok {
			return nil, fmt.Errorf("spec: file requires path=")
		}
		n, err := p.int("n", -1)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return gio.ReadEdgeList(f, n, true)
	default:
		return nil, fmt.Errorf("spec: unknown generator kind %q", kind)
	}
}
