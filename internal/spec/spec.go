// Package spec parses compact factor-graph specifications used by the
// command-line tools, e.g.
//
//	web:n=4096,m=4,pt=0.7,seed=42      scale-free with triad closure
//	clique:n=5                          K_5
//	jclique:n=5                         J_5 (clique + all self loops)
//	hubcycle:c=4                        Ex. 2 graph
//	cycle:n=9 | path:n=9 | star:n=9
//	er:n=200,p=0.1,seed=1               Erdős–Rényi G(n, p)
//	gnm:n=200,m=1000,seed=1             uniform G(n, m) (exact edge count)
//	ba:n=1000,m=3,seed=1                Barabási–Albert (streamed retracing core)
//	pa1:n=500,seed=1                    §III.D(b) Δ≤1 generator
//	rmat:scale=10,edges=16384,seed=1    R-MAT (defaults to Graph500 parameters)
//	rgg2d:n=1000,r=0.05,seed=1          random geometric graph, unit square
//	rgg3d:n=1000,r=0.1,seed=1           random geometric graph, unit cube
//	rhg:n=1000,d=8,gamma=2.9,seed=1     random hyperbolic graph
//	grid2d:x=30,y=20,wrap=true          lattice / torus (p= keeps edges)
//	grid3d:x=10,y=10,z=10,p=0.5         3D lattice with Bernoulli edges
//	file:path=edges.tsv,n=100           TSV edge list (symmetrized)
//
// A trailing "+loops" adds a self loop at every vertex (B = A + I).
// Unknown parameter keys are rejected — before any generation work is
// spent — so a typo cannot silently fall back to a default; the grammar
// itself is shared with the random-model registry via internal/params.
package spec

import (
	"fmt"
	"math"
	"os"
	"strings"

	"kronvalid/internal/gen"
	"kronvalid/internal/gio"
	"kronvalid/internal/graph"
	"kronvalid/internal/model"
	"kronvalid/internal/params"
)

// Parse builds a factor graph from a specification string. Parameters
// are read and validated in full (including unknown-key rejection)
// before the generator runs, so malformed specs fail fast.
func Parse(s string) (*graph.Graph, error) {
	addLoops := false
	if strings.HasSuffix(s, "+loops") {
		addLoops = true
		s = strings.TrimSuffix(s, "+loops")
	}
	kind, p, err := params.Parse(s)
	if err != nil {
		return nil, fmt.Errorf("spec: %v", err)
	}
	mk, err := builder(kind, p)
	if err != nil {
		return nil, specErr(err)
	}
	if err := p.CheckUnused(kind); err != nil {
		return nil, fmt.Errorf("spec: %v", err)
	}
	g, err := mk()
	if err != nil {
		return nil, specErr(err)
	}
	if addLoops {
		g = g.WithAllLoops()
	}
	return g, nil
}

// specErr prefixes parameter-layer errors with the package the user
// typed at, without double-prefixing errors that already carry it.
func specErr(err error) error {
	if strings.HasPrefix(err.Error(), "spec: ") {
		return err
	}
	return fmt.Errorf("spec: %v", err)
}

// boundedVertexCount reads a required "n" destined for an explicit
// int32 factor graph, turning out-of-range values into spec errors at
// the CLI boundary (the gen constructors panic, per their contract).
func boundedVertexCount(p *params.Params) (int, error) {
	n, err := p.Int64("n", -1)
	if err != nil {
		return 0, err
	}
	if n < 0 || n > math.MaxInt32 {
		return 0, fmt.Errorf("spec: vertex count %d out of [0, %d]", n, math.MaxInt32)
	}
	return int(n), nil
}

// maker defers the (possibly expensive) generation until every
// parameter of the spec has been validated.
type maker func() (*graph.Graph, error)

func builder(kind string, p *params.Params) (maker, error) {
	seed, err := p.Seed()
	if err != nil {
		return nil, err
	}
	switch kind {
	case "clique":
		n, err := p.Int("n", -1)
		if err != nil {
			return nil, err
		}
		return func() (*graph.Graph, error) { return gen.Clique(n), nil }, nil
	case "jclique":
		n, err := p.Int("n", -1)
		if err != nil {
			return nil, err
		}
		return func() (*graph.Graph, error) { return gen.CliqueWithLoops(n), nil }, nil
	case "hubcycle":
		c, err := p.Int("c", 4)
		if err != nil {
			return nil, err
		}
		return func() (*graph.Graph, error) { return gen.HubCycle(c), nil }, nil
	case "cycle":
		n, err := p.Int("n", -1)
		if err != nil {
			return nil, err
		}
		return func() (*graph.Graph, error) { return gen.Cycle(n), nil }, nil
	case "path":
		n, err := p.Int("n", -1)
		if err != nil {
			return nil, err
		}
		return func() (*graph.Graph, error) { return gen.Path(n), nil }, nil
	case "star":
		n, err := p.Int("n", -1)
		if err != nil {
			return nil, err
		}
		return func() (*graph.Graph, error) { return gen.Star(n), nil }, nil
	case "er":
		n, err := boundedVertexCount(p)
		if err != nil {
			return nil, err
		}
		prob, err := p.Float("p", 0.1)
		if err != nil {
			return nil, err
		}
		return func() (*graph.Graph, error) { return gen.ErdosRenyi(n, prob, seed), nil }, nil
	case "gnm":
		n, err := boundedVertexCount(p)
		if err != nil {
			return nil, err
		}
		m, err := p.Int64("m", -1)
		if err != nil {
			return nil, err
		}
		// n is bounded by MaxInt32, so the pair count cannot overflow.
		maxPairs := int64(n) * int64(n-1) / 2
		if m < 0 || m > maxPairs {
			return nil, fmt.Errorf("spec: gnm edge count %d out of [0, %d]", m, maxPairs)
		}
		return func() (*graph.Graph, error) { return gen.GNMErr(n, m, seed) }, nil
	case "ba":
		n, err := p.Int("n", -1)
		if err != nil {
			return nil, err
		}
		// "m" is this grammar's historical key; "d" (the model
		// registry's name for the same quantity) is an accepted alias.
		_, hasM := p.String("m")
		_, hasD := p.String("d")
		m, err := p.Int("m", 3)
		if err != nil {
			return nil, err
		}
		d, err := p.Int("d", 0)
		if err != nil {
			return nil, err
		}
		switch {
		case !hasM && hasD:
			m = d
		case hasM && hasD && d != m:
			return nil, fmt.Errorf("spec: ba parameters \"m\" and \"d\" are aliases and disagree (%d vs %d)", m, d)
		}
		return func() (*graph.Graph, error) { return gen.BarabasiAlbertErr(n, m, seed) }, nil
	case "web":
		n, err := p.Int("n", -1)
		if err != nil {
			return nil, err
		}
		m, err := p.Int("m", 3)
		if err != nil {
			return nil, err
		}
		pt, err := p.Float("pt", 0.7)
		if err != nil {
			return nil, err
		}
		return func() (*graph.Graph, error) { return gen.WebGraph(n, m, pt, seed), nil }, nil
	case "pa1":
		n, err := p.Int("n", -1)
		if err != nil {
			return nil, err
		}
		return func() (*graph.Graph, error) { return gen.TriangleLimitedPA(n, seed), nil }, nil
	case "rmat":
		scale, err := p.Int("scale", -1)
		if err != nil {
			return nil, err
		}
		a, err := p.Float("a", 0.57)
		if err != nil {
			return nil, err
		}
		b, err := p.Float("b", 0.19)
		if err != nil {
			return nil, err
		}
		c, err := p.Float("c", 0.19)
		if err != nil {
			return nil, err
		}
		d, err := p.Float("d", 0.05)
		if err != nil {
			return nil, err
		}
		// The default edge budget matches the model registry's default,
		// clamped to the explicit-graph cap — omitting edges= must never
		// fail, even at scales whose edge-factor default exceeds what an
		// in-memory factor graph can hold.
		def := min(model.DefaultRMATEdges(scale, a, b, c, d), gen.MaxExplicitRMATEdges)
		edges, err := p.Int64("edges", def)
		if err != nil {
			return nil, err
		}
		return func() (*graph.Graph, error) { return gen.RMATErr(scale, edges, a, b, c, d, seed) }, nil
	case "rgg2d", "rgg3d":
		n, err := boundedVertexCount(p)
		if err != nil {
			return nil, err
		}
		r, err := p.FloatReq("r")
		if err != nil {
			return nil, err
		}
		dim := 2
		if kind == "rgg3d" {
			dim = 3
		}
		return func() (*graph.Graph, error) {
			if dim == 3 {
				return gen.RGG3D(int64(n), r, seed)
			}
			return gen.RGG2D(int64(n), r, seed)
		}, nil
	case "rhg":
		n, err := boundedVertexCount(p)
		if err != nil {
			return nil, err
		}
		d, err := p.FloatReq("d")
		if err != nil {
			return nil, err
		}
		gamma, err := p.Float("gamma", 3)
		if err != nil {
			return nil, err
		}
		return func() (*graph.Graph, error) { return gen.RHG(int64(n), d, gamma, seed) }, nil
	case "grid2d", "grid3d":
		x, err := p.Int64("x", -1)
		if err != nil {
			return nil, err
		}
		y, err := p.Int64("y", -1)
		if err != nil {
			return nil, err
		}
		z := int64(1)
		if kind == "grid3d" {
			if z, err = p.Int64("z", -1); err != nil {
				return nil, err
			}
		}
		prob, err := p.Float("p", 1)
		if err != nil {
			return nil, err
		}
		wrap, err := p.Bool("wrap", false)
		if err != nil {
			return nil, err
		}
		if n := x * y * z; x > 0 && y > 0 && z > 0 && n > math.MaxInt32 {
			return nil, fmt.Errorf("spec: grid with %d vertices too large for an explicit factor", n)
		}
		return func() (*graph.Graph, error) {
			if kind == "grid3d" {
				return gen.Grid3D(x, y, z, prob, wrap, seed)
			}
			return gen.Grid2D(x, y, prob, wrap, seed)
		}, nil
	case "file":
		path, ok := p.String("path")
		if !ok {
			return nil, fmt.Errorf("spec: file requires path=")
		}
		n, err := p.Int("n", -1)
		if err != nil {
			return nil, err
		}
		return func() (*graph.Graph, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return gio.ReadEdgeList(f, n, true)
		}, nil
	default:
		return nil, fmt.Errorf("spec: unknown generator kind %q", kind)
	}
}
