package spec

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseFamilies(t *testing.T) {
	cases := []struct {
		spec     string
		vertices int
		loops    int64
	}{
		{"clique:n=5", 5, 0},
		{"jclique:n=4", 4, 4},
		{"hubcycle:c=4", 5, 0},
		{"hubcycle", 5, 0},
		{"cycle:n=7", 7, 0},
		{"path:n=7", 7, 0},
		{"star:n=7", 7, 0},
		{"er:n=30,p=0.2,seed=3", 30, 0},
		{"ba:n=40,m=2,seed=3", 40, 0},
		{"web:n=50,m=3,pt=0.6,seed=3", 50, 0},
		{"pa1:n=25,seed=3", 25, 0},
		{"rmat:scale=5,seed=3", 32, 0},
		{"clique:n=3+loops", 3, 3},
	}
	for _, c := range cases {
		g, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if g.NumVertices() != c.vertices {
			t.Errorf("%s: vertices = %d, want %d", c.spec, g.NumVertices(), c.vertices)
		}
		if g.NumLoops() != c.loops {
			t.Errorf("%s: loops = %d, want %d", c.spec, g.NumLoops(), c.loops)
		}
	}
}

func TestParseDeterministic(t *testing.T) {
	a, err := Parse("web:n=60,m=3,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("web:n=60,m=3,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same spec produced different graphs")
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"nope:n=3", "clique", "clique:n=x", "er:n=10,p=zz",
		"clique:n", "file:n=3", "ba:n=10,seed=-1",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("%q: expected error", s)
		}
	}
}

func TestParseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.tsv")
	if err := os.WriteFile(path, []byte("0\t1\n1\t2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := Parse("file:path=" + path + ",n=3")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdgesUndirected() != 2 || !g.IsSymmetric() {
		t.Fatal("file parse wrong")
	}
}

func TestParseAllErrorBranches(t *testing.T) {
	cases := []string{
		"jclique",            // missing n
		"cycle",              // missing n
		"path",               // missing n
		"star",               // missing n
		"ba",                 // missing n
		"web",                // missing n
		"pa1",                // missing n
		"rmat",               // missing scale
		"er",                 // missing n
		"hubcycle:c=x",       // bad int
		"web:n=10,m=2,pt=zz", // bad float
		"rmat:scale=5,a=zz",  // bad float
		"rmat:scale=5,edges=zz",
		"file:path=/does/not/exist,n=3",
		"er:n=10+loops+loops", // malformed suffix params
	}
	for _, s := range cases {
		if _, err := Parse(s); err == nil {
			t.Errorf("%q: expected error", s)
		}
	}
}

func TestParseLoopsSuffixOnRandom(t *testing.T) {
	g, err := Parse("ba:n=20,m=2,seed=4+loops")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLoops() != 20 {
		t.Errorf("loops = %d, want 20", g.NumLoops())
	}
}

func TestParseRejectsUnknownKeys(t *testing.T) {
	for _, s := range []string{
		"er:n=10,pp=0.5", // typo'd probability must not silently default
		"clique:n=5,m=3",
		"rmat:scale=5,scle=6",
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("%q: unknown key accepted", s)
		}
	}
}

func TestParseOutOfRangeRandomParams(t *testing.T) {
	// The seed implementation accepted any ER probability, acting as its
	// clamp into [0, 1]; the streamed adapter must preserve that.
	g, err := Parse("er:n=20,p=1.5,seed=1")
	if err != nil {
		t.Fatalf("p > 1: %v", err)
	}
	if got, want := g.NumEdgesUndirected(), int64(20*19/2); got != want {
		t.Errorf("p>1 edges = %d, want complete %d", got, want)
	}
	g, err = Parse("er:n=20,p=-1,seed=1")
	if err != nil {
		t.Fatalf("p < 0: %v", err)
	}
	if got := g.NumEdgesUndirected(); got != 0 {
		t.Errorf("p<0 edges = %d, want 0", got)
	}
	// G(n, m) out of range is a spec error, not a process crash.
	if _, err := Parse("gnm:n=10,m=1000"); err == nil {
		t.Error("gnm m > pairs accepted")
	}
	if _, err := Parse("gnm:n=10,m=-1"); err == nil {
		t.Error("gnm negative m accepted")
	}
}

func TestParseCapacityErrorsNotPanics(t *testing.T) {
	// Model capacity limits reachable from validated spec input must
	// surface as spec errors, never process panics.
	for _, s := range []string{
		"gnm:n=300000,m=9000000000",       // within pair range, past the chunk budget
		"rmat:scale=30,edges=68719476736", // past the explicit-graph edge cap
	} {
		g, err := Parse(s)
		if err == nil {
			t.Errorf("%q: expected a capacity error, got a %d-vertex graph", s, g.NumVertices())
		}
	}
}

func TestParseRGGFactors(t *testing.T) {
	g, err := Parse("rgg2d:n=400,r=0.08,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 400 || !g.IsSymmetric() || g.NumEdgesUndirected() == 0 {
		t.Fatal("rgg2d factor malformed or empty")
	}
	g3, err := Parse("rgg3d:n=300,r=0.2,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumVertices() != 300 || g3.NumEdgesUndirected() == 0 {
		t.Fatal("rgg3d factor malformed or empty")
	}
	// Determinism and the +loops suffix compose like every other kind.
	h, err := Parse("rgg2d:n=400,r=0.08,seed=5+loops")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLoops() != 400 {
		t.Errorf("rgg2d+loops has %d loops, want 400", h.NumLoops())
	}
	for _, bad := range []string{
		"rgg2d:n=400",               // r required
		"rgg2d:n=400,r=2",           // radius out of (0, 1]
		"rgg2d:n=400,r=0.1,rad=0.2", // unknown key
		"rgg3d:n=-1,r=0.1",          // negative n
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestParseBAErrorsNotPanics(t *testing.T) {
	// The streamed BA core's range caps (and the legacy n > m >= 1
	// guard) must surface as spec errors, never process panics.
	for _, bad := range []string{
		"ba:n=1048578,m=1048577", // m past the attachment-degree cap
		"ba:n=3,m=3",             // n < m+1
		"ba:n=10,m=0",            // m < 1
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestParseBADegreeAliases(t *testing.T) {
	a, err := Parse("ba:n=300,m=3,seed=6")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("ba:n=300,d=3,seed=6")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("ba m= and d= factor specs differ")
	}
	if _, err := Parse("ba:n=300,m=3,d=4"); err == nil {
		t.Error("disagreeing ba m/d aliases accepted")
	}
}
