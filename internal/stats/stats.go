// Package stats provides the distribution analysis of §III.A: degree and
// triangle histograms, complementary CDFs, max-degree ratios (whose
// squaring under the Kronecker product the paper highlights), and a Hill
// estimator for heavy-tail exponents.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts occurrences of each value.
type Histogram struct {
	counts map[int64]int64
	total  int64
}

// NewHistogram builds a histogram from values.
func NewHistogram(values []int64) *Histogram {
	h := &Histogram{counts: map[int64]int64{}}
	for _, v := range values {
		h.Add(v)
	}
	return h
}

// Add records one observation.
func (h *Histogram) Add(v int64) {
	h.counts[v]++
	h.total++
}

// AddN records n observations of value v (for closed-form product
// histograms).
func (h *Histogram) AddN(v, n int64) {
	h.counts[v] += n
	h.total += n
}

// Count returns the multiplicity of v.
func (h *Histogram) Count(v int64) int64 { return h.counts[v] }

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Support returns the distinct observed values, sorted.
func (h *Histogram) Support() []int64 {
	out := make([]int64, 0, len(h.counts))
	for v := range h.counts {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Max returns the largest observed value (0 for an empty histogram).
func (h *Histogram) Max() int64 {
	var mx int64
	for v := range h.counts {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Mean returns the mean observation.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// CCDF returns P(X >= x) for each x in the sorted support.
func (h *Histogram) CCDF() (xs []int64, ps []float64) {
	xs = h.Support()
	ps = make([]float64, len(xs))
	var above int64 = h.total
	for i, x := range xs {
		ps[i] = float64(above) / float64(h.total)
		above -= h.counts[x]
	}
	return xs, ps
}

// KronHistogram returns the histogram of u ⊗ v given the histograms of u
// and v: the product distribution. This is how degree distributions of
// products are computed without touching n_A·n_B values.
func KronHistogram(hu, hv *Histogram) *Histogram {
	out := &Histogram{counts: map[int64]int64{}}
	for a, ca := range hu.counts {
		for b, cb := range hv.counts {
			out.AddN(a*b, ca*cb)
		}
	}
	return out
}

// String renders the histogram compactly.
func (h *Histogram) String() string {
	xs := h.Support()
	s := ""
	for _, x := range xs {
		s += fmt.Sprintf("%d:%d ", x, h.counts[x])
	}
	return s
}

// MaxDegreeRatio returns ‖d‖∞ / n, the quantity §III.A shows gets
// squared by the Kronecker product.
func MaxDegreeRatio(degrees []int64) float64 {
	if len(degrees) == 0 {
		return 0
	}
	var mx int64
	for _, d := range degrees {
		if d > mx {
			mx = d
		}
	}
	return float64(mx) / float64(len(degrees))
}

// HillEstimator returns the Hill estimate of the tail exponent alpha of a
// heavy-tailed sample, using the k largest observations: alpha = 1 +
// k / Σ ln(x_i / x_k). Returns NaN if fewer than k+1 positive values.
func HillEstimator(values []int64, k int) float64 {
	var pos []float64
	for _, v := range values {
		if v > 0 {
			pos = append(pos, float64(v))
		}
	}
	if k < 1 || len(pos) <= k {
		return math.NaN()
	}
	sort.Float64s(pos)
	xk := pos[len(pos)-k-1]
	var sum float64
	for i := len(pos) - k; i < len(pos); i++ {
		sum += math.Log(pos[i] / xk)
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return 1 + float64(k)/sum
}

// GiniCoefficient measures degree inequality in [0, 1): 0 for regular
// graphs, approaching 1 for extreme hubs.
func GiniCoefficient(values []int64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	var cum, weighted float64
	for i, v := range sorted {
		cum += float64(v)
		weighted += float64(v) * float64(i+1)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*cum) / (float64(n) * cum)
}
