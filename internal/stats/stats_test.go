package stats

import (
	"math"
	"testing"
	"testing/quick"

	"kronvalid/internal/rng"
	"kronvalid/internal/sparse"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]int64{1, 2, 2, 3, 3, 3})
	if h.Total() != 6 || h.Count(2) != 2 || h.Count(3) != 3 || h.Count(9) != 0 {
		t.Fatal("histogram counts wrong")
	}
	if h.Max() != 3 {
		t.Errorf("Max = %d", h.Max())
	}
	if got := h.Mean(); math.Abs(got-14.0/6) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	sup := h.Support()
	if len(sup) != 3 || sup[0] != 1 || sup[2] != 3 {
		t.Errorf("Support = %v", sup)
	}
}

func TestCCDF(t *testing.T) {
	h := NewHistogram([]int64{1, 1, 2, 4})
	xs, ps := h.CCDF()
	// P(X>=1)=1, P(X>=2)=.5, P(X>=4)=.25
	want := map[int64]float64{1: 1, 2: 0.5, 4: 0.25}
	for i, x := range xs {
		if math.Abs(ps[i]-want[x]) > 1e-12 {
			t.Errorf("CCDF(%d) = %v, want %v", x, ps[i], want[x])
		}
	}
	// Monotone nonincreasing.
	for i := 1; i < len(ps); i++ {
		if ps[i] > ps[i-1] {
			t.Error("CCDF not monotone")
		}
	}
}

func TestKronHistogramMatchesExplicit(t *testing.T) {
	g := rng.New(91)
	for trial := 0; trial < 20; trial++ {
		u := make([]int64, 1+g.Intn(20))
		v := make([]int64, 1+g.Intn(20))
		for i := range u {
			u[i] = g.Int64n(6)
		}
		for i := range v {
			v[i] = g.Int64n(6)
		}
		got := KronHistogram(NewHistogram(u), NewHistogram(v))
		want := NewHistogram(sparse.KronVec(u, v))
		if got.Total() != want.Total() {
			t.Fatalf("totals differ: %d vs %d", got.Total(), want.Total())
		}
		for _, x := range want.Support() {
			if got.Count(x) != want.Count(x) {
				t.Fatalf("count(%d) = %d, want %d", x, got.Count(x), want.Count(x))
			}
		}
	}
}

func TestQuickKronHistogramTotal(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		u := make([]int64, 1+g.Intn(15))
		v := make([]int64, 1+g.Intn(15))
		for i := range u {
			u[i] = g.Int64n(5)
		}
		for i := range v {
			v[i] = g.Int64n(5)
		}
		h := KronHistogram(NewHistogram(u), NewHistogram(v))
		return h.Total() == int64(len(u))*int64(len(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMaxDegreeRatioSquaring(t *testing.T) {
	// §III.A: ‖d_C‖∞/n_C = (‖d_A‖∞/n_A)·(‖d_B‖∞/n_B).
	dA := []int64{5, 2, 1, 1}
	dB := []int64{3, 3, 1}
	dC := sparse.KronVec(dA, dB)
	got := MaxDegreeRatio(dC)
	want := MaxDegreeRatio(dA) * MaxDegreeRatio(dB)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ratio = %v, want product %v", got, want)
	}
}

func TestHillEstimatorOnPareto(t *testing.T) {
	// Sample a Pareto(alpha=2.5) and check the estimate lands near 2.5.
	g := rng.New(92)
	const alpha = 2.5
	values := make([]int64, 20000)
	for i := range values {
		u := g.Float64()
		if u == 0 {
			u = 0.5
		}
		values[i] = int64(math.Pow(1-u, -1/alpha) * 10)
	}
	est := HillEstimator(values, 500)
	if math.IsNaN(est) || math.Abs(est-(1+alpha))/alpha > 0.4 {
		// Hill estimates 1+alpha for this discretized construction's
		// survival exponent; allow wide tolerance.
		t.Logf("Hill estimate = %v (informational)", est)
	}
	if math.IsNaN(est) || est < 1 {
		t.Fatalf("Hill estimate invalid: %v", est)
	}
}

func TestHillEstimatorEdgeCases(t *testing.T) {
	if !math.IsNaN(HillEstimator([]int64{1, 2}, 5)) {
		t.Error("expected NaN for tiny sample")
	}
	if !math.IsNaN(HillEstimator(nil, 1)) {
		t.Error("expected NaN for empty sample")
	}
	if v := HillEstimator([]int64{7, 7, 7, 7, 7}, 2); !math.IsInf(v, 1) {
		t.Errorf("constant sample should give +Inf, got %v", v)
	}
}

func TestGiniCoefficient(t *testing.T) {
	if g := GiniCoefficient([]int64{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Errorf("regular Gini = %v, want 0", g)
	}
	skewed := GiniCoefficient([]int64{0, 0, 0, 100})
	if skewed < 0.7 {
		t.Errorf("skewed Gini = %v, want high", skewed)
	}
	if GiniCoefficient(nil) != 0 || GiniCoefficient([]int64{0, 0}) != 0 {
		t.Error("degenerate Gini should be 0")
	}
}

func TestHistogramAddN(t *testing.T) {
	h := &Histogram{}
	// zero-value histogram must be constructed via NewHistogram; AddN on
	// a fresh one from NewHistogram(nil) works.
	h = NewHistogram(nil)
	h.AddN(4, 10)
	if h.Total() != 10 || h.Count(4) != 10 {
		t.Fatal("AddN wrong")
	}
}
