package triangle

import (
	"sync/atomic"

	"kronvalid/internal/graph"
	"kronvalid/internal/par"
)

// CountNodeIterator is the unordered node-iterator baseline: for every
// vertex v and every pair of id-ordered neighbors, probe the closing
// edge by binary search. It is the textbook algorithm Chiba–Nishizeki
// ordering improves on — Θ(Σ d_v²) wedge work instead of O(|E|^{3/2}) —
// and exists here as the ablation baseline for the DESIGN.md §4 choice of
// the forward algorithm (compare wedge checks in the benchmarks).
func CountNodeIterator(g *graph.Graph) *Result {
	if !g.IsSymmetric() {
		panic("triangle: CountNodeIterator requires an undirected graph")
	}
	work := g.WithoutLoops()
	n := work.NumVertices()
	perVertex := make([]int64, n)
	deltaVals := make([]int64, work.NumArcs())
	var wedges, total atomic.Int64
	arcIndex := arcIndexer(work)

	par.ForDynamic(int64(n), 32, func(vi int64) {
		v := int32(vi)
		nb := work.Neighbors(v)
		var localWedges, localTri int64
		for i := 0; i < len(nb); i++ {
			if nb[i] <= v {
				continue // count each triangle at its smallest-id vertex
			}
			for j := i + 1; j < len(nb); j++ {
				localWedges++
				if work.HasEdge(nb[i], nb[j]) {
					localTri++
					u, w := nb[i], nb[j]
					atomic.AddInt64(&perVertex[v], 1)
					atomic.AddInt64(&perVertex[u], 1)
					atomic.AddInt64(&perVertex[w], 1)
					atomic.AddInt64(&deltaVals[arcIndex(v, u)], 1)
					atomic.AddInt64(&deltaVals[arcIndex(u, v)], 1)
					atomic.AddInt64(&deltaVals[arcIndex(v, w)], 1)
					atomic.AddInt64(&deltaVals[arcIndex(w, v)], 1)
					atomic.AddInt64(&deltaVals[arcIndex(u, w)], 1)
					atomic.AddInt64(&deltaVals[arcIndex(w, u)], 1)
				}
			}
		}
		wedges.Add(localWedges)
		total.Add(localTri)
	})
	return &Result{
		PerVertex:   perVertex,
		EdgeDelta:   deltaMatrix(work, deltaVals),
		Total:       total.Load(),
		WedgeChecks: wedges.Load(),
	}
}
