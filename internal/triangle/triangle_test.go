package triangle

import (
	"math"
	"testing"
	"testing/quick"

	"kronvalid/internal/graph"
	"kronvalid/internal/rng"
	"kronvalid/internal/sparse"
)

// randomUndirected builds a random undirected graph, optionally with some
// self loops.
func randomUndirected(g *rng.Xoshiro256, n int, avgDeg float64, loops bool) *graph.Graph {
	var edges []graph.Edge
	target := int(avgDeg * float64(n) / 2)
	for i := 0; i < target; i++ {
		u, v := int32(g.Intn(n)), int32(g.Intn(n))
		if u == v && !loops {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.FromEdges(n, edges, true)
}

// bruteForce computes t and Δ by testing all vertex triples: O(n^3),
// ground truth for everything else.
func bruteForce(gr *graph.Graph) (t []int64, delta *sparse.Matrix, total int64) {
	work := gr.WithoutLoops()
	n := work.NumVertices()
	t = make([]int64, n)
	var ts []sparse.Triplet
	dvals := map[[2]int32]int64{}
	for u := int32(0); u < int32(n); u++ {
		for v := u + 1; v < int32(n); v++ {
			if !work.HasEdge(u, v) {
				continue
			}
			for w := v + 1; w < int32(n); w++ {
				if work.HasEdge(u, w) && work.HasEdge(v, w) {
					total++
					t[u]++
					t[v]++
					t[w]++
					for _, e := range [][2]int32{{u, v}, {v, u}, {u, w}, {w, u}, {v, w}, {w, v}} {
						dvals[e]++
					}
				}
			}
		}
	}
	for e, c := range dvals {
		ts = append(ts, sparse.Triplet{Row: int(e[0]), Col: int(e[1]), Val: c})
	}
	delta = sparse.FromTriplets(n, n, ts)
	return t, delta, total
}

// algebraic computes t_A = ½ diag(A'^3) and Δ_A = A' ∘ A'^2 with A' the
// loop-free adjacency — the paper's Def. 5 / Def. 6 written in matrices.
func algebraic(gr *graph.Graph) (t []int64, delta *sparse.Matrix) {
	a := gr.WithoutLoops().ToSparse()
	a2 := a.Mul(a)
	cube := a2.Mul(a).Diag()
	t = make([]int64, len(cube))
	for i, v := range cube {
		if v%2 != 0 {
			panic("odd diag(A^3) entry")
		}
		t[i] = v / 2
	}
	return t, a.Hadamard(a2)
}

func TestCountAgainstBruteForce(t *testing.T) {
	g := rng.New(51)
	for trial := 0; trial < 25; trial++ {
		n := 3 + g.Intn(40)
		gr := randomUndirected(g, n, 4, trial%3 == 0)
		res := Count(gr)
		wantT, wantD, wantTotal := bruteForce(gr)
		if !sparse.EqualVec(res.PerVertex, wantT) {
			t.Fatalf("trial %d: PerVertex = %v, want %v", trial, res.PerVertex, wantT)
		}
		if !res.EdgeDelta.Equal(wantD) {
			t.Fatalf("trial %d: EdgeDelta mismatch:\n%v\nvs\n%v", trial, res.EdgeDelta, wantD)
		}
		if res.Total != wantTotal {
			t.Fatalf("trial %d: Total = %d, want %d", trial, res.Total, wantTotal)
		}
	}
}

func TestCountAgainstAlgebraic(t *testing.T) {
	g := rng.New(52)
	for trial := 0; trial < 25; trial++ {
		n := 3 + g.Intn(60)
		gr := randomUndirected(g, n, 6, trial%2 == 0)
		res := Count(gr)
		wantT, wantD := algebraic(gr)
		if !sparse.EqualVec(res.PerVertex, wantT) {
			t.Fatalf("trial %d: per-vertex disagrees with ½diag(A³)", trial)
		}
		if !res.EdgeDelta.Equal(wantD) {
			t.Fatalf("trial %d: edge delta disagrees with A∘A²", trial)
		}
	}
}

func TestCountClique(t *testing.T) {
	// K_n: each vertex in C(n-1,2) triangles, each edge in n-2, total C(n,3).
	for _, n := range []int{3, 4, 5, 8, 12} {
		var edges []graph.Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
			}
		}
		gr := graph.FromEdges(n, edges, true)
		res := Count(gr)
		nn := int64(n)
		wantVertex := (nn - 1) * (nn - 2) / 2
		wantTotal := nn * (nn - 1) * (nn - 2) / 6
		for v, tv := range res.PerVertex {
			if tv != wantVertex {
				t.Errorf("K_%d: t[%d] = %d, want %d", n, v, tv, wantVertex)
			}
		}
		if res.Total != wantTotal {
			t.Errorf("K_%d: total = %d, want %d", n, res.Total, wantTotal)
		}
		res.EdgeDelta.Each(func(r, c int, v int64) bool {
			if v != nn-2 {
				t.Errorf("K_%d: Δ(%d,%d) = %d, want %d", n, r, c, v, nn-2)
				return false
			}
			return true
		})
		if res.EdgeDelta.NNZ() != nn*(nn-1) {
			t.Errorf("K_%d: Δ nnz = %d", n, res.EdgeDelta.NNZ())
		}
	}
}

func TestCountTriangleFree(t *testing.T) {
	// Even cycle C_6 has no triangles.
	gr := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 0}}, true)
	res := Count(gr)
	if res.Total != 0 || sparse.SumVec(res.PerVertex) != 0 || res.EdgeDelta.NNZ() != 0 {
		t.Fatal("C_6 should be triangle-free")
	}
}

func TestSelfLoopsDoNotCreateTriangles(t *testing.T) {
	g := rng.New(53)
	for trial := 0; trial < 10; trial++ {
		gr := randomUndirected(g, 20, 4, false)
		withLoops := gr.WithAllLoops()
		a, b := Count(gr), Count(withLoops)
		if a.Total != b.Total || !sparse.EqualVec(a.PerVertex, b.PerVertex) || !a.EdgeDelta.Equal(b.EdgeDelta) {
			t.Fatal("self loops changed triangle statistics")
		}
	}
}

func TestCountPanicsOnDirected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on directed graph")
		}
	}()
	Count(graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, false))
}

func TestTotalsConsistency(t *testing.T) {
	g := rng.New(54)
	gr := randomUndirected(g, 50, 6, false)
	res := Count(gr)
	if TotalFromPerVertex(res.PerVertex) != res.Total {
		t.Error("Σt/3 != τ")
	}
	if TotalFromEdgeDelta(res.EdgeDelta) != res.Total {
		t.Error("ΣΔ/6 != τ")
	}
	// t_A = ½ Δ_A·1 (stated under Def. 6).
	half := res.EdgeDelta.RowSums()
	for i := range half {
		if half[i] != 2*res.PerVertex[i] {
			t.Fatalf("Δ·1 != 2t at %d", i)
		}
	}
}

func TestEachTriangleMatchesCount(t *testing.T) {
	g := rng.New(55)
	for trial := 0; trial < 15; trial++ {
		gr := randomUndirected(g, 30, 5, trial%2 == 0)
		perVertex := make([]int64, gr.NumVertices())
		var total int64
		seen := map[[3]int32]bool{}
		EachTriangle(gr, func(u, v, w int32) {
			if u == v || v == w || u == w {
				t.Fatal("degenerate triangle")
			}
			key := sorted3(u, v, w)
			if seen[key] {
				t.Fatalf("triangle %v enumerated twice", key)
			}
			seen[key] = true
			total++
			perVertex[u]++
			perVertex[v]++
			perVertex[w]++
		})
		res := Count(gr)
		if total != res.Total || !sparse.EqualVec(perVertex, res.PerVertex) {
			t.Fatal("EachTriangle disagrees with Count")
		}
	}
}

func TestEachTriangleOnDirectedUsesUndirectedVersion(t *testing.T) {
	// Directed 3-cycle: undirected version is one triangle.
	gr := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, false)
	count := 0
	EachTriangle(gr, func(u, v, w int32) { count++ })
	if count != 1 {
		t.Fatalf("directed 3-cycle: %d triangles, want 1", count)
	}
}

func TestWedgeChecksPositiveAndBounded(t *testing.T) {
	g := rng.New(56)
	gr := randomUndirected(g, 200, 8, false)
	res := Count(gr)
	if res.Total > 0 && res.WedgeChecks == 0 {
		t.Error("found triangles with zero wedge checks")
	}
	// Forward-algorithm comparisons are bounded by sum over edges of
	// min-degree side; a very loose upper bound is arcs * maxdeg.
	m := gr.NumArcs()
	var maxd int64
	for v := 0; v < gr.NumVertices(); v++ {
		if d := gr.OutDegreeRaw(int32(v)); d > maxd {
			maxd = d
		}
	}
	if res.WedgeChecks > m*maxd {
		t.Errorf("wedge checks %d exceed loose bound %d", res.WedgeChecks, m*maxd)
	}
}

func TestClusteringCoefficients(t *testing.T) {
	// Triangle: all local CCs 1; global transitivity 1.
	tri := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, true)
	for v, cc := range LocalClusteringCoefficients(tri) {
		if math.Abs(cc-1) > 1e-12 {
			t.Errorf("triangle cc[%d] = %v", v, cc)
		}
	}
	if gcc := GlobalClusteringCoefficient(tri); math.Abs(gcc-1) > 1e-12 {
		t.Errorf("triangle transitivity = %v", gcc)
	}
	// Path 0-1-2: no triangles anywhere.
	path := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, true)
	for v, cc := range LocalClusteringCoefficients(path) {
		if cc != 0 {
			t.Errorf("path cc[%d] = %v", v, cc)
		}
	}
	if GlobalClusteringCoefficient(path) != 0 {
		t.Error("path transitivity nonzero")
	}
}

func TestQuickParityOfDiagCube(t *testing.T) {
	// Property: diag(A³) entries are even for symmetric loop-free A —
	// exercised via Count against algebraic on random graphs.
	f := func(seed uint64) bool {
		g := rng.New(seed)
		gr := randomUndirected(g, 3+g.Intn(25), 4, false)
		res := Count(gr)
		wantT, _ := algebraic(gr)
		return sparse.EqualVec(res.PerVertex, wantT)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func sorted3(a, b, c int32) [3]int32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return [3]int32{a, b, c}
}

func BenchmarkCount(b *testing.B) {
	g := rng.New(1)
	gr := randomUndirected(g, 20000, 20, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Count(gr)
	}
}

func TestNodeIteratorMatchesForward(t *testing.T) {
	g := rng.New(57)
	for trial := 0; trial < 15; trial++ {
		gr := randomUndirected(g, 5+g.Intn(40), 5, trial%2 == 0)
		fwd := Count(gr)
		naive := CountNodeIterator(gr)
		if fwd.Total != naive.Total {
			t.Fatalf("trial %d: totals %d vs %d", trial, fwd.Total, naive.Total)
		}
		if !sparse.EqualVec(fwd.PerVertex, naive.PerVertex) {
			t.Fatalf("trial %d: per-vertex disagreement", trial)
		}
		if !fwd.EdgeDelta.Equal(naive.EdgeDelta) {
			t.Fatalf("trial %d: edge-delta disagreement", trial)
		}
	}
}

func TestForwardBeatsNodeIteratorOnSkew(t *testing.T) {
	// On a hub-dominated graph the degree ordering must do asymptotically
	// fewer wedge checks than the unordered baseline: the hub's d² pairs
	// are exactly what Chiba-Nishizeki avoids.
	var edges []graph.Edge
	const leaves = 600
	for v := int32(1); v <= leaves; v++ {
		edges = append(edges, graph.Edge{U: 0, V: v})
		if v > 1 {
			edges = append(edges, graph.Edge{U: v - 1, V: v})
		}
	}
	gr := graph.FromEdges(leaves+1, edges, true)
	fwd := Count(gr)
	naive := CountNodeIterator(gr)
	if fwd.Total != naive.Total {
		t.Fatal("totals differ")
	}
	if fwd.WedgeChecks*10 > naive.WedgeChecks {
		t.Errorf("forward %d wedge checks vs naive %d: expected >=10x gap",
			fwd.WedgeChecks, naive.WedgeChecks)
	}
}

func BenchmarkCountNodeIterator(b *testing.B) {
	g := rng.New(1)
	gr := randomUndirected(g, 20000, 20, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CountNodeIterator(gr)
	}
}
