// Package triangle computes exact triangle statistics of explicit graphs:
// per-vertex participation t_A (Def. 5), per-edge participation Δ_A
// (Def. 6), and the total count τ(A). It is both the baseline the paper's
// Kronecker formulas are validated against and the engine that computes
// factor statistics during generation.
//
// The core algorithm is the "forward" (compact-forward) algorithm in the
// Chiba–Nishizeki degree ordering: vertices are ranked by non-decreasing
// degree, adjacency is restricted to higher-ranked neighbors, and each
// triangle is discovered exactly once as an ordered triple
// rank(u) < rank(v) < rank(w) via sorted-list intersection. The worst-case
// work is O(|E|^{3/2}); the number of comparisons performed is reported as
// WedgeChecks, the unit the paper uses for its sublinearity claim
// ("7,734,429 wedge checks" for a hundred-trillion-triangle product).
//
// Self loops never participate in triangles (Def. 5 and Def. 6 strip the
// diagonal); the package ignores them.
package triangle

import (
	"sort"
	"sync/atomic"

	"kronvalid/internal/graph"
	"kronvalid/internal/par"
	"kronvalid/internal/sparse"
)

// Result holds the exact triangle statistics of one graph.
type Result struct {
	// PerVertex is t_A: the number of triangles each vertex participates
	// in.
	PerVertex []int64
	// EdgeDelta is Δ_A: a symmetric matrix whose (i,j) entry is the
	// number of triangles containing edge (i,j). The diagonal is zero.
	EdgeDelta *sparse.Matrix
	// Total is τ(A), the number of distinct triangles.
	Total int64
	// WedgeChecks counts sorted-intersection comparisons performed, the
	// paper's cost unit for ground-truth computation.
	WedgeChecks int64
}

// Count computes exact triangle statistics for an undirected graph
// (self loops are ignored). It panics if g is not symmetric.
func Count(g *graph.Graph) *Result {
	if !g.IsSymmetric() {
		panic("triangle: Count requires an undirected (symmetric) graph")
	}
	n := g.NumVertices()
	work := g.WithoutLoops()

	rank := degreeRank(work)

	// Forward adjacency: fwd[u] lists neighbors v with rank(v) > rank(u),
	// sorted by rank. Stored flat.
	fwdOff := make([]int64, n+1)
	for u := 0; u < n; u++ {
		cnt := 0
		for _, v := range work.Neighbors(int32(u)) {
			if rank[v] > rank[u] {
				cnt++
			}
		}
		fwdOff[u+1] = fwdOff[u] + int64(cnt)
	}
	fwd := make([]int32, fwdOff[n])
	par.ForBlocked(int64(n), func(lo, hi int64) {
		for u := lo; u < hi; u++ {
			pos := fwdOff[u]
			for _, v := range work.Neighbors(int32(u)) {
				if rank[v] > rank[u] {
					fwd[pos] = v
					pos++
				}
			}
			seg := fwd[fwdOff[u]:pos]
			sort.Slice(seg, func(a, b int) bool { return rank[seg[a]] < rank[seg[b]] })
		}
	})

	perVertex := make([]int64, n)
	deltaVals := make([]int64, work.NumArcs()) // aligned to work's arc order
	var wedges, total atomic.Int64

	arcIndex := arcIndexer(work)

	par.ForDynamic(int64(n), 64, func(ui int64) {
		u := int32(ui)
		fu := fwd[fwdOff[u]:fwdOff[u+1]]
		var localWedges, localTri int64
		for _, v := range fu {
			fv := fwd[fwdOff[v]:fwdOff[v+1]]
			// Intersect fu and fv by rank order.
			i, j := 0, 0
			for i < len(fu) && j < len(fv) {
				localWedges++
				ru, rv := rank[fu[i]], rank[fv[j]]
				switch {
				case ru < rv:
					i++
				case rv < ru:
					j++
				default:
					w := fu[i]
					localTri++
					atomic.AddInt64(&perVertex[u], 1)
					atomic.AddInt64(&perVertex[v], 1)
					atomic.AddInt64(&perVertex[w], 1)
					atomic.AddInt64(&deltaVals[arcIndex(u, v)], 1)
					atomic.AddInt64(&deltaVals[arcIndex(v, u)], 1)
					atomic.AddInt64(&deltaVals[arcIndex(u, w)], 1)
					atomic.AddInt64(&deltaVals[arcIndex(w, u)], 1)
					atomic.AddInt64(&deltaVals[arcIndex(v, w)], 1)
					atomic.AddInt64(&deltaVals[arcIndex(w, v)], 1)
					i++
					j++
				}
			}
		}
		wedges.Add(localWedges)
		total.Add(localTri)
	})

	return &Result{
		PerVertex:   perVertex,
		EdgeDelta:   deltaMatrix(work, deltaVals),
		Total:       total.Load(),
		WedgeChecks: wedges.Load(),
	}
}

// degreeRank returns a permutation rank where rank[v] orders vertices by
// (degree, id) increasing. Ties broken by id keep the order deterministic.
func degreeRank(g *graph.Graph) []int32 {
	n := g.NumVertices()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.OutDegreeRaw(order[a]), g.OutDegreeRaw(order[b])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	rank := make([]int32, n)
	for r, v := range order {
		rank[v] = int32(r)
	}
	return rank
}

// arcIndexer returns a function mapping arc (u,v) to its position in g's
// flattened adjacency, by binary search within u's neighbor slice.
func arcIndexer(g *graph.Graph) func(u, v int32) int64 {
	return func(u, v int32) int64 {
		nb := g.Neighbors(u)
		k := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
		if k == len(nb) || nb[k] != v {
			panic("triangle: arc not found")
		}
		return g.ArcOffset(u) + int64(k)
	}
}

// deltaMatrix assembles the Δ matrix from per-arc counts aligned with g's
// adjacency order.
func deltaMatrix(g *graph.Graph, vals []int64) *sparse.Matrix {
	n := g.NumVertices()
	var ts []sparse.Triplet
	idx := 0
	g.EachArc(func(u, v int32) bool {
		if vals[idx] != 0 {
			ts = append(ts, sparse.Triplet{Row: int(u), Col: int(v), Val: vals[idx]})
		}
		idx++
		return true
	})
	return sparse.FromTriplets(n, n, ts)
}

// EachTriangle enumerates every triangle of the undirected version of g
// exactly once, calling fn(u, v, w) with three distinct vertices (order
// unspecified but deterministic). Self loops are ignored. Enumeration is
// serial; it is the reference used by the census packages.
func EachTriangle(g *graph.Graph, fn func(u, v, w int32)) {
	work := g
	if !g.IsSymmetric() {
		work = g.Undirected()
	}
	work = work.WithoutLoops()
	n := work.NumVertices()
	rank := degreeRank(work)
	fwd := make([][]int32, n)
	for u := 0; u < n; u++ {
		for _, v := range work.Neighbors(int32(u)) {
			if rank[v] > rank[u] {
				fwd[u] = append(fwd[u], v)
			}
		}
		seg := fwd[u]
		sort.Slice(seg, func(a, b int) bool { return rank[seg[a]] < rank[seg[b]] })
	}
	for u := 0; u < n; u++ {
		fu := fwd[u]
		for _, v := range fu {
			fv := fwd[v]
			i, j := 0, 0
			for i < len(fu) && j < len(fv) {
				ru, rv := rank[fu[i]], rank[fv[j]]
				switch {
				case ru < rv:
					i++
				case rv < ru:
					j++
				default:
					fn(int32(u), v, fu[i])
					i++
					j++
				}
			}
		}
	}
}

// TotalFromPerVertex recovers τ = (1/3)·Σ t_v, validating divisibility.
func TotalFromPerVertex(t []int64) int64 {
	s := sparse.SumVec(t)
	if s%3 != 0 {
		panic("triangle: per-vertex sum not divisible by 3")
	}
	return s / 3
}

// TotalFromEdgeDelta recovers τ = (1/6)·Σ_{ij} Δ_ij for a symmetric Δ.
func TotalFromEdgeDelta(d *sparse.Matrix) int64 {
	s := d.Total()
	if s%6 != 0 {
		panic("triangle: edge-delta sum not divisible by 6")
	}
	return s / 6
}

// LocalClusteringCoefficients returns the per-vertex local clustering
// coefficient 2·t_v / (d_v·(d_v-1)) of the undirected loop-free graph,
// one of the paper's motivating downstream statistics.
func LocalClusteringCoefficients(g *graph.Graph) []float64 {
	res := Count(g)
	work := g.WithoutLoops()
	out := make([]float64, g.NumVertices())
	for v := range out {
		d := work.OutDegreeRaw(int32(v))
		if d >= 2 {
			out[v] = 2 * float64(res.PerVertex[v]) / float64(d*(d-1))
		}
	}
	return out
}

// GlobalClusteringCoefficient returns 3τ / #wedges (transitivity).
func GlobalClusteringCoefficient(g *graph.Graph) float64 {
	res := Count(g)
	work := g.WithoutLoops()
	var wedges int64
	for v := 0; v < work.NumVertices(); v++ {
		d := work.OutDegreeRaw(int32(v))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return 3 * float64(res.Total) / float64(wedges)
}
