package model

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"kronvalid/internal/params"
)

// Params re-exports the shared spec-parameter accessor (see
// internal/params): typed reads that record consumption, so New can
// reject unknown (typically misspelled) keys — a silent typo in a
// generation spec would otherwise silently change the generated graph.
type Params = params.Params

// Builder constructs a generator from parsed parameters.
type Builder func(p *Params) (Generator, error)

var registry = map[string]Builder{}

// Register installs a model kind; it panics on duplicates, which are
// programming errors.
func Register(kind string, b Builder) {
	if _, dup := registry[kind]; dup {
		panic("model: duplicate registration of kind " + kind)
	}
	registry[kind] = b
}

// Kinds lists the registered model kinds, sorted.
func Kinds() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// New builds a generator from a spec string "kind:k=v,k=v,…", e.g.
// "er:n=100000,p=0.001,seed=42". Every generator's Name() is a valid
// spec that reproduces the identical stream.
func New(spec string) (Generator, error) {
	kind, p, err := params.Parse(spec)
	if err != nil {
		return nil, fmt.Errorf("model: %v", err)
	}
	b, ok := registry[kind]
	if !ok {
		return nil, fmt.Errorf("model: unknown model kind %q (have %s)", kind, strings.Join(Kinds(), ", "))
	}
	g, err := b(p)
	if err != nil {
		return nil, modelErr(err)
	}
	if err := p.CheckUnused(kind); err != nil {
		return nil, fmt.Errorf("model: %v", err)
	}
	return g, nil
}

// modelErr prefixes parameter-layer errors without double-prefixing
// constructor errors that already carry "model: ".
func modelErr(err error) error {
	if strings.HasPrefix(err.Error(), "model: ") {
		return err
	}
	return fmt.Errorf("model: %v", err)
}

// formatFloat renders a float parameter so that it parses back to the
// identical value (Name round-tripping).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
