package model

import "sync"

// This file holds the worker-lifetime state shared by the spatial
// models (rgg2d/rgg3d/rhg): a bounded dependency-cell cache, the
// splitting-tree acceleration (full prefix table or capped memo), and
// the reusable kernel scratch. Everything here affects only the cost of
// generation, never its bytes — every cached value is a pure function
// of (seed, structural id) and is recomputed verbatim on a miss. See
// DESIGN.md §2e for the byte-safety argument.

// maxCellTableSlots gates the one-shot DFS expansion of a splitting
// tree into a flat prefix table (8 bytes/slot, ≤ 8 MiB at the cap).
// Beyond it, worker states fall back to a memoized per-descent map.
var maxCellTableSlots = 1 << 20

// maxWorkerMemoNodes caps the fallback splitMemo of one worker state;
// past it the memo is dropped wholesale (values are pure, so a rebuild
// repeats them exactly). ~16 bytes/entry ⇒ ≤ ~64 MiB resident.
const maxWorkerMemoNodes = 1 << 22

// maxFreeSamples caps the retired-sample freelist of one worker state;
// each entry keeps one cell's backing array (a few hundred bytes at
// typical occupancy) alive for reuse.
const maxFreeSamples = 256

// cellTable lazily materializes a splitTree's full prefix table, once
// per generator, shared read-only by every worker state. get returns
// nil when the tree is too large to tabulate. Alongside the table it
// builds an occupancy bitmap (bit c set iff slot c is nonempty): the
// sweep's emptiness checks touch one bit in a table 64× smaller than
// the prefix array, so they stay L1-resident across neighbor strides.
type cellTable struct {
	once sync.Once
	tab  []int64
	occ  []uint64
}

func (ct *cellTable) get(t *splitTree) []int64 {
	ct.once.Do(func() {
		if t.slots <= maxCellTableSlots {
			ct.tab = t.expandPrefix()
			ct.occ = make([]uint64, (t.slots+63)/64)
			for c := 0; c < t.slots; c++ {
				if ct.tab[c+1] != ct.tab[c] {
					ct.occ[c>>6] |= 1 << (uint(c) & 63)
				}
			}
		}
	})
	return ct.tab
}

// cellSample is one cell's regenerated Sample-phase output in
// structure-of-arrays layout: column d of point i lives at cols[d][i],
// so the pair kernels stream each coordinate contiguously. start is the
// global vertex id of point 0 and cell the sample's cell index (the
// ring cache's identity check). The spatial models use 2 (rgg2d),
// 3 (rgg3d) or 4 (rhg: cos θ, sin θ, cosh r, sinh r) columns carved
// from one backing allocation, which the freelist recycles.
type cellSample struct {
	start   int64
	cell    int
	n       int
	xs      []float64
	ys      []float64
	zs      []float64
	ws      []float64
	backing []float64
}

// carve re-points the column slices at the first n*cols elements of the
// backing array. cap(backing) must cover n*cols.
func (s *cellSample) carve(start int64, n, cols int) {
	s.start, s.n = start, n
	b := s.backing[:n*cols]
	s.xs, b = b[:n:n], b[n:]
	s.ys, b = b[:n:n], b[n:]
	s.zs, s.ws = nil, nil
	if cols > 2 {
		s.zs, b = b[:n:n], b[n:]
	}
	if cols > 3 {
		s.ws = b[:n:n]
	}
}

// minSampleCap is the minimum backing capacity (in float64s) a fresh
// sample is allocated with. Rounding every backing up to at least this
// makes freelist entries interchangeable across the small occupancies
// the grids aim for — a retired empty cell's array can serve a 20-point
// cell and vice versa — at ~512 bytes per resident sample.
const minSampleCap = 64

// newCellSample allocates an n-point sample with the given column
// count backed by a single array.
func newCellSample(start int64, n, cols int) *cellSample {
	capNeed := n * cols
	if capNeed < minSampleCap {
		capNeed = minSampleCap
	}
	s := &cellSample{backing: make([]float64, n*cols, capNeed)}
	s.carve(start, n, cols)
	return s
}

// allocSample serves a sample from st's freelist when the retired
// backing array on top is large enough, allocating otherwise. A nil st
// (oracles, tests) always allocates.
func allocSample(st *spatialState, start int64, n, cols int) *cellSample {
	if st != nil {
		if k := len(st.free); k > 0 && cap(st.free[k-1].backing) >= n*cols {
			s := st.free[k-1]
			st.free = st.free[:k-1]
			s.backing = s.backing[:cap(s.backing)]
			s.carve(start, n, cols)
			return s
		}
	}
	return newCellSample(start, n, cols)
}

// spatialState is the WorkerState of the spatial models. One instance
// lives for a worker goroutine's lifetime and carries its dependency
// cells, split-tree lookups, and kernel scratch across every chunk the
// worker executes.
//
// The cache has two storage shapes. When the generator's forward reach
// is a bounded index window (rgg: cell+1..cell+span) or the cell space
// is small (rhg), `ring` holds samples in a direct-indexed slot array —
// slot cell % len(ring) — whose identity check is one compare, no
// hashing. All cells touched while enumerating one own cell fit in
// distinct slots by construction, so a slot collision only ever evicts
// a stale earlier cell. Otherwise `cache` is a plain map.
type spatialState struct {
	ring     []*cellSample
	ringMask int // len(ring)-1; ring length is a power of two
	cache    map[int]*cellSample
	pts      int64         // resident points across the cache
	ptsCap   int64         // eviction bound (wholesale reset past it)
	tab      []int64       // shared prefix table; nil when the tree is too large
	occ      []uint64      // shared occupancy bitmap paired with tab
	memo     splitMemo     // per-worker descent memo, used only when tab == nil
	free     []*cellSample // retired samples whose backing arrays get reused
	hits     []int32       // pair-kernel hit indices, reused per segment
	cand     []int         // forward-partner index scratch (rhg windows)
	unif     []float64     // raw-uniform scratch (rhg sampling)

	// Flattened halo of the own cell currently enumerated: the own
	// cell's points followed by every staged partner cell's, one
	// contiguous SoA segment per coordinate plus the parallel global-id
	// column. Kernels scan flat[i+1:] once per own point — one call over
	// the whole halo instead of one per partner cell. The flattening
	// copies values bit-for-bit and preserves the staged scan order, so
	// emitted arcs are identical to the per-cell segment walk.
	fxs, fys, fzs, fws []float64
	fvids              []int64
}

// resetFlat empties the flattened halo.
func (st *spatialState) resetFlat() {
	st.fxs, st.fys, st.fzs, st.fws = st.fxs[:0], st.fys[:0], st.fzs[:0], st.fws[:0]
	st.fvids = st.fvids[:0]
}

// appendFlat appends sample s's first cols coordinate columns and its
// global ids to the flattened halo. Cells are tiny at the occupancies
// the grids target, so the copy is one fused scalar pass instead of a
// memmove-backed append per column.
func (st *spatialState) appendFlat(s *cellSample, cols int) {
	k := len(st.fvids)
	n := k + s.n
	st.ensureFlat(n)
	st.fxs, st.fys, st.fvids = st.fxs[:n], st.fys[:n], st.fvids[:n]
	for j := 0; j < s.n; j++ {
		st.fxs[k+j] = s.xs[j]
		st.fys[k+j] = s.ys[j]
		st.fvids[k+j] = s.start + int64(j)
	}
	if cols > 2 {
		st.fzs = st.fzs[:n]
		for j := 0; j < s.n; j++ {
			st.fzs[k+j] = s.zs[j]
		}
	}
	if cols > 3 {
		st.fws = st.fws[:n]
		for j := 0; j < s.n; j++ {
			st.fws[k+j] = s.ws[j]
		}
	}
}

// ensureFlat grows every halo column to capacity >= n, preserving each
// column's current contents. All columns share one capacity so
// appendFlat can re-slice them without further checks.
func (st *spatialState) ensureFlat(n int) {
	c := cap(st.fvids)
	if c >= n {
		return
	}
	if c == 0 {
		c = 256
	}
	for c < n {
		c *= 2
	}
	growF := func(s []float64) []float64 {
		t := make([]float64, len(s), c)
		copy(t, s)
		return t
	}
	st.fxs, st.fys, st.fzs, st.fws = growF(st.fxs), growF(st.fys), growF(st.fzs), growF(st.fws)
	v := make([]int64, len(st.fvids), c)
	copy(v, st.fvids)
	st.fvids = v
}

// newSpatialState builds a worker state. window > 0 selects the ring
// cache with that many slots (it must cover the generator's forward
// reach: every cell read while one own cell is enumerated maps to a
// distinct slot); window <= 0 selects the map cache.
func newSpatialState(t *splitTree, ct *cellTable, ptsCap int64, window int) *spatialState {
	st := &spatialState{
		ptsCap: ptsCap,
		tab:    ct.get(t),
	}
	st.occ = ct.occ
	if window > 0 {
		// Round the slot count up to a power of two so the hot-path
		// slot computation is a mask, not an integer division. A larger
		// ring still satisfies the distinct-slot window contract.
		size := 1
		for size < window {
			size <<= 1
		}
		st.ring = make([]*cellSample, size)
		st.ringMask = size - 1
	} else {
		st.cache = map[int]*cellSample{}
	}
	if st.tab == nil {
		st.memo = splitMemo{}
	}
	return st
}

// ResidentPoints reports the cached point count (WorkerState).
func (st *spatialState) ResidentPoints() int64 { return st.pts }

// count returns cell c's occupancy through the fastest available path.
func (st *spatialState) count(t *splitTree, c int) int64 {
	if st.tab != nil {
		return st.tab[c+1] - st.tab[c]
	}
	st.checkMemo()
	return t.countMemo(c, st.memo)
}

// prefix returns the vertex-id offset of cell c.
func (st *spatialState) prefix(t *splitTree, c int) int64 {
	if st.tab != nil {
		return st.tab[c]
	}
	st.checkMemo()
	return t.prefixMemo(c, st.memo)
}

// checkMemo bounds the fallback memo over a worker's lifetime. Memo
// values are pure functions of their node ids, so dropping the map only
// costs re-draws — the stream is unchanged.
func (st *spatialState) checkMemo() {
	if len(st.memo) > maxWorkerMemoNodes {
		st.memo = splitMemo{}
	}
}

// lookup returns the cached sample of cell, or nil on a miss.
func (st *spatialState) lookup(cell int) *cellSample {
	if st.ring != nil {
		if e := st.ring[cell&st.ringMask]; e != nil && e.cell == cell {
			return e
		}
		return nil
	}
	return st.cache[cell]
}

// hold caches a freshly sampled cell and accounts its points. In ring
// mode a slot collision retires the stale occupant — which is never a
// sample staged for the current own cell (distinct slots by the window
// contract), so its backing array is free to recycle.
func (st *spatialState) hold(cell int, s *cellSample) {
	s.cell = cell
	if st.ring != nil {
		slot := cell & st.ringMask
		if old := st.ring[slot]; old != nil {
			st.pts -= int64(old.n)
			st.retire(old)
		}
		st.ring[slot] = s
		st.pts += int64(s.n)
		return
	}
	st.cache[cell] = s
	st.pts += int64(s.n)
}

// retire pushes a sample no longer reachable from the cache onto the
// freelist for backing-array reuse.
func (st *spatialState) retire(s *cellSample) {
	if len(st.free) < maxFreeSamples {
		st.free = append(st.free, s)
	}
}

// dropOwn removes a chunk's own cell once its pairs are emitted — it
// can never be read again (forward neighbors only) — then applies the
// wholesale eviction bound: past ptsCap the whole cache is dropped.
// Wholesale (rather than LRU) eviction keeps the bound exact with no
// bookkeeping, and is byte-safe because any evicted cell a later chunk
// needs is simply regenerated with identical values. The invariant at
// the end of every own-cell iteration is ResidentPoints() <= ptsCap.
// Wholesale clears do NOT feed the freelist: a recycled backing array
// must never alias a sample the kernels can still read (the flattened
// halo copies values out, but the own cell's columns are read live).
func (st *spatialState) dropOwn(cell int) {
	if st.ring != nil {
		slot := cell & st.ringMask
		if s := st.ring[slot]; s != nil && s.cell == cell {
			st.ring[slot] = nil
			st.pts -= int64(s.n)
			st.retire(s)
		}
		if st.pts > st.ptsCap {
			for i := range st.ring {
				st.ring[i] = nil
			}
			st.pts = 0
		}
		return
	}
	if s, ok := st.cache[cell]; ok {
		delete(st.cache, cell)
		st.pts -= int64(s.n)
		st.retire(s)
	}
	if st.pts > st.ptsCap {
		st.cache = map[int]*cellSample{}
		st.pts = 0
	}
}
