package model

import (
	"math"
	"testing"

	"kronvalid/internal/stream"
)

// bruteForceRGG regenerates every cell's points through the Sample
// phase and compares all pairs directly — the structure-oblivious
// oracle for the neighbor-cell enumeration.
func bruteForceRGG(g *RGG) []stream.Arc {
	var pts []float64
	for c := 0; c < g.CellCount(); c++ {
		s := g.samplePoints(c, nil)
		for i := 0; i < s.n; i++ {
			pts = append(pts, s.xs[i], s.ys[i])
			if g.dim == 3 {
				pts = append(pts, s.zs[i])
			}
		}
	}
	dim := int64(g.dim)
	n := int64(len(pts)) / dim
	var out []stream.Arc
	for u := int64(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.within(pts[u*dim:u*dim+dim], pts[v*dim:v*dim+dim]) {
				out = append(out, stream.Arc{U: u, V: v})
			}
		}
	}
	return out
}

// TestRGGMatchesBruteForce is the enumeration oracle: the streamed
// cell-grid output (own cell + regenerated forward neighbors, each
// undirected pair emitted once by the smaller endpoint's cell) must
// equal the all-pairs sweep over the regenerated point set exactly —
// any missed cross-cell pair, duplicate emission, or id misalignment
// shows up here.
func TestRGGMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		dim    int
		n      int64
		r      float64
		chunks int
	}{
		{2, 600, 0.07, 0},
		{2, 400, 0.25, 5}, // coarse grid, heavy cross-cell traffic
		{3, 400, 0.15, 7},
		{3, 250, 0.6, 3}, // near-complete, grid collapses to few cells
	} {
		g, err := NewRGG(tc.n, tc.r, tc.dim, 77, tc.chunks)
		if err != nil {
			t.Fatalf("NewRGG(%v): %v", tc, err)
		}
		want := bruteForceRGG(g)
		got := Collect(g)
		if len(want) == 0 {
			t.Fatalf("%s: oracle found no edges, test is vacuous", g.Name())
		}
		if !sameArcs(want, got) {
			t.Errorf("%s: streamed %d arcs != brute force %d arcs", g.Name(), len(got), len(want))
		}
	}
}

// TestRGGCellCountsUniform is the chi-square satellite: the splitting
// tree must place points uniformly across the equal-volume cells — the
// exact multinomial(n, 1/cells) law — and the counts must sum to n
// exactly.
func TestRGGCellCountsUniform(t *testing.T) {
	g, err := NewRGG(20000, 0.1, 2, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	cells := g.CellCount()
	if cells != 100 {
		t.Fatalf("grid collapsed: %d cells, want 100 (grid 10)", cells)
	}
	exp := float64(g.n) / float64(cells)
	var total int64
	var chi2 float64
	for c := 0; c < cells; c++ {
		cnt := g.CellVertices(c)
		total += cnt
		d := float64(cnt) - exp
		chi2 += d * d / exp
	}
	if total != g.n {
		t.Fatalf("cell occupancies sum to %d, want exactly %d", total, g.n)
	}
	// df = cells-1; mean df, sd sqrt(2 df). 6 sigma keeps the fixed-seed
	// test deterministic while catching any systematic skew.
	df := float64(cells - 1)
	if limit := df + 6*math.Sqrt(2*df); chi2 > limit {
		t.Errorf("per-cell count chi-square %.1f exceeds %.1f (df %.0f): placement not uniform", chi2, limit, df)
	}
	// And the ids must be cell-major: prefix(c) must match the running sum.
	var run int64
	for c := 0; c < cells; c++ {
		if got := g.tree.prefix(c); got != run {
			t.Fatalf("prefix(%d) = %d, running sum %d", c, got, run)
		}
		run += g.CellVertices(c)
	}
}

// TestRGG2DExpectedDegree is the mean-degree satellite: in the bulk the
// mean degree of RGG2D is (n-1)·πr²; boundary truncation only shaves a
// few percent at this radius, so a 10% band is a sharp check that the
// geometry (radius comparison, cell scaling) is right.
func TestRGG2DExpectedDegree(t *testing.T) {
	g, err := NewRGG(5000, 0.02, 2, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	arcs := Collect(g)
	mean := 2 * float64(len(arcs)) / float64(g.n)
	want := g.ExpectedDegree() // (n-1)·πr² ≈ 6.28
	if math.Abs(mean-want) > 0.10*want {
		t.Errorf("mean degree %.3f deviates more than 10%% from (n-1)πr² = %.3f", mean, want)
	}
}

// TestRGGDependenciesDeclared checks the Enumerate phase's declaration:
// every foreign cell a chunk regenerates is a forward neighbor of an
// owned cell, lies outside the chunk's own cell run, and the list is
// sorted and duplicate-free; interior chunks of a multi-chunk grid must
// actually declare some.
func TestRGGDependenciesDeclared(t *testing.T) {
	g, err := NewRGG(3000, 0.04, 2, 11, 8)
	if err != nil {
		t.Fatal(err)
	}
	declaredAny := false
	for c := 0; c < g.Chunks(); c++ {
		lo, hi := g.runs[c][0], g.runs[c][1]
		deps := g.Dependencies(c)
		if len(deps) > 0 {
			declaredAny = true
		}
		forward := map[int64]bool{}
		for cell := lo; cell < hi; cell++ {
			for _, nb := range g.forwardNeighbors(cell) {
				forward[int64(nb)] = true
			}
		}
		for i, dep := range deps {
			if dep < int64(hi) || dep >= int64(g.CellCount()) {
				t.Fatalf("chunk %d declares dependency %d outside the foreign range [%d,%d)", c, dep, hi, g.CellCount())
			}
			if i > 0 && deps[i-1] >= dep {
				t.Fatalf("chunk %d dependencies not strictly ascending: %v", c, deps)
			}
			if !forward[dep] {
				t.Fatalf("chunk %d declares %d, which no owned cell reads", c, dep)
			}
		}
		// Completeness: every foreign forward neighbor must be declared.
		declared := map[int64]bool{}
		for _, dep := range deps {
			declared[dep] = true
		}
		for nb := range forward {
			if nb >= int64(hi) && !declared[nb] {
				t.Fatalf("chunk %d reads foreign cell %d but does not declare it", c, nb)
			}
		}
	}
	if !declaredAny {
		t.Fatal("no chunk declared any dependency — test is vacuous")
	}
}

// TestRGGChunkCountDoesNotChangeStream pins the Sample/Enumerate
// separation for the spatial models: cells, occupancies and coordinates
// are fixed by (n, r, dim, seed), so unlike the pair-backed models the
// chunk count only groups cells and must NOT change a single byte.
func TestRGGChunkCountDoesNotChangeStream(t *testing.T) {
	base, err := NewRGG(2000, 0.05, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := Collect(base)
	for _, chunks := range []int{1, 7, 64, 500} {
		g, err := NewRGG(2000, 0.05, 2, 3, chunks)
		if err != nil {
			t.Fatal(err)
		}
		if !sameArcs(want, Collect(g)) {
			t.Errorf("chunks=%d changed the rgg2d stream", chunks)
		}
	}
}

// TestRGGRejectsOutOfRange pins the spec-boundary validation.
func TestRGGRejectsOutOfRange(t *testing.T) {
	for _, tc := range []struct {
		n   int64
		r   float64
		dim int
	}{
		{-1, 0.1, 2},
		{100, 0, 2},
		{100, -0.5, 2},
		{100, 1.5, 2},
		{100, math.NaN(), 2},
		{100, 0.1, 4},
		{maxRGGVertices + 1, 0.1, 3},
	} {
		if _, err := NewRGG(tc.n, tc.r, tc.dim, 1, 0); err == nil {
			t.Errorf("NewRGG(%d, %v, dim=%d) accepted", tc.n, tc.r, tc.dim)
		}
	}
	if _, err := New("rgg2d:n=100"); err == nil {
		t.Error("rgg2d without r accepted")
	}
	if _, err := New("rgg2d:n=100,r=0.1,radius=0.2"); err == nil {
		t.Error("unknown rgg2d parameter accepted")
	}
}
