package model

import (
	"fmt"
	"math"
	"sync"

	"kronvalid/internal/rng"
	"kronvalid/internal/stream"
)

// ChungLu is the sharded Chung–Lu model over a non-increasing expected
// weight sequence w: pair (i, j), i < j, is an edge independently with
// probability min(1, w_i·w_j / Σw). The stream emits upper-triangle
// arcs in canonical order over the weight-sorted vertex space.
//
// Rows are grouped into chunks of near-equal expected work; each chunk
// runs the blockwise core (geometric-skip sweep over the varying-weight
// head, binomial-count realization over the constant-weight tail — see
// DESIGN.md §2f) with its own (seed, chunk)-derived stream, so expected
// cost stays O(n + m) in total and chunks never communicate.
type ChungLu struct {
	noDeps
	name     string
	nameOnce sync.Once
	w        []float64
	sum      float64
	seed     uint64
	rows     [][2]int64
	work     []int64 // per-chunk expected work (for shard balancing)
	tail0    int64   // start of the maximal constant-weight suffix run
}

// NewChungLu returns the sharded Chung–Lu generator over the given
// non-increasing weight sequence. chunks = 0 means DefaultChunks. The
// reported Name identifies the weights by digest; use the registry form
// ("chunglu:n=…,dmax=…,…") for a spec that rebuilds the weights.
func NewChungLu(weights []float64, seed uint64, chunks int) (*ChungLu, error) {
	// One fused pass: validity, the sum (left-to-right, the model's
	// definition of Σw), and the start of the maximal constant-weight
	// suffix. The hot-path check is a single comparison chain — 0 ≤ w ≤
	// prev rejects NaN (fails both compares), negatives, and any
	// increase or late +Inf in one branch — with the detailed diagnosis
	// deferred to a cold second scan.
	var sum float64
	var tail0 int64
	prev := math.Inf(1)
	valid := len(weights) == 0 || !math.IsInf(weights[0], 1)
	for i, w := range weights {
		if !(w >= 0 && w <= prev) {
			valid = false
			break
		}
		if w != prev && i > 0 {
			tail0 = int64(i)
		}
		prev = w
		sum += w
	}
	if !valid {
		for i, w := range weights {
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				return nil, fmt.Errorf("model: chunglu weight[%d] = %v is not a finite non-negative number", i, w)
			}
			if i > 0 && w > weights[i-1] {
				return nil, fmt.Errorf("model: chunglu weights must be non-increasing (weight[%d] = %v > weight[%d] = %v)", i, w, i-1, weights[i-1])
			}
		}
		// The fast check rejects exactly the cases above, so this is
		// unreachable — kept so a mismatch can never hand back a
		// generator built from a partial sum.
		return nil, fmt.Errorf("model: chunglu weights failed validation")
	}
	return newChungLuTrusted(weights, sum, tail0, seed, chunks), nil
}

// newChungLuTrusted builds the generator from weights the caller
// guarantees are finite, non-negative, and non-increasing, with their
// left-to-right sum and constant-suffix start precomputed — the
// registry builder derives all three during weight construction, so it
// skips NewChungLu's validation pass. tail0 is the last index whose
// weight differs from its predecessor: the start of the dmin-floored
// tail, the region the blockwise core realizes with binomial counts
// instead of per-candidate sweeping.
func newChungLuTrusted(weights []float64, sum float64, tail0 int64, seed uint64, chunks int) *ChungLu {
	g := &ChungLu{w: weights, sum: sum, seed: seed, tail0: tail0}
	g.partition(chunks)
	return g
}

// partition groups rows [0, n-1) into chunks of near-equal expected
// work, where row i's work is one sweep start plus its expected edge
// count w_i·(Σ_{j>i} w_j)/Σw (saturation ignored — it only affects
// balance, never correctness).
func (g *ChungLu) partition(chunks int) {
	n := int64(len(g.w))
	nRows := n - 1
	if nRows < 0 {
		nRows = 0
	}
	chunks = normalizeChunks(chunks, maxInt64(nRows, 1))
	// One backward pass stashes each row's work — one sweep start plus
	// the expected edge count — then a forward pass folds it into a
	// prefix-sum array, the only O(n) state the run split needs.
	prefix := make([]float64, nRows+1)
	suffix := 0.0
	invSum := 0.0
	if g.sum > 0 {
		invSum = 1 / g.sum
	}
	for i := n - 1; i >= 0; i-- {
		if i < nRows {
			// One multiply by the reciprocal instead of a divide per
			// row; the rounding difference only moves shard balancing.
			prefix[i+1] = 1 + g.w[i]*suffix*invSum
		}
		suffix += g.w[i]
	}
	for i := int64(0); i < nRows; i++ {
		prefix[i+1] += prefix[i]
	}
	// Empty slots are kept so chunk ids stay a pure function of
	// (weights, chunks), never of balancing.
	runs := prefixRuns(prefix, chunks, true)
	g.rows = make([][2]int64, 0, len(runs))
	g.work = make([]int64, 0, len(runs))
	for _, r := range runs {
		g.rows = append(g.rows, [2]int64{int64(r[0]), int64(r[1])})
		g.work = append(g.work, 1+int64(prefix[r[1]]-prefix[r[0]]))
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// weightDigest fingerprints a weight sequence (FNV-1a over the IEEE
// bits).
func weightDigest(w []float64) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v >> (8 * i) & 0xff
			h *= 1099511628211
		}
	}
	mix(uint64(len(w)))
	for _, x := range w {
		mix(math.Float64bits(x))
	}
	return h
}

// maxChungLuVertices bounds the registry-built weight sequence (8 bytes
// per vertex are materialized); larger n must construct NewChungLu with
// caller-owned weights.
const maxChungLuVertices = int64(1) << 28

func buildChungLu(p *Params) (Generator, error) {
	n, err := p.Int64("n", -1)
	if err != nil {
		return nil, err
	}
	if n < 0 || n > maxChungLuVertices {
		return nil, fmt.Errorf("model: chunglu vertex count %d out of [0, %d]", n, maxChungLuVertices)
	}
	dmax, err := p.Float("dmax", math.Sqrt(float64(n)))
	if err != nil {
		return nil, err
	}
	dmin, err := p.Float("dmin", 1)
	if err != nil {
		return nil, err
	}
	gamma, err := p.Float("gamma", 2.5)
	if err != nil {
		return nil, err
	}
	if !(gamma > 1) {
		return nil, fmt.Errorf("model: chunglu gamma %v must exceed 1", gamma)
	}
	if !(dmax >= dmin) || dmin < 0 {
		return nil, fmt.Errorf("model: chunglu needs dmax >= dmin >= 0 (have dmax=%v, dmin=%v)", dmax, dmin)
	}
	seed, err := p.Seed()
	if err != nil {
		return nil, err
	}
	chunks, err := p.Int("chunks", 0)
	if err != nil {
		return nil, err
	}
	// Deterministic power-law-ish expected degrees, already
	// non-increasing: w_i = dmax·(i+1)^(-1/(gamma-1)), floored at dmin.
	// Once a value lands on the floor every later one does too (the raw
	// sequence is decreasing), so the pow calls stop at the crossing and
	// the dmin tail — the bulk of the sequence — is a plain fill. The
	// sum accumulates element by element in the same left-to-right
	// order as NewChungLu's validation pass, so the trusted constructor
	// yields the bit-identical generator.
	weights := make([]float64, n)
	exp := -1 / (gamma - 1)
	var sum float64
	var tail0 int64
	floored := int(n)
	prev := math.Inf(1)
	for i := range weights {
		w := dmax * math.Pow(float64(i+1), exp)
		if w <= dmin {
			floored = i
			break
		}
		weights[i] = w
		if i > 0 && w != prev {
			tail0 = int64(i)
		}
		prev = w
		sum += w
	}
	for i := floored; i < len(weights); i++ {
		weights[i] = dmin
		sum += dmin
	}
	if floored > 0 && floored < len(weights) {
		// Head values are strictly above dmin, so the floor boundary is
		// always a weight change.
		tail0 = int64(floored)
	}
	g := newChungLuTrusted(weights, sum, tail0, seed, chunks)
	g.name = fmt.Sprintf("chunglu:n=%d,dmax=%s,dmin=%s,gamma=%s,seed=%d,chunks=%d",
		n, formatFloat(dmax), formatFloat(dmin), formatFloat(gamma), seed, len(g.rows))
	return g, nil
}

func init() { Register("chunglu", buildChungLu) }

// Name returns the generator's spec (registry-built) or a
// weight-digest description (direct construction). The digest walks the
// whole weight sequence, so direct construction defers it to the first
// Name call rather than charging every generator for a string most
// never print.
func (g *ChungLu) Name() string {
	g.nameOnce.Do(func() {
		if g.name == "" {
			g.name = fmt.Sprintf("chunglu-weights:n=%d,wdigest=%x,seed=%d,chunks=%d",
				len(g.w), weightDigest(g.w), g.seed, len(g.rows))
		}
	})
	return g.name
}

// NumVertices returns the weight sequence length.
func (g *ChungLu) NumVertices() int64 { return int64(len(g.w)) }

// NumArcs returns -1: the edge count is random.
func (g *ChungLu) NumArcs() int64 { return -1 }

// Chunks returns the fixed chunk count.
func (g *ChungLu) Chunks() int { return len(g.rows) }

// ChunkRange returns chunk c's source-vertex (row) range.
func (g *ChungLu) ChunkRange(c int) (lo, hi int64) {
	r := g.rows[c]
	return r[0], r[1]
}

// ChunkWeight returns chunk c's expected work.
func (g *ChungLu) ChunkWeight(c int) int64 { return g.work[c] }

// ChunkArcs returns -1: per-chunk counts are random.
func (g *ChungLu) ChunkArcs(c int) int64 { return -1 }

// chungLuState is the per-worker scratch of the blockwise core: a value
// generator reseeded per chunk, the sampled-position buffers, and the
// distinct-sampling set. It holds no sample cache — Chung–Lu chunks own
// all their randomness — so reuse saves allocations only and can never
// move a byte.
type chungLuState struct {
	s   rng.Xoshiro256
	pos []int64 // sorted success positions of one segment
	inv []int64 // complement-inversion scratch (dense segments)
	tmp []int64 // bucket-scatter scratch (sortPositions)
	cnt []int32 // bucket counters (sortPositions)
}

// ResidentPoints returns 0: the state is scratch, not a sample cache.
func (st *chungLuState) ResidentPoints() int64 { return 0 }

// NewWorkerState returns fresh blockwise-core scratch for one worker.
func (g *ChungLu) NewWorkerState() WorkerState { return &chungLuState{} }

// clSegmentPairs caps one binomial segment of a constant-probability
// region. Segmenting is exact — the region's trials are independent, so
// Binomial counts over disjoint segments compose to the same law — and
// the cap bounds the per-segment position scratch.
const clSegmentPairs = int64(1) << 23

// clGeomCutoff is the expected success count below which a constant-
// probability region uses the geometric-skip sweep instead of binomial
// counts: skips cost one log per success, which beats the zig-zag
// sampler's log-gamma setup until the setup amortizes over enough
// successes. Both realizations of the iid Bernoulli region are exact;
// the cutoff only picks the cheaper one.
const clGeomCutoff = 32.0

// sampleDistinctInto draws k distinct values from [0, size) into the
// worker's position buffer and returns them sorted ascending. Each
// round draws the missing count, sorts, and drops duplicates — in the
// common regime k ≪ size, the first round already has no collisions,
// so no duplicate-filter set is touched at all; callers guarantee
// 2k <= size, so even the dense case keeps a coin-flip-or-better
// acceptance rate per round and the rounds shrink geometrically. Like
// sequential rejection, every accepted value is uniform over the
// not-yet-chosen ones, so the result is a uniform k-subset.
func (st *chungLuState) sampleDistinctInto(size, k int64) []int64 {
	pos := st.pos[:0]
	for {
		for int64(len(pos)) < k {
			pos = append(pos, st.s.Int64n(size))
		}
		st.sortPositions(pos, size-1)
		w := 1
		for i := 1; i < len(pos); i++ {
			if pos[i] != pos[i-1] {
				pos[w] = pos[i]
				w++
			}
		}
		pos = pos[:w]
		if int64(w) == k {
			break
		}
	}
	st.pos = pos
	return pos
}

// sortPositions sorts pos ascending. The values are uniform draws from
// [0, max], so one counting-sort pass over ~2·len power-of-two buckets
// (keyed by the value's top bits) leaves only intra-bucket inversions —
// expected bucket occupancy is below one — and a single insertion pass
// finishes in near-linear time. This beats the general comparison sort,
// whose random-data branch misses dominated the segment loop.
func (st *chungLuState) sortPositions(pos []int64, max int64) {
	n := len(pos)
	if n >= 16 && max > 0 {
		nb := 16
		for nb < 2*n && nb < 1<<16 {
			nb <<= 1
		}
		shift := uint(0)
		for max>>shift >= int64(nb) {
			shift++
		}
		if cap(st.cnt) < nb {
			st.cnt = make([]int32, nb)
		}
		cnt := st.cnt[:nb]
		clear(cnt)
		for _, v := range pos {
			cnt[v>>shift]++
		}
		sum := int32(0)
		for i, c := range cnt {
			cnt[i] = sum
			sum += c
		}
		if cap(st.tmp) < n {
			st.tmp = make([]int64, n, 2*n)
		}
		tmp := st.tmp[:n]
		for _, v := range pos {
			b := v >> shift
			tmp[cnt[b]] = v
			cnt[b]++
		}
		copy(pos, tmp)
	}
	for i := 1; i < n; i++ {
		v := pos[i]
		j := i - 1
		for j >= 0 && pos[j] > v {
			pos[j+1] = pos[j]
			j--
		}
		pos[j+1] = v
	}
}

// drawSegment realizes the success set of L iid Bernoulli(t/2^53)
// trials: one binomial count, then that many distinct uniform sorted
// positions — dense counts (> L/2) sample the complement instead, which
// selects the same uniform k-subset law. all reports every trial
// succeeded (positions are implicit).
func (st *chungLuState) drawSegment(L int64, p float64, t uint64) (pos []int64, all bool) {
	k := st.s.BinomialFixed(L, p, t)
	switch {
	case k <= 0:
		return nil, false
	case k >= L:
		return nil, true
	case 2*k <= L:
		return st.sampleDistinctInto(L, k), false
	default:
		ex := st.sampleDistinctInto(L, L-k)
		inv := st.inv[:0]
		next := int64(0)
		for _, x := range ex {
			for ; next < x; next++ {
				inv = append(inv, next)
			}
			next = x + 1
		}
		for ; next < L; next++ {
			inv = append(inv, next)
		}
		st.inv = inv
		return inv, false
	}
}

// emitConstRect streams row u's edges into the constant-probability
// column range [colBase, colBase+size) with per-pair probability p
// (fixed-point threshold t = FixedThreshold(p)), emitted ascending.
// Runs with a small expected count use the geometric-skip sweep — one
// log per success, no sampler setup — while larger runs use segmented
// binomial counts with sorted distinct positions. Both paths realize
// the same iid Bernoulli law exactly; the cutoff only picks the
// cheaper realization. Returns false when the consumer stopped.
func (g *ChungLu) emitConstRect(st *chungLuState, b *batcher, u, colBase, size int64, p float64, t uint64) bool {
	if t == 0 || size <= 0 {
		return true
	}
	if t >= 1<<53 {
		for q := int64(0); q < size; q++ {
			if !b.add(u, colBase+q) {
				return false
			}
		}
		return true
	}
	if p*float64(size) < clGeomCutoff {
		log1mP := math.Log1p(-p)
		for q := st.s.GeometricLog(log1mP); q < size; q += 1 + st.s.GeometricLog(log1mP) {
			if !b.add(u, colBase+q) {
				return false
			}
		}
		return true
	}
	for a := int64(0); a < size; a += clSegmentPairs {
		L := size - a
		if L > clSegmentPairs {
			L = clSegmentPairs
		}
		pos, all := st.drawSegment(L, p, t)
		if all {
			for q := int64(0); q < L; q++ {
				if !b.add(u, colBase+a+q) {
					return false
				}
			}
			continue
		}
		for _, x := range pos {
			if !b.add(u, colBase+a+x) {
				return false
			}
		}
	}
	return true
}

// emitTailTriangle streams the constant-probability pair region of tail
// rows [i0, i1): every pair (i, j), i0 <= i < i1, i < j < n, has the
// same probability wt²/Σw, so the whole trapezoid of the row-major pair
// space is realized as one Bernoulli run over pair indices — the same
// geometric-vs-binomial split as emitConstRect — and unpacked to (i, j)
// by an incremental row walk. Ascending pair index is row-major order,
// so emission is canonical. Returns false when the consumer stopped.
func (g *ChungLu) emitTailTriangle(st *chungLuState, b *batcher, i0, i1 int64) bool {
	n := int64(len(g.w))
	wt := g.w[n-1]
	p := wt * wt / g.sum
	if p > 1 {
		p = 1
	}
	t := rng.FixedThreshold(p)
	// Row-major pair space over the trapezoid: row i contributes
	// n-1-i pairs. Total = sum over [i0, i1), an arithmetic series.
	T := (n - 1 - i0 + n - i1) * (i1 - i0) / 2
	if t == 0 || T <= 0 {
		return true
	}
	row, rowStart, rowLen := i0, int64(0), n-1-i0
	place := func(q int64) bool {
		for q >= rowStart+rowLen {
			rowStart += rowLen
			row++
			rowLen--
		}
		return b.add(row, row+1+(q-rowStart))
	}
	if t >= 1<<53 {
		for q := int64(0); q < T; q++ {
			if !place(q) {
				return false
			}
		}
		return true
	}
	if p*float64(T) < clGeomCutoff {
		log1mP := math.Log1p(-p)
		for q := st.s.GeometricLog(log1mP); q < T; q += 1 + st.s.GeometricLog(log1mP) {
			if !place(q) {
				return false
			}
		}
		return true
	}
	for a := int64(0); a < T; a += clSegmentPairs {
		L := T - a
		if L > clSegmentPairs {
			L = clSegmentPairs
		}
		pos, all := st.drawSegment(L, p, t)
		if all {
			for q := int64(0); q < L; q++ {
				if !place(a + q) {
					return false
				}
			}
			continue
		}
		for _, x := range pos {
			// Inline row walk: the closure call per edge was the
			// hottest line of the whole model under profile.
			q := a + x
			for q >= rowStart+rowLen {
				rowStart += rowLen
				row++
				rowLen--
			}
			if !b.add(row, row+1+(q-rowStart)) {
				return false
			}
		}
	}
	return true
}

// GenerateChunk streams chunk c with one-shot worker state; see
// GenerateChunkWith.
func (g *ChungLu) GenerateChunk(c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	g.GenerateChunkWith(g.NewWorkerState(), c, buf, emit)
}

// GenerateChunkWith streams chunk c through the blockwise core: head
// rows (varying column weights) run the bucketed geometric-skip sweep
// against the head columns only, each head row's constant-weight tail
// columns are realized as binomial counts plus sorted distinct
// positions, and the all-tail row block becomes one constant-probability
// pair region. Every path realizes the exact per-pair Bernoulli law
// min(1, w_i·w_j/Σw) — see DESIGN.md §2 for the equivalence argument —
// drawing from the chunk's own (seed, nsCLBlock, c) stream.
func (g *ChungLu) GenerateChunkWith(wsI WorkerState, c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	st := wsI.(*chungLuState)
	r := g.rows[c]
	if r[0] >= r[1] || g.sum <= 0 {
		return
	}
	st.s.ReseedStream2(g.seed, nsCLBlock, uint64(c))
	b := newBatcher(buf, emit)
	ws, sum := g.w, g.sum
	n := int64(len(ws))
	t0 := g.tail0
	var wt float64
	if t0 < n {
		wt = ws[n-1]
	}
	// Head rows: sweep the varying-weight head columns, then fill the
	// constant tail rectangle. Float-expression caches as in the oracle
	// core: identical input bits give identical output bits.
	lastP := math.NaN()
	var lastLog float64
	headEnd := r[1]
	if headEnd > t0 {
		headEnd = t0
	}
	for i := r[0]; i < headEnd; i++ {
		wu := ws[i]
		if wu == 0 {
			break // weights are non-increasing: every later row is empty too
		}
		j := i + 1
		if j < t0 {
			p := wu * ws[j] / sum
			if p > 1 {
				p = 1
			}
			lastW, lastQ := ws[j], p
			for j < t0 && p > 0 {
				if p < 1 {
					if p != lastP {
						lastP, lastLog = p, math.Log1p(-p)
					}
					j += st.s.GeometricLog(lastLog)
				}
				if j >= t0 {
					break
				}
				if w := ws[j]; w != lastW {
					lastW = w
					lastQ = wu * w / sum
					if lastQ > 1 {
						lastQ = 1
					}
				}
				q := lastQ
				if q == p {
					st.s.Uint64()
					if !b.add(i, j) {
						return
					}
				} else if st.s.Float64() < q/p {
					if !b.add(i, j) {
						return
					}
				}
				p = q
				j++
			}
		}
		if wt > 0 && t0 < n {
			p := wu * wt / sum
			if p > 1 {
				p = 1
			}
			if !g.emitConstRect(st, b, i, t0, n-t0, p, rng.FixedThreshold(p)) {
				return
			}
		}
	}
	// All-tail rows: one constant-probability pair region.
	if i0 := maxInt64(r[0], t0); i0 < r[1] && wt > 0 {
		if !g.emitTailTriangle(st, b, i0, r[1]) {
			return
		}
	}
	b.flush()
}

// generateChunkBucketed is the pre-blockwise production core, retained
// as the distribution-equivalence oracle (TestChungLuBlockwiseMatches
// BucketedDistribution): the Miller–Hagberg bucketed sweep over chunk
// c's rows — for row i, candidate columns j > i are visited with
// geometric skips under the row's maximal probability and thinned to
// the exact per-pair probability, O(expected edges) per row — on its
// own (seed, nsCLChunk, c) streams.
func (g *ChungLu) generateChunkBucketed(c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	r := g.rows[c]
	if r[0] >= r[1] || g.sum <= 0 {
		return
	}
	s := rng.NewStream2(g.seed, nsCLChunk, uint64(c))
	b := newBatcher(buf, emit)
	ws, sum := g.w, g.sum
	n := int64(len(ws))
	// Both per-candidate float expressions repeat bit-for-bit whenever
	// the column weight repeats (the whole dmin-floored tail is one
	// constant run), so each is cached by exact float equality —
	// identical input bits give identical output bits, so no draw and
	// no byte changes. lastP/lastLog cache the skip parameter's log1p,
	// the dominant flat cost; lastW/lastQ cache the candidate
	// probability q = wu·w[j]/sum, saving the divide.
	lastP := math.NaN()
	var lastLog float64
	for i := r[0]; i < r[1]; i++ {
		wu := ws[i]
		if wu == 0 {
			break // weights are non-increasing: every later row is empty too
		}
		j := i + 1
		if j >= n {
			continue
		}
		p := wu * ws[j] / sum
		if p > 1 {
			p = 1
		}
		lastW, lastQ := ws[j], p
		for j < n && p > 0 {
			if p < 1 {
				if p != lastP {
					lastP, lastLog = p, math.Log1p(-p)
				}
				j += s.GeometricLog(lastLog)
			}
			if j >= n {
				break
			}
			if w := ws[j]; w != lastW {
				lastW = w
				lastQ = wu * w / sum
				if lastQ > 1 {
					lastQ = 1
				}
			}
			q := lastQ
			if q == p {
				// fl(q/p) = 1 exactly and Float64() < 1 always holds, so
				// accept after consuming the thinning draw, skipping the
				// division and float compare — the hot case whenever
				// neighboring weights are equal.
				s.Uint64()
				if !b.add(i, j) {
					return
				}
			} else if s.Float64() < q/p {
				if !b.add(i, j) {
					return
				}
			}
			p = q
			j++
		}
	}
	b.flush()
}
