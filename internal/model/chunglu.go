package model

import (
	"fmt"
	"math"

	"kronvalid/internal/rng"
	"kronvalid/internal/stream"
)

// ChungLu is the sharded Chung–Lu model over a non-increasing expected
// weight sequence w: pair (i, j), i < j, is an edge independently with
// probability min(1, w_i·w_j / Σw). The stream emits upper-triangle
// arcs in canonical order over the weight-sorted vertex space.
//
// Rows are grouped into chunks of near-equal expected work
// (Miller–Hagberg bucket blocks); each chunk runs the bucketed
// geometric-skipping sweep over its own rows with its own
// (seed, chunk)-derived stream, so expected cost stays O(n + m) in
// total and chunks never communicate.
type ChungLu struct {
	noDeps
	name string
	w    []float64
	sum  float64
	seed uint64
	rows [][2]int64
	work []int64 // per-chunk expected work (for shard balancing)
}

// NewChungLu returns the sharded Chung–Lu generator over the given
// non-increasing weight sequence. chunks = 0 means DefaultChunks. The
// reported Name identifies the weights by digest; use the registry form
// ("chunglu:n=…,dmax=…,…") for a spec that rebuilds the weights.
func NewChungLu(weights []float64, seed uint64, chunks int) (*ChungLu, error) {
	var sum float64
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("model: chunglu weight[%d] = %v is not a finite non-negative number", i, w)
		}
		if i > 0 && w > weights[i-1] {
			return nil, fmt.Errorf("model: chunglu weights must be non-increasing (weight[%d] = %v > weight[%d] = %v)", i, w, i-1, weights[i-1])
		}
		sum += w
	}
	g := &ChungLu{w: weights, sum: sum, seed: seed}
	g.partition(chunks)
	g.name = fmt.Sprintf("chunglu-weights:n=%d,wdigest=%x,seed=%d,chunks=%d",
		len(weights), weightDigest(weights), seed, len(g.rows))
	return g, nil
}

// partition groups rows [0, n-1) into chunks of near-equal expected
// work, where row i's work is one sweep start plus its expected edge
// count w_i·(Σ_{j>i} w_j)/Σw (saturation ignored — it only affects
// balance, never correctness).
func (g *ChungLu) partition(chunks int) {
	n := int64(len(g.w))
	nRows := n - 1
	if nRows < 0 {
		nRows = 0
	}
	chunks = normalizeChunks(chunks, maxInt64(nRows, 1))
	rowWork := make([]float64, nRows)
	suffix := 0.0
	for i := n - 1; i >= 0; i-- {
		if i < nRows {
			w := 1.0
			if g.sum > 0 {
				w += g.w[i] * suffix / g.sum
			}
			rowWork[i] = w
		}
		suffix += g.w[i]
	}
	// Empty slots are kept so chunk ids stay a pure function of
	// (weights, chunks), never of balancing.
	runs := weightedRuns(int(nRows), chunks, func(i int) float64 { return rowWork[i] }, true)
	// A prefix-sum array makes each run's weight one subtraction instead
	// of a re-scan of rowWork. The rounding can differ from the old
	// left-to-right per-run sums by an ulp, which only moves shard
	// balancing, never a byte: chunk work steers grouping, and grouping
	// never touches a draw.
	prefix := make([]float64, nRows+1)
	for i, w := range rowWork {
		prefix[i+1] = prefix[i] + w
	}
	g.rows = make([][2]int64, 0, len(runs))
	g.work = make([]int64, 0, len(runs))
	for _, r := range runs {
		g.rows = append(g.rows, [2]int64{int64(r[0]), int64(r[1])})
		g.work = append(g.work, 1+int64(prefix[r[1]]-prefix[r[0]]))
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// weightDigest fingerprints a weight sequence (FNV-1a over the IEEE
// bits).
func weightDigest(w []float64) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v >> (8 * i) & 0xff
			h *= 1099511628211
		}
	}
	mix(uint64(len(w)))
	for _, x := range w {
		mix(math.Float64bits(x))
	}
	return h
}

// maxChungLuVertices bounds the registry-built weight sequence (8 bytes
// per vertex are materialized); larger n must construct NewChungLu with
// caller-owned weights.
const maxChungLuVertices = int64(1) << 28

func buildChungLu(p *Params) (Generator, error) {
	n, err := p.Int64("n", -1)
	if err != nil {
		return nil, err
	}
	if n < 0 || n > maxChungLuVertices {
		return nil, fmt.Errorf("model: chunglu vertex count %d out of [0, %d]", n, maxChungLuVertices)
	}
	dmax, err := p.Float("dmax", math.Sqrt(float64(n)))
	if err != nil {
		return nil, err
	}
	dmin, err := p.Float("dmin", 1)
	if err != nil {
		return nil, err
	}
	gamma, err := p.Float("gamma", 2.5)
	if err != nil {
		return nil, err
	}
	if !(gamma > 1) {
		return nil, fmt.Errorf("model: chunglu gamma %v must exceed 1", gamma)
	}
	if !(dmax >= dmin) || dmin < 0 {
		return nil, fmt.Errorf("model: chunglu needs dmax >= dmin >= 0 (have dmax=%v, dmin=%v)", dmax, dmin)
	}
	seed, err := p.Seed()
	if err != nil {
		return nil, err
	}
	chunks, err := p.Int("chunks", 0)
	if err != nil {
		return nil, err
	}
	// Deterministic power-law-ish expected degrees, already
	// non-increasing: w_i = dmax·(i+1)^(-1/(gamma-1)), floored at dmin.
	weights := make([]float64, n)
	exp := -1 / (gamma - 1)
	for i := range weights {
		w := dmax * math.Pow(float64(i+1), exp)
		if w < dmin {
			w = dmin
		}
		weights[i] = w
	}
	g, err := NewChungLu(weights, seed, chunks)
	if err != nil {
		return nil, err
	}
	g.name = fmt.Sprintf("chunglu:n=%d,dmax=%s,dmin=%s,gamma=%s,seed=%d,chunks=%d",
		n, formatFloat(dmax), formatFloat(dmin), formatFloat(gamma), seed, len(g.rows))
	return g, nil
}

func init() { Register("chunglu", buildChungLu) }

// Name returns the generator's spec (registry-built) or a
// weight-digest description (direct construction).
func (g *ChungLu) Name() string { return g.name }

// NumVertices returns the weight sequence length.
func (g *ChungLu) NumVertices() int64 { return int64(len(g.w)) }

// NumArcs returns -1: the edge count is random.
func (g *ChungLu) NumArcs() int64 { return -1 }

// Chunks returns the fixed chunk count.
func (g *ChungLu) Chunks() int { return len(g.rows) }

// ChunkRange returns chunk c's source-vertex (row) range.
func (g *ChungLu) ChunkRange(c int) (lo, hi int64) {
	r := g.rows[c]
	return r[0], r[1]
}

// ChunkWeight returns chunk c's expected work.
func (g *ChungLu) ChunkWeight(c int) int64 { return g.work[c] }

// ChunkArcs returns -1: per-chunk counts are random.
func (g *ChungLu) ChunkArcs(c int) int64 { return -1 }

// GenerateChunk runs the Miller–Hagberg bucketed sweep over chunk c's
// rows: for row i, candidate columns j > i are visited with geometric
// skips under the row's maximal probability and thinned to the exact
// per-pair probability — O(expected edges) per row.
func (g *ChungLu) GenerateChunk(c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	r := g.rows[c]
	if r[0] >= r[1] || g.sum <= 0 {
		return
	}
	s := rng.NewStream2(g.seed, nsCLChunk, uint64(c))
	b := newBatcher(buf, emit)
	ws, sum := g.w, g.sum
	n := int64(len(ws))
	// Both per-candidate float expressions repeat bit-for-bit whenever
	// the column weight repeats (the whole dmin-floored tail is one
	// constant run), so each is cached by exact float equality —
	// identical input bits give identical output bits, so no draw and
	// no byte changes. lastP/lastLog cache the skip parameter's log1p,
	// the dominant flat cost; lastW/lastQ cache the candidate
	// probability q = wu·w[j]/sum, saving the divide.
	lastP := math.NaN()
	var lastLog float64
	for i := r[0]; i < r[1]; i++ {
		wu := ws[i]
		if wu == 0 {
			break // weights are non-increasing: every later row is empty too
		}
		j := i + 1
		if j >= n {
			continue
		}
		p := wu * ws[j] / sum
		if p > 1 {
			p = 1
		}
		lastW, lastQ := ws[j], p
		for j < n && p > 0 {
			if p < 1 {
				if p != lastP {
					lastP, lastLog = p, math.Log1p(-p)
				}
				j += s.GeometricLog(lastLog)
			}
			if j >= n {
				break
			}
			if w := ws[j]; w != lastW {
				lastW = w
				lastQ = wu * w / sum
				if lastQ > 1 {
					lastQ = 1
				}
			}
			q := lastQ
			if q == p {
				// fl(q/p) = 1 exactly and Float64() < 1 always holds, so
				// accept after consuming the thinning draw, skipping the
				// division and float compare — the hot case whenever
				// neighboring weights are equal.
				s.Uint64()
				if !b.add(i, j) {
					return
				}
			} else if s.Float64() < q/p {
				if !b.add(i, j) {
					return
				}
			}
			p = q
			j++
		}
	}
	b.flush()
}
