package model

import (
	"math"
	"sync"
	"testing"

	"kronvalid/internal/stream"
)

// oracleWeights builds a small registry-shaped weight sequence spanning
// all three regions of the blockwise core: saturated head pairs
// (w_i·w_j ≥ Σw), varying-weight head columns, and a constant
// dmin-floored tail.
func oracleWeights(n int) []float64 {
	const dmax, dmin, gamma = 30.0, 1.0, 1.8
	w := make([]float64, n)
	exp := -1 / (gamma - 1)
	for i := range w {
		w[i] = dmax * math.Pow(float64(i+1), exp)
		if w[i] < dmin {
			w[i] = dmin
		}
	}
	return w
}

// collectBucketed regenerates the full stream through the retained
// bucketed oracle core.
func collectBucketed(g *ChungLu) []stream.Arc {
	var out []stream.Arc
	buf := make([]stream.Arc, 0, 256)
	for c := 0; c < g.Chunks(); c++ {
		g.generateChunkBucketed(c, buf, func(full []stream.Arc) []stream.Arc {
			out = append(out, full...)
			return full[:0]
		})
	}
	return out
}

// TestChungLuBlockwiseMatchesBucketedDistribution is the digest
// re-pin's oracle (see DESIGN.md, "Digest re-pin policy"): the
// blockwise production core draws a different stream than the retained
// bucketed core, so byte equality is unavailable — instead, both cores
// realize the same per-pair Bernoulli law min(1, w_i·w_j/Σw), checked
// here three ways over many seeds: (1) every pair's blockwise frequency
// matches its analytic probability, (2) every pair's two empirical
// frequencies agree within binomial noise, (3) saturated pairs (p = 1)
// appear in every single graph under both cores.
func TestChungLuBlockwiseMatchesBucketedDistribution(t *testing.T) {
	const n = 48
	const seeds = 1500
	w := oracleWeights(n)
	var sum float64
	for _, x := range w {
		sum += x
	}
	pairIdx := func(i, j int64) int { return int(i)*n + int(j) }
	countNew := make([]int64, n*n)
	countOld := make([]int64, n*n)
	for seed := uint64(0); seed < seeds; seed++ {
		g, err := NewChungLu(w, seed, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range Collect(g) {
			countNew[pairIdx(a.U, a.V)]++
		}
		for _, a := range collectBucketed(g) {
			countOld[pairIdx(a.U, a.V)]++
		}
	}
	sawSaturated := false
	for i := int64(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := w[i] * w[j] / sum
			if p > 1 {
				p = 1
			}
			cN, cO := countNew[pairIdx(i, j)], countOld[pairIdx(i, j)]
			if p == 1 {
				sawSaturated = true
				if cN != seeds || cO != seeds {
					t.Fatalf("pair (%d,%d) is saturated but appeared %d/%d (blockwise/bucketed) of %d graphs", i, j, cN, cO, seeds)
				}
				continue
			}
			fN, fO := float64(cN)/seeds, float64(cO)/seeds
			// (1) blockwise marginal vs the analytic law, 6 sd + quantization slack.
			if tol := 6*math.Sqrt(p*(1-p)/seeds) + 2.0/seeds; math.Abs(fN-p) > tol {
				t.Errorf("pair (%d,%d): blockwise frequency %v vs analytic p %v (tol %v)", i, j, fN, p, tol)
			}
			// (2) blockwise vs bucketed, 6 sd of the paired difference.
			ph := (fN + fO) / 2
			if tol := 6*math.Sqrt(2*ph*(1-ph)/seeds) + 2.0/seeds; math.Abs(fN-fO) > tol {
				t.Errorf("pair (%d,%d): blockwise frequency %v vs bucketed %v (tol %v)", i, j, fN, fO, tol)
			}
		}
	}
	if !sawSaturated {
		t.Fatal("oracle weights produced no saturated pair; the p=1 region is untested")
	}
}

// TestChungLuWorkerStateReuseRace drives the scratch-reusing
// ChunkCacher cores (chunglu, ba) from several goroutines at once, each
// goroutine reusing one WorkerState across every chunk, and checks each
// sees the serial stream. Run under -race in CI, it proves worker
// states share no hidden mutable state through their generator.
func TestChungLuWorkerStateReuseRace(t *testing.T) {
	for _, spec := range []string{
		"chunglu:n=3000,dmax=60,gamma=2.4,seed=5",
		"ba:n=2000,d=3,seed=15",
	} {
		g, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		cc, ok := g.(ChunkCacher)
		if !ok {
			t.Fatalf("%s: not a ChunkCacher", spec)
		}
		want := Collect(g)
		var wg sync.WaitGroup
		for worker := 0; worker < 4; worker++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := cc.NewWorkerState()
				var out []stream.Arc
				buf := make([]stream.Arc, 0, 256)
				for c := 0; c < g.Chunks(); c++ {
					cc.GenerateChunkWith(ws, c, buf, func(full []stream.Arc) []stream.Arc {
						out = append(out, full...)
						return full[:0]
					})
				}
				if !sameArcs(out, want) {
					t.Errorf("%s: concurrent worker-state stream differs from serial stream (%d vs %d arcs)", spec, len(out), len(want))
				}
			}()
		}
		wg.Wait()
	}
}
