package model

import (
	"fmt"
	"math"

	"kronvalid/internal/rng"
	"kronvalid/internal/stream"
)

// ErdosRenyi is the sharded G(n, p) model: each unordered pair {u, v} is
// an edge independently with probability p, and the stream emits the
// upper-triangle arc (u, v), u < v, once per edge in canonical order.
//
// The pair index space [0, n(n-1)/2) is cut into row-aligned chunks;
// chunk c walks its index range with geometric skips from its own
// (seed, c)-derived stream, which makes generation O(expected edges)
// instead of the O(n²) Bernoulli sweep of the legacy builder, with no
// coordination between chunks.
type ErdosRenyi struct {
	noDeps
	n    int64
	p    float64
	seed uint64
	ps   pairSpace
	rows [][2]int64
}

// maxPairVertices bounds n so the pair count n(n-1)/2 fits in int64.
const maxPairVertices = int64(1) << 32

// NewErdosRenyi returns the sharded G(n, p) generator. chunks = 0 means
// DefaultChunks; the chunk count is part of the stream identity.
func NewErdosRenyi(n int64, p float64, seed uint64, chunks int) (*ErdosRenyi, error) {
	if n < 0 || n > maxPairVertices {
		return nil, fmt.Errorf("model: er vertex count %d out of [0, %d]", n, maxPairVertices)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return nil, fmt.Errorf("model: er edge probability %v out of [0, 1]", p)
	}
	ps := newPairSpace(n)
	return &ErdosRenyi{n: n, p: p, seed: seed, ps: ps, rows: ps.chunkRows(chunks)}, nil
}

func buildER(p *Params) (Generator, error) {
	n, err := p.Int64("n", -1)
	if err != nil {
		return nil, err
	}
	prob, err := p.Float("p", 0.1)
	if err != nil {
		return nil, err
	}
	seed, err := p.Seed()
	if err != nil {
		return nil, err
	}
	chunks, err := p.Int("chunks", 0)
	if err != nil {
		return nil, err
	}
	return NewErdosRenyi(n, prob, seed, chunks)
}

func init() { Register("er", buildER) }

// Name returns the canonical spec of this generator.
func (g *ErdosRenyi) Name() string {
	return fmt.Sprintf("er:n=%d,p=%s,seed=%d,chunks=%d", g.n, formatFloat(g.p), g.seed, len(g.rows))
}

// NumVertices returns n.
func (g *ErdosRenyi) NumVertices() int64 { return g.n }

// NumArcs returns -1: the edge count is binomial, not fixed.
func (g *ErdosRenyi) NumArcs() int64 { return -1 }

// ExpectedArcs returns the expected number of emitted arcs, p·n(n-1)/2.
func (g *ErdosRenyi) ExpectedArcs() float64 { return g.p * float64(g.ps.total) }

// Chunks returns the fixed chunk count.
func (g *ErdosRenyi) Chunks() int { return len(g.rows) }

// ChunkRange returns chunk c's source-vertex (row) range.
func (g *ErdosRenyi) ChunkRange(c int) (lo, hi int64) {
	r := g.rows[c]
	return r[0], r[1]
}

// ChunkWeight returns chunk c's pair count, its expected relative work.
func (g *ErdosRenyi) ChunkWeight(c int) int64 {
	r := g.rows[c]
	return g.ps.offset(r[1]) - g.ps.offset(r[0])
}

// ChunkArcs returns -1: per-chunk counts are random.
func (g *ErdosRenyi) ChunkArcs(c int) int64 { return -1 }

// GenerateChunk streams chunk c: geometric skips across the chunk's pair
// index range, each surviving index unpacked to its (u, v) arc.
func (g *ErdosRenyi) GenerateChunk(c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	r := g.rows[c]
	if r[0] >= r[1] || g.p <= 0 {
		return
	}
	b := newBatcher(buf, emit)
	i0, i1 := g.ps.offset(r[0]), g.ps.offset(r[1])
	w := g.ps.walkerAt(r[0])
	if g.p >= 1 {
		for t := i0; t < i1; t++ {
			if u, v := w.step(t); !b.add(u, v) {
				return
			}
		}
		b.flush()
		return
	}
	s := rng.NewStream2(g.seed, nsERChunk, uint64(c))
	// p is fixed for the whole sweep, so the denominator log1p(-p) —
	// half of Geometric's flat cost — is hoisted out of the loop;
	// GeometricLog is draw-for-draw identical to Geometric(p).
	logq := math.Log1p(-g.p)
	t := i0 - 1
	for {
		// Break on skip >= remaining rather than comparing t+1+skip with
		// i1: the capped skip could overflow the sum near the top of the
		// int64 pair space.
		skip := s.GeometricLog(logq)
		if skip >= i1-t-1 {
			break
		}
		t += 1 + skip
		if u, v := w.step(t); !b.add(u, v) {
			return
		}
	}
	b.flush()
}
