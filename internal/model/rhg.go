package model

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"kronvalid/internal/par"
	"kronvalid/internal/rng"
	"kronvalid/internal/stream"
)

// RHG is the sharded random hyperbolic graph: n vertices placed in a
// hyperbolic disk of radius R with radial density ∝ sinh(α·r) and
// uniform angle, an undirected edge between every pair at hyperbolic
// distance <= R, emitted once as the upper-triangle arc (u, v), u < v,
// in canonical order. The target average degree d̄ fixes R through the
// Krioukov condition R = 2·ln(2nξ²/(π·d̄)) with ξ = α/(α−1/2), and the
// power-law exponent γ fixes α = (γ−1)/2, so degrees follow a power
// law with exponent γ while triangles close geometrically — the source
// paper's flagship "hard" model, because edges cross cell boundaries
// at range that depends on both endpoints' radii.
//
// Two-phase shape:
//
// Sample — the disk is cut into annulus bands of radial width ≈ ln2/α
// (outermost first), each band into equal angular cells. Cell
// occupancies realize an exact-n multinomial via the shared splitTree
// (uncapacitated, weights proportional to each cell's probability
// mass), and cell c's coordinates come from the pure stream
// (seed, nsRHGCell, c): one uniform for the angle, one inverse-CDF
// draw (rng.HyperbolicRadius) for the radius per point. Vertex ids are
// cell-major, so id order agrees with cell order.
//
// Enumerate — bands are ordered OUTERMOST first, so a cell's forward
// partners (cells with larger index that can hold a neighbor) are its
// same-band angular window plus windows into the sparser inner bands;
// the high-degree hub cells near the disk center come last and are
// everyone's dependency rather than owning an unbounded halo
// themselves. The angular reach between two bands is bounded by the
// distance-threshold angle at the bands' minimum radii (the reach is
// monotonically decreasing in both radii), widened by one cell for
// rounding; the exact pairwise predicate decides every edge, so the
// windows only gate candidate enumeration, never correctness. Each
// chunk owns a contiguous run of cells, regenerates foreign partner
// cells on demand (the declared Dependencies), and emits each pair
// once from the smaller endpoint's cell — ascending per-u segments, so
// the stream is canonical without sorting.
//
// The chunk grouping touches no random draw — bands, cells,
// occupancies and coordinates are fixed by (n, d̄, γ, seed) alone — so
// the stream is byte-identical for every chunk AND worker count.
type RHG struct {
	n     int64
	deg   float64 // target average degree d̄
	gamma float64
	seed  uint64

	alpha float64
	R     float64 // disk radius = distance threshold
	coshR float64

	bands  []rhgBand
	cells  int       // total angular cells over all bands
	totW   int64     // cellWeight(0, cells)
	maxAng []float64 // B×B angular reach bound, row-major by band pair
	tree   splitTree
	ctab   cellTable // lazy full prefix table of tree
	runs   [][2]int  // cell range per chunk
	starts []int64   // vertex-id offset at each chunk boundary (len runs+1)
}

// rhgBand is one annulus [rLo, rHi) cut into `cells` equal angular
// cells of width `width`, holding the hoisted constants of the radial
// inverse CDF and of the angular-reach bound.
type rhgBand struct {
	rLo, rHi       float64
	coshLo, sinhLo float64 // cosh/sinh(rLo): reach-bound terms
	coshALo, spanA float64 // cosh(α·rLo), cosh(α·rHi)−cosh(α·rLo): CDF terms
	cells          int
	cellStart      int // flattened index of the band's first cell
	width          float64
	weight         int64 // integer occupancy weight per cell
}

// maxRHGVertices bounds n so id and occupancy arithmetic stays well
// inside int64.
const maxRHGVertices = int64(1) << 40

// maxRHGBands bounds the band count so the reach matrix and per-band
// tables stay O(1)-small; wider bands only loosen the candidate
// windows, never correctness.
const maxRHGBands = 256

// maxRHGCellsTotal bounds the total cell count: splitting-tree node ids
// pack two cell indices into one uint64, and descents are O(log cells).
const maxRHGCellsTotal = 1 << 22

// rhgTargetOccupancy is the expected points per cell the angular
// subdivision aims for: small enough that the per-cell all-pairs inner
// loop is cheap, large enough that per-cell stream setup amortizes.
const rhgTargetOccupancy = 4.0

// rhgWeightScale converts per-cell probability mass to the integer
// weights the splitting tree divides by; 2^40 keeps three extra decimal
// digits beyond the largest admitted n.
const rhgWeightScale = float64(int64(1) << 40)

// maxRHGResidentPoints caps the regenerated foreign halo a generating
// chunk keeps cached. Crossing it drops the cache: foreign cells are
// pure functions of (seed, cell), so eviction is a speed/memory trade
// that cannot change a byte.
const maxRHGResidentPoints = int64(1) << 21

// NewRHG returns the sharded random hyperbolic graph generator with n
// vertices, target average degree deg, and power-law exponent gamma
// (> 2). chunks = 0 means DefaultChunks; like rgg, the chunk count only
// groups cells for enumeration and is NOT part of the stream identity.
func NewRHG(n int64, deg, gamma float64, seed uint64, chunks int) (*RHG, error) {
	if n < 0 || n > maxRHGVertices {
		return nil, fmt.Errorf("model: rhg vertex count %d out of [0, %d]", n, maxRHGVertices)
	}
	if math.IsNaN(deg) || math.IsInf(deg, 0) || deg <= 0 {
		return nil, fmt.Errorf("model: rhg average degree %v out of (0, ∞)", deg)
	}
	if math.IsNaN(gamma) || gamma <= 2 || gamma > 64 {
		return nil, fmt.Errorf("model: rhg power-law exponent %v out of (2, 64]", gamma)
	}
	g := &RHG{n: n, deg: deg, gamma: gamma, seed: seed}
	g.alpha = (gamma - 1) / 2
	xi := g.alpha / (g.alpha - 0.5)
	if n == 0 {
		// No points: any positive disk radius yields the same empty stream.
		g.R = 1
	} else {
		g.R = 2 * math.Log(2*float64(n)*xi*xi/(math.Pi*deg))
	}
	if g.R <= 0 {
		return nil, fmt.Errorf("model: rhg average degree %v too large for n=%d (disk radius %v <= 0)", deg, n, g.R)
	}
	if g.alpha*g.R > 500 {
		// cosh(α·R) overflows float64 near exponent 709; long before that
		// the occupancy weights lose all resolution.
		return nil, fmt.Errorf("model: rhg α·R = %v too large for float64 radial weights (max 500)", g.alpha*g.R)
	}
	g.coshR = math.Cosh(g.R)

	// Bands: the outer half [R/2, R] in ≈ln2/α-wide annuli — each step
	// halves the radial density scale, the granularity at which the
	// reach bound stays tight — and the inner disk [0, R/2) as one band
	// (every pair of points with r1+r2 <= R connects, so finer inner
	// bands buy nothing). Outermost FIRST: see the type comment.
	half := g.R / 2
	nOuter := int(math.Ceil(half / (math.Ln2 / g.alpha)))
	if nOuter < 1 {
		nOuter = 1
	}
	if nOuter > maxRHGBands-1 {
		nOuter = maxRHGBands - 1
	}
	w := half / float64(nOuter)
	g.bands = make([]rhgBand, nOuter+1)
	for b := 0; b < nOuter; b++ {
		g.bands[b].rHi = g.R - float64(b)*w
		g.bands[b].rLo = g.R - float64(b+1)*w
	}
	g.bands[nOuter].rHi = g.bands[nOuter-1].rLo
	g.bands[nOuter].rLo = 0

	// Angular cells and occupancy weights per band, proportional to the
	// band's probability mass under the sinh(α·r) radial law.
	denom := math.Cosh(g.alpha*g.R) - 1
	var totCells int64
	for b := range g.bands {
		bd := &g.bands[b]
		bd.coshLo = math.Cosh(bd.rLo)
		bd.sinhLo = math.Sinh(bd.rLo)
		bd.coshALo = math.Cosh(g.alpha * bd.rLo)
		bd.spanA = math.Cosh(g.alpha*bd.rHi) - bd.coshALo
		mass := bd.spanA / denom
		k := int64(math.Round(float64(n) * mass / rhgTargetOccupancy))
		if k < 1 {
			k = 1
		}
		if k > maxRHGCellsTotal {
			k = maxRHGCellsTotal
		}
		bd.cells = int(k)
		totCells += k
	}
	if totCells > maxRHGCellsTotal {
		scale := float64(maxRHGCellsTotal) / float64(totCells)
		for b := range g.bands {
			if k := int(float64(g.bands[b].cells) * scale); k >= 1 {
				g.bands[b].cells = k
			} else {
				g.bands[b].cells = 1
			}
		}
	}
	for b := range g.bands {
		bd := &g.bands[b]
		bd.cellStart = g.cells
		g.cells += bd.cells
		bd.width = 2 * math.Pi / float64(bd.cells)
		mass := bd.spanA / denom
		bd.weight = int64(math.Round(mass / float64(bd.cells) * rhgWeightScale))
		if bd.weight < 1 {
			bd.weight = 1
		}
	}
	g.totW = g.cellWeight(0, g.cells)

	// Pairwise angular reach bound: the threshold angle at the two
	// bands' minimum radii — reach decreases in both radii, so this
	// dominates every pair drawn from the two bands. π when the inner
	// radii alone connect (r1+r2 <= R; also absorbs sinh(0) = 0).
	nb := len(g.bands)
	g.maxAng = make([]float64, nb*nb)
	for b1 := 0; b1 < nb; b1++ {
		for b2 := 0; b2 < nb; b2++ {
			r1, r2 := &g.bands[b1], &g.bands[b2]
			ang := math.Pi
			if r1.rLo+r2.rLo > g.R {
				cv := (r1.coshLo*r2.coshLo - g.coshR) / (r1.sinhLo * r2.sinhLo)
				if cv > 1 {
					cv = 1
				}
				if cv < -1 {
					cv = -1
				}
				ang = math.Acos(cv)
			}
			g.maxAng[b1*nb+b2] = ang
		}
	}

	g.tree = splitTree{
		seed:   seed,
		ns:     nsRHGSplit,
		slots:  g.cells,
		total:  n,
		weight: g.cellWeight,
	}
	k := normalizeChunks(chunks, int64(g.cells))
	for _, run := range par.Chunks(int64(g.cells), int64(k)) {
		g.runs = append(g.runs, [2]int{int(run[0]), int(run[1])})
	}
	if len(g.runs) == 0 {
		g.runs = [][2]int{{0, g.cells}}
	}
	memo := make(splitMemo, 2*len(g.runs))
	g.starts = make([]int64, len(g.runs)+1)
	for i, run := range g.runs {
		g.starts[i] = g.tree.prefixMemo(run[0], memo)
	}
	g.starts[len(g.runs)] = n
	return g, nil
}

func buildRHG(p *Params) (Generator, error) {
	n, err := p.Int64("n", -1)
	if err != nil {
		return nil, err
	}
	deg, err := p.FloatReq("d")
	if err != nil {
		return nil, err
	}
	gamma, err := p.Float("gamma", 3)
	if err != nil {
		return nil, err
	}
	seed, err := p.Seed()
	if err != nil {
		return nil, err
	}
	chunks, err := p.Int("chunks", 0)
	if err != nil {
		return nil, err
	}
	return NewRHG(n, deg, gamma, seed, chunks)
}

func init() {
	Register("rhg", buildRHG)
}

// cellWeight returns the summed integer occupancy weight of cells
// [lo, hi) — the splitting tree's exactly additive weight function,
// evaluated as an O(bands) overlap scan.
func (g *RHG) cellWeight(lo, hi int) int64 {
	var tot int64
	for b := range g.bands {
		bd := &g.bands[b]
		l, h := lo, hi
		if l < bd.cellStart {
			l = bd.cellStart
		}
		if e := bd.cellStart + bd.cells; h > e {
			h = e
		}
		if h > l {
			tot += bd.weight * int64(h-l)
		}
	}
	return tot
}

// cellBand returns the band index owning flattened cell index c.
func (g *RHG) cellBand(c int) int {
	return sort.Search(len(g.bands), func(b int) bool {
		return g.bands[b].cellStart+g.bands[b].cells > c
	})
}

// Name returns the canonical spec of this generator.
func (g *RHG) Name() string {
	return fmt.Sprintf("rhg:n=%d,d=%s,gamma=%s,seed=%d,chunks=%d",
		g.n, formatFloat(g.deg), formatFloat(g.gamma), g.seed, len(g.runs))
}

// NumVertices returns n.
func (g *RHG) NumVertices() int64 { return g.n }

// NumArcs returns -1: the edge count is random.
func (g *RHG) NumArcs() int64 { return -1 }

// TargetDegree returns the average degree the disk radius was solved
// for.
func (g *RHG) TargetDegree() float64 { return g.deg }

// DiskRadius returns the hyperbolic disk radius R (also the distance
// threshold).
func (g *RHG) DiskRadius() float64 { return g.R }

// Chunks returns the fixed chunk count.
func (g *RHG) Chunks() int { return len(g.runs) }

// CellCount returns the number of sample cells over all bands.
func (g *RHG) CellCount() int { return g.cells }

// CellVertices returns the exact occupancy of cell c — the Sample
// phase's splitting tree, recomputable by any worker.
func (g *RHG) CellVertices(c int) int64 { return g.tree.count(c) }

// ChunkRange returns chunk c's vertex-id range: ids are cell-major, so
// contiguous cell runs own contiguous id ranges.
func (g *RHG) ChunkRange(c int) (lo, hi int64) {
	return g.starts[c], g.starts[c+1]
}

// ChunkWeight returns chunk c's expected work: twice its expected point
// count (own points are paired against a regenerated halo of the same
// order) plus a constant floor.
func (g *RHG) ChunkWeight(c int) int64 {
	if g.totW == 0 {
		return 1
	}
	w := g.cellWeight(g.runs[c][0], g.runs[c][1])
	return 1 + int64(2*float64(g.n)*float64(w)/float64(g.totW))
}

// ChunkArcs returns -1: per-chunk counts are random.
func (g *RHG) ChunkArcs(c int) int64 { return -1 }

// forwardPartners returns the cells with index > c whose angular window
// can hold a neighbor of a point in cell c, ascending: the same-band
// window plus a window into each inner band (bands are outermost
// first, so inner bands have larger indices). Windows are widened by
// one cell per side for floating-point safety; the exact distance
// predicate decides every pair, so over-wide windows cost comparisons,
// not correctness.
func (g *RHG) forwardPartners(c int) []int { return g.appendForwardPartners(c, nil) }

// appendForwardPartners is forwardPartners appending into a caller
// scratch slice. A band's wrapped window {j mod cells : jLo <= j <= jHi}
// covers fewer than cells indices (the full-range branch catches the
// rest), so it is one contiguous index range — or two when it straddles
// the wrap, in which case the low range is appended before the high
// one. Bands are visited in ascending cellStart order, so the output is
// ascending with no per-cell sort, index for index what the sorted
// enumeration produced.
func (g *RHG) appendForwardPartners(c int, out []int) []int {
	b1 := g.cellBand(c)
	own := &g.bands[b1]
	j1 := c - own.cellStart
	th0 := float64(j1) * own.width
	th1 := th0 + own.width
	nb := len(g.bands)
	for b2 := b1; b2 < nb; b2++ {
		bd := &g.bands[b2]
		ang := g.maxAng[b1*nb+b2]
		jLo := int(math.Floor((th0-ang)/bd.width)) - 1
		jHi := int(math.Floor((th1+ang)/bd.width)) + 1
		if jHi-jLo+1 >= bd.cells {
			start := bd.cellStart
			if b2 == b1 {
				start = c + 1
			}
			for idx := start; idx < bd.cellStart+bd.cells; idx++ {
				out = append(out, idx)
			}
			continue
		}
		a := ((jLo % bd.cells) + bd.cells) % bd.cells
		z := ((jHi % bd.cells) + bd.cells) % bd.cells
		if a <= z {
			for j := a; j <= z; j++ {
				if idx := bd.cellStart + j; idx > c {
					out = append(out, idx)
				}
			}
			continue
		}
		for j := 0; j <= z; j++ {
			if idx := bd.cellStart + j; idx > c {
				out = append(out, idx)
			}
		}
		for j := a; j < bd.cells; j++ {
			if idx := bd.cellStart + j; idx > c {
				out = append(out, idx)
			}
		}
	}
	return out
}

// rhgRun is one contiguous forward-partner cell range [lo, hi) inside
// band `band` — the range form of appendForwardPartners' output.
type rhgRun struct {
	band   int
	lo, hi int
}

// appendForwardRuns is appendForwardPartners emitting maximal
// contiguous cell ranges instead of individual indices: flattening each
// run in order yields index for index the same cell sequence. O(bands)
// per call instead of O(window cells).
func (g *RHG) appendForwardRuns(c int, out []rhgRun) []rhgRun {
	b1 := g.cellBand(c)
	own := &g.bands[b1]
	j1 := c - own.cellStart
	th0 := float64(j1) * own.width
	th1 := th0 + own.width
	nb := len(g.bands)
	push := func(band, lo, hi int) {
		if lo <= c {
			lo = c + 1
		}
		if hi > lo {
			out = append(out, rhgRun{band: band, lo: lo, hi: hi})
		}
	}
	for b2 := b1; b2 < nb; b2++ {
		bd := &g.bands[b2]
		ang := g.maxAng[b1*nb+b2]
		jLo := int(math.Floor((th0-ang)/bd.width)) - 1
		jHi := int(math.Floor((th1+ang)/bd.width)) + 1
		end := bd.cellStart + bd.cells
		if jHi-jLo+1 >= bd.cells {
			push(b2, bd.cellStart, end)
			continue
		}
		a := ((jLo % bd.cells) + bd.cells) % bd.cells
		z := ((jHi % bd.cells) + bd.cells) % bd.cells
		if a <= z {
			push(b2, bd.cellStart+a, bd.cellStart+z+1)
			continue
		}
		push(b2, bd.cellStart, bd.cellStart+z+1)
		push(b2, bd.cellStart+a, end)
	}
	return out
}

// Dependencies returns the foreign cells chunk c regenerates: forward
// partners of its owned cells that fall outside its own cell run.
func (g *RHG) Dependencies(c int) []int64 {
	lo, hi := g.runs[c][0], g.runs[c][1]
	seen := map[int]bool{}
	for cell := lo; cell < hi; cell++ {
		for _, nb := range g.forwardPartners(cell) {
			if nb >= hi {
				seen[nb] = true
			}
		}
	}
	out := make([]int64, 0, len(seen))
	for nb := range seen {
		out = append(out, int64(nb))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// samplePoints regenerates cell c's points — the Sample phase's pure
// function of (seed, cell): occupancy and id offset from the splitting
// tree, then per point one uniform for the angle within the cell's
// window and one inverse-CDF draw for the radius within the band, both
// served from one batched raw-uniform fill (u[2i] angle, u[2i+1]
// radius — the exact draw order of the per-point loop it replaced).
// Points are stored pre-transformed as SoA columns (cosθ, sinθ,
// cosh r, sinh r) so the pairwise predicate needs no trigonometry. st
// routes tree queries and the uniform scratch through the worker state
// (nil falls back to plain descents and a local buffer, for oracles
// and tests); neither changes a value, only its cost.
func (g *RHG) samplePoints(cell int, st *spatialState) *cellSample {
	var cnt, start int64
	if st != nil {
		cnt = st.count(&g.tree, cell)
		start = st.prefix(&g.tree, cell)
	} else {
		cnt = g.tree.count(cell)
		start = g.tree.prefix(cell)
	}
	if cnt > math.MaxInt32 {
		// Unreachable under the resident cap; guards the int32 hit indices.
		panic(fmt.Sprintf("model: rhg cell %d occupancy %d overflows kernel index", cell, cnt))
	}
	s := allocSample(st, start, int(cnt), 4)
	if cnt == 0 {
		return s
	}
	g.samplePointsInto(cell, st, s.xs, s.ys, s.zs, s.ws)
	return s
}

// samplePointsInto writes cell's pre-transformed points into the given
// column slices (each len == the cell's occupancy). It is the draw core
// of samplePoints — the destination never influences a value — shared
// by the cellSample path and the panel strips.
func (g *RHG) samplePointsInto(cell int, st *spatialState, xs, ys, zs, ws []float64) {
	cnt := len(xs)
	b := g.cellBand(cell)
	bd := &g.bands[b]
	th0 := float64(cell-bd.cellStart) * bd.width
	invAlpha := 1 / g.alpha
	rs := rng.NewStream2(g.seed, nsRHGCell, uint64(cell))
	need := 2 * cnt
	var u []float64
	if st != nil {
		if cap(st.unif) < need {
			st.unif = make([]float64, need)
		}
		u = st.unif[:need]
	} else {
		u = make([]float64, need)
	}
	rs.UnitUniform(u)
	for i := 0; i < cnt; i++ {
		theta := th0 + u[2*i]*bd.width
		// Inlined rng.HyperbolicRadius on the buffered draw — the
		// identical float expression.
		r := math.Acosh(bd.coshALo+u[2*i+1]*bd.spanA) * invAlpha
		sinT, cosT := math.Sincos(theta)
		xs[i] = cosT
		ys[i] = sinT
		zs[i] = math.Cosh(r)
		ws[i] = math.Sinh(r)
	}
}

// within reports whether two pre-transformed AoS points lie at
// hyperbolic distance <= R: cosh d = cosh r1·cosh r2 − sinh r1·sinh
// r2·cos Δθ, with cos Δθ expanded through the stored (cosθ, sinθ) —
// the scalar reference predicate rhgHits mirrors, kept for the
// brute-force oracles.
func (g *RHG) within(p, q []float64) bool {
	return p[2]*q[2]-p[3]*q[3]*(p[0]*q[0]+p[1]*q[1]) <= g.coshR
}

// rhgHits appends to hits the ascending indices j of the SoA segment
// within hyperbolic distance R of the point (c0, s0, ch, sh). Blocked
// kernelLanes at a time with branchless mask accumulation, like the rgg
// kernels; every lane and the scalar tail evaluate the same expression
// tree as within, so any platform's rounding/fusion decisions are
// identical and the emitted bits cannot move.
func rhgHits(c0, s0, ch, sh, coshR float64, xs, ys, zs, ws []float64, hits []int32) []int32 {
	ys = ys[:len(xs)]
	zs = zs[:len(xs)]
	ws = ws[:len(xs)]
	j := 0
	for ; j+kernelLanes <= len(xs); j += kernelLanes {
		bx := xs[j : j+kernelLanes : j+kernelLanes]
		by := ys[j : j+kernelLanes : j+kernelLanes]
		bz := zs[j : j+kernelLanes : j+kernelLanes]
		bw := ws[j : j+kernelLanes : j+kernelLanes]
		var mask uint32
		for k := 0; k < kernelLanes; k++ {
			var hit uint32
			if ch*bz[k]-sh*bw[k]*(c0*bx[k]+s0*by[k]) <= coshR {
				hit = 1
			}
			mask |= hit << k
		}
		for mask != 0 {
			k := bits.TrailingZeros32(mask)
			mask &= mask - 1
			hits = append(hits, int32(j+k))
		}
	}
	for ; j < len(xs); j++ {
		if ch*zs[j]-sh*ws[j]*(c0*xs[j]+s0*ys[j]) <= coshR {
			hits = append(hits, int32(j))
		}
	}
	return hits
}

// getCell reads cell through the worker's cache, regenerating on miss.
func (g *RHG) getCell(st *spatialState, cell int) *cellSample {
	if e := st.lookup(cell); e != nil {
		return e
	}
	e := g.samplePoints(cell, st)
	st.hold(cell, e)
	return e
}

// maxRHGRingCells gates the direct-indexed ring cache: one slot per
// cell (8 bytes each, ≤ 8 MiB per worker at the gate). A cell's forward
// partners can sit anywhere ahead of it — inner bands are everyone's
// dependency — so the ring must cover the whole cell space; larger cell
// spaces fall back to the map cache.
const maxRHGRingCells = 1 << 20

// rhgPanelMaxPoints gates the band-panel worker state: every point of
// the graph is materialized at most once across the panels, so the
// whole-graph point count must fit under the resident cap. A var so
// tests can force the fallback path.
var rhgPanelMaxPoints = maxRHGResidentPoints

// rhgState is the strip-mode WorkerState: the whole cell space
// flattened in cell order into one worker-lifetime SoA strip, filled
// lazily cell by cell. Vertex ids are cell-major over the whole graph,
// so the point at strip offset p has global id exactly p — a forward
// window of cells (empty ones included) is a contiguous strip range
// whose kernel hit indices feed addRun directly, with no per-cell
// staging, copying, or id column. Every strip value is the same pure
// (seed, cell) draw the cellSample path makes. Each point is
// materialized at most once, so residency is bounded by the graph
// size, which the strip gate keeps under the eviction cap — no
// eviction is ever needed.
type rhgState struct {
	st             *spatialState
	xs, ys, zs, ws []float64
	filled         []bool // per cell
	runs           []rhgRun
	prs            [][2]int // forward point ranges of the current own cell
	pts            int64
}

// ResidentPoints reports the points materialized in the strip.
func (ps *rhgState) ResidentPoints() int64 { return ps.pts }

// ensure fills cell's strip range [tab[cell], tab[cell+1]) if it is not
// resident yet.
func (ps *rhgState) ensure(g *RHG, cell int) {
	if ps.filled[cell] {
		return
	}
	ps.filled[cell] = true
	tab := ps.st.tab
	lo, hi := int(tab[cell]), int(tab[cell+1])
	if hi > lo {
		g.samplePointsInto(cell, ps.st, ps.xs[lo:hi], ps.ys[lo:hi], ps.zs[lo:hi], ps.ws[lo:hi])
		ps.pts += int64(hi - lo)
	}
}

// NewWorkerState returns the worker-lifetime state (ChunkCacher): the
// flattened sample strip when the full prefix table exists and the
// whole graph fits under the resident cap, else the generic bounded
// cell cache (ring when the cell space is small enough to direct-index,
// map beyond).
func (g *RHG) NewWorkerState() WorkerState {
	if tab := g.ctab.get(&g.tree); tab != nil && g.n <= rhgPanelMaxPoints {
		n := int(g.n)
		return &rhgState{
			st:     newSpatialState(&g.tree, &g.ctab, maxRHGResidentPoints, 0),
			xs:     make([]float64, n),
			ys:     make([]float64, n),
			zs:     make([]float64, n),
			ws:     make([]float64, n),
			filled: make([]bool, g.cells),
		}
	}
	window := g.cells
	if window > maxRHGRingCells {
		window = 0 // map fallback
	}
	return newSpatialState(&g.tree, &g.ctab, maxRHGResidentPoints, window)
}

// GenerateChunk streams chunk c with single-chunk state — equivalent to
// GenerateChunkWith under a fresh worker state.
func (g *RHG) GenerateChunk(c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	g.GenerateChunkWith(g.NewWorkerState(), c, buf, emit)
}

// GenerateChunkWith streams chunk c: for each owned cell in index
// order, its points are compared against the cell's own later points
// and every forward partner cell's points (regenerated through ws's
// cell cache), emitting (u, v), u < v, for each pair within hyperbolic
// distance R. Partner segments are visited in ascending cell order, so
// the stream is canonical by construction. Owned cells are dropped once
// processed (later cells only look forward); the foreign halo stays
// until it crosses the resident cap, then is dropped wholesale —
// regeneration is pure, so eviction never changes a byte.
func (g *RHG) GenerateChunkWith(ws WorkerState, c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	if ps, ok := ws.(*rhgState); ok {
		g.generatePanels(ps, c, buf, emit)
		return
	}
	st := ws.(*spatialState)
	lo, hi := g.runs[c][0], g.runs[c][1]
	if lo >= hi || g.n == 0 {
		return
	}
	b := newBatcher(buf, emit)
	for cell := lo; cell < hi; cell++ {
		own := g.getCell(st, cell)
		if own.n > 0 {
			st.cand = g.appendForwardPartners(cell, st.cand[:0])
			st.resetFlat()
			st.appendFlat(own, 4)
			for _, nb := range st.cand {
				if e := g.getCell(st, nb); e.n > 0 {
					st.appendFlat(e, 4)
				}
			}
			if !g.pairsCell(b, st, own) {
				return
			}
		}
		st.dropOwn(cell)
	}
	b.flush()
}

// pairsCell emits every within-R pair of own point i against the
// flattened halo tail flat[i+1:] — the own cell's later points followed
// by every staged partner cell's, in ascending id order. One kernel
// call per own point covers what used to be one call per partner cell;
// the flattened values and scan order are bit-identical to the per-cell
// walk, so the emitted arcs are too.
func (g *RHG) pairsCell(b *batcher, st *spatialState, own *cellSample) bool {
	for i := 0; i < own.n; i++ {
		st.hits = rhgHits(own.xs[i], own.ys[i], own.zs[i], own.ws[i], g.coshR,
			st.fxs[i+1:], st.fys[i+1:], st.fzs[i+1:], st.fws[i+1:], st.hits[:0])
		if !b.addIdx(own.start+int64(i), st.fvids[i+1:], st.hits) {
			return false
		}
	}
	return true
}

// generatePanels is GenerateChunkWith over the strip state: per owned
// cell it materializes the forward windows as contiguous strip point
// ranges (ids are cell-major, so a range of cells — empty ones included
// — is a range of consecutive ids), coalesces point-adjacent ranges
// (scanning across an empty gap cell adds zero points), folds the own
// tail into the first range when they touch (the common non-wrapped
// same-band window), and runs one kernel call per range per own point,
// emitting through addRun exactly as the per-cell walk does. Same
// cells, same draw values, same scan order ⇒ the same bytes; only the
// staging cost is gone.
func (g *RHG) generatePanels(ps *rhgState, c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	st := ps.st
	lo, hi := g.runs[c][0], g.runs[c][1]
	if lo >= hi || g.n == 0 {
		return
	}
	b := newBatcher(buf, emit)
	tab := st.tab
	for cell := lo; cell < hi; cell++ {
		ownLo, ownHi := int(tab[cell]), int(tab[cell+1])
		if ownHi == ownLo {
			continue
		}
		ps.ensure(g, cell)
		ps.runs = g.appendForwardRuns(cell, ps.runs[:0])
		prs := ps.prs[:0]
		for _, r := range ps.runs {
			pLo, pHi := int(tab[r.lo]), int(tab[r.hi])
			if pHi == pLo {
				continue
			}
			if k := len(prs); k > 0 && prs[k-1][1] == pLo {
				prs[k-1][1] = pHi
			} else {
				prs = append(prs, [2]int{pLo, pHi})
			}
			for cc := r.lo; cc < r.hi; cc++ {
				ps.ensure(g, cc)
			}
		}
		ps.prs = prs
		head := ownHi
		if len(prs) > 0 && prs[0][0] == ownHi {
			head = prs[0][1]
			prs = prs[1:]
		}
		for pi := ownLo; pi < ownHi; pi++ {
			c0, s0, ch, sh := ps.xs[pi], ps.ys[pi], ps.zs[pi], ps.ws[pi]
			u := int64(pi)
			st.hits = rhgHits(c0, s0, ch, sh, g.coshR,
				ps.xs[pi+1:head], ps.ys[pi+1:head], ps.zs[pi+1:head], ps.ws[pi+1:head], st.hits[:0])
			if !b.addRun(u, u+1, st.hits) {
				return
			}
			for _, pr := range prs {
				st.hits = rhgHits(c0, s0, ch, sh, g.coshR,
					ps.xs[pr[0]:pr[1]], ps.ys[pr[0]:pr[1]], ps.zs[pr[0]:pr[1]], ps.ws[pr[0]:pr[1]], st.hits[:0])
				if !b.addRun(u, int64(pr[0]), st.hits) {
					return
				}
			}
		}
	}
	b.flush()
}
