package model

import (
	"fmt"
	"math"
	"sort"

	"kronvalid/internal/par"
	"kronvalid/internal/rng"
	"kronvalid/internal/stream"
)

// RHG is the sharded random hyperbolic graph: n vertices placed in a
// hyperbolic disk of radius R with radial density ∝ sinh(α·r) and
// uniform angle, an undirected edge between every pair at hyperbolic
// distance <= R, emitted once as the upper-triangle arc (u, v), u < v,
// in canonical order. The target average degree d̄ fixes R through the
// Krioukov condition R = 2·ln(2nξ²/(π·d̄)) with ξ = α/(α−1/2), and the
// power-law exponent γ fixes α = (γ−1)/2, so degrees follow a power
// law with exponent γ while triangles close geometrically — the source
// paper's flagship "hard" model, because edges cross cell boundaries
// at range that depends on both endpoints' radii.
//
// Two-phase shape:
//
// Sample — the disk is cut into annulus bands of radial width ≈ ln2/α
// (outermost first), each band into equal angular cells. Cell
// occupancies realize an exact-n multinomial via the shared splitTree
// (uncapacitated, weights proportional to each cell's probability
// mass), and cell c's coordinates come from the pure stream
// (seed, nsRHGCell, c): one uniform for the angle, one inverse-CDF
// draw (rng.HyperbolicRadius) for the radius per point. Vertex ids are
// cell-major, so id order agrees with cell order.
//
// Enumerate — bands are ordered OUTERMOST first, so a cell's forward
// partners (cells with larger index that can hold a neighbor) are its
// same-band angular window plus windows into the sparser inner bands;
// the high-degree hub cells near the disk center come last and are
// everyone's dependency rather than owning an unbounded halo
// themselves. The angular reach between two bands is bounded by the
// distance-threshold angle at the bands' minimum radii (the reach is
// monotonically decreasing in both radii), widened by one cell for
// rounding; the exact pairwise predicate decides every edge, so the
// windows only gate candidate enumeration, never correctness. Each
// chunk owns a contiguous run of cells, regenerates foreign partner
// cells on demand (the declared Dependencies), and emits each pair
// once from the smaller endpoint's cell — ascending per-u segments, so
// the stream is canonical without sorting.
//
// The chunk grouping touches no random draw — bands, cells,
// occupancies and coordinates are fixed by (n, d̄, γ, seed) alone — so
// the stream is byte-identical for every chunk AND worker count.
type RHG struct {
	n     int64
	deg   float64 // target average degree d̄
	gamma float64
	seed  uint64

	alpha float64
	R     float64 // disk radius = distance threshold
	coshR float64

	bands  []rhgBand
	cells  int       // total angular cells over all bands
	totW   int64     // cellWeight(0, cells)
	maxAng []float64 // B×B angular reach bound, row-major by band pair
	tree   splitTree
	runs   [][2]int // cell range per chunk
	starts []int64  // vertex-id offset at each chunk boundary (len runs+1)
}

// rhgBand is one annulus [rLo, rHi) cut into `cells` equal angular
// cells of width `width`, holding the hoisted constants of the radial
// inverse CDF and of the angular-reach bound.
type rhgBand struct {
	rLo, rHi       float64
	coshLo, sinhLo float64 // cosh/sinh(rLo): reach-bound terms
	coshALo, spanA float64 // cosh(α·rLo), cosh(α·rHi)−cosh(α·rLo): CDF terms
	cells          int
	cellStart      int // flattened index of the band's first cell
	width          float64
	weight         int64 // integer occupancy weight per cell
}

// maxRHGVertices bounds n so id and occupancy arithmetic stays well
// inside int64.
const maxRHGVertices = int64(1) << 40

// maxRHGBands bounds the band count so the reach matrix and per-band
// tables stay O(1)-small; wider bands only loosen the candidate
// windows, never correctness.
const maxRHGBands = 256

// maxRHGCellsTotal bounds the total cell count: splitting-tree node ids
// pack two cell indices into one uint64, and descents are O(log cells).
const maxRHGCellsTotal = 1 << 22

// rhgTargetOccupancy is the expected points per cell the angular
// subdivision aims for: small enough that the per-cell all-pairs inner
// loop is cheap, large enough that per-cell stream setup amortizes.
const rhgTargetOccupancy = 4.0

// rhgWeightScale converts per-cell probability mass to the integer
// weights the splitting tree divides by; 2^40 keeps three extra decimal
// digits beyond the largest admitted n.
const rhgWeightScale = float64(int64(1) << 40)

// maxRHGResidentPoints caps the regenerated foreign halo a generating
// chunk keeps cached. Crossing it drops the cache: foreign cells are
// pure functions of (seed, cell), so eviction is a speed/memory trade
// that cannot change a byte.
const maxRHGResidentPoints = int64(1) << 21

// NewRHG returns the sharded random hyperbolic graph generator with n
// vertices, target average degree deg, and power-law exponent gamma
// (> 2). chunks = 0 means DefaultChunks; like rgg, the chunk count only
// groups cells for enumeration and is NOT part of the stream identity.
func NewRHG(n int64, deg, gamma float64, seed uint64, chunks int) (*RHG, error) {
	if n < 0 || n > maxRHGVertices {
		return nil, fmt.Errorf("model: rhg vertex count %d out of [0, %d]", n, maxRHGVertices)
	}
	if math.IsNaN(deg) || math.IsInf(deg, 0) || deg <= 0 {
		return nil, fmt.Errorf("model: rhg average degree %v out of (0, ∞)", deg)
	}
	if math.IsNaN(gamma) || gamma <= 2 || gamma > 64 {
		return nil, fmt.Errorf("model: rhg power-law exponent %v out of (2, 64]", gamma)
	}
	g := &RHG{n: n, deg: deg, gamma: gamma, seed: seed}
	g.alpha = (gamma - 1) / 2
	xi := g.alpha / (g.alpha - 0.5)
	if n == 0 {
		// No points: any positive disk radius yields the same empty stream.
		g.R = 1
	} else {
		g.R = 2 * math.Log(2*float64(n)*xi*xi/(math.Pi*deg))
	}
	if g.R <= 0 {
		return nil, fmt.Errorf("model: rhg average degree %v too large for n=%d (disk radius %v <= 0)", deg, n, g.R)
	}
	if g.alpha*g.R > 500 {
		// cosh(α·R) overflows float64 near exponent 709; long before that
		// the occupancy weights lose all resolution.
		return nil, fmt.Errorf("model: rhg α·R = %v too large for float64 radial weights (max 500)", g.alpha*g.R)
	}
	g.coshR = math.Cosh(g.R)

	// Bands: the outer half [R/2, R] in ≈ln2/α-wide annuli — each step
	// halves the radial density scale, the granularity at which the
	// reach bound stays tight — and the inner disk [0, R/2) as one band
	// (every pair of points with r1+r2 <= R connects, so finer inner
	// bands buy nothing). Outermost FIRST: see the type comment.
	half := g.R / 2
	nOuter := int(math.Ceil(half / (math.Ln2 / g.alpha)))
	if nOuter < 1 {
		nOuter = 1
	}
	if nOuter > maxRHGBands-1 {
		nOuter = maxRHGBands - 1
	}
	w := half / float64(nOuter)
	g.bands = make([]rhgBand, nOuter+1)
	for b := 0; b < nOuter; b++ {
		g.bands[b].rHi = g.R - float64(b)*w
		g.bands[b].rLo = g.R - float64(b+1)*w
	}
	g.bands[nOuter].rHi = g.bands[nOuter-1].rLo
	g.bands[nOuter].rLo = 0

	// Angular cells and occupancy weights per band, proportional to the
	// band's probability mass under the sinh(α·r) radial law.
	denom := math.Cosh(g.alpha*g.R) - 1
	var totCells int64
	for b := range g.bands {
		bd := &g.bands[b]
		bd.coshLo = math.Cosh(bd.rLo)
		bd.sinhLo = math.Sinh(bd.rLo)
		bd.coshALo = math.Cosh(g.alpha * bd.rLo)
		bd.spanA = math.Cosh(g.alpha*bd.rHi) - bd.coshALo
		mass := bd.spanA / denom
		k := int64(math.Round(float64(n) * mass / rhgTargetOccupancy))
		if k < 1 {
			k = 1
		}
		if k > maxRHGCellsTotal {
			k = maxRHGCellsTotal
		}
		bd.cells = int(k)
		totCells += k
	}
	if totCells > maxRHGCellsTotal {
		scale := float64(maxRHGCellsTotal) / float64(totCells)
		for b := range g.bands {
			if k := int(float64(g.bands[b].cells) * scale); k >= 1 {
				g.bands[b].cells = k
			} else {
				g.bands[b].cells = 1
			}
		}
	}
	for b := range g.bands {
		bd := &g.bands[b]
		bd.cellStart = g.cells
		g.cells += bd.cells
		bd.width = 2 * math.Pi / float64(bd.cells)
		mass := bd.spanA / denom
		bd.weight = int64(math.Round(mass / float64(bd.cells) * rhgWeightScale))
		if bd.weight < 1 {
			bd.weight = 1
		}
	}
	g.totW = g.cellWeight(0, g.cells)

	// Pairwise angular reach bound: the threshold angle at the two
	// bands' minimum radii — reach decreases in both radii, so this
	// dominates every pair drawn from the two bands. π when the inner
	// radii alone connect (r1+r2 <= R; also absorbs sinh(0) = 0).
	nb := len(g.bands)
	g.maxAng = make([]float64, nb*nb)
	for b1 := 0; b1 < nb; b1++ {
		for b2 := 0; b2 < nb; b2++ {
			r1, r2 := &g.bands[b1], &g.bands[b2]
			ang := math.Pi
			if r1.rLo+r2.rLo > g.R {
				cv := (r1.coshLo*r2.coshLo - g.coshR) / (r1.sinhLo * r2.sinhLo)
				if cv > 1 {
					cv = 1
				}
				if cv < -1 {
					cv = -1
				}
				ang = math.Acos(cv)
			}
			g.maxAng[b1*nb+b2] = ang
		}
	}

	g.tree = splitTree{
		seed:   seed,
		ns:     nsRHGSplit,
		slots:  g.cells,
		total:  n,
		weight: g.cellWeight,
	}
	k := normalizeChunks(chunks, int64(g.cells))
	for _, run := range par.Chunks(int64(g.cells), int64(k)) {
		g.runs = append(g.runs, [2]int{int(run[0]), int(run[1])})
	}
	if len(g.runs) == 0 {
		g.runs = [][2]int{{0, g.cells}}
	}
	memo := make(splitMemo, 2*len(g.runs))
	g.starts = make([]int64, len(g.runs)+1)
	for i, run := range g.runs {
		g.starts[i] = g.tree.prefixMemo(run[0], memo)
	}
	g.starts[len(g.runs)] = n
	return g, nil
}

func buildRHG(p *Params) (Generator, error) {
	n, err := p.Int64("n", -1)
	if err != nil {
		return nil, err
	}
	deg, err := p.FloatReq("d")
	if err != nil {
		return nil, err
	}
	gamma, err := p.Float("gamma", 3)
	if err != nil {
		return nil, err
	}
	seed, err := p.Seed()
	if err != nil {
		return nil, err
	}
	chunks, err := p.Int("chunks", 0)
	if err != nil {
		return nil, err
	}
	return NewRHG(n, deg, gamma, seed, chunks)
}

func init() {
	Register("rhg", buildRHG)
}

// cellWeight returns the summed integer occupancy weight of cells
// [lo, hi) — the splitting tree's exactly additive weight function,
// evaluated as an O(bands) overlap scan.
func (g *RHG) cellWeight(lo, hi int) int64 {
	var tot int64
	for b := range g.bands {
		bd := &g.bands[b]
		l, h := lo, hi
		if l < bd.cellStart {
			l = bd.cellStart
		}
		if e := bd.cellStart + bd.cells; h > e {
			h = e
		}
		if h > l {
			tot += bd.weight * int64(h-l)
		}
	}
	return tot
}

// cellBand returns the band index owning flattened cell index c.
func (g *RHG) cellBand(c int) int {
	return sort.Search(len(g.bands), func(b int) bool {
		return g.bands[b].cellStart+g.bands[b].cells > c
	})
}

// Name returns the canonical spec of this generator.
func (g *RHG) Name() string {
	return fmt.Sprintf("rhg:n=%d,d=%s,gamma=%s,seed=%d,chunks=%d",
		g.n, formatFloat(g.deg), formatFloat(g.gamma), g.seed, len(g.runs))
}

// NumVertices returns n.
func (g *RHG) NumVertices() int64 { return g.n }

// NumArcs returns -1: the edge count is random.
func (g *RHG) NumArcs() int64 { return -1 }

// TargetDegree returns the average degree the disk radius was solved
// for.
func (g *RHG) TargetDegree() float64 { return g.deg }

// DiskRadius returns the hyperbolic disk radius R (also the distance
// threshold).
func (g *RHG) DiskRadius() float64 { return g.R }

// Chunks returns the fixed chunk count.
func (g *RHG) Chunks() int { return len(g.runs) }

// CellCount returns the number of sample cells over all bands.
func (g *RHG) CellCount() int { return g.cells }

// CellVertices returns the exact occupancy of cell c — the Sample
// phase's splitting tree, recomputable by any worker.
func (g *RHG) CellVertices(c int) int64 { return g.tree.count(c) }

// ChunkRange returns chunk c's vertex-id range: ids are cell-major, so
// contiguous cell runs own contiguous id ranges.
func (g *RHG) ChunkRange(c int) (lo, hi int64) {
	return g.starts[c], g.starts[c+1]
}

// ChunkWeight returns chunk c's expected work: twice its expected point
// count (own points are paired against a regenerated halo of the same
// order) plus a constant floor.
func (g *RHG) ChunkWeight(c int) int64 {
	if g.totW == 0 {
		return 1
	}
	w := g.cellWeight(g.runs[c][0], g.runs[c][1])
	return 1 + int64(2*float64(g.n)*float64(w)/float64(g.totW))
}

// ChunkArcs returns -1: per-chunk counts are random.
func (g *RHG) ChunkArcs(c int) int64 { return -1 }

// forwardPartners returns the cells with index > c whose angular window
// can hold a neighbor of a point in cell c, ascending: the same-band
// window plus a window into each inner band (bands are outermost
// first, so inner bands have larger indices). Windows are widened by
// one cell per side for floating-point safety; the exact distance
// predicate decides every pair, so over-wide windows cost comparisons,
// not correctness.
func (g *RHG) forwardPartners(c int) []int {
	b1 := g.cellBand(c)
	own := &g.bands[b1]
	j1 := c - own.cellStart
	th0 := float64(j1) * own.width
	th1 := th0 + own.width
	nb := len(g.bands)
	var out []int
	for b2 := b1; b2 < nb; b2++ {
		bd := &g.bands[b2]
		ang := g.maxAng[b1*nb+b2]
		jLo := int(math.Floor((th0-ang)/bd.width)) - 1
		jHi := int(math.Floor((th1+ang)/bd.width)) + 1
		if jHi-jLo+1 >= bd.cells {
			start := bd.cellStart
			if b2 == b1 {
				start = c + 1
			}
			for idx := start; idx < bd.cellStart+bd.cells; idx++ {
				out = append(out, idx)
			}
			continue
		}
		for j := jLo; j <= jHi; j++ {
			jj := ((j % bd.cells) + bd.cells) % bd.cells
			if idx := bd.cellStart + jj; idx > c {
				out = append(out, idx)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Dependencies returns the foreign cells chunk c regenerates: forward
// partners of its owned cells that fall outside its own cell run.
func (g *RHG) Dependencies(c int) []int64 {
	lo, hi := g.runs[c][0], g.runs[c][1]
	seen := map[int]bool{}
	for cell := lo; cell < hi; cell++ {
		for _, nb := range g.forwardPartners(cell) {
			if nb >= hi {
				seen[nb] = true
			}
		}
	}
	out := make([]int64, 0, len(seen))
	for nb := range seen {
		out = append(out, int64(nb))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// samplePoints regenerates cell c's points — the Sample phase's pure
// function of (seed, cell): occupancy from the splitting tree, then per
// point one uniform for the angle within the cell's window and one
// inverse-CDF draw for the radius within the band. Points are stored
// pre-transformed as (cosθ, sinθ, cosh r, sinh r) so the pairwise
// predicate needs no trigonometry. memo caches splitting-tree nodes
// across a chunk's many descents (nil disables caching).
func (g *RHG) samplePoints(cell int, memo splitMemo) []float64 {
	cnt := g.tree.countMemo(cell, memo)
	if cnt == 0 {
		return nil
	}
	b := g.cellBand(cell)
	bd := &g.bands[b]
	th0 := float64(cell-bd.cellStart) * bd.width
	invAlpha := 1 / g.alpha
	s := rng.NewStream2(g.seed, nsRHGCell, uint64(cell))
	coords := make([]float64, cnt*4)
	for i := int64(0); i < cnt; i++ {
		theta := th0 + s.Float64()*bd.width
		r := s.HyperbolicRadius(invAlpha, bd.coshALo, bd.spanA)
		sinT, cosT := math.Sincos(theta)
		coords[i*4] = cosT
		coords[i*4+1] = sinT
		coords[i*4+2] = math.Cosh(r)
		coords[i*4+3] = math.Sinh(r)
	}
	return coords
}

// within reports whether two pre-transformed points lie at hyperbolic
// distance <= R: cosh d = cosh r1·cosh r2 − sinh r1·sinh r2·cos Δθ,
// with cos Δθ expanded through the stored (cosθ, sinθ).
func (g *RHG) within(p, q []float64) bool {
	return p[2]*q[2]-p[3]*q[3]*(p[0]*q[0]+p[1]*q[1]) <= g.coshR
}

// GenerateChunk streams chunk c: for each owned cell in index order,
// its points are compared against the cell's own later points and
// every forward partner cell's points (regenerated through the cell
// cache), emitting (u, v), u < v, for each pair within hyperbolic
// distance R. Partner segments are visited in ascending cell order, so
// the stream is canonical by construction.
func (g *RHG) GenerateChunk(c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	lo, hi := g.runs[c][0], g.runs[c][1]
	if lo >= hi || g.n == 0 {
		return
	}
	b := newBatcher(buf, emit)
	// cache maps cell -> regenerated sample. Owned cells are dropped once
	// processed (later cells only look forward); the foreign halo stays
	// until it crosses the resident cap, then is dropped wholesale —
	// regeneration is pure, so eviction never changes a byte.
	cache := map[int]*cellSample{}
	var cachePts int64
	memo := splitMemo{}
	get := func(cell int, start int64) *cellSample {
		if e, ok := cache[cell]; ok {
			return e
		}
		if start < 0 {
			start = g.tree.prefixMemo(cell, memo)
		}
		e := &cellSample{start: start, coords: g.samplePoints(cell, memo)}
		cache[cell] = e
		cachePts += int64(len(e.coords)) / 4
		return e
	}
	start := g.starts[c]
	for cell := lo; cell < hi; cell++ {
		own := get(cell, start)
		nPts := int64(len(own.coords)) / 4
		start += nPts
		if nPts == 0 {
			delete(cache, cell)
			continue
		}
		var nbs []*cellSample
		for _, nb := range g.forwardPartners(cell) {
			e := get(nb, -1)
			if len(e.coords) > 0 {
				nbs = append(nbs, e)
			}
		}
		for i := int64(0); i < nPts; i++ {
			p := own.coords[i*4 : i*4+4]
			u := own.start + i
			for j := i + 1; j < nPts; j++ {
				if g.within(p, own.coords[j*4:j*4+4]) {
					if !b.add(u, own.start+j) {
						return
					}
				}
			}
			for _, nb := range nbs {
				m := int64(len(nb.coords)) / 4
				for j := int64(0); j < m; j++ {
					if g.within(p, nb.coords[j*4:j*4+4]) {
						if !b.add(u, nb.start+j) {
							return
						}
					}
				}
			}
		}
		delete(cache, cell)
		cachePts -= nPts
		if cachePts > maxRHGResidentPoints {
			cache = map[int]*cellSample{}
			cachePts = 0
		}
	}
	b.flush()
}
