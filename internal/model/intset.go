package model

import "kronvalid/internal/rng"

// int64Set is a linear-probing hash set of non-negative int64 keys with
// a capacity fixed at construction — the duplicate filter of the G(n,m)
// samplers, where the generic map's hashing and incremental growth
// dominated the profile. Slots store key+1 so the zero value means
// empty (keys are pair indices, well below 2^63, so the shift cannot
// wrap); sizing to twice the capacity keeps the load factor ≤ 1/2 and
// probe chains short.
type int64Set struct {
	slots []uint64
	mask  uint64
	n     int64
}

// newInt64Set returns a set sized for up to max insertions.
func newInt64Set(max int64) *int64Set {
	size := uint64(4)
	for size < 2*uint64(max) {
		size <<= 1
	}
	return &int64Set{slots: make([]uint64, size), mask: size - 1}
}

// insert adds v (≥ 0) and reports whether it was absent.
func (s *int64Set) insert(v int64) bool {
	k := uint64(v) + 1
	i := rng.Mix64(k) & s.mask
	for {
		switch s.slots[i] {
		case 0:
			s.slots[i] = k
			s.n++
			return true
		case k:
			return false
		}
		i = (i + 1) & s.mask
	}
}

// contains reports whether v is in the set.
func (s *int64Set) contains(v int64) bool {
	k := uint64(v) + 1
	i := rng.Mix64(k) & s.mask
	for {
		switch s.slots[i] {
		case 0:
			return false
		case k:
			return true
		}
		i = (i + 1) & s.mask
	}
}

// len returns the number of keys inserted.
func (s *int64Set) len() int64 { return s.n }
