package model

import (
	"fmt"
	"slices"

	"kronvalid/internal/rng"
	"kronvalid/internal/stream"
)

// Gnm is the sharded G(n, m) model: exactly m distinct unordered pairs,
// uniform among all pair sets of that size up to the splitting
// approximation below, emitted as upper-triangle arcs in canonical
// order.
//
// The edge budget is divided across chunks by recursive binomial
// splitting over the chunk tree: the node covering chunks [lo, hi)
// assigns its left half Binomial(m_node, pairs_left/pairs_node) edges
// from an rng derived purely from (seed, lo, hi), so every worker
// recomputes every chunk's exact count — in O(log chunks) draws — with
// no communication, and the counts sum to m exactly. Within a chunk the
// count is realized as uniformly sampled distinct pair indices.
type Gnm struct {
	noDeps
	n      int64
	m      int64
	seed   uint64
	ps     pairSpace
	rows   [][2]int64
	tree   splitTree
	counts []int64 // per-chunk exact edge counts
}

// maxGnmChunkEdges bounds the per-chunk edge budget (each chunk holds
// its sampled pair indices in memory); budgets past it are construction
// errors ("raise chunks") rather than mid-stream memory exhaustion.
const maxGnmChunkEdges = int64(1) << 27

// NewGnm returns the sharded G(n, m) generator. chunks = 0 means
// DefaultChunks; the chunk count is part of the stream identity.
func NewGnm(n, m int64, seed uint64, chunks int) (*Gnm, error) {
	if n < 0 || n > maxPairVertices {
		return nil, fmt.Errorf("model: gnm vertex count %d out of [0, %d]", n, maxPairVertices)
	}
	ps := newPairSpace(n)
	if m < 0 || m > ps.total {
		return nil, fmt.Errorf("model: gnm edge count %d out of [0, %d]", m, ps.total)
	}
	g := &Gnm{n: n, m: m, seed: seed, ps: ps, rows: ps.chunkRows(chunks)}
	if budget := maxGnmChunkEdges * int64(len(g.rows)); m > budget {
		return nil, fmt.Errorf("model: gnm edge count %d exceeds %d chunks × per-chunk cap %d; raise chunks",
			m, len(g.rows), maxGnmChunkEdges)
	}
	g.tree = splitTree{
		seed:        seed,
		ns:          nsGnmSplit,
		slots:       len(g.rows),
		total:       m,
		weight:      g.pairsInSlots,
		capacitated: true, // a chunk cannot hold more edges than pairs
	}
	// Precompute every chunk's count with one shared memo: each tree
	// node's binomial split is drawn once instead of once per descent
	// that passes it, and concurrent GenerateChunk calls then read the
	// table instead of racing on a memo.
	memo := make(splitMemo, 2*len(g.rows))
	g.counts = make([]int64, len(g.rows))
	for c := range g.counts {
		g.counts[c] = g.tree.countMemo(c, memo)
	}
	return g, nil
}

func buildGnm(p *Params) (Generator, error) {
	n, err := p.Int64("n", -1)
	if err != nil {
		return nil, err
	}
	m, err := p.Int64("m", -1)
	if err != nil {
		return nil, err
	}
	seed, err := p.Seed()
	if err != nil {
		return nil, err
	}
	chunks, err := p.Int("chunks", 0)
	if err != nil {
		return nil, err
	}
	return NewGnm(n, m, seed, chunks)
}

func init() { Register("gnm", buildGnm) }

// Name returns the canonical spec of this generator.
func (g *Gnm) Name() string {
	return fmt.Sprintf("gnm:n=%d,m=%d,seed=%d,chunks=%d", g.n, g.m, g.seed, len(g.rows))
}

// NumVertices returns n.
func (g *Gnm) NumVertices() int64 { return g.n }

// NumArcs returns the exact arc count m.
func (g *Gnm) NumArcs() int64 { return g.m }

// Chunks returns the fixed chunk count.
func (g *Gnm) Chunks() int { return len(g.rows) }

// ChunkRange returns chunk c's source-vertex (row) range.
func (g *Gnm) ChunkRange(c int) (lo, hi int64) {
	r := g.rows[c]
	return r[0], r[1]
}

// ChunkWeight returns chunk c's pair count.
func (g *Gnm) ChunkWeight(c int) int64 {
	r := g.rows[c]
	return g.ps.offset(r[1]) - g.ps.offset(r[0])
}

// pairsInSlots returns the number of pairs covered by chunk slots
// [lo, hi). Chunk row ranges are contiguous, so this is one subtraction.
func (g *Gnm) pairsInSlots(lo, hi int) int64 {
	return g.ps.offset(g.rows[hi-1][1]) - g.ps.offset(g.rows[lo][0])
}

// ChunkArcs returns chunk c's exact edge count from the shared binomial
// splitting tree (the Sample phase of this model), precomputed at
// construction with a shared memo. Every draw comes from a stream
// derived purely from (seed, node), so every caller — and the former
// per-call descent — computes the same value.
func (g *Gnm) ChunkArcs(c int) int64 {
	return g.counts[c]
}

// GenerateChunk streams chunk c: its exact edge count is realized as
// that many distinct uniform pair indices from the chunk's pair range,
// sorted into canonical order. Dense chunks (> half the range) sample
// the complement instead, keeping expected work O(min(m_c, R-m_c)).
func (g *Gnm) GenerateChunk(c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	mC := g.ChunkArcs(c)
	if mC == 0 {
		return
	}
	r := g.rows[c]
	i0, i1 := g.ps.offset(r[0]), g.ps.offset(r[1])
	size := i1 - i0
	b := newBatcher(buf, emit)
	w := g.ps.walkerAt(r[0])
	place := func(t int64) bool {
		u, v := w.step(t)
		return b.add(u, v)
	}
	s := rng.NewStream2(g.seed, nsGnmChunk, uint64(c))
	switch {
	case mC == size:
		for t := i0; t < i1; t++ {
			if !place(t) {
				return
			}
		}
	case 2*mC <= size:
		idxs := sampleDistinct(s, i0, size, mC)
		for _, t := range idxs {
			if !place(t) {
				return
			}
		}
	default:
		excluded := newInt64Set(size - mC)
		for excluded.len() < size-mC {
			excluded.insert(i0 + s.Int64n(size))
		}
		for t := i0; t < i1; t++ {
			if excluded.contains(t) {
				continue
			}
			if !place(t) {
				return
			}
		}
	}
	b.flush()
}

// sampleDistinct draws k distinct values from [base, base+size) by
// rejection and returns them sorted. Callers guarantee 2k <= size, so
// the expected number of draws is below 2k. The duplicate test only
// asks "seen before?" and sorting touches no draw, so the fixed-size
// set and the radix sort change no draw and no output.
func sampleDistinct(s *rng.Xoshiro256, base, size, k int64) []int64 {
	seen := newInt64Set(k)
	out := make([]int64, 0, k)
	for int64(len(out)) < k {
		v := base + s.Int64n(size)
		if !seen.insert(v) {
			continue
		}
		out = append(out, v)
	}
	radixSortInt64(out, base+size-1)
	return out
}

// radixSortInt64 sorts non-negative int64s ascending — the same result
// as slices.Sort, in O(len·passes) instead of O(len·log len) compares,
// which dominates GenerateChunk's profile at the acceptance workload.
// max is an upper bound on the values; it fixes the pass count, so all
// high digits known to be zero are skipped. Chunk budgets are capped
// (maxGnmChunkEdges) far below the int32 counting range.
func radixSortInt64(a []int64, max int64) {
	if len(a) < 128 {
		slices.Sort(a) // comparison sort wins below digit-pass overhead
		return
	}
	const digitBits = 11
	const buckets = 1 << digitBits
	src, dst := a, make([]int64, len(a))
	var count [buckets]int32
	for shift := uint(0); max>>shift != 0; shift += digitBits {
		clear(count[:])
		for _, v := range src {
			count[uint64(v)>>shift&(buckets-1)]++
		}
		var sum int32
		for i := range count {
			sum, count[i] = sum+count[i], sum
		}
		for _, v := range src {
			d := uint64(v) >> shift & (buckets - 1)
			dst[count[d]] = v
			count[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}
