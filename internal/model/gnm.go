package model

import (
	"fmt"
	"sort"

	"kronvalid/internal/rng"
	"kronvalid/internal/stream"
)

// Gnm is the sharded G(n, m) model: exactly m distinct unordered pairs,
// uniform among all pair sets of that size up to the splitting
// approximation below, emitted as upper-triangle arcs in canonical
// order.
//
// The edge budget is divided across chunks by recursive binomial
// splitting over the chunk tree: the node covering chunks [lo, hi)
// assigns its left half Binomial(m_node, pairs_left/pairs_node) edges
// from an rng derived purely from (seed, lo, hi), so every worker
// recomputes every chunk's exact count — in O(log chunks) draws — with
// no communication, and the counts sum to m exactly. Within a chunk the
// count is realized as uniformly sampled distinct pair indices.
type Gnm struct {
	noDeps
	n    int64
	m    int64
	seed uint64
	ps   pairSpace
	rows [][2]int64
	tree splitTree
}

// maxGnmChunkEdges bounds the per-chunk edge budget (each chunk holds
// its sampled pair indices in memory); budgets past it are construction
// errors ("raise chunks") rather than mid-stream memory exhaustion.
const maxGnmChunkEdges = int64(1) << 27

// NewGnm returns the sharded G(n, m) generator. chunks = 0 means
// DefaultChunks; the chunk count is part of the stream identity.
func NewGnm(n, m int64, seed uint64, chunks int) (*Gnm, error) {
	if n < 0 || n > maxPairVertices {
		return nil, fmt.Errorf("model: gnm vertex count %d out of [0, %d]", n, maxPairVertices)
	}
	ps := newPairSpace(n)
	if m < 0 || m > ps.total {
		return nil, fmt.Errorf("model: gnm edge count %d out of [0, %d]", m, ps.total)
	}
	g := &Gnm{n: n, m: m, seed: seed, ps: ps, rows: ps.chunkRows(chunks)}
	if budget := maxGnmChunkEdges * int64(len(g.rows)); m > budget {
		return nil, fmt.Errorf("model: gnm edge count %d exceeds %d chunks × per-chunk cap %d; raise chunks",
			m, len(g.rows), maxGnmChunkEdges)
	}
	g.tree = splitTree{
		seed:        seed,
		ns:          nsGnmSplit,
		slots:       len(g.rows),
		total:       m,
		weight:      g.pairsInSlots,
		capacitated: true, // a chunk cannot hold more edges than pairs
	}
	return g, nil
}

func buildGnm(p *Params) (Generator, error) {
	n, err := p.Int64("n", -1)
	if err != nil {
		return nil, err
	}
	m, err := p.Int64("m", -1)
	if err != nil {
		return nil, err
	}
	seed, err := p.Seed()
	if err != nil {
		return nil, err
	}
	chunks, err := p.Int("chunks", 0)
	if err != nil {
		return nil, err
	}
	return NewGnm(n, m, seed, chunks)
}

func init() { Register("gnm", buildGnm) }

// Name returns the canonical spec of this generator.
func (g *Gnm) Name() string {
	return fmt.Sprintf("gnm:n=%d,m=%d,seed=%d,chunks=%d", g.n, g.m, g.seed, len(g.rows))
}

// NumVertices returns n.
func (g *Gnm) NumVertices() int64 { return g.n }

// NumArcs returns the exact arc count m.
func (g *Gnm) NumArcs() int64 { return g.m }

// Chunks returns the fixed chunk count.
func (g *Gnm) Chunks() int { return len(g.rows) }

// ChunkRange returns chunk c's source-vertex (row) range.
func (g *Gnm) ChunkRange(c int) (lo, hi int64) {
	r := g.rows[c]
	return r[0], r[1]
}

// ChunkWeight returns chunk c's pair count.
func (g *Gnm) ChunkWeight(c int) int64 {
	r := g.rows[c]
	return g.ps.offset(r[1]) - g.ps.offset(r[0])
}

// pairsInSlots returns the number of pairs covered by chunk slots
// [lo, hi). Chunk row ranges are contiguous, so this is one subtraction.
func (g *Gnm) pairsInSlots(lo, hi int) int64 {
	return g.ps.offset(g.rows[hi-1][1]) - g.ps.offset(g.rows[lo][0])
}

// ChunkArcs returns chunk c's exact edge count via the shared binomial
// splitting tree (the Sample phase of this model): O(log chunks) draws,
// each from a stream derived purely from (seed, node), so every caller
// computes the same value.
func (g *Gnm) ChunkArcs(c int) int64 {
	return g.tree.count(c)
}

// GenerateChunk streams chunk c: its exact edge count is realized as
// that many distinct uniform pair indices from the chunk's pair range,
// sorted into canonical order. Dense chunks (> half the range) sample
// the complement instead, keeping expected work O(min(m_c, R-m_c)).
func (g *Gnm) GenerateChunk(c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	mC := g.ChunkArcs(c)
	if mC == 0 {
		return
	}
	r := g.rows[c]
	i0, i1 := g.ps.offset(r[0]), g.ps.offset(r[1])
	size := i1 - i0
	b := newBatcher(buf, emit)
	w := g.ps.walkerAt(r[0])
	place := func(t int64) bool {
		u, v := w.step(t)
		return b.add(u, v)
	}
	s := rng.NewStream2(g.seed, nsGnmChunk, uint64(c))
	switch {
	case mC == size:
		for t := i0; t < i1; t++ {
			if !place(t) {
				return
			}
		}
	case 2*mC <= size:
		idxs := sampleDistinct(s, i0, size, mC)
		for _, t := range idxs {
			if !place(t) {
				return
			}
		}
	default:
		excluded := make(map[int64]struct{}, size-mC)
		for int64(len(excluded)) < size-mC {
			excluded[i0+s.Int64n(size)] = struct{}{}
		}
		for t := i0; t < i1; t++ {
			if _, skip := excluded[t]; skip {
				continue
			}
			if !place(t) {
				return
			}
		}
	}
	b.flush()
}

// sampleDistinct draws k distinct values from [base, base+size) by
// rejection and returns them sorted. Callers guarantee 2k <= size, so
// the expected number of draws is below 2k.
func sampleDistinct(s *rng.Xoshiro256, base, size, k int64) []int64 {
	seen := make(map[int64]struct{}, k)
	out := make([]int64, 0, k)
	for int64(len(out)) < k {
		v := base + s.Int64n(size)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
