package model

import (
	"fmt"
	"slices"

	"kronvalid/internal/par"
	"kronvalid/internal/rng"
	"kronvalid/internal/stream"
)

// BarabasiAlbert is the communication-free preferential-attachment
// generator: the Batagelj–Brandes process rewritten so any worker can
// resolve any edge with no shared state — the paper's retracing
// algorithm.
//
// The sequential process writes an endpoint array E of length 2·(total
// edges): edge e occupies slots 2e (its source) and 2e+1 (its target),
// and the target is copied from a uniformly random earlier slot
// E[r], r ∈ [0, 2e+1) — choosing uniformly among all previously written
// endpoints is choosing a vertex with probability proportional to its
// current degree. The first s0-1 edges are a seed star (edge j connects
// the hub 0 with leaf j+1); every later vertex v ≥ s0 issues d edges.
//
// Sample — the draw at odd slot p is a pure per-edge hash stream:
// r(p) = Uniform[0, p) from (seed, nsBAPos, p). The "cells" of the
// Sample phase are the edge positions themselves.
//
// Enumerate — a chunk owns a contiguous vertex range and resolves each
// owned edge's target by *retracing*: start at the edge's own odd slot
// and chase r(p) until it lands on a settled slot — an even slot (whose
// vertex is known in closed form) or a seed-graph slot. The chain's
// expected length is constant (each hop is uniform over a strictly
// smaller prefix, and even slots make up half of it), so resolution is
// O(1) expected per edge with zero communication; Dependencies is nil
// because foreign reads are per-position hash evaluations, not
// whole-cell regenerations. Self loops are dropped and per-vertex
// duplicate targets merged, arcs (v, w), w < v, sorted per source, so
// the chunk stream is canonical.
//
// The chunk grouping touches no random draw — every draw is keyed by an
// edge position — so the stream is byte-identical for every chunk AND
// worker count.
type BarabasiAlbert struct {
	noDeps
	n      int64
	d      int64
	s0     int64 // seed-star vertices; s0-1 seed edges
	seed   uint64
	ranges [][2]int64 // vertex range per chunk; chunk 0 starts at 0
}

// maxBAVertices bounds n so slot arithmetic (2 · total edges) stays
// well inside int64.
const maxBAVertices = int64(1) << 40

// maxBADegree bounds the per-vertex attachment count.
const maxBADegree = int64(1) << 20

// maxBAChunkEdges bounds the number of edges a chunk owns (its arcs are
// buffered per source vertex only, but weight must stay shardable);
// denser chunks are construction errors ("raise chunks").
const maxBAChunkEdges = int64(1) << 28

// NewBarabasiAlbert returns the communication-free BA generator:
// vertices [0, s0) form a seed star (hub 0), every vertex in [s0, n)
// attaches d edges by preferential attachment. s0 = 0 means the default
// seed graph d+1 (matching the legacy constructor's star); chunks = 0
// means DefaultChunks. Like rgg, the chunk count is NOT part of the
// stream identity.
func NewBarabasiAlbert(n, d, s0 int64, seed uint64, chunks int) (*BarabasiAlbert, error) {
	if d < 1 || d > maxBADegree {
		return nil, fmt.Errorf("model: ba attachment degree %d out of [1, %d]", d, maxBADegree)
	}
	if s0 == 0 {
		s0 = d + 1
	}
	if s0 < 2 {
		return nil, fmt.Errorf("model: ba seed graph needs s0 >= 2 vertices (have %d)", s0)
	}
	if n < s0 || n > maxBAVertices {
		return nil, fmt.Errorf("model: ba vertex count %d out of [s0=%d, %d]", n, s0, maxBAVertices)
	}
	g := &BarabasiAlbert{n: n, d: d, s0: s0, seed: seed}
	attach := n - s0
	k := int64(normalizeChunks(chunks, maxInt64(attach, 1)))
	if attach > 0 && (attach/k+1)*d > maxBAChunkEdges {
		return nil, fmt.Errorf("model: ba assigns ~%d edges to each of %d chunks (per-chunk cap %d); raise chunks",
			(attach/k+1)*d, k, maxBAChunkEdges)
	}
	runs := par.Chunks(attach, k)
	if len(runs) == 0 {
		runs = [][2]int64{{0, 0}}
	}
	for i, run := range runs {
		lo, hi := s0+run[0], s0+run[1]
		if i == 0 {
			lo = 0 // chunk 0 also owns the seed star's sources
		}
		g.ranges = append(g.ranges, [2]int64{lo, hi})
	}
	g.ranges[len(g.ranges)-1][1] = n
	return g, nil
}

func buildBA(p *Params) (Generator, error) {
	n, err := p.Int64("n", -1)
	if err != nil {
		return nil, err
	}
	// The attachment degree is "d" (the paper's notation); "m" (the
	// factor-spec grammar's legacy key for the same quantity) is an
	// accepted alias, so the two ba surfaces parse each other's specs.
	_, hasD := p.String("d")
	_, hasM := p.String("m")
	if !hasD && !hasM {
		return nil, fmt.Errorf("missing required parameter \"d\" (attachment degree; alias \"m\")")
	}
	d, err := p.Int64("d", 0)
	if err != nil {
		return nil, err
	}
	m, err := p.Int64("m", 0)
	if err != nil {
		return nil, err
	}
	switch {
	case !hasD:
		d = m
	case hasM && m != d:
		return nil, fmt.Errorf("parameters \"d\" and \"m\" are aliases and disagree (%d vs %d)", d, m)
	}
	s0, err := p.Int64("s0", 0)
	if err != nil {
		return nil, err
	}
	seed, err := p.Seed()
	if err != nil {
		return nil, err
	}
	chunks, err := p.Int("chunks", 0)
	if err != nil {
		return nil, err
	}
	return NewBarabasiAlbert(n, d, s0, seed, chunks)
}

func init() { Register("ba", buildBA) }

// Name returns the canonical spec of this generator.
func (g *BarabasiAlbert) Name() string {
	return fmt.Sprintf("ba:n=%d,d=%d,s0=%d,seed=%d,chunks=%d", g.n, g.d, g.s0, g.seed, len(g.ranges))
}

// NumVertices returns n.
func (g *BarabasiAlbert) NumVertices() int64 { return g.n }

// NumArcs returns -1: dropped self loops and merged duplicates make the
// realized count random (it is at most s0-1 + (n-s0)·d).
func (g *BarabasiAlbert) NumArcs() int64 { return -1 }

// Chunks returns the fixed chunk count.
func (g *BarabasiAlbert) Chunks() int { return len(g.ranges) }

// ChunkRange returns chunk c's source-vertex range.
func (g *BarabasiAlbert) ChunkRange(c int) (lo, hi int64) {
	r := g.ranges[c]
	return r[0], r[1]
}

// ChunkWeight returns chunk c's owned edge count (each resolved in O(1)
// expected retracing steps), plus one.
func (g *BarabasiAlbert) ChunkWeight(c int) int64 {
	r := g.ranges[c]
	lo := maxInt64(r[0], g.s0)
	w := int64(1)
	if r[1] > lo {
		w += (r[1] - lo) * g.d
	}
	if r[0] == 0 {
		w += g.s0 - 1
	}
	return w
}

// ChunkArcs returns -1: dedup makes per-chunk counts random.
func (g *BarabasiAlbert) ChunkArcs(c int) int64 { return -1 }

// seedEdges returns the number of seed-star edges.
func (g *BarabasiAlbert) seedEdges() int64 { return g.s0 - 1 }

// posDraw returns the per-position hash draw of odd slot p: a uniform
// index in [0, p), a pure function of (seed, p) — the Sample phase.
func (g *BarabasiAlbert) posDraw(p int64) int64 {
	return rng.NewStream2(g.seed, nsBAPos, uint64(p)).Int64n(p)
}

// baMemoWindow is the settled-slot memo's coverage: odd endpoint slots
// below the window are memoized in a direct-indexed array (4 MiB per
// worker at the cap). Retracing draws are uniform over strictly smaller
// prefixes, so chain visits concentrate on the low end of the slot
// space — exactly the region the fixed window covers — while high slots
// are rarely revisited and stay cheap to re-chase.
const baMemoWindow = int64(1) << 20

// maxBAChainRecord bounds how many intermediate slots of one chain are
// backfilled into the memo; chains are O(1) expected, so the bound only
// exists to keep the stack record fixed-size.
const maxBAChainRecord = 64

// baState is the per-worker scratch of the retracing Enumerate phase:
// a value generator reseeded in place per odd slot (replacing one heap
// allocation per retracing step), the per-vertex target buffer, and the
// settled-slot memo — memo[k] resolves odd slot 2k+1, -1 unset — so
// chains crossing slots already resolved by earlier chunks of the same
// worker terminate immediately. Resolution is pure, so memo hits return
// exactly the value a fresh chase would: state can never move a byte.
type baState struct {
	s        rng.Xoshiro256
	targets  []int64
	memo     []int64
	memoUsed int64
}

// ResidentPoints returns the number of settled slots held by the memo —
// the quantity the window bounds.
func (st *baState) ResidentPoints() int64 { return st.memoUsed }

// NewWorkerState returns fresh retracing scratch for one worker.
func (g *BarabasiAlbert) NewWorkerState() WorkerState {
	win := baMemoWindow
	if tot := 2 * (g.seedEdges() + (g.n-g.s0)*g.d); tot < win {
		win = tot // never allocate past the slot space
	}
	memo := make([]int64, win/2)
	for i := range memo {
		memo[i] = -1
	}
	return &baState{targets: make([]int64, 0, g.d), memo: memo}
}

// resolveWith retraces the dependency chain of endpoint slot p until it
// lands on a settled slot and returns that slot's vertex: seed-star
// slots and even slots are known in closed form; odd slots chase their
// per-position hash draw, shortcutting through the worker's memo.
// Matches the sequential process exactly
// (TestBARetracingMatchesSequentialProcess).
func (g *BarabasiAlbert) resolveWith(st *baState, p int64) int64 {
	se := g.seedEdges()
	var chain [maxBAChainRecord]int64
	hops := 0
	var v int64
	for {
		if p < 2*se {
			// Seed star: edge j = p/2 connects hub 0 and leaf j+1.
			if p%2 == 0 {
				v = 0
			} else {
				v = p/2 + 1
			}
			break
		}
		if p%2 == 0 {
			// Source slot of edge e: the issuing vertex.
			v = g.s0 + (p/2-se)/g.d
			break
		}
		// p odd: memo index p>>1 = (p-1)/2 is unique among odd slots.
		if k := p >> 1; k < int64(len(st.memo)) {
			if w := st.memo[k]; w >= 0 {
				v = w
				break
			}
			if hops < len(chain) {
				chain[hops] = k
				hops++
			}
		}
		st.s.ReseedStream2(g.seed, nsBAPos, uint64(p))
		p = st.s.Int64n(p)
	}
	// Backfill: every in-window odd slot visited resolved to v too.
	for i := 0; i < hops; i++ {
		if st.memo[chain[i]] < 0 {
			st.memoUsed++
		}
		st.memo[chain[i]] = v
	}
	return v
}

// GenerateChunk streams chunk c with one-shot worker state; see
// GenerateChunkWith.
func (g *BarabasiAlbert) GenerateChunk(c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	g.GenerateChunkWith(g.NewWorkerState(), c, buf, emit)
}

// GenerateChunkWith streams chunk c: the seed star (if owned), then
// each owned vertex's d retraced attachments — self loops dropped,
// per-vertex duplicates merged, targets sorted — as canonical (v, w)
// arcs, w < v (every retraced chain settles on an earlier vertex).
func (g *BarabasiAlbert) GenerateChunkWith(ws WorkerState, c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	st := ws.(*baState)
	r := g.ranges[c]
	b := newBatcher(buf, emit)
	if r[0] == 0 {
		for j := int64(1); j < g.s0; j++ {
			if !b.add(0, j) {
				return
			}
		}
	}
	se := g.seedEdges()
	for v := maxInt64(r[0], g.s0); v < r[1]; v++ {
		e0 := se + (v-g.s0)*g.d
		targets := st.targets[:0]
		for i := int64(0); i < g.d; i++ {
			w := g.resolveWith(st, 2*(e0+i)+1)
			if w != v {
				targets = append(targets, w)
			}
		}
		slices.Sort(targets)
		var prev int64 = -1
		for _, w := range targets {
			if w == prev {
				continue
			}
			prev = w
			if !b.add(v, w) {
				return
			}
		}
	}
	b.flush()
}
