package model

import (
	"fmt"
	"math"

	"kronvalid/internal/par"
	"kronvalid/internal/rng"
	"kronvalid/internal/stream"
)

// Grid is the sharded lattice model: vertices are the points of an
// X×Y(×Z) grid (row-major ids, x fastest), and each lattice edge —
// axis-aligned nearest neighbors, plus the per-axis wraparound edges
// when wrap is set and the axis has length >= 3 — is present
// independently with probability p. Every edge is emitted once as the
// upper-triangle arc (u, v), u < v, in canonical order.
//
// The candidate edges of a vertex u, listed by ascending target id,
// are: x-successor u+1, x-wraparound u+(X−1) (only from x = 0),
// y-successor u+X, y-wraparound u+X·(Y−1) (only from y = 0), and the
// z analogues — so the per-u segments, and therefore the chunk
// streams, are canonical by construction. An axis of length 2 gets no
// wraparound edge (it would duplicate the successor edge) and an axis
// of length 1 gets no edges at all, so the candidate set is always
// duplicate-free.
//
// Sample/Enumerate shape: the model is dependence-free — both
// endpoints of every candidate are determined by the source vertex
// alone — so cells coincide with chunks (contiguous vertex-id ranges)
// and chunk c draws from the single stream (seed, nsGridChunk, c),
// walking its flattened candidate index space with geometric skips:
// O(expected edges) draws, like er. The chunk count is therefore part
// of the stream identity, as for the other per-chunk-stream models.
// At p = 1 the skip walk degenerates to emitting every candidate with
// zero draws, and all counts are exact in closed form.
type Grid struct {
	noDeps
	dim     int
	x, y, z int64
	p       float64
	wrap    bool
	seed    uint64
	n       int64
	runs    [][2]int64
}

// maxGridVertices bounds X·Y·Z so id and candidate-index arithmetic
// stays well inside int64 (at most 3 candidates per vertex).
const maxGridVertices = int64(1) << 40

// NewGrid returns the sharded lattice generator for dim ∈ {2, 3}; for
// dim 2 the z extent is forced to 1. chunks = 0 means DefaultChunks.
func NewGrid(x, y, z int64, p float64, wrap bool, dim int, seed uint64, chunks int) (*Grid, error) {
	if dim != 2 && dim != 3 {
		return nil, fmt.Errorf("model: grid dimension %d is not 2 or 3", dim)
	}
	if dim == 2 {
		z = 1
	}
	if x < 1 || y < 1 || z < 1 {
		return nil, fmt.Errorf("model: grid extents %d×%d×%d must all be >= 1", x, y, z)
	}
	if x > maxGridVertices || y > maxGridVertices/x || z > maxGridVertices/(x*y) {
		return nil, fmt.Errorf("model: grid %d×%d×%d exceeds %d vertices", x, y, z, maxGridVertices)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return nil, fmt.Errorf("model: grid edge probability %v out of [0, 1]", p)
	}
	g := &Grid{dim: dim, x: x, y: y, z: z, p: p, wrap: wrap, seed: seed, n: x * y * z}
	k := normalizeChunks(chunks, g.n)
	g.runs = par.Chunks(g.n, int64(k))
	if len(g.runs) == 0 {
		g.runs = [][2]int64{{0, g.n}}
	}
	return g, nil
}

func buildGrid(p *Params, dim int) (Generator, error) {
	x, err := p.Int64("x", -1)
	if err != nil {
		return nil, err
	}
	y, err := p.Int64("y", -1)
	if err != nil {
		return nil, err
	}
	z := int64(1)
	if dim == 3 {
		if z, err = p.Int64("z", -1); err != nil {
			return nil, err
		}
	}
	prob, err := p.Float("p", 1)
	if err != nil {
		return nil, err
	}
	wrap, err := p.Bool("wrap", false)
	if err != nil {
		return nil, err
	}
	seed, err := p.Seed()
	if err != nil {
		return nil, err
	}
	chunks, err := p.Int("chunks", 0)
	if err != nil {
		return nil, err
	}
	return NewGrid(x, y, z, prob, wrap, dim, seed, chunks)
}

func init() {
	Register("grid2d", func(p *Params) (Generator, error) { return buildGrid(p, 2) })
	Register("grid3d", func(p *Params) (Generator, error) { return buildGrid(p, 3) })
}

// Name returns the canonical spec of this generator.
func (g *Grid) Name() string {
	if g.dim == 2 {
		return fmt.Sprintf("grid2d:x=%d,y=%d,p=%s,wrap=%t,seed=%d,chunks=%d",
			g.x, g.y, formatFloat(g.p), g.wrap, g.seed, len(g.runs))
	}
	return fmt.Sprintf("grid3d:x=%d,y=%d,z=%d,p=%s,wrap=%t,seed=%d,chunks=%d",
		g.x, g.y, g.z, formatFloat(g.p), g.wrap, g.seed, len(g.runs))
}

// NumVertices returns X·Y·Z.
func (g *Grid) NumVertices() int64 { return g.n }

// NumArcs returns the exact lattice edge count when p = 1, and -1
// otherwise.
func (g *Grid) NumArcs() int64 {
	if g.p < 1 {
		return -1
	}
	return g.candPrefix(g.n)
}

// Chunks returns the fixed chunk count.
func (g *Grid) Chunks() int { return len(g.runs) }

// ChunkRange returns chunk c's vertex-id range.
func (g *Grid) ChunkRange(c int) (lo, hi int64) {
	return g.runs[c][0], g.runs[c][1]
}

// ChunkWeight returns chunk c's candidate count — the exact length of
// its skip walk's index space — plus a constant floor.
func (g *Grid) ChunkWeight(c int) int64 {
	return 1 + g.candPrefix(g.runs[c][1]) - g.candPrefix(g.runs[c][0])
}

// ChunkArcs returns chunk c's exact arc count when p = 1, and -1
// otherwise.
func (g *Grid) ChunkArcs(c int) int64 {
	if g.p < 1 {
		return -1
	}
	return g.candPrefix(g.runs[c][1]) - g.candPrefix(g.runs[c][0])
}

// axisEdges returns the summed candidate indicator over a full axis of
// the given length: length−1 successor edges, plus the wraparound edge
// when the axis is long enough for it to be a new edge.
func (g *Grid) axisEdges(length int64) int64 {
	if g.wrap && length >= 3 {
		return length
	}
	return length - 1
}

// axisInd returns the candidate indicator of one coordinate value v on
// an axis of the given length: 1 for the successor edge (v < length−1),
// plus 1 for the wraparound edge (v = 0, wrapping, length >= 3).
func (g *Grid) axisInd(v, length int64) int64 {
	var c int64
	if v < length-1 {
		c++
	}
	if g.wrap && length >= 3 && v == 0 {
		c++
	}
	return c
}

// axisIndPrefix returns the summed candidate indicator over coordinate
// values [0, r), 0 <= r <= length.
func (g *Grid) axisIndPrefix(r, length int64) int64 {
	c := r
	if c > length-1 {
		c = length - 1
	}
	if g.wrap && length >= 3 && r >= 1 {
		c++
	}
	return c
}

// candPrefix returns the number of candidate edges whose source id is
// < t, in closed form: each axis contributes independently, summed over
// the id prefix by periodicity — the x coordinate has period X within
// each row, y has period X·Y within each plane, z spans the id space
// once.
func (g *Grid) candPrefix(t int64) int64 {
	cnt := (t/g.x)*g.axisEdges(g.x) + g.axisIndPrefix(t%g.x, g.x)
	xy := g.x * g.y
	rem := t % xy
	cnt += (t/xy)*g.x*g.axisEdges(g.y) +
		g.x*g.axisIndPrefix(rem/g.x, g.y) + (rem%g.x)*g.axisInd(rem/g.x, g.y)
	if g.dim == 3 {
		cnt += xy*g.axisIndPrefix(t/xy, g.z) + (t%xy)*g.axisInd(t/xy, g.z)
	}
	return cnt
}

// candidates appends vertex u's candidate targets to dst in ascending
// order and returns the extended slice (see the type comment for the
// order proof: X−1 >= 2 whenever the x-wraparound exists, so u+1 <
// u+(X−1) < u+X, and likewise per axis with strictly growing strides).
func (g *Grid) candidates(u int64, dst []int64) []int64 {
	x := u % g.x
	y := (u / g.x) % g.y
	if x < g.x-1 {
		dst = append(dst, u+1)
	}
	if g.wrap && g.x >= 3 && x == 0 {
		dst = append(dst, u+g.x-1)
	}
	if y < g.y-1 {
		dst = append(dst, u+g.x)
	}
	if g.wrap && g.y >= 3 && y == 0 {
		dst = append(dst, u+g.x*(g.y-1))
	}
	if g.dim == 3 {
		xy := g.x * g.y
		z := u / xy
		if z < g.z-1 {
			dst = append(dst, u+xy)
		}
		if g.wrap && g.z >= 3 && z == 0 {
			dst = append(dst, u+xy*(g.z-1))
		}
	}
	return dst
}

// GenerateChunk streams chunk c by walking its flattened candidate
// index space with geometric skips (er's sparse-sampling loop): the
// candidates of the chunk's vertices, concatenated in vertex order,
// form one index space of known closed-form size, and each kept index
// is mapped back to its (u, candidate) pair. p = 1 emits every
// candidate with zero draws.
func (g *Grid) GenerateChunk(c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	lo, hi := g.runs[c][0], g.runs[c][1]
	if lo >= hi || g.p <= 0 {
		return
	}
	b := newBatcher(buf, emit)
	var cand [6]int64
	if g.p >= 1 {
		for u := lo; u < hi; u++ {
			for _, v := range g.candidates(u, cand[:0]) {
				if !b.add(u, v) {
					return
				}
			}
		}
		b.flush()
		return
	}
	total := g.candPrefix(hi) - g.candPrefix(lo)
	if total == 0 {
		return
	}
	s := rng.NewStream2(g.seed, nsGridChunk, uint64(c))
	logq := math.Log1p(-g.p)
	// t is the current kept candidate index in [0, total); advance moves
	// it by one geometric skip, reporting false when the space is
	// exhausted (the comparison form also guards int64 overflow).
	t := int64(-1)
	advance := func() bool {
		skip := s.GeometricLog(logq)
		if skip >= total-t-1 {
			return false
		}
		t += 1 + skip
		return true
	}
	if !advance() {
		return
	}
	base := g.candPrefix(lo)
	u := lo
	for {
		// Map the kept index t back to its source vertex: the largest u
		// with candPrefix(u) − base <= t (skipping any candidate-free
		// vertices), found by binary search from the current cursor — the
		// walk never revisits a vertex, so the work is O(edges·log n),
		// independent of how sparse p makes the chunk.
		l, h := u, hi-1
		for l < h {
			mid := l + (h-l+1)/2
			if g.candPrefix(mid)-base <= t {
				l = mid
			} else {
				h = mid - 1
			}
		}
		u = l
		uBase := g.candPrefix(u) - base
		cs := g.candidates(u, cand[:0])
		for t-uBase < int64(len(cs)) {
			if !b.add(u, cs[t-uBase]) {
				return
			}
			if !advance() {
				b.flush()
				return
			}
		}
	}
}
