package model

import (
	"math"
	"testing"

	"kronvalid/internal/stream"
)

// bruteForceGridEdges builds the full lattice edge set from the
// neighbor definition alone — modular successors per axis, dedup via a
// set — independent of the generator's candidate enumeration, and
// returns it in canonical order.
func bruteForceGridEdges(x, y, z int64, wrap bool) []stream.Arc {
	id := func(cx, cy, cz int64) int64 { return cx + x*(cy+y*cz) }
	seen := map[stream.Arc]bool{}
	for cz := int64(0); cz < z; cz++ {
		for cy := int64(0); cy < y; cy++ {
			for cx := int64(0); cx < x; cx++ {
				u := id(cx, cy, cz)
				add := func(nx, ny, nz int64) {
					v := id(nx, ny, nz)
					if u == v {
						return
					}
					a := stream.Arc{U: u, V: v}
					if u > v {
						a = stream.Arc{U: v, V: u}
					}
					seen[a] = true
				}
				if cx+1 < x {
					add(cx+1, cy, cz)
				} else if wrap && x > 1 {
					add(0, cy, cz)
				}
				if cy+1 < y {
					add(cx, cy+1, cz)
				} else if wrap && y > 1 {
					add(cx, 0, cz)
				}
				if cz+1 < z {
					add(cx, cy, cz+1)
				} else if wrap && z > 1 {
					add(cx, cy, 0)
				}
			}
		}
	}
	out := make([]stream.Arc, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sortArcs(out)
	return out
}

func sortArcs(arcs []stream.Arc) {
	for i := 1; i < len(arcs); i++ {
		for j := i; j > 0 && (arcs[j].U < arcs[j-1].U ||
			(arcs[j].U == arcs[j-1].U && arcs[j].V < arcs[j-1].V)); j-- {
			arcs[j], arcs[j-1] = arcs[j-1], arcs[j]
		}
	}
}

// TestGridFullLattice is the p=1 oracle: the generator must emit
// exactly the lattice edge set of the independent modular-neighbor
// construction, in canonical order, across open and wrapped axes of
// every degenerate length (1, 2, 3) where wraparound semantics bite.
func TestGridFullLattice(t *testing.T) {
	for _, tc := range []struct {
		dim     int
		x, y, z int64
		wrap    bool
	}{
		{2, 7, 5, 1, false},
		{2, 7, 5, 1, true},
		{2, 2, 9, 1, true}, // length-2 axis: wrap must not duplicate
		{2, 1, 9, 1, true}, // length-1 axis: no edges along it
		{2, 3, 3, 1, true}, // smallest true torus
		{3, 4, 3, 5, false},
		{3, 4, 3, 5, true},
		{3, 2, 2, 2, true}, // all axes too short to wrap
		{3, 1, 1, 6, true}, // degenerate to a cycle
	} {
		g, err := NewGrid(tc.x, tc.y, tc.z, 1, tc.wrap, tc.dim, 1, 5)
		if err != nil {
			t.Fatalf("NewGrid(%v): %v", tc, err)
		}
		z := tc.z
		if tc.dim == 2 {
			z = 1
		}
		want := bruteForceGridEdges(tc.x, tc.y, z, tc.wrap)
		got := Collect(g)
		if !sameArcs(want, got) {
			t.Errorf("%s: streamed %d arcs != lattice %d arcs", g.Name(), len(got), len(want))
			continue
		}
		if int64(len(got)) != g.NumArcs() {
			t.Errorf("%s: NumArcs %d != emitted %d", g.Name(), g.NumArcs(), len(got))
		}
		var split int64
		for c := 0; c < g.Chunks(); c++ {
			a := g.ChunkArcs(c)
			if a < 0 {
				t.Fatalf("%s: chunk %d count unknown at p=1", g.Name(), c)
			}
			split += a
		}
		if split != g.NumArcs() {
			t.Errorf("%s: chunk counts sum to %d, want %d", g.Name(), split, g.NumArcs())
		}
	}
}

// TestGridBernoulliSubset checks the p<1 path: the kept edges must be a
// subset of the full lattice, duplicate-free, in canonical order, with
// a count within 6σ of p·candidates.
func TestGridBernoulliSubset(t *testing.T) {
	g, err := NewGrid(40, 30, 1, 0.3, true, 2, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	full := map[stream.Arc]bool{}
	for _, a := range bruteForceGridEdges(40, 30, 1, true) {
		full[a] = true
	}
	got := Collect(g)
	seen := map[stream.Arc]bool{}
	for _, a := range got {
		if !full[a] {
			t.Fatalf("emitted non-lattice arc (%d,%d)", a.U, a.V)
		}
		if seen[a] {
			t.Fatalf("duplicate arc (%d,%d)", a.U, a.V)
		}
		seen[a] = true
	}
	mean := 0.3 * float64(len(full))
	sd := math.Sqrt(mean * 0.7)
	if d := math.Abs(float64(len(got)) - mean); d > 6*sd {
		t.Errorf("kept %d of %d lattice edges, want %.0f ± %.0f", len(got), len(full), mean, 6*sd)
	}
	if g.NumArcs() != -1 {
		t.Errorf("NumArcs at p<1 = %d, want -1", g.NumArcs())
	}
}

// TestGridChunkCountIsStreamIdentity pins the documented rule: grid
// draws per-chunk streams (like er), so different chunk counts are
// different stream identities — but the same chunk count must be
// byte-stable, and p=0 and p=1 must be chunk-count-invariant (no draws
// at all).
func TestGridChunkCountIsStreamIdentity(t *testing.T) {
	mk := func(chunks int, p float64) []stream.Arc {
		g, err := NewGrid(25, 25, 1, p, true, 2, 4, chunks)
		if err != nil {
			t.Fatal(err)
		}
		return Collect(g)
	}
	if !sameArcs(mk(4, 0.4), mk(4, 0.4)) {
		t.Fatal("same spec produced different streams")
	}
	if !sameArcs(mk(3, 1), mk(11, 1)) {
		t.Error("p=1 stream changed with chunk count")
	}
	if len(mk(3, 0)) != 0 {
		t.Error("p=0 emitted arcs")
	}
}

// TestGridRejectsOutOfRange pins the spec-boundary validation.
func TestGridRejectsOutOfRange(t *testing.T) {
	for _, tc := range []struct {
		x, y, z int64
		p       float64
		dim     int
	}{
		{0, 5, 1, 1, 2},
		{5, 0, 1, 1, 2},
		{5, 5, 0, 1, 3},
		{5, 5, 1, -0.1, 2},
		{5, 5, 1, 1.1, 2},
		{5, 5, 1, math.NaN(), 2},
		{5, 5, 1, 1, 4},
		{maxGridVertices, 2, 1, 1, 2},
	} {
		if _, err := NewGrid(tc.x, tc.y, tc.z, tc.p, false, tc.dim, 1, 0); err == nil {
			t.Errorf("NewGrid(%d,%d,%d,p=%v,dim=%d) accepted", tc.x, tc.y, tc.z, tc.p, tc.dim)
		}
	}
	if _, err := New("grid2d:x=10"); err == nil {
		t.Error("grid2d without y accepted")
	}
	if _, err := New("grid3d:x=10,y=10"); err == nil {
		t.Error("grid3d without z accepted")
	}
	if _, err := New("grid2d:x=10,y=10,wrap=maybe"); err == nil {
		t.Error("non-boolean wrap accepted")
	}
	if _, err := New("grid2d:x=10,y=10,torus=true"); err == nil {
		t.Error("unknown grid parameter accepted")
	}
}

// TestGridCandPrefixMatchesEnumeration cross-checks the closed-form
// candidate prefix against direct per-vertex candidate counting at
// every prefix length, wrapped and open, 2D and 3D.
func TestGridCandPrefixMatchesEnumeration(t *testing.T) {
	for _, tc := range []struct {
		dim     int
		x, y, z int64
		wrap    bool
	}{
		{2, 6, 4, 1, false},
		{2, 6, 4, 1, true},
		{2, 2, 3, 1, true},
		{3, 3, 4, 5, true},
		{3, 5, 1, 2, false},
	} {
		g, err := NewGrid(tc.x, tc.y, tc.z, 0.5, tc.wrap, tc.dim, 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		var run int64
		var cand []int64
		for u := int64(0); u <= g.n; u++ {
			if got := g.candPrefix(u); got != run {
				t.Fatalf("%s: candPrefix(%d) = %d, running count %d", g.Name(), u, got, run)
			}
			if u < g.n {
				run += int64(len(g.candidates(u, cand[:0])))
			}
		}
	}
}
