package model

import (
	"math"
	"sort"
	"strings"
	"testing"

	"kronvalid/internal/csr"
	"kronvalid/internal/stream"
)

// collect streams every shard of a plan through the ordered parallel
// pipeline with the given worker count and returns the arcs the sink
// observed.
func collect(t *testing.T, g Generator, shards, workers int) []stream.Arc {
	t.Helper()
	var out []stream.Arc
	pl := NewPlan(g, shards)
	n, err := pl.StreamTo(stream.FuncSink(func(batch []stream.Arc) error {
		out = append(out, batch...)
		return nil
	}), stream.Options{Workers: workers})
	if err != nil {
		t.Fatalf("%s: StreamTo: %v", g.Name(), err)
	}
	if n != int64(len(out)) {
		t.Fatalf("%s: StreamTo reported %d arcs, sink saw %d", g.Name(), n, len(out))
	}
	return out
}

func sameArcs(a, b []stream.Arc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var testSpecs = []string{
	"er:n=2000,p=0.004,seed=42",
	"er:n=500,p=0.05,seed=7,chunks=17",
	"gnm:n=1500,m=9000,seed=11",
	"rmat:scale=11,edges=16384,seed=13",
	"chunglu:n=3000,dmax=60,gamma=2.4,seed=5",
	"rgg2d:n=2500,r=0.03,seed=9",
	"rgg3d:n=1200,r=0.09,seed=4,chunks=21",
	"ba:n=2000,d=3,seed=15",
	"ba:n=900,d=5,s0=12,seed=2,chunks=11",
	"rhg:n=3000,d=8,gamma=2.9,seed=6",
	"rhg:n=1500,d=6,gamma=2.2,seed=3,chunks=19",
	"grid2d:x=60,y=45,p=0.7,wrap=true,seed=8",
	"grid3d:x=12,y=9,z=14,p=0.5,wrap=true,seed=2,chunks=9",
}

// TestByteIdentityAcrossShardAndWorkerCounts is the paper's central
// invariant applied to every registered random model: the concatenated
// shard stream must be identical for every shard count and every worker
// count, and must equal the serial chunk-by-chunk stream.
func TestByteIdentityAcrossShardAndWorkerCounts(t *testing.T) {
	for _, spec := range testSpecs {
		g, err := New(spec)
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		want := Collect(g)
		if len(want) == 0 {
			t.Fatalf("%s: empty stream, test is vacuous", spec)
		}
		for _, shards := range []int{1, 2, 4, 8} {
			for _, workers := range []int{1, 4} {
				got := collect(t, g, shards, workers)
				if !sameArcs(want, got) {
					t.Errorf("%s: stream at shards=%d workers=%d differs from serial stream (%d vs %d arcs)",
						spec, shards, workers, len(got), len(want))
				}
			}
		}
	}
}

// TestStreamsAreCanonical checks the chunk contract: strictly
// increasing lexicographic order (hence duplicate-free), vertex ids in
// range, and sources confined to the owning chunk's range.
func TestStreamsAreCanonical(t *testing.T) {
	for _, spec := range testSpecs {
		g, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		var dedup stream.DedupCheckSink
		pl := NewPlan(g, 1)
		if _, err := pl.StreamTo(&dedup, stream.Options{Workers: 1}); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
		n := g.NumVertices()
		buf := make([]stream.Arc, 0, 512)
		for c := 0; c < g.Chunks(); c++ {
			lo, hi := g.ChunkRange(c)
			g.GenerateChunk(c, buf, func(full []stream.Arc) []stream.Arc {
				for _, a := range full {
					if a.U < lo || a.U >= hi {
						t.Fatalf("%s: chunk %d emitted source %d outside [%d,%d)", spec, c, a.U, lo, hi)
					}
					if a.V < 0 || a.V >= n {
						t.Fatalf("%s: chunk %d emitted target %d outside [0,%d)", spec, c, a.V, n)
					}
				}
				return full[:0]
			})
		}
	}
}

// TestChunkRangesPartition checks that chunk vertex ranges are
// non-decreasing and disjoint, and that plans preserve them per shard.
func TestChunkRangesPartition(t *testing.T) {
	for _, spec := range testSpecs {
		g, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		prev := int64(0)
		for c := 0; c < g.Chunks(); c++ {
			lo, hi := g.ChunkRange(c)
			if lo < prev || hi < lo {
				t.Fatalf("%s: chunk %d range [%d,%d) overlaps or regresses (prev hi %d)", spec, c, lo, hi, prev)
			}
			prev = hi
		}
		for _, shards := range []int{1, 3, 8} {
			pl := NewPlan(g, shards)
			prev = 0
			for w := 0; w < pl.Shards(); w++ {
				lo, hi := pl.VertexRange(w)
				if lo < prev || hi < lo {
					t.Fatalf("%s: shard %d/%d range [%d,%d) overlaps or regresses", spec, w, shards, lo, hi)
				}
				prev = hi
			}
		}
	}
}

func TestErdosRenyiStatistics(t *testing.T) {
	g, err := NewErdosRenyi(2000, 0.004, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	arcs := Collect(g)
	for _, a := range arcs {
		if a.U >= a.V {
			t.Fatalf("non-upper-triangle arc (%d,%d)", a.U, a.V)
		}
	}
	want := g.ExpectedArcs() // ≈ 7996
	sd := math.Sqrt(want * (1 - 0.004))
	if got := float64(len(arcs)); math.Abs(got-want) > 6*sd {
		t.Errorf("ER edge count %d deviates from expectation %.0f by more than 6σ", len(arcs), want)
	}
	// Different seeds must differ.
	g2, _ := NewErdosRenyi(2000, 0.004, 43, 0)
	if sameArcs(arcs, Collect(g2)) {
		t.Error("different seeds produced identical ER streams")
	}
}

func TestErdosRenyiDense(t *testing.T) {
	// p = 1 must yield the complete graph via the dense path.
	g, err := NewErdosRenyi(80, 1, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(Collect(g)), 80*79/2; got != want {
		t.Fatalf("p=1 emitted %d arcs, want %d", got, want)
	}
	// p = 0 must yield nothing.
	g0, _ := NewErdosRenyi(80, 0, 1, 7)
	if got := len(Collect(g0)); got != 0 {
		t.Fatalf("p=0 emitted %d arcs", got)
	}
}

func TestGnmExactCount(t *testing.T) {
	for _, tc := range []struct {
		n, m   int64
		chunks int
	}{
		{1000, 0, 8}, {1000, 5000, 8}, {100, 100 * 99 / 2, 8},
		{100, 100 * 99 / 2, 1}, {300, 40000, 5}, {2, 1, 4},
	} {
		g, err := NewGnm(tc.n, tc.m, 99, tc.chunks)
		if err != nil {
			t.Fatalf("NewGnm(%d,%d): %v", tc.n, tc.m, err)
		}
		if g.NumArcs() != tc.m {
			t.Fatalf("NumArcs = %d, want %d", g.NumArcs(), tc.m)
		}
		var split int64
		for c := 0; c < g.Chunks(); c++ {
			a := g.ChunkArcs(c)
			if a < 0 {
				t.Fatalf("gnm chunk %d count unknown", c)
			}
			split += a
		}
		if split != tc.m {
			t.Fatalf("binomial split sums to %d, want %d", split, tc.m)
		}
		arcs := Collect(g)
		if int64(len(arcs)) != tc.m {
			t.Fatalf("G(%d,%d) emitted %d arcs", tc.n, tc.m, len(arcs))
		}
		seen := map[stream.Arc]bool{}
		for _, a := range arcs {
			if a.U >= a.V || a.U < 0 || a.V >= tc.n {
				t.Fatalf("invalid pair (%d,%d)", a.U, a.V)
			}
			if seen[a] {
				t.Fatalf("duplicate pair (%d,%d)", a.U, a.V)
			}
			seen[a] = true
		}
		// Exact per-shard sizes must match what the stream delivers.
		pl := NewPlan(g, 4)
		for w := 0; w < pl.Shards(); w++ {
			want := pl.ShardSize(w)
			var got int64
			pl.EachShardBatch(w, nil, func(full []stream.Arc) []stream.Arc {
				got += int64(len(full))
				return full[:0]
			})
			if want != got {
				t.Fatalf("G(%d,%d) shard %d: ShardSize %d but stream emitted %d", tc.n, tc.m, w, want, got)
			}
		}
	}
}

func TestGnmRejectsOutOfRange(t *testing.T) {
	if _, err := NewGnm(10, 46, 1, 0); err == nil {
		t.Error("m > pairs accepted")
	}
	if _, err := NewGnm(10, -1, 1, 0); err == nil {
		t.Error("negative m accepted")
	}
	if _, err := NewErdosRenyi(10, 1.5, 1, 0); err == nil {
		t.Error("p > 1 accepted")
	}
	if _, err := NewErdosRenyi(10, math.NaN(), 1, 0); err == nil {
		t.Error("NaN p accepted")
	}
	if _, err := NewRMAT(0, 5, .25, .25, .25, .25, 1, 0); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := NewRMAT(5, 5, 0, 0, 0, 0, 1, 0); err == nil {
		t.Error("zero probabilities accepted")
	}
	if _, err := NewChungLu([]float64{1, 2}, 1, 0); err == nil {
		t.Error("increasing weights accepted")
	}
	if _, err := NewChungLu([]float64{2, math.NaN()}, 1, 0); err == nil {
		t.Error("NaN weight accepted")
	}
	// Oversized specs must be construction errors, never allocation
	// panics reachable from CLI input.
	if _, err := New("chunglu:n=99999999999999999"); err == nil {
		t.Error("oversized chunglu n accepted")
	}
	if _, err := New("rmat:scale=20,edges=9000000000000000000"); err == nil {
		t.Error("oversized rmat edge budget accepted")
	}
	if _, err := New("er:n=99999999999999999,p=0.1"); err == nil {
		t.Error("oversized er n accepted")
	}
}

func TestRMATProperties(t *testing.T) {
	g, err := NewRMAT(11, 16384, 0.57, 0.19, 0.19, 0.05, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	if n != 2048 {
		t.Fatalf("NumVertices = %d", n)
	}
	arcs := Collect(g)
	if len(arcs) == 0 || int64(len(arcs)) > 16384 {
		t.Fatalf("RMAT emitted %d arcs, want in (0, 16384]", len(arcs))
	}
	var low, high int64
	for _, a := range arcs {
		if a.U == a.V {
			t.Fatalf("self loop at %d", a.U)
		}
		if a.U < n/2 {
			low++
		} else {
			high++
		}
	}
	if low <= high {
		t.Errorf("RMAT source mass not skewed: low=%d high=%d", low, high)
	}
	// The split budgets must sum to the raw edge count.
	var budget int64
	for q := 0; q < g.Chunks(); q++ {
		budget += g.chunkEdgeBudget(q)
	}
	if budget != 16384 {
		t.Errorf("chunk edge budgets sum to %d, want 16384", budget)
	}
}

func TestChungLuStatistics(t *testing.T) {
	// Regular weights d: expected edges ≈ n·d/2.
	w := make([]float64, 800)
	for i := range w {
		w[i] = 10
	}
	g, err := NewChungLu(w, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := len(Collect(g))
	if m < 3000 || m > 5000 {
		t.Errorf("ChungLu regular-10 edges = %d, expected near 4000", m)
	}
	// Zero weights: no edges, no panic.
	gz, err := NewChungLu(make([]float64, 50), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(Collect(gz)) != 0 {
		t.Error("zero-weight ChungLu emitted edges")
	}
	// Empty.
	ge, err := NewChungLu(nil, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(Collect(ge)) != 0 || ge.NumVertices() != 0 {
		t.Error("empty ChungLu wrong")
	}
}

// TestCSRPathsAgree builds every model's graph twice — one-pass ordered
// sink and two-pass parallel builder — at several worker counts and
// requires identical CSR.
func TestCSRPathsAgree(t *testing.T) {
	for _, spec := range testSpecs {
		g, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		sink := csr.NewSink(g.NumVertices(), 0)
		pl := NewPlan(g, 4)
		if _, err := pl.StreamTo(sink, stream.Options{Workers: 4}); err != nil {
			t.Fatalf("%s: ordered sink: %v", spec, err)
		}
		want, err := sink.Graph()
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 3, 8} {
			got, err := NewPlan(g, shards).BuildCSR(stream.Options{Workers: shards})
			if err != nil {
				t.Fatalf("%s: BuildCSR shards=%d: %v", spec, shards, err)
			}
			if !got.Equal(want) {
				t.Errorf("%s: two-pass CSR at shards=%d differs from ordered sink", spec, shards)
			}
		}
	}
}

func TestRegistrySpecs(t *testing.T) {
	if _, err := New("nosuch:n=3"); err == nil || !strings.Contains(err.Error(), "unknown model kind") {
		t.Errorf("unknown kind error = %v", err)
	}
	if _, err := New("er:n=10,pp=0.5"); err == nil || !strings.Contains(err.Error(), "unknown parameters") {
		t.Errorf("unknown key error = %v", err)
	}
	if _, err := New("er:n=10,junk"); err == nil {
		t.Error("malformed parameter accepted")
	}
	if _, err := New("gnm:n=10"); err == nil {
		t.Error("gnm without m accepted")
	}
	kinds := Kinds()
	for _, want := range []string{"er", "gnm", "rmat", "chunglu", "rgg2d", "rgg3d", "ba", "rhg", "grid2d", "grid3d"} {
		found := false
		for _, k := range kinds {
			found = found || k == want
		}
		if !found {
			t.Errorf("kind %q not registered (have %v)", want, kinds)
		}
	}
}

// TestKindsSortedEverywhere pins the satellite contract that model
// kinds surface deterministically: Kinds() is sorted, and the
// unknown-kind error message lists them in that same sorted order (CLI
// help text and CI logs both print these).
func TestKindsSortedEverywhere(t *testing.T) {
	kinds := Kinds()
	if !sort.StringsAreSorted(kinds) {
		t.Fatalf("Kinds() not sorted: %v", kinds)
	}
	_, err := New("nosuchmodel:n=1")
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	if want := strings.Join(kinds, ", "); !strings.Contains(err.Error(), want) {
		t.Errorf("unknown-kind error %q does not list the sorted kinds %q", err, want)
	}
}

// TestDependenciesContract checks the declared cross-chunk reads for
// every registered test spec: dependence-free models must declare
// nothing, and every declaration must be sorted, duplicate-free, and
// outside the chunk's own id space.
func TestDependenciesContract(t *testing.T) {
	for _, spec := range testSpecs {
		g, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		_, isRGG := g.(*RGG)
		_, isRHG := g.(*RHG)
		spatial := isRGG || isRHG
		for c := 0; c < g.Chunks(); c++ {
			deps := g.Dependencies(c)
			if !spatial && deps != nil {
				t.Fatalf("%s: chunk %d declares dependencies %v; only the cell-grid models recompute foreign cells", spec, c, deps)
			}
			for i := 1; i < len(deps); i++ {
				if deps[i-1] >= deps[i] {
					t.Fatalf("%s: chunk %d dependencies not strictly ascending: %v", spec, c, deps)
				}
			}
		}
	}
}

// TestNameRoundTrips requires New(g.Name()) to rebuild a generator with
// the identical stream — names are the manifest's reproducibility
// contract.
func TestNameRoundTrips(t *testing.T) {
	for _, spec := range testSpecs {
		g, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := New(g.Name())
		if err != nil {
			t.Fatalf("New(%q): %v", g.Name(), err)
		}
		if g2.Name() != g.Name() {
			t.Errorf("name not fixed under round trip: %q -> %q", g.Name(), g2.Name())
		}
		if !sameArcs(Collect(g), Collect(g2)) {
			t.Errorf("%s: round-tripped generator streams different arcs", g.Name())
		}
	}
}

// TestPlanBalancesHugePairSpace pins the overflow regression: at the
// maximum supported n the total chunk weight (pair count) approaches
// 2^63, and the shard-target arithmetic must not wrap — every requested
// shard must materialize with a sane share of the chunks.
func TestPlanBalancesHugePairSpace(t *testing.T) {
	g, err := NewErdosRenyi(4_000_000_000, 1e-12, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlan(g, 8)
	if pl.Shards() != 8 {
		t.Fatalf("plan produced %d shards, want 8", pl.Shards())
	}
	for w := 0; w < pl.Shards(); w++ {
		r := pl.ranges[w]
		if n := r[1] - r[0]; n < 1 || n > g.Chunks()/2 {
			t.Fatalf("shard %d owns %d of %d chunks — partition collapsed", w, n, g.Chunks())
		}
	}
}

// TestWorkerCountNeverConsumesRandomness pins the design rule that the
// plan only assigns chunks: a plan for any shard count must leave the
// underlying chunk streams untouched, which TestByteIdentity checks via
// bytes; here we check the plan covers every chunk exactly once.
func TestWorkerCountNeverConsumesRandomness(t *testing.T) {
	g, err := New("er:n=300,p=0.05,seed=3,chunks=13")
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 5, 13, 50} {
		pl := NewPlan(g, shards)
		next := 0
		for w := 0; w < pl.Shards(); w++ {
			r := pl.ranges[w]
			if r[0] != next || r[1] <= r[0] {
				t.Fatalf("shards=%d: shard %d covers chunks [%d,%d), want start %d", shards, w, r[0], r[1], next)
			}
			next = r[1]
		}
		if next != g.Chunks() {
			t.Fatalf("shards=%d: plan covers %d chunks, generator has %d", shards, next, g.Chunks())
		}
		if pl.Shards() > shards {
			t.Fatalf("plan produced %d shards for request %d", pl.Shards(), shards)
		}
	}
}
