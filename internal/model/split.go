package model

import "kronvalid/internal/rng"

// splitTree divides an integer total across a fixed sequence of slots
// by recursive binomial splitting — the Sample-phase primitive behind
// every exact-count partition in this package (G(n,m) edge budgets, RGG
// cell occupancies). The node covering slots [lo, hi) assigns its left
// half Binomial(total_node, w_left/w_node) items from a stream derived
// purely from (seed, ns, lo<<32|hi), so every worker recomputes any
// slot's exact share — in O(log slots) draws — with no communication,
// the shares follow the exact multinomial law conditioned on the total,
// and they sum to the total exactly.
//
// When capacitated is set, slot weights are also capacities (G(n,m):
// a slot cannot hold more edges than it has pairs) and each split is
// clamped into its feasible range; for uncapacitated trees (RGG: a
// cell holds any number of points) the weights are proportions only.
type splitTree struct {
	seed  uint64
	ns    uint64
	slots int
	total int64
	// weight returns the combined weight of slots [lo, hi). It must be
	// exactly additive: weight(lo, hi) == weight(lo, mid) + weight(mid, hi).
	weight      func(lo, hi int) int64
	capacitated bool
}

// splitMemo caches per-node left shares across many descents of the
// same tree. A node's incoming total m is itself a pure function of the
// node, so caching by node id alone is sound. Create one per chunk
// generation (it is not safe for concurrent use); a nil memo disables
// caching.
type splitMemo map[uint64]int64

// leftShare draws the left half's share of m items at the node covering
// [lo, hi) split at mid. It is a pure function of (seed, ns, lo, hi, m).
func (t *splitTree) leftShare(lo, mid, hi int, m int64, memo splitMemo) int64 {
	node := uint64(lo)<<32 | uint64(hi)
	if v, ok := memo[node]; ok {
		return v
	}
	mLeft := int64(0)
	// m == 0 short-circuits without touching the node's stream: the
	// binomial draw would return 0 without consuming anything, and node
	// streams are independent, so skipping the stream setup changes no
	// value anywhere.
	if total := t.weight(lo, hi); total > 0 && m > 0 {
		left := t.weight(lo, mid)
		s := rng.NewStream2(t.seed, t.ns, node)
		mLeft = s.Binomial(m, float64(left)/float64(total))
		if t.capacitated {
			// Clamp to the feasible range [m - w_right, w_left]: the binomial
			// approximation of the hypergeometric split can otherwise assign a
			// side more items than it has capacity (e.g. near-complete
			// graphs). Both ends stay in range because m <= total.
			if right := total - left; mLeft < m-right {
				mLeft = m - right
			}
			if mLeft > left {
				mLeft = left
			}
		}
	}
	if memo != nil {
		memo[node] = mLeft
	}
	return mLeft
}

// count returns slot c's exact item count by descending from the root:
// O(log slots) binomial draws, each from a stream derived purely from
// (seed, node), so every caller computes the same value.
func (t *splitTree) count(c int) int64 { return t.countMemo(c, nil) }

func (t *splitTree) countMemo(c int, memo splitMemo) int64 {
	lo, hi := 0, t.slots
	m := t.total
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		mLeft := t.leftShare(lo, mid, hi, m, memo)
		if c < mid {
			hi, m = mid, mLeft
		} else {
			lo, m = mid, m-mLeft
		}
	}
	return m
}

// prefix returns the total item count of slots [0, c) — the id-space
// offset of slot c — by one root descent accumulating the left shares
// it passes: O(log slots) draws, identical across callers.
func (t *splitTree) prefix(c int) int64 { return t.prefixMemo(c, nil) }

// expandPrefix materializes the whole tree in one depth-first pass and
// returns the prefix-sum table P of length slots+1: P[c] is the item
// count of slots [0, c), so slot c holds P[c+1]-P[c] items. Each tree
// node's left share is a pure function of the node id alone, so drawing
// every node exactly once yields the same values as any sequence of
// count/prefix descents — only the evaluation order differs — at O(1)
// amortized draws per slot instead of O(log slots) per query, with no
// memo map in the hot path. Callers gate on slots (8 bytes per slot).
func (t *splitTree) expandPrefix() []int64 {
	p := make([]int64, t.slots+1)
	if t.slots == 0 {
		return p
	}
	var rec func(lo, hi int, m int64)
	rec = func(lo, hi int, m int64) {
		if m == 0 {
			// Every slot under this node is empty and p is already
			// zero-initialized; the skipped per-node draws are all
			// Binomial(0, ·) = 0 from independent streams, so pruning
			// the subtree changes no value.
			return
		}
		if hi-lo == 1 {
			p[lo] = m
			return
		}
		mid := (lo + hi) / 2
		mLeft := t.leftShare(lo, mid, hi, m, nil)
		rec(lo, mid, mLeft)
		rec(mid, hi, m-mLeft)
	}
	rec(0, t.slots, t.total)
	// In place: per-slot counts become the running prefix.
	var acc int64
	for c := 0; c < t.slots; c++ {
		acc, p[c] = acc+p[c], acc
	}
	p[t.slots] = acc
	return p
}

func (t *splitTree) prefixMemo(c int, memo splitMemo) int64 {
	if c <= 0 || t.slots == 0 {
		return 0
	}
	if c >= t.slots {
		return t.total
	}
	lo, hi := 0, t.slots
	m := t.total
	var acc int64
	// Invariant: acc counts slots [0, lo) and m counts [lo, hi), with
	// c in (lo, hi]; at hi-lo == 1 that forces c == hi, so acc+m is the
	// count of [0, c).
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		mLeft := t.leftShare(lo, mid, hi, m, memo)
		if c <= mid {
			hi, m = mid, mLeft
		} else {
			acc += mLeft
			lo, m = mid, m-mLeft
		}
	}
	return acc + m
}
