package model

import (
	"fmt"
	"testing"

	"kronvalid/internal/stream"
)

// collectFresh concatenates every chunk generated with single-chunk
// state — the cache-off reference: GenerateChunk builds and discards a
// fresh WorkerState per chunk.
func collectFresh(g Generator) []stream.Arc {
	var out []stream.Arc
	emit := func(b []stream.Arc) []stream.Arc {
		out = append(out, b...)
		return b[:0]
	}
	for c := 0; c < g.Chunks(); c++ {
		g.GenerateChunk(c, nil, emit)
	}
	return out
}

// collectCached runs the chunks the way the ordered driver does with
// `workers` goroutines: worker w executes chunks w, w+workers, … each
// against ONE worker-lifetime state, and the per-chunk outputs are
// concatenated in global chunk order. (Sequential execution here —
// interleaving never matters, states are per worker by contract.)
func collectCached(g ChunkCacher, workers int) []stream.Arc {
	chunks := make([][]stream.Arc, g.Chunks())
	for w := 0; w < workers; w++ {
		ws := g.NewWorkerState()
		for c := w; c < g.Chunks(); c += workers {
			cur := c
			g.GenerateChunkWith(ws, cur, nil, func(b []stream.Arc) []stream.Arc {
				chunks[cur] = append(chunks[cur], b...)
				return b[:0]
			})
		}
	}
	var out []stream.Arc
	for _, cs := range chunks {
		out = append(out, cs...)
	}
	return out
}

// cacheTestGens builds the three spatial generators at a given chunk
// count: small enough to brute-check, large enough that halos cross
// chunk boundaries everywhere.
func cacheTestGens(t *testing.T, chunks int) map[string]ChunkCacher {
	t.Helper()
	rgg2, err := NewRGG(2500, 0.03, 2, 9, chunks)
	if err != nil {
		t.Fatal(err)
	}
	rgg3, err := NewRGG(1200, 0.09, 3, 4, chunks)
	if err != nil {
		t.Fatal(err)
	}
	rhg, err := NewRHG(1800, 8, 2.6, 21, chunks)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]ChunkCacher{"rgg2d": rgg2, "rgg3d": rgg3, "rhg": rhg}
}

// TestWorkerCacheDigestEquality pins the worker-lifetime cache's core
// contract: for rgg2d/rgg3d/rhg, the stream produced with one shared
// WorkerState per worker at 1, 4 and 8 workers is byte-identical to the
// cache-off per-chunk reference, across pathological chunk groupings
// (one chunk, a prime count, and one cell per chunk — the worst case
// for cross-chunk halo reuse).
func TestWorkerCacheDigestEquality(t *testing.T) {
	for _, chunks := range []int{1, 7, 1 << 20} {
		gens := cacheTestGens(t, chunks)
		for name, g := range gens {
			want := collectFresh(g)
			for _, workers := range []int{1, 4, 8} {
				got := collectCached(g, workers)
				if !sameArcs(want, got) {
					t.Errorf("%s chunks=%d: cached stream at %d workers differs from fresh-state reference (%d vs %d arcs)",
						name, chunks, workers, len(got), len(want))
				}
			}
		}
	}
}

// TestWorkerCacheEvictionBound proves the resident-point cap: driving
// every chunk through one worker state whose cap is far below the total
// point count, the cache never ends a chunk holding more than the cap,
// and the emitted stream still matches the reference — eviction is a
// cost, not a value.
func TestWorkerCacheEvictionBound(t *testing.T) {
	const ptsCap = 128
	rgg3, err := NewRGG(1200, 0.09, 3, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	rhg, err := NewRHG(1800, 8, 2.6, 21, 64)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		g    ChunkCacher
		st   *spatialState
	}{
		{"rgg3d", rgg3, newSpatialState(&rgg3.tree, &rgg3.ctab, ptsCap, rgg3.span()+1)},
		{"rhg-ring", rhg, newSpatialState(&rhg.tree, &rhg.ctab, ptsCap, rhg.cells)},
		{"rhg-map", rhg, newSpatialState(&rhg.tree, &rhg.ctab, ptsCap, 0)},
	}
	for _, tc := range cases {
		want := collectFresh(tc.g.(Generator))
		var got []stream.Arc
		emit := func(b []stream.Arc) []stream.Arc {
			got = append(got, b...)
			return b[:0]
		}
		for c := 0; c < tc.g.Chunks(); c++ {
			tc.g.GenerateChunkWith(tc.st, c, nil, emit)
			if r := tc.st.ResidentPoints(); r > ptsCap {
				t.Fatalf("%s: ResidentPoints = %d after chunk %d, cap %d", tc.name, r, c, ptsCap)
			}
		}
		if !sameArcs(want, got) {
			t.Errorf("%s: capped-cache stream differs from reference", tc.name)
		}
		if n := tc.g.(Generator).NumVertices(); n <= ptsCap {
			t.Fatalf("%s: cap %d does not force eviction for n=%d", tc.name, ptsCap, n)
		}
	}
}

// TestRHGStripMatchesFallback pins that the strip fast path and the
// generic bounded cell cache produce the same bytes, and that the gate
// actually selects between them.
func TestRHGStripMatchesFallback(t *testing.T) {
	g, err := NewRHG(1800, 8, 2.6, 21, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.NewWorkerState().(*rhgState); !ok {
		t.Fatalf("n=1800 under the %d-point gate should select the strip state", rhgPanelMaxPoints)
	}
	strip := collectCached(g, 3)

	defer func(old int64) { rhgPanelMaxPoints = old }(rhgPanelMaxPoints)
	rhgPanelMaxPoints = 0
	if _, ok := g.NewWorkerState().(*spatialState); !ok {
		t.Fatal("a zero panel gate should select the fallback cell cache")
	}
	fallback := collectCached(g, 3)
	if !sameArcs(strip, fallback) {
		t.Errorf("strip stream (%d arcs) differs from fallback cell-cache stream (%d arcs)", len(strip), len(fallback))
	}
}

// TestRHGForwardRunsMatchPartners pins that the range form of the
// forward-partner enumeration flattens to exactly the per-cell list —
// the strip path's window order equals the staged path's.
func TestRHGForwardRunsMatchPartners(t *testing.T) {
	g, err := NewRHG(5000, 12, 2.4, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []int{0, 1, g.cells / 3, g.cells / 2, g.cells - 2, g.cells - 1} {
		want := g.forwardPartners(c)
		var got []int
		for _, r := range g.appendForwardRuns(c, nil) {
			for cc := r.lo; cc < r.hi; cc++ {
				got = append(got, cc)
			}
		}
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Errorf("cell %d: runs flatten to %v, partners are %v", c, got, want)
		}
	}
}
