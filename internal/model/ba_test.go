package model

import (
	"testing"

	"kronvalid/internal/stream"
)

// sequentialBA runs the Batagelj–Brandes process literally — the full
// endpoint array in memory, each odd slot copied from the slot its
// per-position hash draw points at — and post-processes exactly like
// the chunks do (drop self loops, merge per-vertex duplicates, sort
// targets). It is the oracle the retracing resolution must match: the
// chain-chasing resolve() is nothing but a lazy evaluation of this
// array.
func sequentialBA(g *BarabasiAlbert) []stream.Arc {
	se := g.seedEdges()
	total := se + (g.n-g.s0)*g.d
	e := make([]int64, 2*total)
	for j := int64(0); j < se; j++ {
		e[2*j] = 0
		e[2*j+1] = j + 1
	}
	for p := 2 * se; p < 2*total; p++ {
		if p%2 == 0 {
			e[p] = g.s0 + (p/2-se)/g.d
		} else {
			e[p] = e[g.posDraw(p)]
		}
	}
	var out []stream.Arc
	for j := int64(0); j < se; j++ {
		out = append(out, stream.Arc{U: 0, V: j + 1})
	}
	for v := g.s0; v < g.n; v++ {
		var targets []int64
		for i := int64(0); i < g.d; i++ {
			idx := se + (v-g.s0)*g.d + i
			if w := e[2*idx+1]; w != v {
				targets = append(targets, w)
			}
		}
		sortInt64(targets)
		var prev int64 = -1
		for _, w := range targets {
			if w != prev {
				out = append(out, stream.Arc{U: v, V: w})
				prev = w
			}
		}
	}
	return out
}

func sortInt64(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestBARetracingMatchesSequentialProcess is the paper's correctness
// argument made executable: resolving every edge by chasing its
// dependency chain through the per-position hash streams must
// reproduce, arc for arc, the sequential array process those streams
// define.
func TestBARetracingMatchesSequentialProcess(t *testing.T) {
	for _, tc := range []struct {
		n, d, s0 int64
		chunks   int
	}{
		{800, 3, 0, 0},
		{500, 1, 0, 4},
		{300, 8, 0, 8},
		{400, 2, 10, 5}, // non-default seed star
	} {
		g, err := NewBarabasiAlbert(tc.n, tc.d, tc.s0, 21, tc.chunks)
		if err != nil {
			t.Fatalf("NewBarabasiAlbert(%v): %v", tc, err)
		}
		want := sequentialBA(g)
		got := Collect(g)
		if len(want) == 0 {
			t.Fatalf("%s: oracle stream empty", g.Name())
		}
		if !sameArcs(want, got) {
			t.Errorf("%s: retraced stream (%d arcs) != sequential process (%d arcs)", g.Name(), len(got), len(want))
		}
	}
}

// TestBAChunkCountDoesNotChangeStream pins that for ba — as for rgg —
// the chunk count only groups vertices: every draw is keyed by an edge
// position, so regrouping must not change a byte.
func TestBAChunkCountDoesNotChangeStream(t *testing.T) {
	base, err := NewBarabasiAlbert(1500, 4, 0, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := Collect(base)
	for _, chunks := range []int{1, 8, 64, 1000} {
		g, err := NewBarabasiAlbert(1500, 4, 0, 9, chunks)
		if err != nil {
			t.Fatal(err)
		}
		if !sameArcs(want, Collect(g)) {
			t.Errorf("chunks=%d changed the ba stream", chunks)
		}
	}
}

// degreesOf accumulates undirected degrees from an upper/lower-triangle
// arc stream.
func degreesOf(n int64, arcs []stream.Arc) []int64 {
	deg := make([]int64, n)
	for _, a := range arcs {
		deg[a.U]++
		deg[a.V]++
	}
	return deg
}

// TestBAHeavierTailThanER is the power-law satellite: preferential
// attachment concentrates degree on early vertices, so at the same
// vertex and edge count the BA maximum degree must dwarf the G(n,m)
// maximum (which concentrates near the mean).
func TestBAHeavierTailThanER(t *testing.T) {
	const n, d, seed = 3000, 4, 5
	ba, err := NewBarabasiAlbert(n, d, 0, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	baArcs := Collect(ba)
	er, err := NewGnm(n, int64(len(baArcs)), seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	erArcs := Collect(er)
	maxOf := func(deg []int64) int64 {
		var mx int64
		for _, x := range deg {
			if x > mx {
				mx = x
			}
		}
		return mx
	}
	baMax := maxOf(degreesOf(n, baArcs))
	erMax := maxOf(degreesOf(n, erArcs))
	if baMax < 2*erMax {
		t.Errorf("BA max degree %d is not heavier-tailed than G(n,m) max %d at equal m=%d", baMax, erMax, len(baArcs))
	}
	// The attachment cap must hold on the other side: no vertex past the
	// seed graph sources more than d arcs.
	perSource := map[int64]int64{}
	for _, a := range baArcs {
		perSource[a.U]++
	}
	for v, cnt := range perSource {
		if v >= ba.s0 && cnt > d {
			t.Fatalf("vertex %d sourced %d arcs, cap %d", v, cnt, d)
		}
	}
}

// TestBARejectsOutOfRange pins the spec-boundary validation.
func TestBARejectsOutOfRange(t *testing.T) {
	if _, err := NewBarabasiAlbert(10, 0, 0, 1, 0); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewBarabasiAlbert(3, 3, 0, 1, 0); err == nil {
		t.Error("n < s0 accepted")
	}
	if _, err := NewBarabasiAlbert(10, 3, 1, 1, 0); err == nil {
		t.Error("s0=1 accepted")
	}
	if _, err := NewBarabasiAlbert(maxBAVertices+1, 3, 0, 1, 0); err == nil {
		t.Error("oversized n accepted")
	}
	if _, err := New("ba:n=100"); err == nil {
		t.Error("ba without d accepted")
	}
	if _, err := New("ba:n=100,d=3,deg=3"); err == nil {
		t.Error("unknown ba parameter accepted")
	}
	if _, err := New("ba:n=100,d=3,m=4"); err == nil {
		t.Error("disagreeing d/m aliases accepted")
	}
}

// TestBADegreeAliases pins that the model grammar accepts the factor
// grammar's historical "m" key for the attachment degree, and that the
// two spellings build the identical stream.
func TestBADegreeAliases(t *testing.T) {
	a, err := New("ba:n=500,d=3,seed=8")
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("ba:n=500,m=3,seed=8")
	if err != nil {
		t.Fatal(err)
	}
	if !sameArcs(Collect(a), Collect(b)) {
		t.Error("d= and m= specs stream different arcs")
	}
	if _, err := New("ba:n=500,d=3,m=3,seed=8"); err != nil {
		t.Errorf("agreeing d/m aliases rejected: %v", err)
	}
}
