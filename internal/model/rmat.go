package model

import (
	"fmt"
	"math"

	"kronvalid/internal/rng"
	"kronvalid/internal/stream"
)

// RMAT is the sharded stochastic-Kronecker (R-MAT) model on 2^scale
// vertices: `edges` directed arcs are sampled by recursive quadrant
// descent with probabilities (a, b, c, d); self loops are dropped and
// duplicates merged, so the realized arc count can be slightly lower.
//
// Chunks are the 2^k subtrees of the source-vertex dimension (the top k
// bits of u), so each chunk owns a contiguous u range. The edge budget
// is split across subtrees by recursive binomial splitting with the
// exact conditional probabilities — P(u-bit = 0) = a+b at every level —
// which realizes the exact multinomial law of how many of the e edges
// fall in each subtree, from (seed, node)-derived streams any worker
// can replay. Within a chunk the fixed u-bits are given, so the
// corresponding v-bits are sampled from their conditional distributions
// (b/(a+b) or d/(c+d)) and the remaining bits from the joint quadrant
// law; the chunk's arcs are then sorted and deduplicated, making the
// concatenated stream canonical and CSR-ready.
type RMAT struct {
	noDeps
	scale      int
	edges      int64
	a, b, c, d float64
	seed       uint64
	k          uint // log2 of the chunk count
	pv0, pv1   float64
}

// maxRMATScale bounds the vertex-id space to stay well inside int64.
const maxRMATScale = 48

// maxRMATEdges bounds the total edge budget.
const maxRMATEdges = int64(1) << 36

// maxRMATChunkEdges bounds the *expected* edge budget of the heaviest
// chunk: each chunk buffers its samples (16 B/arc) for the sort+dedup
// pass, so a budget that concentrates past this in one subtree is a
// construction error ("raise chunks") rather than an OOM mid-stream.
const maxRMATChunkEdges = int64(1) << 28

// NewRMAT returns the sharded R-MAT generator. The probabilities are
// normalized to sum to 1; chunks is rounded down to a power of two and
// clamped to [1, 2^scale] (0 means DefaultChunks).
func NewRMAT(scale int, edges int64, a, b, c, d float64, seed uint64, chunks int) (*RMAT, error) {
	if scale < 1 || scale > maxRMATScale {
		return nil, fmt.Errorf("model: rmat scale %d out of [1, %d]", scale, maxRMATScale)
	}
	if edges < 0 || edges > maxRMATEdges {
		return nil, fmt.Errorf("model: rmat edge count %d out of [0, %d]", edges, maxRMATEdges)
	}
	sum := a + b + c + d
	if !(sum > 0) || a < 0 || b < 0 || c < 0 || d < 0 ||
		math.IsNaN(sum) || math.IsInf(sum, 0) {
		return nil, fmt.Errorf("model: rmat probabilities (%v, %v, %v, %v) must be non-negative with a positive sum", a, b, c, d)
	}
	a, b, c, d = a/sum, b/sum, c/sum, d/sum
	k := rmatChunkBits(scale, chunks)
	heaviest := math.Max(a+b, c+d)
	if expect := float64(edges) * math.Pow(heaviest, float64(k)); expect > float64(maxRMATChunkEdges) {
		return nil, fmt.Errorf("model: rmat edge budget %d concentrates ~%.0f samples in the heaviest of %d chunks (per-chunk cap %d); raise chunks or lower edges",
			edges, expect, 1<<k, maxRMATChunkEdges)
	}
	g := &RMAT{scale: scale, edges: edges, a: a, b: b, c: c, d: d, seed: seed, k: k}
	if ab := a + b; ab > 0 {
		g.pv0 = b / ab
	}
	if cd := c + d; cd > 0 {
		g.pv1 = d / cd
	}
	return g, nil
}

// rmatChunkBits resolves a requested chunk count to the log2 of the
// actual (power-of-two) chunk count for the given scale.
func rmatChunkBits(scale, chunks int) uint {
	chunks = normalizeChunks(chunks, int64(1)<<uint(scale))
	k := uint(0)
	for int(1)<<(k+1) <= chunks {
		k++
	}
	return k
}

// DefaultRMATEdges returns the default edge budget of an R-MAT spec —
// the Graph500 edge factor 16 — clamped to a budget NewRMAT accepts for
// the given probabilities and requested chunk count (0 means
// DefaultChunks): a spec that omits edges= must never fail over an edge
// count the user did not supply. Returns -1 (treated as required by the
// parameter readers) when scale or the probabilities are unusable.
func DefaultRMATEdges(scale int, a, b, c, d float64, chunks int) int64 {
	sum := a + b + c + d
	if scale < 1 || scale > maxRMATScale || !(sum > 0) || math.IsNaN(sum) || math.IsInf(sum, 0) {
		return -1
	}
	edges := int64(16) << uint(scale)
	if edges > maxRMATEdges {
		edges = maxRMATEdges
	}
	heaviest := math.Max(a+b, c+d) / sum
	k := rmatChunkBits(scale, chunks)
	if byChunk := float64(maxRMATChunkEdges) / math.Pow(heaviest, float64(k)); float64(edges) > byChunk {
		edges = int64(byChunk)
	}
	return edges
}

func buildRMAT(p *Params) (Generator, error) {
	scale, err := p.Int("scale", -1)
	if err != nil {
		return nil, err
	}
	a, err := p.Float("a", 0.57)
	if err != nil {
		return nil, err
	}
	b, err := p.Float("b", 0.19)
	if err != nil {
		return nil, err
	}
	c, err := p.Float("c", 0.19)
	if err != nil {
		return nil, err
	}
	d, err := p.Float("d", 0.05)
	if err != nil {
		return nil, err
	}
	seed, err := p.Seed()
	if err != nil {
		return nil, err
	}
	chunks, err := p.Int("chunks", 0)
	if err != nil {
		return nil, err
	}
	edges, err := p.Int64("edges", DefaultRMATEdges(scale, a, b, c, d, chunks))
	if err != nil {
		return nil, err
	}
	return NewRMAT(scale, edges, a, b, c, d, seed, chunks)
}

func init() { Register("rmat", buildRMAT) }

// Name returns the canonical spec of this generator.
func (g *RMAT) Name() string {
	return fmt.Sprintf("rmat:scale=%d,edges=%d,a=%s,b=%s,c=%s,d=%s,seed=%d,chunks=%d",
		g.scale, g.edges, formatFloat(g.a), formatFloat(g.b), formatFloat(g.c), formatFloat(g.d),
		g.seed, g.Chunks())
}

// NumVertices returns 2^scale.
func (g *RMAT) NumVertices() int64 { return int64(1) << uint(g.scale) }

// NumArcs returns -1: deduplication makes the realized count random.
func (g *RMAT) NumArcs() int64 { return -1 }

// Chunks returns the fixed chunk count 2^k.
func (g *RMAT) Chunks() int { return 1 << g.k }

// chunkShift is the width of the per-chunk low u-bits.
func (g *RMAT) chunkShift() uint { return uint(g.scale) - g.k }

// ChunkRange returns chunk q's source-vertex range: the u values whose
// top k bits equal q.
func (g *RMAT) ChunkRange(q int) (lo, hi int64) {
	return int64(q) << g.chunkShift(), int64(q+1) << g.chunkShift()
}

// subtreeProb returns the probability that one edge's source falls in
// chunk q's u-subtree.
func (g *RMAT) subtreeProb(q int) float64 {
	p := 1.0
	for level := uint(0); level < g.k; level++ {
		if q>>(g.k-1-level)&1 == 0 {
			p *= g.a + g.b
		} else {
			p *= g.c + g.d
		}
	}
	return p
}

// ChunkWeight returns chunk q's expected edge count (plus one, so empty
// subtrees still carry iteration cost).
func (g *RMAT) ChunkWeight(q int) int64 {
	return 1 + int64(g.subtreeProb(q)*float64(g.edges))
}

// ChunkArcs returns -1: deduplication makes per-chunk counts random.
func (g *RMAT) ChunkArcs(q int) int64 { return -1 }

// chunkEdgeBudget descends the k-level u-bit splitting tree and returns
// the number of raw edge samples assigned to chunk q. Node streams are
// derived from (seed, heap index), so every worker computes identical
// splits; the left share at every node is Binomial(e_node, a+b), the
// exact conditional law, so the leaf counts follow the exact multinomial
// distribution over subtrees and sum to edges.
func (g *RMAT) chunkEdgeBudget(q int) int64 {
	e := g.edges
	for level := uint(0); level < g.k; level++ {
		node := uint64(1)<<level | uint64(q)>>(g.k-level)
		s := rng.NewStream2(g.seed, nsRMATSplit, node)
		left := s.Binomial(e, g.a+g.b)
		if q>>(g.k-1-level)&1 == 0 {
			e = left
		} else {
			e -= left
		}
	}
	return e
}

// GenerateChunk samples chunk q's edge budget with the conditioned
// quadrant descent, drops self loops, sorts and deduplicates, and emits
// the canonical-order result.
func (g *RMAT) GenerateChunk(q int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	eC := g.chunkEdgeBudget(q)
	if eC == 0 {
		return
	}
	s := rng.NewStream2(g.seed, nsRMATChunk, uint64(q))
	shift := g.chunkShift()
	base := int64(q) << shift
	// Pre-size for the common case but let append grow past it: the
	// realized budget can exceed the constructor's expected-heaviest
	// bound, and one bounded-capacity allocation must not become one
	// giant allocation.
	capHint := eC
	if capHint > 1<<22 {
		capHint = 1 << 22
	}
	arcs := make([]stream.Arc, 0, capHint)
	for e := int64(0); e < eC; e++ {
		u, v := base, int64(0)
		// Fixed u-bits: sample the paired v-bits conditionally.
		for bit := g.scale - 1; bit >= int(shift); bit-- {
			pv := g.pv0
			if u>>uint(bit)&1 == 1 {
				pv = g.pv1
			}
			if s.Float64() < pv {
				v |= int64(1) << uint(bit)
			}
		}
		// Free bits: joint quadrant law.
		for bit := int(shift) - 1; bit >= 0; bit-- {
			r := s.Float64()
			switch {
			case r < g.a:
			case r < g.a+g.b:
				v |= int64(1) << uint(bit)
			case r < g.a+g.b+g.c:
				u |= int64(1) << uint(bit)
			default:
				u |= int64(1) << uint(bit)
				v |= int64(1) << uint(bit)
			}
		}
		if u != v {
			arcs = append(arcs, stream.Arc{U: u, V: v})
		}
	}
	sortArcs(arcs)
	arcs = dedupArcs(arcs)
	b := newBatcher(buf, emit)
	for _, a := range arcs {
		if !b.add(a.U, a.V) {
			return
		}
	}
	b.flush()
}
