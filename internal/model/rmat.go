package model

import (
	"fmt"
	"math"

	"kronvalid/internal/rng"
	"kronvalid/internal/stream"
)

// RMAT is the sharded stochastic-Kronecker (R-MAT) model on 2^scale
// vertices: `edges` directed arcs are sampled by recursive quadrant
// descent with probabilities (a, b, c, d); self loops are dropped and
// duplicates merged, so the realized arc count can be slightly lower.
//
// Chunks are the 2^k subtrees of the source-vertex dimension (the top k
// bits of u), so each chunk owns a contiguous u range. The edge budget
// is split across subtrees by recursive binomial splitting with the
// exact conditional probabilities — P(u-bit = 0) = a+b at every level —
// which realizes the exact multinomial law of how many of the e edges
// fall in each subtree, from (seed, node)-derived streams any worker
// can replay. Within a chunk the budget is realized by continuing the
// same splitting down the remaining u-bits and then the v-bits, in
// order (see GenerateChunk), so arcs come out canonical and
// deduplicated with no per-chunk buffer or sort.
type RMAT struct {
	noDeps
	scale      int
	edges      int64
	a, b, c, d float64
	seed       uint64
	k          uint // log2 of the chunk count
	pv0, pv1   float64
	cd         float64 // P(u-bit = 1) = c+d
	// Fixed-point thresholds of the three per-bit Bernoulli laws (see
	// rng.FixedThreshold): u-bit, and v-bit conditioned on u-bit 0/1.
	thrU1, thrV0, thrV1 uint64
	budgets             []int64 // per-chunk raw edge budgets
}

// maxRMATScale bounds the vertex-id space to stay well inside int64.
const maxRMATScale = 48

// maxRMATEdges bounds the total edge budget.
const maxRMATEdges = int64(1) << 36

// NewRMAT returns the sharded R-MAT generator. The probabilities are
// normalized to sum to 1; chunks is rounded down to a power of two and
// clamped to [1, 2^scale] (0 means DefaultChunks). The in-order descent
// keeps per-chunk memory O(scale) regardless of how the budget
// concentrates, so no per-chunk budget cap applies.
func NewRMAT(scale int, edges int64, a, b, c, d float64, seed uint64, chunks int) (*RMAT, error) {
	if scale < 1 || scale > maxRMATScale {
		return nil, fmt.Errorf("model: rmat scale %d out of [1, %d]", scale, maxRMATScale)
	}
	if edges < 0 || edges > maxRMATEdges {
		return nil, fmt.Errorf("model: rmat edge count %d out of [0, %d]", edges, maxRMATEdges)
	}
	sum := a + b + c + d
	if !(sum > 0) || a < 0 || b < 0 || c < 0 || d < 0 ||
		math.IsNaN(sum) || math.IsInf(sum, 0) {
		return nil, fmt.Errorf("model: rmat probabilities (%v, %v, %v, %v) must be non-negative with a positive sum", a, b, c, d)
	}
	a, b, c, d = a/sum, b/sum, c/sum, d/sum
	g := &RMAT{scale: scale, edges: edges, a: a, b: b, c: c, d: d, seed: seed, k: rmatChunkBits(scale, chunks)}
	if ab := a + b; ab > 0 {
		g.pv0 = b / ab
	}
	if cd := c + d; cd > 0 {
		g.pv1 = d / cd
	}
	g.cd = c + d
	g.thrU1 = rng.FixedThreshold(g.cd)
	g.thrV0 = rng.FixedThreshold(g.pv0)
	g.thrV1 = rng.FixedThreshold(g.pv1)
	g.budgets = g.splitBudgets()
	return g, nil
}

// rmatChunkBits resolves a requested chunk count to the log2 of the
// actual (power-of-two) chunk count for the given scale.
func rmatChunkBits(scale, chunks int) uint {
	chunks = normalizeChunks(chunks, int64(1)<<uint(scale))
	k := uint(0)
	for int(1)<<(k+1) <= chunks {
		k++
	}
	return k
}

// DefaultRMATEdges returns the default edge budget of an R-MAT spec —
// the Graph500 edge factor 16, clamped to the model's total budget
// bound. Returns -1 (treated as required by the parameter readers) when
// scale or the probabilities are unusable.
func DefaultRMATEdges(scale int, a, b, c, d float64) int64 {
	sum := a + b + c + d
	if scale < 1 || scale > maxRMATScale || !(sum > 0) || math.IsNaN(sum) || math.IsInf(sum, 0) {
		return -1
	}
	edges := int64(16) << uint(scale)
	if edges > maxRMATEdges {
		edges = maxRMATEdges
	}
	return edges
}

func buildRMAT(p *Params) (Generator, error) {
	scale, err := p.Int("scale", -1)
	if err != nil {
		return nil, err
	}
	a, err := p.Float("a", 0.57)
	if err != nil {
		return nil, err
	}
	b, err := p.Float("b", 0.19)
	if err != nil {
		return nil, err
	}
	c, err := p.Float("c", 0.19)
	if err != nil {
		return nil, err
	}
	d, err := p.Float("d", 0.05)
	if err != nil {
		return nil, err
	}
	seed, err := p.Seed()
	if err != nil {
		return nil, err
	}
	chunks, err := p.Int("chunks", 0)
	if err != nil {
		return nil, err
	}
	edges, err := p.Int64("edges", DefaultRMATEdges(scale, a, b, c, d))
	if err != nil {
		return nil, err
	}
	return NewRMAT(scale, edges, a, b, c, d, seed, chunks)
}

func init() { Register("rmat", buildRMAT) }

// Name returns the canonical spec of this generator.
func (g *RMAT) Name() string {
	return fmt.Sprintf("rmat:scale=%d,edges=%d,a=%s,b=%s,c=%s,d=%s,seed=%d,chunks=%d",
		g.scale, g.edges, formatFloat(g.a), formatFloat(g.b), formatFloat(g.c), formatFloat(g.d),
		g.seed, g.Chunks())
}

// NumVertices returns 2^scale.
func (g *RMAT) NumVertices() int64 { return int64(1) << uint(g.scale) }

// NumArcs returns -1: deduplication makes the realized count random.
func (g *RMAT) NumArcs() int64 { return -1 }

// Chunks returns the fixed chunk count 2^k.
func (g *RMAT) Chunks() int { return 1 << g.k }

// chunkShift is the width of the per-chunk low u-bits.
func (g *RMAT) chunkShift() uint { return uint(g.scale) - g.k }

// ChunkRange returns chunk q's source-vertex range: the u values whose
// top k bits equal q.
func (g *RMAT) ChunkRange(q int) (lo, hi int64) {
	return int64(q) << g.chunkShift(), int64(q+1) << g.chunkShift()
}

// subtreeProb returns the probability that one edge's source falls in
// chunk q's u-subtree.
func (g *RMAT) subtreeProb(q int) float64 {
	p := 1.0
	for level := uint(0); level < g.k; level++ {
		if q>>(g.k-1-level)&1 == 0 {
			p *= g.a + g.b
		} else {
			p *= g.c + g.d
		}
	}
	return p
}

// ChunkWeight returns chunk q's expected edge count (plus one, so empty
// subtrees still carry iteration cost).
func (g *RMAT) ChunkWeight(q int) int64 {
	return 1 + int64(g.subtreeProb(q)*float64(g.edges))
}

// ChunkArcs returns -1: deduplication makes per-chunk counts random.
func (g *RMAT) ChunkArcs(q int) int64 { return -1 }

// splitBudgets descends the k-level u-bit splitting tree once at
// construction and returns every chunk's raw edge budget. Node streams
// are derived from (seed, heap index) — the same per-node streams the
// former lazy per-chunk descent drew from, so the budgets are
// unchanged: the left share at every node is Binomial(e_node, a+b), the
// exact conditional law, so the leaf budgets follow the exact
// multinomial distribution over subtrees and sum to edges. One pass
// over the heap replaces 2^k descents of k draws each (the shared-memo
// request of the per-chunk path, taken to its limit).
func (g *RMAT) splitBudgets() []int64 {
	e := make([]int64, 2<<g.k)
	e[1] = g.edges
	for node := uint64(1); node < uint64(1)<<g.k; node++ {
		s := rng.NewStream2(g.seed, nsRMATSplit, node)
		left := s.Binomial(e[node], g.a+g.b)
		e[2*node] = left
		e[2*node+1] = e[node] - left
	}
	return e[1<<g.k:]
}

// chunkEdgeBudget returns the number of raw edge samples assigned to
// chunk q (precomputed at construction, see splitBudgets).
func (g *RMAT) chunkEdgeBudget(q int) int64 { return g.budgets[q] }

// GenerateChunk realizes chunk q's edge budget by in-order multinomial
// descent: the budget is split down the remaining u-bits (high to low,
// 0-branch first) with the exact conditional law P(u-bit = 1) = c+d,
// and each fully resolved source u splits its count down the v-bits
// with P(v-bit = 1 | u-bit) = pv0 or pv1. Leaves are therefore reached
// in lexicographic (u, v) order, so arcs are emitted canonical and
// already deduplicated — a leaf of multiplicity ≥ 2 is one arc — with
// no buffer and no sort; self loops are dropped at the leaf.
//
// The leaf counts follow exactly the same multinomial law as sampling
// the budget edge by edge with per-bit quadrant draws: R-MAT levels are
// iid, so conditioned on a node's count the split across its two
// children is binomial with the child's conditional probability, and
// the fixed-point thresholds encode each Bernoulli probability
// bit-for-bit (rng.FixedThreshold). Draws come sequentially from the
// chunk's (seed, chunk)-derived stream, so any worker replays the chunk
// identically.
func (g *RMAT) GenerateChunk(q int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	eC := g.budgets[q]
	if eC == 0 {
		return
	}
	d := &rmatDescent{
		g:   g,
		s:   rng.NewStream2(g.seed, nsRMATChunk, uint64(q)),
		b:   newBatcher(buf, emit),
		raw: make([]uint64, g.scale),
	}
	if d.uDescend(int(g.chunkShift())-1, int64(q)<<g.chunkShift(), eC) {
		d.b.flush()
	}
}

// rmatDescent carries one chunk's in-order descent state. raw is the
// chunk-lifetime scratch for batch-drawing a singleton's remaining bit
// levels in one Fill (at most scale draws per batch).
type rmatDescent struct {
	g   *RMAT
	s   *rng.Xoshiro256
	b   *batcher
	raw []uint64
}

// uDescend distributes n ≥ 1 edges across the source subtree rooted at
// u with bit+1 unresolved low u-bits, emitting the 0-branch before the
// 1-branch; the 1-branch continues iteratively in this frame, so the
// recursion depth is at most the bit count. Returns false when the
// consumer stopped the stream.
func (d *rmatDescent) uDescend(bit int, u, n int64) bool {
	g := d.g
	for bit >= 0 {
		if n == 1 {
			// A single edge consumes exactly one draw per remaining level
			// no matter the outcomes, so the whole tail is one batched
			// Fill (draw-identical to per-level Below calls).
			raw := d.raw[:bit+1]
			d.s.Fill(raw)
			for i, r := range raw {
				if r>>11 < g.thrU1 {
					u |= int64(1) << uint(bit-i)
				}
			}
			break
		}
		ones := d.s.BinomialFixed(n, g.cd, g.thrU1)
		if ones < n {
			if !d.uDescend(bit-1, u, n-ones) {
				return false
			}
		}
		if ones == 0 {
			return true
		}
		u |= int64(1) << uint(bit)
		n = ones
		bit--
	}
	return d.vDescend(g.scale-1, u, 0, n)
}

// vDescend distributes the n ≥ 1 edges of the fully resolved source u
// across the destination bit tree, 0-branch first; the leaf emits its
// arc once (self loops dropped).
func (d *rmatDescent) vDescend(bit int, u, v, n int64) bool {
	g := d.g
	for bit >= 0 {
		if n == 1 {
			raw := d.raw[:bit+1]
			d.s.Fill(raw)
			for i, r := range raw {
				thr := g.thrV0
				if u>>uint(bit-i)&1 == 1 {
					thr = g.thrV1
				}
				if r>>11 < thr {
					v |= int64(1) << uint(bit-i)
				}
			}
			break
		}
		pv, thr := g.pv0, g.thrV0
		if u>>uint(bit)&1 == 1 {
			pv, thr = g.pv1, g.thrV1
		}
		ones := d.s.BinomialFixed(n, pv, thr)
		if ones < n {
			if !d.vDescend(bit-1, u, v, n-ones) {
				return false
			}
		}
		if ones == 0 {
			return true
		}
		v |= int64(1) << uint(bit)
		n = ones
		bit--
	}
	if u != v {
		return d.b.add(u, v)
	}
	return true
}
