// Package model is the model-agnostic communication-free generator
// layer: every random graph model is expressed as a two-phase plan over
// a fixed sequence of randomness units that any worker can regenerate
// from the seed and a structural id alone via rng.NewStream2.
//
// Phase 1 — Sample. The model's raw random draws (coordinates, degree
// draws, edge-count splits, pair indices) are partitioned into *cells*,
// and each cell's sample is a pure function of (seed, cell id): any
// worker can recompute any cell's sample on demand, at any time, with
// no communication. For the dependence-free models (er, gnm, rmat,
// chunglu) cells coincide with chunks; for the spatial models (rgg2d,
// rgg3d) a cell is one grid cell's vertex placements; for ba the
// "cells" degenerate to per-edge-position hash streams.
//
// Phase 2 — Enumerate. Arc emission is partitioned into *chunks*, each
// owning a contiguous, disjoint source-vertex range and emitting its
// arcs in strictly increasing lexicographic order. A chunk may read
// sample cells it does not own — it declares them via Dependencies and
// simply *recomputes* them (the paper's trick for random geometric
// graphs: each worker regenerates neighboring cells' vertex samples
// instead of receiving them) or chases per-edge dependency chains
// through the Sample phase's hash streams (the paper's retracing
// algorithm for preferential attachment). Every arc is emitted by
// exactly one owning chunk, ties broken canonically (undirected pairs
// belong to the lexicographically smaller endpoint's owner).
//
// Shards are contiguous chunk ranges, so the concatenated shard streams
// are the concatenated chunk streams — byte-identical for every worker
// count — and the per-chunk source ranges are exactly the contract the
// parallel CSR builder and the per-shard writers already rely on for
// the Kronecker pipeline.
//
// The cell, not the shard — and not even the chunk grouping — is the
// unit of randomness: worker counts partition chunks, chunks group
// cells, and neither ever influences a single random draw. Changing a
// model parameter that is part of the stream identity (for er/gnm/
// rmat/chunglu that includes the chunk count; for rgg/ba it does not —
// their cells are fixed by the geometry or the edge positions) changes
// the stream; changing the worker count never does.
//
// Models register themselves in a registry keyed by a spec string
// (`er:n=100000,p=0.001,seed=42`), mirroring the factor-spec grammar of
// internal/spec, so CLIs and the public API construct generators
// model-agnostically.
package model

import (
	"sort"

	"kronvalid/internal/par"
	"kronvalid/internal/stream"
)

// Stream-id namespaces: every independent randomness consumer in this
// package derives its generators under its own namespace via
// rng.NewStream2(seed, namespace, id), so no two models — and no model's
// chunk streams versus its splitting-tree streams — can ever collide,
// and adding a model never perturbs another model's bytes.
const (
	nsERChunk   = 0x6572_0001 // Erdős–Rényi G(n,p) chunk streams
	nsGnmChunk  = 0x676e_6d01 // G(n,m) chunk streams
	nsGnmSplit  = 0x676e_6d02 // G(n,m) binomial-splitting tree
	nsRMATChunk = 0x726d_6101 // R-MAT chunk streams
	nsRMATSplit = 0x726d_6102 // R-MAT multinomial-splitting tree
	nsCLChunk   = 0x636c_7501 // Chung–Lu bucketed-sweep chunk streams (oracle core)
	nsCLBlock   = 0x636c_7502 // Chung–Lu blockwise chunk streams (production core)
	nsRGGCell   = 0x7267_6701 // RGG per-cell coordinate streams
	nsRGGSplit  = 0x7267_6702 // RGG cell-occupancy splitting tree
	nsBAPos     = 0x6261_0001 // BA per-edge-position hash streams
	nsRHGCell   = 0x7268_6701 // RHG per-cell coordinate streams
	nsRHGSplit  = 0x7268_6702 // RHG cell-occupancy splitting tree
	nsGridChunk = 0x6772_6401 // grid lattice chunk streams
)

// DefaultChunks is the number of randomness chunks a model uses when the
// spec does not override it. It bounds useful parallelism (shards ≤
// chunks) and is part of the stream identity, so it is a fixed constant
// rather than a function of the machine.
const DefaultChunks = 64

// Generator is a random graph model expressed as a communication-free
// sharded arc stream in the two-phase Sample/Enumerate shape (see the
// package comment). Chunks are indexed 0..Chunks()-1; concatenating
// every chunk's arcs in index order is the model's canonical stream.
// Implementations guarantee:
//
//   - Sample: every random draw a chunk consumes comes from a stream
//     keyed only by (seed, structural id) — a cell id, a splitting-tree
//     node, or an edge position — never by chunk or shard boundaries;
//   - Enumerate: GenerateChunk(c) is a pure function of the generator's
//     parameters and c — any worker can regenerate any chunk at any
//     time, recomputing foreign cells (Dependencies) as needed;
//   - chunk c emits only arcs whose source vertex lies in ChunkRange(c),
//     in strictly increasing lexicographic (U, V) order, and every arc
//     of the model is emitted by exactly one chunk (undirected pairs by
//     the lexicographically smaller endpoint's owner);
//   - chunk ranges are non-overlapping and non-decreasing in c,
//
// which together make the canonical stream feed the one-pass CSR sink
// directly and make the two-pass parallel CSR builder race-free.
type Generator interface {
	// Name returns the canonical spec string of the generator; feeding it
	// back through New reproduces the identical stream.
	Name() string
	// NumVertices returns the size of the vertex-id space [0, n).
	NumVertices() int64
	// NumArcs returns the exact total arc count when the model fixes it
	// (G(n, m)), and -1 when it is only known in expectation.
	NumArcs() int64
	// Chunks returns the fixed number of enumeration chunks.
	Chunks() int
	// ChunkRange returns the half-open source-vertex range owned by
	// chunk c. Ranges are disjoint and non-decreasing in c; an empty
	// chunk has lo == hi.
	ChunkRange(c int) (lo, hi int64)
	// ChunkWeight returns the relative expected work of chunk c —
	// including the cost of regenerating its dependency cells — the
	// quantity shard balancing equalizes.
	ChunkWeight(c int) int64
	// ChunkArcs returns the exact arc count of chunk c, or -1 when it is
	// random.
	ChunkArcs(c int) int64
	// Dependencies returns the ids of the Sample-phase cells chunk c
	// recomputes beyond the ones it owns — the declared cross-chunk
	// reads of the Enumerate phase, sorted ascending. Dependence-free
	// models return nil; models whose cross-chunk reads are resolved
	// pointwise through per-element hash streams rather than whole-cell
	// regeneration (BA retracing) also return nil.
	Dependencies(c int) []int64
	// GenerateChunk streams chunk c under the stream.ShardGen emit
	// contract: fill buf, hand every full batch and the final partial one
	// to emit, stop early when emit returns nil.
	GenerateChunk(c int, buf []stream.Arc, emit func(full []stream.Arc) (next []stream.Arc))
}

// WorkerState is opaque per-worker scratch a caching generator reuses
// across the chunks one worker executes: dependency-cell samples, memo
// tables, hit buffers. It is the *cost* side of generation only — the
// Sample phase is pure, so regenerating a cell and reading it back from
// a cache yield identical values, and carrying (or dropping) state can
// never move an emitted byte. A WorkerState must only be used by one
// goroutine at a time.
type WorkerState interface {
	// ResidentPoints returns the number of sample points currently held
	// by the state's cell cache — the quantity the eviction cap bounds.
	ResidentPoints() int64
}

// ChunkCacher is the optional worker-lifetime caching extension of
// Generator: drivers that execute many chunks on one goroutine create
// one WorkerState per worker and pass it to every GenerateChunkWith
// call, so neighboring chunks stop regenerating the same halo cells and
// re-descending the same splitting-tree prefixes. GenerateChunk(c, …)
// must stay equivalent to GenerateChunkWith(NewWorkerState(), c, …) —
// the cache trades CPU for memory, never bytes.
type ChunkCacher interface {
	Generator
	// NewWorkerState returns fresh state for one worker goroutine.
	NewWorkerState() WorkerState
	// GenerateChunkWith is GenerateChunk reading and extending ws.
	GenerateChunkWith(ws WorkerState, c int, buf []stream.Arc, emit func(full []stream.Arc) (next []stream.Arc))
}

// boundGen returns g's chunk-generation function bound to one fresh
// worker state when g caches, and plain GenerateChunk otherwise — the
// single place drivers decide between the two entry points.
func boundGen(g Generator) func(c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	if cc, ok := g.(ChunkCacher); ok {
		ws := cc.NewWorkerState()
		return func(c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
			cc.GenerateChunkWith(ws, c, buf, emit)
		}
	}
	return g.GenerateChunk
}

// noDeps is embedded by models whose chunks read no foreign sample
// cells: their Enumerate phase touches only streams the chunk itself
// owns, so the dependency declaration is empty.
type noDeps struct{}

// Dependencies reports that the chunk recomputes no foreign cells.
func (noDeps) Dependencies(int) []int64 { return nil }

// batcher adapts the append-and-flush emit contract for generator inner
// loops: add appends one arc and hands the batch off when full; flush
// emits the final partial batch. After add or flush returns false the
// consumer has stopped and the generator must return.
type batcher struct {
	buf     []stream.Arc
	emit    func([]stream.Arc) []stream.Arc
	stopped bool
}

func newBatcher(buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) *batcher {
	if cap(buf) == 0 {
		buf = make([]stream.Arc, 0, stream.DefaultBatchSize)
	}
	return &batcher{buf: buf[:0], emit: emit}
}

func (b *batcher) add(u, v int64) bool {
	b.buf = append(b.buf, stream.Arc{U: u, V: v})
	if len(b.buf) == cap(b.buf) {
		b.buf = b.emit(b.buf)
		if b.buf == nil {
			b.stopped = true
			return false
		}
		b.buf = b.buf[:0]
	}
	return true
}

// addRun appends arcs (u, base+hits[0]), (u, base+hits[1]), … — the
// batched form of one add call per hit. The hit indices come from a
// kernel's scratch buffer and must be ascending; emission order and
// bytes are identical to the per-arc loop it replaces, only the
// per-arc closure dispatch is gone.
func (b *batcher) addRun(u, base int64, hits []int32) bool {
	for len(hits) > 0 {
		room := cap(b.buf) - len(b.buf)
		n := len(hits)
		if n > room {
			n = room
		}
		for _, h := range hits[:n] {
			b.buf = append(b.buf, stream.Arc{U: u, V: base + int64(h)})
		}
		hits = hits[n:]
		if len(b.buf) == cap(b.buf) {
			b.buf = b.emit(b.buf)
			if b.buf == nil {
				b.stopped = true
				return false
			}
			b.buf = b.buf[:0]
		}
	}
	return true
}

// addIdx is addRun with indirect targets: it appends (u, vids[hits[0]]),
// (u, vids[hits[1]]), … — the emission shape of kernels that scan a
// flattened multi-cell segment whose global ids live in a parallel
// array. Identical per-arc emission order to the add loop it batches.
func (b *batcher) addIdx(u int64, vids []int64, hits []int32) bool {
	for len(hits) > 0 {
		room := cap(b.buf) - len(b.buf)
		n := len(hits)
		if n > room {
			n = room
		}
		for _, h := range hits[:n] {
			b.buf = append(b.buf, stream.Arc{U: u, V: vids[h]})
		}
		hits = hits[n:]
		if len(b.buf) == cap(b.buf) {
			b.buf = b.emit(b.buf)
			if b.buf == nil {
				b.stopped = true
				return false
			}
			b.buf = b.buf[:0]
		}
	}
	return true
}

func (b *batcher) flush() {
	if !b.stopped && len(b.buf) > 0 {
		if b.emit(b.buf) == nil {
			b.stopped = true
		}
		b.buf = nil
	}
}

// pairSpace indexes the upper triangle of an n-vertex graph: pair
// (u, v), u < v, has index offset(u) + (v-u-1), and indices enumerate
// pairs in canonical lexicographic order. It is the address space the
// pair-backed models (ER, G(n,m)) shard over.
type pairSpace struct {
	n     int64
	total int64
}

func newPairSpace(n int64) pairSpace {
	ps := pairSpace{n: n}
	if n > 0 {
		// offset(n-1) = (n-1)·n/2 = the full pair count, computed through
		// the overflow-safe path (the naive n·(n-1) intermediate wraps
		// near the n = 2^32 cap).
		ps.total = ps.offset(n - 1)
	}
	return ps
}

// offset returns the index of pair (u, u+1), i.e. the number of pairs
// in rows before u: u·(2n-u-1)/2. The factors are multiplied with the
// even one pre-halved — the naive u·n intermediate overflows int64 near
// the n = 2^32 cap even though the result always fits.
func (ps pairSpace) offset(u int64) int64 {
	b := 2*ps.n - u - 1
	if u%2 == 0 {
		return (u / 2) * b
	}
	return u * (b / 2)
}

// rowAt returns the smallest row r with offset(r) >= idx — the row
// boundary used to round chunk cuts so chunks own whole rows.
func (ps pairSpace) rowAt(idx int64) int64 {
	lo, hi := int64(0), ps.n
	for lo < hi {
		mid := (lo + hi) / 2
		if ps.offset(mid) >= idx {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// unpack converts a pair index within row u to the pair (u, v).
func (ps pairSpace) unpack(u, idx int64) (int64, int64) {
	return u, u + 1 + (idx - ps.offset(u))
}

// rowWalker maps ascending pair indices to (u, v) pairs, advancing its
// row cursor incrementally — the shared inner stepping of the
// pair-backed model generators.
type rowWalker struct {
	ps     pairSpace
	u      int64
	rowEnd int64
}

// walkerAt returns a walker positioned at the start of the given row.
func (ps pairSpace) walkerAt(row int64) rowWalker {
	return rowWalker{ps: ps, u: row, rowEnd: ps.offset(row + 1)}
}

// step returns the pair at index t. Successive calls must pass
// non-decreasing t at or past the walker's starting row.
func (w *rowWalker) step(t int64) (u, v int64) {
	for t >= w.rowEnd {
		w.u++
		w.rowEnd = w.ps.offset(w.u + 1)
	}
	return w.ps.unpack(w.u, t)
}

// chunkRows cuts the pair space into exactly `chunks` row-aligned slots
// with near-equal pair counts. Slots may be empty (lo == hi) when a
// heavy row swallows a boundary; empty slots are kept so chunk indices —
// and therefore per-chunk rng streams — are a pure function of
// (n, chunks), never of balancing.
func (ps pairSpace) chunkRows(chunks int) [][2]int64 {
	nRows := ps.n - 1 // rows 0..n-2 contain pairs
	if nRows < 0 {
		nRows = 0
	}
	chunks = normalizeChunks(chunks, nRows)
	cuts := par.Chunks(ps.total, int64(chunks))
	rows := make([][2]int64, 0, chunks)
	prev := int64(0)
	for i := 0; i < chunks; i++ {
		hi := nRows
		if i < len(cuts)-1 {
			hi = ps.rowAt(cuts[i][1])
		}
		if i >= len(cuts) || hi < prev {
			hi = prev
		}
		rows = append(rows, [2]int64{prev, hi})
		prev = hi
	}
	if len(rows) > 0 {
		rows[len(rows)-1][1] = nRows
	}
	return rows
}

// maxChunkCount caps the chunk count regardless of the spec: chunk
// tables are materialized per generator, and parallelism far beyond
// core counts buys nothing.
const maxChunkCount = 1 << 20

// normalizeChunks clamps a requested chunk count into [1, maxChunks]
// (0 means DefaultChunks).
func normalizeChunks(chunks int, maxChunks int64) int {
	if chunks <= 0 {
		chunks = DefaultChunks
	}
	if chunks > maxChunkCount {
		chunks = maxChunkCount
	}
	if int64(chunks) > maxChunks {
		chunks = int(maxChunks)
	}
	if chunks < 1 {
		chunks = 1
	}
	return chunks
}

// weightedRuns cuts items [0, n) into at most `parts` contiguous runs
// of near-equal cumulative weight: each run takes items until the
// running total crosses its proportional target, and the final run
// takes the rest. Weights accumulate in float64, so int64-scale totals
// (e.g. pair counts near 2^63) never overflow the target arithmetic.
// keepEmpty retains zero-width runs, for callers whose run index is
// part of the stream identity; otherwise empty runs are dropped.
func weightedRuns(n, parts int, weight func(int) float64, keepEmpty bool) [][2]int {
	if parts <= 0 {
		parts = 1
	}
	if !keepEmpty && parts > n {
		parts = n
	}
	var total float64
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	runs := make([][2]int, 0, parts)
	prev := 0
	cursor := 0.0
	for s := 0; s < parts; s++ {
		target := total * float64(s+1) / float64(parts)
		hi := prev
		for hi < n && (s == parts-1 || cursor < target) {
			cursor += weight(hi)
			hi++
		}
		if hi > prev || keepEmpty {
			runs = append(runs, [2]int{prev, hi})
		}
		prev = hi
	}
	if len(runs) == 0 {
		runs = append(runs, [2]int{0, n})
	}
	return runs
}

// prefixRuns is weightedRuns over a precomputed prefix-sum array, where
// prefix[i] is the cumulative weight of items [0, i). The generic loop
// ends part s at the first index whose running total reaches
// total·(s+1)/parts, and the running total at index i is exactly
// prefix[i], so each boundary is an upper-bound binary search — the
// same cuts, bit for bit, in O(parts·log n) instead of a second O(n)
// accumulation pass.
func prefixRuns(prefix []float64, parts int, keepEmpty bool) [][2]int {
	n := len(prefix) - 1
	if parts <= 0 {
		parts = 1
	}
	if !keepEmpty && parts > n {
		parts = n
	}
	total := prefix[n]
	runs := make([][2]int, 0, parts)
	prev := 0
	for s := 0; s < parts; s++ {
		hi := n
		if s < parts-1 {
			target := total * float64(s+1) / float64(parts)
			hi = prev + sort.SearchFloat64s(prefix[prev:], target)
			if hi > n {
				hi = n
			}
		}
		if hi > prev || keepEmpty {
			runs = append(runs, [2]int{prev, hi})
		}
		prev = hi
	}
	if len(runs) == 0 {
		runs = append(runs, [2]int{0, n})
	}
	return runs
}

// Collect regenerates the model's full canonical stream serially and
// returns it as one arc slice — the materialization path the legacy
// gen.* constructors adapt over.
func Collect(g Generator) []stream.Arc {
	var out []stream.Arc
	if n := g.NumArcs(); n > 0 {
		out = make([]stream.Arc, 0, n)
	}
	buf := make([]stream.Arc, 0, stream.DefaultBatchSize)
	gen := boundGen(g) // one worker state across every chunk
	for c := 0; c < g.Chunks(); c++ {
		gen(c, buf, func(full []stream.Arc) []stream.Arc {
			out = append(out, full...)
			return full[:0]
		})
	}
	return out
}
