package model

import (
	"fmt"
	"math"
	"sort"

	"kronvalid/internal/par"
	"kronvalid/internal/rng"
	"kronvalid/internal/stream"
)

// RGG is the sharded random geometric graph on the unit square (dim 2)
// or unit cube (dim 3): n vertices placed uniformly at random, an
// undirected edge between every pair at Euclidean distance <= r,
// emitted once as the upper-triangle arc (u, v), u < v, in canonical
// order.
//
// This is the paper's centerpiece construction, in the two-phase shape:
//
// Sample — the unit box is cut into a grid of cells with side >= r.
// Cell occupancies realize an exact-n multinomial via the shared
// recursive binomial splitting tree (splitTree, uncapacitated, weights
// proportional to cell volume), and cell c's coordinates come from the
// pure stream (seed, nsRGGCell, c): any worker recomputes any cell's
// vertex sample on demand. Vertex ids are assigned cell-major (cell
// index order, then placement order), so id order agrees with cell
// order.
//
// Enumerate — because the cell side is >= r, every edge is confined to
// one cell or two neighboring cells. Each chunk owns a contiguous run
// of cells and, for each owned cell, compares its points against the
// cell itself and its *forward* neighbors (grid neighbors with larger
// cell index), regenerating foreign cells' samples instead of
// receiving them — the declared Dependencies. Each undirected pair is
// therefore emitted exactly once, by the lexicographically smaller
// endpoint's cell, and the per-u segments arrive in ascending order,
// so the chunk stream is canonical without sorting.
//
// The chunk grouping touches no random draw — cells, occupancies and
// coordinates are fixed by (n, r, dim, seed) alone — so the stream is
// byte-identical for every chunk AND worker count.
type RGG struct {
	n      int64
	r      float64
	dim    int
	seed   uint64
	grid   int // cells per axis
	cells  int // grid^dim
	r2     float64
	inv    float64 // 1/grid, the cell side
	tree   splitTree
	runs   [][2]int // cell range per chunk
	starts []int64  // vertex-id offset at each chunk boundary (len runs+1)
}

// maxRGGVertices bounds n so id and occupancy arithmetic stays well
// inside int64.
const maxRGGVertices = int64(1) << 40

// maxRGGCells bounds the cell count: splitting-tree node ids pack two
// cell indices into one uint64, and descents are O(log cells) per cell
// query.
const maxRGGCells = 1 << 24

// maxRGGChunkPoints bounds the *expected* number of points a chunk owns
// (its own cells plus the regenerated neighbor halo are held in memory
// while the chunk generates); denser placements are construction errors
// ("raise chunks") rather than mid-stream memory exhaustion.
const maxRGGChunkPoints = int64(1) << 25

// NewRGG returns the sharded random geometric graph generator for
// dim ∈ {2, 3}. chunks = 0 means DefaultChunks; unlike the pair-backed
// models, the chunk count only groups cells for enumeration and is NOT
// part of the stream identity.
func NewRGG(n int64, r float64, dim int, seed uint64, chunks int) (*RGG, error) {
	if dim != 2 && dim != 3 {
		return nil, fmt.Errorf("model: rgg dimension %d is not 2 or 3", dim)
	}
	if n < 0 || n > maxRGGVertices {
		return nil, fmt.Errorf("model: rgg vertex count %d out of [0, %d]", n, maxRGGVertices)
	}
	if math.IsNaN(r) || r <= 0 || r > 1 {
		return nil, fmt.Errorf("model: rgg radius %v out of (0, 1]", r)
	}
	g := &RGG{n: n, r: r, dim: dim, seed: seed, r2: r * r}
	// The neighbor-cell argument needs cell side 1/grid >= r, i.e.
	// grid <= 1/r; beyond that the grid only gets finer to keep expected
	// occupancy >= 1 (cells <= n) and the cell count bounded. Every
	// clamp shrinks grid, so the side only grows and correctness holds.
	g.grid = int(math.Floor(1 / r))
	if g.grid < 1 {
		g.grid = 1
	}
	if occ := int(math.Floor(math.Pow(float64(n), 1/float64(dim)))); g.grid > occ {
		g.grid = occ
	}
	maxGrid := int(math.Floor(math.Pow(maxRGGCells, 1/float64(dim))))
	if g.grid > maxGrid {
		g.grid = maxGrid
	}
	if g.grid < 1 {
		g.grid = 1
	}
	g.cells = g.grid
	for d := 1; d < dim; d++ {
		g.cells *= g.grid
	}
	g.inv = 1 / float64(g.grid)
	g.tree = splitTree{
		seed:  seed,
		ns:    nsRGGSplit,
		slots: g.cells,
		total: n,
		// Cells have equal volume, so occupancy weights are cell counts.
		weight: func(lo, hi int) int64 { return int64(hi - lo) },
	}
	k := normalizeChunks(chunks, int64(g.cells))
	for _, run := range par.Chunks(int64(g.cells), int64(k)) {
		g.runs = append(g.runs, [2]int{int(run[0]), int(run[1])})
	}
	if len(g.runs) == 0 {
		g.runs = [][2]int{{0, g.cells}}
	}
	// A generating chunk holds its own cells' points plus the foreign
	// halo it regenerates (at most span() cells), so the resident bound
	// must count both.
	maxOwned := (g.cells + len(g.runs) - 1) / len(g.runs)
	if resident := int64(float64(n) * float64(maxOwned+g.span()) / float64(g.cells)); resident > maxRGGChunkPoints {
		return nil, fmt.Errorf("model: rgg holds ~%d of %d points resident per chunk (own cells + regenerated halo; cap %d); raise chunks",
			resident, n, maxRGGChunkPoints)
	}
	// One shared memo across the prefix descents: each tree node's split
	// is drawn once instead of once per run that passes it (the values
	// are unchanged — a memo never changes what a node draws).
	memo := make(splitMemo, 2*len(g.runs))
	g.starts = make([]int64, len(g.runs)+1)
	for i, run := range g.runs {
		g.starts[i] = g.tree.prefixMemo(run[0], memo)
	}
	g.starts[len(g.runs)] = n
	return g, nil
}

func buildRGG(p *Params, dim int) (Generator, error) {
	n, err := p.Int64("n", -1)
	if err != nil {
		return nil, err
	}
	r, err := p.FloatReq("r")
	if err != nil {
		return nil, err
	}
	seed, err := p.Seed()
	if err != nil {
		return nil, err
	}
	chunks, err := p.Int("chunks", 0)
	if err != nil {
		return nil, err
	}
	return NewRGG(n, r, dim, seed, chunks)
}

func init() {
	Register("rgg2d", func(p *Params) (Generator, error) { return buildRGG(p, 2) })
	Register("rgg3d", func(p *Params) (Generator, error) { return buildRGG(p, 3) })
}

// Name returns the canonical spec of this generator.
func (g *RGG) Name() string {
	return fmt.Sprintf("rgg%dd:n=%d,r=%s,seed=%d,chunks=%d", g.dim, g.n, formatFloat(g.r), g.seed, len(g.runs))
}

// NumVertices returns n.
func (g *RGG) NumVertices() int64 { return g.n }

// NumArcs returns -1: the edge count is random.
func (g *RGG) NumArcs() int64 { return -1 }

// ExpectedDegree returns the bulk mean degree (n-1)·V(r), where V is
// the volume of the r-ball (boundary effects excluded): π r² in 2D,
// (4/3) π r³ in 3D.
func (g *RGG) ExpectedDegree() float64 {
	v := math.Pi * g.r2
	if g.dim == 3 {
		v = 4.0 / 3.0 * math.Pi * g.r2 * g.r
	}
	return float64(g.n-1) * v
}

// Chunks returns the fixed chunk count.
func (g *RGG) Chunks() int { return len(g.runs) }

// CellCount returns the number of sample cells (grid^dim).
func (g *RGG) CellCount() int { return g.cells }

// CellVertices returns the exact occupancy of cell c — the Sample
// phase's splitting tree, recomputable by any worker.
func (g *RGG) CellVertices(c int) int64 { return g.tree.count(c) }

// ChunkRange returns chunk c's vertex-id range: ids are cell-major, so
// contiguous cell runs own contiguous id ranges.
func (g *RGG) ChunkRange(c int) (lo, hi int64) {
	return g.starts[c], g.starts[c+1]
}

// span returns the maximum forward cell-index offset a cell reads
// (grid-neighbor (+1, +1[, +1]) in row-major order): the halo depth of
// a chunk's foreign reads, in cells.
func (g *RGG) span() int {
	if g.dim == 2 {
		return g.grid + 1
	}
	return g.grid*g.grid + g.grid + 1
}

// ChunkWeight returns chunk c's expected work: its expected point count
// (cells are equal-volume, so proportional to owned cells) plus the
// expected points of the foreign halo it regenerates — bounded in
// closed form by span() cells clipped to the grid, so planning stays
// O(chunks) without enumerating Dependencies. Shard balancing therefore
// accounts for the recomputation halo, not just ownership.
func (g *RGG) ChunkWeight(c int) int64 {
	halo := g.span()
	if rest := g.cells - g.runs[c][1]; rest < halo {
		halo = rest
	}
	cells := g.runs[c][1] - g.runs[c][0] + halo
	return 1 + int64(float64(g.n)*float64(cells)/float64(g.cells))
}

// ChunkArcs returns -1: per-chunk counts are random.
func (g *RGG) ChunkArcs(c int) int64 { return -1 }

// cellCoords decomposes a row-major cell index into grid coordinates
// (x fastest).
func (g *RGG) cellCoords(cell int) [3]int {
	var xyz [3]int
	xyz[0] = cell % g.grid
	cell /= g.grid
	xyz[1] = cell % g.grid
	if g.dim == 3 {
		xyz[2] = cell / g.grid
	}
	return xyz
}

// forwardNeighbors returns the grid neighbors of cell with a larger
// row-major index, ascending — the cells whose points this cell is
// responsible for pairing with its own.
func (g *RGG) forwardNeighbors(cell int) []int {
	xyz := g.cellCoords(cell)
	zs := []int{0}
	if g.dim == 3 {
		zs = []int{-1, 0, 1}
	}
	var out []int
	for _, dz := range zs {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				x, y, z := xyz[0]+dx, xyz[1]+dy, xyz[2]+dz
				if x < 0 || x >= g.grid || y < 0 || y >= g.grid || z < 0 || z >= g.grid {
					continue
				}
				idx := (z*g.grid+y)*g.grid + x
				if idx > cell {
					out = append(out, idx)
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// Dependencies returns the foreign cells chunk c regenerates: forward
// neighbors of its owned cells that fall outside its own cell run. Only
// cells within span() of the run's end can reach past it.
func (g *RGG) Dependencies(c int) []int64 {
	lo, hi := g.runs[c][0], g.runs[c][1]
	from := hi - g.span()
	if from < lo {
		from = lo
	}
	seen := map[int]bool{}
	for cell := from; cell < hi; cell++ {
		for _, nb := range g.forwardNeighbors(cell) {
			if nb >= hi {
				seen[nb] = true
			}
		}
	}
	out := make([]int64, 0, len(seen))
	for nb := range seen {
		out = append(out, int64(nb))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// cellSample is one regenerated cell: its vertex-id offset and the
// flattened coordinates (dim floats per point, placement order).
type cellSample struct {
	start  int64
	coords []float64
}

// samplePoints regenerates cell c's coordinates — the Sample phase's
// pure function of (seed, cell): occupancy from the splitting tree,
// coordinates from the cell's own stream, each scaled into the cell's
// box. memo caches splitting-tree nodes across a chunk's many descents
// (nil disables caching); it never changes a value, only avoids
// re-drawing it.
func (g *RGG) samplePoints(cell int, memo splitMemo) []float64 {
	cnt := g.tree.countMemo(cell, memo)
	if cnt == 0 {
		return nil
	}
	xyz := g.cellCoords(cell)
	s := rng.NewStream2(g.seed, nsRGGCell, uint64(cell))
	coords := make([]float64, cnt*int64(g.dim))
	var u [3]float64
	for i := int64(0); i < cnt; i++ {
		s.UnitUniform(u[:g.dim])
		for d := 0; d < g.dim; d++ {
			coords[i*int64(g.dim)+int64(d)] = (float64(xyz[d]) + u[d]) * g.inv
		}
	}
	return coords
}

// GenerateChunk streams chunk c: for each owned cell in index order,
// its points are compared against the cell's own later points and
// every forward neighbor's points (regenerated through the cell cache),
// emitting (u, v), u < v, for each pair within distance r. Per source
// vertex the partner segments are visited in ascending id order, so the
// stream is canonical by construction.
func (g *RGG) GenerateChunk(c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	lo, hi := g.runs[c][0], g.runs[c][1]
	if lo >= hi || g.n == 0 {
		return
	}
	b := newBatcher(buf, emit)
	dim := int64(g.dim)
	// cache maps cell -> regenerated sample. Owned cells are dropped
	// once processed (later cells only look forward); foreign
	// dependencies stay for the chunk's lifetime — the halo the
	// per-chunk point cap bounds.
	cache := map[int]*cellSample{}
	memo := splitMemo{}
	get := func(cell int, start int64) *cellSample {
		if e, ok := cache[cell]; ok {
			return e
		}
		if start < 0 {
			start = g.tree.prefixMemo(cell, memo)
		}
		e := &cellSample{start: start, coords: g.samplePoints(cell, memo)}
		cache[cell] = e
		return e
	}
	start := g.starts[c]
	for cell := lo; cell < hi; cell++ {
		own := get(cell, start)
		nPts := int64(len(own.coords)) / dim
		start += nPts
		if nPts == 0 {
			delete(cache, cell)
			continue
		}
		var nbs []*cellSample
		for _, nb := range g.forwardNeighbors(cell) {
			e := get(nb, -1)
			if len(e.coords) > 0 {
				nbs = append(nbs, e)
			}
		}
		for i := int64(0); i < nPts; i++ {
			p := own.coords[i*dim : i*dim+dim]
			u := own.start + i
			for j := i + 1; j < nPts; j++ {
				if g.within(p, own.coords[j*dim:j*dim+dim]) {
					if !b.add(u, own.start+j) {
						return
					}
				}
			}
			for _, nb := range nbs {
				m := int64(len(nb.coords)) / dim
				for j := int64(0); j < m; j++ {
					if g.within(p, nb.coords[j*dim:j*dim+dim]) {
						if !b.add(u, nb.start+j) {
							return
						}
					}
				}
			}
		}
		delete(cache, cell)
	}
	b.flush()
}

// within reports whether two points lie at Euclidean distance <= r.
func (g *RGG) within(p, q []float64) bool {
	var d2 float64
	for d := 0; d < g.dim; d++ {
		diff := p[d] - q[d]
		d2 += diff * diff
	}
	return d2 <= g.r2
}
