package model

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"kronvalid/internal/par"
	"kronvalid/internal/rng"
	"kronvalid/internal/stream"
)

// RGG is the sharded random geometric graph on the unit square (dim 2)
// or unit cube (dim 3): n vertices placed uniformly at random, an
// undirected edge between every pair at Euclidean distance <= r,
// emitted once as the upper-triangle arc (u, v), u < v, in canonical
// order.
//
// This is the paper's centerpiece construction, in the two-phase shape:
//
// Sample — the unit box is cut into a grid of cells with side >= r.
// Cell occupancies realize an exact-n multinomial via the shared
// recursive binomial splitting tree (splitTree, uncapacitated, weights
// proportional to cell volume), and cell c's coordinates come from the
// pure stream (seed, nsRGGCell, c): any worker recomputes any cell's
// vertex sample on demand. Vertex ids are assigned cell-major (cell
// index order, then placement order), so id order agrees with cell
// order.
//
// Enumerate — because the cell side is >= r, every edge is confined to
// one cell or two neighboring cells. Each chunk owns a contiguous run
// of cells and, for each owned cell, compares its points against the
// cell itself and its *forward* neighbors (grid neighbors with larger
// cell index), regenerating foreign cells' samples instead of
// receiving them — the declared Dependencies. Each undirected pair is
// therefore emitted exactly once, by the lexicographically smaller
// endpoint's cell, and the per-u segments arrive in ascending order,
// so the chunk stream is canonical without sorting.
//
// The chunk grouping touches no random draw — cells, occupancies and
// coordinates are fixed by (n, r, dim, seed) alone — so the stream is
// byte-identical for every chunk AND worker count.
//
// Hot-path layout: cell samples are SoA (one array per coordinate),
// occupancies and prefixes come from a lazily tabulated splitting tree
// (cellTable), and pair enumeration runs dim-specialized kernels
// (within2/within3) that collect hit indices into a scratch buffer
// emitted as runs. All of it is value-identical to the scalar AoS
// path — identical draws, identical float expressions, identical
// emission order — so the canonical stream cannot move.
type RGG struct {
	n        int64
	r        float64
	dim      int
	seed     uint64
	grid     int // cells per axis
	cells    int // grid^dim
	r2       float64
	inv      float64 // 1/grid, the cell side
	tree     splitTree
	ctab     cellTable   // lazy full prefix table of tree
	nbDeltas []gridDelta // forward neighbor offsets, ascending
	runs     [][2]int    // cell range per chunk
	starts   []int64     // vertex-id offset at each chunk boundary (len runs+1)
}

// gridDelta is one candidate forward grid-neighbor: the coordinate
// deltas (for the bounds check) and the row-major index offset they
// induce. For in-bounds neighbors idx == cell + off exactly, and
// distinct in-bounds deltas always produce distinct offsets, so a
// delta table sorted by off enumerates neighbors in ascending index
// order with no per-cell sort.
type gridDelta struct {
	dx, dy, dz int
	off        int
}

// maxRGGVertices bounds n so id and occupancy arithmetic stays well
// inside int64.
const maxRGGVertices = int64(1) << 40

// maxRGGCells bounds the cell count: splitting-tree node ids pack two
// cell indices into one uint64, and descents are O(log cells) per cell
// query.
const maxRGGCells = 1 << 24

// maxRGGChunkPoints bounds the *expected* number of points a chunk owns
// (its own cells plus the regenerated neighbor halo are held in memory
// while the chunk generates); denser placements are construction errors
// ("raise chunks") rather than mid-stream memory exhaustion. It doubles
// as the worker-lifetime cache's resident-point cap.
const maxRGGChunkPoints = int64(1) << 25

// NewRGG returns the sharded random geometric graph generator for
// dim ∈ {2, 3}. chunks = 0 means DefaultChunks; unlike the pair-backed
// models, the chunk count only groups cells for enumeration and is NOT
// part of the stream identity.
func NewRGG(n int64, r float64, dim int, seed uint64, chunks int) (*RGG, error) {
	if dim != 2 && dim != 3 {
		return nil, fmt.Errorf("model: rgg dimension %d is not 2 or 3", dim)
	}
	if n < 0 || n > maxRGGVertices {
		return nil, fmt.Errorf("model: rgg vertex count %d out of [0, %d]", n, maxRGGVertices)
	}
	if math.IsNaN(r) || r <= 0 || r > 1 {
		return nil, fmt.Errorf("model: rgg radius %v out of (0, 1]", r)
	}
	g := &RGG{n: n, r: r, dim: dim, seed: seed, r2: r * r}
	// The neighbor-cell argument needs cell side 1/grid >= r, i.e.
	// grid <= 1/r; beyond that the grid only gets finer to keep expected
	// occupancy >= 1 (cells <= n) and the cell count bounded. Every
	// clamp shrinks grid, so the side only grows and correctness holds.
	g.grid = int(math.Floor(1 / r))
	if g.grid < 1 {
		g.grid = 1
	}
	if occ := int(math.Floor(math.Pow(float64(n), 1/float64(dim)))); g.grid > occ {
		g.grid = occ
	}
	maxGrid := int(math.Floor(math.Pow(maxRGGCells, 1/float64(dim))))
	if g.grid > maxGrid {
		g.grid = maxGrid
	}
	if g.grid < 1 {
		g.grid = 1
	}
	g.cells = g.grid
	for d := 1; d < dim; d++ {
		g.cells *= g.grid
	}
	g.inv = 1 / float64(g.grid)
	g.tree = splitTree{
		seed:  seed,
		ns:    nsRGGSplit,
		slots: g.cells,
		total: n,
		// Cells have equal volume, so occupancy weights are cell counts.
		weight: func(lo, hi int) int64 { return int64(hi - lo) },
	}
	zs := []int{0}
	if dim == 3 {
		zs = []int{-1, 0, 1}
	}
	for _, dz := range zs {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				// Forward neighbors only: off > 0 ⟺ idx > cell for every
				// in-bounds candidate (idx == cell + off there).
				if off := (dz*g.grid+dy)*g.grid + dx; off > 0 {
					g.nbDeltas = append(g.nbDeltas, gridDelta{dx, dy, dz, off})
				}
			}
		}
	}
	sort.Slice(g.nbDeltas, func(i, j int) bool { return g.nbDeltas[i].off < g.nbDeltas[j].off })
	k := normalizeChunks(chunks, int64(g.cells))
	for _, run := range par.Chunks(int64(g.cells), int64(k)) {
		g.runs = append(g.runs, [2]int{int(run[0]), int(run[1])})
	}
	if len(g.runs) == 0 {
		g.runs = [][2]int{{0, g.cells}}
	}
	// A generating chunk holds its own cells' points plus the foreign
	// halo it regenerates (at most span() cells), so the resident bound
	// must count both.
	maxOwned := (g.cells + len(g.runs) - 1) / len(g.runs)
	if resident := int64(float64(n) * float64(maxOwned+g.span()) / float64(g.cells)); resident > maxRGGChunkPoints {
		return nil, fmt.Errorf("model: rgg holds ~%d of %d points resident per chunk (own cells + regenerated halo; cap %d); raise chunks",
			resident, n, maxRGGChunkPoints)
	}
	// One shared memo across the prefix descents: each tree node's split
	// is drawn once instead of once per run that passes it (the values
	// are unchanged — a memo never changes what a node draws).
	memo := make(splitMemo, 2*len(g.runs))
	g.starts = make([]int64, len(g.runs)+1)
	for i, run := range g.runs {
		g.starts[i] = g.tree.prefixMemo(run[0], memo)
	}
	g.starts[len(g.runs)] = n
	return g, nil
}

func buildRGG(p *Params, dim int) (Generator, error) {
	n, err := p.Int64("n", -1)
	if err != nil {
		return nil, err
	}
	r, err := p.FloatReq("r")
	if err != nil {
		return nil, err
	}
	seed, err := p.Seed()
	if err != nil {
		return nil, err
	}
	chunks, err := p.Int("chunks", 0)
	if err != nil {
		return nil, err
	}
	return NewRGG(n, r, dim, seed, chunks)
}

func init() {
	Register("rgg2d", func(p *Params) (Generator, error) { return buildRGG(p, 2) })
	Register("rgg3d", func(p *Params) (Generator, error) { return buildRGG(p, 3) })
}

// Name returns the canonical spec of this generator.
func (g *RGG) Name() string {
	return fmt.Sprintf("rgg%dd:n=%d,r=%s,seed=%d,chunks=%d", g.dim, g.n, formatFloat(g.r), g.seed, len(g.runs))
}

// NumVertices returns n.
func (g *RGG) NumVertices() int64 { return g.n }

// NumArcs returns -1: the edge count is random.
func (g *RGG) NumArcs() int64 { return -1 }

// ExpectedDegree returns the bulk mean degree (n-1)·V(r), where V is
// the volume of the r-ball (boundary effects excluded): π r² in 2D,
// (4/3) π r³ in 3D.
func (g *RGG) ExpectedDegree() float64 {
	v := math.Pi * g.r2
	if g.dim == 3 {
		v = 4.0 / 3.0 * math.Pi * g.r2 * g.r
	}
	return float64(g.n-1) * v
}

// Chunks returns the fixed chunk count.
func (g *RGG) Chunks() int { return len(g.runs) }

// CellCount returns the number of sample cells (grid^dim).
func (g *RGG) CellCount() int { return g.cells }

// CellVertices returns the exact occupancy of cell c — the Sample
// phase's splitting tree, recomputable by any worker.
func (g *RGG) CellVertices(c int) int64 { return g.tree.count(c) }

// ChunkRange returns chunk c's vertex-id range: ids are cell-major, so
// contiguous cell runs own contiguous id ranges.
func (g *RGG) ChunkRange(c int) (lo, hi int64) {
	return g.starts[c], g.starts[c+1]
}

// span returns the maximum forward cell-index offset a cell reads
// (grid-neighbor (+1, +1[, +1]) in row-major order): the halo depth of
// a chunk's foreign reads, in cells.
func (g *RGG) span() int {
	if g.dim == 2 {
		return g.grid + 1
	}
	return g.grid*g.grid + g.grid + 1
}

// ChunkWeight returns chunk c's expected work: its expected point count
// (cells are equal-volume, so proportional to owned cells) plus the
// expected points of the foreign halo it regenerates — bounded in
// closed form by span() cells clipped to the grid, so planning stays
// O(chunks) without enumerating Dependencies. Shard balancing therefore
// accounts for the recomputation halo, not just ownership.
func (g *RGG) ChunkWeight(c int) int64 {
	halo := g.span()
	if rest := g.cells - g.runs[c][1]; rest < halo {
		halo = rest
	}
	cells := g.runs[c][1] - g.runs[c][0] + halo
	return 1 + int64(float64(g.n)*float64(cells)/float64(g.cells))
}

// ChunkArcs returns -1: per-chunk counts are random.
func (g *RGG) ChunkArcs(c int) int64 { return -1 }

// cellCoords decomposes a row-major cell index into grid coordinates
// (x fastest).
func (g *RGG) cellCoords(cell int) [3]int {
	var xyz [3]int
	xyz[0] = cell % g.grid
	cell /= g.grid
	xyz[1] = cell % g.grid
	if g.dim == 3 {
		xyz[2] = cell / g.grid
	}
	return xyz
}

// forwardNeighbors returns the grid neighbors of cell with a larger
// row-major index, ascending — the cells whose points this cell is
// responsible for pairing with its own. The delta table is sorted by
// offset and in-bounds neighbors satisfy idx == cell + off, so the
// output is ascending by construction.
func (g *RGG) forwardNeighbors(cell int) []int {
	xyz := g.cellCoords(cell)
	var out []int
	for _, d := range g.nbDeltas {
		x, y, z := xyz[0]+d.dx, xyz[1]+d.dy, xyz[2]+d.dz
		if x < 0 || x >= g.grid || y < 0 || y >= g.grid || z < 0 || z >= g.grid {
			continue
		}
		out = append(out, cell+d.off)
	}
	return out
}

// Dependencies returns the foreign cells chunk c regenerates: forward
// neighbors of its owned cells that fall outside its own cell run. Only
// cells within span() of the run's end can reach past it.
func (g *RGG) Dependencies(c int) []int64 {
	lo, hi := g.runs[c][0], g.runs[c][1]
	from := hi - g.span()
	if from < lo {
		from = lo
	}
	seen := map[int]bool{}
	for cell := from; cell < hi; cell++ {
		for _, nb := range g.forwardNeighbors(cell) {
			if nb >= hi {
				seen[nb] = true
			}
		}
	}
	out := make([]int64, 0, len(seen))
	for nb := range seen {
		out = append(out, int64(nb))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// samplePoints regenerates cell c's sample — the Sample phase's pure
// function of (seed, cell): occupancy and id offset from the splitting
// tree, coordinates from the cell's own stream in SoA layout, each
// scaled into the cell's box. st routes tree queries through the
// worker's prefix table or memo (nil falls back to plain descents,
// for oracles and tests); neither changes a value, only its cost.
func (g *RGG) samplePoints(cell int, st *spatialState) *cellSample {
	return g.samplePointsAt(cell, g.cellCoords(cell), st)
}

// samplePointsAt is samplePoints for a caller that already knows the
// cell's grid coordinates (the sweep tracks them incrementally), saving
// the divmod decomposition per regenerated cell. xyz must equal
// cellCoords(cell).
func (g *RGG) samplePointsAt(cell int, xyz [3]int, st *spatialState) *cellSample {
	var cnt, start int64
	if st != nil {
		cnt = st.count(&g.tree, cell)
		start = st.prefix(&g.tree, cell)
	} else {
		cnt = g.tree.count(cell)
		start = g.tree.prefix(cell)
	}
	if cnt > math.MaxInt32 {
		// Unreachable under the construction-time resident bound; guards
		// the int32 hit indices all the same.
		panic(fmt.Sprintf("model: rgg cell %d occupancy %d overflows kernel index", cell, cnt))
	}
	s := allocSample(st, start, int(cnt), g.dim)
	if cnt == 0 {
		return s
	}
	rs := rng.NewStream2(g.seed, nsRGGCell, uint64(cell))
	// SoA batched fill: per-point draw order x, y(, z) — draw-for-draw
	// identical to the per-point UnitUniform loop it replaced.
	if g.dim == 2 {
		rs.UnitUniform2(s.xs, s.ys)
	} else {
		rs.UnitUniform3(s.xs, s.ys, s.zs)
	}
	fx := float64(xyz[0])
	for i, u := range s.xs {
		s.xs[i] = (fx + u) * g.inv
	}
	fy := float64(xyz[1])
	for i, u := range s.ys {
		s.ys[i] = (fy + u) * g.inv
	}
	if g.dim == 3 {
		fz := float64(xyz[2])
		for i, u := range s.zs {
			s.zs[i] = (fz + u) * g.inv
		}
	}
	return s
}

// sampleHold regenerates cell (with known coordinates) on a cache miss
// and caches it. The hot-path cache hit check is inlined at the call
// sites; this is the slow path only.
func (g *RGG) sampleHold(st *spatialState, cell int, xyz [3]int) *cellSample {
	e := g.samplePointsAt(cell, xyz, st)
	st.hold(cell, e)
	return e
}

// NewWorkerState returns the worker-lifetime cell cache + tree lookup
// state (ChunkCacher). The cache is a ring of span()+1 slots: every
// cell read while one own cell is enumerated lies in [cell, cell+span],
// a window of consecutive indices that map to distinct slots — the ring
// contract newSpatialState documents.
func (g *RGG) NewWorkerState() WorkerState {
	return newSpatialState(&g.tree, &g.ctab, maxRGGChunkPoints, g.span()+1)
}

// GenerateChunk streams chunk c with single-chunk state — equivalent to
// GenerateChunkWith under a fresh worker state.
func (g *RGG) GenerateChunk(c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	g.GenerateChunkWith(g.NewWorkerState(), c, buf, emit)
}

// GenerateChunkWith streams chunk c: for each owned cell in index
// order, its points plus every forward neighbor's points (regenerated
// through ws's cell cache) are flattened into one contiguous halo, and
// each own point runs one kernel call over the halo tail behind it,
// emitting (u, v), u < v, for each pair within distance r. Neighbor
// segments are staged in ascending id order, so the stream is canonical
// by construction. Cell coordinates advance incrementally with the
// row-major scan instead of a divmod per cell.
func (g *RGG) GenerateChunkWith(ws WorkerState, c int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
	st := ws.(*spatialState)
	lo, hi := g.runs[c][0], g.runs[c][1]
	if lo >= hi || g.n == 0 {
		return
	}
	b := newBatcher(buf, emit)
	xyz := g.cellCoords(lo)
	dim3 := g.dim == 3
	// With the shared occupancy bitmap available, a cell's emptiness is
	// one L1-resident bit test — far cheaper than a ring probe plus a
	// pointer chase into a cached empty sample. Empty cells contribute
	// nothing to any halo, so skipping them (as own cell or neighbor)
	// changes no emitted arc; they are simply never cached.
	occ := st.occ
	// The halo columns live in locals so the per-neighbor staging is a
	// plain append loop — no call, no slice-header writeback per cell.
	// Capacities persist in st across chunks via the write-back below.
	fxs, fys, fzs, fvids := st.fxs[:0], st.fys[:0], st.fzs[:0], st.fvids[:0]
	for cell := lo; cell < hi; cell++ {
		if occ != nil && occ[uint(cell)>>6]&(1<<(uint(cell)&63)) == 0 {
			if xyz[0]++; xyz[0] == g.grid {
				xyz[0] = 0
				if xyz[1]++; xyz[1] == g.grid {
					xyz[1] = 0
					xyz[2]++
				}
			}
			continue
		}
		own := st.ring[cell&st.ringMask]
		if own == nil || own.cell != cell {
			own = g.sampleHold(st, cell, xyz)
		}
		if own.n > 0 {
			fxs, fys, fzs, fvids = fxs[:0], fys[:0], fzs[:0], fvids[:0]
			for j := 0; j < own.n; j++ {
				fxs = append(fxs, own.xs[j])
				fys = append(fys, own.ys[j])
				fvids = append(fvids, own.start+int64(j))
			}
			if dim3 {
				fzs = append(fzs, own.zs...)
			}
			// Interior cells (no face contact) pass every per-delta bounds
			// check by construction, so skip the checks wholesale.
			interior := xyz[0] >= 1 && xyz[0] < g.grid-1 && xyz[1] >= 1 && xyz[1] < g.grid-1 &&
				(g.dim == 2 || (xyz[2] >= 1 && xyz[2] < g.grid-1))
			if interior {
				for _, d := range g.nbDeltas {
					nb := cell + d.off
					if occ != nil && occ[uint(nb)>>6]&(1<<(uint(nb)&63)) == 0 {
						continue
					}
					e := st.ring[nb&st.ringMask]
					if e == nil || e.cell != nb {
						e = g.sampleHold(st, nb, [3]int{xyz[0] + d.dx, xyz[1] + d.dy, xyz[2] + d.dz})
					}
					for j := 0; j < e.n; j++ {
						fxs = append(fxs, e.xs[j])
						fys = append(fys, e.ys[j])
						fvids = append(fvids, e.start+int64(j))
					}
					if dim3 {
						fzs = append(fzs, e.zs...)
					}
				}
			} else {
				for _, d := range g.nbDeltas {
					x, y, z := xyz[0]+d.dx, xyz[1]+d.dy, xyz[2]+d.dz
					if x < 0 || x >= g.grid || y < 0 || y >= g.grid || z < 0 || z >= g.grid {
						continue
					}
					nb := cell + d.off
					if occ != nil && occ[uint(nb)>>6]&(1<<(uint(nb)&63)) == 0 {
						continue
					}
					e := st.ring[nb&st.ringMask]
					if e == nil || e.cell != nb {
						e = g.sampleHold(st, nb, [3]int{x, y, z})
					}
					for j := 0; j < e.n; j++ {
						fxs = append(fxs, e.xs[j])
						fys = append(fys, e.ys[j])
						fvids = append(fvids, e.start+int64(j))
					}
					if dim3 {
						fzs = append(fzs, e.zs...)
					}
				}
			}
			ok := false
			if dim3 {
				ok = g.pairsCell3(b, st, own, fxs, fys, fzs, fvids)
			} else {
				ok = g.pairsCell2(b, st, own, fxs, fys, fvids)
			}
			if !ok {
				return
			}
		}
		st.dropOwn(cell)
		if xyz[0]++; xyz[0] == g.grid {
			xyz[0] = 0
			if xyz[1]++; xyz[1] == g.grid {
				xyz[1] = 0
				xyz[2]++
			}
		}
	}
	st.fxs, st.fys, st.fzs, st.fvids = fxs[:0], fys[:0], fzs[:0], fvids[:0]
	b.flush()
}

// pairsCell2 emits every within-r pair of own point i against the
// flattened halo tail flat[i+1:] — the own cell's later points followed
// by every staged neighbor cell's, in ascending id order. One kernel
// call per own point covers what used to be one call per neighbor cell;
// the flattened values and scan order are bit-identical to the
// per-cell segment walk, so the emitted arcs are too.
func (g *RGG) pairsCell2(b *batcher, st *spatialState, own *cellSample, fxs, fys []float64, fvids []int64) bool {
	for i := 0; i < own.n; i++ {
		st.hits = within2(own.xs[i], own.ys[i], g.r2, fxs[i+1:], fys[i+1:], st.hits[:0])
		if !b.addIdx(own.start+int64(i), fvids[i+1:], st.hits) {
			return false
		}
	}
	return true
}

// pairsCell3 is pairsCell2 with the 3D kernel.
func (g *RGG) pairsCell3(b *batcher, st *spatialState, own *cellSample, fxs, fys, fzs []float64, fvids []int64) bool {
	for i := 0; i < own.n; i++ {
		st.hits = within3(own.xs[i], own.ys[i], own.zs[i], g.r2,
			fxs[i+1:], fys[i+1:], fzs[i+1:], st.hits[:0])
		if !b.addIdx(own.start+int64(i), fvids[i+1:], st.hits) {
			return false
		}
	}
	return true
}

// kernelLanes is the fixed block width of the distance kernels: the
// body evaluates kernelLanes independent lanes per iteration with the
// hit bits OR-ed into a mask — no data-dependent branch in the compare
// loop — and drains the mask afterwards. Eight float64 lanes are two
// 256-bit vectors' worth of independent work, enough to hide the
// subtract/multiply latency chain even without auto-vectorization.
const kernelLanes = 8

// within2 appends to hits the ascending indices j of the SoA segment
// with (x−xs[j])² + (y−ys[j])² <= r2. Blocked kernelLanes at a time:
// each lane evaluates the same expression tree as the scalar tail
// (d2 = dx·dx, then d2 += dy·dy), so any platform's rounding/fusion
// decisions are identical lane by lane and the predicate cannot move a
// bit; only the branch structure changes. Hits drain from the mask in
// ascending bit order, preserving the emission order.
func within2(x, y, r2 float64, xs, ys []float64, hits []int32) []int32 {
	ys = ys[:len(xs)]
	j := 0
	for ; j+kernelLanes <= len(xs); j += kernelLanes {
		bx := xs[j : j+kernelLanes : j+kernelLanes]
		by := ys[j : j+kernelLanes : j+kernelLanes]
		var mask uint32
		for k := 0; k < kernelLanes; k++ {
			dx := x - bx[k]
			dy := y - by[k]
			d2 := dx * dx
			d2 += dy * dy
			var hit uint32
			if d2 <= r2 {
				hit = 1
			}
			mask |= hit << k
		}
		for mask != 0 {
			k := bits.TrailingZeros32(mask)
			mask &= mask - 1
			hits = append(hits, int32(j+k))
		}
	}
	for ; j < len(xs); j++ {
		dx := x - xs[j]
		dy := y - ys[j]
		d2 := dx * dx
		d2 += dy * dy
		if d2 <= r2 {
			hits = append(hits, int32(j))
		}
	}
	return hits
}

// within3 is within2 for three coordinates.
func within3(x, y, z, r2 float64, xs, ys, zs []float64, hits []int32) []int32 {
	ys = ys[:len(xs)]
	zs = zs[:len(xs)]
	j := 0
	for ; j+kernelLanes <= len(xs); j += kernelLanes {
		bx := xs[j : j+kernelLanes : j+kernelLanes]
		by := ys[j : j+kernelLanes : j+kernelLanes]
		bz := zs[j : j+kernelLanes : j+kernelLanes]
		var mask uint32
		for k := 0; k < kernelLanes; k++ {
			dx := x - bx[k]
			dy := y - by[k]
			dz := z - bz[k]
			d2 := dx * dx
			d2 += dy * dy
			d2 += dz * dz
			var hit uint32
			if d2 <= r2 {
				hit = 1
			}
			mask |= hit << k
		}
		for mask != 0 {
			k := bits.TrailingZeros32(mask)
			mask &= mask - 1
			hits = append(hits, int32(j+k))
		}
	}
	for ; j < len(xs); j++ {
		dx := x - xs[j]
		dy := y - ys[j]
		dz := z - zs[j]
		d2 := dx * dx
		d2 += dy * dy
		d2 += dz * dz
		if d2 <= r2 {
			hits = append(hits, int32(j))
		}
	}
	return hits
}

// within reports whether two AoS points lie at Euclidean distance <= r —
// the scalar reference predicate the SoA kernels mirror, kept for the
// brute-force oracles.
func (g *RGG) within(p, q []float64) bool {
	var d2 float64
	for d := 0; d < g.dim; d++ {
		diff := p[d] - q[d]
		d2 += diff * diff
	}
	return d2 <= g.r2
}
