package model

import (
	"math"
	"testing"

	"kronvalid/internal/stream"
)

// bruteForceRHG regenerates every cell's points through the Sample
// phase and compares all pairs with the exact hyperbolic-distance
// predicate — the structure-oblivious oracle for the band/window
// enumeration.
func bruteForceRHG(g *RHG) []stream.Arc {
	var pts []float64
	for c := 0; c < g.CellCount(); c++ {
		s := g.samplePoints(c, nil)
		for i := 0; i < s.n; i++ {
			pts = append(pts, s.xs[i], s.ys[i], s.zs[i], s.ws[i])
		}
	}
	n := int64(len(pts)) / 4
	var out []stream.Arc
	for u := int64(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.within(pts[u*4:u*4+4], pts[v*4:v*4+4]) {
				out = append(out, stream.Arc{U: u, V: v})
			}
		}
	}
	return out
}

// TestRHGMatchesBruteForce is the slow all-pairs oracle: the streamed
// band/window output (own cell + regenerated forward partners, each
// undirected pair emitted once by the smaller endpoint's cell) must
// equal the all-pairs sweep over the regenerated point set exactly —
// any window too narrow, duplicate emission, or id misalignment shows
// up here.
func TestRHGMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		n      int64
		deg    float64
		gamma  float64
		chunks int
	}{
		{700, 8, 2.5, 0},
		{500, 6, 2.1, 5},  // heavy-tailed: hub band traffic dominates
		{900, 4, 3.5, 7},  // sparse, many bands
		{300, 20, 2.8, 3}, // dense disk, wide windows
	} {
		g, err := NewRHG(tc.n, tc.deg, tc.gamma, 77, tc.chunks)
		if err != nil {
			t.Fatalf("NewRHG(%v): %v", tc, err)
		}
		want := bruteForceRHG(g)
		got := Collect(g)
		if len(want) == 0 {
			t.Fatalf("%s: oracle found no edges, test is vacuous", g.Name())
		}
		if !sameArcs(want, got) {
			t.Errorf("%s: streamed %d arcs != brute force %d arcs", g.Name(), len(got), len(want))
		}
	}
}

// TestRHGCellCountsExact checks the Sample phase's splitting tree: the
// per-cell occupancies must sum to n exactly and the prefix offsets
// must match the running sum (ids are cell-major).
func TestRHGCellCountsExact(t *testing.T) {
	g, err := NewRHG(20000, 8, 2.7, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	var run int64
	for c := 0; c < g.CellCount(); c++ {
		if got := g.tree.prefix(c); got != run {
			t.Fatalf("prefix(%d) = %d, running sum %d", c, got, run)
		}
		cnt := g.CellVertices(c)
		total += cnt
		run += cnt
	}
	if total != g.n {
		t.Fatalf("cell occupancies sum to %d, want exactly %d", total, g.n)
	}
	// Bands must be outermost-first with strictly shrinking radii down
	// to zero — the ordering the forward-window argument relies on.
	if g.bands[0].rHi != g.R {
		t.Fatalf("band 0 outer edge %v, want disk radius %v", g.bands[0].rHi, g.R)
	}
	for b := 1; b < len(g.bands); b++ {
		if g.bands[b].rHi != g.bands[b-1].rLo {
			t.Fatalf("band %d does not tile: rHi %v != previous rLo %v", b, g.bands[b].rHi, g.bands[b-1].rLo)
		}
	}
	if last := g.bands[len(g.bands)-1]; last.rLo != 0 {
		t.Fatalf("innermost band starts at %v, want 0", last.rLo)
	}
}

// TestRHGMeanDegree checks the Krioukov radius condition end to end:
// the realized mean degree must track the target d̄ the disk radius was
// solved for. The n-finite correction is O(1/log n), so the band is
// generous but still catches any mis-scaled radius or threshold.
func TestRHGMeanDegree(t *testing.T) {
	g, err := NewRHG(30000, 10, 2.9, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	arcs := Collect(g)
	mean := 2 * float64(len(arcs)) / float64(g.n)
	if want := g.TargetDegree(); math.Abs(mean-want) > 0.30*want {
		t.Errorf("mean degree %.3f deviates more than 30%% from target %.3f", mean, want)
	}
}

// TestRHGDependenciesDeclared checks the Enumerate phase's declaration:
// every foreign cell a chunk regenerates is a forward partner of an
// owned cell, lies outside the chunk's own cell run, the list is sorted
// and duplicate-free and complete, and interior chunks actually declare
// some.
func TestRHGDependenciesDeclared(t *testing.T) {
	g, err := NewRHG(3000, 8, 2.6, 11, 8)
	if err != nil {
		t.Fatal(err)
	}
	declaredAny := false
	for c := 0; c < g.Chunks(); c++ {
		lo, hi := g.runs[c][0], g.runs[c][1]
		deps := g.Dependencies(c)
		if len(deps) > 0 {
			declaredAny = true
		}
		forward := map[int64]bool{}
		for cell := lo; cell < hi; cell++ {
			for _, nb := range g.forwardPartners(cell) {
				forward[int64(nb)] = true
			}
		}
		for i, dep := range deps {
			if dep < int64(hi) || dep >= int64(g.CellCount()) {
				t.Fatalf("chunk %d declares dependency %d outside the foreign range [%d,%d)", c, dep, hi, g.CellCount())
			}
			if i > 0 && deps[i-1] >= dep {
				t.Fatalf("chunk %d dependencies not strictly ascending: %v", c, deps)
			}
			if !forward[dep] {
				t.Fatalf("chunk %d declares %d, which no owned cell reads", c, dep)
			}
		}
		declared := map[int64]bool{}
		for _, dep := range deps {
			declared[dep] = true
		}
		for nb := range forward {
			if nb >= int64(hi) && !declared[nb] {
				t.Fatalf("chunk %d reads foreign cell %d but does not declare it", c, nb)
			}
		}
	}
	if !declaredAny {
		t.Fatal("no chunk declared any dependency — test is vacuous")
	}
}

// TestRHGChunkCountDoesNotChangeStream pins the Sample/Enumerate
// separation: bands, cells, occupancies and coordinates are fixed by
// (n, d̄, γ, seed), so the chunk count only groups cells and must NOT
// change a single byte — including across the halo-cache eviction
// threshold, which one-cell chunks exercise differently than one big
// chunk.
func TestRHGChunkCountDoesNotChangeStream(t *testing.T) {
	base, err := NewRHG(2000, 8, 2.7, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := Collect(base)
	for _, chunks := range []int{1, 7, 64, 500} {
		g, err := NewRHG(2000, 8, 2.7, 3, chunks)
		if err != nil {
			t.Fatal(err)
		}
		if !sameArcs(want, Collect(g)) {
			t.Errorf("chunks=%d changed the rhg stream", chunks)
		}
	}
}

// TestRHGRejectsOutOfRange pins the spec-boundary validation.
func TestRHGRejectsOutOfRange(t *testing.T) {
	for _, tc := range []struct {
		n     int64
		deg   float64
		gamma float64
	}{
		{-1, 8, 2.5},
		{maxRHGVertices + 1, 8, 2.5},
		{1000, 0, 2.5},
		{1000, -3, 2.5},
		{1000, math.NaN(), 2.5},
		{1000, math.Inf(1), 2.5},
		{1000, 8, 2}, // γ must exceed 2 (α > 1/2)
		{1000, 8, 1.5},
		{1000, 8, math.NaN()},
		{1000, 8, 65},
		{100, 1e9, 2.5}, // degree too large: disk radius would be <= 0
	} {
		if _, err := NewRHG(tc.n, tc.deg, tc.gamma, 1, 0); err == nil {
			t.Errorf("NewRHG(%d, %v, %v) accepted", tc.n, tc.deg, tc.gamma)
		}
	}
	if _, err := New("rhg:n=100"); err == nil {
		t.Error("rhg without d accepted")
	}
	if _, err := New("rhg:n=100,d=8,deg=9"); err == nil {
		t.Error("unknown rhg parameter accepted")
	}
	// n = 0 is a valid empty graph, not an error.
	g, err := NewRHG(0, 8, 2.5, 1, 0)
	if err != nil {
		t.Fatalf("NewRHG(n=0): %v", err)
	}
	if len(Collect(g)) != 0 {
		t.Error("empty rhg emitted arcs")
	}
}

// TestRHGEvictionDoesNotChangeStream forces the halo cache through its
// eviction path (by shrinking the cap to near zero via a copy of the
// generation loop is impractical, so instead: a 1-cell-per-chunk
// grouping regenerates every partner cell per chunk while the 1-chunk
// grouping caches everything) — byte equality between the two is the
// purity proof for regeneration-on-demand.
func TestRHGEvictionDoesNotChangeStream(t *testing.T) {
	a, err := NewRHG(1200, 10, 2.4, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRHG(1200, 10, 2.4, 9, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !sameArcs(Collect(a), Collect(b)) {
		t.Error("per-cell chunking (regenerate everything) differs from whole-disk chunking (cache everything)")
	}
}
