package model

import (
	"kronvalid/internal/csr"
	"kronvalid/internal/par"
	"kronvalid/internal/stream"
)

// Plan groups a generator's chunks into at most `shards` contiguous
// runs of near-equal expected work — the model-agnostic analogue of the
// Kronecker A-row-block plan. Because shard w simply replays chunks
// lo..hi-1 in order, the concatenation of all shard streams equals the
// concatenation of all chunk streams for every shard count: the
// communication-free byte-identity invariant, inherited rather than
// re-proven per model. Cross-chunk dependence (rgg neighbor cells, ba
// retraced chains) changes nothing here: a chunk *recomputes* foreign
// samples through their pure (seed, id) streams instead of receiving
// them, so replay order and shard grouping still never touch a random
// draw.
type Plan struct {
	g      Generator
	ranges [][2]int // chunk index range per shard
}

// NewPlan builds a plan for the given worker count (0 means
// GOMAXPROCS). The plan never influences a random draw — only which
// worker regenerates which chunks.
func NewPlan(g Generator, shards int) *Plan {
	chunks := g.Chunks()
	if shards <= 0 {
		shards = par.MaxWorkers()
	}
	if shards > chunks {
		shards = chunks
	}
	if shards < 1 {
		shards = 1
	}
	weights := make([]float64, chunks)
	for c := 0; c < chunks; c++ {
		weights[c] = float64(g.ChunkWeight(c))
	}
	ranges := weightedRuns(chunks, shards, func(c int) float64 { return weights[c] }, false)
	return &Plan{g: g, ranges: ranges}
}

// Generator returns the planned generator.
func (pl *Plan) Generator() Generator { return pl.g }

// Name returns the generator's canonical spec string — the stable
// stream.Source identity: feeding it back through New reproduces the
// identical stream, independent of how this plan groups chunks.
func (pl *Plan) Name() string { return pl.g.Name() }

// Shards returns the number of non-empty shards.
func (pl *Plan) Shards() int { return len(pl.ranges) }

// NumVertices returns the generator's vertex count.
func (pl *Plan) NumVertices() int64 { return pl.g.NumVertices() }

// TotalArcs returns the exact total arc count, or -1 when the model
// only fixes it in expectation.
func (pl *Plan) TotalArcs() int64 { return pl.g.NumArcs() }

// VertexRange returns the half-open source-vertex range owned by shard
// w: chunk ranges are contiguous and non-decreasing, so it spans from
// the first chunk's lo to the last chunk's hi.
func (pl *Plan) VertexRange(w int) (lo, hi int64) {
	r := pl.ranges[w]
	lo, _ = pl.g.ChunkRange(r[0])
	_, hi = pl.g.ChunkRange(r[1] - 1)
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// ShardSize returns the exact number of arcs shard w emits, or -1 when
// the model cannot fix per-chunk counts.
func (pl *Plan) ShardSize(w int) int64 {
	r := pl.ranges[w]
	var sum int64
	for c := r[0]; c < r[1]; c++ {
		n := pl.g.ChunkArcs(c)
		if n < 0 {
			return -1
		}
		sum += n
	}
	return sum
}

// EachShardBatch streams shard w — its chunks replayed in index order —
// under the stream.ShardGen emit contract. Any worker can regenerate
// any shard at any time. Caching generators get one fresh worker state
// per call; drivers that execute many shards per worker should prefer
// ShardGenFactory so the state survives across them.
func (pl *Plan) EachShardBatch(w int, buf []stream.Arc, emit func(full []stream.Arc) (next []stream.Arc)) {
	pl.genShard(boundGen(pl.g), w, buf, emit)
}

// genShard replays shard w's chunks through gen under the emit
// contract — the shared body of EachShardBatch and the factory path.
func (pl *Plan) genShard(gen func(int, []stream.Arc, func([]stream.Arc) []stream.Arc), w int, buf []stream.Arc, emit func(full []stream.Arc) (next []stream.Arc)) {
	r := pl.ranges[w]
	if cap(buf) == 0 {
		buf = make([]stream.Arc, 0, stream.DefaultBatchSize)
	}
	cur := buf[:0]
	stopped := false
	wrap := func(full []stream.Arc) []stream.Arc {
		next := emit(full)
		if next == nil {
			stopped = true
			return nil
		}
		cur = next[:0]
		return cur
	}
	for c := r[0]; c < r[1] && !stopped; c++ {
		gen(c, cur, wrap)
	}
}

// ShardGenFactory implements stream.FactorySource: every ShardGen it
// returns carries ONE worker state for its whole lifetime, so when the
// driver hands a worker goroutine many shards, the generator's cell
// cache and splitting-tree lookups persist across all of them — the
// worker-lifetime caching contract. For non-caching generators the
// factory degenerates to plain GenerateChunk.
func (pl *Plan) ShardGenFactory() stream.GenFactory {
	return func() stream.ShardGen {
		gen := boundGen(pl.g)
		return func(w int, buf []stream.Arc, emit func(full []stream.Arc) (next []stream.Arc)) {
			pl.genShard(gen, w, buf, emit)
		}
	}
}

// StreamTo drives every shard through the ordered parallel pipeline
// into one sink: shards generate concurrently, the sink observes the
// canonical stream. Returns the number of arcs consumed.
func (pl *Plan) StreamTo(sink stream.Sink, opts stream.Options) (int64, error) {
	return stream.RunFactory(pl.Shards(), pl.ShardGenFactory(), sink, opts)
}

// CSRSource adapts the plan to the two-pass parallel CSR builder: the
// chunk contract (shard-owned contiguous source ranges, canonical order
// within a shard, replayability) is exactly the builder's contract.
func (pl *Plan) CSRSource() csr.Source {
	return csr.Source{
		NumVertices: pl.g.NumVertices(),
		NumArcs:     pl.g.NumArcs(),
		Shards:      pl.Shards(),
		VertexRange: pl.VertexRange,
		Generate:    pl.EachShardBatch,
	}
}

// BuildCSR materializes the model's graph with the parallel two-pass
// builder (count → prefix-sum → scatter), regenerating each shard twice
// instead of buffering an edge list. The result is identical for every
// worker count.
func (pl *Plan) BuildCSR(opts stream.Options) (*csr.Graph, error) {
	return csr.Build(pl.CSRSource(), opts)
}
