package truss

import (
	"testing"
	"testing/quick"

	"kronvalid/internal/graph"
	"kronvalid/internal/rng"
)

func clique(n int) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
		}
	}
	return graph.FromEdges(n, edges, true)
}

// hubCycle is the paper's Ex. 2 graph: a 4-cycle (vertices 1..4) plus a
// hub (vertex 0) connected to all cycle vertices. 5 vertices, 8 edges,
// 4 triangles.
func hubCycle() *graph.Graph {
	return graph.FromEdges(5, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}, // hub edges
		{U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 1}, // cycle edges
	}, true)
}

func randomUndirected(g *rng.Xoshiro256, n int, avgDeg float64) *graph.Graph {
	var edges []graph.Edge
	target := int(avgDeg * float64(n) / 2)
	for i := 0; i < target; i++ {
		u, v := int32(g.Intn(n)), int32(g.Intn(n))
		if u != v {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	return graph.FromEdges(n, edges, true)
}

func TestCliqueTrussness(t *testing.T) {
	// Every edge of K_n has trussness n: each edge closes n-2 triangles.
	for _, n := range []int{3, 4, 5, 7} {
		d := Decompose(clique(n))
		if d.MaxK != n {
			t.Errorf("K_%d MaxK = %d, want %d", n, d.MaxK, n)
		}
		for _, e := range d.KTrussEdges(3) {
			if got := d.EdgeTruss(e.U, e.V); got != n {
				t.Errorf("K_%d edge (%d,%d) truss = %d, want %d", n, e.U, e.V, got, n)
			}
		}
		if len(d.KTrussEdges(n)) != n*(n-1)/2 {
			t.Errorf("K_%d: |T^(%d)| = %d", n, n, len(d.KTrussEdges(n)))
		}
		if len(d.KTrussEdges(n+1)) != 0 {
			t.Errorf("K_%d has a %d-truss", n, n+1)
		}
	}
}

func TestTriangleFreeTrussness(t *testing.T) {
	// C_6: no triangles, every edge trussness 2, no 3-truss.
	c6 := graph.FromEdges(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 0}}, true)
	d := Decompose(c6)
	if d.MaxK != 2 {
		t.Errorf("C_6 MaxK = %d, want 2", d.MaxK)
	}
	for i := 0; i < 6; i++ {
		u, v := int32(i), int32((i+1)%6)
		if d.EdgeTruss(u, v) != 2 {
			t.Errorf("C_6 edge (%d,%d) truss = %d, want 2", u, v, d.EdgeTruss(u, v))
		}
	}
	if len(d.KTrussEdges(3)) != 0 {
		t.Error("C_6 has a 3-truss")
	}
}

func TestHubCycleTrussness(t *testing.T) {
	// Paper Ex. 2: all 8 edges are in the 3-truss, none in the 4-truss.
	d := Decompose(hubCycle())
	if d.MaxK != 3 {
		t.Fatalf("hub-cycle MaxK = %d, want 3", d.MaxK)
	}
	if got := len(d.KTrussEdges(3)); got != 8 {
		t.Errorf("|T^(3)| = %d, want 8", got)
	}
	if got := len(d.KTrussEdges(4)); got != 0 {
		t.Errorf("|T^(4)| = %d, want 0", got)
	}
}

func TestDecomposeMatchesNaive(t *testing.T) {
	g := rng.New(61)
	for trial := 0; trial < 20; trial++ {
		gr := randomUndirected(g, 4+g.Intn(30), 5)
		fast := Decompose(gr)
		slow := NaiveDecompose(gr)
		if fast.MaxK != slow.MaxK {
			t.Fatalf("trial %d: MaxK %d vs naive %d", trial, fast.MaxK, slow.MaxK)
		}
		if !fast.Matrix().Equal(slow.Matrix()) {
			t.Fatalf("trial %d: trussness matrices differ:\n%v\nvs\n%v",
				trial, fast.Matrix(), slow.Matrix())
		}
	}
}

func TestQuickDecomposeMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		gr := randomUndirected(g, 4+g.Intn(18), 4)
		return Decompose(gr).Matrix().Equal(NaiveDecompose(gr).Matrix())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestKTrussIsSubgraphProperty(t *testing.T) {
	// Every edge of the k-truss participates in >= k-2 triangles inside
	// the k-truss subgraph (Def. 7 verified directly).
	g := rng.New(62)
	for trial := 0; trial < 10; trial++ {
		gr := randomUndirected(g, 30, 8)
		d := Decompose(gr)
		for k := 3; k <= d.MaxK; k++ {
			edges := d.KTrussEdges(k)
			sub := graph.FromEdges(gr.NumVertices(), edges, true)
			for _, e := range edges {
				// Count common neighbors within sub.
				count := 0
				for _, w := range sub.Neighbors(e.U) {
					if sub.HasEdge(e.V, w) {
						count++
					}
				}
				if count < k-2 {
					t.Fatalf("edge (%d,%d) has %d triangles in %d-truss", e.U, e.V, count, k)
				}
			}
		}
	}
}

func TestTrussnessMonotone(t *testing.T) {
	// T^(k+1) ⊆ T^(k).
	g := rng.New(63)
	gr := randomUndirected(g, 40, 8)
	d := Decompose(gr)
	for k := 3; k < d.MaxK; k++ {
		inK := map[graph.Edge]bool{}
		for _, e := range d.KTrussEdges(k) {
			inK[e] = true
		}
		for _, e := range d.KTrussEdges(k + 1) {
			if !inK[e] {
				t.Fatalf("edge %v in %d-truss but not %d-truss", e, k+1, k)
			}
		}
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	a := Decompose(clique(4))
	b := Decompose(clique(4).WithAllLoops())
	if !a.Matrix().Equal(b.Matrix()) || a.MaxK != b.MaxK {
		t.Error("self loops changed truss decomposition")
	}
}

func TestEdgeTrussMissingEdge(t *testing.T) {
	d := Decompose(clique(4))
	if d.EdgeTruss(0, 0) != 0 {
		t.Error("loop edge should report 0")
	}
	d2 := Decompose(graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}}, true))
	if d2.EdgeTruss(2, 3) != 0 {
		t.Error("absent edge should report 0")
	}
	if d2.EdgeTruss(0, 1) != 2 {
		t.Error("lone edge should have trussness 2")
	}
}

func TestEmptyGraph(t *testing.T) {
	d := Decompose(graph.FromEdges(5, nil, true))
	if d.NumEdges() != 0 || d.MaxK != 0 {
		t.Errorf("empty graph: edges=%d MaxK=%d", d.NumEdges(), d.MaxK)
	}
}

func TestTrussSizes(t *testing.T) {
	d := Decompose(clique(5))
	sizes := d.TrussSizes()
	for k := 3; k <= 5; k++ {
		if sizes[k] != 10 {
			t.Errorf("K_5 |T^(%d)| = %d, want 10", k, sizes[k])
		}
	}
}

func BenchmarkDecompose(b *testing.B) {
	g := rng.New(1)
	gr := randomUndirected(g, 5000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Decompose(gr)
	}
}
