// Package truss implements κ-truss decomposition of undirected graphs
// (Def. 7): the trussness of an edge is the largest κ such that the edge
// belongs to a κ-truss, a maximal subgraph in which every edge closes at
// least κ-2 triangles inside the subgraph.
//
// Decompose uses the standard support-peeling algorithm (bucket queue over
// edge supports, analogous to k-core peeling), which runs in
// O(Σ min(deg(u),deg(v))) after triangle counting. NaiveDecompose follows
// the paper's "simple (yet inefficient) algorithm" verbatim — recompute Δ,
// delete weak edges, repeat — and serves as the reference implementation
// in tests.
package truss

import (
	"sort"

	"kronvalid/internal/graph"
	"kronvalid/internal/sparse"
	"kronvalid/internal/triangle"
)

// Decomposition is the result of a truss decomposition.
type Decomposition struct {
	n     int
	us    []int32 // edge endpoints, u < v
	vs    []int32
	truss []int32 // trussness per edge, >= 2
	// MaxK is the largest κ with a non-empty κ-truss (2 when the graph
	// is triangle-free, 0 when it has no edges).
	MaxK int
}

// NumEdges returns the number of undirected non-loop edges considered.
func (d *Decomposition) NumEdges() int { return len(d.us) }

// EdgeTruss returns the trussness of edge (u,v) (either orientation), or
// 0 if the edge does not exist.
func (d *Decomposition) EdgeTruss(u, v int32) int {
	if u > v {
		u, v = v, u
	}
	// Binary search over the sorted (us, vs) pairs.
	lo, hi := 0, len(d.us)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.us[mid] < u || (d.us[mid] == u && d.vs[mid] < v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.us) && d.us[lo] == u && d.vs[lo] == v {
		return int(d.truss[lo])
	}
	return 0
}

// Matrix returns the symmetric trussness matrix: entry (u,v) is the
// trussness of edge (u,v).
func (d *Decomposition) Matrix() *sparse.Matrix {
	ts := make([]sparse.Triplet, 0, 2*len(d.us))
	for i := range d.us {
		u, v, k := int(d.us[i]), int(d.vs[i]), int64(d.truss[i])
		ts = append(ts, sparse.Triplet{Row: u, Col: v, Val: k}, sparse.Triplet{Row: v, Col: u, Val: k})
	}
	return sparse.FromTriplets(d.n, d.n, ts)
}

// KTrussEdges returns the edges (u < v) with trussness >= k, i.e. the
// paper's T^(k) edge set.
func (d *Decomposition) KTrussEdges(k int) []graph.Edge {
	var out []graph.Edge
	for i := range d.us {
		if int(d.truss[i]) >= k {
			out = append(out, graph.Edge{U: d.us[i], V: d.vs[i]})
		}
	}
	return out
}

// TrussSizes returns a map κ -> |T^(κ)| for κ = 3..MaxK.
func (d *Decomposition) TrussSizes() map[int]int {
	out := map[int]int{}
	for k := 3; k <= d.MaxK; k++ {
		out[k] = len(d.KTrussEdges(k))
	}
	return out
}

// Decompose computes the truss decomposition of the undirected version of
// g (self loops ignored) by support peeling.
func Decompose(g *graph.Graph) *Decomposition {
	work := g
	if !work.IsSymmetric() {
		work = work.Undirected()
	}
	work = work.WithoutLoops()
	n := work.NumVertices()

	// Edge ids for u < v, held in an array aligned with the CSR arc
	// order instead of a hash map: arcEdge[arcIndex(u,v)] is the edge id
	// of the undirected edge {u,v}. Lookups on the peeling hot path are
	// then a binary search in a sorted neighbor row plus one array load.
	var us, vs []int32
	arcEdge := make([]int32, work.NumArcs())
	arcIdx := int64(0)
	work.EachArc(func(u, v int32) bool {
		if u < v {
			arcEdge[arcIdx] = int32(len(us))
			us = append(us, u)
			vs = append(vs, v)
		} else {
			arcEdge[arcIdx] = arcEdge[work.ArcIndex(v, u)]
		}
		arcIdx++
		return true
	})
	edgeOf := func(u, v int32) int32 {
		// The callers only probe pairs known to be edges of work.
		return arcEdge[work.ArcIndex(u, v)]
	}
	m := len(us)
	d := &Decomposition{n: n, us: us, vs: vs, truss: make([]int32, m)}
	if m == 0 {
		return d
	}

	// Initial supports from the triangle engine.
	support := make([]int32, m)
	tri := triangle.Count(work)
	tri.EdgeDelta.Each(func(r, c int, v int64) bool {
		if r < c {
			support[edgeOf(int32(r), int32(c))] = int32(v)
		}
		return true
	})

	// Bucket queue over supports.
	maxSup := int32(0)
	for _, s := range support {
		if s > maxSup {
			maxSup = s
		}
	}
	// buckets[s] holds edge ids with current support s; pos/bucketOf track
	// positions for O(1) decrement moves.
	buckets := make([][]int32, maxSup+1)
	posIn := make([]int32, m)
	bucketOf := make([]int32, m)
	for e := 0; e < m; e++ {
		s := support[e]
		posIn[e] = int32(len(buckets[s]))
		bucketOf[e] = s
		buckets[s] = append(buckets[s], int32(e))
	}
	moveDown := func(e int32) {
		s := bucketOf[e]
		b := buckets[s]
		last := b[len(b)-1]
		b[posIn[e]] = last
		posIn[last] = posIn[e]
		buckets[s] = b[:len(b)-1]
		s--
		bucketOf[e] = s
		posIn[e] = int32(len(buckets[s]))
		buckets[s] = append(buckets[s], e)
	}

	alive := make([]bool, m)
	for i := range alive {
		alive[i] = true
	}
	removed := 0
	k := int32(2)
	maxK := 2
	for removed < m {
		// Peel all edges with support <= k-2.
		progress := true
		for progress {
			progress = false
			for s := int32(0); s <= k-2 && s <= maxSup; s++ {
				for len(buckets[s]) > 0 {
					e := buckets[s][len(buckets[s])-1]
					buckets[s] = buckets[s][:len(buckets[s])-1]
					if !alive[e] {
						continue
					}
					alive[e] = false
					removed++
					d.truss[e] = k
					progress = true
					// Decrement supports of edges closing triangles with e.
					u, v := us[e], vs[e]
					nu, nv := work.Neighbors(u), work.Neighbors(v)
					i, j := 0, 0
					for i < len(nu) && j < len(nv) {
						switch {
						case nu[i] < nv[j]:
							i++
						case nv[j] < nu[i]:
							j++
						default:
							w := nu[i]
							e1 := edgeOf(u, w)
							e2 := edgeOf(v, w)
							if alive[e1] && alive[e2] {
								if bucketOf[e1] > 0 {
									moveDown(e1)
								}
								if bucketOf[e2] > 0 {
									moveDown(e2)
								}
							}
							i++
							j++
						}
					}
				}
			}
		}
		if removed < m {
			k++
			if int(k) > maxK {
				maxK = int(k)
			}
		}
	}
	// An edge with truss k belongs to the k-truss; MaxK is the largest
	// trussness observed (>= 3 only if some edge closes a triangle).
	maxK = 2
	for _, t := range d.truss {
		if int(t) > maxK {
			maxK = int(t)
		}
	}
	d.MaxK = maxK
	sortDecomposition(d)
	return d
}

// NaiveDecompose implements the paper's Def. 7 algorithm literally:
// for κ = 3, 4, ...: recompute Δ on the surviving subgraph, remove every
// edge with fewer than κ-2 triangles, repeat until stable; surviving edges
// are T^(κ). Quadratic-ish, used as the test oracle.
func NaiveDecompose(g *graph.Graph) *Decomposition {
	work := g
	if !work.IsSymmetric() {
		work = work.Undirected()
	}
	work = work.WithoutLoops()
	n := work.NumVertices()

	d := &Decomposition{n: n}
	current := work
	type key = int64
	mkKey := func(u, v int32) key { return int64(u)<<32 | int64(v) }
	trussOf := map[key]int32{}
	work.EachEdgeUndirected(func(u, v int32) bool {
		trussOf[mkKey(u, v)] = 2
		return true
	})

	for k := int32(3); current.NumArcs() > 0; k++ {
		for {
			delta := triangle.Count(current).EdgeDelta
			var keep []graph.Edge
			removedAny := false
			current.EachEdgeUndirected(func(u, v int32) bool {
				if delta.At(int(u), int(v)) >= int64(k-2) {
					keep = append(keep, graph.Edge{U: u, V: v})
				} else {
					removedAny = true
				}
				return true
			})
			current = graph.FromEdges(n, keep, true)
			if !removedAny {
				break
			}
		}
		// Remaining edges are in the k-truss.
		current.EachEdgeUndirected(func(u, v int32) bool {
			trussOf[mkKey(u, v)] = k
			return true
		})
	}
	work.EachEdgeUndirected(func(u, v int32) bool {
		d.us = append(d.us, u)
		d.vs = append(d.vs, v)
		d.truss = append(d.truss, trussOf[mkKey(u, v)])
		return true
	})
	if len(d.truss) > 0 {
		d.MaxK = 2
		for _, t := range d.truss {
			if int(t) > d.MaxK {
				d.MaxK = int(t)
			}
		}
	}
	sortDecomposition(d)
	return d
}

func sortDecomposition(d *Decomposition) {
	idx := make([]int, len(d.us))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if d.us[ia] != d.us[ib] {
			return d.us[ia] < d.us[ib]
		}
		return d.vs[ia] < d.vs[ib]
	})
	us := make([]int32, len(idx))
	vs := make([]int32, len(idx))
	tr := make([]int32, len(idx))
	for i, j := range idx {
		us[i], vs[i], tr[i] = d.us[j], d.vs[j], d.truss[j]
	}
	d.us, d.vs, d.truss = us, vs, tr
}
