package sparse

// Dense is a tiny row-major dense integer matrix used exclusively as a
// brute-force reference implementation in tests: every sparse kernel is
// validated against the obvious O(n^3) dense computation on small inputs.
type Dense struct {
	R, C int
	V    []int64 // row-major, len R*C
}

// NewDense returns a zeroed r x c dense matrix.
func NewDense(r, c int) *Dense {
	return &Dense{R: r, C: c, V: make([]int64, r*c)}
}

// DenseFrom converts a sparse matrix to dense.
func DenseFrom(m *Matrix) *Dense {
	d := NewDense(m.Rows(), m.Cols())
	m.Each(func(r, c int, v int64) bool {
		d.V[r*d.C+c] = v
		return true
	})
	return d
}

// At returns entry (r, c).
func (d *Dense) At(r, c int) int64 { return d.V[r*d.C+c] }

// Set assigns entry (r, c).
func (d *Dense) Set(r, c int, v int64) { d.V[r*d.C+c] = v }

// Sparse converts back to a sparse matrix.
func (d *Dense) Sparse() *Matrix {
	var ts []Triplet
	for r := 0; r < d.R; r++ {
		for c := 0; c < d.C; c++ {
			if v := d.At(r, c); v != 0 {
				ts = append(ts, Triplet{r, c, v})
			}
		}
	}
	return FromTriplets(d.R, d.C, ts)
}

// Mul returns the naive O(R*C*K) product d·e.
func (d *Dense) Mul(e *Dense) *Dense {
	if d.C != e.R {
		panic("sparse: dense Mul dimension mismatch")
	}
	out := NewDense(d.R, e.C)
	for r := 0; r < d.R; r++ {
		for k := 0; k < d.C; k++ {
			dv := d.At(r, k)
			if dv == 0 {
				continue
			}
			for c := 0; c < e.C; c++ {
				out.V[r*out.C+c] += dv * e.At(k, c)
			}
		}
	}
	return out
}

// Add returns d + e.
func (d *Dense) Add(e *Dense) *Dense {
	if d.R != e.R || d.C != e.C {
		panic("sparse: dense Add dimension mismatch")
	}
	out := NewDense(d.R, d.C)
	for i := range d.V {
		out.V[i] = d.V[i] + e.V[i]
	}
	return out
}

// Sub returns d - e.
func (d *Dense) Sub(e *Dense) *Dense {
	if d.R != e.R || d.C != e.C {
		panic("sparse: dense Sub dimension mismatch")
	}
	out := NewDense(d.R, d.C)
	for i := range d.V {
		out.V[i] = d.V[i] - e.V[i]
	}
	return out
}

// Hadamard returns the elementwise product.
func (d *Dense) Hadamard(e *Dense) *Dense {
	if d.R != e.R || d.C != e.C {
		panic("sparse: dense Hadamard dimension mismatch")
	}
	out := NewDense(d.R, d.C)
	for i := range d.V {
		out.V[i] = d.V[i] * e.V[i]
	}
	return out
}

// T returns the transpose.
func (d *Dense) T() *Dense {
	out := NewDense(d.C, d.R)
	for r := 0; r < d.R; r++ {
		for c := 0; c < d.C; c++ {
			out.Set(c, r, d.At(r, c))
		}
	}
	return out
}

// Kron returns the dense Kronecker product d ⊗ e.
func (d *Dense) Kron(e *Dense) *Dense {
	out := NewDense(d.R*e.R, d.C*e.C)
	for i := 0; i < d.R; i++ {
		for j := 0; j < d.C; j++ {
			a := d.At(i, j)
			if a == 0 {
				continue
			}
			for k := 0; k < e.R; k++ {
				for l := 0; l < e.C; l++ {
					out.Set(i*e.R+k, j*e.C+l, a*e.At(k, l))
				}
			}
		}
	}
	return out
}

// Diag returns the diagonal vector of a square dense matrix.
func (d *Dense) Diag() []int64 {
	if d.R != d.C {
		panic("sparse: dense Diag of non-square matrix")
	}
	out := make([]int64, d.R)
	for i := range out {
		out[i] = d.At(i, i)
	}
	return out
}

// Equal reports elementwise equality.
func (d *Dense) Equal(e *Dense) bool {
	if d.R != e.R || d.C != e.C {
		return false
	}
	for i := range d.V {
		if d.V[i] != e.V[i] {
			return false
		}
	}
	return true
}
