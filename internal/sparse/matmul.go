package sparse

import (
	"fmt"

	"kronvalid/internal/par"
)

// Mul returns the matrix product m·n using a row-wise Gustavson SpGEMM
// with a dense sparse-accumulator (SPA) per worker, parallelized over
// block rows. Complexity is O(sum over rows of flops) with O(cols)
// workspace per worker.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.cols != n.rows {
		panic(fmt.Sprintf("sparse: Mul dimension mismatch %dx%d · %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	outRows := m.rows
	outCols := n.cols

	// Pass structure: per-row results, assembled at the end. Each worker
	// owns a contiguous block of rows and a private SPA.
	type rowResult struct {
		cols []int32
		vals []int64
	}
	results := make([]rowResult, outRows)

	par.ForBlocked(int64(outRows), func(lo, hi int64) {
		acc := make([]int64, outCols)  // value accumulator
		mark := make([]int64, outCols) // generation marks: mark[c]==gen means acc[c] live
		list := make([]int32, 0, 1024) // touched columns, unsorted
		gen := int64(0)
		for r := lo; r < hi; r++ {
			gen++
			list = list[:0]
			for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
				j := m.colIdx[k]
				mv := m.val[k]
				for kk := n.rowPtr[j]; kk < n.rowPtr[j+1]; kk++ {
					c := n.colIdx[kk]
					if mark[c] != gen {
						mark[c] = gen
						acc[c] = 0
						list = append(list, c)
					}
					acc[c] += mv * n.val[kk]
				}
			}
			sortInt32(list)
			cols := make([]int32, 0, len(list))
			vals := make([]int64, 0, len(list))
			for _, c := range list {
				if v := acc[c]; v != 0 {
					cols = append(cols, c)
					vals = append(vals, v)
				}
			}
			results[r] = rowResult{cols, vals}
		}
	})

	rowPtr := make([]int64, outRows+1)
	for r := 0; r < outRows; r++ {
		rowPtr[r+1] = rowPtr[r] + int64(len(results[r].cols))
	}
	nnz := rowPtr[outRows]
	colIdx := make([]int32, nnz)
	val := make([]int64, nnz)
	par.ForBlocked(int64(outRows), func(lo, hi int64) {
		for r := lo; r < hi; r++ {
			copy(colIdx[rowPtr[r]:rowPtr[r+1]], results[r].cols)
			copy(val[rowPtr[r]:rowPtr[r+1]], results[r].vals)
		}
	})
	return &Matrix{rows: outRows, cols: outCols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// MulVec returns m·v for a dense vector v.
func (m *Matrix) MulVec(v []int64) []int64 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec length %d, want %d", len(v), m.cols))
	}
	out := make([]int64, m.rows)
	par.ForBlocked(int64(m.rows), func(lo, hi int64) {
		for r := lo; r < hi; r++ {
			var s int64
			for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
				s += m.val[k] * v[m.colIdx[k]]
			}
			out[r] = s
		}
	})
	return out
}

// DiagOfProduct returns diag(m·n) without forming the product: entry r is
// the dot product of row r of m with column r of n, computed as a
// merge-join of row r of m against rows of n (via n's transpose would be
// cheaper for repeated use; this direct form is O(nnz(m) * avg row of n)
// worst case but only touches needed rows).
func DiagOfProduct(m, n *Matrix) []int64 {
	if m.cols != n.rows || m.rows != n.cols {
		panic("sparse: DiagOfProduct needs m (r x c) and n (c x r)")
	}
	nt := n.T()
	out := make([]int64, m.rows)
	par.ForBlocked(int64(m.rows), func(lo, hi int64) {
		for r := lo; r < hi; r++ {
			mc, mv := m.Row(int(r))
			nc, nv := nt.Row(int(r))
			var s int64
			i, j := 0, 0
			for i < len(mc) && j < len(nc) {
				switch {
				case mc[i] < nc[j]:
					i++
				case nc[j] < mc[i]:
					j++
				default:
					s += mv[i] * nv[j]
					i++
					j++
				}
			}
			out[r] = s
		}
	})
	return out
}

// Diag3 returns diag(A·B·C) for square same-size matrices without forming
// the full triple product: it forms P = A·B (one SpGEMM) and then takes
// diag(P·C) by merge-join. This is the building block for the paper's
// diag(A³), diag(A_d A_r A_d^t), etc.
func Diag3(a, b, c *Matrix) []int64 {
	if !a.IsSquare() || !b.IsSquare() || !c.IsSquare() || a.rows != b.rows || b.rows != c.rows {
		panic("sparse: Diag3 needs three square matrices of equal size")
	}
	return DiagOfProduct(a.Mul(b), c)
}

// sortInt32 sorts a small slice of int32 in increasing order. Rows of
// sparse products are typically short; insertion sort wins for the common
// case and falls back to a bottom-up merge via pdqsort-style quicksort for
// longer rows.
func sortInt32(s []int32) {
	if len(s) < 24 {
		for i := 1; i < len(s); i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && s[j] > v {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		return
	}
	quickInt32(s)
}

func quickInt32(s []int32) {
	for len(s) > 24 {
		// median-of-three pivot
		m := len(s) / 2
		if s[0] > s[m] {
			s[0], s[m] = s[m], s[0]
		}
		if s[0] > s[len(s)-1] {
			s[0], s[len(s)-1] = s[len(s)-1], s[0]
		}
		if s[m] > s[len(s)-1] {
			s[m], s[len(s)-1] = s[len(s)-1], s[m]
		}
		pivot := s[m]
		i, j := 0, len(s)-1
		for i <= j {
			for s[i] < pivot {
				i++
			}
			for s[j] > pivot {
				j--
			}
			if i <= j {
				s[i], s[j] = s[j], s[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half; loop on the larger.
		if j+1 < len(s)-i {
			quickInt32(s[:j+1])
			s = s[i:]
		} else {
			quickInt32(s[i:])
			s = s[:j+1]
		}
	}
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
