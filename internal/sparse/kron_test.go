package sparse

import (
	"testing"
	"testing/quick"

	"kronvalid/internal/rng"
)

func TestKronAgainstDense(t *testing.T) {
	g := rng.New(31)
	for trial := 0; trial < 30; trial++ {
		a := randomMatrix(g, 1+g.Intn(8), 1+g.Intn(8), 0.4, 4)
		b := randomMatrix(g, 1+g.Intn(8), 1+g.Intn(8), 0.4, 4)
		want := DenseFrom(a).Kron(DenseFrom(b)).Sparse()
		if got := Kron(a, b); !got.Equal(want) {
			t.Fatalf("Kron mismatch:\n%v\nvs\n%v", got, want)
		}
	}
}

func TestKronAt(t *testing.T) {
	g := rng.New(32)
	a := randomMatrix(g, 6, 7, 0.4, 4)
	b := randomMatrix(g, 5, 4, 0.4, 4)
	full := Kron(a, b)
	for p := int64(0); p < int64(full.Rows()); p++ {
		for q := int64(0); q < int64(full.Cols()); q++ {
			if got, want := KronAt(a, b, p, q), full.At(int(p), int(q)); got != want {
				t.Fatalf("KronAt(%d,%d) = %d, want %d", p, q, got, want)
			}
		}
	}
}

// Prop. 1(c): (A1 ⊗ A2)^t = A1^t ⊗ A2^t.
func TestKronTransposition(t *testing.T) {
	g := rng.New(33)
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(g, 1+g.Intn(7), 1+g.Intn(7), 0.4, 3)
		b := randomMatrix(g, 1+g.Intn(7), 1+g.Intn(7), 0.4, 3)
		if !Kron(a, b).T().Equal(Kron(a.T(), b.T())) {
			t.Fatal("(A⊗B)^t != A^t⊗B^t")
		}
	}
}

// Prop. 1(d): (A1 ⊗ A2)(A3 ⊗ A4) = (A1·A3) ⊗ (A2·A4).
func TestKronMixedProduct(t *testing.T) {
	g := rng.New(34)
	for trial := 0; trial < 20; trial++ {
		m1, n1 := 1+g.Intn(5), 1+g.Intn(5)
		m2, n2 := 1+g.Intn(5), 1+g.Intn(5)
		k1, k2 := 1+g.Intn(5), 1+g.Intn(5)
		a1 := randomMatrix(g, m1, n1, 0.5, 3)
		a2 := randomMatrix(g, m2, n2, 0.5, 3)
		a3 := randomMatrix(g, n1, k1, 0.5, 3)
		a4 := randomMatrix(g, n2, k2, 0.5, 3)
		lhs := Kron(a1, a2).Mul(Kron(a3, a4))
		rhs := Kron(a1.Mul(a3), a2.Mul(a4))
		if !lhs.Equal(rhs) {
			t.Fatal("mixed-product property failed")
		}
	}
}

// Prop. 1(b): distributivity of ⊗ over +.
func TestKronDistributivity(t *testing.T) {
	g := rng.New(35)
	for trial := 0; trial < 20; trial++ {
		r, c := 1+g.Intn(6), 1+g.Intn(6)
		a1 := randomMatrix(g, r, c, 0.4, 3)
		a2 := randomMatrix(g, r, c, 0.4, 3)
		a3 := randomMatrix(g, 1+g.Intn(6), 1+g.Intn(6), 0.4, 3)
		if !Kron(a1.Add(a2), a3).Equal(Kron(a1, a3).Add(Kron(a2, a3))) {
			t.Fatal("(A1+A2)⊗A3 != A1⊗A3 + A2⊗A3")
		}
		if !Kron(a3, a1.Add(a2)).Equal(Kron(a3, a1).Add(Kron(a3, a2))) {
			t.Fatal("A3⊗(A1+A2) != A3⊗A1 + A3⊗A2")
		}
	}
}

// Prop. 2(e): (A1 ⊗ A2) ∘ (A3 ⊗ A4) = (A1 ∘ A3) ⊗ (A2 ∘ A4).
func TestHadamardKronDistributivity(t *testing.T) {
	g := rng.New(36)
	for trial := 0; trial < 20; trial++ {
		r1, c1 := 1+g.Intn(6), 1+g.Intn(6)
		r2, c2 := 1+g.Intn(6), 1+g.Intn(6)
		a1 := randomMatrix(g, r1, c1, 0.5, 3)
		a3 := randomMatrix(g, r1, c1, 0.5, 3)
		a2 := randomMatrix(g, r2, c2, 0.5, 3)
		a4 := randomMatrix(g, r2, c2, 0.5, 3)
		lhs := Kron(a1, a2).Hadamard(Kron(a3, a4))
		rhs := Kron(a1.Hadamard(a3), a2.Hadamard(a4))
		if !lhs.Equal(rhs) {
			t.Fatal("Hadamard-Kronecker distributivity failed")
		}
	}
}

// Prop. 2(f): diag(A1 ⊗ A2) = diag(A1) ⊗ diag(A2).
func TestDiagKronDistributivity(t *testing.T) {
	g := rng.New(37)
	for trial := 0; trial < 20; trial++ {
		n1, n2 := 1+g.Intn(8), 1+g.Intn(8)
		a1 := randomMatrix(g, n1, n1, 0.5, 3)
		a2 := randomMatrix(g, n2, n2, 0.5, 3)
		if !EqualVec(Kron(a1, a2).Diag(), KronVec(a1.Diag(), a2.Diag())) {
			t.Fatal("diag(A1⊗A2) != diag(A1)⊗diag(A2)")
		}
	}
}

// Prop. 1(a): scalar multiplication compatibility.
func TestKronScalar(t *testing.T) {
	g := rng.New(38)
	a := randomMatrix(g, 4, 4, 0.5, 3)
	b := randomMatrix(g, 3, 3, 0.5, 3)
	if !Kron(a, b).Scale(6).Equal(Kron(a.Scale(2), b.Scale(3))) {
		t.Fatal("(6)(A⊗B) != (2A)⊗(3B)")
	}
}

func TestQuickKronVecMatchesMatrixKron(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		n1, n2 := 1+g.Intn(6), 1+g.Intn(6)
		u := make([]int64, n1)
		v := make([]int64, n2)
		for i := range u {
			u[i] = g.Int64n(9) - 4
		}
		for i := range v {
			v[i] = g.Int64n(9) - 4
		}
		// u ⊗ v as column vectors == Kron of n x 1 matrices.
		um := FromDense(colVec(u))
		vm := FromDense(colVec(v))
		k := Kron(um, vm)
		got := make([]int64, n1*n2)
		for i := range got {
			got[i] = k.At(i, 0)
		}
		return EqualVec(got, KronVec(u, v))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func colVec(v []int64) [][]int64 {
	d := make([][]int64, len(v))
	for i := range v {
		d[i] = []int64{v[i]}
	}
	return d
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 50}
}

func TestKronOverflowGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized Kron")
		}
	}()
	a := New(1<<20, 1<<20)
	Kron(a, a)
}
