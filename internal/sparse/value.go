package sparse

import (
	"errors"
	"math/bits"
)

// ErrOverflow is returned (or panicked, in contexts where a statistic is
// guaranteed representable) when an exact integer computation would exceed
// int64. Triangle totals of Kronecker product graphs grow multiplicatively,
// so the library checks rather than silently wrapping.
var ErrOverflow = errors.New("sparse: int64 overflow in exact computation")

// CheckedMul returns a*b, or ErrOverflow if the product does not fit int64.
// Inputs are expected to be nonnegative counts.
func CheckedMul(a, b int64) (int64, error) {
	if a < 0 || b < 0 {
		return 0, errors.New("sparse: negative count")
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi != 0 || lo > uint64(1<<63-1) {
		return 0, ErrOverflow
	}
	return int64(lo), nil
}

// CheckedAdd returns a+b, or ErrOverflow on overflow. Inputs are expected
// to be nonnegative counts.
func CheckedAdd(a, b int64) (int64, error) {
	if a < 0 || b < 0 {
		return 0, errors.New("sparse: negative count")
	}
	s := a + b
	if s < 0 {
		return 0, ErrOverflow
	}
	return s, nil
}

// MustMul is CheckedMul that panics on overflow; for call sites where the
// result is known to be representable (validated factor sizes).
func MustMul(a, b int64) int64 {
	v, err := CheckedMul(a, b)
	if err != nil {
		panic(err)
	}
	return v
}

// SumVec returns the sum of the entries of v (the paper's 1^t v).
func SumVec(v []int64) int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}

// AddVec returns u + v elementwise. Panics if lengths differ.
func AddVec(u, v []int64) []int64 {
	if len(u) != len(v) {
		panic("sparse: AddVec length mismatch")
	}
	out := make([]int64, len(u))
	for i := range u {
		out[i] = u[i] + v[i]
	}
	return out
}

// ScaleVec returns a*v elementwise.
func ScaleVec(a int64, v []int64) []int64 {
	out := make([]int64, len(v))
	for i := range v {
		out[i] = a * v[i]
	}
	return out
}

// EqualVec reports elementwise equality.
func EqualVec(u, v []int64) bool {
	if len(u) != len(v) {
		return false
	}
	for i := range u {
		if u[i] != v[i] {
			return false
		}
	}
	return true
}

// KronVec returns the Kronecker product of vectors u and v:
// (u ⊗ v)[i*len(v)+k] = u[i]*v[k].
func KronVec(u, v []int64) []int64 {
	out := make([]int64, len(u)*len(v))
	idx := 0
	for _, a := range u {
		for _, b := range v {
			out[idx] = a * b
			idx++
		}
	}
	return out
}
