package sparse

import "fmt"

// Kron returns the explicit Kronecker product m ⊗ n (Def. 1). The result
// has m.Rows()*n.Rows() rows; callers materializing products of graph
// factors should keep the result small (validation-scale). Dimension
// products are overflow-checked.
func Kron(m, n *Matrix) *Matrix {
	outRows64 := MustMul(int64(m.rows), int64(n.rows))
	outCols64 := MustMul(int64(m.cols), int64(n.cols))
	const maxSide = 1 << 31
	if outRows64 >= maxSide || outCols64 >= maxSide {
		panic(fmt.Sprintf("sparse: Kron result %dx%d too large to materialize", outRows64, outCols64))
	}
	outRows, outCols := int(outRows64), int(outCols64)
	nnz := m.NNZ() * n.NNZ()
	rowPtr := make([]int64, outRows+1)
	colIdx := make([]int32, 0, nnz)
	val := make([]int64, 0, nnz)
	// Row p = i*n.rows + k of the product is the "outer product" of row i
	// of m with row k of n, with column q = j*n.cols + l. Iterating i, k in
	// order and merging columns keeps output sorted: for fixed (i,k), the
	// columns j*n.cols+l are sorted because j ascends and l ascends within.
	for i := 0; i < m.rows; i++ {
		mc, mv := m.Row(i)
		for k := 0; k < n.rows; k++ {
			nc, nv := n.Row(k)
			for ji := range mc {
				base := int64(mc[ji]) * int64(n.cols)
				for li := range nc {
					v := mv[ji] * nv[li]
					if v != 0 {
						colIdx = append(colIdx, int32(base+int64(nc[li])))
						val = append(val, v)
					}
				}
			}
			rowPtr[i*n.rows+k+1] = int64(len(colIdx))
		}
	}
	return &Matrix{rows: outRows, cols: outCols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// KronAt returns entry (p, q) of m ⊗ n without materializing it:
// (m ⊗ n)[p][q] = m[p/nRows][q/nCols] * n[p%nRows][q%nCols].
func KronAt(m, n *Matrix, p, q int64) int64 {
	nr, nc := int64(n.rows), int64(n.cols)
	return m.At(int(p/nr), int(q/nc)) * n.At(int(p%nr), int(q%nc))
}
