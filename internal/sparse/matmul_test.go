package sparse

import (
	"testing"

	"kronvalid/internal/rng"
)

func TestMulAgainstDense(t *testing.T) {
	g := rng.New(21)
	for trial := 0; trial < 40; trial++ {
		r, k, c := 1+g.Intn(20), 1+g.Intn(20), 1+g.Intn(20)
		a := randomMatrix(g, r, k, 0.3, 5)
		b := randomMatrix(g, k, c, 0.3, 5)
		want := DenseFrom(a).Mul(DenseFrom(b)).Sparse()
		if got := a.Mul(b); !got.Equal(want) {
			t.Fatalf("Mul mismatch at trial %d:\n%v\nvs\n%v", trial, got, want)
		}
	}
}

func TestMulLargeParallelPath(t *testing.T) {
	// Exercise the parallel branch (rows above the serial cutoff).
	g := rng.New(22)
	a := randomMatrix(g, 5000, 300, 0.01, 3)
	b := randomMatrix(g, 300, 400, 0.05, 3)
	got := a.Mul(b)
	// Spot-check 200 random entries against direct dot products.
	bt := b.T()
	for i := 0; i < 200; i++ {
		r, c := g.Intn(5000), g.Intn(400)
		var want int64
		ac, av := a.Row(r)
		for j := range ac {
			want += av[j] * bt.At(c, int(ac[j]))
		}
		if got.At(r, c) != want {
			t.Fatalf("entry (%d,%d) = %d, want %d", r, c, got.At(r, c), want)
		}
	}
}

func TestMulVecAgainstMul(t *testing.T) {
	g := rng.New(23)
	for trial := 0; trial < 20; trial++ {
		r, c := 1+g.Intn(30), 1+g.Intn(30)
		a := randomMatrix(g, r, c, 0.3, 5)
		v := make([]int64, c)
		for i := range v {
			v[i] = g.Int64n(10) - 5
		}
		// Compare to a·v via dense.
		d := DenseFrom(a)
		want := make([]int64, r)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				want[i] += d.At(i, j) * v[j]
			}
		}
		if got := a.MulVec(v); !EqualVec(got, want) {
			t.Fatalf("MulVec = %v, want %v", got, want)
		}
	}
}

func TestRowSumsEqualsMulOnes(t *testing.T) {
	g := rng.New(24)
	m := randomMatrix(g, 40, 25, 0.2, 7)
	if !EqualVec(m.RowSums(), m.MulVec(Ones(25))) {
		t.Error("RowSums != A·1")
	}
	if !EqualVec(m.ColSums(), m.T().MulVec(Ones(40))) {
		t.Error("ColSums != A^t·1")
	}
}

func TestDiagOfProduct(t *testing.T) {
	g := rng.New(25)
	for trial := 0; trial < 30; trial++ {
		n := 1 + g.Intn(25)
		a := randomMatrix(g, n, n, 0.3, 5)
		b := randomMatrix(g, n, n, 0.3, 5)
		want := a.Mul(b).Diag()
		if got := DiagOfProduct(a, b); !EqualVec(got, want) {
			t.Fatalf("DiagOfProduct = %v, want %v", got, want)
		}
	}
}

func TestDiag3(t *testing.T) {
	g := rng.New(26)
	for trial := 0; trial < 20; trial++ {
		n := 1 + g.Intn(20)
		a := randomMatrix(g, n, n, 0.3, 3)
		b := randomMatrix(g, n, n, 0.3, 3)
		c := randomMatrix(g, n, n, 0.3, 3)
		want := a.Mul(b).Mul(c).Diag()
		if got := Diag3(a, b, c); !EqualVec(got, want) {
			t.Fatalf("Diag3 = %v, want %v", got, want)
		}
	}
}

func TestSortInt32(t *testing.T) {
	g := rng.New(27)
	for trial := 0; trial < 50; trial++ {
		n := g.Intn(200)
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(g.Intn(100))
		}
		sortInt32(s)
		for i := 1; i < len(s); i++ {
			if s[i-1] > s[i] {
				t.Fatalf("sortInt32 produced unsorted output at %d: %v", i, s)
			}
		}
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func BenchmarkSpGEMM(b *testing.B) {
	g := rng.New(1)
	a := randomMatrix(g, 3000, 3000, 0.002, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Mul(a)
	}
}
