package sparse

import (
	"testing"

	"kronvalid/internal/rng"
)

// randomMatrix builds a random sparse matrix with entries in [1, maxVal]
// and approximately density*rows*cols nonzeros.
func randomMatrix(g *rng.Xoshiro256, rows, cols int, density float64, maxVal int64) *Matrix {
	var ts []Triplet
	target := int(density * float64(rows) * float64(cols))
	for i := 0; i < target; i++ {
		ts = append(ts, Triplet{g.Intn(rows), g.Intn(cols), 1 + g.Int64n(maxVal)})
	}
	return FromTriplets(rows, cols, ts)
}

// randomSymmetric builds a random symmetric 0/1 matrix with optional
// self loops.
func randomSymmetric(g *rng.Xoshiro256, n int, density float64, loops bool) *Matrix {
	var ts []Triplet
	target := int(density * float64(n) * float64(n) / 2)
	for i := 0; i < target; i++ {
		a, b := g.Intn(n), g.Intn(n)
		if a == b {
			if !loops {
				continue
			}
			ts = append(ts, Triplet{a, a, 1})
			continue
		}
		ts = append(ts, Triplet{a, b, 1}, Triplet{b, a, 1})
	}
	m := FromTriplets(n, n, ts)
	return m.Binarize() // duplicate triplets summed; reduce back to 0/1
}

func TestFromTripletsBasics(t *testing.T) {
	m := FromTriplets(3, 4, []Triplet{
		{0, 1, 5}, {2, 3, -2}, {0, 1, 3}, {1, 0, 7}, {2, 2, 4}, {2, 2, -4},
	})
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (duplicates summed, zeros dropped)", m.NNZ())
	}
	if got := m.At(0, 1); got != 8 {
		t.Errorf("At(0,1) = %d, want 8", got)
	}
	if got := m.At(2, 3); got != -2 {
		t.Errorf("At(2,3) = %d, want -2", got)
	}
	if got := m.At(2, 2); got != 0 {
		t.Errorf("At(2,2) = %d, want 0 (summed to zero)", got)
	}
	if got := m.At(1, 0); got != 7 {
		t.Errorf("At(1,0) = %d, want 7", got)
	}
}

func TestFromTripletsPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds triplet")
		}
	}()
	FromTriplets(2, 2, []Triplet{{2, 0, 1}})
}

func TestDenseRoundTrip(t *testing.T) {
	g := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		m := randomMatrix(g, 1+g.Intn(20), 1+g.Intn(20), 0.3, 9)
		d := m.ToDense()
		back := FromDense(d)
		if !m.Equal(back) {
			t.Fatalf("dense round trip failed:\n%v\nvs\n%v", m, back)
		}
	}
}

func TestIdentity(t *testing.T) {
	i5 := Identity(5)
	if i5.NNZ() != 5 || !i5.IsSymmetric() || !i5.IsBinary() {
		t.Fatalf("bad identity: %v", i5)
	}
	g := rng.New(2)
	m := randomMatrix(g, 5, 5, 0.4, 9)
	if !m.Mul(i5).Equal(m) || !i5.Mul(m).Equal(m) {
		t.Error("identity is not a multiplicative identity")
	}
}

func TestEachEarlyStop(t *testing.T) {
	m := FromTriplets(2, 2, []Triplet{{0, 0, 1}, {0, 1, 2}, {1, 1, 3}})
	count := 0
	m.Each(func(r, c int, v int64) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d entries, want 2", count)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromTriplets(2, 2, []Triplet{{0, 0, 1}})
	c := m.Clone()
	c.val[0] = 99
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestIsSymmetric(t *testing.T) {
	sym := FromTriplets(3, 3, []Triplet{{0, 1, 2}, {1, 0, 2}, {2, 2, 5}})
	if !sym.IsSymmetric() {
		t.Error("symmetric matrix reported asymmetric")
	}
	asym := FromTriplets(3, 3, []Triplet{{0, 1, 2}})
	if asym.IsSymmetric() {
		t.Error("asymmetric matrix reported symmetric")
	}
	rect := FromTriplets(2, 3, []Triplet{{0, 1, 1}})
	if rect.IsSymmetric() {
		t.Error("rectangular matrix reported symmetric")
	}
}

func TestHasDiagonal(t *testing.T) {
	if FromTriplets(3, 3, []Triplet{{0, 1, 1}}).HasDiagonal() {
		t.Error("loop-free matrix reports a diagonal")
	}
	if !FromTriplets(3, 3, []Triplet{{1, 1, 1}}).HasDiagonal() {
		t.Error("matrix with self loop reports no diagonal")
	}
}

func TestRowAccessors(t *testing.T) {
	m := FromTriplets(3, 5, []Triplet{{1, 0, 4}, {1, 3, 6}, {1, 4, 1}})
	cols, vals := m.Row(1)
	if len(cols) != 3 || cols[0] != 0 || cols[1] != 3 || cols[2] != 4 {
		t.Fatalf("Row cols = %v", cols)
	}
	if vals[0] != 4 || vals[1] != 6 || vals[2] != 1 {
		t.Fatalf("Row vals = %v", vals)
	}
	if m.RowNNZ(0) != 0 || m.RowNNZ(1) != 3 {
		t.Errorf("RowNNZ wrong: %d %d", m.RowNNZ(0), m.RowNNZ(1))
	}
}

func TestNewCSRValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func()
	}{
		{"bad rowPtr len", func() { NewCSR(2, 2, []int64{0, 0}, nil, nil) }},
		{"unsorted cols", func() {
			NewCSR(1, 3, []int64{0, 2}, []int32{2, 0}, []int64{1, 1})
		}},
		{"stored zero", func() {
			NewCSR(1, 3, []int64{0, 1}, []int32{0}, []int64{0})
		}},
		{"col out of range", func() {
			NewCSR(1, 2, []int64{0, 1}, []int32{5}, []int64{1})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.build()
		})
	}
}

func TestCheckedArithmetic(t *testing.T) {
	if v, err := CheckedMul(1<<31, 1<<31); err != nil || v != 1<<62 {
		t.Errorf("CheckedMul(2^31,2^31) = %d, %v", v, err)
	}
	if _, err := CheckedMul(1<<32, 1<<32); err == nil {
		t.Error("CheckedMul(2^32,2^32) should overflow")
	}
	if _, err := CheckedAdd(1<<62, 1<<62); err == nil {
		t.Error("CheckedAdd(2^62,2^62) should overflow")
	}
	if v, err := CheckedAdd(5, 7); err != nil || v != 12 {
		t.Errorf("CheckedAdd(5,7) = %d, %v", v, err)
	}
	if _, err := CheckedMul(-1, 2); err == nil {
		t.Error("CheckedMul should reject negative counts")
	}
}

func TestVecHelpers(t *testing.T) {
	u := []int64{1, 2, 3}
	v := []int64{4, 5, 6}
	if SumVec(u) != 6 {
		t.Error("SumVec")
	}
	if !EqualVec(AddVec(u, v), []int64{5, 7, 9}) {
		t.Error("AddVec")
	}
	if !EqualVec(ScaleVec(2, u), []int64{2, 4, 6}) {
		t.Error("ScaleVec")
	}
	if EqualVec(u, v) || EqualVec(u, v[:2]) {
		t.Error("EqualVec false positives")
	}
	kv := KronVec([]int64{2, 3}, []int64{1, 10})
	if !EqualVec(kv, []int64{2, 20, 3, 30}) {
		t.Errorf("KronVec = %v", kv)
	}
}
