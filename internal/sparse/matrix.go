// Package sparse implements compressed sparse row (CSR) matrices with
// int64 entries and the operations the paper's derivations are written in:
// sparse matrix-matrix multiplication, Hadamard (elementwise) products,
// transposition, diagonal operators, and Kronecker products.
//
// Entries are int64 because every quantity in the paper (adjacency bits,
// path counts, triangle counts) is a nonnegative integer, and triangle
// counts of Kronecker product graphs reach the hundreds of trillions: exact
// integer arithmetic is the point of the whole exercise. Arithmetic that
// could overflow int64 is guarded (see CheckedMul / CheckedAdd in value.go).
//
// The zero value of Matrix is not useful; construct with New, FromTriplets,
// FromDense, Identity, or the graph package's conversions.
package sparse

import (
	"fmt"
	"sort"
)

// Matrix is an immutable-by-convention CSR sparse matrix. Methods never
// mutate their receiver; operations return new matrices. Within each row,
// column indices are strictly increasing. Explicitly stored zeros are not
// allowed (operations drop them), so NNZ counts structurally and
// numerically nonzero entries alike.
type Matrix struct {
	rows, cols int
	rowPtr     []int64 // len rows+1; rowPtr[r]..rowPtr[r+1] index colIdx/val
	colIdx     []int32
	val        []int64
}

// New returns an empty rows x cols matrix (all zeros).
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("sparse: negative dimension")
	}
	return &Matrix{rows: rows, cols: cols, rowPtr: make([]int64, rows+1)}
}

// NewCSR wraps raw CSR arrays. It validates structure and panics on
// malformed input; it is intended for package-internal constructors and
// tests that build CSR directly.
func NewCSR(rows, cols int, rowPtr []int64, colIdx []int32, val []int64) *Matrix {
	m := &Matrix{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
	if err := m.check(); err != nil {
		panic("sparse: " + err.Error())
	}
	return m
}

func (m *Matrix) check() error {
	if len(m.rowPtr) != m.rows+1 {
		return fmt.Errorf("rowPtr length %d, want %d", len(m.rowPtr), m.rows+1)
	}
	if m.rowPtr[0] != 0 {
		return fmt.Errorf("rowPtr[0] = %d, want 0", m.rowPtr[0])
	}
	nnz := m.rowPtr[m.rows]
	if int64(len(m.colIdx)) != nnz || int64(len(m.val)) != nnz {
		return fmt.Errorf("nnz arrays have lengths %d/%d, want %d", len(m.colIdx), len(m.val), nnz)
	}
	for r := 0; r < m.rows; r++ {
		if m.rowPtr[r] > m.rowPtr[r+1] {
			return fmt.Errorf("rowPtr not monotone at row %d", r)
		}
		prev := int32(-1)
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			c := m.colIdx[k]
			if c <= prev || int(c) >= m.cols {
				return fmt.Errorf("row %d: bad column %d after %d", r, c, prev)
			}
			if m.val[k] == 0 {
				return fmt.Errorf("row %d col %d: stored zero", r, c)
			}
			prev = c
		}
	}
	return nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// NNZ returns the number of stored (nonzero) entries.
func (m *Matrix) NNZ() int64 { return m.rowPtr[m.rows] }

// At returns the entry at (r, c), using binary search within the row.
func (m *Matrix) At(r, c int) int64 {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of bounds for %dx%d", r, c, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	cols := m.colIdx[lo:hi]
	k := sort.Search(len(cols), func(i int) bool { return cols[i] >= int32(c) })
	if k < len(cols) && cols[k] == int32(c) {
		return m.val[lo+int64(k)]
	}
	return 0
}

// Row returns the column indices and values of row r. The returned slices
// alias internal storage and must not be modified.
func (m *Matrix) Row(r int) (cols []int32, vals []int64) {
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	return m.colIdx[lo:hi], m.val[lo:hi]
}

// RowNNZ returns the number of stored entries in row r.
func (m *Matrix) RowNNZ(r int) int64 { return m.rowPtr[r+1] - m.rowPtr[r] }

// Each calls fn(r, c, v) for every stored entry in row-major order,
// stopping early if fn returns false.
func (m *Matrix) Each(fn func(r, c int, v int64) bool) {
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			if !fn(r, int(m.colIdx[k]), m.val[k]) {
				return
			}
		}
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: append([]int64(nil), m.rowPtr...),
		colIdx: append([]int32(nil), m.colIdx...),
		val:    append([]int64(nil), m.val...),
	}
}

// Equal reports whether m and n have identical dimensions and entries.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.rows != n.rows || m.cols != n.cols || m.NNZ() != n.NNZ() {
		return false
	}
	for r := 0; r <= m.rows; r++ {
		if m.rowPtr[r] != n.rowPtr[r] {
			return false
		}
	}
	for k := range m.colIdx {
		if m.colIdx[k] != n.colIdx[k] || m.val[k] != n.val[k] {
			return false
		}
	}
	return true
}

// IsZero reports whether the matrix has no stored entries.
func (m *Matrix) IsZero() bool { return m.NNZ() == 0 }

// IsSquare reports whether rows == cols.
func (m *Matrix) IsSquare() bool { return m.rows == m.cols }

// IsSymmetric reports whether the matrix equals its transpose.
func (m *Matrix) IsSymmetric() bool {
	if !m.IsSquare() {
		return false
	}
	return m.Equal(m.T())
}

// IsBinary reports whether all stored values are 1, i.e. the matrix is a
// plain adjacency matrix.
func (m *Matrix) IsBinary() bool {
	for _, v := range m.val {
		if v != 1 {
			return false
		}
	}
	return true
}

// HasDiagonal reports whether any diagonal entry is nonzero (the graph has
// a self loop).
func (m *Matrix) HasDiagonal() bool {
	if !m.IsSquare() {
		return false
	}
	for r := 0; r < m.rows; r++ {
		if m.At(r, r) != 0 {
			return true
		}
	}
	return false
}

// String renders small matrices densely for debugging; large matrices are
// summarized.
func (m *Matrix) String() string {
	if m.rows > 16 || m.cols > 16 {
		return fmt.Sprintf("sparse.Matrix{%dx%d, nnz=%d}", m.rows, m.cols, m.NNZ())
	}
	s := ""
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			if c > 0 {
				s += " "
			}
			s += fmt.Sprintf("%d", m.At(r, c))
		}
		s += "\n"
	}
	return s
}

// Triplet is a single (row, col, value) coordinate entry.
type Triplet struct {
	Row, Col int
	Val      int64
}

// FromTriplets builds a matrix from coordinate entries. Duplicate
// coordinates are summed; entries that sum to zero are dropped.
func FromTriplets(rows, cols int, ts []Triplet) *Matrix {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			panic(fmt.Sprintf("sparse: triplet (%d,%d) out of bounds for %dx%d", t.Row, t.Col, rows, cols))
		}
	}
	sorted := append([]Triplet(nil), ts...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Row != sorted[b].Row {
			return sorted[a].Row < sorted[b].Row
		}
		return sorted[a].Col < sorted[b].Col
	})
	rowPtr := make([]int64, rows+1)
	var colIdx []int32
	var val []int64
	i := 0
	for i < len(sorted) {
		j := i
		var sum int64
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			sum += sorted[j].Val
			j++
		}
		if sum != 0 {
			colIdx = append(colIdx, int32(sorted[i].Col))
			val = append(val, sum)
			rowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		rowPtr[r+1] += rowPtr[r]
	}
	return &Matrix{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// FromDense builds a sparse matrix from a dense row-major slice of slices.
func FromDense(d [][]int64) *Matrix {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	var ts []Triplet
	for r, row := range d {
		if len(row) != cols {
			panic("sparse: ragged dense input")
		}
		for c, v := range row {
			if v != 0 {
				ts = append(ts, Triplet{r, c, v})
			}
		}
	}
	return FromTriplets(rows, cols, ts)
}

// ToDense returns the dense [][]int64 form (for tests and small examples).
func (m *Matrix) ToDense() [][]int64 {
	d := make([][]int64, m.rows)
	buf := make([]int64, m.rows*m.cols)
	for r := range d {
		d[r], buf = buf[:m.cols], buf[m.cols:]
	}
	m.Each(func(r, c int, v int64) bool {
		d[r][c] = v
		return true
	})
	return d
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	rowPtr := make([]int64, n+1)
	colIdx := make([]int32, n)
	val := make([]int64, n)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = int64(i + 1)
		colIdx[i] = int32(i)
		val[i] = 1
	}
	return &Matrix{rows: n, cols: n, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// Ones returns the vector of n ones (the paper's 1_A).
func Ones(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
