package sparse

import "fmt"

// T returns the transpose, computed by a counting sort over columns
// (O(nnz + rows + cols)).
func (m *Matrix) T() *Matrix {
	nnz := m.NNZ()
	rowPtr := make([]int64, m.cols+1)
	for _, c := range m.colIdx {
		rowPtr[c+1]++
	}
	for c := 0; c < m.cols; c++ {
		rowPtr[c+1] += rowPtr[c]
	}
	colIdx := make([]int32, nnz)
	val := make([]int64, nnz)
	next := append([]int64(nil), rowPtr...)
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			c := m.colIdx[k]
			pos := next[c]
			next[c]++
			colIdx[pos] = int32(r)
			val[pos] = m.val[k]
		}
	}
	return &Matrix{rows: m.cols, cols: m.rows, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

func dimCheck(op string, a, b *Matrix) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("sparse: %s dimension mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// combine merges two matrices row by row applying f(av, bv) to aligned
// entries (missing entries are 0). Entries where f yields 0 are dropped.
func combine(a, b *Matrix, f func(av, bv int64) int64) *Matrix {
	rowPtr := make([]int64, a.rows+1)
	colIdx := make([]int32, 0, a.NNZ()+b.NNZ())
	val := make([]int64, 0, a.NNZ()+b.NNZ())
	for r := 0; r < a.rows; r++ {
		ai, ae := a.rowPtr[r], a.rowPtr[r+1]
		bi, be := b.rowPtr[r], b.rowPtr[r+1]
		for ai < ae || bi < be {
			var c int32
			var av, bv int64
			switch {
			case bi >= be || (ai < ae && a.colIdx[ai] < b.colIdx[bi]):
				c, av = a.colIdx[ai], a.val[ai]
				ai++
			case ai >= ae || b.colIdx[bi] < a.colIdx[ai]:
				c, bv = b.colIdx[bi], b.val[bi]
				bi++
			default:
				c, av, bv = a.colIdx[ai], a.val[ai], b.val[bi]
				ai++
				bi++
			}
			if v := f(av, bv); v != 0 {
				colIdx = append(colIdx, c)
				val = append(val, v)
			}
		}
		rowPtr[r+1] = int64(len(colIdx))
	}
	return &Matrix{rows: a.rows, cols: a.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// Add returns m + n.
func (m *Matrix) Add(n *Matrix) *Matrix {
	dimCheck("Add", m, n)
	return combine(m, n, func(a, b int64) int64 { return a + b })
}

// Sub returns m - n.
func (m *Matrix) Sub(n *Matrix) *Matrix {
	dimCheck("Sub", m, n)
	return combine(m, n, func(a, b int64) int64 { return a - b })
}

// Hadamard returns the elementwise product m ∘ n (Def. 2 in the paper).
func (m *Matrix) Hadamard(n *Matrix) *Matrix {
	dimCheck("Hadamard", m, n)
	// Intersection merge: only coordinates present in both survive.
	rowPtr := make([]int64, m.rows+1)
	minNNZ := m.NNZ()
	if n.NNZ() < minNNZ {
		minNNZ = n.NNZ()
	}
	colIdx := make([]int32, 0, minNNZ)
	val := make([]int64, 0, minNNZ)
	for r := 0; r < m.rows; r++ {
		ai, ae := m.rowPtr[r], m.rowPtr[r+1]
		bi, be := n.rowPtr[r], n.rowPtr[r+1]
		for ai < ae && bi < be {
			ac, bc := m.colIdx[ai], n.colIdx[bi]
			switch {
			case ac < bc:
				ai++
			case bc < ac:
				bi++
			default:
				if v := m.val[ai] * n.val[bi]; v != 0 {
					colIdx = append(colIdx, ac)
					val = append(val, v)
				}
				ai++
				bi++
			}
		}
		rowPtr[r+1] = int64(len(colIdx))
	}
	return &Matrix{rows: m.rows, cols: m.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// Scale returns a*m. Scaling by 0 returns the zero matrix.
func (m *Matrix) Scale(a int64) *Matrix {
	if a == 0 {
		return New(m.rows, m.cols)
	}
	out := m.Clone()
	for i := range out.val {
		out.val[i] *= a
	}
	return out
}

// Binarize returns the 0/1 pattern of m: entry 1 wherever m is nonzero.
func (m *Matrix) Binarize() *Matrix {
	out := m.Clone()
	for i := range out.val {
		out.val[i] = 1
	}
	return out
}

// Diag returns the main diagonal as a vector (the paper's diag(A) =
// (I ∘ A)·1). Panics if the matrix is not square.
func (m *Matrix) Diag() []int64 {
	if !m.IsSquare() {
		panic("sparse: Diag of non-square matrix")
	}
	d := make([]int64, m.rows)
	for r := 0; r < m.rows; r++ {
		d[r] = m.At(r, r)
	}
	return d
}

// DiagMatrix returns the diagonal matrix with diagonal d.
func DiagMatrix(d []int64) *Matrix {
	ts := make([]Triplet, 0, len(d))
	for i, v := range d {
		if v != 0 {
			ts = append(ts, Triplet{i, i, v})
		}
	}
	return FromTriplets(len(d), len(d), ts)
}

// DiagPart returns D_A = I ∘ A: the matrix holding only the diagonal of A
// (Def. 4, used throughout the self-loop derivations).
func (m *Matrix) DiagPart() *Matrix {
	return DiagMatrix(m.Diag())
}

// OffDiag returns A - I ∘ A: the matrix with self loops removed (Rem. 3).
func (m *Matrix) OffDiag() *Matrix {
	if !m.IsSquare() {
		panic("sparse: OffDiag of non-square matrix")
	}
	rowPtr := make([]int64, m.rows+1)
	colIdx := make([]int32, 0, len(m.colIdx))
	val := make([]int64, 0, len(m.val))
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			if int(m.colIdx[k]) != r {
				colIdx = append(colIdx, m.colIdx[k])
				val = append(val, m.val[k])
			}
		}
		rowPtr[r+1] = int64(len(colIdx))
	}
	return &Matrix{rows: m.rows, cols: m.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// RowSums returns the vector of row sums (A·1). For an adjacency matrix
// with no self loops this is the out-degree vector.
func (m *Matrix) RowSums() []int64 {
	out := make([]int64, m.rows)
	for r := 0; r < m.rows; r++ {
		var s int64
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			s += m.val[k]
		}
		out[r] = s
	}
	return out
}

// ColSums returns the vector of column sums (A^t·1).
func (m *Matrix) ColSums() []int64 {
	out := make([]int64, m.cols)
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			out[m.colIdx[k]] += m.val[k]
		}
	}
	return out
}

// Total returns the sum of all entries (1^t A 1).
func (m *Matrix) Total() int64 {
	var s int64
	for _, v := range m.val {
		s += v
	}
	return s
}

// Trace returns the sum of diagonal entries.
func (m *Matrix) Trace() int64 {
	if !m.IsSquare() {
		panic("sparse: Trace of non-square matrix")
	}
	var s int64
	for r := 0; r < m.rows; r++ {
		s += m.At(r, r)
	}
	return s
}

// Filter returns a copy of m keeping only entries where keep returns true.
func (m *Matrix) Filter(keep func(r, c int, v int64) bool) *Matrix {
	rowPtr := make([]int64, m.rows+1)
	var colIdx []int32
	var val []int64
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			if keep(r, int(m.colIdx[k]), m.val[k]) {
				colIdx = append(colIdx, m.colIdx[k])
				val = append(val, m.val[k])
			}
		}
		rowPtr[r+1] = int64(len(colIdx))
	}
	return &Matrix{rows: m.rows, cols: m.cols, rowPtr: rowPtr, colIdx: colIdx, val: val}
}

// MaxVal returns the maximum stored value, or 0 for an empty matrix.
func (m *Matrix) MaxVal() int64 {
	var mx int64
	for _, v := range m.val {
		if v > mx {
			mx = v
		}
	}
	return mx
}
