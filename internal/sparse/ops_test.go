package sparse

import (
	"testing"

	"kronvalid/internal/rng"
)

func TestTransposeAgainstDense(t *testing.T) {
	g := rng.New(7)
	for trial := 0; trial < 30; trial++ {
		m := randomMatrix(g, 1+g.Intn(25), 1+g.Intn(25), 0.25, 9)
		want := DenseFrom(m).T().Sparse()
		if got := m.T(); !got.Equal(want) {
			t.Fatalf("transpose mismatch:\n%v\nvs\n%v", got, want)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := rng.New(8)
	for trial := 0; trial < 20; trial++ {
		m := randomMatrix(g, 1+g.Intn(30), 1+g.Intn(30), 0.2, 5)
		if !m.T().T().Equal(m) {
			t.Fatal("(M^t)^t != M")
		}
	}
}

func TestAddSubHadamardAgainstDense(t *testing.T) {
	g := rng.New(9)
	for trial := 0; trial < 30; trial++ {
		r, c := 1+g.Intn(20), 1+g.Intn(20)
		a := randomMatrix(g, r, c, 0.3, 9)
		b := randomMatrix(g, r, c, 0.3, 9)
		da, db := DenseFrom(a), DenseFrom(b)
		if !a.Add(b).Equal(da.Add(db).Sparse()) {
			t.Fatal("Add mismatch")
		}
		if !a.Sub(b).Equal(da.Sub(db).Sparse()) {
			t.Fatal("Sub mismatch")
		}
		if !a.Hadamard(b).Equal(da.Hadamard(db).Sparse()) {
			t.Fatal("Hadamard mismatch")
		}
	}
}

func TestSubSelfIsZero(t *testing.T) {
	g := rng.New(10)
	m := randomMatrix(g, 15, 15, 0.3, 9)
	if !m.Sub(m).IsZero() {
		t.Error("M - M is not zero")
	}
}

func TestScale(t *testing.T) {
	m := FromTriplets(2, 2, []Triplet{{0, 0, 3}, {1, 1, -2}})
	s := m.Scale(4)
	if s.At(0, 0) != 12 || s.At(1, 1) != -8 {
		t.Errorf("Scale wrong: %v", s)
	}
	if !m.Scale(0).IsZero() {
		t.Error("Scale(0) not zero")
	}
}

func TestBinarize(t *testing.T) {
	m := FromTriplets(2, 2, []Triplet{{0, 0, 3}, {1, 0, 7}})
	b := m.Binarize()
	if !b.IsBinary() || b.NNZ() != 2 || b.At(0, 0) != 1 || b.At(1, 0) != 1 {
		t.Errorf("Binarize wrong: %v", b)
	}
}

func TestDiagOperators(t *testing.T) {
	m := FromTriplets(3, 3, []Triplet{{0, 0, 2}, {0, 1, 5}, {1, 1, 3}, {2, 0, 4}})
	d := m.Diag()
	if !EqualVec(d, []int64{2, 3, 0}) {
		t.Errorf("Diag = %v", d)
	}
	dp := m.DiagPart()
	od := m.OffDiag()
	if !dp.Add(od).Equal(m) {
		t.Error("DiagPart + OffDiag != M")
	}
	if od.HasDiagonal() {
		t.Error("OffDiag retains diagonal")
	}
	dm := DiagMatrix([]int64{1, 0, 7})
	if dm.NNZ() != 2 || dm.At(0, 0) != 1 || dm.At(2, 2) != 7 {
		t.Errorf("DiagMatrix wrong: %v", dm)
	}
}

func TestRowColSums(t *testing.T) {
	m := FromTriplets(2, 3, []Triplet{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}})
	if !EqualVec(m.RowSums(), []int64{3, 3}) {
		t.Errorf("RowSums = %v", m.RowSums())
	}
	if !EqualVec(m.ColSums(), []int64{1, 3, 2}) {
		t.Errorf("ColSums = %v", m.ColSums())
	}
	if m.Total() != 6 {
		t.Errorf("Total = %d", m.Total())
	}
}

func TestTrace(t *testing.T) {
	m := FromTriplets(3, 3, []Triplet{{0, 0, 2}, {1, 1, 3}, {0, 1, 100}})
	if m.Trace() != 5 {
		t.Errorf("Trace = %d, want 5", m.Trace())
	}
}

func TestFilter(t *testing.T) {
	m := FromTriplets(2, 2, []Triplet{{0, 0, 1}, {0, 1, 5}, {1, 1, 2}})
	f := m.Filter(func(r, c int, v int64) bool { return v >= 2 })
	if f.NNZ() != 2 || f.At(0, 0) != 0 || f.At(0, 1) != 5 || f.At(1, 1) != 2 {
		t.Errorf("Filter wrong: %v", f)
	}
}

func TestMaxVal(t *testing.T) {
	if New(3, 3).MaxVal() != 0 {
		t.Error("MaxVal of zero matrix")
	}
	m := FromTriplets(2, 2, []Triplet{{0, 0, 3}, {1, 0, 9}})
	if m.MaxVal() != 9 {
		t.Errorf("MaxVal = %d", m.MaxVal())
	}
}

func TestRandomSymmetricIsSymmetric(t *testing.T) {
	g := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		m := randomSymmetric(g, 2+g.Intn(20), 0.3, trial%2 == 0)
		if !m.IsSymmetric() {
			t.Fatal("randomSymmetric produced asymmetric matrix")
		}
		if !m.IsBinary() {
			t.Fatal("randomSymmetric produced non-binary matrix")
		}
	}
}
