package stream

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// cancelAfterSink cancels the bound context after consuming `after`
// batches, then keeps counting what it is still given.
type cancelAfterSink struct {
	cancel  context.CancelFunc
	after   int
	batches int
	flushed int
}

func (c *cancelAfterSink) Consume(batch []Arc) error {
	c.batches++
	if c.batches == c.after {
		c.cancel()
	}
	return nil
}
func (c *cancelAfterSink) Flush() error { c.flushed++; return nil }

// settleGoroutines polls until the goroutine count drops back to at most
// base (or the deadline passes), absorbing scheduler lag without a
// flaky fixed sleep.
func settleGoroutines(base int) int {
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.Gosched()
		n := runtime.NumGoroutine()
		if n <= base || time.Now().After(deadline) {
			return n
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRunContextCancelStopsPromptlyWithoutLeaks(t *testing.T) {
	for _, workers := range []int{1, 4} {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		sink := &cancelAfterSink{cancel: cancel, after: 3}
		const shards, perShard = 8, 100000
		n, err := RunContext(ctx, shards, synthGen(perShard), sink,
			Options{Workers: workers, BatchSize: 64, Buffer: 2})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Bounded by one batch: the sink saw its triggering batch and at
		// most one more that was already in flight toward it.
		if sink.batches > sink.after+1 {
			t.Errorf("workers=%d: sink consumed %d batches after cancelling on batch %d",
				workers, sink.batches, sink.after)
		}
		if n >= shards*perShard {
			t.Errorf("workers=%d: stream ran to completion (n=%d) despite cancellation", workers, n)
		}
		if sink.flushed != 1 {
			t.Errorf("workers=%d: Flush ran %d times, want exactly once", workers, sink.flushed)
		}
		if got := settleGoroutines(base); got > base {
			t.Errorf("workers=%d: %d goroutines before, %d after cancellation — leak", workers, base, got)
		}
		cancel()
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var got collectSink
	n, err := RunContext(ctx, 4, synthGen(100), &got, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 0 || len(got.arcs) != 0 {
		t.Fatalf("pre-cancelled run delivered %d arcs", n)
	}
	if got.flushed != 1 {
		t.Fatalf("Flush ran %d times", got.flushed)
	}
}

func TestRunContextCancelWhileConsumerWaits(t *testing.T) {
	// A generator that blocks until cancellation: the consumer is parked
	// waiting for the first batch, so only the stop-channel select can
	// wake it. The run must still return promptly with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	slowGen := func(w int, buf []Arc, emit func([]Arc) []Arc) {
		<-ctx.Done()
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var err error
	go func() {
		_, err = RunContext(ctx, 4, slowGen, &collectSink{}, Options{Workers: 2})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunPerShardContextCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	sinks := make(chan *cancelAfterSink, 16)
	_, err := RunPerShardContext(ctx, 8, synthGen(100000),
		func(w int) (Sink, error) {
			s := &cancelAfterSink{cancel: cancel, after: 2}
			sinks <- s
			return s, nil
		}, Options{Workers: 4, BatchSize: 64})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(sinks)
	for s := range sinks {
		if s.flushed != 1 {
			t.Errorf("a shard sink was flushed %d times, want exactly once", s.flushed)
		}
	}
	if got := settleGoroutines(base); got > base {
		t.Errorf("%d goroutines before, %d after cancellation — leak", base, got)
	}
}

func TestRunContextProgress(t *testing.T) {
	var lastArcs, lastShards int64
	calls := 0
	const shards, perShard = 5, 1000
	n, err := Run(shards, synthGen(perShard), &collectSink{}, Options{
		Workers:   3,
		BatchSize: 128,
		Progress: func(arcs, shardsDone int64) {
			calls++
			if arcs < lastArcs || shardsDone < lastShards {
				t.Fatalf("progress went backwards: (%d,%d) after (%d,%d)", arcs, shardsDone, lastArcs, lastShards)
			}
			lastArcs, lastShards = arcs, shardsDone
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 || lastArcs != n || lastShards != shards {
		t.Fatalf("progress ended at (%d arcs, %d shards) after %d calls; streamed %d", lastArcs, lastShards, calls, n)
	}
}

// flushBoom errors on Flush; flushCount proves Flush reached it anyway.
type flushBoom struct {
	err     error
	flushed int
}

func (f *flushBoom) Consume([]Arc) error { return nil }
func (f *flushBoom) Flush() error        { f.flushed++; return f.err }

func TestMultiSinkFlushReachesEveryChildAfterFlushError(t *testing.T) {
	first := &flushBoom{err: errors.New("first flush failed")}
	second := &flushBoom{err: errors.New("second flush failed")}
	third := &flushBoom{}
	m := MultiSink{first, second, third}
	err := m.Flush()
	if !errors.Is(err, first.err) {
		t.Fatalf("Flush returned %v, want the first error", err)
	}
	for i, s := range []*flushBoom{first, second, third} {
		if s.flushed != 1 {
			t.Errorf("child %d flushed %d times, want exactly once", i, s.flushed)
		}
	}
}

// consumeBoom errors on the first Consume.
type consumeBoom struct {
	flushed int
}

func (c *consumeBoom) Consume([]Arc) error { return errors.New("consume failed") }
func (c *consumeBoom) Flush() error        { c.flushed++; return nil }

func TestMultiSinkFlushReachesEveryChildAfterConsumeError(t *testing.T) {
	count := &CountSink{}
	bad := &consumeBoom{}
	tail := &flushBoom{}
	m := MultiSink{count, bad, tail}
	if err := m.Consume([]Arc{{U: 1, V: 2}}); err == nil {
		t.Fatal("consume error swallowed")
	}
	if err := m.Flush(); err != nil {
		t.Fatalf("flush after consume error: %v", err)
	}
	if bad.flushed != 1 || tail.flushed != 1 {
		t.Errorf("flush skipped children after a consume error: bad=%d tail=%d", bad.flushed, tail.flushed)
	}
	// Driver-level: the erroring MultiSink stops the stream and the
	// driver's single Flush still reaches every child.
	bad2 := &consumeBoom{}
	tail2 := &flushBoom{}
	_, err := Run(4, synthGen(100), MultiSink{bad2, tail2}, Options{Workers: 2, BatchSize: 16})
	if err == nil {
		t.Fatal("driver swallowed sink error")
	}
	if bad2.flushed != 1 || tail2.flushed != 1 {
		t.Errorf("driver flush skipped children: bad=%d tail=%d", bad2.flushed, tail2.flushed)
	}
}
