package stream

import "fmt"

// CountSink counts arcs. The zero value is ready to use.
type CountSink struct {
	N int64
}

// Consume adds the batch to the running count.
func (c *CountSink) Consume(batch []Arc) error {
	c.N += int64(len(batch))
	return nil
}

// Flush is a no-op.
func (c *CountSink) Flush() error { return nil }

// FuncSink adapts a plain function to a Sink with a no-op Flush.
type FuncSink func(batch []Arc) error

// Consume invokes the wrapped function.
func (f FuncSink) Consume(batch []Arc) error { return f(batch) }

// Flush is a no-op.
func (f FuncSink) Flush() error { return nil }

// MultiSink fans every batch out to several sinks in order, so one
// generation pass can simultaneously write, count, and check. The first
// Consume error stops the stream; Flush always reaches every child —
// even when an earlier child's Flush errors, and even after a child's
// Consume already errored — so every sink gets its exactly-once Flush
// and buffered output is consistently finalized. The first Flush error
// is returned.
type MultiSink []Sink

// Consume delivers the batch to each sink in order.
func (m MultiSink) Consume(batch []Arc) error {
	for _, s := range m {
		if err := s.Consume(batch); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes every sink — an error from one child never skips the
// rest — and returns the first error.
func (m MultiSink) Flush() error {
	var first error
	for _, s := range m {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DedupCheckSink verifies that the stream is strictly increasing in
// lexicographic (U, V) order — the canonical EachArc order — which implies
// the stream is duplicate-free. It errors on the first violation.
type DedupCheckSink struct {
	prev    Arc
	started bool
}

// Consume checks each arc against its predecessor.
func (d *DedupCheckSink) Consume(batch []Arc) error {
	for _, a := range batch {
		if d.started {
			if a.U < d.prev.U || (a.U == d.prev.U && a.V <= d.prev.V) {
				return fmt.Errorf("stream: order violation: (%d,%d) after (%d,%d)",
					a.U, a.V, d.prev.U, d.prev.V)
			}
		}
		d.prev = a
		d.started = true
	}
	return nil
}

// Flush is a no-op.
func (d *DedupCheckSink) Flush() error { return nil }

// DegreeHistogramSink accumulates the out-degree histogram of the stream's
// source vertices. It relies on the canonical stream order, in which all
// arcs out of a vertex are consecutive: a run of equal U values of length
// d contributes one vertex of out-degree d. Vertices with no out-arcs do
// not appear in the stream and therefore not in the histogram.
type DegreeHistogramSink struct {
	// Counts maps out-degree to the number of source vertices with that
	// out-degree. Populated incrementally; complete after Flush.
	Counts map[int64]int64

	cur     int64 // current source vertex
	run     int64 // arcs seen for cur
	started bool
}

// Consume extends the current run or closes it and starts a new one.
func (h *DegreeHistogramSink) Consume(batch []Arc) error {
	if h.Counts == nil {
		h.Counts = make(map[int64]int64)
	}
	for _, a := range batch {
		if h.started && a.U == h.cur {
			h.run++
			continue
		}
		if h.started {
			h.Counts[h.run]++
		}
		h.cur = a.U
		h.run = 1
		h.started = true
	}
	return nil
}

// Flush closes the final run.
func (h *DegreeHistogramSink) Flush() error {
	if h.started {
		if h.Counts == nil {
			h.Counts = make(map[int64]int64)
		}
		h.Counts[h.run]++
		h.started = false
		h.run = 0
	}
	return nil
}
