package stream

import (
	"errors"
	"fmt"
	"testing"
)

// synthGen builds a ShardGen in which shard w deterministically emits arcs
// (w*perShard+i, i) for i in [0, perShard).
func synthGen(perShard int) ShardGen {
	return func(w int, buf []Arc, emit func([]Arc) []Arc) {
		for i := 0; i < perShard; i++ {
			buf = append(buf, Arc{U: int64(w*perShard + i), V: int64(i)})
			if len(buf) == cap(buf) {
				if buf = emit(buf); buf == nil {
					return
				}
				buf = buf[:0]
			}
		}
		if len(buf) > 0 {
			emit(buf)
		}
	}
}

// collectSink records every arc it sees.
type collectSink struct {
	arcs    []Arc
	flushed int
}

func (c *collectSink) Consume(batch []Arc) error {
	c.arcs = append(c.arcs, batch...)
	return nil
}
func (c *collectSink) Flush() error { c.flushed++; return nil }

func TestRunPreservesShardOrder(t *testing.T) {
	const shards, perShard = 7, 1000
	for _, workers := range []int{1, 2, 3, 8} {
		var got collectSink
		n, err := Run(shards, synthGen(perShard), &got,
			Options{Workers: workers, BatchSize: 64, Buffer: 2})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n != shards*perShard {
			t.Fatalf("workers=%d: n=%d want %d", workers, n, shards*perShard)
		}
		if got.flushed != 1 {
			t.Fatalf("workers=%d: flushed %d times", workers, got.flushed)
		}
		for i, a := range got.arcs {
			if a.U != int64(i) {
				t.Fatalf("workers=%d: arc %d has U=%d — order not preserved", workers, i, a.U)
			}
		}
	}
}

func TestRunSinkErrorStopsStream(t *testing.T) {
	boom := errors.New("boom")
	var seen int64
	sink := FuncSink(func(batch []Arc) error {
		seen += int64(len(batch))
		if seen >= 200 {
			return boom
		}
		return nil
	})
	n, err := Run(16, synthGen(10000), sink, Options{Workers: 4, BatchSize: 64})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n >= 16*10000 {
		t.Fatalf("stream did not stop early: n=%d", n)
	}
}

func TestRunPerShardCountsAndErrors(t *testing.T) {
	sinks := make([]*collectSink, 5)
	counts, err := RunPerShard(5, synthGen(777),
		func(w int) (Sink, error) {
			sinks[w] = &collectSink{}
			return sinks[w], nil
		}, Options{Workers: 3, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	for w, c := range counts {
		if c != 777 || len(sinks[w].arcs) != 777 {
			t.Fatalf("shard %d: count %d, collected %d", w, c, len(sinks[w].arcs))
		}
		if sinks[w].arcs[0].U != int64(w*777) {
			t.Fatalf("shard %d got wrong arcs", w)
		}
	}
	wantErr := errors.New("no sink")
	if _, err := RunPerShard(3, synthGen(10), func(w int) (Sink, error) {
		if w == 1 {
			return nil, wantErr
		}
		return &collectSink{}, nil
	}, Options{}); !errors.Is(err, wantErr) {
		t.Fatalf("sink creation error not reported: %v", err)
	}
}

func TestRunZeroShards(t *testing.T) {
	var got collectSink
	n, err := Run(0, synthGen(10), &got, Options{})
	if err != nil || n != 0 || got.flushed != 1 {
		t.Fatalf("n=%d err=%v flushed=%d", n, err, got.flushed)
	}
}

func TestCountAndMultiSink(t *testing.T) {
	var count CountSink
	var check DedupCheckSink
	sink := MultiSink{&count, &check}
	n, err := Run(3, synthGen(100), sink, Options{Workers: 2, BatchSize: 16})
	if err != nil || n != 300 || count.N != 300 {
		t.Fatalf("n=%d count=%d err=%v", n, count.N, err)
	}
}

func TestDedupCheckSinkDetectsDisorder(t *testing.T) {
	var d DedupCheckSink
	if err := d.Consume([]Arc{{U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 0}}); err != nil {
		t.Fatalf("ordered stream rejected: %v", err)
	}
	if err := d.Consume([]Arc{{U: 2, V: 0}}); err == nil {
		t.Fatal("duplicate accepted")
	}
	var d2 DedupCheckSink
	if err := d2.Consume([]Arc{{U: 5, V: 0}, {U: 4, V: 9}}); err == nil {
		t.Fatal("descending U accepted")
	}
}

func TestDegreeHistogramSink(t *testing.T) {
	var h DegreeHistogramSink
	// Vertex 0: degree 3, vertex 1: degree 1, vertex 7: degree 2 —
	// delivered across two batches to exercise run continuation.
	if err := h.Consume([]Arc{{U: 0, V: 1}, {U: 0, V: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := h.Consume([]Arc{{U: 0, V: 3}, {U: 1, V: 0}, {U: 7, V: 0}, {U: 7, V: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{3: 1, 1: 1, 2: 1}
	if fmt.Sprint(h.Counts) != fmt.Sprint(want) {
		t.Fatalf("histogram = %v, want %v", h.Counts, want)
	}
}
