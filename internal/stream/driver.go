package stream

import (
	"io"
	"sync"
	"sync/atomic"

	"kronvalid/internal/par"
)

// Run drives a sharded generator into a single sink. Shards are generated
// concurrently (up to opts.Workers at a time, claimed in index order) but
// their batches are delivered to the sink strictly in shard order
// 0, 1, …, shards-1 — so the byte stream a sink observes is identical for
// every worker count, the property that makes sharded generation
// verifiable against the serial stream. Returns the number of arcs
// consumed and the first sink error (generation stops early on error).
func Run(shards int, gen ShardGen, sink Sink, opts Options) (int64, error) {
	o := opts.withDefaults()
	if o.Workers <= 0 {
		o.Workers = par.MaxWorkers()
	}
	if shards <= 0 {
		return 0, sink.Flush()
	}
	if o.Workers == 1 || shards == 1 {
		return runSerial(shards, gen, sink, o)
	}

	chans := make([]chan []Arc, shards)
	for i := range chans {
		chans[i] = make(chan []Arc, o.Buffer)
	}
	stop := make(chan struct{})
	var stopOnce sync.Once
	pool := sync.Pool{New: func() any {
		s := make([]Arc, 0, o.BatchSize)
		return &s
	}}
	getBuf := func() []Arc { return (*pool.Get().(*[]Arc))[:0] }
	putBuf := func(b []Arc) { pool.Put(&b) }

	var next atomic.Int64
	workers := o.Workers
	if workers > shards {
		workers = shards
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for t := 0; t < workers; t++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := int(next.Add(1) - 1)
				if w >= shards {
					return
				}
				gen(w, getBuf(), func(full []Arc) []Arc {
					select {
					case chans[w] <- full:
						return getBuf()
					case <-stop:
						return nil
					}
				})
				close(chans[w])
			}
		}()
	}

	var n int64
	var err error
	for w := 0; w < shards; w++ {
		if int64(w) >= next.Load() && err != nil {
			break // shard never claimed: producers have shut down
		}
		for batch := range chans[w] {
			if err != nil {
				putBuf(batch)
				continue // drain so blocked producers can exit
			}
			if cerr := sink.Consume(batch); cerr != nil {
				err = cerr
				stopOnce.Do(func() { close(stop) })
			} else {
				n += int64(len(batch))
			}
			putBuf(batch)
		}
	}
	stopOnce.Do(func() { close(stop) })
	wg.Wait()
	if ferr := sink.Flush(); err == nil {
		err = ferr
	}
	return n, err
}

func runSerial(shards int, gen ShardGen, sink Sink, o Options) (int64, error) {
	buf := make([]Arc, 0, o.BatchSize)
	var n int64
	var err error
	for w := 0; w < shards && err == nil; w++ {
		gen(w, buf, func(full []Arc) []Arc {
			if cerr := sink.Consume(full); cerr != nil {
				err = cerr
				return nil
			}
			n += int64(len(full))
			return full[:0]
		})
	}
	if ferr := sink.Flush(); err == nil {
		err = ferr
	}
	return n, err
}

// RunPerShard drives a sharded generator with one sink per shard, shards
// running fully in parallel (no cross-shard ordering is needed because
// each shard owns its own output). sinkFor(w) is called from the worker
// goroutine that generates shard w; if the returned sink also implements
// io.Closer it is closed after Flush. Returns per-shard arc counts and the
// first error encountered (other shards still run to completion).
func RunPerShard(shards int, gen ShardGen, sinkFor func(w int) (Sink, error), opts Options) ([]int64, error) {
	o := opts.withDefaults()
	if o.Workers <= 0 {
		o.Workers = par.MaxWorkers()
	}
	counts := make([]int64, shards)
	errs := make([]error, shards)
	sem := make(chan struct{}, o.Workers)
	var wg sync.WaitGroup
	wg.Add(shards)
	for w := 0; w < shards; w++ {
		go func(w int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sink, err := sinkFor(w)
			if err != nil {
				errs[w] = err
				return
			}
			buf := make([]Arc, 0, o.BatchSize)
			gen(w, buf, func(full []Arc) []Arc {
				if cerr := sink.Consume(full); cerr != nil {
					err = cerr
					return nil
				}
				counts[w] += int64(len(full))
				return full[:0]
			})
			if ferr := sink.Flush(); err == nil {
				err = ferr
			}
			if c, ok := sink.(io.Closer); ok {
				if cerr := c.Close(); err == nil {
					err = cerr
				}
			}
			errs[w] = err
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return counts, err
		}
	}
	return counts, nil
}
