package stream

import (
	"context"
	"io"
	"sync"
	"sync/atomic"

	"kronvalid/internal/par"
)

// Run drives a sharded generator into a single sink with a background
// context. See RunContext.
func Run(shards int, gen ShardGen, sink Sink, opts Options) (int64, error) {
	return RunContext(context.Background(), shards, gen, sink, opts)
}

// RunContext drives a sharded generator into a single sink. Shards are
// generated concurrently (up to opts.Workers at a time, claimed in index
// order) but their batches are delivered to the sink strictly in shard
// order 0, 1, …, shards-1 — so the byte stream a sink observes is
// identical for every worker count, the property that makes sharded
// generation verifiable against the serial stream. Returns the number of
// arcs consumed and the first sink error (generation stops early on
// error).
//
// Cancelling ctx stops the stream promptly — within one batch delivery —
// and RunContext returns ctx.Err(). Workers are always joined before
// returning (no goroutine outlives the call), and the sink's Flush is
// still invoked exactly once so buffered partial output is in a
// consistent state; the arc count reflects only the batches delivered
// before cancellation.
func RunContext(ctx context.Context, shards int, gen ShardGen, sink Sink, opts Options) (int64, error) {
	return RunFactoryContext(ctx, shards, func() ShardGen { return gen }, sink, opts)
}

// RunFactory drives a factory-backed sharded generator into a single
// sink with a background context. See RunFactoryContext.
func RunFactory(shards int, newGen GenFactory, sink Sink, opts Options) (int64, error) {
	return RunFactoryContext(context.Background(), shards, newGen, sink, opts)
}

// RunFactoryContext is RunContext with per-worker generator state: each
// worker goroutine calls newGen once and executes every shard it claims
// through that one ShardGen, so factory-bound state (cell caches, memo
// tables) persists across a worker's shards. The serial path calls
// newGen once for the whole stream. Delivery order, cancellation, and
// error semantics are exactly RunContext's — worker state may only
// change the cost of generation, never its bytes.
func RunFactoryContext(ctx context.Context, shards int, newGen GenFactory, sink Sink, opts Options) (int64, error) {
	o := opts.withDefaults()
	if o.Workers <= 0 {
		o.Workers = par.MaxWorkers()
	}
	if shards <= 0 {
		return 0, sink.Flush()
	}
	if err := ctx.Err(); err != nil {
		sink.Flush()
		return 0, err
	}
	if o.Workers == 1 || shards == 1 {
		return runSerial(ctx, shards, newGen(), sink, o)
	}

	chans := make([]chan []Arc, shards)
	for i := range chans {
		chans[i] = make(chan []Arc, o.Buffer)
	}
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	// A cancelled context halts the producers immediately — even while
	// the consumer is blocked waiting on a slow shard — so cancellation
	// latency is bounded by one in-flight batch, not by the remaining
	// stream. done releases the watcher when the stream ends first.
	done := make(chan struct{})
	defer close(done)
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				halt()
			case <-done:
			}
		}()
	}
	pool := sync.Pool{New: func() any {
		s := make([]Arc, 0, o.BatchSize)
		return &s
	}}
	getBuf := func() []Arc { return (*pool.Get().(*[]Arc))[:0] }
	putBuf := func(b []Arc) { pool.Put(&b) }

	var next atomic.Int64
	workers := o.Workers
	if workers > shards {
		workers = shards
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for t := 0; t < workers; t++ {
		go func() {
			defer wg.Done()
			gen := newGen() // worker-lifetime state lives in this closure
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := int(next.Add(1) - 1)
				if w >= shards {
					return
				}
				gen(w, getBuf(), func(full []Arc) []Arc {
					select {
					case chans[w] <- full:
						return getBuf()
					case <-stop:
						return nil
					}
				})
				close(chans[w])
			}
		}()
	}

	// Consume batches in shard order. Every receive also selects on stop,
	// so a cancellation observed by the watcher wakes the consumer even
	// while it waits on a slow or never-claimed shard; producers blocked
	// in emit exit through the same stop channel, so nothing needs to be
	// drained after an abort.
	var n, shardsDone int64
	var err error
consume:
	for w := 0; w < shards; w++ {
		if err = ctx.Err(); err != nil {
			break
		}
		for {
			var batch []Arc
			var ok bool
			select {
			case batch, ok = <-chans[w]:
			case <-stop:
				err = ctx.Err()
				break consume
			}
			if !ok {
				break // shard w complete
			}
			if err = ctx.Err(); err != nil {
				break consume
			}
			if cerr := sink.Consume(batch); cerr != nil {
				err = cerr
				halt()
				break consume
			}
			n += int64(len(batch))
			putBuf(batch)
			if o.Progress != nil {
				o.Progress(n, shardsDone)
			}
		}
		shardsDone++
		if o.Progress != nil {
			o.Progress(n, shardsDone)
		}
	}
	halt()
	wg.Wait()
	if err == nil {
		err = ctx.Err()
	}
	if ferr := sink.Flush(); err == nil {
		err = ferr
	}
	return n, err
}

func runSerial(ctx context.Context, shards int, gen ShardGen, sink Sink, o Options) (int64, error) {
	buf := make([]Arc, 0, o.BatchSize)
	var n, shardsDone int64
	var err error
	for w := 0; w < shards && err == nil; w++ {
		gen(w, buf, func(full []Arc) []Arc {
			if err = ctx.Err(); err != nil {
				return nil
			}
			if cerr := sink.Consume(full); cerr != nil {
				err = cerr
				return nil
			}
			n += int64(len(full))
			if o.Progress != nil {
				o.Progress(n, shardsDone)
			}
			return full[:0]
		})
		if err == nil {
			shardsDone++
			if o.Progress != nil {
				o.Progress(n, shardsDone)
			}
		}
	}
	if ferr := sink.Flush(); err == nil {
		err = ferr
	}
	return n, err
}

// RunPerShard drives a sharded generator with one sink per shard under a
// background context. See RunPerShardContext.
func RunPerShard(shards int, gen ShardGen, sinkFor func(w int) (Sink, error), opts Options) ([]int64, error) {
	return RunPerShardContext(context.Background(), shards, gen, sinkFor, opts)
}

// RunPerShardContext drives a sharded generator with one sink per shard,
// shards running fully in parallel (no cross-shard ordering is needed
// because each shard owns its own output). sinkFor(w) is called from the
// worker goroutine that generates shard w; if the returned sink also
// implements io.Closer it is closed after Flush. Returns per-shard arc
// counts and the first error encountered in shard order (other shards
// still run to completion).
//
// Cancelling ctx stops every shard within one batch: shards that have
// not started are skipped, running shards stop generating, and their
// sinks are still flushed and closed so partial files are released. The
// first ctx error is reported like any shard error.
func RunPerShardContext(ctx context.Context, shards int, gen ShardGen, sinkFor func(w int) (Sink, error), opts Options) ([]int64, error) {
	o := opts.withDefaults()
	if o.Workers <= 0 {
		o.Workers = par.MaxWorkers()
	}
	counts := make([]int64, shards)
	errs := make([]error, shards)
	var mu sync.Mutex // serializes Progress across shard goroutines
	var arcsTotal, shardsDone int64
	progress := func(addArcs int64, shardDone bool) {
		if o.Progress == nil {
			return
		}
		mu.Lock()
		arcsTotal += addArcs
		if shardDone {
			shardsDone++
		}
		o.Progress(arcsTotal, shardsDone)
		mu.Unlock()
	}
	sem := make(chan struct{}, o.Workers)
	var wg sync.WaitGroup
	wg.Add(shards)
	for w := 0; w < shards; w++ {
		go func(w int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[w] = err
				return
			}
			sink, err := sinkFor(w)
			if err != nil {
				errs[w] = err
				return
			}
			buf := make([]Arc, 0, o.BatchSize)
			gen(w, buf, func(full []Arc) []Arc {
				if cerr := ctx.Err(); cerr != nil {
					err = cerr
					return nil
				}
				if cerr := sink.Consume(full); cerr != nil {
					err = cerr
					return nil
				}
				counts[w] += int64(len(full))
				progress(int64(len(full)), false)
				return full[:0]
			})
			if ferr := sink.Flush(); err == nil {
				err = ferr
			}
			if c, ok := sink.(io.Closer); ok {
				if cerr := c.Close(); err == nil {
					err = cerr
				}
			}
			if err == nil {
				progress(0, true)
			}
			errs[w] = err
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return counts, err
		}
	}
	return counts, nil
}
