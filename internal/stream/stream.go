// Package stream defines the batched edge-streaming primitives shared by
// the generation pipeline: kron produces Arc batches, distgen partitions
// them into communication-free shards, gio serializes them, and the driver
// in this package fans shards out across workers while keeping the output
// order deterministic and independent of the worker count.
//
// The unit of work is a batch — a reused []Arc of a few thousand arcs —
// instead of a per-arc closure call. Batching amortizes callback and
// channel overhead to ~1/|batch| per arc, which is what makes the
// "as fast as the hardware allows" generation path possible: the inner
// loops of the generator append into a flat buffer and the consumers
// (counting, writing, checking) iterate flat buffers.
package stream

// Arc is one directed product edge (u, v). The memory layout is two
// int64s, so a batch is a flat 16·len buffer that serializers can walk
// without per-arc indirection.
type Arc struct {
	U, V int64
}

// DefaultBatchSize is the number of arcs per batch when Options does not
// override it. 4096 arcs = 64 KiB per batch: large enough to amortize
// callback/channel overhead, small enough to stay cache- and pool-friendly.
const DefaultBatchSize = 4096

// Sink consumes a stream of arc batches. Consume may retain nothing: the
// batch slice is recycled by the driver as soon as Consume returns. A sink
// that returns an error stops the stream; Flush is still called exactly
// once at the end of the stream (error or not) so buffered output and
// final checks are reported consistently.
type Sink interface {
	Consume(batch []Arc) error
	Flush() error
}

// Source is the unified contract of every communication-free sharded
// generator — the one abstraction the whole pipeline (ordered streaming,
// sharded writing, one- and two-pass CSR construction) is verbed over.
// Implementations guarantee:
//
//   - replayability: EachShardBatch(w) is a pure function of the source
//     and w — any worker can regenerate any shard at any time, and both
//     passes of a two-pass consumer replay identical bytes;
//   - canonical order: shard w emits only arcs whose source vertex lies
//     in VertexRange(w), in strictly increasing lexicographic (U, V)
//     order, ranges are disjoint and non-decreasing in w, and
//     concatenating shards 0..Shards()-1 yields the source's canonical
//     stream — byte-identical for every shard and worker count;
//   - identity: Name() is a stable spec string that fully reproduces the
//     stream (it is recorded in shard manifests and digestable).
//
// Both the Kronecker plan (distgen.Plan) and the random-model plan
// (model.Plan) satisfy it.
type Source interface {
	// Name returns the stable, digestable identity of the stream.
	Name() string
	// NumVertices returns the vertex-id space [0, n) of the stream.
	NumVertices() int64
	// TotalArcs returns the exact total arc count, or -1 when it is only
	// known in expectation.
	TotalArcs() int64
	// Shards returns the number of shards.
	Shards() int
	// ShardSize returns the exact arc count of shard w, or -1 when
	// unknown ahead of generation.
	ShardSize(w int) int64
	// VertexRange returns the half-open source-vertex range owned by
	// shard w.
	VertexRange(w int) (lo, hi int64)
	// EachShardBatch streams shard w under the ShardGen emit contract.
	EachShardBatch(w int, buf []Arc, emit func(full []Arc) (next []Arc))
}

// ShardGen generates shard w of a partitioned arc stream in that shard's
// deterministic order. The generator fills buf (len 0, fixed capacity) and
// hands every full batch — and the final partial one — to emit; emit takes
// ownership of the slice and returns the next buffer to fill, or nil to
// stop generation early.
type ShardGen func(w int, buf []Arc, emit func(full []Arc) (next []Arc))

// GenFactory produces ShardGens bound to per-worker state. The driver
// calls it once per worker goroutine; the returned ShardGen then
// executes every shard that worker claims, so state it closes over —
// dependency-cell caches, memo tables, kernel scratch — lives for the
// worker's lifetime instead of being rebuilt per shard. The factory
// must be safe for concurrent calls; each returned ShardGen is used by
// one goroutine at a time. Worker state may only change the cost of
// generation, never its bytes: the canonical stream stays identical
// whether a driver uses the factory or a single shared ShardGen.
type GenFactory func() ShardGen

// FactorySource is the optional Source extension for generators with
// reusable worker-lifetime state: drivers that see it call
// ShardGenFactory once per worker instead of sharing one stateless
// ShardGen across all of them.
type FactorySource interface {
	Source
	// ShardGenFactory returns the source's per-worker generator factory.
	ShardGenFactory() GenFactory
}

// Options configures the parallel driver.
type Options struct {
	// Workers bounds the number of concurrently generating shards.
	// 0 means par.MaxWorkers() (GOMAXPROCS).
	Workers int
	// BatchSize is the number of arcs per batch; 0 means DefaultBatchSize.
	BatchSize int
	// Buffer is the number of batches each in-flight shard may queue ahead
	// of the consumer; 0 means 4.
	Buffer int
	// Progress, when non-nil, is invoked by the driver with the
	// cumulative number of arcs delivered and shards completed. The
	// ordered driver calls it from the consuming goroutine after each
	// batch and each shard completion; the per-shard driver serializes
	// calls across its workers. It must be cheap — it runs once per
	// batch, not per arc.
	Progress func(arcs, shardsDone int64)
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.Buffer <= 0 {
		o.Buffer = 4
	}
	return o
}
