// Package stream defines the batched edge-streaming primitives shared by
// the generation pipeline: kron produces Arc batches, distgen partitions
// them into communication-free shards, gio serializes them, and the driver
// in this package fans shards out across workers while keeping the output
// order deterministic and independent of the worker count.
//
// The unit of work is a batch — a reused []Arc of a few thousand arcs —
// instead of a per-arc closure call. Batching amortizes callback and
// channel overhead to ~1/|batch| per arc, which is what makes the
// "as fast as the hardware allows" generation path possible: the inner
// loops of the generator append into a flat buffer and the consumers
// (counting, writing, checking) iterate flat buffers.
package stream

// Arc is one directed product edge (u, v). The memory layout is two
// int64s, so a batch is a flat 16·len buffer that serializers can walk
// without per-arc indirection.
type Arc struct {
	U, V int64
}

// DefaultBatchSize is the number of arcs per batch when Options does not
// override it. 4096 arcs = 64 KiB per batch: large enough to amortize
// callback/channel overhead, small enough to stay cache- and pool-friendly.
const DefaultBatchSize = 4096

// Sink consumes a stream of arc batches. Consume may retain nothing: the
// batch slice is recycled by the driver as soon as Consume returns. A sink
// that returns an error stops the stream; Flush is still called exactly
// once at the end of the stream (error or not) so buffered output and
// final checks are reported consistently.
type Sink interface {
	Consume(batch []Arc) error
	Flush() error
}

// ShardGen generates shard w of a partitioned arc stream in that shard's
// deterministic order. The generator fills buf (len 0, fixed capacity) and
// hands every full batch — and the final partial one — to emit; emit takes
// ownership of the slice and returns the next buffer to fill, or nil to
// stop generation early.
type ShardGen func(w int, buf []Arc, emit func(full []Arc) (next []Arc))

// Options configures the parallel driver.
type Options struct {
	// Workers bounds the number of concurrently generating shards.
	// 0 means par.MaxWorkers() (GOMAXPROCS).
	Workers int
	// BatchSize is the number of arcs per batch; 0 means DefaultBatchSize.
	BatchSize int
	// Buffer is the number of batches each in-flight shard may queue ahead
	// of the consumer; 0 means 4.
	Buffer int
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.Buffer <= 0 {
		o.Buffer = 4
	}
	return o
}
