package gen

import (
	"sort"

	"kronvalid/internal/graph"
	"kronvalid/internal/model"
)

// ChungLu samples an undirected graph with independent edges where
// P(u ~ v) = min(1, d_u·d_v / Σd): the canonical edge-independent null
// model with a prescribed expected degree sequence. Rem. 1 attributes the
// triangle poverty of stochastic Kronecker generators exactly to this
// independence, so ChungLu with the *product's own degree sequence* is
// the paper's implied null.
//
// The sampler is a thin adapter over the sharded Miller–Hagberg core in
// internal/model: vertices are sorted by weight, the streamed core emits
// canonical arcs in the weight-sorted index space, and the arcs are
// mapped back through the sort order — O(n + m) in expectation, and
// byte-identical to the sharded pipeline for every worker count.
func ChungLu(degrees []int64, seed uint64) *graph.Graph {
	n := len(degrees)
	order := chungLuOrder(degrees)
	weights := make([]float64, n)
	for i, v := range order {
		weights[i] = float64(degrees[v])
	}
	mg, err := model.NewChungLu(weights, seed, 0)
	if err != nil {
		panic("gen: " + err.Error())
	}
	arcs := model.Collect(mg)
	edges := make([]graph.Edge, len(arcs))
	for i, a := range arcs {
		edges[i] = graph.Edge{U: order[a.U], V: order[a.V]}
	}
	return graph.FromEdges(n, edges, true)
}

// chungLuOrder returns vertex indices sorted by decreasing weight
// (ties by increasing index) — the bucket order the streamed core
// requires.
func chungLuOrder(degrees []int64) []int32 {
	order := make([]int32, len(degrees))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if degrees[order[a]] != degrees[order[b]] {
			return degrees[order[a]] > degrees[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// ExpectedTrianglesChungLu returns the analytic expected triangle count
// of the Chung-Lu model with the given degree sequence, the standard
// third-moment estimate E[τ] ≈ (Σd²/Σd)³/6 (exact as n → ∞ when no
// probability saturates). Edge-independent models keep at most about this
// many triangles regardless of how the degrees were produced — the
// quantitative content of Rem. 1.
func ExpectedTrianglesChungLu(degrees []int64) float64 {
	var s1, s2 float64
	for _, d := range degrees {
		s1 += float64(d)
		s2 += float64(d) * float64(d)
	}
	if s1 == 0 {
		return 0
	}
	r := s2 / s1
	return r * r * r / 6
}
