package gen

import (
	"math"
	"sort"

	"kronvalid/internal/graph"
	"kronvalid/internal/rng"
)

// ChungLu samples an undirected graph with independent edges where
// P(u ~ v) = min(1, d_u·d_v / Σd): the canonical edge-independent null
// model with a prescribed expected degree sequence. Rem. 1 attributes the
// triangle poverty of stochastic Kronecker generators exactly to this
// independence, so ChungLu with the *product's own degree sequence* is
// the paper's implied null.
//
// Sampling is O(n + m) in expectation via the Miller–Hagberg bucketed
// algorithm: vertices are sorted by weight and, for each u, candidate
// neighbors are skipped geometrically.
func ChungLu(degrees []int64, seed uint64) *graph.Graph {
	n := len(degrees)
	g := rng.New(seed)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if degrees[order[a]] != degrees[order[b]] {
			return degrees[order[a]] > degrees[order[b]]
		}
		return order[a] < order[b]
	})
	var sumD float64
	for _, d := range degrees {
		sumD += float64(d)
	}
	if sumD == 0 {
		return graph.FromEdges(n, nil, true)
	}
	var edges []graph.Edge
	for i := 0; i < n-1; i++ {
		wu := float64(degrees[order[i]])
		if wu == 0 {
			break
		}
		j := i + 1
		p := wu * float64(degrees[order[j]]) / sumD
		if p > 1 {
			p = 1
		}
		for j < n && p > 0 {
			if p < 1 {
				// Geometric skip to the next candidate that survives a
				// Bernoulli(p) sequence.
				skip := int(math.Log1p(-g.Float64()) / math.Log1p(-p))
				j += skip
			}
			if j >= n {
				break
			}
			q := wu * float64(degrees[order[j]]) / sumD
			if q > 1 {
				q = 1
			}
			if g.Float64() < q/p {
				edges = append(edges, graph.Edge{U: order[i], V: order[j]})
			}
			p = q
			j++
		}
	}
	return graph.FromEdges(n, edges, true)
}

// ExpectedTrianglesChungLu returns the analytic expected triangle count
// of the Chung-Lu model with the given degree sequence, the standard
// third-moment estimate E[τ] ≈ (Σd²/Σd)³/6 (exact as n → ∞ when no
// probability saturates). Edge-independent models keep at most about this
// many triangles regardless of how the degrees were produced — the
// quantitative content of Rem. 1.
func ExpectedTrianglesChungLu(degrees []int64) float64 {
	var s1, s2 float64
	for _, d := range degrees {
		s1 += float64(d)
		s2 += float64(d) * float64(d)
	}
	if s1 == 0 {
		return 0
	}
	r := s2 / s1
	return r * r * r / 6
}
