package gen

import (
	"testing"
	"testing/quick"

	"kronvalid/internal/triangle"
)

func TestCliqueCounts(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10} {
		k := Clique(n)
		if k.NumVertices() != n {
			t.Fatalf("K_%d vertices = %d", n, k.NumVertices())
		}
		if got, want := k.NumEdgesUndirected(), int64(n*(n-1)/2); got != want {
			t.Errorf("K_%d edges = %d, want %d", n, got, want)
		}
		if k.HasAnyLoop() {
			t.Errorf("K_%d has loops", n)
		}
		j := CliqueWithLoops(n)
		if j.NumLoops() != int64(n) {
			t.Errorf("J_%d loops = %d", n, j.NumLoops())
		}
		if got, want := j.NumEdgesUndirected(), int64(n*(n-1)/2+n); got != want {
			t.Errorf("J_%d edges = %d, want %d", n, got, want)
		}
	}
}

func TestSimpleFamilies(t *testing.T) {
	p := Path(5)
	if p.NumEdgesUndirected() != 4 || triangle.Count(p).Total != 0 {
		t.Error("Path(5) wrong")
	}
	c := Cycle(5)
	if c.NumEdgesUndirected() != 5 || triangle.Count(c).Total != 0 {
		t.Error("Cycle(5) wrong")
	}
	if triangle.Count(Cycle(3)).Total != 1 {
		t.Error("Cycle(3) should be one triangle")
	}
	s := Star(6)
	if s.NumEdgesUndirected() != 5 || s.Degree(0) != 5 || triangle.Count(s).Total != 0 {
		t.Error("Star(6) wrong")
	}
	kb := CompleteBipartite(3, 4)
	if kb.NumEdgesUndirected() != 12 || triangle.Count(kb).Total != 0 {
		t.Error("K_{3,4} wrong")
	}
	if !Triangle().Equal(Clique(3)) {
		t.Error("Triangle() != K_3")
	}
}

func TestHubCycleIsEx2(t *testing.T) {
	h := HubCycle(4)
	if h.NumVertices() != 5 {
		t.Fatalf("vertices = %d", h.NumVertices())
	}
	if h.NumEdgesUndirected() != 8 {
		t.Fatalf("edges = %d, want 8", h.NumEdgesUndirected())
	}
	res := triangle.Count(h)
	if res.Total != 4 {
		t.Fatalf("triangles = %d, want 4", res.Total)
	}
	// Hub edges (0,v) participate in 2 triangles; cycle edges in 1.
	for v := int32(1); v <= 4; v++ {
		if got := res.EdgeDelta.At(0, int(v)); got != 2 {
			t.Errorf("hub edge (0,%d) Δ = %d, want 2", v, got)
		}
	}
	for v := 1; v <= 4; v++ {
		next := v%4 + 1
		if got := res.EdgeDelta.At(v, next); got != 1 {
			t.Errorf("cycle edge (%d,%d) Δ = %d, want 1", v, next, got)
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 0.1, 7)
	if !g.IsSymmetric() || g.HasAnyLoop() {
		t.Fatal("ER graph malformed")
	}
	m := g.NumEdgesUndirected()
	// Expected 495 edges; allow wide slack.
	if m < 300 || m > 700 {
		t.Errorf("ER(100, 0.1) edges = %d, far from expectation 495", m)
	}
	// Determinism.
	if !g.Equal(ErdosRenyi(100, 0.1, 7)) {
		t.Error("same-seed ER graphs differ")
	}
	if g.Equal(ErdosRenyi(100, 0.1, 8)) {
		t.Error("different-seed ER graphs identical")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, 11)
	if !g.IsSymmetric() || g.HasAnyLoop() {
		t.Fatal("BA graph malformed")
	}
	if _, comps := g.ConnectedComponents(); comps != 1 {
		t.Errorf("BA graph has %d components, want 1", comps)
	}
	// Each vertex past the seed draws m=3 attachments; dropped self
	// loops and merged duplicate draws shave off a few edges.
	maxEdges := int64(3 + (500-4)*3)
	if got := g.NumEdgesUndirected(); got > maxEdges || got < maxEdges*9/10 {
		t.Errorf("BA edges = %d, want within 10%% below %d", got, maxEdges)
	}
	// Heavy tail: max degree far above mean.
	var maxd int64
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(int32(v)); d > maxd {
			maxd = d
		}
	}
	if maxd < 20 {
		t.Errorf("BA max degree = %d, expected a hub", maxd)
	}
	if !g.Equal(BarabasiAlbert(500, 3, 11)) {
		t.Error("same-seed BA graphs differ")
	}
}

func TestWebGraphHasManyTriangles(t *testing.T) {
	g := WebGraph(2000, 4, 0.8, 13)
	if !g.IsSymmetric() || g.HasAnyLoop() {
		t.Fatal("web graph malformed")
	}
	if _, comps := g.ConnectedComponents(); comps != 1 {
		t.Errorf("web graph has %d components", comps)
	}
	res := triangle.Count(g)
	// Triad closure should produce on the order of one triangle per
	// closure step; require a healthy count.
	if res.Total < 2000 {
		t.Errorf("web graph triangles = %d, expected thousands", res.Total)
	}
	// Compare to a same-size BA graph: triad closure must yield more.
	ba := BarabasiAlbert(2000, 4, 13)
	if baTotal := triangle.Count(ba).Total; res.Total <= baTotal {
		t.Errorf("web graph (%d) should out-triangle BA (%d)", res.Total, baTotal)
	}
}

func TestRMAT(t *testing.T) {
	g := Graph500RMAT(10, 17)
	if g.NumVertices() != 1024 {
		t.Fatalf("RMAT vertices = %d", g.NumVertices())
	}
	if !g.IsSymmetric() || g.HasAnyLoop() {
		t.Fatal("RMAT graph malformed")
	}
	if g.NumEdgesUndirected() == 0 {
		t.Fatal("RMAT graph empty")
	}
	if !g.Equal(Graph500RMAT(10, 17)) {
		t.Error("same-seed RMAT graphs differ")
	}
	// Skew: with Graph500 parameters low-id vertices are much heavier.
	var low, high int64
	for v := 0; v < 512; v++ {
		low += g.Degree(int32(v))
	}
	for v := 512; v < 1024; v++ {
		high += g.Degree(int32(v))
	}
	if low <= high {
		t.Errorf("RMAT degree mass not skewed: low=%d high=%d", low, high)
	}
}

func TestTriangleLimitedPA(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 99} {
		g := TriangleLimitedPA(400, seed)
		if g.NumVertices() != 400 || !g.IsSymmetric() || g.HasAnyLoop() {
			t.Fatal("PA graph malformed")
		}
		if _, comps := g.ConnectedComponents(); comps != 1 {
			t.Fatalf("PA graph disconnected (%d components)", comps)
		}
		if mx := MaxEdgeTriangles(g); mx > 1 {
			t.Fatalf("seed %d: max edge triangles = %d, want <= 1", seed, mx)
		}
		// It should actually contain triangles (not vacuous).
		if triangle.Count(g).Total == 0 {
			t.Errorf("seed %d: PA graph has no triangles at all", seed)
		}
	}
	if !TriangleLimitedPA(400, 5).Equal(TriangleLimitedPA(400, 5)) {
		t.Error("same-seed PA graphs differ")
	}
}

func TestQuickTriangleLimitedPAInvariant(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 3 + int(nRaw)%200
		g := TriangleLimitedPA(n, seed)
		_, comps := g.ConnectedComponents()
		return MaxEdgeTriangles(g) <= 1 && comps == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestThinToDeltaOne(t *testing.T) {
	// Start from a dense graph; after thinning: Δ <= 1 and connectivity
	// preserved.
	in := ErdosRenyi(60, 0.2, 21)
	_, compsBefore := in.ConnectedComponents()
	out := ThinToDeltaOne(in, 22)
	if mx := MaxEdgeTriangles(out); mx > 1 {
		t.Fatalf("thinned graph has edge with %d triangles", mx)
	}
	if _, compsAfter := out.ConnectedComponents(); compsAfter != compsBefore {
		t.Fatalf("thinning changed components: %d -> %d", compsBefore, compsAfter)
	}
	// Only removals: every surviving edge existed before.
	out.EachEdgeUndirected(func(u, v int32) bool {
		if !in.HasEdge(u, v) {
			t.Fatalf("thinning invented edge (%d,%d)", u, v)
		}
		return true
	})
}

func TestThinToDeltaOneOnClique(t *testing.T) {
	out := ThinToDeltaOne(Clique(8), 5)
	if mx := MaxEdgeTriangles(out); mx > 1 {
		t.Fatalf("thinned K_8 has edge with %d triangles", mx)
	}
	if _, comps := out.ConnectedComponents(); comps != 1 {
		t.Fatal("thinned K_8 disconnected")
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := []func(){
		func() { Cycle(2) },
		func() { HubCycle(2) },
		func() { BarabasiAlbert(3, 3, 1) },
		func() { WebGraph(3, 3, 0.5, 1) },
		func() { TriangleLimitedPA(1, 1) },
		func() { RMAT(0, 10, 0.25, 0.25, 0.25, 0.25, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestChungLu(t *testing.T) {
	// Regular degrees: realized edge count near expectation.
	degs := make([]int64, 400)
	for i := range degs {
		degs[i] = 10
	}
	g := ChungLu(degs, 3)
	if !g.IsSymmetric() || g.HasAnyLoop() {
		t.Fatal("ChungLu output malformed")
	}
	m := g.NumEdgesUndirected()
	// Expected ~ n*d/2 = 2000; allow ±25%.
	if m < 1500 || m > 2500 {
		t.Errorf("ChungLu edges = %d, expected near 2000", m)
	}
	if !g.Equal(ChungLu(degs, 3)) {
		t.Error("same-seed ChungLu differs")
	}
	// Degenerate inputs.
	if ChungLu(nil, 1).NumVertices() != 0 {
		t.Error("empty ChungLu wrong")
	}
	if ChungLu([]int64{0, 0, 0}, 1).NumEdgesUndirected() != 0 {
		t.Error("zero-weight ChungLu has edges")
	}
}

func TestChungLuPreservesDegreeShape(t *testing.T) {
	// Heavy-tailed input weights: the heaviest vertex should realize a
	// much higher degree than the median vertex.
	degs := make([]int64, 1000)
	for i := range degs {
		degs[i] = 2
	}
	degs[0] = 400
	g := ChungLu(degs, 5)
	if g.Degree(0) < 100 {
		t.Errorf("hub degree = %d, expected large", g.Degree(0))
	}
}

func TestExpectedTrianglesChungLu(t *testing.T) {
	if ExpectedTrianglesChungLu(nil) != 0 || ExpectedTrianglesChungLu([]int64{0}) != 0 {
		t.Error("degenerate expectation nonzero")
	}
	// Regular degrees d on n vertices: E[τ] = d³/6.
	degs := make([]int64, 100)
	for i := range degs {
		degs[i] = 12
	}
	if got := ExpectedTrianglesChungLu(degs); got != 288 {
		t.Errorf("E[τ] = %v, want 288", got)
	}
}

func TestChungLuMatchesAnalyticExpectation(t *testing.T) {
	// Average over several samples should land near the analytic value.
	degs := make([]int64, 600)
	for i := range degs {
		degs[i] = int64(3 + i%12)
	}
	want := ExpectedTrianglesChungLu(degs)
	var sum int64
	const trials = 8
	for s := uint64(0); s < trials; s++ {
		sum += triangle.Count(ChungLu(degs, s)).Total
	}
	got := float64(sum) / trials
	if got < want*0.5 || got > want*1.7 {
		t.Errorf("sampled mean τ = %.1f, analytic %.1f", got, want)
	}
}
