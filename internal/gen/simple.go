// Package gen provides the graph generators used as Kronecker factors and
// baselines: deterministic families (cliques, cycles, the paper's Ex. 2
// hub-cycle), random models (Erdős–Rényi, Barabási–Albert, a Holme–Kim
// style triad-closure web-graph stand-in), the paper's §III.D generators
// for factors with Δ ≤ 1, and the stochastic-Kronecker R-MAT baseline of
// Rem. 1.
//
// Every randomized generator takes an explicit uint64 seed and is fully
// deterministic given it.
package gen

import "kronvalid/internal/graph"

// Clique returns K_n: the complete loop-free graph on n vertices
// (Ex. 1's first building block).
func Clique(n int) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
		}
	}
	return graph.FromEdges(n, edges, true)
}

// CliqueWithLoops returns J_n = 1·1^t: the complete graph with a self
// loop at every vertex (Ex. 1's second building block).
func CliqueWithLoops(n int) *graph.Graph {
	return Clique(n).WithAllLoops()
}

// Path returns the path 0-1-…-(n-1).
func Path(n int) *graph.Graph {
	var edges []graph.Edge
	for v := 0; v+1 < n; v++ {
		edges = append(edges, graph.Edge{U: int32(v), V: int32(v + 1)})
	}
	return graph.FromEdges(n, edges, true)
}

// Cycle returns the n-cycle (n >= 3).
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: Cycle needs n >= 3")
	}
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		edges = append(edges, graph.Edge{U: int32(v), V: int32((v + 1) % n)})
	}
	return graph.FromEdges(n, edges, true)
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) *graph.Graph {
	var edges []graph.Edge
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(v)})
	}
	return graph.FromEdges(n, edges, true)
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			edges = append(edges, graph.Edge{U: int32(u), V: int32(a + v)})
		}
	}
	return graph.FromEdges(a+b, edges, true)
}

// HubCycle returns the paper's Ex. 2 graph generalized: a c-cycle
// (vertices 1..c) plus a hub (vertex 0) adjacent to every cycle vertex.
// HubCycle(4) is exactly Ex. 2: 5 vertices, 8 edges, 4 triangles; cycle
// edges participate in 1 triangle, hub edges in 2.
func HubCycle(c int) *graph.Graph {
	if c < 3 {
		panic("gen: HubCycle needs cycle length >= 3")
	}
	var edges []graph.Edge
	for v := 1; v <= c; v++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(v)})
		next := v + 1
		if next > c {
			next = 1
		}
		edges = append(edges, graph.Edge{U: int32(v), V: int32(next)})
	}
	return graph.FromEdges(c+1, edges, true)
}

// Triangle returns K_3.
func Triangle() *graph.Graph { return Clique(3) }
