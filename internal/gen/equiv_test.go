package gen

import (
	"testing"

	"kronvalid/internal/gio"
	"kronvalid/internal/graph"
	"kronvalid/internal/model"
	"kronvalid/internal/stream"
)

// streamArcs collects a model's stream through the ordered parallel
// pipeline at the given worker count.
func streamArcs(t *testing.T, g model.Generator, workers int) []stream.Arc {
	t.Helper()
	var out []stream.Arc
	pl := model.NewPlan(g, workers)
	if _, err := pl.StreamTo(stream.FuncSink(func(batch []stream.Arc) error {
		out = append(out, batch...)
		return nil
	}), stream.Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	return out
}

// graphFromArcs symmetrizes a streamed arc list into an explicit graph,
// optionally relabeling through order (nil means identity).
func graphFromArcs(n int, arcs []stream.Arc, order []int32) *graph.Graph {
	edges := make([]graph.Edge, len(arcs))
	for i, a := range arcs {
		u, v := int32(a.U), int32(a.V)
		if order != nil {
			u, v = order[u], order[v]
		}
		edges[i] = graph.Edge{U: u, V: v}
	}
	return graph.FromEdges(n, edges, true)
}

// The satellite contract: for every ported model, the legacy constructor
// must produce a digest-identical graph to the sharded stream at
// P ∈ {1, 2, 8} — the explicit and streamed paths are one code path.

func TestErdosRenyiLegacyStreamEquivalence(t *testing.T) {
	const n, p, seed = 900, 0.01, 7
	want := gio.GraphDigest(ErdosRenyi(n, p, seed))
	mg, err := model.NewErdosRenyi(n, p, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got := gio.GraphDigest(graphFromArcs(n, streamArcs(t, mg, workers), nil))
		if got != want {
			t.Errorf("P=%d: streamed ER digest %s != legacy %s", workers, got, want)
		}
	}
}

func TestGNMLegacyStreamEquivalence(t *testing.T) {
	const n, m, seed = 700, 4200, 21
	want := gio.GraphDigest(GNM(n, m, seed))
	mg, err := model.NewGnm(n, m, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got := gio.GraphDigest(graphFromArcs(n, streamArcs(t, mg, workers), nil))
		if got != want {
			t.Errorf("P=%d: streamed G(n,m) digest %s != legacy %s", workers, got, want)
		}
	}
}

func TestRMATLegacyStreamEquivalence(t *testing.T) {
	const scale, edges, seed = 10, 8192, 17
	want := gio.GraphDigest(RMAT(scale, edges, 0.57, 0.19, 0.19, 0.05, seed))
	mg, err := model.NewRMAT(scale, edges, 0.57, 0.19, 0.19, 0.05, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got := gio.GraphDigest(graphFromArcs(1<<scale, streamArcs(t, mg, workers), nil))
		if got != want {
			t.Errorf("P=%d: streamed RMAT digest %s != legacy %s", workers, got, want)
		}
	}
}

func TestChungLuLegacyStreamEquivalence(t *testing.T) {
	degrees := make([]int64, 800)
	for i := range degrees {
		degrees[i] = int64(2 + i%17)
	}
	degrees[0] = 200 // a hub, to exercise saturation and sorting
	const seed = 33
	want := gio.GraphDigest(ChungLu(degrees, seed))
	order := chungLuOrder(degrees)
	weights := make([]float64, len(degrees))
	for i, v := range order {
		weights[i] = float64(degrees[v])
	}
	mg, err := model.NewChungLu(weights, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got := gio.GraphDigest(graphFromArcs(len(degrees), streamArcs(t, mg, workers), order))
		if got != want {
			t.Errorf("P=%d: streamed ChungLu digest %s != legacy %s", workers, got, want)
		}
	}
}

func TestBarabasiAlbertLegacyStreamEquivalence(t *testing.T) {
	const n, m, seed = 800, 3, 11
	want := gio.GraphDigest(BarabasiAlbert(n, m, seed))
	mg, err := model.NewBarabasiAlbert(n, m, 0, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got := gio.GraphDigest(graphFromArcs(n, streamArcs(t, mg, workers), nil))
		if got != want {
			t.Errorf("P=%d: streamed BA digest %s != legacy %s", workers, got, want)
		}
	}
}

// TestRGGByteIdentityAcrossWorkers is the spatial-model counterpart of
// the legacy-equivalence tests: there is no legacy RGG, so the pin is
// the serial chunk-by-chunk stream itself — the parallel pipeline must
// reproduce it arc for arc at P ∈ {1, 2, 8}, neighbor-cell
// recomputation included.
func TestRGGByteIdentityAcrossWorkers(t *testing.T) {
	for _, spec := range []string{
		"rgg2d:n=2000,r=0.04,seed=3",
		"rgg3d:n=900,r=0.12,seed=6",
	} {
		mg, err := model.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		want := model.Collect(mg)
		if len(want) == 0 {
			t.Fatalf("%s: empty stream, test is vacuous", spec)
		}
		for _, workers := range []int{1, 2, 8} {
			got := streamArcs(t, mg, workers)
			if len(got) != len(want) {
				t.Fatalf("%s P=%d: %d arcs, want %d", spec, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s P=%d: arc %d = %v, want %v", spec, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRHGGridByteIdentityAcrossWorkers extends the spatial pin to the
// hyperbolic and lattice kinds: the parallel pipeline must reproduce
// the serial chunk-by-chunk stream arc for arc, foreign-cell
// regeneration (rhg) and per-chunk skip walks (grid) included.
func TestRHGGridByteIdentityAcrossWorkers(t *testing.T) {
	for _, spec := range []string{
		"rhg:n=1500,d=8,gamma=2.7,seed=5",
		"grid2d:x=40,y=30,p=0.5,wrap=true,seed=6",
		"grid3d:x=10,y=9,z=8,p=0.6,wrap=true,seed=7",
	} {
		mg, err := model.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		want := model.Collect(mg)
		if len(want) == 0 {
			t.Fatalf("%s: empty stream, test is vacuous", spec)
		}
		for _, workers := range []int{1, 2, 8} {
			got := streamArcs(t, mg, workers)
			if len(got) != len(want) {
				t.Fatalf("%s P=%d: %d arcs, want %d", spec, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s P=%d: arc %d = %v, want %v", spec, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGNMProperties(t *testing.T) {
	g := GNM(200, 1500, 3)
	if !g.IsSymmetric() || g.HasAnyLoop() {
		t.Fatal("GNM graph malformed")
	}
	if got := g.NumEdgesUndirected(); got != 1500 {
		t.Fatalf("GNM edges = %d, want exactly 1500", got)
	}
	if !g.Equal(GNM(200, 1500, 3)) {
		t.Error("same-seed GNM graphs differ")
	}
	if g.Equal(GNM(200, 1500, 4)) {
		t.Error("different-seed GNM graphs identical")
	}
}
