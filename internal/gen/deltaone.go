package gen

import (
	"sort"

	"kronvalid/internal/graph"
	"kronvalid/internal/rng"
	"kronvalid/internal/triangle"
)

// TriangleLimitedPA implements the paper's §III.D strategy (b): a
// preferential-attachment generator whose output is a connected power-law
// graph in which every edge participates in at most one triangle — the
// Δ_B ≤ 1 hypothesis of Thm. 3.
//
// The generator starts with a single edge. For each new vertex u it picks
// an existing edge (i, j) uniformly at random and a vertex v ∈ {i, j}
// uniformly, and adds (u, v). If edge (i, j) is in no triangle yet, it
// also adds (u, w) for the other endpoint w, closing exactly one triangle
// and marking all three edges as saturated.
func TriangleLimitedPA(n int, seed uint64) *graph.Graph {
	if n < 2 {
		panic("gen: TriangleLimitedPA needs n >= 2")
	}
	g := rng.New(seed)
	type edge struct{ i, j int32 }
	edges := []edge{{0, 1}}
	inTriangle := map[edge]bool{}
	key := func(a, b int32) edge {
		if a > b {
			a, b = b, a
		}
		return edge{a, b}
	}
	for u := int32(2); u < int32(n); u++ {
		e := edges[g.Intn(len(edges))]
		var v, w int32
		if g.Bool() {
			v, w = e.i, e.j
		} else {
			v, w = e.j, e.i
		}
		edges = append(edges, key(u, v))
		if !inTriangle[key(e.i, e.j)] {
			edges = append(edges, key(u, w))
			inTriangle[key(e.i, e.j)] = true
			inTriangle[key(u, v)] = true
			inTriangle[key(u, w)] = true
		}
	}
	out := make([]graph.Edge, len(edges))
	for i, e := range edges {
		out[i] = graph.Edge{U: e.i, V: e.j}
	}
	return graph.FromEdges(n, out, true)
}

// ThinToDeltaOne implements §III.D strategy (a): starting from an
// arbitrary undirected graph, delete edges until every remaining edge
// participates in at most one triangle, while preserving connectivity by
// protecting a spanning forest. Deletions prefer the most-loaded edges,
// randomized by seed among ties.
func ThinToDeltaOne(in *graph.Graph, seed uint64) *graph.Graph {
	if !in.IsSymmetric() {
		panic("gen: ThinToDeltaOne requires an undirected graph")
	}
	work := in.WithoutLoops()
	n := work.NumVertices()
	g := rng.New(seed)

	// Spanning forest via BFS: protected edges.
	type ekey struct{ u, v int32 }
	key := func(a, b int32) ekey {
		if a > b {
			a, b = b, a
		}
		return ekey{a, b}
	}
	protected := map[ekey]bool{}
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range work.Neighbors(v) {
				if !visited[w] {
					visited[w] = true
					protected[key(v, w)] = true
					queue = append(queue, w)
				}
			}
		}
	}

	current := work
	for {
		res := triangle.Count(current)
		// Collect overloaded edges (Δ > 1), heaviest first.
		type cand struct {
			u, v int32
			load int64
		}
		var cands []cand
		res.EdgeDelta.Each(func(r, c int, v int64) bool {
			if r < c && v > 1 {
				cands = append(cands, cand{int32(r), int32(c), v})
			}
			return true
		})
		if len(cands) == 0 {
			return current
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].load > cands[b].load })
		// Remove one edge per iteration: the heaviest removable edge, or
		// if it is protected, a non-protected edge of one of its
		// triangles (every triangle has at least one non-tree edge).
		target := cands[g.Intn(minInt(len(cands), 3))] // randomized among top-3
		var removeU, removeV int32 = -1, -1
		if !protected[key(target.u, target.v)] {
			removeU, removeV = target.u, target.v
		} else {
			// Find a triangle through (u, v) and remove one of its other
			// edges that is not protected.
			nu := current.Neighbors(target.u)
			for _, w := range nu {
				if w == target.v || !current.HasEdge(target.v, w) {
					continue
				}
				if !protected[key(target.u, w)] {
					removeU, removeV = target.u, w
					break
				}
				if !protected[key(target.v, w)] {
					removeU, removeV = target.v, w
					break
				}
			}
		}
		if removeU < 0 {
			// All three edges protected: impossible for a spanning
			// forest (it would contain a cycle), but guard anyway by
			// removing the target edge.
			removeU, removeV = target.u, target.v
		}
		var keep []graph.Edge
		current.EachEdgeUndirected(func(a, b int32) bool {
			if key(a, b) != key(removeU, removeV) {
				keep = append(keep, graph.Edge{U: a, V: b})
			}
			return true
		})
		current = graph.FromEdges(n, keep, true)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MaxEdgeTriangles returns the largest number of triangles any edge of
// the undirected graph participates in (0 for triangle-free graphs) — a
// quick checker for the Δ ≤ 1 hypothesis.
func MaxEdgeTriangles(g *graph.Graph) int64 {
	return triangle.Count(g).EdgeDelta.MaxVal()
}
