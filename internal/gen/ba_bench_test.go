package gen

import (
	"testing"

	"kronvalid/internal/gio"
	"kronvalid/internal/graph"
	"kronvalid/internal/rng"
)

// barabasiAlbertMapDedup is the seed implementation's inner loop — a
// freshly allocated map[int32]bool per vertex — kept verbatim as the
// baseline for BenchmarkBADedup and as the behavior pin for the
// small-slice rewrite: both must draw the same rng sequence and build
// the same graph. (The public BarabasiAlbert has since moved onto the
// communication-free retracing core; these sequential variants remain
// as the measured history of the inner-loop optimization.)
func barabasiAlbertMapDedup(n, m int, seed uint64) *graph.Graph {
	g := rng.New(seed)
	var targets []int32
	var edges []graph.Edge
	for v := 1; v <= m; v++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(v)})
		targets = append(targets, 0, int32(v))
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int32]bool{}
		order := make([]int32, 0, m)
		for len(order) < m {
			w := targets[g.Intn(len(targets))]
			if !chosen[w] {
				chosen[w] = true
				order = append(order, w)
			}
		}
		for _, w := range order {
			edges = append(edges, graph.Edge{U: int32(v), V: w})
			targets = append(targets, int32(v), w)
		}
	}
	return graph.FromEdges(n, edges, true)
}

// barabasiAlbertSliceDedup is the small-slice rewrite of the map inner
// loop (the former public BarabasiAlbert): same rng sequence, reused
// smallSet membership scan instead of a fresh map per vertex.
func barabasiAlbertSliceDedup(n, m int, seed uint64) *graph.Graph {
	g := rng.New(seed)
	var targets []int32
	var edges []graph.Edge
	for v := 1; v <= m; v++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(v)})
		targets = append(targets, 0, int32(v))
	}
	order := make(smallSet, 0, m)
	for v := m + 1; v < n; v++ {
		order = order[:0]
		for len(order) < m {
			w := targets[g.Intn(len(targets))]
			if !order.contains(w) {
				order = append(order, w)
			}
		}
		for _, w := range order {
			edges = append(edges, graph.Edge{U: int32(v), V: w})
			targets = append(targets, int32(v), w)
		}
	}
	return graph.FromEdges(n, edges, true)
}

// TestBarabasiAlbertMatchesMapBaseline pins that replacing the map with
// the reusable small-slice membership check changed no behavior: the
// accept/reject sequence, and therefore the graph, is identical.
func TestBarabasiAlbertMatchesMapBaseline(t *testing.T) {
	for _, tc := range []struct {
		n, m int
		seed uint64
	}{{500, 3, 11}, {300, 1, 2}, {200, 8, 9}} {
		want := gio.GraphDigest(barabasiAlbertMapDedup(tc.n, tc.m, tc.seed))
		got := gio.GraphDigest(barabasiAlbertSliceDedup(tc.n, tc.m, tc.seed))
		if got != want {
			t.Errorf("BA(%d,%d,%d): slice-dedup digest %s != map baseline %s",
				tc.n, tc.m, tc.seed, got, want)
		}
	}
}

// BenchmarkBADedup measures the sequential inner-loop satellite win
// (reused small slice vs freshly allocated map) alongside the
// communication-free retracing core that replaced both as the public
// BarabasiAlbert.
func BenchmarkBADedup(b *testing.B) {
	const n, m = 20000, 8
	b.Run("map-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			barabasiAlbertMapDedup(n, m, 11)
		}
	})
	b.Run("small-slice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			barabasiAlbertSliceDedup(n, m, 11)
		}
	})
	b.Run("retracing-core", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			BarabasiAlbert(n, m, 11)
		}
	})
}
