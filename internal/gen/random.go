package gen

import (
	"kronvalid/internal/graph"
	"kronvalid/internal/rng"
)

// ErdosRenyi returns G(n, p): each unordered pair is an edge independently
// with probability p.
func ErdosRenyi(n int, p float64, seed uint64) *graph.Graph {
	g := rng.New(seed)
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.Float64() < p {
				edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
			}
		}
	}
	return graph.FromEdges(n, edges, true)
}

// BarabasiAlbert returns the preferential-attachment graph of [35]: each
// new vertex attaches to m distinct existing vertices chosen with
// probability proportional to degree. The result is connected and
// loop-free with a power-law degree tail.
func BarabasiAlbert(n, m int, seed uint64) *graph.Graph {
	if m < 1 || n < m+1 {
		panic("gen: BarabasiAlbert needs n > m >= 1")
	}
	g := rng.New(seed)
	// targets is the repeated-endpoint list: sampling uniformly from it
	// is sampling proportional to degree.
	var targets []int32
	var edges []graph.Edge
	// Seed with a star on m+1 vertices so the first arrivals have m
	// distinct attachment points.
	for v := 1; v <= m; v++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(v)})
		targets = append(targets, 0, int32(v))
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int32]bool{}
		order := make([]int32, 0, m)
		for len(order) < m {
			w := targets[g.Intn(len(targets))]
			if !chosen[w] {
				chosen[w] = true
				order = append(order, w)
			}
		}
		for _, w := range order {
			edges = append(edges, graph.Edge{U: int32(v), V: w})
			targets = append(targets, int32(v), w)
		}
	}
	return graph.FromEdges(n, edges, true)
}

// WebGraph is the offline stand-in for the paper's web-NotreDame input: a
// Holme–Kim style scale-free generator with triad closure. Each new
// vertex makes m attachments; the first is preferential, and each
// subsequent one closes a triangle with probability pt (attaching to a
// random neighbor of the previous target), otherwise attaches
// preferentially. High pt yields the heavy clustering (millions of
// triangles at web scale) that the paper's experiment relies on.
func WebGraph(n, m int, pt float64, seed uint64) *graph.Graph {
	if m < 1 || n < m+1 {
		panic("gen: WebGraph needs n > m >= 1")
	}
	g := rng.New(seed)
	var targets []int32
	adj := make([][]int32, n)
	var edges []graph.Edge
	addEdge := func(u, v int32) {
		edges = append(edges, graph.Edge{U: u, V: v})
		targets = append(targets, u, v)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for v := 1; v <= m; v++ {
		addEdge(0, int32(v))
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int32]bool{}
		order := make([]int32, 0, m)
		var prev int32 = -1
		for len(order) < m {
			var w int32 = -1
			if prev >= 0 && g.Float64() < pt && len(adj[prev]) > 0 {
				// Triad closure: a random neighbor of the previous target.
				w = adj[prev][g.Intn(len(adj[prev]))]
			}
			if w < 0 || w == int32(v) || chosen[w] {
				w = targets[g.Intn(len(targets))]
			}
			if w == int32(v) || chosen[w] {
				continue
			}
			chosen[w] = true
			order = append(order, w)
			prev = w
		}
		for _, w := range order {
			addEdge(int32(v), w)
		}
	}
	return graph.FromEdges(n, edges, true)
}

// RMAT returns a stochastic Kronecker (R-MAT [4]) graph: 2^scale
// vertices, approximately edges undirected edges sampled with quadrant
// probabilities (a, b, c, d), a+b+c+d = 1. Duplicates are merged and self
// loops dropped, so the realized edge count can be slightly lower. This is
// the Rem. 1 baseline: edge independence makes triangles scarce.
func RMAT(scale int, edges int64, a, b, c, d float64, seed uint64) *graph.Graph {
	if scale < 1 || scale > 30 {
		panic("gen: RMAT scale out of range [1,30]")
	}
	sum := a + b + c + d
	if sum <= 0 {
		panic("gen: RMAT probabilities must be positive")
	}
	a, b, c = a/sum, b/sum, c/sum
	g := rng.New(seed)
	n := 1 << uint(scale)
	var list []graph.Edge
	for e := int64(0); e < edges; e++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := g.Float64()
			switch {
			case r < a:
				// top-left
			case r < a+b:
				v |= 1 << uint(bit)
			case r < a+b+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u != v {
			list = append(list, graph.Edge{U: int32(u), V: int32(v)})
		}
	}
	return graph.FromEdges(n, list, true)
}

// Graph500RMAT returns an R-MAT graph with the Graph500 benchmark
// parameters (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) and edge factor 16.
func Graph500RMAT(scale int, seed uint64) *graph.Graph {
	return RMAT(scale, 16<<uint(scale), 0.57, 0.19, 0.19, 0.05, seed)
}
