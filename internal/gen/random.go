package gen

import (
	"fmt"
	"math"

	"kronvalid/internal/graph"
	"kronvalid/internal/model"
	"kronvalid/internal/rng"
)

// collectModel materializes a streamed model as an explicit undirected
// factor graph: the legacy constructors below are thin adapters over the
// communication-free sharded cores in internal/model, so the explicit
// and streamed paths can never drift apart.
func collectModel(g model.Generator, err error) (*graph.Graph, error) {
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if n > int64(^uint32(0)>>1) {
		return nil, fmt.Errorf("gen: model with %d vertices too large for an explicit int32 graph", n)
	}
	arcs := model.Collect(g)
	edges := make([]graph.Edge, len(arcs))
	for i, a := range arcs {
		edges[i] = graph.Edge{U: int32(a.U), V: int32(a.V)}
	}
	return graph.FromEdges(int(n), edges, true), nil
}

// fromModel is collectModel for the panicking legacy constructors,
// whose contract (like BarabasiAlbert's) is to panic on invalid
// arguments. Error-returning callers — the spec boundary — use the
// *Err variants instead.
func fromModel(g model.Generator, err error) *graph.Graph {
	out, err := collectModel(g, err)
	if err != nil {
		panic("gen: " + err.Error())
	}
	return out
}

// ErdosRenyi returns G(n, p): each unordered pair is an edge
// independently with probability p. It adapts the sharded streaming
// core, which skips geometrically through the pair index space —
// O(expected edges), not the O(n²) Bernoulli sweep of the seed
// implementation. Out-of-range p keeps the seed implementation's
// behavior: it acts as its clamp into [0, 1] (NaN as 0).
func ErdosRenyi(n int, p float64, seed uint64) *graph.Graph {
	if math.IsNaN(p) || p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return fromModel(model.NewErdosRenyi(int64(n), p, seed, 0))
}

// GNM returns G(n, m): exactly m distinct unordered pairs, uniform up
// to the deterministic binomial edge-count splitting of the streamed
// core. It panics on invalid arguments; spec-boundary callers use
// GNMErr.
func GNM(n int, m int64, seed uint64) *graph.Graph {
	return fromModel(model.NewGnm(int64(n), m, seed, 0))
}

// GNMErr is GNM with an error return, for callers handling
// user-supplied parameters (the spec grammar).
func GNMErr(n int, m int64, seed uint64) (*graph.Graph, error) {
	return collectModel(model.NewGnm(int64(n), m, seed, 0))
}

// smallSet is the reusable membership scratch for per-vertex target
// dedup in the preferential-attachment generators: attachment counts m
// are tiny (single digits), where a linear scan over a reused slice
// beats a freshly allocated map by a wide margin (see BenchmarkBADedup).
type smallSet []int32

func (s smallSet) contains(w int32) bool {
	for _, x := range s {
		if x == w {
			return true
		}
	}
	return false
}

// BarabasiAlbert returns the preferential-attachment graph of [35]:
// each new vertex attaches up to m edges to existing vertices chosen
// with probability proportional to degree, over a star seed graph on
// m+1 vertices. It adapts the communication-free streamed core
// (model.BarabasiAlbert), which resolves every edge by retracing its
// per-position hash chain — the same graph the sharded pipeline emits,
// loop-free with a power-law degree tail. Duplicate draws are merged
// (not redrawn), so a vertex can carry slightly fewer than m edges.
func BarabasiAlbert(n, m int, seed uint64) *graph.Graph {
	if m < 1 || n < m+1 {
		panic("gen: BarabasiAlbert needs n > m >= 1")
	}
	return fromModel(model.NewBarabasiAlbert(int64(n), int64(m), 0, seed, 0))
}

// BarabasiAlbertErr is BarabasiAlbert with an error return, for callers
// handling user-supplied parameters (the spec grammar): the streamed
// core's range caps surface as errors, never panics.
func BarabasiAlbertErr(n, m int, seed uint64) (*graph.Graph, error) {
	if m < 1 || n < m+1 {
		return nil, fmt.Errorf("gen: BarabasiAlbert needs n > m >= 1 (have n=%d, m=%d)", n, m)
	}
	return collectModel(model.NewBarabasiAlbert(int64(n), int64(m), 0, seed, 0))
}

// RGG2D returns the random geometric graph on the unit square: n
// uniform points, an edge for every pair at distance <= r. It adapts
// the streamed cell-grid core; spec-boundary callers get errors, not
// panics.
func RGG2D(n int64, r float64, seed uint64) (*graph.Graph, error) {
	return collectModel(model.NewRGG(n, r, 2, seed, 0))
}

// RGG3D is RGG2D on the unit cube.
func RGG3D(n int64, r float64, seed uint64) (*graph.Graph, error) {
	return collectModel(model.NewRGG(n, r, 3, seed, 0))
}

// RHG returns the random hyperbolic graph: n points in a hyperbolic
// disk whose radius is solved for target average degree deg, radial
// density set by the power-law exponent gamma (> 2), an edge for every
// pair at hyperbolic distance within the disk radius. It adapts the
// streamed band/cell core; spec-boundary callers get errors, not
// panics.
func RHG(n int64, deg, gamma float64, seed uint64) (*graph.Graph, error) {
	return collectModel(model.NewRHG(n, deg, gamma, seed, 0))
}

// Grid2D returns the x×y lattice with each lattice edge kept
// independently with probability p; wrap adds the per-axis wraparound
// (torus) edges. It adapts the streamed geometric-skip core.
func Grid2D(x, y int64, p float64, wrap bool, seed uint64) (*graph.Graph, error) {
	return collectModel(model.NewGrid(x, y, 1, p, wrap, 2, seed, 0))
}

// Grid3D is Grid2D for the x×y×z lattice.
func Grid3D(x, y, z int64, p float64, wrap bool, seed uint64) (*graph.Graph, error) {
	return collectModel(model.NewGrid(x, y, z, p, wrap, 3, seed, 0))
}

// WebGraph is the offline stand-in for the paper's web-NotreDame input: a
// Holme–Kim style scale-free generator with triad closure. Each new
// vertex makes m attachments; the first is preferential, and each
// subsequent one closes a triangle with probability pt (attaching to a
// random neighbor of the previous target), otherwise attaches
// preferentially. High pt yields the heavy clustering (millions of
// triangles at web scale) that the paper's experiment relies on.
func WebGraph(n, m int, pt float64, seed uint64) *graph.Graph {
	if m < 1 || n < m+1 {
		panic("gen: WebGraph needs n > m >= 1")
	}
	g := rng.New(seed)
	var targets []int32
	adj := make([][]int32, n)
	var edges []graph.Edge
	addEdge := func(u, v int32) {
		edges = append(edges, graph.Edge{U: u, V: v})
		targets = append(targets, u, v)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for v := 1; v <= m; v++ {
		addEdge(0, int32(v))
	}
	order := make(smallSet, 0, m)
	for v := m + 1; v < n; v++ {
		order = order[:0]
		var prev int32 = -1
		for len(order) < m {
			var w int32 = -1
			if prev >= 0 && g.Float64() < pt && len(adj[prev]) > 0 {
				// Triad closure: a random neighbor of the previous target.
				w = adj[prev][g.Intn(len(adj[prev]))]
			}
			if w < 0 || w == int32(v) || order.contains(w) {
				w = targets[g.Intn(len(targets))]
			}
			if w == int32(v) || order.contains(w) {
				continue
			}
			order = append(order, w)
			prev = w
		}
		for _, w := range order {
			addEdge(int32(v), w)
		}
	}
	return graph.FromEdges(n, edges, true)
}

// RMAT returns a stochastic Kronecker (R-MAT [4]) graph: 2^scale
// vertices, approximately edges undirected edges sampled with quadrant
// probabilities (a, b, c, d), a+b+c+d = 1. Duplicates are merged and self
// loops dropped, so the realized edge count can be slightly lower. This is
// the Rem. 1 baseline: edge independence makes triangles scarce. It
// adapts the sharded streaming core (per-u-subtree multinomial edge
// splitting).
func RMAT(scale int, edges int64, a, b, c, d float64, seed uint64) *graph.Graph {
	if scale < 1 || scale > 30 {
		panic("gen: RMAT scale out of range [1,30]")
	}
	if a+b+c+d <= 0 {
		panic("gen: RMAT probabilities must be positive")
	}
	return fromModel(model.NewRMAT(scale, edges, a, b, c, d, seed, 0))
}

// MaxExplicitRMATEdges bounds the edge budget of an *explicit* R-MAT
// factor graph: the streamed model itself holds only O(scale) state per
// chunk, but this path collects every arc into an in-memory adjacency,
// so an unbounded budget reachable from a spec string must be a spec
// error, not an allocation blow-up.
const MaxExplicitRMATEdges = int64(1) << 28

// RMATErr is RMAT with an error return, for callers handling
// user-supplied parameters (the spec grammar).
func RMATErr(scale int, edges int64, a, b, c, d float64, seed uint64) (*graph.Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of range [1,30] for an explicit graph", scale)
	}
	if edges > MaxExplicitRMATEdges {
		return nil, fmt.Errorf("gen: RMAT edge budget %d exceeds the explicit-graph cap %d; use the streamed model layer for larger budgets",
			edges, MaxExplicitRMATEdges)
	}
	return collectModel(model.NewRMAT(scale, edges, a, b, c, d, seed, 0))
}

// Graph500RMAT returns an R-MAT graph with the Graph500 benchmark
// parameters (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) and edge factor 16.
func Graph500RMAT(scale int, seed uint64) *graph.Graph {
	return RMAT(scale, 16<<uint(scale), 0.57, 0.19, 0.19, 0.05, seed)
}
