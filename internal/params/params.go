// Package params is the shared "kind:key=value,key=value,…" grammar of
// the generator specification strings: factor specs (internal/spec) and
// random-model specs (internal/model) parse through one implementation,
// so the two surfaces cannot drift. Accessors record every key they
// consume; callers reject the leftovers via Unused, so a typo'd
// parameter is an error instead of a silently applied default.
//
// Error messages carry no package prefix — callers wrap them with their
// own ("spec: …", "model: …") so CLI output names the surface the user
// actually typed at.
package params

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Params holds the parsed key=value parameters of one spec.
type Params struct {
	kv   map[string]string
	used map[string]bool
}

// Parse splits a spec string into its kind and parameters: the kind is
// everything before the first colon, "key=value" pairs follow it. A
// spec with no colon at all ("hubcycle") is a kind with no parameters —
// valid whenever the kind's parameters all have defaults. The
// KaGen-style surface form "kind(key=value;key=value)" is accepted as
// an alias and normalized to the colon/comma form before parsing.
func Parse(spec string) (kind string, p *Params, err error) {
	if i := strings.IndexByte(spec, '('); i >= 0 &&
		strings.HasSuffix(spec, ")") && !strings.Contains(spec[:i], ":") {
		spec = spec[:i] + ":" + strings.ReplaceAll(strings.TrimSuffix(spec[i+1:], ")"), ";", ",")
	}
	kind, rest, _ := strings.Cut(spec, ":")
	p = &Params{kv: map[string]string{}, used: map[string]bool{}}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return "", nil, fmt.Errorf("malformed parameter %q", kv)
			}
			p.kv[k] = v
		}
	}
	return kind, p, nil
}

func (p *Params) lookup(key string) (string, bool) {
	s, ok := p.kv[key]
	if ok {
		p.used[key] = true
	}
	return s, ok
}

// Int64 returns an integer parameter; def < 0 marks it required.
func (p *Params) Int64(key string, def int64) (int64, error) {
	s, ok := p.lookup(key)
	if !ok {
		if def < 0 {
			return 0, fmt.Errorf("missing required parameter %q", key)
		}
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", key, err)
	}
	return v, nil
}

// Int is Int64 narrowed to int.
func (p *Params) Int(key string, def int) (int, error) {
	v, err := p.Int64(key, int64(def))
	return int(v), err
}

// Float returns a float parameter with a default.
func (p *Params) Float(key string, def float64) (float64, error) {
	s, ok := p.lookup(key)
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", key, err)
	}
	return v, nil
}

// FloatReq returns a required float parameter (no meaningful default
// exists — e.g. a geometric radius).
func (p *Params) FloatReq(key string) (float64, error) {
	if _, ok := p.kv[key]; !ok {
		return 0, fmt.Errorf("missing required parameter %q", key)
	}
	return p.Float(key, 0)
}

// Bool returns a boolean parameter with a default, accepting the
// strconv.ParseBool forms (true/false, t/f, 1/0, …).
func (p *Params) Bool(key string, def bool) (bool, error) {
	s, ok := p.lookup(key)
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		return false, fmt.Errorf("parameter %q: %v", key, err)
	}
	return v, nil
}

// String returns a string parameter ("" when absent; ok reports
// presence).
func (p *Params) String(key string) (string, bool) {
	return p.lookup(key)
}

// Seed returns the uint64 "seed" parameter (default 1).
func (p *Params) Seed() (uint64, error) {
	s, ok := p.lookup("seed")
	if !ok {
		return 1, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter \"seed\": %v", err)
	}
	return v, nil
}

// Unused returns the keys no accessor consumed, sorted. Callers turn a
// non-empty result into an "unknown parameter" error.
func (p *Params) Unused() []string {
	var out []string
	for k := range p.kv {
		if !p.used[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// CheckUnused returns an error naming any unconsumed keys.
func (p *Params) CheckUnused(kind string) error {
	if stray := p.Unused(); len(stray) > 0 {
		return fmt.Errorf("unknown parameters for %q: %s", kind, strings.Join(stray, ", "))
	}
	return nil
}
