package params

import (
	"strings"
	"testing"
)

func TestParseAndAccessors(t *testing.T) {
	kind, p, err := Parse("er:n=100,p=0.5,seed=7,chunks=16")
	if err != nil {
		t.Fatal(err)
	}
	if kind != "er" {
		t.Fatalf("kind = %q", kind)
	}
	if n, err := p.Int64("n", -1); err != nil || n != 100 {
		t.Fatalf("n = %d, %v", n, err)
	}
	if v, err := p.Float("p", 0); err != nil || v != 0.5 {
		t.Fatalf("p = %v, %v", v, err)
	}
	if s, err := p.Seed(); err != nil || s != 7 {
		t.Fatalf("seed = %d, %v", s, err)
	}
	if c, err := p.Int("chunks", 0); err != nil || c != 16 {
		t.Fatalf("chunks = %d, %v", c, err)
	}
	if err := p.CheckUnused("er"); err != nil {
		t.Fatalf("all keys consumed but CheckUnused = %v", err)
	}
}

func TestUnusedKeysReported(t *testing.T) {
	_, p, err := Parse("x:a=1,b=2,c=3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Int("a", 0); err != nil {
		t.Fatal(err)
	}
	got := p.Unused()
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("Unused = %v, want [b c]", got)
	}
	if err := p.CheckUnused("x"); err == nil || !strings.Contains(err.Error(), "unknown parameters") {
		t.Fatalf("CheckUnused = %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, _, err := Parse("er:n=1,junk"); err == nil {
		t.Error("malformed pair accepted")
	}
	_, p, err := Parse("er:n=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Int("n", -1); err == nil {
		t.Error("non-numeric int accepted")
	}
	if _, err := p.Int64("missing", -1); err == nil {
		t.Error("missing required key accepted")
	}
	if v, err := p.Float("absent", 2.5); err != nil || v != 2.5 {
		t.Errorf("default float = %v, %v", v, err)
	}
	if s, err := p.Seed(); err != nil || s != 1 {
		t.Errorf("default seed = %d, %v", s, err)
	}
}

func TestKindOnlySpec(t *testing.T) {
	kind, p, err := Parse("clique")
	if err != nil {
		t.Fatal(err)
	}
	if kind != "clique" {
		t.Fatalf("kind = %q", kind)
	}
	if err := p.CheckUnused("clique"); err != nil {
		t.Fatal(err)
	}
}

func TestFloatReq(t *testing.T) {
	_, p, err := Parse("rgg:n=10,r=0.25")
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.FloatReq("r")
	if err != nil || r != 0.25 {
		t.Fatalf("FloatReq(r) = %v, %v", r, err)
	}
	if _, err := p.FloatReq("missing"); err == nil {
		t.Error("missing required float accepted")
	}
	if stray := p.Unused(); len(stray) != 1 || stray[0] != "n" {
		t.Errorf("Unused after FloatReq = %v, want [n]", stray)
	}
}

// TestParenSpecAlias pins the KaGen-style surface form: kind(k=v;k=v)
// must parse identically to kind:k=v,k=v, and strings that merely
// contain parentheses after a colon must not be rewritten.
func TestParenSpecAlias(t *testing.T) {
	kind, p, err := Parse("rgg2d(n=100000;r=0.005)")
	if err != nil {
		t.Fatal(err)
	}
	if kind != "rgg2d" {
		t.Fatalf("kind = %q", kind)
	}
	n, err := p.Int64("n", -1)
	if err != nil || n != 100000 {
		t.Fatalf("n = %d, %v", n, err)
	}
	r, err := p.FloatReq("r")
	if err != nil || r != 0.005 {
		t.Fatalf("r = %v, %v", r, err)
	}
	// A colon-form spec whose value contains parentheses keeps them.
	kind, p, err = Parse("file:path=a(b).tsv")
	if err != nil {
		t.Fatal(err)
	}
	path, _ := p.String("path")
	if kind != "file" || path != "a(b).tsv" {
		t.Fatalf("colon spec rewritten: kind=%q path=%q", kind, path)
	}
}
