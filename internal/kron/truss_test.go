package kron

import (
	"testing"

	"kronvalid/internal/gen"
	"kronvalid/internal/rng"
	"kronvalid/internal/truss"
)

// TestTrussThm3AgainstDirectPeeling validates Thm. 3: with Δ_B ≤ 1, the
// trussness of every product edge equals the A-edge trussness gated by
// membership of the B-edge in a triangle.
func TestTrussThm3AgainstDirectPeeling(t *testing.T) {
	g := rng.New(31)
	for trial := 0; trial < 6; trial++ {
		a := gen.ErdosRenyi(7+g.Intn(5), 0.45, g.Uint64())
		b := gen.TriangleLimitedPA(4+g.Intn(4), g.Uint64())
		p := MustProduct(a, b)
		pt, err := TrussDecomposition(p)
		if err != nil {
			t.Fatal(err)
		}
		c := materialize(t, p)
		direct := truss.Decompose(c)
		c.EachEdgeUndirected(func(u, v int32) bool {
			got := pt.EdgeTruss(int64(u), int64(v))
			want := direct.EdgeTruss(u, v)
			if got != want {
				i, k := p.Factors(int64(u))
				j, l := p.Factors(int64(v))
				t.Fatalf("trial %d: edge (%d,%d) [A:(%d,%d) B:(%d,%d)]: Kronecker truss %d, direct %d",
					trial, u, v, i, j, k, l, got, want)
			}
			return true
		})
		// Non-edges report 0.
		if pt.EdgeTruss(0, 0) != 0 && !p.HasEdge(0, 0) {
			t.Error("non-edge reported nonzero trussness")
		}
	}
}

func TestTrussSizesMatchDirect(t *testing.T) {
	g := rng.New(32)
	a := gen.ErdosRenyi(9, 0.5, g.Uint64())
	b := gen.TriangleLimitedPA(6, g.Uint64())
	p := MustProduct(a, b)
	pt, err := TrussDecomposition(p)
	if err != nil {
		t.Fatal(err)
	}
	c := materialize(t, p)
	direct := truss.Decompose(c)
	sizes := pt.TrussSizes()
	for k := 3; k <= pt.MaxK(); k++ {
		if got, want := sizes[k], int64(len(direct.KTrussEdges(k))); got != want {
			t.Errorf("|T^(%d)| = %d, direct %d", k, got, want)
		}
	}
	if pt.MaxK() != direct.MaxK && !(pt.MaxK() == 2 && direct.MaxK <= 2) {
		t.Errorf("MaxK = %d, direct %d", pt.MaxK(), direct.MaxK)
	}
}

func TestTrussRejectsOverloadedB(t *testing.T) {
	// Ex. 2's point: Δ_B ≤ 1 is necessary; the constructor must reject a
	// B that violates it (e.g. the hub-cycle, whose hub edges carry 2).
	a := gen.Clique(4)
	b := gen.HubCycle(4)
	if _, err := TrussDecomposition(MustProduct(a, b)); err == nil {
		t.Fatal("TrussDecomposition accepted Δ_B > 1")
	}
	// And with loops or directedness.
	if _, err := TrussDecomposition(MustProduct(a.WithAllLoops(), gen.TriangleLimitedPA(5, 1))); err == nil {
		t.Fatal("TrussDecomposition accepted loops")
	}
}

// TestEx2HubCycleStructure reproduces the paper's Ex. 2 numbers exactly:
// C = A ⊗ A for the 4-cycle-plus-hub has 25 vertices, 128 edges, 96
// triangles; 32 edges carry 1 triangle, 64 carry 2, 32 carry 4; the
// 3-truss has 128 edges, the 4-truss 80, the 5-truss none.
func TestEx2HubCycleStructure(t *testing.T) {
	a := gen.HubCycle(4)
	p := MustProduct(a, a)
	if p.NumVertices() != 25 {
		t.Fatalf("vertices = %d, want 25", p.NumVertices())
	}
	if got := p.NumEdgesUndirected(); got != 128 {
		t.Fatalf("edges = %d, want 128", got)
	}
	total, err := TriangleTotal(p)
	if err != nil {
		t.Fatal(err)
	}
	if total != 96 {
		t.Fatalf("triangles = %d, want 96", total)
	}
	// Edge-participation histogram via Thm. 2.
	dc, err := EdgeParticipation(p)
	if err != nil {
		t.Fatal(err)
	}
	hist := map[int64]int64{}
	m := dc.Materialize()
	m.Each(func(r, c int, v int64) bool {
		if r < c {
			hist[v]++
		}
		return true
	})
	if hist[1] != 32 || hist[2] != 64 || hist[4] != 32 {
		t.Fatalf("Δ histogram = %v, want {1:32, 2:64, 4:32}", hist)
	}
	// Truss structure of C is richer than any Kronecker formula (the
	// paper's point): direct peeling gives 128 / 80 / 0.
	c := materialize(t, p)
	d := truss.Decompose(c)
	if got := len(d.KTrussEdges(3)); got != 128 {
		t.Errorf("|T^(3)| = %d, want 128", got)
	}
	if got := len(d.KTrussEdges(4)); got != 80 {
		t.Errorf("|T^(4)| = %d, want 80", got)
	}
	if got := len(d.KTrussEdges(5)); got != 0 {
		t.Errorf("|T^(5)| = %d, want 0", got)
	}
	// And Thm. 3 must refuse this product (Δ_A = 2 on hub edges).
	if _, err := TrussDecomposition(p); err == nil {
		t.Error("Thm. 3 accepted the Ex. 2 product")
	}
}
