package kron

import (
	"errors"

	"kronvalid/internal/graph"
	"kronvalid/internal/sparse"
	"kronvalid/internal/triangle"
)

// FactorTriangleStats bundles the per-factor quantities every Kronecker
// formula consumes. Computing it once per factor and reusing it across
// formulas is the "inline with generation" workflow of the paper.
type FactorTriangleStats struct {
	G *graph.Graph
	// T is t_G: triangle participation per vertex of the loop-free
	// version (Def. 5).
	T []int64
	// Delta is Δ_G = (G-I∘G) ∘ (G-I∘G)² (Def. 6).
	Delta *sparse.Matrix
	// DiagCube is diag(G³) including self-loop walks, the quantity
	// appearing in Cor. 1, Thm. 4, and Thm. 6.
	DiagCube []int64
	// HadSquare is G ∘ G², the edge-side analog (Cor. 2, Thm. 5, Thm. 7).
	HadSquare *sparse.Matrix
	// Total is τ(G) of the loop-free version.
	Total int64
	// WedgeChecks records the cost of the combinatorial triangle pass.
	WedgeChecks int64
}

// ComputeFactorStats runs the triangle engine on the loop-free part of g
// and the sparse kernels on the full g.
func ComputeFactorStats(g *graph.Graph) *FactorTriangleStats {
	res := triangle.Count(g)
	a := g.ToSparse()
	a2 := a.Mul(a)
	return &FactorTriangleStats{
		G:           g,
		T:           res.PerVertex,
		Delta:       res.EdgeDelta,
		DiagCube:    sparse.DiagOfProduct(a2, a),
		HadSquare:   a.Hadamard(a2),
		Total:       res.Total,
		WedgeChecks: res.WedgeChecks,
	}
}

func requireUndirected(p *Product) error {
	if !p.A.IsSymmetric() || !p.B.IsSymmetric() {
		return errors.New("kron: formula requires undirected factors")
	}
	return nil
}

// VertexParticipation returns t_C, the triangle participation of every
// vertex of C = A ⊗ B, as a lazy Kronecker expansion. It handles all
// three self-loop regimes with the general §III.B expansion
//
//	t_C = ½[ diag(A³)⊗diag(B³) - 2·diag(A²D_A)⊗diag(B²D_B)
//	        - diag(A D_A A)⊗diag(B D_B B) + 2·diag(D_A)⊗diag(D_B) ],
//
// which reduces to Thm. 1 (t_C = 2 t_A ⊗ t_B) when neither factor has
// loops and to Cor. 1 (t_C = t_A ⊗ diag(B³)) when only B does. Both
// factors must be undirected.
func VertexParticipation(p *Product) (*KronVecSum, error) {
	if err := requireUndirected(p); err != nil {
		return nil, err
	}
	a, b := p.A.ToSparse(), p.B.ToSparse()
	da, db := a.DiagPart(), b.DiagPart()
	a2, b2 := a.Mul(a), b.Mul(b)

	sum := &KronVecSum{Den: 2, nB: p.nB}
	sum.Terms = append(sum.Terms, VecTerm{
		Coef: 1,
		U:    sparse.DiagOfProduct(a2, a),
		V:    sparse.DiagOfProduct(b2, b),
	})
	if da.NNZ() != 0 && db.NNZ() != 0 {
		sum.Terms = append(sum.Terms,
			VecTerm{
				Coef: -2,
				U:    sparse.DiagOfProduct(a2, da),
				V:    sparse.DiagOfProduct(b2, db),
			},
			VecTerm{
				Coef: -1,
				U:    sparse.Diag3(a, da, a),
				V:    sparse.Diag3(b, db, b),
			},
			VecTerm{
				Coef: 2,
				U:    da.Diag(),
				V:    db.Diag(),
			},
		)
	}
	return sum, nil
}

// VertexParticipationNoLoops is Thm. 1 specialized: t_C = 2·t_A ⊗ t_B.
// Errors unless both factors are loop-free and undirected.
func VertexParticipationNoLoops(p *Product, sa, sb *FactorTriangleStats) (*KronVecSum, error) {
	if err := requireUndirected(p); err != nil {
		return nil, err
	}
	if p.A.HasAnyLoop() || p.B.HasAnyLoop() {
		return nil, errors.New("kron: Thm. 1 requires loop-free factors")
	}
	return &KronVecSum{
		Terms: []VecTerm{{Coef: 2, U: sa.T, V: sb.T}},
		Den:   1,
		nB:    p.nB,
	}, nil
}

// VertexParticipationLoopsInB is Cor. 1 specialized:
// t_C = t_A ⊗ diag(B³), for loop-free A and arbitrary undirected B.
func VertexParticipationLoopsInB(p *Product, sa, sb *FactorTriangleStats) (*KronVecSum, error) {
	if err := requireUndirected(p); err != nil {
		return nil, err
	}
	if p.A.HasAnyLoop() {
		return nil, errors.New("kron: Cor. 1 requires a loop-free left factor")
	}
	return &KronVecSum{
		Terms: []VecTerm{{Coef: 1, U: sa.T, V: sb.DiagCube}},
		Den:   1,
		nB:    p.nB,
	}, nil
}

// EdgeParticipation returns Δ_C, the triangle participation of every edge
// of C, as a lazy Kronecker expansion, using the general §III.C expansion
//
//	Δ_C = (A∘A²)⊗(B∘B²) - (D_A A)⊗(D_B B) - (A D_A)⊗(B D_B)
//	      + 2·D_A⊗D_B - (D_A∘A²)⊗(D_B∘B²),
//
// which reduces to Thm. 2 (Δ_C = Δ_A ⊗ Δ_B) with loop-free factors and to
// Cor. 2 (Δ_C = Δ_A ⊗ (B∘B²)) when only B has loops.
func EdgeParticipation(p *Product) (*KronMatSum, error) {
	if err := requireUndirected(p); err != nil {
		return nil, err
	}
	a, b := p.A.ToSparse(), p.B.ToSparse()
	da, db := a.DiagPart(), b.DiagPart()
	a2, b2 := a.Mul(a), b.Mul(b)

	sum := &KronMatSum{nB: p.nB, mB: p.nB}
	sum.Terms = append(sum.Terms, MatTerm{Coef: 1, M: a.Hadamard(a2), N: b.Hadamard(b2)})
	if da.NNZ() != 0 && db.NNZ() != 0 {
		sum.Terms = append(sum.Terms,
			MatTerm{Coef: -1, M: da.Mul(a), N: db.Mul(b)},
			MatTerm{Coef: -1, M: a.Mul(da), N: b.Mul(db)},
			MatTerm{Coef: 2, M: da, N: db},
			MatTerm{Coef: -1, M: da.Hadamard(a2), N: db.Hadamard(b2)},
		)
	}
	return sum, nil
}

// EdgeParticipationNoLoops is Thm. 2 specialized: Δ_C = Δ_A ⊗ Δ_B.
func EdgeParticipationNoLoops(p *Product, sa, sb *FactorTriangleStats) (*KronMatSum, error) {
	if err := requireUndirected(p); err != nil {
		return nil, err
	}
	if p.A.HasAnyLoop() || p.B.HasAnyLoop() {
		return nil, errors.New("kron: Thm. 2 requires loop-free factors")
	}
	return &KronMatSum{
		Terms: []MatTerm{{Coef: 1, M: sa.Delta, N: sb.Delta}},
		nB:    p.nB, mB: p.nB,
	}, nil
}

// EdgeParticipationLoopsInB is Cor. 2 specialized:
// Δ_C = Δ_A ⊗ (B ∘ B²), for loop-free A.
func EdgeParticipationLoopsInB(p *Product, sa, sb *FactorTriangleStats) (*KronMatSum, error) {
	if err := requireUndirected(p); err != nil {
		return nil, err
	}
	if p.A.HasAnyLoop() {
		return nil, errors.New("kron: Cor. 2 requires a loop-free left factor")
	}
	return &KronMatSum{
		Terms: []MatTerm{{Coef: 1, M: sa.Delta, N: sb.HadSquare}},
		nB:    p.nB, mB: p.nB,
	}, nil
}

// TriangleTotal returns τ(C) = Σ_p t_C(p) / 3, exactly, with overflow
// checking. With loop-free factors this specializes to the paper's
// τ(C) = 6·τ(A)·τ(B).
func TriangleTotal(p *Product) (int64, error) {
	tc, err := VertexParticipation(p)
	if err != nil {
		return 0, err
	}
	total, err := tc.Total()
	if err != nil {
		return 0, err
	}
	if total%3 != 0 {
		return 0, errors.New("kron: vertex participation total not divisible by 3")
	}
	return total / 3, nil
}

// OutDegrees returns d^out_C = d^out_A ⊗ d^out_B as a lazy Kronecker
// vector (row sums including self loops, §IV.B).
func OutDegrees(p *Product) *KronVecSum {
	return &KronVecSum{
		Terms: []VecTerm{{Coef: 1, U: rawRowSums(p.A), V: rawRowSums(p.B)}},
		Den:   1,
		nB:    p.nB,
	}
}

// InDegrees returns d^in_C = d^in_A ⊗ d^in_B (column sums including self
// loops).
func InDegrees(p *Product) *KronVecSum {
	return &KronVecSum{
		Terms: []VecTerm{{Coef: 1, U: p.A.ToSparse().ColSums(), V: p.B.ToSparse().ColSums()}},
		Den:   1,
		nB:    p.nB,
	}
}

func rawRowSums(g *graph.Graph) []int64 {
	out := make([]int64, g.NumVertices())
	for v := range out {
		out[v] = g.OutDegreeRaw(int32(v))
	}
	return out
}
