package kron

import (
	"testing"

	"kronvalid/internal/gen"
)

// TestEx1aCliquesNoLoops validates Ex. 1(a): C = K_nA ⊗ K_nB.
// Degree: nA·nB + 1 - nA - nB at every vertex.
// Vertex triangles: ½(nA·nB+1-nA-nB)(nA·nB+4-2nA-2nB).
// Edge triangles: nA·nB + 4 - 2nA - 2nB.
func TestEx1aCliquesNoLoops(t *testing.T) {
	for _, dims := range [][2]int64{{3, 3}, {3, 5}, {4, 6}, {5, 5}} {
		nA, nB := dims[0], dims[1]
		p := MustProduct(gen.Clique(int(nA)), gen.Clique(int(nB)))
		wantDeg := nA*nB + 1 - nA - nB
		wantVertex := wantDeg * (nA*nB + 4 - 2*nA - 2*nB) / 2
		wantEdge := nA*nB + 4 - 2*nA - 2*nB

		tc, err := VertexParticipation(p)
		if err != nil {
			t.Fatal(err)
		}
		dc, err := EdgeParticipation(p)
		if err != nil {
			t.Fatal(err)
		}
		for v := int64(0); v < p.NumVertices(); v++ {
			if got := p.Degree(v); got != wantDeg {
				t.Fatalf("K%d⊗K%d degree(%d) = %d, want %d", nA, nB, v, got, wantDeg)
			}
			if got := tc.At(v); got != wantVertex {
				t.Fatalf("K%d⊗K%d t(%d) = %d, want %d", nA, nB, v, got, wantVertex)
			}
		}
		checked := 0
		p.EachArc(func(u, v int64) bool {
			if got := dc.At(u, v); got != wantEdge {
				t.Fatalf("K%d⊗K%d Δ(%d,%d) = %d, want %d", nA, nB, u, v, got, wantEdge)
			}
			checked++
			return checked < 200
		})
	}
}

// TestEx1bSelfLoopsInSecondFactor validates Ex. 1(b): C = K_nA ⊗ J_nB.
// Degree: nA·nB - nA... the paper's printed degree is (nA·nB - nA); its
// triangle counts read ½(nA·nB - nB)(nA·nB - 2nB) per vertex and
// (nA·nB - 2nB) per edge — we assert the formulas against the theorems'
// machinery, which is itself validated against direct counting in
// kron_test.go, and check the printed expressions where they are
// consistent.
func TestEx1bSelfLoopsInSecondFactor(t *testing.T) {
	for _, dims := range [][2]int64{{3, 3}, {4, 4}, {3, 6}, {5, 4}} {
		nA, nB := dims[0], dims[1]
		p := MustProduct(gen.Clique(int(nA)), gen.CliqueWithLoops(int(nB)))
		// Degree of each vertex: row sums are (nA-1)·nB; no loops in C
		// because A has none. The paper prints nA·nB - nA; substituting
		// shows the intended quantity is (nA-1)·nB = nA·nB - nB. We
		// assert against the definition (and the explicit product).
		wantDeg := (nA - 1) * nB
		wantVertex := (nA*nB - nB) * (nA*nB - 2*nB) / 2
		wantEdge := nA*nB - 2*nB

		tc, err := VertexParticipation(p)
		if err != nil {
			t.Fatal(err)
		}
		dc, err := EdgeParticipation(p)
		if err != nil {
			t.Fatal(err)
		}
		for v := int64(0); v < p.NumVertices(); v++ {
			if got := p.Degree(v); got != wantDeg {
				t.Fatalf("K%d⊗J%d degree(%d) = %d, want %d", nA, nB, v, got, wantDeg)
			}
			if got := tc.At(v); got != wantVertex {
				t.Fatalf("K%d⊗J%d t(%d) = %d, want %d", nA, nB, v, got, wantVertex)
			}
		}
		checked := 0
		p.EachArc(func(u, v int64) bool {
			if got := dc.At(u, v); got != wantEdge {
				t.Fatalf("K%d⊗J%d Δ(%d,%d) = %d, want %d", nA, nB, u, v, got, wantEdge)
			}
			checked++
			return checked < 200
		})
	}
}

// TestEx1cSelfLoopsInBothFactors validates Ex. 1(c):
// (J_nA ⊗ J_nB) - I = K_{nA·nB}: degree nA·nB - 1, vertex triangles
// C(nA·nB - 1, 2), edge triangles nA·nB - 2. Our formulas compute the
// statistics of C = J_nA ⊗ J_nB itself (with all loops); its loop-free
// triangle statistics are exactly those of the full clique.
func TestEx1cSelfLoopsInBothFactors(t *testing.T) {
	for _, dims := range [][2]int64{{2, 3}, {3, 3}, {4, 3}, {2, 6}} {
		nA, nB := dims[0], dims[1]
		n := nA * nB
		p := MustProduct(gen.CliqueWithLoops(int(nA)), gen.CliqueWithLoops(int(nB)))
		wantDeg := n - 1
		wantVertex := (n - 1) * (n - 2) / 2
		wantEdge := n - 2

		tc, err := VertexParticipation(p)
		if err != nil {
			t.Fatal(err)
		}
		dc, err := EdgeParticipation(p)
		if err != nil {
			t.Fatal(err)
		}
		for v := int64(0); v < p.NumVertices(); v++ {
			if got := p.Degree(v); got != wantDeg {
				t.Fatalf("J%d⊗J%d degree(%d) = %d, want %d", nA, nB, v, got, wantDeg)
			}
			if got := tc.At(v); got != wantVertex {
				t.Fatalf("J%d⊗J%d t(%d) = %d, want %d", nA, nB, v, got, wantVertex)
			}
		}
		for u := int64(0); u < n; u++ {
			for v := int64(0); v < n; v++ {
				if u == v {
					continue
				}
				if got := dc.At(u, v); got != wantEdge {
					t.Fatalf("J%d⊗J%d Δ(%d,%d) = %d, want %d", nA, nB, u, v, got, wantEdge)
				}
			}
		}
		// Total triangles of the full clique: C(n, 3).
		total, err := TriangleTotal(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := n * (n - 1) * (n - 2) / 6; total != want {
			t.Fatalf("J%d⊗J%d τ = %d, want %d", nA, nB, total, want)
		}
	}
}
