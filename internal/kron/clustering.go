package kron

import "kronvalid/internal/graph"

// WedgeCount returns the exact number of wedges (paths of length two
// through a center) of C: Σ_p d_C(p)·(d_C(p)-1)/2, computed in
// O(n_A + n_B) from the factors. The degree formula
// d_C = (d_A+s_A)(d_B+s_B) - s_A·s_B factorizes over the four self-loop
// class combinations, so Σ d_C and Σ d_C² reduce to per-class factor
// sums. Both factors must be undirected.
func WedgeCount(p *Product) (int64, error) {
	if err := requireUndirected(p); err != nil {
		return 0, err
	}
	// Per-class power sums: for class s (loop indicator), over vertices v
	// in that class, sums of (d+s)^k for k = 0, 1, 2.
	type powers struct{ s0, s1, s2 int64 }
	classSums := func(g *graph.Graph, wantLoop bool) powers {
		var ps powers
		var shift int64
		if wantLoop {
			shift = 1
		}
		for v := 0; v < g.NumVertices(); v++ {
			if g.LoopAt(int32(v)) != wantLoop {
				continue
			}
			x := g.Degree(int32(v)) + shift
			ps.s0++
			ps.s1 += x
			ps.s2 += x * x
		}
		return ps
	}
	var sumD, sumD2 int64
	for _, sa := range []bool{false, true} {
		pa := classSums(p.A, sa)
		if pa.s0 == 0 {
			continue
		}
		for _, sb := range []bool{false, true} {
			pb := classSums(p.B, sb)
			if pb.s0 == 0 {
				continue
			}
			if sa && sb {
				// d = x·y - 1: Σd = Σx·Σy - n; Σd² = Σx²Σy² - 2ΣxΣy + n.
				sumD += pa.s1*pb.s1 - pa.s0*pb.s0
				sumD2 += pa.s2*pb.s2 - 2*pa.s1*pb.s1 + pa.s0*pb.s0
			} else {
				// d = x·y: product form.
				sumD += pa.s1 * pb.s1
				sumD2 += pa.s2 * pb.s2
			}
		}
	}
	// Σ d(d-1)/2 = (Σd² - Σd)/2.
	return (sumD2 - sumD) / 2, nil
}

// LocalClustering returns a per-vertex local clustering coefficient
// evaluator for C: cc(p) = 2·t_C(p) / (d_C(p)·(d_C(p)-1)), the §I
// motivating statistic, queryable at any of the n_A·n_B vertices in O(1).
func LocalClustering(p *Product) (func(v int64) float64, error) {
	t, err := VertexParticipation(p)
	if err != nil {
		return nil, err
	}
	return func(v int64) float64 {
		d := p.Degree(v)
		if d < 2 {
			return 0
		}
		return 2 * float64(t.At(v)) / (float64(d) * float64(d-1))
	}, nil
}

// GlobalClustering returns the exact transitivity of C:
// 3·τ(C) / #wedges(C), without materializing anything. This is the
// normalization under which Rem. 1's stochastic-vs-nonstochastic
// comparison is made.
func GlobalClustering(p *Product) (float64, error) {
	wedges, err := WedgeCount(p)
	if err != nil {
		return 0, err
	}
	if wedges == 0 {
		return 0, nil
	}
	tau, err := TriangleTotal(p)
	if err != nil {
		return 0, err
	}
	return 3 * float64(tau) / float64(wedges), nil
}
