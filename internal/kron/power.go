package kron

import (
	"errors"
	"fmt"

	"kronvalid/internal/graph"
	"kronvalid/internal/sparse"
)

// MultiProduct is the k-fold implicit Kronecker product
// C = B_1 ⊗ B_2 ⊗ … ⊗ B_k, the construction used by the extreme-scale
// generator the paper builds on ([3]: repeated Kronecker powers of small
// power-law factors). All of §III's formulas generalize: the four-term
// vertex expansion and five-term edge expansion factor across any number
// of factors because every ingredient (diag(·³) terms, Hadamard-square
// terms, D parts) is itself a Kronecker product of per-factor matrices.
//
// Vertex indexing is mixed-radix: p = ((i_1·n_2 + i_2)·n_3 + i_3)… with
// factor 1 as the most significant digit, consistent with the binary
// Product when k = 2.
type MultiProduct struct {
	Factors []*graph.Graph
	radix   []int64 // radix[i] = Π_{j>i} n_j
}

// NewMultiProduct validates the factors (at least one; sizes multiply
// within int64).
func NewMultiProduct(factors ...*graph.Graph) (*MultiProduct, error) {
	if len(factors) == 0 {
		return nil, errors.New("kron: MultiProduct needs at least one factor")
	}
	nv, na := int64(1), int64(1)
	for _, f := range factors {
		if f.NumVertices() == 0 {
			return nil, errors.New("kron: empty factor")
		}
		var err error
		nv, err = sparse.CheckedMul(nv, int64(f.NumVertices()))
		if err != nil {
			return nil, fmt.Errorf("kron: vertex count overflow: %w", err)
		}
		na, err = sparse.CheckedMul(na, f.NumArcs())
		if err != nil {
			return nil, fmt.Errorf("kron: arc count overflow: %w", err)
		}
	}
	radix := make([]int64, len(factors))
	acc := int64(1)
	for i := len(factors) - 1; i >= 0; i-- {
		radix[i] = acc
		acc *= int64(factors[i].NumVertices())
	}
	return &MultiProduct{Factors: factors, radix: radix}, nil
}

// MustMultiProduct panics on invalid factors.
func MustMultiProduct(factors ...*graph.Graph) *MultiProduct {
	p, err := NewMultiProduct(factors...)
	if err != nil {
		panic(err)
	}
	return p
}

// KroneckerPower returns the k-th Kronecker power B ⊗ B ⊗ … ⊗ B.
func KroneckerPower(b *graph.Graph, k int) (*MultiProduct, error) {
	if k < 1 {
		return nil, errors.New("kron: power must be >= 1")
	}
	factors := make([]*graph.Graph, k)
	for i := range factors {
		factors[i] = b
	}
	return NewMultiProduct(factors...)
}

// K returns the number of factors.
func (p *MultiProduct) K() int { return len(p.Factors) }

// NumVertices returns Π n_i.
func (p *MultiProduct) NumVertices() int64 {
	return p.radix[0] * int64(p.Factors[0].NumVertices())
}

// NumArcs returns Π |arcs(B_i)|.
func (p *MultiProduct) NumArcs() int64 {
	na := int64(1)
	for _, f := range p.Factors {
		na *= f.NumArcs()
	}
	return na
}

// Vertex composes per-factor vertices into a product vertex.
func (p *MultiProduct) Vertex(idx []int32) int64 {
	if len(idx) != len(p.Factors) {
		panic("kron: Vertex index arity mismatch")
	}
	var v int64
	for i, x := range idx {
		v += int64(x) * p.radix[i]
	}
	return v
}

// FactorsOf splits a product vertex into per-factor vertices.
func (p *MultiProduct) FactorsOf(v int64) []int32 {
	out := make([]int32, len(p.Factors))
	for i := range p.Factors {
		out[i] = int32(v / p.radix[i] % int64(p.Factors[i].NumVertices()))
	}
	return out
}

// IsSymmetric reports whether all factors (hence C) are symmetric.
func (p *MultiProduct) IsSymmetric() bool {
	for _, f := range p.Factors {
		if !f.IsSymmetric() {
			return false
		}
	}
	return true
}

// HasEdge reports whether arc (u, v) exists: the conjunction of factor
// adjacencies.
func (p *MultiProduct) HasEdge(u, v int64) bool {
	fu := p.FactorsOf(u)
	fv := p.FactorsOf(v)
	for i, f := range p.Factors {
		if !f.HasEdge(fu[i], fv[i]) {
			return false
		}
	}
	return true
}

// HasLoop reports whether v has a self loop (loops at every factor
// vertex).
func (p *MultiProduct) HasLoop(v int64) bool {
	for i, x := range p.FactorsOf(v) {
		if !p.Factors[i].LoopAt(x) {
			return false
		}
	}
	return true
}

// Degree returns the loop-excluded degree of product vertex v:
// Π (d_i + s_i) − Π s_i.
func (p *MultiProduct) Degree(v int64) int64 {
	idx := p.FactorsOf(v)
	raw := int64(1)
	loop := true
	for i, f := range p.Factors {
		raw *= f.OutDegreeRaw(idx[i])
		loop = loop && f.LoopAt(idx[i])
	}
	if loop {
		raw--
	}
	return raw
}

// EachArc streams every arc of C in lexicographic order by recursive
// factor expansion, stopping early if fn returns false.
func (p *MultiProduct) EachArc(fn func(u, v int64) bool) {
	k := len(p.Factors)
	idxU := make([]int32, k)
	idxV := make([]int32, k)
	var rec func(depth int) bool
	rec = func(depth int) bool {
		if depth == k {
			return fn(p.Vertex(idxU), p.Vertex(idxV))
		}
		f := p.Factors[depth]
		for u := int32(0); u < int32(f.NumVertices()); u++ {
			nb := f.Neighbors(u)
			if len(nb) == 0 {
				continue
			}
			idxU[depth] = u
			for _, v := range nb {
				idxV[depth] = v
				if !rec(depth + 1) {
					return false
				}
			}
		}
		return true
	}
	rec(0)
}

// Materialize builds the explicit product (validation scale only).
func (p *MultiProduct) Materialize(maxVertices, maxArcs int64) (*graph.Graph, error) {
	if p.NumVertices() > maxVertices || p.NumArcs() > maxArcs || p.NumVertices() > (1<<31-1) {
		return nil, fmt.Errorf("%w: %d vertices, %d arcs", ErrTooLarge, p.NumVertices(), p.NumArcs())
	}
	edges := make([]graph.Edge, 0, p.NumArcs())
	p.EachArc(func(u, v int64) bool {
		edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
		return true
	})
	return graph.FromEdges(int(p.NumVertices()), edges, false), nil
}

// multiVecSum represents Σ_m coef_m ⊗_i u_{m,i} with a common divisor,
// the k-factor generalization of KronVecSum.
type multiVecTerm struct {
	coef int64
	us   [][]int64
}

// MultiVecSum is a lazily evaluated per-vertex statistic of a k-fold
// product.
type MultiVecSum struct {
	terms []multiVecTerm
	den   int64
	p     *MultiProduct
}

// At evaluates the statistic at product vertex v.
func (s *MultiVecSum) At(v int64) int64 {
	idx := s.p.FactorsOf(v)
	var acc int64
	for _, t := range s.terms {
		prod := t.coef
		for i, u := range t.us {
			prod *= u[idx[i]]
			if prod == 0 {
				break
			}
		}
		acc += prod
	}
	if acc%s.den != 0 {
		panic(fmt.Sprintf("kron: non-integral multi statistic %d/%d", acc, s.den))
	}
	return acc / s.den
}

// Total returns the checked sum over all product vertices.
func (s *MultiVecSum) Total() (int64, error) {
	var acc int64
	for _, t := range s.terms {
		prod := int64(1)
		var err error
		for _, u := range t.us {
			prod, err = sparse.CheckedMul(prod, nonNegOrZero(sparse.SumVec(u)))
			if err != nil {
				return 0, err
			}
		}
		term, err := sparse.CheckedMul(abs64(t.coef), prod)
		if err != nil {
			return 0, err
		}
		if t.coef < 0 {
			term = -term
		}
		prev := acc
		acc += term
		if (term > 0 && acc < prev) || (term < 0 && acc > prev) {
			return 0, sparse.ErrOverflow
		}
	}
	if acc%s.den != 0 {
		return 0, fmt.Errorf("kron: non-integral multi total %d/%d", acc, s.den)
	}
	return acc / s.den, nil
}

func nonNegOrZero(x int64) int64 {
	if x < 0 {
		panic("kron: negative factor sum in multi statistic")
	}
	return x
}

// Vector materializes the statistic (validation scale).
func (s *MultiVecSum) Vector() []int64 {
	out := make([]int64, s.p.NumVertices())
	for v := range out {
		out[v] = s.At(int64(v))
	}
	return out
}

// MultiVertexParticipation returns t_C for the k-fold product in all
// self-loop regimes: the same four-term expansion as the binary case,
// with every term a k-fold Kronecker product of per-factor diagonals:
//
//	t_C = ½[ ⊗diag(B_i³) − 2·⊗diag(B_i²D_i) − ⊗diag(B_i D_i B_i)
//	         + 2·⊗diag(D_i) ].
//
// All factors must be undirected.
func MultiVertexParticipation(p *MultiProduct) (*MultiVecSum, error) {
	if !p.IsSymmetric() {
		return nil, errors.New("kron: formula requires undirected factors")
	}
	k := len(p.Factors)
	cube := make([][]int64, k)
	sqD := make([][]int64, k)
	bdb := make([][]int64, k)
	dd := make([][]int64, k)
	anyNoLoops := false
	for i, f := range p.Factors {
		b := f.ToSparse()
		d := b.DiagPart()
		b2 := b.Mul(b)
		cube[i] = sparse.DiagOfProduct(b2, b)
		sqD[i] = sparse.DiagOfProduct(b2, d)
		bdb[i] = sparse.Diag3(b, d, b)
		dd[i] = d.Diag()
		if d.NNZ() == 0 {
			anyNoLoops = true
		}
	}
	s := &MultiVecSum{den: 2, p: p}
	s.terms = append(s.terms, multiVecTerm{coef: 1, us: cube})
	if !anyNoLoops {
		// D_C = ⊗D_i is nonzero only when every factor has loops.
		s.terms = append(s.terms,
			multiVecTerm{coef: -2, us: sqD},
			multiVecTerm{coef: -1, us: bdb},
			multiVecTerm{coef: 2, us: dd},
		)
	}
	return s, nil
}

// MultiTriangleTotal returns exact τ(C) for the k-fold product; for
// loop-free factors this is 6^{k-1}·Π τ(B_i).
func MultiTriangleTotal(p *MultiProduct) (int64, error) {
	t, err := MultiVertexParticipation(p)
	if err != nil {
		return 0, err
	}
	total, err := t.Total()
	if err != nil {
		return 0, err
	}
	if total%3 != 0 {
		return 0, errors.New("kron: multi participation total not divisible by 3")
	}
	return total / 3, nil
}

// MultiEdgeDelta evaluates Δ_C at one arc of the k-fold product via the
// five-term expansion (every term a k-fold ⊗ of factor matrices):
//
//	Δ_C = ⊗(B∘B²) − ⊗(D B) − ⊗(B D) + 2·⊗D − ⊗(D∘B²).
//
// Returned as a closure over precomputed factor matrices.
func MultiEdgeDelta(p *MultiProduct) (func(u, v int64) int64, error) {
	if !p.IsSymmetric() {
		return nil, errors.New("kron: formula requires undirected factors")
	}
	k := len(p.Factors)
	had := make([]*sparse.Matrix, k)
	db := make([]*sparse.Matrix, k)
	bd := make([]*sparse.Matrix, k)
	dOnly := make([]*sparse.Matrix, k)
	dHad := make([]*sparse.Matrix, k)
	anyNoLoops := false
	for i, f := range p.Factors {
		b := f.ToSparse()
		d := b.DiagPart()
		b2 := b.Mul(b)
		had[i] = b.Hadamard(b2)
		db[i] = d.Mul(b)
		bd[i] = b.Mul(d)
		dOnly[i] = d
		dHad[i] = d.Hadamard(b2)
		if d.NNZ() == 0 {
			anyNoLoops = true
		}
	}
	evalTerm := func(ms []*sparse.Matrix, u, v int64) int64 {
		fu := p.FactorsOf(u)
		fv := p.FactorsOf(v)
		prod := int64(1)
		for i, m := range ms {
			prod *= m.At(int(fu[i]), int(fv[i]))
			if prod == 0 {
				return 0
			}
		}
		return prod
	}
	return func(u, v int64) int64 {
		acc := evalTerm(had, u, v)
		if !anyNoLoops {
			acc -= evalTerm(db, u, v)
			acc -= evalTerm(bd, u, v)
			acc += 2 * evalTerm(dOnly, u, v)
			acc -= evalTerm(dHad, u, v)
		}
		return acc
	}, nil
}
