// Package kron is the core of the library: the implicit Kronecker product
// graph C = A ⊗ B and the paper's formulas that read exact statistics of C
// off cheap computations on the factors A and B.
//
// C is never materialized (except for validation-scale factors): its
// |E_A|·|E_B| edges are streamed, queried, or sampled from the two small
// factors. Product vertices are int64: p = i·n_B + k composes factor
// vertices i ∈ A and k ∈ B (0-based throughout; the paper is 1-based).
package kron

import (
	"errors"
	"fmt"

	"kronvalid/internal/graph"
	"kronvalid/internal/sparse"
	"kronvalid/internal/stream"
)

// ErrTooLarge is returned when a materialization request exceeds the
// caller's limit.
var ErrTooLarge = errors.New("kron: product too large to materialize")

// Product is the implicit Kronecker product graph C = A ⊗ B.
type Product struct {
	A, B *graph.Graph
	nB   int64
}

// NewProduct validates the factors (sizes must multiply within int64) and
// returns the implicit product.
func NewProduct(a, b *graph.Graph) (*Product, error) {
	if a.NumVertices() == 0 || b.NumVertices() == 0 {
		return nil, errors.New("kron: empty factor")
	}
	if _, err := sparse.CheckedMul(int64(a.NumVertices()), int64(b.NumVertices())); err != nil {
		return nil, fmt.Errorf("kron: vertex count overflow: %w", err)
	}
	if _, err := sparse.CheckedMul(a.NumArcs(), b.NumArcs()); err != nil {
		return nil, fmt.Errorf("kron: arc count overflow: %w", err)
	}
	return &Product{A: a, B: b, nB: int64(b.NumVertices())}, nil
}

// MustProduct is NewProduct that panics on error, for tests and examples
// with known-good factors.
func MustProduct(a, b *graph.Graph) *Product {
	p, err := NewProduct(a, b)
	if err != nil {
		panic(err)
	}
	return p
}

// Vertex composes factor vertices (i ∈ A, k ∈ B) into the product vertex
// p = i·n_B + k.
func (p *Product) Vertex(i, k int32) int64 {
	return int64(i)*p.nB + int64(k)
}

// Factors splits product vertex v into its factor vertices (i, k).
func (p *Product) Factors(v int64) (i, k int32) {
	return int32(v / p.nB), int32(v % p.nB)
}

// NumVertices returns n_C = n_A · n_B.
func (p *Product) NumVertices() int64 {
	return int64(p.A.NumVertices()) * p.nB
}

// NumArcs returns the number of directed arcs of C: |arcs(A)|·|arcs(B)|.
func (p *Product) NumArcs() int64 {
	return p.A.NumArcs() * p.B.NumArcs()
}

// NumLoops returns the number of self loops of C: loops(A)·loops(B).
func (p *Product) NumLoops() int64 {
	return p.A.NumLoops() * p.B.NumLoops()
}

// NumEdgesUndirected returns the number of undirected edges of C
// (pairs counted once, self loops once). Panics unless both factors are
// symmetric (which makes C symmetric).
func (p *Product) NumEdgesUndirected() int64 {
	if !p.IsSymmetric() {
		panic("kron: NumEdgesUndirected on a non-symmetric product")
	}
	loops := p.NumLoops()
	return (p.NumArcs()-loops)/2 + loops
}

// IsSymmetric reports whether C is symmetric. A ⊗ B is symmetric when
// both factors are (the standard sufficient condition, and the only case
// the paper's undirected results address).
func (p *Product) IsSymmetric() bool {
	return p.A.IsSymmetric() && p.B.IsSymmetric()
}

// HasEdge reports whether arc (u, v) exists in C:
// C[p(i,k)][q(j,l)] = A[i][j]·B[k][l].
func (p *Product) HasEdge(u, v int64) bool {
	i, k := p.Factors(u)
	j, l := p.Factors(v)
	return p.A.HasEdge(i, j) && p.B.HasEdge(k, l)
}

// HasLoop reports whether product vertex v has a self loop.
func (p *Product) HasLoop(v int64) bool {
	i, k := p.Factors(v)
	return p.A.LoopAt(i) && p.B.LoopAt(k)
}

// OutDegreeRaw returns the raw out-degree of product vertex v including a
// self loop: rowsum_A(i)·rowsum_B(k).
func (p *Product) OutDegreeRaw(v int64) int64 {
	i, k := p.Factors(v)
	return p.A.OutDegreeRaw(i) * p.B.OutDegreeRaw(k)
}

// Degree returns the paper's degree of product vertex v (excluding its
// self loop): d_C(p) = (d_A(i)+s_A(i))·(d_B(k)+s_B(k)) - s_A(i)·s_B(k),
// where s is the self-loop indicator. This single expression covers all
// three self-loop regimes of §III.A.
func (p *Product) Degree(v int64) int64 {
	d := p.OutDegreeRaw(v)
	if p.HasLoop(v) {
		d--
	}
	return d
}

// EachNeighbor calls fn for every out-neighbor of product vertex v, in
// increasing product-vertex order, stopping early if fn returns false.
func (p *Product) EachNeighbor(v int64, fn func(u int64) bool) {
	i, k := p.Factors(v)
	for _, j := range p.A.Neighbors(i) {
		base := int64(j) * p.nB
		for _, l := range p.B.Neighbors(k) {
			if !fn(base + int64(l)) {
				return
			}
		}
	}
}

// Neighbors returns the out-neighbors of v as a slice (degree-sized
// allocation; use EachNeighbor to stream).
func (p *Product) Neighbors(v int64) []int64 {
	out := make([]int64, 0, p.OutDegreeRaw(v))
	p.EachNeighbor(v, func(u int64) bool {
		out = append(out, u)
		return true
	})
	return out
}

// EachArcBatchRange streams the product arcs whose A-side source row lies
// in [loA, hiA), in canonical EachArc order, delivered as batches: the
// generator appends into buf and hands every full batch — plus the final
// partial one — to emit. emit takes ownership of the slice it receives and
// returns the next buffer to fill (len 0, its cap sets the batch size), or
// nil to stop early. This is the hot path of the generation pipeline: the
// inner loops write straight into a flat buffer with no per-arc callback.
func (p *Product) EachArcBatchRange(loA, hiA int32, buf []stream.Arc, emit func(full []stream.Arc) (next []stream.Arc)) {
	if cap(buf) == 0 {
		buf = make([]stream.Arc, 0, stream.DefaultBatchSize)
	}
	buf = buf[:0]
	limit := cap(buf)
	for i := loA; i < hiA; i++ {
		nbA := p.A.Neighbors(i)
		if len(nbA) == 0 {
			continue
		}
		for k := int64(0); k < p.nB; k++ {
			u := int64(i)*p.nB + k
			nbB := p.B.Neighbors(int32(k))
			if len(nbB) == 0 {
				continue
			}
			for _, j := range nbA {
				base := int64(j) * p.nB
				for _, l := range nbB {
					buf = append(buf, stream.Arc{U: u, V: base + int64(l)})
					if len(buf) == limit {
						if buf = emit(buf); buf == nil {
							return
						}
						buf = buf[:0]
						limit = cap(buf)
					}
				}
			}
		}
	}
	if len(buf) > 0 {
		emit(buf)
	}
}

// EachArcBatch streams every arc of C as batches of at most batchSize arcs
// (0 means stream.DefaultBatchSize), in EachArc order. The batch slice is
// reused between calls: fn must not retain it. Stops early if fn returns
// false.
func (p *Product) EachArcBatch(batchSize int, fn func(batch []stream.Arc) bool) {
	if batchSize <= 0 {
		batchSize = stream.DefaultBatchSize
	}
	buf := make([]stream.Arc, 0, batchSize)
	p.EachArcBatchRange(0, int32(p.A.NumVertices()), buf, func(full []stream.Arc) []stream.Arc {
		if !fn(full) {
			return nil
		}
		return full[:0]
	})
}

// EachArc streams every arc (u, v) of C in lexicographic order: the full
// |arcs(A)|·|arcs(B)| edge list of the product, generated from the factors
// without materializing anything. Stops early if fn returns false.
//
// This is a compatibility adapter over the batched generator; code that
// cares about throughput should consume EachArcBatch directly.
func (p *Product) EachArc(fn func(u, v int64) bool) {
	p.EachArcBatch(0, func(batch []stream.Arc) bool {
		for _, a := range batch {
			if !fn(a.U, a.V) {
				return false
			}
		}
		return true
	})
}

// Materialize builds the explicit product graph, refusing if the product
// has more than maxVertices vertices or maxArcs arcs. Use only at
// validation scale.
//
// The adjacency is assembled CSR-directly: row offsets come from the
// closed-form degree product rawdeg(i,k) = rawdeg_A(i)·rawdeg_B(k), and
// the batched stream — already in canonical sorted order and
// duplicate-free — fills the flat neighbor array sequentially. No edge
// list, no sort, no dedup.
func (p *Product) Materialize(maxVertices, maxArcs int64) (*graph.Graph, error) {
	if p.NumVertices() > maxVertices || p.NumArcs() > maxArcs {
		return nil, fmt.Errorf("%w: %d vertices, %d arcs", ErrTooLarge, p.NumVertices(), p.NumArcs())
	}
	if p.NumVertices() > (1<<31 - 1) {
		return nil, fmt.Errorf("%w: %d vertices exceed explicit-graph limit", ErrTooLarge, p.NumVertices())
	}
	nA := p.A.NumVertices()
	offsets := make([]int64, p.NumVertices()+1)
	for i := 0; i < nA; i++ {
		ra := p.A.OutDegreeRaw(int32(i))
		base := int64(i) * p.nB
		for k := int64(0); k < p.nB; k++ {
			offsets[base+k+1] = offsets[base+k] + ra*p.B.OutDegreeRaw(int32(k))
		}
	}
	nbrs := make([]int32, p.NumArcs())
	idx := 0
	p.EachArcBatch(0, func(batch []stream.Arc) bool {
		for _, a := range batch {
			nbrs[idx] = int32(a.V)
			idx++
		}
		return true
	})
	c := graph.FromCSR(offsets, nbrs)
	if p.A.IsLabeled() {
		labels := make([]int32, p.NumVertices())
		for v := range labels {
			i, _ := p.Factors(int64(v))
			labels[v] = p.A.Label(i)
		}
		c = c.WithLabels(labels, p.A.NumLabels())
	}
	return c, nil
}

// Label returns the inherited label of product vertex v when the left
// factor is labeled: f_C(p) = f_A(i(p)) (§V).
func (p *Product) Label(v int64) int32 {
	i, _ := p.Factors(v)
	return p.A.Label(i)
}

// DegreeVector materializes the full degree vector of C (n_C entries);
// only for validation-scale products.
func (p *Product) DegreeVector() []int64 {
	out := make([]int64, p.NumVertices())
	for v := range out {
		out[v] = p.Degree(int64(v))
	}
	return out
}

// MaxDegree returns the maximum degree of C along with a vertex achieving
// it, computed from the factors in O(n_A + n_B): the maximum of the
// degree formula factorizes over (i, k) pairs restricted to the four
// loop/no-loop combinations.
func (p *Product) MaxDegree() (int64, int64) {
	// Evaluate the formula for the best i per loop-class of A crossed
	// with the best k per loop-class of B. Because
	// d = (dA+sA)(dB+sB) - sA·sB is monotone in dA and dB for fixed
	// (sA, sB), it suffices to track the max degree within each class.
	type best struct {
		d  int64
		v  int32
		ok bool
	}
	classMax := func(g *graph.Graph, wantLoop bool) best {
		var b best
		for v := 0; v < g.NumVertices(); v++ {
			if g.LoopAt(int32(v)) != wantLoop {
				continue
			}
			if d := g.Degree(int32(v)); !b.ok || d > b.d {
				b = best{d, int32(v), true}
			}
		}
		return b
	}
	var bestD int64 = -1
	var bestV int64
	for _, sa := range []bool{false, true} {
		ba := classMax(p.A, sa)
		if !ba.ok {
			continue
		}
		for _, sb := range []bool{false, true} {
			bb := classMax(p.B, sb)
			if !bb.ok {
				continue
			}
			da, db := ba.d, bb.d
			var la, lb int64
			if sa {
				la = 1
			}
			if sb {
				lb = 1
			}
			d := (da+la)*(db+lb) - la*lb
			if d > bestD {
				bestD = d
				bestV = p.Vertex(ba.v, bb.v)
			}
		}
	}
	return bestD, bestV
}
