package kron

import (
	"errors"

	"kronvalid/internal/sparse"
	"kronvalid/internal/truss"
)

// ProductTruss is the Kronecker-derived truss decomposition of C = A ⊗ B
// under Thm. 3's hypotheses: both factors undirected and loop-free, and
// every edge of B participating in at most one triangle (Δ_B ≤ 1). Then
//
//	(p,q) ∈ T^(κ)_C  ⇔  (i,j) ∈ T^(κ)_A and (k,l) ∈ T^(3)_B,
//
// so the trussness of every edge of C is read off the decomposition of A
// and the 0/1 matrix Δ_B.
type ProductTruss struct {
	p      *Product
	trussA *truss.Decomposition
	deltaB *sparse.Matrix
}

// TrussDecomposition validates Thm. 3's hypotheses and returns the
// implicit truss decomposition of C.
func TrussDecomposition(p *Product) (*ProductTruss, error) {
	if !p.A.IsSymmetric() || !p.B.IsSymmetric() {
		return nil, errors.New("kron: Thm. 3 requires undirected factors")
	}
	if p.A.HasAnyLoop() || p.B.HasAnyLoop() {
		return nil, errors.New("kron: Thm. 3 requires loop-free factors")
	}
	sb := ComputeFactorStats(p.B)
	if sb.Delta.MaxVal() > 1 {
		return nil, errors.New("kron: Thm. 3 requires Δ_B ≤ 1 (every edge of B in at most one triangle)")
	}
	return &ProductTruss{
		p:      p,
		trussA: truss.Decompose(p.A),
		deltaB: sb.Delta,
	}, nil
}

// EdgeTruss returns the trussness of product edge (u, v): the largest κ
// such that (u, v) lies in a κ-truss of C. It returns 0 if (u, v) is not
// an edge of C, and 2 for edges in no triangle of C.
func (t *ProductTruss) EdgeTruss(u, v int64) int {
	if !t.p.HasEdge(u, v) {
		return 0
	}
	i, k := t.p.Factors(u)
	j, l := t.p.Factors(v)
	if t.deltaB.At(int(k), int(l)) == 0 {
		return 2 // the product edge closes no triangle
	}
	// Δ_C(u,v) = Δ_A(i,j)·1; peeling proceeds in lockstep with A.
	kA := t.trussA.EdgeTruss(i, j)
	if kA < 2 {
		return 2
	}
	return kA
}

// MaxK returns the largest κ with a non-empty κ-truss in C: MaxK(A) when
// B has any triangle, else 2.
func (t *ProductTruss) MaxK() int {
	if t.deltaB.NNZ() == 0 {
		return 2
	}
	return t.trussA.MaxK
}

// TrussSizes returns |T^(κ)_C| for κ = 3..MaxK, each equal to
// |T^(κ)_A| · |T^(3)_B| arcs... counted as undirected edges:
// |T^(κ)_C| = |T^(κ)_A| · |E(Δ_B = 1)| where both counts are undirected
// edge counts of the respective factors (every combination of a κ-truss
// edge of A and a triangle edge of B is a κ-truss edge of C, and each
// undirected product edge arises from exactly two (arcA, arcB) pairings).
func (t *ProductTruss) TrussSizes() map[int]int64 {
	out := map[int]int64{}
	// Undirected triangle-edge count of B: nnz(Δ_B)/2 since Δ_B is
	// symmetric with zero diagonal and entries exactly 1 here.
	b3 := t.deltaB.NNZ() / 2
	for k := 3; k <= t.trussA.MaxK; k++ {
		out[k] = int64(len(t.trussA.KTrussEdges(k))) * 2 * b3
	}
	return out
}
