package kron

import (
	"testing"

	"kronvalid/internal/census"
	"kronvalid/internal/graph"
	"kronvalid/internal/rng"
	"kronvalid/internal/sparse"
)

func randomDirected(g *rng.Xoshiro256, n int, avgDeg, reciprocity float64) *graph.Graph {
	var edges []graph.Edge
	target := int(avgDeg * float64(n))
	for i := 0; i < target; i++ {
		u, v := int32(g.Intn(n)), int32(g.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
		if g.Float64() < reciprocity {
			edges = append(edges, graph.Edge{U: v, V: u})
		}
	}
	return graph.FromEdges(n, edges, false)
}

// TestDirectedCensusThm4 validates t^(τ)_C = t^(τ)_A ⊗ diag(B³) for all
// 15 types against the direct census of the materialized product.
func TestDirectedCensusThm4(t *testing.T) {
	g := rng.New(21)
	for trial := 0; trial < 8; trial++ {
		a := randomDirected(g, 5+g.Intn(7), 3, 0.4)
		b := randomUndirected(g, 4+g.Intn(6), 3, g.Float64()) // B may have loops
		p := MustProduct(a, b)
		stats, err := DirectedCensus(p)
		if err != nil {
			t.Fatal(err)
		}
		c := materialize(t, p)
		direct := census.DirectedVertexCensus(c)
		for _, ty := range census.AllVertexTypes() {
			got := stats.Vertex[ty].Vector()
			if !sparse.EqualVec(got, direct.Counts[ty]) {
				t.Fatalf("trial %d type %v: Kronecker %v vs direct %v",
					trial, ty, got, direct.Counts[ty])
			}
		}
	}
}

// TestDirectedCensusThm5 validates Δ^(τ)_C = Δ^(τ)_A ⊗ (B ∘ B²).
func TestDirectedCensusThm5(t *testing.T) {
	g := rng.New(22)
	for trial := 0; trial < 8; trial++ {
		a := randomDirected(g, 4+g.Intn(6), 3, 0.4)
		b := randomUndirected(g, 4+g.Intn(5), 3, g.Float64())
		p := MustProduct(a, b)
		stats, err := DirectedCensus(p)
		if err != nil {
			t.Fatal(err)
		}
		c := materialize(t, p)
		direct := census.DirectedEdgeCensus(c)
		for _, ty := range census.AllEdgeTypes() {
			got := stats.Edge[ty].Materialize()
			if !got.Equal(direct.Delta[ty]) {
				t.Fatalf("trial %d type %v: Kronecker census disagrees with direct", trial, ty)
			}
		}
	}
}

func TestDirectedCensusPreconditions(t *testing.T) {
	loopA := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 0}}, false)
	und := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, true)
	dir := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, false)
	if _, err := DirectedCensus(MustProduct(loopA, und)); err == nil {
		t.Error("accepted left factor with loops")
	}
	if _, err := DirectedCensus(MustProduct(dir, dir)); err == nil {
		t.Error("accepted directed right factor")
	}
}

func TestDirectedDegreeFormulas(t *testing.T) {
	g := rng.New(23)
	a := randomDirected(g, 7, 3, 0.5)
	b := randomUndirected(g, 6, 3, 0)
	p := MustProduct(a, b)
	c := materialize(t, p)

	wantRec := c.ReciprocalPart().ToSparse().RowSums()
	wantOut := c.DirectedPart().ToSparse().RowSums()
	wantIn := c.DirectedPart().ToSparse().ColSums()

	dr, err := ReciprocalDegree(p)
	if err != nil {
		t.Fatal(err)
	}
	do, err := DirectedOutDegree(p)
	if err != nil {
		t.Fatal(err)
	}
	di, err := DirectedInDegree(p)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < p.NumVertices(); v++ {
		if dr.At(v) != wantRec[v] {
			t.Fatalf("reciprocal degree(%d) = %d, want %d", v, dr.At(v), wantRec[v])
		}
		if do.At(v) != wantOut[v] {
			t.Fatalf("directed out-degree(%d) = %d, want %d", v, do.At(v), wantOut[v])
		}
		if di.At(v) != wantIn[v] {
			t.Fatalf("directed in-degree(%d) = %d, want %d", v, di.At(v), wantIn[v])
		}
	}
}

// TestLabeledCensusThm6And7 validates the labeled product census against
// the direct census of the materialized, label-inheriting product.
func TestLabeledCensusThm6And7(t *testing.T) {
	g := rng.New(24)
	for trial := 0; trial < 6; trial++ {
		L := 2 + g.Intn(3)
		aPlain := randomUndirected(g, 5+g.Intn(6), 3.5, 0)
		labels := make([]int32, aPlain.NumVertices())
		for i := range labels {
			labels[i] = int32(g.Intn(L))
		}
		a := aPlain.WithLabels(labels, L)
		b := randomUndirected(g, 4+g.Intn(5), 3, g.Float64())
		p := MustProduct(a, b)
		stats, err := LabeledCensus(p)
		if err != nil {
			t.Fatal(err)
		}
		c := materialize(t, p) // carries inherited labels
		if !c.IsLabeled() {
			t.Fatal("materialized product lost labels")
		}
		directV := census.LabeledVertexCensus(c)
		for _, ty := range census.AllLabelVertexTypes(L) {
			got := stats.Vertex[ty].Vector()
			if !sparse.EqualVec(got, directV[ty]) {
				t.Fatalf("trial %d vertex type %v: formula disagrees with direct", trial, ty)
			}
		}
		directE := census.LabeledEdgeCensus(c)
		for _, ty := range census.AllLabelEdgeTypes(L) {
			got := stats.Edge[ty].Materialize()
			if !got.Equal(directE[ty]) {
				t.Fatalf("trial %d edge type %v: formula disagrees with direct", trial, ty)
			}
		}
	}
}

func TestLabeledCensusPreconditions(t *testing.T) {
	und := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, true)
	lab := und.WithLabels([]int32{0, 1, 0}, 2)
	if _, err := LabeledCensus(MustProduct(und, und)); err == nil {
		t.Error("accepted unlabeled left factor")
	}
	if _, err := LabeledCensus(MustProduct(lab.WithAllLoops(), und)); err == nil {
		t.Error("accepted labeled factor with loops")
	}
	dir := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, false)
	if _, err := LabeledCensus(MustProduct(lab, dir)); err == nil {
		t.Error("accepted directed right factor")
	}
}

func TestProductLabelInheritance(t *testing.T) {
	und := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, true)
	lab := und.WithLabels([]int32{2, 0, 1}, 3)
	b := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, true)
	p := MustProduct(lab, b)
	for v := int64(0); v < p.NumVertices(); v++ {
		i, _ := p.Factors(v)
		if p.Label(v) != lab.Label(i) {
			t.Fatalf("label(%d) = %d, want %d", v, p.Label(v), lab.Label(i))
		}
	}
}
