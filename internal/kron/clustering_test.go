package kron

import (
	"math"
	"testing"

	"kronvalid/internal/gen"
	"kronvalid/internal/rng"
	"kronvalid/internal/triangle"
)

func TestWedgeCountAgainstMaterialized(t *testing.T) {
	g := rng.New(61)
	cases := []struct{ loopsA, loopsB float64 }{
		{0, 0}, {0, 0.5}, {0.5, 0}, {0.5, 0.5},
	}
	for _, tc := range cases {
		for trial := 0; trial < 5; trial++ {
			a := randomUndirected(g, 5+g.Intn(8), 3.5, tc.loopsA)
			b := randomUndirected(g, 5+g.Intn(8), 3.5, tc.loopsB)
			p := MustProduct(a, b)
			got, err := WedgeCount(p)
			if err != nil {
				t.Fatal(err)
			}
			c := materialize(t, p)
			cl := c.WithoutLoops()
			var want int64
			for v := 0; v < cl.NumVertices(); v++ {
				d := cl.OutDegreeRaw(int32(v))
				want += d * (d - 1) / 2
			}
			if got != want {
				t.Fatalf("loops (%.1f,%.1f): wedges = %d, want %d", tc.loopsA, tc.loopsB, got, want)
			}
		}
	}
}

func TestGlobalClusteringAgainstMaterialized(t *testing.T) {
	g := rng.New(62)
	for trial := 0; trial < 6; trial++ {
		a := randomUndirected(g, 6+g.Intn(6), 4, g.Float64()*0.5)
		b := randomUndirected(g, 6+g.Intn(6), 4, g.Float64()*0.5)
		p := MustProduct(a, b)
		got, err := GlobalClustering(p)
		if err != nil {
			t.Fatal(err)
		}
		c := materialize(t, p)
		want := triangle.GlobalClusteringCoefficient(c)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: transitivity %v, direct %v", trial, got, want)
		}
	}
}

func TestGlobalClusteringClique(t *testing.T) {
	// K_n ⊗ K_m with loops everywhere is a full clique: transitivity 1.
	p := MustProduct(gen.CliqueWithLoops(3), gen.CliqueWithLoops(4))
	got, err := GlobalClustering(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("clique transitivity = %v, want 1", got)
	}
}

func TestWedgeCountRejectsDirected(t *testing.T) {
	dir := randomDirected(rng.New(1), 4, 2, 0.2)
	p := MustProduct(dir, gen.Clique(3))
	if _, err := WedgeCount(p); err == nil {
		t.Fatal("expected error for directed factors")
	}
}

func TestLocalClusteringAgainstDirect(t *testing.T) {
	g := rng.New(63)
	a := randomUndirected(g, 8, 4, 0.3)
	b := randomUndirected(g, 7, 4, 0.3)
	p := MustProduct(a, b)
	cc, err := LocalClustering(p)
	if err != nil {
		t.Fatal(err)
	}
	c := materialize(t, p)
	want := triangle.LocalClusteringCoefficients(c)
	for v := int64(0); v < p.NumVertices(); v++ {
		if math.Abs(cc(v)-want[v]) > 1e-12 {
			t.Fatalf("cc(%d) = %v, direct %v", v, cc(v), want[v])
		}
	}
}
