package kron

import (
	"fmt"

	"kronvalid/internal/graph"
	"kronvalid/internal/sparse"
)

// Egonet is the induced subgraph of a product vertex's closed
// neighborhood, extracted directly from the factors without materializing
// C — the paper's §VI validation device (Fig. 7).
type Egonet struct {
	// Center is the product vertex the egonet is built around.
	Center int64
	// Local is the induced subgraph on {Center} ∪ N(Center); vertex 0 is
	// the center.
	Local *graph.Graph
	// ProductIDs maps local vertex ids back to product vertex ids.
	ProductIDs []int64
	// Degree is the center's degree in C (excluding its self loop).
	Degree int64
	// LocalTriangles is the number of triangles at the center within the
	// egonet, which equals t_C(Center) because every triangle through a
	// vertex lies inside its neighborhood.
	LocalTriangles int64
}

// ExtractEgonet builds the egonet of product vertex v. Cost is
// O(d_C(v)²) edge probes against the factors; d_C(v) must be at most
// maxDegree (guarding against accidentally expanding a hub).
func ExtractEgonet(p *Product, v int64, maxDegree int64) (*Egonet, error) {
	if !p.IsSymmetric() {
		return nil, fmt.Errorf("kron: egonet extraction requires an undirected product")
	}
	deg := p.OutDegreeRaw(v)
	if deg > maxDegree {
		return nil, fmt.Errorf("kron: egonet degree %d exceeds limit %d", deg, maxDegree)
	}
	// Closed neighborhood, center first, self loop excluded from the
	// neighbor list. EachNeighbor yields increasing product ids, so
	// ids[1:] is sorted and local ids resolve by binary search — no
	// per-egonet hash map.
	ids := make([]int64, 0, deg+1)
	ids = append(ids, v)
	p.EachNeighbor(v, func(u int64) bool {
		if u != v {
			ids = append(ids, u)
		}
		return true
	})
	// Induced edges: center ↔ neighbors by construction; neighbor pairs
	// via factor probes. Self loops are omitted — they never affect
	// triangle counts.
	var edges []graph.Edge
	for li := 1; li < len(ids); li++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(li)})
	}
	for a := 1; a < len(ids); a++ {
		for b := a + 1; b < len(ids); b++ {
			if p.HasEdge(ids[a], ids[b]) {
				edges = append(edges, graph.Edge{U: int32(a), V: int32(b)})
			}
		}
	}
	local := graph.FromEdges(len(ids), edges, true)

	ego := &Egonet{
		Center:     v,
		Local:      local,
		ProductIDs: ids,
		Degree:     p.Degree(v),
	}
	ego.LocalTriangles = centerTriangles(local)
	return ego, nil
}

// centerTriangles counts triangles through local vertex 0.
func centerTriangles(g *graph.Graph) int64 {
	u := g
	if !u.IsSymmetric() {
		u = u.Undirected()
	}
	u = u.WithoutLoops()
	nb := u.Neighbors(0)
	var count int64
	for x := 0; x < len(nb); x++ {
		for y := x + 1; y < len(nb); y++ {
			if u.HasEdge(nb[x], nb[y]) {
				count++
			}
		}
	}
	return count
}

// VerifyEgonet checks one product vertex against the Kronecker formula:
// extracts the egonet, counts triangles at the center directly, and
// compares with the formula value t.At(center). It returns the egonet for
// inspection and an error on mismatch. This is exactly the paper's §VI
// spot-validation procedure.
func VerifyEgonet(p *Product, t *KronVecSum, v int64, maxDegree int64) (*Egonet, error) {
	ego, err := ExtractEgonet(p, v, maxDegree)
	if err != nil {
		return nil, err
	}
	want := t.At(v)
	if ego.LocalTriangles != want {
		return ego, fmt.Errorf("kron: egonet of %d has %d triangles, formula says %d",
			v, ego.LocalTriangles, want)
	}
	return ego, nil
}

// EgonetAdjacency renders the egonet's local adjacency as a sparse matrix
// (useful for printing small Fig. 7-style figures).
func (e *Egonet) EgonetAdjacency() *sparse.Matrix {
	return e.Local.ToSparse()
}
