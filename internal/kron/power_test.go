package kron

import (
	"testing"
	"testing/quick"

	"kronvalid/internal/gen"
	"kronvalid/internal/rng"
	"kronvalid/internal/sparse"
	"kronvalid/internal/triangle"
)

func TestMultiProductMatchesBinaryProduct(t *testing.T) {
	g := rng.New(71)
	for trial := 0; trial < 8; trial++ {
		a := randomUndirected(g, 4+g.Intn(5), 3, g.Float64()*0.5)
		b := randomUndirected(g, 4+g.Intn(5), 3, g.Float64()*0.5)
		bin := MustProduct(a, b)
		multi := MustMultiProduct(a, b)
		if multi.NumVertices() != bin.NumVertices() || multi.NumArcs() != bin.NumArcs() {
			t.Fatal("size mismatch with binary product")
		}
		for v := int64(0); v < multi.NumVertices(); v++ {
			i, k := bin.Factors(v)
			idx := multi.FactorsOf(v)
			if idx[0] != i || idx[1] != k {
				t.Fatalf("index maps disagree at %d: (%d,%d) vs %v", v, i, k, idx)
			}
			if multi.Degree(v) != bin.Degree(v) {
				t.Fatalf("degree(%d): %d vs %d", v, multi.Degree(v), bin.Degree(v))
			}
		}
		n := multi.NumVertices()
		for s := 0; s < 100; s++ {
			u, v := g.Int64n(n), g.Int64n(n)
			if multi.HasEdge(u, v) != bin.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) disagrees", u, v)
			}
		}
	}
}

func TestMultiProductIndexRoundTrip(t *testing.T) {
	a := gen.Clique(3)
	b := gen.Cycle(4)
	c := gen.Path(5)
	p := MustMultiProduct(a, b, c)
	if p.NumVertices() != 60 {
		t.Fatalf("NumVertices = %d", p.NumVertices())
	}
	for v := int64(0); v < 60; v++ {
		if got := p.Vertex(p.FactorsOf(v)); got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
}

func TestMultiEachArcMatchesMaterialized(t *testing.T) {
	a := gen.Clique(3)
	b := gen.HubCycle(3)
	c := gen.Cycle(3)
	p := MustMultiProduct(a, b, c)
	seen := map[[2]int64]bool{}
	var count int64
	p.EachArc(func(u, v int64) bool {
		key := [2]int64{u, v}
		if seen[key] {
			t.Fatalf("duplicate arc (%d,%d)", u, v)
		}
		seen[key] = true
		count++
		return true
	})
	if count != p.NumArcs() {
		t.Fatalf("streamed %d arcs, want %d", count, p.NumArcs())
	}
	cg, err := p.Materialize(100000, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	cg.EachArc(func(u, v int32) bool {
		if !seen[[2]int64{int64(u), int64(v)}] {
			t.Fatalf("materialized arc (%d,%d) not streamed", u, v)
		}
		return true
	})
	// Cross-check with explicit triple Kronecker.
	want := sparse.Kron(sparse.Kron(a.ToSparse(), b.ToSparse()), c.ToSparse())
	if !cg.ToSparse().Equal(want) {
		t.Fatal("materialized triple product != (A⊗B)⊗C")
	}
}

func TestMultiVertexParticipationThreeFactors(t *testing.T) {
	g := rng.New(72)
	cases := []float64{0, 0.5}
	for _, loopP := range cases {
		for trial := 0; trial < 4; trial++ {
			a := randomUndirected(g, 3+g.Intn(4), 2.5, loopP)
			b := randomUndirected(g, 3+g.Intn(4), 2.5, loopP)
			c := randomUndirected(g, 3+g.Intn(4), 2.5, loopP)
			p := MustMultiProduct(a, b, c)
			tv, err := MultiVertexParticipation(p)
			if err != nil {
				t.Fatal(err)
			}
			cg, err := p.Materialize(100000, 10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			want := triangle.Count(cg).PerVertex
			if !sparse.EqualVec(tv.Vector(), want) {
				t.Fatalf("loopP=%.1f trial %d: multi t_C disagrees with direct count", loopP, trial)
			}
		}
	}
}

func TestMultiTriangleTotalPowerLaw(t *testing.T) {
	// Loop-free: τ(B^{⊗k}) = 6^{k-1}·τ(B)^k.
	b := gen.WebGraph(40, 3, 0.8, 5)
	tb := triangle.Count(b).Total
	if tb == 0 {
		t.Skip("factor has no triangles at this seed")
	}
	for k := 1; k <= 3; k++ {
		p, err := KroneckerPower(b, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MultiTriangleTotal(p)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(1)
		for i := 0; i < k; i++ {
			want *= tb
		}
		for i := 0; i < k-1; i++ {
			want *= 6
		}
		if got != want {
			t.Fatalf("k=%d: τ = %d, want 6^{k-1}·τ(B)^k = %d", k, got, want)
		}
	}
}

func TestMultiEdgeDeltaAgainstDirect(t *testing.T) {
	g := rng.New(73)
	for trial := 0; trial < 5; trial++ {
		a := randomUndirected(g, 3+g.Intn(4), 2.5, g.Float64()*0.6)
		b := randomUndirected(g, 3+g.Intn(4), 2.5, g.Float64()*0.6)
		c := randomUndirected(g, 3+g.Intn(3), 2.5, g.Float64()*0.6)
		p := MustMultiProduct(a, b, c)
		deltaAt, err := MultiEdgeDelta(p)
		if err != nil {
			t.Fatal(err)
		}
		cg, err := p.Materialize(100000, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		want := triangle.Count(cg).EdgeDelta
		ok := true
		want.Each(func(r, cc int, v int64) bool {
			if deltaAt(int64(r), int64(cc)) != v {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			t.Fatalf("trial %d: multi Δ_C disagrees with direct count", trial)
		}
		// And zero off-support (spot check).
		n := p.NumVertices()
		for s := 0; s < 50; s++ {
			u, v := g.Int64n(n), g.Int64n(n)
			if !p.HasEdge(u, v) && u != v {
				if deltaAt(u, v) != want.At(int(u), int(v)) {
					t.Fatalf("off-edge Δ(%d,%d) wrong", u, v)
				}
			}
		}
	}
}

func TestMultiProductSingleFactorIdentity(t *testing.T) {
	// k=1: the product is the factor itself.
	b := gen.HubCycle(4)
	p := MustMultiProduct(b)
	tv, err := MultiVertexParticipation(p)
	if err != nil {
		t.Fatal(err)
	}
	want := triangle.Count(b).PerVertex
	if !sparse.EqualVec(tv.Vector(), want) {
		t.Fatal("k=1 participation wrong")
	}
	if p.NumArcs() != b.NumArcs() || p.NumVertices() != int64(b.NumVertices()) {
		t.Fatal("k=1 sizes wrong")
	}
}

func TestMultiProductValidation(t *testing.T) {
	if _, err := NewMultiProduct(); err == nil {
		t.Error("accepted zero factors")
	}
	if _, err := KroneckerPower(gen.Clique(3), 0); err == nil {
		t.Error("accepted power 0")
	}
}

func TestMultiProductOverflowGuard(t *testing.T) {
	// 6 factors of 2^11 vertices = 2^66 product vertices: must overflow.
	b := gen.Clique(1 << 11)
	if _, err := NewMultiProduct(b, b, b, b, b, b); err == nil {
		t.Error("expected overflow error")
	}
}

func TestQuickMultiMatchesBinaryParticipation(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		a := randomUndirected(g, 3+g.Intn(5), 3, g.Float64()*0.5)
		b := randomUndirected(g, 3+g.Intn(5), 3, g.Float64()*0.5)
		bin, err := VertexParticipation(MustProduct(a, b))
		if err != nil {
			return false
		}
		multi, err := MultiVertexParticipation(MustMultiProduct(a, b))
		if err != nil {
			return false
		}
		return sparse.EqualVec(bin.Vector(), multi.Vector())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
