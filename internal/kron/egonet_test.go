package kron

import (
	"errors"
	"testing"

	"kronvalid/internal/gen"
	"kronvalid/internal/rng"
	"kronvalid/internal/triangle"
)

func TestEgonetMatchesDirectCount(t *testing.T) {
	g := rng.New(41)
	for trial := 0; trial < 6; trial++ {
		a := randomUndirected(g, 6+g.Intn(6), 3.5, g.Float64()*0.5)
		b := randomUndirected(g, 5+g.Intn(6), 3.5, g.Float64()*0.5)
		p := MustProduct(a, b)
		tc, err := VertexParticipation(p)
		if err != nil {
			t.Fatal(err)
		}
		c := materialize(t, p)
		direct := triangle.Count(c).PerVertex
		for v := int64(0); v < p.NumVertices(); v++ {
			ego, err := ExtractEgonet(p, v, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			if ego.LocalTriangles != direct[v] {
				t.Fatalf("trial %d: egonet(%d) triangles = %d, direct %d",
					trial, v, ego.LocalTriangles, direct[v])
			}
			if ego.Degree != c.Degree(int32(v)) {
				t.Fatalf("trial %d: egonet(%d) degree = %d, explicit %d",
					trial, v, ego.Degree, c.Degree(int32(v)))
			}
			if _, err := VerifyEgonet(p, tc, v, 1<<20); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

// TestFig7Procedure reproduces the paper's Fig. 7 experiment shape:
// pick degree-3 vertices of A with 1, 2, 3 triangles; their product
// vertices in A⊗A have degree 9 and doubled triangle products, and in
// A⊗(A+I) degree 12 with t_A ⊗ diag(B³) triangle counts.
func TestFig7Procedure(t *testing.T) {
	// Build a web-like factor guaranteed to contain degree-3 vertices
	// with 1, 2 and 3 triangles.
	a := gen.WebGraph(400, 3, 0.7, 9)
	statsA := ComputeFactorStats(a)
	byTriangles := map[int64]int32{}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Degree(int32(v)) == 3 {
			tv := statsA.T[v]
			if _, seen := byTriangles[tv]; !seen && tv >= 1 && tv <= 3 {
				byTriangles[tv] = int32(v)
			}
		}
	}
	for _, want := range []int64{1, 2, 3} {
		if _, ok := byTriangles[want]; !ok {
			t.Skipf("factor lacks a degree-3 vertex with %d triangles; adjust seed", want)
		}
	}

	// A ⊗ A: the nine cross vertices have degree 9 and t = 2·tA·tA'.
	pAA := MustProduct(a, a)
	tAA, err := VertexParticipation(pAA)
	if err != nil {
		t.Fatal(err)
	}
	for _, ta := range []int64{1, 2, 3} {
		for _, tb := range []int64{1, 2, 3} {
			v := pAA.Vertex(byTriangles[ta], byTriangles[tb])
			if got := pAA.Degree(v); got != 9 {
				t.Errorf("A⊗A degree(%d) = %d, want 9", v, got)
			}
			want := 2 * ta * tb
			if got := tAA.At(v); got != want {
				t.Errorf("A⊗A t(%d) = %d, want %d", v, got, want)
			}
			ego, err := ExtractEgonet(pAA, v, 1000)
			if err != nil {
				t.Fatal(err)
			}
			if ego.LocalTriangles != want {
				t.Errorf("A⊗A egonet(%d) = %d triangles, want %d", v, ego.LocalTriangles, want)
			}
		}
	}

	// A ⊗ B with B = A + I: degree 12, t = tA · diag(B³)_k.
	b := a.WithAllLoops()
	pAB := MustProduct(a, b)
	statsB := ComputeFactorStats(b)
	tAB, err := VertexParticipation(pAB)
	if err != nil {
		t.Fatal(err)
	}
	if pAB.NumLoops() != 0 {
		t.Fatal("A⊗(A+I) should have no self loops")
	}
	for _, ta := range []int64{1, 2, 3} {
		for _, tb := range []int64{1, 2, 3} {
			v := pAB.Vertex(byTriangles[ta], byTriangles[tb])
			if got := pAB.Degree(v); got != 12 {
				t.Errorf("A⊗B degree(%d) = %d, want 12", v, got)
			}
			want := ta * statsB.DiagCube[byTriangles[tb]]
			if got := tAB.At(v); got != want {
				t.Errorf("A⊗B t(%d) = %d, want %d", v, got, want)
			}
			ego, err := ExtractEgonet(pAB, v, 1000)
			if err != nil {
				t.Fatal(err)
			}
			if ego.LocalTriangles != want {
				t.Errorf("A⊗B egonet(%d) = %d triangles, want %d", v, ego.LocalTriangles, want)
			}
		}
	}
}

func TestEgonetDegreeLimit(t *testing.T) {
	a := gen.Clique(10)
	p := MustProduct(a, a)
	_, err := ExtractEgonet(p, 0, 5)
	if err == nil {
		t.Fatal("expected degree-limit error")
	}
}

func TestEgonetRejectsDirected(t *testing.T) {
	dir := randomDirected(rng.New(4), 5, 2, 0.2)
	und := gen.Clique(3)
	p := MustProduct(dir, und)
	if _, err := ExtractEgonet(p, 0, 100); err == nil {
		t.Fatal("expected error for directed product")
	}
}

func TestEgonetProductIDs(t *testing.T) {
	a := gen.Clique(4)
	p := MustProduct(a, a)
	ego, err := ExtractEgonet(p, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ego.ProductIDs[0] != 5 {
		t.Fatal("center not first")
	}
	// Every listed id must be 5 or a neighbor of 5.
	for _, pv := range ego.ProductIDs[1:] {
		if !p.HasEdge(5, pv) {
			t.Fatalf("non-neighbor %d in egonet", pv)
		}
	}
	// Adjacency render has the right shape.
	adj := ego.EgonetAdjacency()
	if adj.Rows() != len(ego.ProductIDs) {
		t.Fatal("adjacency size mismatch")
	}
}

func TestMaterializeTooLarge(t *testing.T) {
	a := gen.Clique(100)
	p := MustProduct(a, a)
	_, err := p.Materialize(10, 10)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
}
