package kron

import (
	"errors"

	"kronvalid/internal/census"
	"kronvalid/internal/sparse"
)

// DirectedStats holds the Kronecker-derived directed triangle census of
// C = A ⊗ B under Thm. 4 and Thm. 5: A directed without self loops, B
// undirected (possibly with self loops). Every one of the 15 vertex types
// and 15 edge types of C is t^(τ)_A ⊗ diag(B³) and Δ^(τ)_A ⊗ (B∘B²)
// respectively.
type DirectedStats struct {
	Vertex map[census.VertexType]*KronVecSum
	Edge   map[census.EdgeType]*KronMatSum
}

// DirectedCensus computes the full directed census of the product from
// factor censuses (Thm. 4, Thm. 5). It validates the theorems'
// hypotheses: diag(A) = 0 and B undirected.
func DirectedCensus(p *Product) (*DirectedStats, error) {
	if p.A.HasAnyLoop() {
		return nil, errors.New("kron: Thm. 4/5 require a loop-free left factor")
	}
	if !p.B.IsSymmetric() {
		return nil, errors.New("kron: Thm. 4/5 require an undirected right factor (B_d = O)")
	}
	censusA := census.DirectedVertexCensus(p.A)
	edgeA := census.DirectedEdgeCensus(p.A)

	b := p.B.ToSparse()
	b2 := b.Mul(b)
	diagB3 := sparse.DiagOfProduct(b2, b)
	hadB := b.Hadamard(b2)

	out := &DirectedStats{
		Vertex: make(map[census.VertexType]*KronVecSum, census.NumVertexTypes),
		Edge:   make(map[census.EdgeType]*KronMatSum, census.NumEdgeTypes),
	}
	for _, ty := range census.AllVertexTypes() {
		out.Vertex[ty] = &KronVecSum{
			Terms: []VecTerm{{Coef: 1, U: censusA.Counts[ty], V: diagB3}},
			Den:   1,
			nB:    p.nB,
		}
	}
	for _, ty := range census.AllEdgeTypes() {
		out.Edge[ty] = &KronMatSum{
			Terms: []MatTerm{{Coef: 1, M: edgeA.Delta[ty], N: hadB}},
			nB:    p.nB, mB: p.nB,
		}
	}
	return out, nil
}

// ReciprocalDegree returns d_{C_r} = d_{A_r} ⊗ d_B (§IV.B): the number of
// reciprocal edges at each product vertex, assuming B undirected.
func ReciprocalDegree(p *Product) (*KronVecSum, error) {
	if !p.B.IsSymmetric() {
		return nil, errors.New("kron: reciprocal degree formula requires undirected B")
	}
	return &KronVecSum{
		Terms: []VecTerm{{Coef: 1, U: rawRowSums(p.A.ReciprocalPart()), V: rawRowSums(p.B)}},
		Den:   1,
		nB:    p.nB,
	}, nil
}

// DirectedOutDegree returns d^out_{C_d} = d^out_{A_d} ⊗ d_B (§IV.B).
func DirectedOutDegree(p *Product) (*KronVecSum, error) {
	if !p.B.IsSymmetric() {
		return nil, errors.New("kron: directed degree formula requires undirected B")
	}
	return &KronVecSum{
		Terms: []VecTerm{{Coef: 1, U: rawRowSums(p.A.DirectedPart()), V: rawRowSums(p.B)}},
		Den:   1,
		nB:    p.nB,
	}, nil
}

// DirectedInDegree returns d^in_{C_d} = d^in_{A_d} ⊗ d_B (§IV.B).
func DirectedInDegree(p *Product) (*KronVecSum, error) {
	if !p.B.IsSymmetric() {
		return nil, errors.New("kron: directed degree formula requires undirected B")
	}
	return &KronVecSum{
		Terms: []VecTerm{{Coef: 1, U: rawRowSums(p.A.DirectedPart().Transpose()), V: rawRowSums(p.B)}},
		Den:   1,
		nB:    p.nB,
	}, nil
}
