package kron

import (
	"testing"

	"kronvalid/internal/graph"
	"kronvalid/internal/rng"
	"kronvalid/internal/sparse"
	"kronvalid/internal/triangle"
)

func randomUndirected(g *rng.Xoshiro256, n int, avgDeg float64, loopProb float64) *graph.Graph {
	var edges []graph.Edge
	target := int(avgDeg * float64(n) / 2)
	for i := 0; i < target; i++ {
		u, v := int32(g.Intn(n)), int32(g.Intn(n))
		if u != v {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	gr := graph.FromEdges(n, edges, true)
	if loopProb > 0 {
		var loops []graph.Edge
		gr.EachArc(func(u, v int32) bool { return true })
		for v := 0; v < n; v++ {
			if g.Float64() < loopProb {
				loops = append(loops, graph.Edge{U: int32(v), V: int32(v)})
			}
		}
		all := append(gr.Arcs(), loops...)
		gr = graph.FromEdges(n, all, false)
	}
	return gr
}

// materialize builds the explicit C for validation.
func materialize(t *testing.T, p *Product) *graph.Graph {
	t.Helper()
	c, err := p.Materialize(5000, 2_000_000)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return c
}

func TestProductIndexMaps(t *testing.T) {
	a := randomUndirected(rng.New(1), 7, 3, 0)
	b := randomUndirected(rng.New(2), 5, 2, 0)
	p := MustProduct(a, b)
	for i := int32(0); i < 7; i++ {
		for k := int32(0); k < 5; k++ {
			v := p.Vertex(i, k)
			gi, gk := p.Factors(v)
			if gi != i || gk != k {
				t.Fatalf("Factors(Vertex(%d,%d)) = (%d,%d)", i, k, gi, gk)
			}
		}
	}
	if p.NumVertices() != 35 {
		t.Errorf("NumVertices = %d", p.NumVertices())
	}
}

func TestProductAdjacencyMatchesExplicitKron(t *testing.T) {
	g := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		a := randomUndirected(g, 4+g.Intn(8), 3, 0.3)
		b := randomUndirected(g, 3+g.Intn(8), 3, 0.3)
		p := MustProduct(a, b)
		want := sparse.Kron(a.ToSparse(), b.ToSparse())
		c := materialize(t, p)
		if !c.ToSparse().Equal(want) {
			t.Fatalf("trial %d: materialized product != A ⊗ B", trial)
		}
		// Spot-check HasEdge and Degree against the explicit graph.
		n := p.NumVertices()
		for s := 0; s < 50; s++ {
			u, v := g.Int64n(n), g.Int64n(n)
			if p.HasEdge(u, v) != c.HasEdge(int32(u), int32(v)) {
				t.Fatalf("HasEdge(%d,%d) mismatch", u, v)
			}
		}
		for v := int64(0); v < n; v++ {
			if p.Degree(v) != c.Degree(int32(v)) {
				t.Fatalf("Degree(%d) = %d, explicit %d", v, p.Degree(v), c.Degree(int32(v)))
			}
		}
	}
}

func TestEachArcMatchesMaterialized(t *testing.T) {
	g := rng.New(4)
	a := randomUndirected(g, 6, 3, 0.2)
	b := randomUndirected(g, 5, 3, 0.2)
	p := MustProduct(a, b)
	seen := map[[2]int64]bool{}
	var count int64
	p.EachArc(func(u, v int64) bool {
		key := [2]int64{u, v}
		if seen[key] {
			t.Fatalf("arc (%d,%d) emitted twice", u, v)
		}
		seen[key] = true
		count++
		return true
	})
	if count != p.NumArcs() {
		t.Fatalf("EachArc emitted %d arcs, NumArcs = %d", count, p.NumArcs())
	}
	c := materialize(t, p)
	c.EachArc(func(u, v int32) bool {
		if !seen[[2]int64{int64(u), int64(v)}] {
			t.Fatalf("materialized arc (%d,%d) missing from stream", u, v)
		}
		return true
	})
}

func TestEachNeighborSortedAndComplete(t *testing.T) {
	g := rng.New(5)
	a := randomUndirected(g, 6, 3, 0.3)
	b := randomUndirected(g, 7, 3, 0.3)
	p := MustProduct(a, b)
	c := materialize(t, p)
	for v := int64(0); v < p.NumVertices(); v++ {
		var got []int64
		p.EachNeighbor(v, func(u int64) bool {
			got = append(got, u)
			return true
		})
		want := c.Neighbors(int32(v))
		if len(got) != len(want) {
			t.Fatalf("vertex %d: %d neighbors, want %d", v, len(got), len(want))
		}
		for x := range want {
			if got[x] != int64(want[x]) {
				t.Fatalf("vertex %d neighbor %d: %d vs %d", v, x, got[x], want[x])
			}
		}
	}
}

// --- degree formulas (§III.A) ---

func TestDegreeFormulaAllLoopRegimes(t *testing.T) {
	g := rng.New(6)
	cases := []struct {
		name           string
		loopsA, loopsB float64
	}{
		{"no loops", 0, 0},
		{"loops in B", 0, 0.5},
		{"loops in A", 0.5, 0},
		{"loops in both", 0.5, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := randomUndirected(g, 8, 3, tc.loopsA)
			b := randomUndirected(g, 7, 3, tc.loopsB)
			p := MustProduct(a, b)
			c := materialize(t, p)
			for v := int64(0); v < p.NumVertices(); v++ {
				if p.Degree(v) != c.Degree(int32(v)) {
					t.Fatalf("degree(%d) = %d, explicit %d", v, p.Degree(v), c.Degree(int32(v)))
				}
			}
		})
	}
}

func TestOutInDegreesKron(t *testing.T) {
	g := rng.New(7)
	a := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 3, V: 1}, {U: 4, V: 4}}, false)
	b := randomUndirected(g, 6, 3, 0.3)
	p := MustProduct(a, b)
	c := materialize(t, p)
	cs := c.ToSparse()
	wantOut := cs.RowSums()
	wantIn := cs.ColSums()
	dOut := OutDegrees(p)
	dIn := InDegrees(p)
	for v := int64(0); v < p.NumVertices(); v++ {
		if dOut.At(v) != wantOut[v] {
			t.Fatalf("out-degree(%d) = %d, want %d", v, dOut.At(v), wantOut[v])
		}
		if dIn.At(v) != wantIn[v] {
			t.Fatalf("in-degree(%d) = %d, want %d", v, dIn.At(v), wantIn[v])
		}
	}
}

func TestMaxDegree(t *testing.T) {
	g := rng.New(8)
	for trial := 0; trial < 10; trial++ {
		a := randomUndirected(g, 5+g.Intn(8), 3, g.Float64())
		b := randomUndirected(g, 5+g.Intn(8), 3, g.Float64())
		p := MustProduct(a, b)
		d, v := p.MaxDegree()
		if got := p.Degree(v); got != d {
			t.Fatalf("MaxDegree witness %d has degree %d, claimed %d", v, got, d)
		}
		for u := int64(0); u < p.NumVertices(); u++ {
			if p.Degree(u) > d {
				t.Fatalf("vertex %d has degree %d > claimed max %d", u, p.Degree(u), d)
			}
		}
	}
}

// --- Thm. 1 / Cor. 1 / general: vertex participation ---

func TestVertexParticipationAllRegimes(t *testing.T) {
	g := rng.New(9)
	cases := []struct {
		name           string
		loopsA, loopsB float64
	}{
		{"Thm1 no loops", 0, 0},
		{"Cor1 loops in B", 0, 0.6},
		{"loops in A only", 0.6, 0},
		{"general both loops", 0.6, 0.6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 6; trial++ {
				a := randomUndirected(g, 5+g.Intn(8), 3.5, tc.loopsA)
				b := randomUndirected(g, 4+g.Intn(8), 3.5, tc.loopsB)
				p := MustProduct(a, b)
				tc2, err := VertexParticipation(p)
				if err != nil {
					t.Fatal(err)
				}
				c := materialize(t, p)
				want := triangle.Count(c).PerVertex
				got := tc2.Vector()
				if !sparse.EqualVec(got, want) {
					t.Fatalf("trial %d: t_C formula disagrees with direct count\nformula %v\ndirect  %v",
						trial, got, want)
				}
			}
		})
	}
}

func TestVertexParticipationSpecializations(t *testing.T) {
	g := rng.New(10)
	// Thm. 1: specialized == general == direct.
	a := randomUndirected(g, 9, 4, 0)
	b := randomUndirected(g, 8, 4, 0)
	p := MustProduct(a, b)
	sa, sb := ComputeFactorStats(a), ComputeFactorStats(b)
	spec, err := VertexParticipationNoLoops(p, sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := VertexParticipation(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.EqualVec(spec.Vector(), gen.Vector()) {
		t.Fatal("Thm. 1 specialization disagrees with general formula")
	}
	// Cor. 1: B with loops.
	bl := b.WithAllLoops()
	p2 := MustProduct(a, bl)
	sbl := ComputeFactorStats(bl)
	spec2, err := VertexParticipationLoopsInB(p2, sa, sbl)
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := VertexParticipation(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.EqualVec(spec2.Vector(), gen2.Vector()) {
		t.Fatal("Cor. 1 specialization disagrees with general formula")
	}
	// Preconditions enforced.
	if _, err := VertexParticipationNoLoops(p2, sa, sbl); err == nil {
		t.Error("Thm. 1 constructor accepted loops")
	}
	if _, err := VertexParticipationLoopsInB(MustProduct(bl, a), sbl, sa); err == nil {
		t.Error("Cor. 1 constructor accepted loops in A")
	}
}

func TestVertexParticipationEvenWithoutLoops(t *testing.T) {
	// Without self loops every vertex of C has an even triangle count
	// (remark under Thm. 1).
	g := rng.New(11)
	for trial := 0; trial < 8; trial++ {
		a := randomUndirected(g, 6+g.Intn(8), 4, 0)
		b := randomUndirected(g, 6+g.Intn(8), 4, 0)
		tc, err := VertexParticipation(MustProduct(a, b))
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range tc.Vector() {
			if x%2 != 0 {
				t.Fatalf("odd triangle count %d in loop-free product", x)
			}
		}
	}
}

func TestTriangleTotalSixFold(t *testing.T) {
	// τ(C) = 6 τ(A) τ(B) for loop-free factors.
	g := rng.New(12)
	for trial := 0; trial < 8; trial++ {
		a := randomUndirected(g, 6+g.Intn(10), 4, 0)
		b := randomUndirected(g, 6+g.Intn(10), 4, 0)
		p := MustProduct(a, b)
		total, err := TriangleTotal(p)
		if err != nil {
			t.Fatal(err)
		}
		ta := triangle.Count(a).Total
		tb := triangle.Count(b).Total
		if total != 6*ta*tb {
			t.Fatalf("τ(C) = %d, want 6·%d·%d = %d", total, ta, tb, 6*ta*tb)
		}
		// And against the direct count.
		c := materialize(t, p)
		if direct := triangle.Count(c).Total; direct != total {
			t.Fatalf("τ(C) formula %d != direct %d", total, direct)
		}
	}
}

// --- Thm. 2 / Cor. 2 / general: edge participation ---

func TestEdgeParticipationAllRegimes(t *testing.T) {
	g := rng.New(13)
	cases := []struct {
		name           string
		loopsA, loopsB float64
	}{
		{"Thm2 no loops", 0, 0},
		{"Cor2 loops in B", 0, 0.6},
		{"loops in A only", 0.6, 0},
		{"general both loops", 0.6, 0.6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 5; trial++ {
				a := randomUndirected(g, 4+g.Intn(7), 3.5, tc.loopsA)
				b := randomUndirected(g, 4+g.Intn(7), 3.5, tc.loopsB)
				p := MustProduct(a, b)
				dc, err := EdgeParticipation(p)
				if err != nil {
					t.Fatal(err)
				}
				c := materialize(t, p)
				want := triangle.Count(c).EdgeDelta
				got := dc.Materialize()
				if !got.Equal(want) {
					t.Fatalf("trial %d: Δ_C formula disagrees with direct count", trial)
				}
				// Lazy At agrees with materialized.
				n := p.NumVertices()
				for s := 0; s < 100; s++ {
					u, v := g.Int64n(n), g.Int64n(n)
					if dc.At(u, v) != got.At(int(u), int(v)) {
						t.Fatalf("Δ At(%d,%d) lazy %d != materialized %d",
							u, v, dc.At(u, v), got.At(int(u), int(v)))
					}
				}
			}
		})
	}
}

func TestEdgeParticipationSpecializations(t *testing.T) {
	g := rng.New(14)
	a := randomUndirected(g, 8, 4, 0)
	b := randomUndirected(g, 7, 4, 0)
	sa, sb := ComputeFactorStats(a), ComputeFactorStats(b)
	p := MustProduct(a, b)
	spec, err := EdgeParticipationNoLoops(p, sa, sb)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := EdgeParticipation(p)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Materialize().Equal(gen.Materialize()) {
		t.Fatal("Thm. 2 specialization disagrees with general formula")
	}
	bl := b.WithAllLoops()
	sbl := ComputeFactorStats(bl)
	p2 := MustProduct(a, bl)
	spec2, err := EdgeParticipationLoopsInB(p2, sa, sbl)
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := EdgeParticipation(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !spec2.Materialize().Equal(gen2.Materialize()) {
		t.Fatal("Cor. 2 specialization disagrees with general formula")
	}
}

func TestEdgeParticipationConsistentWithVertex(t *testing.T) {
	// t_C = ½ Δ_C · 1.
	g := rng.New(15)
	a := randomUndirected(g, 7, 4, 0.4)
	b := randomUndirected(g, 6, 4, 0.4)
	p := MustProduct(a, b)
	tc, err := VertexParticipation(p)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := EdgeParticipation(p)
	if err != nil {
		t.Fatal(err)
	}
	rows := dc.Materialize().RowSums()
	tv := tc.Vector()
	for v := range tv {
		if rows[v] != 2*tv[v] {
			t.Fatalf("Δ_C·1 != 2 t_C at %d: %d vs %d", v, rows[v], 2*tv[v])
		}
	}
}

func TestDirectedFormulaRejected(t *testing.T) {
	dir := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}}, false)
	und := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, true)
	p := MustProduct(dir, und)
	if _, err := VertexParticipation(p); err == nil {
		t.Error("VertexParticipation accepted a directed factor")
	}
	if _, err := EdgeParticipation(p); err == nil {
		t.Error("EdgeParticipation accepted a directed factor")
	}
}

func TestNewProductValidation(t *testing.T) {
	empty := graph.FromEdges(0, nil, true)
	one := graph.FromEdges(1, nil, true)
	if _, err := NewProduct(empty, one); err == nil {
		t.Error("NewProduct accepted empty factor")
	}
}

// TestLoopTuningBoost quantifies the Rem. 1 tuning knob: adding a self
// loop at one factor-B vertex raises t_C exactly for the affected block
// and nowhere else.
func TestLoopTuningBoost(t *testing.T) {
	g := rng.New(16)
	a := randomUndirected(g, 8, 4, 0)
	b := randomUndirected(g, 7, 4, 0)
	const k = 3
	bBoosted := b.WithLoopAt(k)

	base, err := VertexParticipation(MustProduct(a, b))
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := VertexParticipation(MustProduct(a, bBoosted))
	if err != nil {
		t.Fatal(err)
	}
	p := MustProduct(a, bBoosted)
	c := materialize(t, p)
	direct := triangle.Count(c).PerVertex
	anyBoost := false
	for v := int64(0); v < p.NumVertices(); v++ {
		if boosted.At(v) != direct[v] {
			t.Fatalf("boosted formula wrong at %d", v)
		}
		_, kk := p.Factors(v)
		diff := boosted.At(v) - base.At(v)
		if diff < 0 {
			t.Fatalf("loop removed triangles at %d", v)
		}
		if diff > 0 {
			anyBoost = true
			// Boost only in blocks where B-vertex is k or a neighbor of
			// k (the loop at k creates new closed walks through k).
			if kk != k && !bBoosted.HasEdge(kk, k) {
				t.Fatalf("boost leaked to unrelated block %d", kk)
			}
		}
	}
	if !anyBoost {
		t.Skip("factor had no wedge at the boosted vertex; change seed")
	}
}

// TestDiagCubeLoopIdentity pins the remark under Cor. 1: for B = A + I
// with loop-free A, diag(B³)_k = 2·t_A(k) + 3·d_A(k) + 1 — the double
// counted triangles plus the four loop-involving 3-walks. This identity
// is what produces Fig. 7's bottom-panel numbers.
func TestDiagCubeLoopIdentity(t *testing.T) {
	g := rng.New(17)
	for trial := 0; trial < 10; trial++ {
		a := randomUndirected(g, 6+g.Intn(20), 4, 0)
		b := a.WithAllLoops()
		sb := ComputeFactorStats(b)
		sa := ComputeFactorStats(a)
		for k := 0; k < a.NumVertices(); k++ {
			want := 2*sa.T[k] + 3*a.Degree(int32(k)) + 1
			if sb.DiagCube[k] != want {
				t.Fatalf("trial %d: diag(B³)[%d] = %d, want 2t+3d+1 = %d",
					trial, k, sb.DiagCube[k], want)
			}
		}
	}
}

// TestTriangleTotalViaParticipationIdentity checks
// τ(A⊗B) = (Σ t_A)(Σ diag(B³))/3 for loop-free A (Cor. 1 summed).
func TestTriangleTotalViaParticipationIdentity(t *testing.T) {
	g := rng.New(18)
	a := randomUndirected(g, 12, 4, 0)
	b := randomUndirected(g, 10, 4, 0.5)
	p := MustProduct(a, b)
	total, err := TriangleTotal(p)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := ComputeFactorStats(a), ComputeFactorStats(b)
	sum := sparse.SumVec(sa.T) * sparse.SumVec(sb.DiagCube)
	if sum%3 != 0 || total != sum/3 {
		t.Fatalf("τ = %d, identity gives %d/3", total, sum)
	}
}
