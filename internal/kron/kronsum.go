package kron

import (
	"fmt"

	"kronvalid/internal/sparse"
)

// VecTerm is one signed Kronecker term coef·(u ⊗ v) of a vertex-statistic
// expansion.
type VecTerm struct {
	Coef int64
	U, V []int64
}

// KronVecSum represents a vertex statistic of the product graph as
// (1/Den)·Σ_m coef_m (u_m ⊗ v_m), evaluated lazily per product vertex.
// This is the shape every per-vertex Kronecker formula in the paper takes
// (Thm. 1, Cor. 1, the general self-loop expansion, Thm. 4, Thm. 6).
type KronVecSum struct {
	Terms []VecTerm
	Den   int64 // divisor applied after summation (1 or 2)
	nB    int64
}

// At evaluates the statistic at product vertex p.
func (s *KronVecSum) At(p int64) int64 {
	i, k := p/s.nB, p%s.nB
	var acc int64
	for _, t := range s.Terms {
		acc += t.Coef * t.U[i] * t.V[k]
	}
	if acc%s.Den != 0 {
		panic(fmt.Sprintf("kron: non-integral statistic %d/%d at vertex %d", acc, s.Den, p))
	}
	return acc / s.Den
}

// Len returns the number of product vertices.
func (s *KronVecSum) Len() int64 {
	if len(s.Terms) == 0 {
		return 0
	}
	return int64(len(s.Terms[0].U)) * s.nB
}

// Vector materializes the full statistic vector; only for
// validation-scale products.
func (s *KronVecSum) Vector() []int64 {
	out := make([]int64, s.Len())
	for p := range out {
		out[p] = s.At(int64(p))
	}
	return out
}

// Total returns Σ_p At(p) with overflow checking, computed from factor
// sums: Σ (u ⊗ v) = (Σu)·(Σv).
func (s *KronVecSum) Total() (int64, error) {
	var acc int64
	for _, t := range s.Terms {
		su, sv := sparse.SumVec(t.U), sparse.SumVec(t.V)
		prod, err := sparse.CheckedMul(su, sv)
		if err != nil {
			return 0, err
		}
		term, err := sparse.CheckedMul(abs64(t.Coef), prod)
		if err != nil {
			return 0, err
		}
		if t.Coef < 0 {
			term = -term
		}
		prev := acc
		acc += term
		if (term > 0 && acc < prev) || (term < 0 && acc > prev) {
			return 0, sparse.ErrOverflow
		}
	}
	if acc%s.Den != 0 {
		return 0, fmt.Errorf("kron: non-integral total %d/%d", acc, s.Den)
	}
	return acc / s.Den, nil
}

// MustTotal is Total that panics on overflow.
func (s *KronVecSum) MustTotal() int64 {
	v, err := s.Total()
	if err != nil {
		panic(err)
	}
	return v
}

// MatTerm is one signed Kronecker term coef·(M ⊗ N) of an edge-statistic
// expansion.
type MatTerm struct {
	Coef int64
	M, N *sparse.Matrix
}

// KronMatSum represents an edge statistic of the product graph as
// Σ_m coef_m (M_m ⊗ N_m), evaluated lazily per product arc. This is the
// shape of every per-edge Kronecker formula (Thm. 2, Cor. 2, the general
// self-loop expansion, Thm. 5, Thm. 7).
type KronMatSum struct {
	Terms []MatTerm
	nB    int64 // rows of N (product row block size)
	mB    int64 // cols of N (product col block size)
}

// At evaluates the statistic at product arc (p, q).
func (s *KronMatSum) At(p, q int64) int64 {
	i, k := p/s.nB, p%s.nB
	j, l := q/s.mB, q%s.mB
	var acc int64
	for _, t := range s.Terms {
		mv := t.M.At(int(i), int(j))
		if mv == 0 {
			continue
		}
		nv := t.N.At(int(k), int(l))
		if nv == 0 {
			continue
		}
		acc += t.Coef * mv * nv
	}
	return acc
}

// Materialize builds the explicit statistic matrix via explicit Kronecker
// products; only for validation-scale products.
func (s *KronMatSum) Materialize() *sparse.Matrix {
	if len(s.Terms) == 0 {
		panic("kron: empty KronMatSum")
	}
	var acc *sparse.Matrix
	for _, t := range s.Terms {
		m := sparse.Kron(t.M, t.N).Scale(t.Coef)
		if acc == nil {
			acc = m
		} else {
			acc = acc.Add(m)
		}
	}
	return acc
}

// Total returns the sum of all entries, from factor totals, with overflow
// checking.
func (s *KronMatSum) Total() (int64, error) {
	var acc int64
	for _, t := range s.Terms {
		prod, err := sparse.CheckedMul(t.M.Total(), t.N.Total())
		if err != nil {
			return 0, err
		}
		term := t.Coef * prod
		prev := acc
		acc += term
		if (term > 0 && acc < prev) || (term < 0 && acc > prev) {
			return 0, sparse.ErrOverflow
		}
	}
	return acc, nil
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
