package kron

import (
	"errors"

	"kronvalid/internal/census"
	"kronvalid/internal/sparse"
)

// LabeledStats holds the Kronecker-derived labeled triangle census of
// C = A ⊗ B under Thm. 6 and Thm. 7: A vertex-labeled, undirected,
// loop-free; B unlabeled, undirected, possibly with self loops. C inherits
// labels from A: f_C(p) = f_A(i(p)).
type LabeledStats struct {
	Vertex map[census.LabelVertexType]*KronVecSum
	Edge   map[census.LabelEdgeType]*KronMatSum
}

// LabeledCensus computes the full labeled census of the product from the
// factor census (Thm. 6, Thm. 7).
func LabeledCensus(p *Product) (*LabeledStats, error) {
	if !p.A.IsLabeled() {
		return nil, errors.New("kron: Thm. 6/7 require a labeled left factor")
	}
	if p.A.HasAnyLoop() {
		return nil, errors.New("kron: Thm. 6/7 require a loop-free left factor")
	}
	if !p.A.IsSymmetric() || !p.B.IsSymmetric() {
		return nil, errors.New("kron: Thm. 6/7 require undirected factors")
	}
	vertexA := census.LabeledVertexCensus(p.A)
	edgeA := census.LabeledEdgeCensus(p.A)

	b := p.B.ToSparse()
	b2 := b.Mul(b)
	diagB3 := sparse.DiagOfProduct(b2, b)
	hadB := b.Hadamard(b2)

	out := &LabeledStats{
		Vertex: make(map[census.LabelVertexType]*KronVecSum, len(vertexA)),
		Edge:   make(map[census.LabelEdgeType]*KronMatSum, len(edgeA)),
	}
	for ty, vec := range vertexA {
		out.Vertex[ty] = &KronVecSum{
			Terms: []VecTerm{{Coef: 1, U: vec, V: diagB3}},
			Den:   1,
			nB:    p.nB,
		}
	}
	for ty, mat := range edgeA {
		out.Edge[ty] = &KronMatSum{
			Terms: []MatTerm{{Coef: 1, M: mat, N: hadB}},
			nB:    p.nB, mB: p.nB,
		}
	}
	return out, nil
}
