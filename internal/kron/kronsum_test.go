package kron

import (
	"errors"
	"testing"

	"kronvalid/internal/sparse"
)

func TestKronVecSumAt(t *testing.T) {
	s := &KronVecSum{
		Terms: []VecTerm{
			{Coef: 2, U: []int64{1, 2}, V: []int64{3, 4, 5}},
			{Coef: -1, U: []int64{0, 1}, V: []int64{2, 2, 2}},
		},
		Den: 1,
		nB:  3,
	}
	// p = i*3 + k. At p=4: i=1,k=1: 2*2*4 - 1*1*2 = 14.
	if got := s.At(4); got != 14 {
		t.Errorf("At(4) = %d, want 14", got)
	}
	if got := s.At(0); got != 6 { // 2*1*3 - 0 = 6
		t.Errorf("At(0) = %d, want 6", got)
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d", s.Len())
	}
	vec := s.Vector()
	for p := range vec {
		if vec[p] != s.At(int64(p)) {
			t.Fatalf("Vector[%d] != At", p)
		}
	}
}

func TestKronVecSumNonIntegralPanics(t *testing.T) {
	s := &KronVecSum{
		Terms: []VecTerm{{Coef: 1, U: []int64{3}, V: []int64{1}}},
		Den:   2,
		nB:    1,
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-integral statistic")
		}
	}()
	s.At(0)
}

func TestKronVecSumTotalOverflow(t *testing.T) {
	huge := int64(1) << 62
	s := &KronVecSum{
		Terms: []VecTerm{{Coef: 1, U: []int64{huge}, V: []int64{4}}},
		Den:   1,
		nB:    1,
	}
	if _, err := s.Total(); !errors.Is(err, sparse.ErrOverflow) {
		t.Fatalf("expected overflow, got %v", err)
	}
	// Accumulation overflow across terms.
	s2 := &KronVecSum{
		Terms: []VecTerm{
			{Coef: 1, U: []int64{huge}, V: []int64{1}},
			{Coef: 1, U: []int64{huge}, V: []int64{1}},
		},
		Den: 1,
		nB:  1,
	}
	if _, err := s2.Total(); !errors.Is(err, sparse.ErrOverflow) {
		t.Fatalf("expected accumulation overflow, got %v", err)
	}
}

func TestKronVecSumTotalNegativeTerms(t *testing.T) {
	s := &KronVecSum{
		Terms: []VecTerm{
			{Coef: 1, U: []int64{10}, V: []int64{6}},
			{Coef: -2, U: []int64{5}, V: []int64{2}},
		},
		Den: 2,
		nB:  1,
	}
	total, err := s.Total()
	if err != nil {
		t.Fatal(err)
	}
	if total != (60-20)/2 {
		t.Errorf("Total = %d, want 20", total)
	}
}

func TestKronVecSumMustTotalPanics(t *testing.T) {
	huge := int64(1) << 62
	s := &KronVecSum{
		Terms: []VecTerm{{Coef: 1, U: []int64{huge}, V: []int64{4}}},
		Den:   1,
		nB:    1,
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustTotal did not panic on overflow")
		}
	}()
	s.MustTotal()
}

func TestKronMatSumAtAndTotal(t *testing.T) {
	m1 := sparse.FromTriplets(2, 2, []sparse.Triplet{{Row: 0, Col: 1, Val: 3}})
	n1 := sparse.FromTriplets(2, 2, []sparse.Triplet{{Row: 1, Col: 0, Val: 4}})
	s := &KronMatSum{Terms: []MatTerm{{Coef: 2, M: m1, N: n1}}, nB: 2, mB: 2}
	// (p,q) = (0*2+1, 1*2+0) = (1, 2): 2*3*4 = 24.
	if got := s.At(1, 2); got != 24 {
		t.Errorf("At = %d, want 24", got)
	}
	if got := s.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %d, want 0", got)
	}
	total, err := s.Total()
	if err != nil {
		t.Fatal(err)
	}
	if total != 24 {
		t.Errorf("Total = %d, want 24", total)
	}
	// Materialize equals lazy everywhere.
	mm := s.Materialize()
	for p := 0; p < 4; p++ {
		for q := 0; q < 4; q++ {
			if mm.At(p, q) != s.At(int64(p), int64(q)) {
				t.Fatalf("Materialize(%d,%d) != At", p, q)
			}
		}
	}
}

func TestKronMatSumEmptyPanics(t *testing.T) {
	s := &KronMatSum{nB: 1, mB: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty Materialize")
		}
	}()
	s.Materialize()
}
