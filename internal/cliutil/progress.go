// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"fmt"
	"io"
	"time"
)

// ProgressReporter returns a WithProgress-compatible callback that
// renders coarse progress on w, plus a done func that terminates the
// progress line. Updates are throttled by time (at most one line per
// ~150 ms), not by call count, so short runs stay silent and long runs
// update smoothly regardless of batch size. done is idempotent and
// prints the terminating newline only if at least one update was
// rendered, so the caller can invoke it unconditionally before its
// summary output.
func ProgressReporter(w io.Writer, total int64) (report func(arcs, shards int64), done func()) {
	const interval = 150 * time.Millisecond
	last := time.Now()
	printed := false
	report = func(arcs, shards int64) {
		now := time.Now()
		if now.Sub(last) < interval {
			return
		}
		last = now
		printed = true
		if total > 0 {
			fmt.Fprintf(w, "\rprogress: %d/%d arcs (%.1f%%), %d shards done",
				arcs, total, 100*float64(arcs)/float64(total), shards)
		} else {
			fmt.Fprintf(w, "\rprogress: %d arcs, %d shards done", arcs, shards)
		}
	}
	done = func() {
		if printed {
			fmt.Fprintln(w)
			printed = false
		}
	}
	return report, done
}
