package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles holds the pprof output paths shared by every binary in
// cmd/: the same two flags, the same file formats, so `go tool pprof`
// invocations from EXPERIMENTS.md work against any of them.
type Profiles struct {
	cpu, mem *string
	cpuFile  *os.File
}

// ProfileFlags registers -cpuprofile and -memprofile on the default
// flag set. Call before flag.Parse.
func ProfileFlags() *Profiles {
	return &Profiles{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling if requested. The returned stop must run
// on every exit path that should yield profiles: it finishes the CPU
// profile and writes the heap profile (after a final GC, so the
// snapshot shows live bytes rather than collectable garbage).
func (p *Profiles) Start() (stop func() error, err error) {
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	return p.stop, nil
}

func (p *Profiles) stop() error {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = nil
	}
	if *p.mem != "" {
		f, err := os.Create(*p.mem)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}
