package csr

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"kronvalid/internal/par"
	"kronvalid/internal/stream"
)

// Source describes a sharded arc stream the two-pass builder can replay:
// shard w emits, in canonical order, exactly the arcs whose source vertex
// lies in VertexRange(w), and the ranges of distinct shards are disjoint.
// This is the contract the communication-free generation plan already
// satisfies (distgen partitions by A-row blocks), and it is what makes
// both builder passes race-free without any locking.
type Source struct {
	// NumVertices is the vertex-id space [0, NumVertices) of the stream.
	NumVertices int64
	// NumArcs is the exact total arc count when known (it lets the
	// builder pre-size the arc array); use -1 when unknown.
	NumArcs int64
	// Shards is the number of independent shards.
	Shards int
	// VertexRange returns the half-open source-vertex range owned by
	// shard w.
	VertexRange func(w int) (lo, hi int64)
	// Generate streams shard w under the stream.ShardGen emit contract.
	Generate stream.ShardGen
}

// Build materializes the source with a background context. See
// BuildContext.
func Build(src Source, opts stream.Options) (*Graph, error) {
	return BuildContext(context.Background(), src, opts)
}

// BuildContext materializes the source as a CSR graph with the parallel
// two-pass scheme: a counting pass accumulates per-vertex out-degrees, a
// prefix sum turns them into row offsets, and a scatter pass regenerates
// the stream and writes each arc into its final slot. Shards run
// concurrently in both passes; because each shard owns a disjoint
// source-vertex range, its counter increments and arc writes are
// confined to rows no other shard touches — no atomics, no sorting, and
// a result identical for every worker count. opts.Workers bounds shard
// concurrency (0 = GOMAXPROCS); opts.BatchSize sets the regeneration
// batch size; opts.Progress, if set, reports the scatter pass (the one
// that assembles the graph), with calls serialized across shards.
//
// Cancelling ctx aborts whichever pass is running within one batch per
// shard, joins every worker, and returns ctx.Err(); no partially
// scattered graph is ever returned.
func BuildContext(ctx context.Context, src Source, opts stream.Options) (*Graph, error) {
	n := src.NumVertices
	if n < 0 {
		return nil, fmt.Errorf("csr: negative vertex count %d", n)
	}
	if src.Shards < 0 {
		return nil, fmt.Errorf("csr: negative shard count %d", src.Shards)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = par.MaxWorkers()
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = stream.DefaultBatchSize
	}

	// Pass 1: count out-degrees. Shard-owned row ranges make the
	// increments race-free. The stream delivers each row's arcs as a
	// consecutive run, so counts accumulate per run instead of per arc —
	// one ranged-check and one memory update per row per batch.
	degrees := make([]int64, n+1) // one spare slot so degrees[1:] can become offsets
	counts := make([]int64, src.Shards)
	if err := forShards(ctx, src, workers, batch, func(w int, lo, hi int64, arcs []stream.Arc) error {
		u := int64(-1)
		var run int64
		for _, a := range arcs {
			if a.U != u {
				if u >= 0 {
					degrees[u+1] += run
				}
				if a.U < lo || a.U >= hi {
					return fmt.Errorf("csr: shard %d emitted source %d outside its range [%d,%d)", w, a.U, lo, hi)
				}
				u = a.U
				run = 0
			}
			run++
		}
		if u >= 0 {
			degrees[u+1] += run
		}
		counts[w] += int64(len(arcs))
		return nil
	}, nil); err != nil {
		return nil, err
	}

	// Prefix sum: degrees becomes the offsets array in place.
	offsets := degrees
	for v := int64(0); v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	total := offsets[n]
	if src.NumArcs >= 0 && total != src.NumArcs {
		return nil, fmt.Errorf("csr: counting pass saw %d arcs, source declares %d", total, src.NumArcs)
	}

	// Pass 2: scatter. next tracks the write cursor per row; again only
	// the owning shard advances a given row's cursor. The cursor and the
	// row's end offset are kept in locals across each run of equal
	// sources, so the inner loop is one compare and one sequential store
	// per arc.
	nbrs := make([]int64, total)
	next := make([]int64, n)
	copy(next, offsets[:n])
	recount := make([]int64, src.Shards)
	var progMu sync.Mutex
	var progArcs, progShards int64
	progress := func(addArcs int64, shardDone bool) {
		if opts.Progress == nil {
			return
		}
		progMu.Lock()
		progArcs += addArcs
		if shardDone {
			progShards++
		}
		opts.Progress(progArcs, progShards)
		progMu.Unlock()
	}
	if err := forShards(ctx, src, workers, batch, func(w int, lo, hi int64, arcs []stream.Arc) error {
		u := int64(-1)
		var cursor, end int64
		for _, a := range arcs {
			if a.U != u {
				if u >= 0 {
					next[u] = cursor
				}
				if a.U < lo || a.U >= hi {
					return fmt.Errorf("csr: shard %d emitted source %d outside its range [%d,%d)", w, a.U, lo, hi)
				}
				u = a.U
				cursor = next[u]
				end = offsets[u+1]
			}
			if cursor == end {
				return fmt.Errorf("csr: shard %d emitted more arcs for vertex %d on the scatter pass than the counting pass saw", w, u)
			}
			nbrs[cursor] = a.V
			cursor++
		}
		if u >= 0 {
			next[u] = cursor
		}
		recount[w] += int64(len(arcs))
		progress(int64(len(arcs)), false)
		return nil
	}, func(int) { progress(0, true) }); err != nil {
		return nil, err
	}
	for w := range counts {
		if counts[w] != recount[w] {
			return nil, fmt.Errorf("csr: shard %d emitted %d arcs on the counting pass but %d on the scatter pass (source is not replayable)", w, counts[w], recount[w])
		}
	}
	return &Graph{n: n, offsets: offsets, nbrs: nbrs}, nil
}

// forShards runs consume over every batch of every shard, shards claimed
// dynamically by up to `workers` goroutines. consume is called from the
// goroutine generating shard w; the first error — or a context
// cancellation, checked once per batch — stops all generation. shardDone,
// if non-nil, is called after each shard completes without error.
func forShards(ctx context.Context, src Source, workers, batchSize int, consume func(w int, lo, hi int64, arcs []stream.Arc) error, shardDone func(w int)) error {
	if src.Shards == 0 {
		return ctx.Err()
	}
	if workers > src.Shards {
		workers = src.Shards
	}
	errs := make([]error, src.Shards)
	var nextShard atomic.Int64
	var failed atomic.Bool
	par.MapWorkers(workers, func(_, _ int) {
		buf := make([]stream.Arc, 0, batchSize)
		for {
			w := int(nextShard.Add(1) - 1)
			if w >= src.Shards || failed.Load() {
				return
			}
			if err := ctx.Err(); err != nil {
				errs[w] = err
				failed.Store(true)
				return
			}
			lo, hi := src.VertexRange(w)
			src.Generate(w, buf, func(full []stream.Arc) []stream.Arc {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					failed.Store(true)
					return nil
				}
				if err := consume(w, lo, hi, full); err != nil {
					errs[w] = err
					failed.Store(true)
					return nil
				}
				return full[:0]
			})
			if errs[w] == nil && shardDone != nil {
				shardDone(w)
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Sink accumulates a single canonical-order arc stream into a CSR graph
// in one pass — the ingestion path for streams that are not replayable
// (pipes, files, foreign generators). Because the canonical stream is
// sorted by source vertex, the adjacency assembles by appending: offsets
// advance monotonically and no sort is ever needed. Consume errors on any
// order violation, which doubles as a stream-integrity check. Use Graph()
// after the stream flushes.
type Sink struct {
	n       int64
	offsets []int64
	nbrs    []int64
	cur     int64 // highest source vertex seen
	prevV   int64 // last target seen for cur
	started bool
	flushed bool
	err     error
}

// NewSink returns a one-pass CSR accumulator for vertex ids in
// [0, numVertices). arcsHint pre-sizes the arc array (0 for unknown).
func NewSink(numVertices, arcsHint int64) *Sink {
	if arcsHint < 0 {
		arcsHint = 0
	}
	return &Sink{
		n:       numVertices,
		offsets: make([]int64, numVertices+1),
		nbrs:    make([]int64, 0, arcsHint),
	}
}

// Consume appends one batch, enforcing canonical (strictly increasing
// lexicographic) order and vertex-range validity.
func (s *Sink) Consume(batch []stream.Arc) error {
	if s.err != nil {
		return s.err
	}
	for _, a := range batch {
		if a.U < 0 || a.U >= s.n || a.V < 0 || a.V >= s.n {
			s.err = fmt.Errorf("csr: arc (%d,%d) out of vertex range [0,%d)", a.U, a.V, s.n)
			return s.err
		}
		if s.started && (a.U < s.cur || (a.U == s.cur && a.V <= s.prevV)) {
			s.err = fmt.Errorf("csr: stream left canonical order: (%d,%d) after (%d,%d)", a.U, a.V, s.cur, s.prevV)
			return s.err
		}
		if !s.started || a.U != s.cur {
			for r := s.rowsClosed(); r <= a.U; r++ {
				s.offsets[r] = int64(len(s.nbrs))
			}
			s.cur = a.U
			s.started = true
		}
		s.nbrs = append(s.nbrs, a.V)
		s.prevV = a.V
	}
	return nil
}

// rowsClosed returns the first row whose offset has not been written yet.
func (s *Sink) rowsClosed() int64 {
	if !s.started {
		return 0
	}
	return s.cur + 1
}

// Flush seals the offsets of all remaining rows.
func (s *Sink) Flush() error {
	if s.err != nil {
		return s.err
	}
	for r := s.rowsClosed(); r <= s.n; r++ {
		s.offsets[r] = int64(len(s.nbrs))
	}
	s.flushed = true
	return nil
}

// Graph returns the accumulated CSR. It errors if the stream failed or
// was never flushed.
func (s *Sink) Graph() (*Graph, error) {
	if s.err != nil {
		return nil, s.err
	}
	if !s.flushed {
		return nil, fmt.Errorf("csr: Graph() before Flush")
	}
	return &Graph{n: s.n, offsets: s.offsets, nbrs: s.nbrs}, nil
}
