// Package csr is the compact in-memory representation of a *materialized*
// product edge stream: compressed sparse rows over int64 product vertex
// ids, built directly from the batched generation pipeline without ever
// holding an intermediate edge list.
//
// The builder is the consumption-side counterpart of the
// communication-free generation scheme: the same A-row-block shards that
// make sharded generation bytewise reproducible also make ingestion
// race-free, because shard w owns a contiguous, disjoint range of source
// vertices — its counting-pass increments and scatter-pass writes touch
// only rows (and therefore arc slots) no other shard touches. Two passes
// over the regenerated stream (count → prefix-sum → scatter) produce the
// finished adjacency with no sorting, no locking, and no per-arc
// allocation, and the result is identical for every worker count.
package csr

import (
	"fmt"
	"sort"
	"sync/atomic"

	"kronvalid/internal/par"
	"kronvalid/internal/stream"
)

// Graph is an immutable compressed-sparse-row adjacency over int64 vertex
// ids — the representation for materialized product graphs, whose vertex
// space (n_A·n_B) routinely exceeds int32. Neighbor lists are sorted and
// duplicate-free (inherited from the canonical arc stream).
type Graph struct {
	n       int64
	offsets []int64 // len n+1
	nbrs    []int64 // len NumArcs, sorted within each row
}

// New wraps pre-validated CSR arrays. offsets must have len n+1 with
// offsets[0] == 0, be non-decreasing, and end at len(nbrs); each row of
// nbrs must be strictly increasing in [0, n). The arrays are owned by the
// returned Graph.
func New(offsets, nbrs []int64) (*Graph, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("csr: empty offsets")
	}
	n := int64(len(offsets) - 1)
	if offsets[0] != 0 {
		return nil, fmt.Errorf("csr: offsets[0] = %d, want 0", offsets[0])
	}
	if offsets[n] != int64(len(nbrs)) {
		return nil, fmt.Errorf("csr: offsets end at %d, want %d arcs", offsets[n], len(nbrs))
	}
	for v := int64(0); v < n; v++ {
		if offsets[v] > offsets[v+1] {
			return nil, fmt.Errorf("csr: non-monotone offsets at row %d", v)
		}
	}
	g := &Graph{n: n, offsets: offsets, nbrs: nbrs}
	var bad atomic.Int64
	bad.Store(-1)
	par.ForBlocked(n, func(lo, hi int64) {
		for v := lo; v < hi; v++ {
			row := nbrs[offsets[v]:offsets[v+1]]
			for i, w := range row {
				if w < 0 || w >= n || (i > 0 && row[i-1] >= w) {
					bad.Store(v)
					return
				}
			}
		}
	})
	if v := bad.Load(); v >= 0 {
		return nil, fmt.Errorf("csr: row %d is not strictly increasing in [0,%d)", v, n)
	}
	return g, nil
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int64 { return g.n }

// NumArcs returns the number of stored directed arcs.
func (g *Graph) NumArcs() int64 { return int64(len(g.nbrs)) }

// OutDegree returns the out-degree of v (including a self loop).
func (g *Graph) OutDegree(v int64) int64 { return g.offsets[v+1] - g.offsets[v] }

// Neighbors returns the sorted out-neighbors of v. The slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int64) []int64 {
	return g.nbrs[g.offsets[v]:g.offsets[v+1]]
}

// ArcOffset returns the index into the flat arc array at which v's
// neighbor slice begins.
func (g *Graph) ArcOffset(v int64) int64 { return g.offsets[v] }

// HasArc reports whether arc (u, v) exists, by binary search in u's row.
func (g *Graph) HasArc(u, v int64) bool {
	nb := g.Neighbors(u)
	k := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return k < len(nb) && nb[k] == v
}

// ArcIndex returns the global arc index of (u, v), or -1 if the arc does
// not exist. Arc indices align with the canonical stream order, so
// per-arc side arrays (supports, counts, weights) can be plain slices.
func (g *Graph) ArcIndex(u, v int64) int64 {
	nb := g.Neighbors(u)
	k := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	if k < len(nb) && nb[k] == v {
		return g.offsets[u] + int64(k)
	}
	return -1
}

// EachArc calls fn for every arc (u, v) in canonical order, stopping
// early if fn returns false.
func (g *Graph) EachArc(fn func(u, v int64) bool) {
	for u := int64(0); u < g.n; u++ {
		for _, v := range g.nbrs[g.offsets[u]:g.offsets[u+1]] {
			if !fn(u, v) {
				return
			}
		}
	}
}

// EachArcBatch streams the adjacency back out as reused Arc batches in
// canonical order — so a built CSR can feed any stream.Sink (writers,
// digests, checkers) exactly like the generator does.
func (g *Graph) EachArcBatch(batchSize int, fn func(batch []stream.Arc) bool) {
	if batchSize <= 0 {
		batchSize = stream.DefaultBatchSize
	}
	buf := make([]stream.Arc, 0, batchSize)
	for u := int64(0); u < g.n; u++ {
		for _, v := range g.nbrs[g.offsets[u]:g.offsets[u+1]] {
			buf = append(buf, stream.Arc{U: u, V: v})
			if len(buf) == batchSize {
				if !fn(buf) {
					return
				}
				buf = buf[:0]
			}
		}
	}
	if len(buf) > 0 {
		fn(buf)
	}
}

// MaxOutDegree returns the maximum out-degree and a vertex achieving it
// (the smallest such vertex), computed in parallel over row blocks.
func (g *Graph) MaxOutDegree() (deg, vertex int64) {
	if g.n == 0 {
		return 0, -1
	}
	workers := par.MaxWorkers()
	chunks := par.Chunks(g.n, int64(workers))
	type best struct{ d, v int64 }
	partial := make([]best, len(chunks))
	par.MapWorkers(len(chunks), func(ci, _ int) {
		b := best{-1, -1}
		for v := chunks[ci][0]; v < chunks[ci][1]; v++ {
			if d := g.OutDegree(v); d > b.d {
				b = best{d, v}
			}
		}
		partial[ci] = b
	})
	out := best{-1, -1}
	for _, b := range partial {
		if b.d > out.d {
			out = b
		}
	}
	return out.d, out.v
}

// InDegrees returns the in-degree of every vertex, computed in parallel
// with atomic per-target increments.
func (g *Graph) InDegrees() []int64 {
	indeg := make([]int64, g.n)
	par.ForBlocked(int64(len(g.nbrs)), func(lo, hi int64) {
		for _, v := range g.nbrs[lo:hi] {
			atomic.AddInt64(&indeg[v], 1)
		}
	})
	return indeg
}

// Transpose returns the reverse graph (every arc flipped): the in-
// adjacency of g. Construction is the same two-pass scheme as Build —
// atomic counting, prefix sum, atomic scatter — followed by a parallel
// per-row sort, which restores the deterministic sorted order that the
// scheduling-dependent scatter cannot guarantee.
func (g *Graph) Transpose() *Graph {
	indeg := g.InDegrees()
	offsets := make([]int64, g.n+1)
	for v := int64(0); v < g.n; v++ {
		offsets[v+1] = offsets[v] + indeg[v]
	}
	nbrs := make([]int64, len(g.nbrs))
	next := make([]int64, g.n)
	copy(next, offsets[:g.n])
	par.ForBlocked(g.n, func(lo, hi int64) {
		for u := lo; u < hi; u++ {
			for _, v := range g.nbrs[g.offsets[u]:g.offsets[u+1]] {
				slot := atomic.AddInt64(&next[v], 1) - 1
				nbrs[slot] = u
			}
		}
	})
	par.ForBlocked(g.n, func(lo, hi int64) {
		for v := lo; v < hi; v++ {
			row := nbrs[offsets[v]:offsets[v+1]]
			sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		}
	})
	return &Graph{n: g.n, offsets: offsets, nbrs: nbrs}
}

// Equal reports whether two graphs have identical vertex counts and
// adjacency.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || len(g.nbrs) != len(h.nbrs) {
		return false
	}
	for i := range g.offsets {
		if g.offsets[i] != h.offsets[i] {
			return false
		}
	}
	for i := range g.nbrs {
		if g.nbrs[i] != h.nbrs[i] {
			return false
		}
	}
	return true
}

// Offsets returns the offsets array (len NumVertices+1). It aliases
// internal storage and must not be modified.
func (g *Graph) Offsets() []int64 { return g.offsets }

// Arcs returns the flat neighbor array in canonical order. It aliases
// internal storage and must not be modified.
func (g *Graph) Arcs() []int64 { return g.nbrs }

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("csr.Graph{n=%d, arcs=%d}", g.n, len(g.nbrs))
}
