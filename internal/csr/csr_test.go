package csr

import (
	"fmt"
	"sort"
	"testing"

	"kronvalid/internal/stream"
)

// arcsSource builds a replayable sharded Source over an explicit arc
// list: arcs are sorted canonically and partitioned into `shards`
// contiguous source-vertex ranges.
func arcsSource(n int64, arcs []stream.Arc, shards int) Source {
	sorted := append([]stream.Arc(nil), arcs...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].U != sorted[b].U {
			return sorted[a].U < sorted[b].U
		}
		return sorted[a].V < sorted[b].V
	})
	if shards <= 0 {
		shards = 1
	}
	bounds := make([][2]int64, shards)
	per := (n + int64(shards) - 1) / int64(shards)
	for w := 0; w < shards; w++ {
		lo := int64(w) * per
		hi := lo + per
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		bounds[w] = [2]int64{lo, hi}
	}
	return Source{
		NumVertices: n,
		NumArcs:     int64(len(sorted)),
		Shards:      shards,
		VertexRange: func(w int) (int64, int64) { return bounds[w][0], bounds[w][1] },
		Generate: func(w int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
			lo, hi := bounds[w][0], bounds[w][1]
			for _, a := range sorted {
				if a.U < lo || a.U >= hi {
					continue
				}
				buf = append(buf, a)
				if len(buf) == cap(buf) {
					if buf = emit(buf); buf == nil {
						return
					}
					buf = buf[:0]
				}
			}
			if len(buf) > 0 {
				emit(buf)
			}
		},
	}
}

func testArcs() (int64, []stream.Arc) {
	return 7, []stream.Arc{
		{U: 0, V: 1}, {U: 0, V: 3}, {U: 0, V: 6},
		{U: 2, V: 0}, {U: 2, V: 2}, {U: 2, V: 5},
		{U: 3, V: 1},
		{U: 6, V: 0}, {U: 6, V: 6},
	}
}

func TestBuildSmall(t *testing.T) {
	n, arcs := testArcs()
	for _, shards := range []int{1, 2, 3, 7} {
		for _, workers := range []int{1, 4} {
			g, err := Build(arcsSource(n, arcs, shards),
				stream.Options{Workers: workers, BatchSize: 2})
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if g.NumVertices() != n || g.NumArcs() != int64(len(arcs)) {
				t.Fatalf("shards=%d: got n=%d m=%d", shards, g.NumVertices(), g.NumArcs())
			}
			var got []stream.Arc
			g.EachArc(func(u, v int64) bool {
				got = append(got, stream.Arc{U: u, V: v})
				return true
			})
			if len(got) != len(arcs) {
				t.Fatalf("shards=%d: EachArc yielded %d arcs", shards, len(got))
			}
			for i, a := range arcs {
				if got[i] != a {
					t.Fatalf("shards=%d: arc %d = %v, want %v", shards, i, got[i], a)
				}
			}
		}
	}
}

func TestBuildDeterministicAcrossShardCounts(t *testing.T) {
	n, arcs := testArcs()
	ref, err := Build(arcsSource(n, arcs, 1), stream.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 8} {
		g, err := Build(arcsSource(n, arcs, shards), stream.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(ref) {
			t.Fatalf("shards=%d: CSR differs from serial build", shards)
		}
	}
}

func TestBuildRejectsOutOfRangeShard(t *testing.T) {
	src := arcsSource(4, []stream.Arc{{U: 0, V: 1}}, 2)
	// Shard 1 claims range [2,4) but emits a source-0 arc.
	gen := src.Generate
	src.Generate = func(w int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
		if w == 1 {
			emit(append(buf, stream.Arc{U: 0, V: 2}))
			return
		}
		gen(w, buf, emit)
	}
	if _, err := Build(src, stream.Options{Workers: 1}); err == nil {
		t.Fatal("Build accepted a shard emitting outside its vertex range")
	}
}

func TestBuildRejectsArcCountMismatch(t *testing.T) {
	src := arcsSource(4, []stream.Arc{{U: 0, V: 1}, {U: 1, V: 2}}, 1)
	src.NumArcs = 3
	if _, err := Build(src, stream.Options{}); err == nil {
		t.Fatal("Build accepted a source whose declared arc count disagrees with the stream")
	}
}

func TestSinkMatchesBuild(t *testing.T) {
	n, arcs := testArcs()
	ref, err := Build(arcsSource(n, arcs, 3), stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSink(n, int64(len(arcs)))
	for i := 0; i < len(arcs); i += 2 {
		end := i + 2
		if end > len(arcs) {
			end = len(arcs)
		}
		if err := s.Consume(arcs[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(ref) {
		t.Fatal("sink-built CSR differs from two-pass build")
	}
}

func TestSinkRejectsDisorderAndRange(t *testing.T) {
	s := NewSink(4, 0)
	if err := s.Consume([]stream.Arc{{U: 2, V: 1}, {U: 1, V: 0}}); err == nil {
		t.Fatal("sink accepted an out-of-order stream")
	}
	s = NewSink(4, 0)
	if err := s.Consume([]stream.Arc{{U: 0, V: 0}, {U: 0, V: 0}}); err == nil {
		t.Fatal("sink accepted a duplicate arc")
	}
	s = NewSink(4, 0)
	if err := s.Consume([]stream.Arc{{U: 0, V: 9}}); err == nil {
		t.Fatal("sink accepted an out-of-range target")
	}
	s = NewSink(4, 0)
	if _, err := s.Graph(); err == nil {
		t.Fatal("Graph() before Flush should error")
	}
}

func TestQueriesAndDegrees(t *testing.T) {
	n, arcs := testArcs()
	g, err := Build(arcsSource(n, arcs, 2), stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasArc(2, 5) || g.HasArc(2, 4) || g.HasArc(5, 0) {
		t.Fatal("HasArc answers wrong")
	}
	if got := g.ArcIndex(2, 5); got != 5 {
		t.Fatalf("ArcIndex(2,5) = %d, want 5", got)
	}
	if got := g.ArcIndex(2, 4); got != -1 {
		t.Fatalf("ArcIndex(2,4) = %d, want -1", got)
	}
	if d, v := g.MaxOutDegree(); d != 3 || v != 0 {
		t.Fatalf("MaxOutDegree = (%d,%d), want (3,0)", d, v)
	}
	wantIn := []int64{2, 2, 1, 1, 0, 1, 2}
	for v, want := range wantIn {
		if got := g.InDegrees()[v]; got != want {
			t.Fatalf("InDegrees[%d] = %d, want %d", v, got, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	n, arcs := testArcs()
	g, err := Build(arcsSource(n, arcs, 3), stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Transpose()
	if tr.NumArcs() != g.NumArcs() {
		t.Fatalf("transpose has %d arcs, want %d", tr.NumArcs(), g.NumArcs())
	}
	// Every arc flips, rows stay sorted, and double transpose restores g.
	g.EachArc(func(u, v int64) bool {
		if !tr.HasArc(v, u) {
			t.Fatalf("transpose missing arc (%d,%d)", v, u)
		}
		return true
	})
	for v := int64(0); v < n; v++ {
		row := tr.Neighbors(v)
		for i := 1; i < len(row); i++ {
			if row[i-1] >= row[i] {
				t.Fatalf("transpose row %d not strictly increasing: %v", v, row)
			}
		}
	}
	if !tr.Transpose().Equal(g) {
		t.Fatal("double transpose differs from original")
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New([]int64{0, 1, 1}, []int64{1}); err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
	cases := []struct {
		name    string
		offsets []int64
		nbrs    []int64
	}{
		{"empty offsets", nil, nil},
		{"nonzero first offset", []int64{1, 1}, []int64{0}},
		{"bad final offset", []int64{0, 2}, []int64{0}},
		{"non-monotone", []int64{0, 2, 1, 3}, []int64{0, 1, 2}},
		{"unsorted row", []int64{0, 2}, []int64{1, 0}},
		{"duplicate in row", []int64{0, 2}, []int64{1, 1}},
		{"target out of range", []int64{0, 1}, []int64{7}},
	}
	for _, c := range cases {
		if _, err := New(c.offsets, c.nbrs); err == nil {
			t.Fatalf("%s: New accepted invalid CSR", c.name)
		}
	}
}

func TestEachArcBatchRoundTrip(t *testing.T) {
	n, arcs := testArcs()
	g, err := Build(arcsSource(n, arcs, 2), stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSink(n, g.NumArcs())
	g.EachArcBatch(4, func(batch []stream.Arc) bool {
		if err := s.Consume(batch); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("EachArcBatch → Sink round trip changed the graph")
	}
}

func TestBuildEmpty(t *testing.T) {
	g, err := Build(arcsSource(5, nil, 3), stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || g.NumArcs() != 0 {
		t.Fatalf("got %v", g)
	}
	if d, v := g.MaxOutDegree(); d != 0 || v != 0 {
		t.Fatalf("MaxOutDegree on empty rows = (%d,%d)", d, v)
	}
	g2, err := Build(Source{NumVertices: 0, NumArcs: 0, Shards: 0}, stream.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 0 {
		t.Fatal("zero-vertex build")
	}
	_ = fmt.Sprintf("%v", g2)
}
