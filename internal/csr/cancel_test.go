package csr

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"kronvalid/internal/stream"
)

// synthSource is a replayable sharded source: shard w owns vertices
// [w*rows, (w+1)*rows) and emits `deg` arcs per vertex.
func synthSource(shards, rows, deg int) Source {
	return Source{
		NumVertices: int64(shards * rows),
		NumArcs:     int64(shards * rows * deg),
		Shards:      shards,
		VertexRange: func(w int) (int64, int64) {
			return int64(w * rows), int64((w + 1) * rows)
		},
		Generate: func(w int, buf []stream.Arc, emit func([]stream.Arc) []stream.Arc) {
			for r := 0; r < rows; r++ {
				u := int64(w*rows + r)
				for d := 0; d < deg; d++ {
					buf = append(buf, stream.Arc{U: u, V: int64(d)})
					if len(buf) == cap(buf) {
						if buf = emit(buf); buf == nil {
							return
						}
						buf = buf[:0]
					}
				}
			}
			if len(buf) > 0 {
				emit(buf)
			}
		},
	}
}

func TestBuildContextCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	g, err := BuildContext(ctx, synthSource(8, 2000, 200), stream.Options{Workers: 4, BatchSize: 64})
	if g != nil && err == nil {
		// The build may legitimately win the race; rerun with a
		// pre-cancelled context to pin the behavior deterministically.
		t.Log("build finished before cancellation; checking pre-cancelled path")
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if g2, err2 := BuildContext(ctx2, synthSource(4, 100, 10), stream.Options{}); g2 != nil || !errors.Is(err2, context.Canceled) {
		t.Fatalf("pre-cancelled build: graph=%v err=%v", g2 != nil, err2)
	}
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled build returned %v, want context.Canceled", err)
		}
		if g != nil {
			t.Fatal("cancelled build returned a graph alongside the error")
		}
	}
	// Workers must be joined either way.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("%d goroutines before build, %d after — leak", base, n)
	}
}

func TestBuildProgressReportsScatterPass(t *testing.T) {
	src := synthSource(4, 50, 8)
	var lastArcs, lastShards int64
	calls := 0
	g, err := Build(src, stream.Options{Workers: 2, BatchSize: 32,
		Progress: func(arcs, shards int64) {
			calls++
			if arcs < lastArcs || shards < lastShards {
				t.Fatalf("progress went backwards: (%d,%d) after (%d,%d)", arcs, shards, lastArcs, lastShards)
			}
			lastArcs, lastShards = arcs, shards
		}})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 || lastArcs != g.NumArcs() || lastShards != int64(src.Shards) {
		t.Fatalf("progress ended at (%d, %d) after %d calls; graph has %d arcs in %d shards",
			lastArcs, lastShards, calls, g.NumArcs(), src.Shards)
	}
}
