package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestChunksCoverRangeExactly(t *testing.T) {
	cases := []struct{ n, parts int64 }{
		{0, 4}, {1, 4}, {4, 4}, {5, 4}, {100, 7}, {7, 100}, {1 << 20, 16}, {3, 0}, {3, -2},
	}
	for _, c := range cases {
		chunks := Chunks(c.n, c.parts)
		var covered int64
		prev := int64(0)
		for _, ch := range chunks {
			if ch[0] != prev {
				t.Fatalf("Chunks(%d,%d): gap or overlap at %v", c.n, c.parts, ch)
			}
			if ch[1] <= ch[0] {
				t.Fatalf("Chunks(%d,%d): empty chunk %v", c.n, c.parts, ch)
			}
			covered += ch[1] - ch[0]
			prev = ch[1]
		}
		if covered != max64(c.n, 0) {
			t.Fatalf("Chunks(%d,%d) covered %d elements", c.n, c.parts, covered)
		}
		if c.n > 0 && prev != c.n {
			t.Fatalf("Chunks(%d,%d) ended at %d", c.n, c.parts, prev)
		}
	}
}

func TestChunksBalanced(t *testing.T) {
	chunks := Chunks(103, 10)
	if len(chunks) != 10 {
		t.Fatalf("expected 10 chunks, got %d", len(chunks))
	}
	for _, ch := range chunks {
		size := ch[1] - ch[0]
		if size < 10 || size > 11 {
			t.Errorf("unbalanced chunk %v (size %d)", ch, size)
		}
	}
}

func TestQuickChunksPartition(t *testing.T) {
	f := func(nRaw, partsRaw uint16) bool {
		n, parts := int64(nRaw), int64(partsRaw)
		chunks := Chunks(n, parts)
		var total int64
		prev := int64(0)
		for _, ch := range chunks {
			if ch[0] != prev || ch[1] <= ch[0] {
				return false
			}
			total += ch[1] - ch[0]
			prev = ch[1]
		}
		return total == n || (n <= 0 && total == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForVisitsEachIndexOnce(t *testing.T) {
	for _, n := range []int64{0, 1, 100, 5000, 100000} {
		counts := make([]int32, n)
		For(n, func(i int64) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForBlockedCoversRange(t *testing.T) {
	const n = 100000
	counts := make([]int32, n)
	ForBlocked(n, func(lo, hi int64) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForDynamicVisitsEachIndexOnce(t *testing.T) {
	for _, n := range []int64{0, 1, 17, 5000, 60001} {
		for _, grain := range []int64{0, 1, 7, 1024} {
			counts := make([]int32, n)
			ForDynamic(n, grain, func(i int64) {
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d grain=%d: index %d visited %d times", n, grain, i, c)
				}
			}
		}
	}
}

func TestSumInt64(t *testing.T) {
	for _, n := range []int64{0, 1, 10, 4096, 123457} {
		got := SumInt64(n, func(i int64) int64 { return i })
		want := n * (n - 1) / 2
		if n <= 0 {
			want = 0
		}
		if got != want {
			t.Errorf("SumInt64(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestQuickSumMatchesSerial(t *testing.T) {
	f := func(nRaw uint16, mult int8) bool {
		n := int64(nRaw)
		m := int64(mult)
		var serial int64
		for i := int64(0); i < n; i++ {
			serial += i*m + 3
		}
		return SumInt64(n, func(i int64) int64 { return i*m + 3 }) == serial
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapWorkers(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		var ran atomic.Int32
		seen := make([]atomic.Int32, w)
		MapWorkers(w, func(worker, nWorkers int) {
			if nWorkers != w {
				t.Errorf("nWorkers = %d, want %d", nWorkers, w)
			}
			seen[worker].Add(1)
			ran.Add(1)
		})
		if int(ran.Load()) != w {
			t.Fatalf("MapWorkers(%d) ran %d times", w, ran.Load())
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("worker %d ran %d times", i, seen[i].Load())
			}
		}
	}
}

func TestMapWorkersDefault(t *testing.T) {
	var ran atomic.Int32
	MapWorkers(0, func(worker, nWorkers int) {
		if nWorkers != MaxWorkers() {
			t.Errorf("default nWorkers = %d, want %d", nWorkers, MaxWorkers())
		}
		ran.Add(1)
	})
	if int(ran.Load()) != MaxWorkers() {
		t.Fatalf("default MapWorkers ran %d times, want %d", ran.Load(), MaxWorkers())
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func BenchmarkForOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SumInt64(100000, func(i int64) int64 { return i & 7 })
	}
}
