// Package par provides the small set of shared-memory parallelism
// primitives used by the library: blocked parallel loops, reductions, and
// range chunking. All functions degrade gracefully to serial execution
// when the work is small or only one processor is available.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxWorkers returns the degree of parallelism used by Do and friends:
// GOMAXPROCS, but never less than 1.
func MaxWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// Chunks splits the half-open range [0, n) into at most parts contiguous
// non-empty sub-ranges of near-equal size, returned as (lo, hi) pairs.
// It returns nil when n <= 0.
func Chunks(n, parts int64) [][2]int64 {
	if n <= 0 {
		return nil
	}
	if parts <= 0 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([][2]int64, 0, parts)
	base := n / parts
	rem := n % parts
	lo := int64(0)
	for p := int64(0); p < parts; p++ {
		size := base
		if p < rem {
			size++
		}
		out = append(out, [2]int64{lo, lo + size})
		lo += size
	}
	return out
}

// serialCutoff is the range size below which parallel dispatch is not
// worth the goroutine overhead.
const serialCutoff = 2048

// For runs body(i) for every i in [0, n), in parallel across up to
// MaxWorkers goroutines using contiguous blocks. body must be safe to call
// concurrently for distinct i.
func For(n int64, body func(i int64)) {
	ForBlocked(n, func(lo, hi int64) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForBlocked runs body(lo, hi) over a partition of [0, n) into contiguous
// blocks, one block per worker. This is the preferred form when the body
// can amortize per-block setup (local buffers, accumulators).
func ForBlocked(n int64, body func(lo, hi int64)) {
	if n <= 0 {
		return
	}
	workers := MaxWorkers()
	if n < serialCutoff || workers == 1 {
		body(0, n)
		return
	}
	chunks := Chunks(n, int64(workers))
	var wg sync.WaitGroup
	wg.Add(len(chunks))
	for _, c := range chunks {
		go func(lo, hi int64) {
			defer wg.Done()
			body(lo, hi)
		}(c[0], c[1])
	}
	wg.Wait()
}

// ForDynamic runs body(i) for every i in [0, n) using dynamic scheduling
// with the given grain size: workers repeatedly claim the next block of
// grain indices. Use it when per-index cost is highly skewed (for example,
// per-vertex work proportional to degree in a power-law graph).
func ForDynamic(n, grain int64, body func(i int64)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	workers := MaxWorkers()
	if n <= grain || workers == 1 {
		for i := int64(0); i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := next.Add(grain) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
		}()
	}
	wg.Wait()
}

// SumInt64 computes sum_{i in [0,n)} f(i) in parallel with per-worker
// partial sums (no atomics on the hot path).
func SumInt64(n int64, f func(i int64) int64) int64 {
	if n <= 0 {
		return 0
	}
	workers := MaxWorkers()
	if n < serialCutoff || workers == 1 {
		var s int64
		for i := int64(0); i < n; i++ {
			s += f(i)
		}
		return s
	}
	chunks := Chunks(n, int64(workers))
	partial := make([]int64, len(chunks))
	var wg sync.WaitGroup
	wg.Add(len(chunks))
	for ci, c := range chunks {
		go func(ci int, lo, hi int64) {
			defer wg.Done()
			var s int64
			for i := lo; i < hi; i++ {
				s += f(i)
			}
			partial[ci] = s
		}(ci, c[0], c[1])
	}
	wg.Wait()
	var total int64
	for _, s := range partial {
		total += s
	}
	return total
}

// MapWorkers runs fn(worker, nWorkers) once per worker in parallel and
// waits for completion. It is the building block for algorithms that need
// explicit worker-private state (for example, sharded generation).
func MapWorkers(workers int, fn func(worker, nWorkers int)) {
	if workers <= 0 {
		workers = MaxWorkers()
	}
	if workers == 1 {
		fn(0, 1)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w, workers)
		}(w)
	}
	wg.Wait()
}
