package rng

import (
	"math"
	"math/bits"
)

// This file is the fixed-point fast path of the generator: bulk draws
// and integer-threshold Bernoulli trials that replace the per-draw
// int→float conversion, division and float compare of Float64() < p
// with one integer compare — exactly equivalent by construction, so
// callers on byte-pinned streams can adopt them without changing a
// single emitted bit.

// FixedThreshold returns the unique integer T in [0, 2^53] with
//
//	k < T  ⟺  float64(k)/2^53 < p   for every k in [0, 2^53),
//
// the fixed-point form of the comparison Float64() < p: Float64 returns
// exactly float64(k)/2^53 for k = Uint64()>>11, so Below(FixedThreshold(p))
// decides every draw exactly like Float64() < p. The computation is
// exact because multiplying by 2^53 only shifts p's exponent (subnormal
// p lands in the normal range), so Ceil sees the true product p·2^53.
// p <= 0 and NaN map to 0 (never below); p >= 1 maps to 2^53 (always
// below, as Float64 is in [0, 1)).
func FixedThreshold(p float64) uint64 {
	if !(p > 0) {
		return 0
	}
	if p >= 1 {
		return 1 << 53
	}
	return uint64(math.Ceil(p * (1 << 53)))
}

// Below consumes one draw and reports whether it falls below the
// fixed-point threshold t: Below(FixedThreshold(p)) is draw-for-draw
// identical to Float64() < p.
func (g *Xoshiro256) Below(t uint64) bool {
	return g.Uint64()>>11 < t
}

// Fill fills dst with the next len(dst) values of the stream —
// draw-for-draw identical to len(dst) Uint64 calls — keeping the
// generator state in registers across the loop.
func (g *Xoshiro256) Fill(dst []uint64) {
	s0, s1, s2, s3 := g.s[0], g.s[1], g.s[2], g.s[3]
	for i := range dst {
		dst[i] = bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
	}
	g.s[0], g.s[1], g.s[2], g.s[3] = s0, s1, s2, s3
}

// CountBelow consumes n draws and counts those below the fixed-point
// threshold t — draw-for-draw identical to n Below calls (or a Fill
// plus a threshold sweep), but with the state in registers and no
// buffer to zero-initialize.
func (g *Xoshiro256) CountBelow(n int64, t uint64) int64 {
	s0, s1, s2, s3 := g.s[0], g.s[1], g.s[2], g.s[3]
	var k int64
	for i := int64(0); i < n; i++ {
		r := bits.RotateLeft64(s1*5, 7) * 9
		x := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= x
		s3 = bits.RotateLeft64(s3, 45)
		if r>>11 < t {
			k++
		}
	}
	g.s[0], g.s[1], g.s[2], g.s[3] = s0, s1, s2, s3
	return k
}

// GeometricLog is Geometric with the denominator precomputed:
// GeometricLog(math.Log1p(-p)) is draw-for-draw identical to
// Geometric(p) for p in (0, 1), hoisting one of the two log1p calls out
// of hot loops whose p is fixed (the G(n,p) skip sweep) or repeats
// across candidates (the Chung–Lu flat tail). log1mP must be
// math.Log1p(-p) for some p in (0, 1), i.e. finite and negative.
func (g *Xoshiro256) GeometricLog(log1mP float64) int64 {
	k := math.Log1p(-g.Float64()) / log1mP
	if k >= float64(maxGeometric) {
		return maxGeometric
	}
	return int64(k)
}

// smallFixedTrials is the trial count below which BinomialFixed counts
// individual threshold draws; above it the mode-centered sampler's
// log-gamma setup amortizes.
const smallFixedTrials = 64

// BinomialFixed samples Binomial(n, p) like Binomial but takes the
// precomputed fixed-point threshold t = FixedThreshold(p) and picks
// regimes tuned for recursive count splitting: small n counts n batched
// threshold draws (exact Bernoulli trials, no log calls — and exactly
// the per-trial probability t/2^53 the threshold encodes), larger n
// goes straight to the exact mode-centered sampler (skipping Binomial's
// geometric-counting regime, whose two log1p calls per success dominate
// splitting workloads), and n beyond the zig-zag's numeric range uses
// the clamped normal approximation. The draw pattern differs from
// Binomial, so it is for new streams, not byte-pinned ones.
func (g *Xoshiro256) BinomialFixed(n int64, p float64, t uint64) int64 {
	if n <= 0 || t == 0 {
		return 0
	}
	if t >= 1<<53 {
		return n
	}
	if n <= smallFixedTrials {
		return g.CountBelow(n, t)
	}
	if n > largeBinomialCutoff {
		return g.binomialNormal(n, p)
	}
	return g.binomialZigzag(n, p)
}
