package rng

import (
	"math"
	"testing"
)

// Micro-benchmarks for the draw primitives the model generators sit on.
// Run with: go test ./internal/rng -run '^$' -bench . -benchmem

func BenchmarkUint64(b *testing.B) {
	g := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	g := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += g.Float64()
	}
	_ = sink
}

func BenchmarkFill(b *testing.B) {
	g := New(1)
	dst := make([]uint64, 1024)
	b.SetBytes(int64(len(dst)) * 8)
	for i := 0; i < b.N; i++ {
		g.Fill(dst)
	}
}

func BenchmarkBelow(b *testing.B) {
	g := New(1)
	thr := FixedThreshold(0.57)
	var sink int
	for i := 0; i < b.N; i++ {
		if g.Below(thr) {
			sink++
		}
	}
	_ = sink
}

func BenchmarkFloat64Compare(b *testing.B) {
	// The float path Below replaces, for a like-for-like margin.
	g := New(1)
	const p = 0.57
	var sink int
	for i := 0; i < b.N; i++ {
		if g.Float64() < p {
			sink++
		}
	}
	_ = sink
}

func BenchmarkFixedThreshold(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += FixedThreshold(float64(i&1023) / 1024)
	}
	_ = sink
}

func BenchmarkGeometric(b *testing.B) {
	g := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += g.Geometric(0.001)
	}
	_ = sink
}

func BenchmarkGeometricLog(b *testing.B) {
	g := New(1)
	l := math.Log1p(-0.001)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += g.GeometricLog(l)
	}
	_ = sink
}

func BenchmarkBinomial(b *testing.B) {
	g := New(1)
	cases := []struct {
		name string
		n    int64
		p    float64
	}{
		{"count-n64", 64, 0.24},
		{"count-n1000", 1000, 0.05},
		{"zigzag-n5000", 5000, 0.24},
		{"normal-n2e37", 1 << 37, 0.5},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var sink int64
			for i := 0; i < b.N; i++ {
				sink += g.Binomial(tc.n, tc.p)
			}
			_ = sink
		})
	}
}

func BenchmarkBinomialFixed(b *testing.B) {
	g := New(1)
	cases := []struct {
		name string
		n    int64
		p    float64
	}{
		{"bernoulli-n8", 8, 0.24},
		{"bernoulli-n64", 64, 0.24},
		{"zigzag-n1000", 1000, 0.24},
		{"zigzag-n5000", 5000, 0.24},
	}
	for _, tc := range cases {
		thr := FixedThreshold(tc.p)
		b.Run(tc.name, func(b *testing.B) {
			var sink int64
			for i := 0; i < b.N; i++ {
				sink += g.BinomialFixed(tc.n, tc.p, thr)
			}
			_ = sink
		})
	}
}
